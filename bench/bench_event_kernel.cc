/**
 * @file
 * Event-kernel wall-clock benchmark (ROADMAP item 1 success metric):
 * times identical simulations under both simulation-loop engines and
 * both simulation kernels (HIRA_KERNEL axis: generic virtual dispatch
 * vs per-scheme specialized instantiations) on two workload regimes —
 *
 *  - "saturated": 8-core memory-heavy synthetic mixes that keep the
 *    controllers' queues full (the regime where PR 5's kernel only
 *    reached parity), and
 *  - "light": 8-core low-intensity mixes (mostly LLC-resident), the
 *    regime the skip-ahead kernel always won.
 *
 * Every (regime, mix, engine, kernel) run lands in the HIRA_JSON
 * "timing" block, so the in-tree BENCH_event_kernel.json snapshot and
 * the CI artifact record the throughput trajectory across PRs. The
 * engines and kernels are bitwise-identical
 * (tests/sim/test_engine_diff.cc, tests/sim/test_kernel_diff.cc); this
 * driver additionally cross-checks a stats checksum per mix across all
 * four (engine x kernel) combinations so a silent divergence shows up
 * as a fatal here too.
 */

#include <chrono>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

namespace {

/** Memory-heavy rotation: queues stay near-full at 8 cores. */
const std::vector<std::string> kSaturatedPool = {
    "mcf-like",  "libquantum-like", "lbm-like",   "gems-like",
    "milc-like", "soplex-like",     "leslie3d-like", "sphinx-like",
};

/** Low-intensity rotation: mostly LLC-resident cores. */
const std::vector<std::string> kLightPool = {
    "h264-like", "namd-like",  "perlbench-like", "hmmer-like",
    "gcc-like",  "bzip2-like", "astar-like",     "zeusmp-like",
};

WorkloadMix
rotatedMix(const std::vector<std::string> &pool, int cores, int rotation)
{
    WorkloadMix mix;
    for (int c = 0; c < cores; ++c) {
        mix.push_back(pool[static_cast<std::size_t>(
            (c + rotation) % static_cast<int>(pool.size()))]);
    }
    return mix;
}

struct EngineTiming
{
    double seconds = 0.0;
    std::uint64_t cycles = 0;
    SimLoopStats loop; //!< summed over the regime's mixes
};

/**
 * Run every mix of the regime under (@p engine, @p kernel), timing
 * run() only.
 */
EngineTiming
runRegime(const std::string &regime,
          const std::vector<WorkloadMix> &mixes, SimEngine engine,
          SimKernel kernel, const BenchKnobs &knobs,
          std::vector<double> &checksums)
{
    SchemeSpec scheme;
    scheme.kind = SchemeKind::Baseline;
    GeomSpec geom;
    EngineTiming total;
    for (std::size_t mi = 0; mi < mixes.size(); ++mi) {
        SystemConfig cfg = makeSystemConfig(
            geom, scheme, mixes[mi],
            sweepRunSeed(geom.key(), scheme.seedKey(), mi));
        cfg.engine = engine;
        cfg.kernel = kernel;
        System sys(cfg);
        auto t0 = std::chrono::steady_clock::now();
        sys.run(static_cast<Cycle>(knobs.warmup));
        sys.resetStats();
        sys.run(static_cast<Cycle>(knobs.cycles));
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        SystemResult r = sys.result();
        double sum = 0.0;
        for (double ipc : r.ipc)
            sum += ipc;
        checksums.push_back(sum +
                            static_cast<double>(r.controller.acts) +
                            static_cast<double>(r.memReads));
        std::uint64_t cycles =
            static_cast<std::uint64_t>(knobs.warmup + knobs.cycles);
        recordPointTiming(strprintf("%s/%s mix%zu", regime.c_str(),
                                    simEngineName(engine), mi),
                          secs, cycles, simKernelName(kernel));
        total.seconds += secs;
        total.cycles += cycles;
        const SimLoopStats &ls = sys.loopStats();
        total.loop.simulatedCycles += ls.simulatedCycles;
        total.loop.executedCycles += ls.executedCycles;
        total.loop.skippedCycles += ls.skippedCycles;
        total.loop.ctrlTicks += ls.ctrlTicks;
    }
    return total;
}

} // namespace

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Event-kernel wall-clock: cycle vs event engine, "
           "specialized vs generic kernel",
           "ROADMAP item 1: >1.5x on saturated 8-core mixes; ROADMAP "
           "item 2: devirtualized hot path, bitwise-identical results");
    knobsLine(knobs);

    const int nmixes = std::max(1, knobs.mixes / 2);
    std::vector<std::vector<WorkloadMix>> regimes(2);
    for (int i = 0; i < nmixes; ++i) {
        regimes[0].push_back(rotatedMix(kSaturatedPool, knobs.cores, i));
        regimes[1].push_back(rotatedMix(kLightPool, knobs.cores, i));
    }
    const std::vector<std::string> names = {"saturated", "light"};

    // cycle_s/event_s are the specialized kernel (the default);
    // gain_cyc/gain_evt are generic wall-clock over specialized
    // wall-clock per engine (devirtualization payoff, >1 is a win).
    seriesHeader("regime", {"cycle_s", "event_s", "speedup", "gen_cyc_s",
                            "gen_evt_s", "gain_cyc", "gain_evt"});
    for (std::size_t ri = 0; ri < regimes.size(); ++ri) {
        std::vector<double> spec_cyc_sum, spec_evt_sum, gen_cyc_sum,
            gen_evt_sum;
        EngineTiming cyc =
            runRegime(names[ri], regimes[ri], SimEngine::CycleLoop,
                      SimKernel::Specialized, knobs, spec_cyc_sum);
        EngineTiming evt =
            runRegime(names[ri], regimes[ri], SimEngine::EventLoop,
                      SimKernel::Specialized, knobs, spec_evt_sum);
        EngineTiming gcyc =
            runRegime(names[ri], regimes[ri], SimEngine::CycleLoop,
                      SimKernel::Generic, knobs, gen_cyc_sum);
        EngineTiming gevt =
            runRegime(names[ri], regimes[ri], SimEngine::EventLoop,
                      SimKernel::Generic, knobs, gen_evt_sum);
        for (std::size_t i = 0; i < spec_cyc_sum.size(); ++i) {
            if (spec_cyc_sum[i] != spec_evt_sum[i] ||
                spec_cyc_sum[i] != gen_cyc_sum[i] ||
                spec_cyc_sum[i] != gen_evt_sum[i]) {
                fatal("engine/kernel divergence on %s mix %zu: "
                      "checksums cycle/spec %.17g event/spec %.17g "
                      "cycle/gen %.17g event/gen %.17g",
                      names[ri].c_str(), i, spec_cyc_sum[i],
                      spec_evt_sum[i], gen_cyc_sum[i], gen_evt_sum[i]);
            }
        }
        seriesRow(names[ri],
                  {cyc.seconds, evt.seconds,
                   evt.seconds > 0.0 ? cyc.seconds / evt.seconds : 0.0,
                   gcyc.seconds, gevt.seconds,
                   cyc.seconds > 0.0 ? gcyc.seconds / cyc.seconds : 0.0,
                   evt.seconds > 0.0 ? gevt.seconds / evt.seconds
                                     : 0.0});
        const SimLoopStats &ls = evt.loop;
        note(strprintf(
            "%s event loop: executed %.1f%% of cycles, controller ticks "
            "%.1f%% of dense",
            names[ri].c_str(),
            100.0 * static_cast<double>(ls.executedCycles) /
                static_cast<double>(std::max<std::uint64_t>(
                    1, ls.simulatedCycles)),
            100.0 * static_cast<double>(ls.ctrlTicks) /
                static_cast<double>(std::max<std::uint64_t>(
                    1, cyc.loop.ctrlTicks))));
    }
    note("speedup = cycle/spec wall-clock over event/spec wall-clock; "
         "gain_* = generic over specialized per engine, same seeds, "
         "stats checksums cross-checked across all four combinations");
    footer();
    return 0;
}
