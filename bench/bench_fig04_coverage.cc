/**
 * @file
 * Fig. 4 reproduction: HiRA coverage distribution across DRAM rows for
 * t1, t2 in {1.5, 3.0, 4.5, 6.0} ns, plus the Section 4.2 headline
 * two-row refresh latency reduction (51.4 %).
 */

#include "bench_util.hh"
#include "characterize/coverage.hh"
#include "chip/modules.hh"
#include "dram/timing.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 4 - HiRA coverage vs (t1, t2)",
           "box-and-whiskers of per-row coverage; paper: ~32 % mean and "
           "no zero-coverage rows at t1=3 ns (t2=3/4.5 ns); zero-coverage "
           "rows at t1=1.5/6 ns");
    knobsLine(knobs);

    ModuleInfo module = moduleByLabel(
        "C0", static_cast<std::uint32_t>(std::max(knobs.rows, 128)), 1);
    DramChip chip(module.config);
    std::vector<RowId> rows =
        spreadRows(chip.config(),
                   static_cast<std::uint32_t>(std::max(knobs.rows / 4,
                                                       48)));

    const double steps[4] = {1.5, 3.0, 4.5, 6.0};
    seriesHeader("t1(ns)/t2(ns)", {"min", "q1", "median", "q3", "max",
                                   "mean", "zeroFr"});
    for (double t1 : steps) {
        for (double t2 : steps) {
            CoverageConfig cfg;
            cfg.t1 = t1;
            cfg.t2 = t2;
            cfg.rows = rows;
            cfg.allPatterns = false; // pattern-sweep is covered in tests
            CoverageResult r = measureCoverage(chip, cfg);
            BoxStats b = r.box();
            seriesRow(strprintf("t1=%.1f t2=%.1f", t1, t2),
                      {b.min, b.q1, b.median, b.q3, b.max, b.mean,
                       r.zeroFraction()});
        }
    }

    TimingParams tp;
    std::printf("\nSection 4.2 headline (module-independent):\n");
    std::printf("  two-row refresh, nominal commands : %.2f ns\n",
                tp.nominalTwoRowRefreshNs());
    std::printf("  two-row refresh, HiRA (t1=t2=3ns) : %.2f ns\n",
                tp.hiraTwoRowRefreshNs());
    std::printf("  latency reduction                 : %.1f %%  "
                "(paper: 51.4 %%)\n",
                100.0 * tp.hiraLatencyReduction());
    footer();
    return 0;
}
