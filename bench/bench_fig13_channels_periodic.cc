/**
 * @file
 * Fig. 13 reproduction: effect of channel count (1..8) on Baseline and
 * HiRA-{2,4} periodic-refresh performance for 2 / 8 / 32 Gb chips,
 * normalized to the 1-channel 1-rank baseline. The full
 * capacity x scheme x channel grid is declared up front and sharded
 * over the worker pool in one SweepRunner::runPoints() drain.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 13 - channel-count sweep, periodic refresh",
           "paper: performance rises with channels for all schemes; "
           "HiRA-2 keeps +8.1 % over baseline at 8 channels / 32 Gb");
    knobsLine(knobs);

    SweepRunner runner(knobs, mixesFromEnv(knobs));
    const std::vector<double> capacities = {2.0, 8.0, 32.0};
    const std::vector<int> channels = {1, 2, 4, 8};
    const std::vector<std::string> schemes = {"Baseline", "HiRA-2",
                                              "HiRA-4"};
    std::vector<std::string> cols;
    for (int ch : channels)
        cols.push_back(strprintf("%dch", ch));

    // Declare the whole grid, then evaluate it in one sharded drain.
    // The 1ch-1rank Baseline reference IS the first Baseline row
    // entry, so it needs no extra sweep point.
    SweepGrid grid;
    std::vector<std::vector<std::vector<std::size_t>>> ids(
        capacities.size());
    for (std::size_t ci = 0; ci < capacities.size(); ++ci) {
        for (const std::string &label : schemes) {
            std::vector<std::size_t> row;
            for (int ch : channels) {
                GeomSpec g;
                g.capacityGb = capacities[ci];
                g.channels = ch;
                row.push_back(grid.add(g, periodicScheme(label)));
            }
            ids[ci].push_back(row);
        }
    }
    grid.run(runner);

    for (std::size_t ci = 0; ci < capacities.size(); ++ci) {
        double ws_ref = grid.ws(ids[ci][0][0]); // Baseline @ 1ch
        std::printf("%.0f Gb chips (normalized to 1ch-1rank "
                    "baseline)\n",
                    capacities[ci]);
        seriesHeader("scheme", cols);
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            std::vector<double> row;
            for (std::size_t chi = 0; chi < channels.size(); ++chi)
                row.push_back(grid.ws(ids[ci][si][chi]) / ws_ref);
            seriesRow(schemes[si], row);
        }
        std::printf("\n");
    }
    footer();
    return 0;
}
