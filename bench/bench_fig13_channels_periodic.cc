/**
 * @file
 * Fig. 13 reproduction: effect of channel count (1..8) on Baseline and
 * HiRA-{2,4} periodic-refresh performance for 2 / 8 / 32 Gb chips,
 * normalized to the 1-channel 1-rank baseline.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 13 - channel-count sweep, periodic refresh",
           "paper: performance rises with channels for all schemes; "
           "HiRA-2 keeps +8.1 % over baseline at 8 channels / 32 Gb");
    knobsLine(knobs);

    SweepRunner runner(knobs);
    const std::vector<int> channels = {1, 2, 4, 8};
    std::vector<std::string> cols;
    for (int ch : channels)
        cols.push_back(strprintf("%dch", ch));

    for (double cap : {2.0, 8.0, 32.0}) {
        GeomSpec ref;
        ref.capacityGb = cap;
        SchemeSpec base;
        base.kind = SchemeKind::Baseline;
        double ws_ref = runner.meanWs(ref, base);

        std::printf("%.0f Gb chips (normalized to 1ch-1rank "
                    "baseline)\n",
                    cap);
        seriesHeader("scheme", cols);
        for (const char *label : {"Baseline", "HiRA-2", "HiRA-4"}) {
            SchemeSpec s;
            if (std::string(label) == "Baseline") {
                s.kind = SchemeKind::Baseline;
            } else {
                s.kind = SchemeKind::HiraMc;
                s.slackN = std::string(label) == "HiRA-2" ? 2 : 4;
            }
            std::vector<double> row;
            for (int ch : channels) {
                GeomSpec g;
                g.capacityGb = cap;
                g.channels = ch;
                row.push_back(runner.meanWs(g, s) / ws_ref);
            }
            seriesRow(label, row);
        }
        std::printf("\n");
    }
    footer();
    return 0;
}
