/**
 * @file
 * Result-cache benchmark (ROADMAP item 3): runs a fig09-style
 * scheme x capacity grid twice against a private cache directory —
 * cold (everything simulates, entries commit) then warm (a fresh
 * runner on the same directory) — and reports the wall-clock and
 * counter evidence that the warm pass simulated NOTHING and
 * reproduced the cold numbers bitwise. The warm pass self-asserts
 * both properties, so this driver doubles as an end-to-end check
 * wherever it runs (it is a smoke-tier ctest entry like every other
 * bench driver).
 *
 * The cache directory is a fresh mkdtemp per invocation: this driver
 * measures the cache itself and must not be poisoned by (or poison) an
 * ambient HIRA_RESULT_CACHE.
 */

#include <chrono>
#include <filesystem>

#include <stdlib.h>

#include "bench_util.hh"
#include "sim/experiment.hh"
#include "sim/result_cache.hh"

using namespace hira;
using namespace hira::benchutil;

namespace {

struct PassOutcome
{
    double seconds = 0.0;
    std::vector<PointResult> results;
    std::uint64_t simulated = 0;
    std::uint64_t fromCache = 0;
    std::uint64_t aloneRuns = 0;
};

/** Build the grid once; both passes must queue identical plans. */
std::vector<SweepPoint>
buildPlan()
{
    std::vector<SweepPoint> plan;
    const std::vector<double> capacities = {8, 32, 128};
    for (double cap : capacities) {
        GeomSpec g;
        g.capacityGb = cap;
        SchemeSpec none;
        none.kind = SchemeKind::NoRefresh;
        plan.push_back(SweepPoint{g, none});
        SchemeSpec base;
        base.kind = SchemeKind::Baseline;
        plan.push_back(SweepPoint{g, base});
        SchemeSpec hira;
        hira.kind = SchemeKind::HiraMc;
        hira.slackN = 2;
        plan.push_back(SweepPoint{g, hira});
    }
    return plan;
}

PassOutcome
runPass(const std::string &name, const std::string &cacheDir,
        const BenchKnobs &knobs, const std::vector<WorkloadMix> &mixes,
        const std::vector<SweepPoint> &plan)
{
    SweepRunner runner(knobs, mixes);
    runner.setResultCache(std::make_unique<ResultCache>(
        cacheDir, ResultCacheMode::ReadWrite));
    auto t0 = std::chrono::steady_clock::now();
    PassOutcome out;
    out.results = runner.runPoints(plan);
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    out.simulated = runner.pointsSimulated();
    out.fromCache = runner.pointsFromCache();
    out.aloneRuns = runner.aloneRunCount();
    for (std::size_t i = 0; i < plan.size(); ++i) {
        recordPointTiming(strprintf("%s: %s @ %s", name.c_str(),
                                    plan[i].scheme.label().c_str(),
                                    plan[i].geom.key().c_str()),
                          out.results[i].wallSeconds,
                          out.results[i].simCycles, std::string(),
                          out.results[i].cacheHit);
    }
    recordCacheStats(runner);
    return out;
}

} // namespace

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Result cache - cold vs warm sweep",
           "infra: warm rerun serves every point from the "
           "content-addressed cache, bitwise-identical, zero "
           "simulation");
    knobsLine(knobs);

    std::string templ = "/tmp/hira_bench_rcache.XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr)
        fatal("mkdtemp(%s) failed", templ.c_str());
    std::string cacheDir = buf.data();

    std::vector<WorkloadMix> mixes = mixesFromEnv(knobs);
    std::vector<SweepPoint> plan = buildPlan();

    PassOutcome cold = runPass("cold", cacheDir, knobs, mixes, plan);
    PassOutcome warm = runPass("warm", cacheDir, knobs, mixes, plan);

    // The whole point: warm simulates nothing and agrees bitwise.
    hira_assert(warm.simulated == 0);
    hira_assert(warm.fromCache == plan.size());
    hira_assert(warm.aloneRuns == 0);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        hira_assert(warm.results[i].cacheHit);
        hira_assert(warm.results[i].meanWs == cold.results[i].meanWs);
        hira_assert(warm.results[i].refresh.rowRefreshes ==
                    cold.results[i].refresh.rowRefreshes);
        hira_assert(warm.results[i].refresh.refCommands ==
                    cold.results[i].refresh.refCommands);
    }

    seriesHeader("pass", {"seconds", "simmed", "cached", "alone"});
    seriesRow("cold", {cold.seconds, static_cast<double>(cold.simulated),
                       static_cast<double>(cold.fromCache),
                       static_cast<double>(cold.aloneRuns)});
    seriesRow("warm", {warm.seconds, static_cast<double>(warm.simulated),
                       static_cast<double>(warm.fromCache),
                       static_cast<double>(warm.aloneRuns)});
    std::printf("\nwarm pass: %zu/%zu points from cache, %.0fx faster "
                "than cold (%.3fs vs %.3fs)\n",
                static_cast<std::size_t>(warm.fromCache), plan.size(),
                warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0,
                cold.seconds, warm.seconds);
    note(strprintf("warm pass verified bitwise against cold over %zu "
                   "points",
                   plan.size()));
    footer();
    std::filesystem::remove_all(cacheDir);
    return 0;
}
