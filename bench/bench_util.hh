/**
 * @file
 * Shared helpers for the benchmark harnesses: headered series printing
 * in the layout of the paper's tables/figures, and paper-vs-measured
 * annotation.
 *
 * When HIRA_JSON=<dir> is set, every series the driver prints is also
 * captured and written to <dir>/BENCH_<driver>.json on footer() —
 * title, knob scale, git revision (configure-time), sections with
 * columns and rows — so figure trajectories can be tracked across PRs
 * without scraping stdout.
 */

#ifndef HIRA_BENCH_BENCH_UTIL_HH
#define HIRA_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <sys/stat.h>

#include "common/knobs.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace_events.hh"
#include "sim/experiment.hh"
#include "sim/result_cache.hh"
#include "workload/corpus.hh"

#ifndef HIRA_GIT_REV
#define HIRA_GIT_REV "unknown"
#endif

namespace hira {
namespace benchutil {

using hira::strprintf;

namespace detail {

/** One seriesHeader() + its seriesRow()s. */
struct JsonSection
{
    std::string label;
    std::vector<std::string> columns;
    std::vector<std::pair<std::string, std::vector<double>>> rows;
};

/** One sweep point's wall-clock record (see recordPointTiming). */
struct TimingRow
{
    std::string label;
    double simSeconds = 0.0;
    std::uint64_t simulatedCycles = 0;
    std::string kernel;   //!< simulation kernel the point ran under
    bool cacheHit = false; //!< served from the result cache
};

/** Result-cache outcome of a driver's sweeps (see recordCacheStats). */
struct CacheRecord
{
    bool have = false;   //!< a cache-enabled runner was recorded
    std::string mode;    //!< "off" / "read" / "readwrite"
    ResultCacheStats stats;
    std::uint64_t pointsSimulated = 0;
    std::uint64_t pointsFromCache = 0;
};

/** One sweep point's stats record (see recordPointStats). */
struct PointRow
{
    std::string label;
    RefreshStats refresh;
    MetricsSnapshot metrics; //!< empty unless HIRA_METRICS is on
};

/** Capture state for the optional BENCH_<driver>.json artifact. */
struct JsonCapture
{
    std::string dir;   //!< empty: capture disabled
    std::string title;
    std::string paperRef;
    bool haveKnobs = false;
    BenchKnobs knobs;
    std::vector<JsonSection> sections;
    std::vector<std::string> notes;
    std::vector<TimingRow> timing;
    std::vector<PointRow> points;
    CacheRecord cache;
    bool written = false;
};

inline JsonCapture &
capture()
{
    static JsonCapture c;
    return c;
}

inline std::string
driverName()
{
#if defined(__GLIBC__)
    return program_invocation_short_name;
#elif defined(__APPLE__) || defined(__FreeBSD__)
    return getprogname();
#else
    return "bench"; // unknown libc: drivers share one JSON file
#endif
}

inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** JSON has no NaN/Inf literals; emit null for them. */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    return strprintf("%.9g", v);
}

inline void
writeJson()
{
    JsonCapture &cap = capture();
    if (cap.dir.empty() || cap.written)
        return;
    cap.written = true;
    // Best-effort: a missing directory is created one level deep.
    ::mkdir(cap.dir.c_str(), 0777);
    std::string path = cap.dir + "/BENCH_" + driverName() + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("HIRA_JSON: cannot write %s: %s", path.c_str(),
             std::strerror(errno));
        return;
    }
    std::fprintf(f, "{\n  \"driver\": \"%s\",\n  \"git_rev\": \"%s\",\n",
                 jsonEscape(driverName()).c_str(),
                 jsonEscape(HIRA_GIT_REV).c_str());
    std::fprintf(f, "  \"title\": \"%s\",\n  \"reproduces\": \"%s\",\n",
                 jsonEscape(cap.title).c_str(),
                 jsonEscape(cap.paperRef).c_str());
    std::fprintf(f, "  \"engine\": \"%s\",\n",
                 simEngineName(defaultSimEngine()));
    std::fprintf(f, "  \"kernel\": \"%s\",\n",
                 simKernelName(defaultSimKernel()));
    std::fprintf(f, "  \"metrics_level\": \"%s\",\n",
                 metricsLevelName(defaultMetricsLevel()));
    // Always present so artifact consumers (the CI warm-cache check)
    // never have to special-case its absence: mode "off" when no
    // cache-enabled runner was recorded.
    if (cap.cache.have) {
        const ResultCacheStats &cs = cap.cache.stats;
        std::fprintf(
            f,
            "  \"result_cache\": {\"mode\": \"%s\", "
            "\"points_simulated\": %llu, \"points_from_cache\": %llu, "
            "\"hits\": %llu, \"misses\": %llu, \"stale\": %llu, "
            "\"corrupt\": %llu, \"writes\": %llu, "
            "\"bytes_read\": %llu, \"bytes_written\": %llu},\n",
            jsonEscape(cap.cache.mode).c_str(),
            static_cast<unsigned long long>(cap.cache.pointsSimulated),
            static_cast<unsigned long long>(cap.cache.pointsFromCache),
            static_cast<unsigned long long>(cs.hits),
            static_cast<unsigned long long>(cs.misses),
            static_cast<unsigned long long>(cs.stale),
            static_cast<unsigned long long>(cs.corrupt),
            static_cast<unsigned long long>(cs.writes),
            static_cast<unsigned long long>(cs.bytesRead),
            static_cast<unsigned long long>(cs.bytesWritten));
    } else {
        std::fprintf(f, "  \"result_cache\": {\"mode\": \"off\"},\n");
    }
    if (cap.haveKnobs) {
        std::fprintf(f,
                     "  \"knobs\": {\"mixes\": %d, \"cycles\": %lld, "
                     "\"warmup\": %lld, \"rows\": %d, \"threads\": %d, "
                     "\"cores\": %d},\n",
                     cap.knobs.mixes,
                     static_cast<long long>(cap.knobs.cycles),
                     static_cast<long long>(cap.knobs.warmup),
                     cap.knobs.rows, cap.knobs.threads, cap.knobs.cores);
    }
    std::fprintf(f, "  \"notes\": [");
    for (std::size_t i = 0; i < cap.notes.size(); ++i) {
        std::fprintf(f, "%s\"%s\"", i > 0 ? ", " : "",
                     jsonEscape(cap.notes[i]).c_str());
    }
    std::fprintf(f, "],\n");
    // Per-sweep-point wall clock: the perf trajectory across PRs.
    std::fprintf(f, "  \"timing\": [\n");
    double total_sec = 0.0;
    std::uint64_t total_cycles = 0;
    for (std::size_t i = 0; i < cap.timing.size(); ++i) {
        const TimingRow &t = cap.timing[i];
        total_sec += t.simSeconds;
        total_cycles += t.simulatedCycles;
        double rate = t.simSeconds > 0.0
                          ? static_cast<double>(t.simulatedCycles) /
                                t.simSeconds
                          : 0.0;
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"kernel\": \"%s\", "
                     "\"sim_seconds\": %s, "
                     "\"simulated_cycles\": %llu, "
                     "\"cycles_per_sec\": %s, \"cache_hit\": %s},\n",
                     jsonEscape(t.label).c_str(),
                     jsonEscape(t.kernel).c_str(),
                     jsonNumber(t.simSeconds).c_str(),
                     static_cast<unsigned long long>(t.simulatedCycles),
                     jsonNumber(rate).c_str(),
                     t.cacheHit ? "true" : "false");
    }
    std::fprintf(f,
                 "    {\"label\": \"total\", \"sim_seconds\": %s, "
                 "\"simulated_cycles\": %llu, \"cycles_per_sec\": %s}\n"
                 "  ],\n",
                 jsonNumber(total_sec).c_str(),
                 static_cast<unsigned long long>(total_cycles),
                 jsonNumber(total_sec > 0.0
                                ? static_cast<double>(total_cycles) /
                                      total_sec
                                : 0.0)
                     .c_str());
    // Per-sweep-point simulator stats: the PR 4/6 fidelity counters
    // (RefreshStats, including preventive_dropped) always, plus the
    // HIRA_METRICS registry snapshot when one was captured. The CI
    // bitwise metrics-on/off check compares "sections" only — these
    // records are allowed (and expected) to differ with the knob.
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < cap.points.size(); ++i) {
        const PointRow &p = cap.points[i];
        const RefreshStats &rs = p.refresh;
        std::fprintf(
            f,
            "    {\"label\": \"%s\", \"refresh\": {"
            "\"ref_commands\": %llu, \"row_refreshes\": %llu, "
            "\"access_paired\": %llu, \"refresh_paired\": %llu, "
            "\"standalone\": %llu, \"deadline_misses\": %llu, "
            "\"preventive_generated\": %llu, "
            "\"preventive_dropped\": %llu}",
            jsonEscape(p.label).c_str(),
            static_cast<unsigned long long>(rs.refCommands),
            static_cast<unsigned long long>(rs.rowRefreshes),
            static_cast<unsigned long long>(rs.accessPaired),
            static_cast<unsigned long long>(rs.refreshPaired),
            static_cast<unsigned long long>(rs.standalone),
            static_cast<unsigned long long>(rs.deadlineMisses),
            static_cast<unsigned long long>(rs.preventiveGenerated),
            static_cast<unsigned long long>(rs.preventiveDropped));
        if (!p.metrics.empty()) {
            std::fprintf(f, ",\n     \"metrics\": {");
            bool first = true;
            for (const auto &kv : p.metrics.values) {
                const MetricValue &v = kv.second;
                std::fprintf(f, "%s\n      \"%s\": ", first ? "" : ",",
                             jsonEscape(kv.first).c_str());
                first = false;
                switch (v.kind) {
                  case MetricValue::Kind::Counter:
                    std::fprintf(
                        f, "%llu",
                        static_cast<unsigned long long>(v.count));
                    break;
                  case MetricValue::Kind::Gauge:
                    std::fprintf(f, "%s", jsonNumber(v.value).c_str());
                    break;
                  case MetricValue::Kind::Histogram:
                    std::fprintf(
                        f,
                        "{\"count\": %llu, \"sum\": %s, \"lo\": %s, "
                        "\"hi\": %s, \"bins\": [",
                        static_cast<unsigned long long>(v.count),
                        jsonNumber(v.value).c_str(),
                        jsonNumber(v.lo).c_str(),
                        jsonNumber(v.hi).c_str());
                    for (std::size_t b = 0; b < v.bins.size(); ++b) {
                        std::fprintf(
                            f, "%s%llu", b > 0 ? ", " : "",
                            static_cast<unsigned long long>(v.bins[b]));
                    }
                    std::fprintf(f, "]}");
                    break;
                }
            }
            std::fprintf(f, "\n     }");
        }
        std::fprintf(f, "}%s\n", i + 1 < cap.points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"sections\": [\n");
    for (std::size_t s = 0; s < cap.sections.size(); ++s) {
        const JsonSection &sec = cap.sections[s];
        std::fprintf(f, "    {\"label\": \"%s\", \"columns\": [",
                     jsonEscape(sec.label).c_str());
        for (std::size_t i = 0; i < sec.columns.size(); ++i) {
            std::fprintf(f, "%s\"%s\"", i > 0 ? ", " : "",
                         jsonEscape(sec.columns[i]).c_str());
        }
        std::fprintf(f, "], \"rows\": [\n");
        for (std::size_t r = 0; r < sec.rows.size(); ++r) {
            std::fprintf(f, "      {\"label\": \"%s\", \"values\": [",
                         jsonEscape(sec.rows[r].first).c_str());
            const std::vector<double> &vals = sec.rows[r].second;
            for (std::size_t i = 0; i < vals.size(); ++i) {
                std::fprintf(f, "%s%s", i > 0 ? ", " : "",
                             jsonNumber(vals[i]).c_str());
            }
            std::fprintf(f, "]}%s\n", r + 1 < sec.rows.size() ? "," : "");
        }
        std::fprintf(f, "    ]}%s\n",
                     s + 1 < cap.sections.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    inform("HIRA_JSON: wrote %s", path.c_str());
}

} // namespace detail

inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("-----------------------------------------------------------"
                "---------------------\n");
    detail::JsonCapture &cap = detail::capture();
    const char *dir = std::getenv("HIRA_JSON");
    cap.dir = dir != nullptr ? dir : "";
    cap.title = title;
    cap.paperRef = paper_ref;
}

inline void
knobsLine(const BenchKnobs &k)
{
    std::printf("scale: HIRA_MIXES=%d HIRA_CYCLES=%lld HIRA_WARMUP=%lld "
                "HIRA_ROWS=%d HIRA_THREADS=%d HIRA_CORES=%d (paper scale: "
                "125 mixes, 200M instrs, 6K rows, 8 cores)\n",
                k.mixes, static_cast<long long>(k.cycles),
                static_cast<long long>(k.warmup), k.rows, k.threads,
                k.cores);
    detail::capture().knobs = k;
    detail::capture().haveKnobs = true;
}

inline void
seriesHeader(const std::string &label,
             const std::vector<std::string> &columns)
{
    std::printf("%-24s", label.c_str());
    for (const std::string &c : columns)
        std::printf("%9s", c.c_str());
    std::printf("\n");
    detail::JsonSection sec;
    sec.label = label;
    sec.columns = columns;
    detail::capture().sections.push_back(std::move(sec));
}

/** Print one row of a fixed-width series table. */
inline void
seriesRow(const std::string &label, const std::vector<double> &values,
          const char *fmt = "%9.3f")
{
    std::printf("%-24s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
    detail::JsonCapture &cap = detail::capture();
    if (cap.sections.empty())
        cap.sections.push_back(detail::JsonSection{});
    cap.sections.back().rows.emplace_back(label, values);
}

inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
    detail::capture().notes.push_back(text);
}

/**
 * Record one sweep point's wall clock for the HIRA_JSON artifact's
 * "timing" block (sim seconds, simulated cycles; cycles/sec and a
 * total row are derived at write time). SweepGrid::run() records every
 * plan point automatically; call directly for hand-rolled sweeps.
 * @p kernel names the simulation kernel the point ran under; empty
 * means "whatever HIRA_KERNEL selects at record time" (drivers that
 * sweep the kernel axis pass it explicitly per point).
 */
inline void
recordPointTiming(const std::string &label, double sim_seconds,
                  std::uint64_t simulated_cycles,
                  const std::string &kernel = std::string(),
                  bool cache_hit = false)
{
    detail::TimingRow t;
    t.label = label;
    t.simSeconds = sim_seconds;
    t.simulatedCycles = simulated_cycles;
    t.kernel = kernel.empty() ? simKernelName(defaultSimKernel()) : kernel;
    t.cacheHit = cache_hit;
    detail::capture().timing.push_back(std::move(t));
}

/**
 * Record @p runner's result-cache outcome for the HIRA_JSON artifact's
 * "result_cache" block (mode, hit/miss/stale/corrupt/write counters,
 * and the points simulated vs served from cache). SweepGrid::run()
 * records automatically; call directly after hand-rolled runPoints()
 * sweeps. Cumulative per runner, so the last call per driver wins —
 * which is what a multi-sweep driver sharing one runner wants.
 */
inline void
recordCacheStats(const SweepRunner &runner)
{
    detail::CacheRecord &rec = detail::capture().cache;
    const ResultCache *cache = runner.resultCache();
    rec.have = true;
    rec.mode = cache != nullptr ? resultCacheModeName(cache->mode())
                                : "off";
    rec.stats = cache != nullptr ? cache->stats() : ResultCacheStats{};
    rec.pointsSimulated = runner.pointsSimulated();
    rec.pointsFromCache = runner.pointsFromCache();
}

/**
 * Record one sweep point's stats for the HIRA_JSON artifact's "points"
 * block: the mix-summed RefreshStats always (so preventive drops and
 * deadline misses reach artifacts even with metrics off) and the
 * point's merged metrics snapshot when HIRA_METRICS captured one.
 * SweepGrid::run() records every plan point automatically.
 */
inline void
recordPointStats(const std::string &label, const RefreshStats &refresh,
                 const MetricsSnapshot &metrics)
{
    detail::PointRow p;
    p.label = label;
    p.refresh = refresh;
    p.metrics = metrics;
    detail::capture().points.push_back(std::move(p));
}

/**
 * Periodic-refresh scheme from its display label ("Baseline" or
 * "HiRA-<N>"), as swept by the fig13/fig14 geometry drivers.
 */
inline SchemeSpec
periodicScheme(const std::string &label)
{
    SchemeSpec s;
    if (label == "Baseline") {
        s.kind = SchemeKind::Baseline;
    } else {
        hira_assert(label.rfind("HiRA-", 0) == 0);
        s.kind = SchemeKind::HiraMc;
        s.slackN = std::atoi(label.c_str() + 5);
    }
    return s;
}

/**
 * PARA preventive-refresh scheme at RowHammer threshold @p nrh:
 * plain immediate PARA for @p slack < 0 (label "PARA"), HiRA-served
 * with tRefSlack = slack * tRC otherwise (label "HiRA-<slack>").
 * Periodic refresh stays on REF commands (Section 9.2), as swept by
 * the fig12/fig15/fig16 drivers.
 */
inline SchemeSpec
paraScheme(double nrh, int slack)
{
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    s.paraEnabled = true;
    s.nrh = nrh;
    if (slack >= 0) {
        s.preventiveViaHira = true;
        s.slackN = slack;
    }
    return s;
}

/** Display label matching paraScheme(nrh, slack). */
inline std::string
paraSchemeLabel(int slack)
{
    return slack < 0 ? std::string("PARA") : strprintf("HiRA-%d", slack);
}

/**
 * The workload mixes a driver should sweep: the intensity-binned mixes
 * of the HIRA_CORPUS trace corpus when that is set (noted in the
 * output and the JSON artifact), else the generated synthetic mixes.
 * Pass the result to the explicit-mixes SweepRunner constructor; call
 * after banner() so the corpus note lands in the capture.
 *
 * HIRA_CORPUS_ONCE=1 switches corpus mixes to fixed-work mode: every
 * spec gets the "?once" suffix, so each core executes its trace once
 * and then idles on non-memory instructions instead of looping. This
 * is the standard run-N-instructions trace methodology, and its long
 * idle tails are where the event engine's skip-ahead pays off most.
 */
inline std::vector<WorkloadMix>
mixesFromEnv(const BenchKnobs &k)
{
    const char *dir = std::getenv("HIRA_CORPUS");
    if (dir == nullptr || *dir == '\0')
        return makeMixes(k.mixes, k.cores);
    std::shared_ptr<const Corpus> corpus =
        Corpus::activeOrFatal("HIRA_CORPUS");
    std::size_t priors = 0;
    for (const CorpusEntry &e : corpus->entries())
        priors += e.hasAloneIpc() ? 1 : 0;
    note(strprintf("corpus: %s (%zu traces, %zu with alone-IPC priors)",
                   corpus->dir().c_str(), corpus->size(), priors));
    std::vector<WorkloadMix> mixes =
        makeCorpusMixes(k.mixes, k.cores, *corpus);
    if (envKnob("HIRA_CORPUS_ONCE", 0) != 0) {
        note("corpus mixes run in fixed-work (?once) mode");
        for (WorkloadMix &mix : mixes)
            for (std::string &spec : mix)
                spec += "?once";
    }
    return mixes;
}

/**
 * Incrementally-built sweep plan with handle-based result lookup.
 *
 * Drivers add() every (geometry, scheme) point of their grid up
 * front, keeping the returned handles, then run() the whole plan
 * through SweepRunner::runPoints() — one sharded drain of all
 * (point x mix) simulations instead of a pool + barrier per point.
 */
class SweepGrid
{
  public:
    /** Queue one sweep point; the handle indexes its result. */
    std::size_t
    add(const GeomSpec &geom, const SchemeSpec &scheme)
    {
        points_.push_back(SweepPoint{geom, scheme});
        return points_.size() - 1;
    }

    /** Evaluate every queued point (once, before any at()/ws()). */
    void
    run(SweepRunner &runner)
    {
        results_ = runner.runPoints(points_);
        for (std::size_t i = 0; i < results_.size(); ++i) {
            std::string label =
                strprintf("%s @ %s", points_[i].scheme.label().c_str(),
                          points_[i].geom.key().c_str());
            recordPointTiming(label, results_[i].wallSeconds,
                              results_[i].simCycles, std::string(),
                              results_[i].cacheHit);
            recordPointStats(label, results_[i].refresh,
                             results_[i].metrics);
        }
        recordCacheStats(runner);
    }

    const PointResult &
    at(std::size_t handle) const
    {
        hira_assert(handle < results_.size());
        return results_[handle];
    }

    double ws(std::size_t handle) const { return at(handle).meanWs; }

    std::size_t size() const { return points_.size(); }

  private:
    std::vector<SweepPoint> points_;
    std::vector<PointResult> results_;
};

inline void
footer()
{
    std::printf("==========================================================="
                "=====================\n\n");
    detail::writeJson();
    // Write the HIRA_TRACE_EVENTS file (if any) while the driver is
    // still alive; the at-exit flush is only a fallback.
    TraceEventLog::global().flush();
}

} // namespace benchutil
} // namespace hira

#endif // HIRA_BENCH_BENCH_UTIL_HH
