/**
 * @file
 * Shared helpers for the benchmark harnesses: headered series printing
 * in the layout of the paper's tables/figures, and paper-vs-measured
 * annotation.
 */

#ifndef HIRA_BENCH_BENCH_UTIL_HH
#define HIRA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/knobs.hh"
#include "common/logging.hh"

namespace hira {
namespace benchutil {

using hira::strprintf;

inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("-----------------------------------------------------------"
                "---------------------\n");
}

inline void
knobsLine(const BenchKnobs &k)
{
    std::printf("scale: HIRA_MIXES=%d HIRA_CYCLES=%lld HIRA_WARMUP=%lld "
                "HIRA_ROWS=%d HIRA_THREADS=%d (paper scale: 125 mixes, "
                "200M instrs, 6K rows)\n",
                k.mixes, static_cast<long long>(k.cycles),
                static_cast<long long>(k.warmup), k.rows, k.threads);
}

/** Print one row of a fixed-width series table. */
inline void
seriesRow(const std::string &label, const std::vector<double> &values,
          const char *fmt = "%9.3f")
{
    std::printf("%-24s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

inline void
seriesHeader(const std::string &label,
             const std::vector<std::string> &columns)
{
    std::printf("%-24s", label.c_str());
    for (const std::string &c : columns)
        std::printf("%9s", c.c_str());
    std::printf("\n");
}

inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

inline void
footer()
{
    std::printf("==========================================================="
                "=====================\n\n");
}

} // namespace benchutil
} // namespace hira

#endif // HIRA_BENCH_BENCH_UTIL_HH
