/**
 * @file
 * Fig. 5 reproduction: histograms of absolute and normalized RowHammer
 * thresholds with and without HiRA's second row activation refreshing
 * the victim (Section 4.3).
 */

#include "bench_util.hh"
#include "characterize/rowhammer.hh"
#include "chip/modules.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 5 - RowHammer threshold with vs without HiRA",
           "paper: 27.2K -> 51.0K average (1.9x); 88.1 % of rows above "
           "1.7x");
    knobsLine(knobs);

    ModuleInfo module = moduleByLabel(
        "C0", static_cast<std::uint32_t>(std::max(knobs.rows, 128)), 1);
    DramChip chip(module.config);
    std::uint32_t victims =
        static_cast<std::uint32_t>(std::max(knobs.rows / 8, 24));
    NormalizedNrhResult r =
        measureNormalizedNrh(chip, 0, victimRows(chip.config(), victims));

    std::printf("rows tested: %zu\n", r.normalized.size());
    std::printf("absolute threshold without HiRA: mean %.0f (paper "
                "27.2K)\n",
                r.absoluteWithout.mean());
    std::printf("absolute threshold with HiRA   : mean %.0f (paper "
                "51.0K)\n",
                r.absoluteWith.mean());
    std::printf("normalized threshold           : mean %.2fx (paper "
                "1.90x)\n",
                r.normalized.mean());
    std::printf("fraction of rows above 1.7x    : %.1f %% (paper "
                "88.1 %%)\n",
                100.0 * r.normalized.fractionAbove(1.7));

    std::printf("\nFig. 5a histogram, absolute thresholds 10K..80K "
                "(fraction of rows):\n");
    auto h_without =
        histogram(r.absoluteWithout.values(), 10e3, 80e3, 14);
    auto h_with = histogram(r.absoluteWith.values(), 10e3, 80e3, 14);
    std::printf("  without HiRA  |%s|\n", sparkline(h_without).c_str());
    std::printf("  with HiRA     |%s|\n", sparkline(h_with).c_str());

    std::printf("\nFig. 5b histogram, normalized thresholds "
                "1.0x..3.0x:\n");
    auto h_norm = histogram(r.normalized.values(), 1.0, 3.0, 16);
    std::printf("  normalized    |%s|\n", sparkline(h_norm).c_str());
    for (const HistBin &b : h_norm) {
        if (b.count > 0) {
            std::printf("  [%4.2f, %4.2f): %5.1f %%\n", b.lo, b.hi,
                        100.0 * b.fraction);
        }
    }
    footer();
    return 0;
}
