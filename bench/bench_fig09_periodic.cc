/**
 * @file
 * Fig. 9 reproduction: periodic-refresh performance vs DRAM chip
 * capacity (2..128 Gb) for the REF baseline and HiRA-{0,2,4,8},
 * normalized to the ideal No-Refresh system (9a) and to the baseline
 * (9b). 8-core multiprogrammed mixes, weighted speedup. The whole
 * scheme x capacity grid (No-Refresh references included) runs as one
 * sharded SweepRunner::runPoints() drain.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 9 - periodic refresh vs chip capacity",
           "paper: baseline degrades 26.3 % at 128 Gb; HiRA-2 improves "
           "12.6 % over baseline at 128 Gb; HiRA-2 ~ HiRA-4 ~ HiRA-8");
    knobsLine(knobs);

    SweepRunner runner(knobs, mixesFromEnv(knobs));
    const std::vector<double> capacities = {2, 4, 8, 16, 32, 64, 128};
    std::vector<std::string> cols;
    for (double c : capacities)
        cols.push_back(strprintf("%.0fGb", c));

    std::vector<SchemeSpec> schemes;
    {
        SchemeSpec base;
        base.kind = SchemeKind::Baseline;
        schemes.push_back(base);
        for (int n : {0, 2, 4, 8}) {
            SchemeSpec h;
            h.kind = SchemeKind::HiraMc;
            h.slackN = n;
            schemes.push_back(h);
        }
    }

    SweepGrid grid;
    std::vector<std::size_t> noref_ids;
    for (double cap : capacities) {
        GeomSpec g;
        g.capacityGb = cap;
        SchemeSpec none;
        none.kind = SchemeKind::NoRefresh;
        noref_ids.push_back(grid.add(g, none));
    }
    std::vector<std::vector<std::size_t>> ids(schemes.size());
    for (std::size_t si = 0; si < schemes.size(); ++si) {
        for (double cap : capacities) {
            GeomSpec g;
            g.capacityGb = cap;
            ids[si].push_back(grid.add(g, schemes[si]));
        }
    }
    grid.run(runner);

    std::vector<double> noref;
    for (std::size_t ci = 0; ci < capacities.size(); ++ci)
        noref.push_back(grid.ws(noref_ids[ci]));
    std::vector<std::vector<double>> ws(schemes.size());
    for (std::size_t si = 0; si < schemes.size(); ++si)
        for (std::size_t ci = 0; ci < capacities.size(); ++ci)
            ws[si].push_back(grid.ws(ids[si][ci]));

    std::printf("Fig. 9a: weighted speedup normalized to No Refresh\n");
    seriesHeader("scheme", cols);
    for (std::size_t si = 0; si < schemes.size(); ++si) {
        std::vector<double> row;
        for (std::size_t ci = 0; ci < capacities.size(); ++ci)
            row.push_back(ws[si][ci] / noref[ci]);
        seriesRow(schemes[si].label(), row);
    }

    std::printf("\nFig. 9b: weighted speedup normalized to Baseline\n");
    seriesHeader("scheme", cols);
    for (std::size_t si = 1; si < schemes.size(); ++si) {
        std::vector<double> row;
        for (std::size_t ci = 0; ci < capacities.size(); ++ci)
            row.push_back(ws[si][ci] / ws[0][ci]);
        seriesRow(schemes[si].label(), row);
    }

    std::printf("\nheadlines at 128 Gb: baseline overhead %.1f %% "
                "(paper 26.3 %%), HiRA-2 vs baseline %+.1f %% (paper "
                "+12.6 %%)\n",
                100.0 * (1.0 - ws[0].back() / noref.back()),
                100.0 * (ws[2].back() / ws[0].back() - 1.0));
    footer();
    return 0;
}
