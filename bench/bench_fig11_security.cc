/**
 * @file
 * Fig. 11 reproduction (plus the Fig. 10 model underneath): PARA's
 * probability threshold pth vs RowHammer threshold for different
 * tRefSlack values (11a), and the true RowHammer success probability of
 * PARA-Legacy's configuration (11b).
 */

#include <cmath>

#include "bench_util.hh"
#include "dram/timing.hh"
#include "security/para_analysis.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    banner("Fig. 11 - PARA configuration under queueing slack",
           "paper: pth 0.068 -> 0.860 as NRH 1024 -> 64; legacy pRH up "
           "to 1.32e-15 while strict stays at 1e-15");

    TimingParams tp;
    const std::vector<double> nrh_values = {1024, 512, 256, 128, 64};
    const std::vector<int> slack_n = {0, 2, 4, 8};

    std::printf("Fig. 11a: PARA probability threshold (pth)\n");
    std::vector<std::string> cols = {"NRH=1024", "512", "256", "128",
                                     "64"};
    seriesHeader("config", cols);
    {
        std::vector<double> legacy;
        for (double nrh : nrh_values)
            legacy.push_back(solvePthLegacy(nrh));
        seriesRow("PARA-Legacy", legacy, "%9.4f");
    }
    for (int n : slack_n) {
        double slack_ns = n * tp.tRC;
        std::vector<double> row;
        for (double nrh : nrh_values)
            row.push_back(solvePth(nrh, slackActivations(slack_ns)));
        seriesRow(strprintf("tRefSlack=%dtRC", n), row, "%9.4f");
    }

    std::printf("\nFig. 11b: overall RowHammer success probability "
                "(x1e-15) when pth is configured per PARA-Legacy\n");
    seriesHeader("config", cols);
    for (int n : slack_n) {
        double slack_ns = n * tp.tRC;
        std::vector<double> row;
        for (double nrh : nrh_values) {
            double legacy = solvePthLegacy(nrh);
            row.push_back(rowHammerSuccess(legacy, nrh,
                                           slackActivations(slack_ns)) /
                          1e-15);
        }
        seriesRow(strprintf("legacy@slack=%dtRC", n), row, "%9.3f");
    }
    {
        std::vector<double> row;
        for (double nrh : nrh_values) {
            double p = solvePth(nrh, 0.0);
            row.push_back(rowHammerSuccess(p, nrh, 0.0) / 1e-15);
        }
        seriesRow("strict (ours)", row, "%9.3f");
    }

    std::printf("\nExpression 9 k-factor anchors: k(NRH=50K,pth=0.001)="
                "%.4f (paper 1.0005); k(pth=0.8341,NRH=64)=%.4f (paper "
                "1.3212)\n",
                kFactor(0.001, 50000.0, 0.0), kFactor(0.8341, 64.0, 0.0));
    footer();
    return 0;
}
