/**
 * @file
 * Ablation (DESIGN.md): fine-grained tRefSlack sweep (0..16 tRC) for
 * periodic refresh at 128 Gb. The paper reports saturation beyond
 * 2 tRC (Section 8); this sweep locates the knee in our model.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Ablation - tRefSlack sweep, periodic refresh at 128 Gb",
           "paper (Fig. 9b): benefits saturate beyond tRefSlack = "
           "2 tRC");
    knobsLine(knobs);

    SweepRunner runner(knobs);
    GeomSpec g;
    g.capacityGb = 128.0;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    double ws_base = runner.meanWs(g, base);

    std::printf("%-12s %14s %16s %16s\n", "tRefSlack", "WS/Baseline",
                "access-paired", "deadline misses");
    for (int n : {0, 1, 2, 4, 8, 16}) {
        SchemeSpec s;
        s.kind = SchemeKind::HiraMc;
        s.slackN = n;
        double ws = runner.meanWs(g, s);
        const RefreshStats &rs = runner.lastRefreshStats();
        double paired =
            rs.rowRefreshes == 0
                ? 0.0
                : static_cast<double>(rs.accessPaired) /
                      static_cast<double>(rs.rowRefreshes);
        std::printf("%-12s %14.3f %15.1f%% %16llu\n",
                    strprintf("%d tRC", n).c_str(), ws / ws_base,
                    100.0 * paired,
                    static_cast<unsigned long long>(rs.deadlineMisses));
    }
    footer();
    return 0;
}
