/**
 * @file
 * Ablation (DESIGN.md): fine-grained tRefSlack sweep (0..16 tRC) for
 * periodic refresh at 128 Gb. The paper reports saturation beyond
 * 2 tRC (Section 8); this sweep locates the knee in our model. All
 * slack points run as one sharded SweepRunner::runPoints() drain,
 * with per-point refresh stats taken from the PointResult.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Ablation - tRefSlack sweep, periodic refresh at 128 Gb",
           "paper (Fig. 9b): benefits saturate beyond tRefSlack = "
           "2 tRC");
    knobsLine(knobs);

    SweepRunner runner(knobs);
    GeomSpec g;
    g.capacityGb = 128.0;
    const std::vector<int> slacks = {0, 1, 2, 4, 8, 16};

    SweepGrid grid;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    std::size_t base_id = grid.add(g, base);
    std::vector<std::size_t> ids;
    for (int n : slacks) {
        SchemeSpec s;
        s.kind = SchemeKind::HiraMc;
        s.slackN = n;
        ids.push_back(grid.add(g, s));
    }
    grid.run(runner);
    double ws_base = grid.ws(base_id);

    std::printf("%-12s %14s %16s %16s\n", "tRefSlack", "WS/Baseline",
                "access-paired", "deadline misses");
    for (std::size_t i = 0; i < slacks.size(); ++i) {
        const RefreshStats &rs = grid.at(ids[i]).refresh;
        double paired =
            rs.rowRefreshes == 0
                ? 0.0
                : static_cast<double>(rs.accessPaired) /
                      static_cast<double>(rs.rowRefreshes);
        std::printf("%-12s %14.3f %15.1f%% %16llu\n",
                    strprintf("%d tRC", slacks[i]).c_str(),
                    grid.ws(ids[i]) / ws_base, 100.0 * paired,
                    static_cast<unsigned long long>(rs.deadlineMisses));
    }
    footer();
    return 0;
}
