/**
 * @file
 * Fig. 15 reproduction: effect of channel count (1..8) on PARA with and
 * without HiRA for RowHammer thresholds 1024 / 256 / 64, normalized to
 * the 1-channel 1-rank no-defense baseline. The full
 * threshold x scheme x channel grid runs as one sharded
 * SweepRunner::runPoints() drain.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 15 - channel-count sweep, PARA preventive refreshes",
           "paper: performance rises with channels; HiRA cuts PARA's "
           "overhead at every channel count (88.5 % -> 79.3/75.7 % at "
           "NRH=64, 8ch)");
    knobsLine(knobs);

    SweepRunner runner(knobs, mixesFromEnv(knobs));
    const std::vector<double> nrh_values = {1024.0, 256.0, 64.0};
    const std::vector<int> slacks = {-1, 2, 4}; // -1: plain PARA
    const std::vector<int> channels = {1, 2, 4, 8};
    std::vector<std::string> cols;
    for (int ch : channels)
        cols.push_back(strprintf("%dch", ch));

    SweepGrid grid;
    GeomSpec ref;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    std::size_t ref_id = grid.add(ref, base);

    std::vector<std::vector<std::vector<std::size_t>>> ids(
        nrh_values.size());
    for (std::size_t ni = 0; ni < nrh_values.size(); ++ni) {
        for (int slack : slacks) {
            std::vector<std::size_t> row;
            for (int ch : channels) {
                GeomSpec g;
                g.channels = ch;
                row.push_back(
                    grid.add(g, paraScheme(nrh_values[ni], slack)));
            }
            ids[ni].push_back(row);
        }
    }
    grid.run(runner);
    double ws_ref = grid.ws(ref_id);

    for (std::size_t ni = 0; ni < nrh_values.size(); ++ni) {
        std::printf("NRH = %.0f (normalized to 1ch-1rank no-defense "
                    "baseline)\n",
                    nrh_values[ni]);
        seriesHeader("scheme", cols);
        for (std::size_t si = 0; si < slacks.size(); ++si) {
            std::string label = paraSchemeLabel(slacks[si]);
            std::vector<double> row;
            for (std::size_t chi = 0; chi < channels.size(); ++chi)
                row.push_back(grid.ws(ids[ni][si][chi]) / ws_ref);
            seriesRow(label, row);
        }
        std::printf("\n");
    }
    footer();
    return 0;
}
