/**
 * @file
 * Fig. 15 reproduction: effect of channel count (1..8) on PARA with and
 * without HiRA for RowHammer thresholds 1024 / 256 / 64, normalized to
 * the 1-channel 1-rank no-defense baseline.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 15 - channel-count sweep, PARA preventive refreshes",
           "paper: performance rises with channels; HiRA cuts PARA's "
           "overhead at every channel count (88.5 % -> 79.3/75.7 % at "
           "NRH=64, 8ch)");
    knobsLine(knobs);

    SweepRunner runner(knobs);
    const std::vector<int> channels = {1, 2, 4, 8};
    std::vector<std::string> cols;
    for (int ch : channels)
        cols.push_back(strprintf("%dch", ch));

    GeomSpec ref;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    double ws_ref = runner.meanWs(ref, base);

    for (double nrh : {1024.0, 256.0, 64.0}) {
        std::printf("NRH = %.0f (normalized to 1ch-1rank no-defense "
                    "baseline)\n",
                    nrh);
        seriesHeader("scheme", cols);
        for (int slack : {-1, 2, 4}) {
            SchemeSpec s;
            s.kind = SchemeKind::Baseline;
            s.paraEnabled = true;
            s.nrh = nrh;
            std::string label = "PARA";
            if (slack >= 0) {
                s.preventiveViaHira = true;
                s.slackN = slack;
                label = strprintf("HiRA-%d", slack);
            }
            std::vector<double> row;
            for (int ch : channels) {
                GeomSpec g;
                g.channels = ch;
                row.push_back(runner.meanWs(g, s) / ws_ref);
            }
            seriesRow(label, row);
        }
        std::printf("\n");
    }
    footer();
    return 0;
}
