/**
 * @file
 * Fig. 16 reproduction: effect of rank count (1..8) on PARA with and
 * without HiRA for RowHammer thresholds 1024 / 256 / 64. The full
 * threshold x scheme x rank grid runs as one sharded
 * SweepRunner::runPoints() drain.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 16 - rank-count sweep, PARA preventive refreshes",
           "paper: 2 ranks best; HiRA-2 (HiRA-4) +30.5 % (+42.9 %) over "
           "PARA at 8 ranks, NRH=64");
    knobsLine(knobs);

    SweepRunner runner(knobs, mixesFromEnv(knobs));
    const std::vector<double> nrh_values = {1024.0, 256.0, 64.0};
    const std::vector<int> slacks = {-1, 2, 4}; // -1: plain PARA
    const std::vector<int> ranks = {1, 2, 4, 8};
    std::vector<std::string> cols;
    for (int r : ranks)
        cols.push_back(strprintf("%drk", r));

    SweepGrid grid;
    GeomSpec ref;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    std::size_t ref_id = grid.add(ref, base);

    std::vector<std::vector<std::vector<std::size_t>>> ids(
        nrh_values.size());
    for (std::size_t ni = 0; ni < nrh_values.size(); ++ni) {
        for (int slack : slacks) {
            std::vector<std::size_t> row;
            for (int r : ranks) {
                GeomSpec g;
                g.ranks = r;
                row.push_back(
                    grid.add(g, paraScheme(nrh_values[ni], slack)));
            }
            ids[ni].push_back(row);
        }
    }
    grid.run(runner);
    double ws_ref = grid.ws(ref_id);

    for (std::size_t ni = 0; ni < nrh_values.size(); ++ni) {
        std::printf("NRH = %.0f (normalized to 1ch-1rank no-defense "
                    "baseline)\n",
                    nrh_values[ni]);
        seriesHeader("scheme", cols);
        for (std::size_t si = 0; si < slacks.size(); ++si) {
            std::string label = paraSchemeLabel(slacks[si]);
            std::vector<double> row;
            for (std::size_t ri = 0; ri < ranks.size(); ++ri)
                row.push_back(grid.ws(ids[ni][si][ri]) / ws_ref);
            seriesRow(label, row);
        }
        std::printf("\n");
    }
    footer();
    return 0;
}
