/**
 * @file
 * Fig. 16 reproduction: effect of rank count (1..8) on PARA with and
 * without HiRA for RowHammer thresholds 1024 / 256 / 64.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 16 - rank-count sweep, PARA preventive refreshes",
           "paper: 2 ranks best; HiRA-2 (HiRA-4) +30.5 % (+42.9 %) over "
           "PARA at 8 ranks, NRH=64");
    knobsLine(knobs);

    SweepRunner runner(knobs);
    const std::vector<int> ranks = {1, 2, 4, 8};
    std::vector<std::string> cols;
    for (int r : ranks)
        cols.push_back(strprintf("%drk", r));

    GeomSpec ref;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    double ws_ref = runner.meanWs(ref, base);

    for (double nrh : {1024.0, 256.0, 64.0}) {
        std::printf("NRH = %.0f (normalized to 1ch-1rank no-defense "
                    "baseline)\n",
                    nrh);
        seriesHeader("scheme", cols);
        for (int slack : {-1, 2, 4}) {
            SchemeSpec s;
            s.kind = SchemeKind::Baseline;
            s.paraEnabled = true;
            s.nrh = nrh;
            std::string label = "PARA";
            if (slack >= 0) {
                s.preventiveViaHira = true;
                s.slackN = slack;
                label = strprintf("HiRA-%d", slack);
            }
            std::vector<double> row;
            for (int r : ranks) {
                GeomSpec g;
                g.ranks = r;
                row.push_back(runner.meanWs(g, s) / ws_ref);
            }
            seriesRow(label, row);
        }
        std::printf("\n");
    }
    footer();
    return 0;
}
