/**
 * @file
 * Ablation (DESIGN.md): sensitivity of HiRA-MC's benefit to the SPT
 * isolation density (the paper assumes the measured 32 %; Section 7).
 * Sweeps 10 % .. 100 % at 128 Gb.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Ablation - SPT isolation density sweep (128 Gb, HiRA-4)",
           "paper assumes 32 % of rows can pair (Section 7); denser "
           "isolation gives more pairing freedom");
    knobsLine(knobs);

    SweepRunner runner(knobs);
    GeomSpec g;
    g.capacityGb = 128.0;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    double ws_base = runner.meanWs(g, base);

    std::printf("%-12s %14s %16s\n", "isolation", "WS/Baseline",
                "access-paired");
    for (double iso : {0.10, 0.25, 0.32, 0.60, 1.00}) {
        SchemeSpec s;
        s.kind = SchemeKind::HiraMc;
        s.slackN = 4;
        s.sptIsolation = iso;
        double ws = runner.meanWs(g, s);
        const RefreshStats &rs = runner.lastRefreshStats();
        double paired =
            rs.rowRefreshes == 0
                ? 0.0
                : static_cast<double>(rs.accessPaired) /
                      static_cast<double>(rs.rowRefreshes);
        std::printf("%-12s %14.3f %15.1f%%\n",
                    strprintf("%.0f %%", 100.0 * iso).c_str(),
                    ws / ws_base, 100.0 * paired);
    }
    footer();
    return 0;
}
