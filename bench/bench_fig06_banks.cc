/**
 * @file
 * Fig. 6 reproduction: per-bank variation of the normalized RowHammer
 * threshold across all 16 banks of modules A0, B0, C0 (Section 4.4.2).
 */

#include "bench_util.hh"
#include "characterize/rowhammer.hh"
#include "chip/modules.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 6 - normalized RowHammer threshold across banks",
           "paper: every bank above 1.56x; bank means 1.80x-1.97x; "
           "overall mean 1.89x");
    knobsLine(knobs);

    std::uint32_t chip_rows =
        static_cast<std::uint32_t>(std::max(knobs.rows, 128));
    std::uint32_t victims =
        static_cast<std::uint32_t>(std::max(knobs.rows / 16, 10));

    double overall_sum = 0.0;
    int overall_n = 0;
    for (const char *label : {"A0", "B0", "C0"}) {
        ModuleInfo module = moduleByLabel(label, chip_rows, 16);
        DramChip chip(module.config);
        auto rows = victimRows(chip.config(), victims);
        std::printf("DIMM %s (bank: min/mean/max)\n", label);
        double bank_min = 1e9, bank_max = 0.0;
        for (BankId bank = 0; bank < 16; ++bank) {
            NormalizedNrhResult r =
                measureNormalizedNrh(chip, bank, rows);
            BoxStats b = r.normalized.box();
            std::printf("  bank %2u: %4.2f / %4.2f / %4.2f\n", bank,
                        b.min, b.mean, b.max);
            bank_min = std::min(bank_min, b.mean);
            bank_max = std::max(bank_max, b.mean);
            overall_sum += b.mean;
            ++overall_n;
        }
        std::printf("  bank-mean range: %.2fx .. %.2fx (paper: 1.80x .. "
                    "1.97x across modules)\n",
                    bank_min, bank_max);
    }
    std::printf("overall mean across banks/modules: %.2fx (paper: "
                "1.89x)\n",
                overall_sum / overall_n);
    footer();
    return 0;
}
