/**
 * @file
 * Fig. 14 reproduction: effect of rank count (1..8) on Baseline and
 * HiRA-{2,4} periodic-refresh performance for 2 / 8 / 32 Gb chips.
 * Ranks share one command bus, so high rank counts expose HiRA's
 * command-bus pressure (Section 12, third limitation). The full
 * capacity x scheme x rank grid runs as one sharded
 * SweepRunner::runPoints() drain.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 14 - rank-count sweep, periodic refresh",
           "paper: 2 ranks best; beyond 2 the shared command bus "
           "saturates; HiRA-2 still +12.1 % over baseline at 8 ranks / "
           "32 Gb");
    knobsLine(knobs);

    SweepRunner runner(knobs, mixesFromEnv(knobs));
    const std::vector<double> capacities = {2.0, 8.0, 32.0};
    const std::vector<int> ranks = {1, 2, 4, 8};
    const std::vector<std::string> schemes = {"Baseline", "HiRA-2",
                                              "HiRA-4"};
    std::vector<std::string> cols;
    for (int r : ranks)
        cols.push_back(strprintf("%drk", r));

    // The 1ch-1rank Baseline reference IS the first Baseline row
    // entry, so it needs no extra sweep point.
    SweepGrid grid;
    std::vector<std::vector<std::vector<std::size_t>>> ids(
        capacities.size());
    for (std::size_t ci = 0; ci < capacities.size(); ++ci) {
        for (const std::string &label : schemes) {
            std::vector<std::size_t> row;
            for (int r : ranks) {
                GeomSpec g;
                g.capacityGb = capacities[ci];
                g.ranks = r;
                row.push_back(grid.add(g, periodicScheme(label)));
            }
            ids[ci].push_back(row);
        }
    }
    grid.run(runner);

    for (std::size_t ci = 0; ci < capacities.size(); ++ci) {
        double ws_ref = grid.ws(ids[ci][0][0]); // Baseline @ 1rk
        std::printf("%.0f Gb chips (normalized to 1ch-1rank "
                    "baseline)\n",
                    capacities[ci]);
        seriesHeader("scheme", cols);
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            std::vector<double> row;
            for (std::size_t ri = 0; ri < ranks.size(); ++ri)
                row.push_back(grid.ws(ids[ci][si][ri]) / ws_ref);
            seriesRow(schemes[si], row);
        }
        std::printf("\n");
    }
    footer();
    return 0;
}
