/**
 * @file
 * Fig. 14 reproduction: effect of rank count (1..8) on Baseline and
 * HiRA-{2,4} periodic-refresh performance for 2 / 8 / 32 Gb chips.
 * Ranks share one command bus, so high rank counts expose HiRA's
 * command-bus pressure (Section 12, third limitation).
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 14 - rank-count sweep, periodic refresh",
           "paper: 2 ranks best; beyond 2 the shared command bus "
           "saturates; HiRA-2 still +12.1 % over baseline at 8 ranks / "
           "32 Gb");
    knobsLine(knobs);

    SweepRunner runner(knobs);
    const std::vector<int> ranks = {1, 2, 4, 8};
    std::vector<std::string> cols;
    for (int r : ranks)
        cols.push_back(strprintf("%drk", r));

    for (double cap : {2.0, 8.0, 32.0}) {
        GeomSpec ref;
        ref.capacityGb = cap;
        SchemeSpec base;
        base.kind = SchemeKind::Baseline;
        double ws_ref = runner.meanWs(ref, base);

        std::printf("%.0f Gb chips (normalized to 1ch-1rank "
                    "baseline)\n",
                    cap);
        seriesHeader("scheme", cols);
        for (const char *label : {"Baseline", "HiRA-2", "HiRA-4"}) {
            SchemeSpec s;
            if (std::string(label) == "Baseline") {
                s.kind = SchemeKind::Baseline;
            } else {
                s.kind = SchemeKind::HiraMc;
                s.slackN = std::string(label) == "HiRA-2" ? 2 : 4;
            }
            std::vector<double> row;
            for (int r : ranks) {
                GeomSpec g;
                g.capacityGb = cap;
                g.ranks = r;
                row.push_back(runner.meanWs(g, s) / ws_ref);
            }
            seriesRow(label, row);
        }
        std::printf("\n");
    }
    footer();
    return 0;
}
