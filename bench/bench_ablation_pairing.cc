/**
 * @file
 * Ablation (DESIGN.md): contribution of each HiRA-MC pairing mechanism
 * at 128 Gb — refresh-access pairing (case 1), refresh-refresh pairing
 * incl. schedule pull-ahead (case 2), both, or neither (standalone
 * per-row refreshes only).
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Ablation - HiRA-MC pairing mechanisms (128 Gb, HiRA-4)",
           "quantifies case-1 (refresh-access) vs case-2 "
           "(refresh-refresh + pull-ahead) parallelization");
    knobsLine(knobs);

    SweepRunner runner(knobs);
    GeomSpec g;
    g.capacityGb = 128.0;

    SchemeSpec none;
    none.kind = SchemeKind::NoRefresh;
    double ws_ideal = runner.meanWs(g, none);
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    double ws_base = runner.meanWs(g, base);

    struct Variant
    {
        const char *name;
        bool access, rr, pull;
    };
    const Variant variants[] = {
        {"standalone only", false, false, false},
        {"+refresh-refresh", false, true, false},
        {"+pull-ahead", false, true, true},
        {"+refresh-access", true, false, false},
        {"full HiRA-MC", true, true, true},
    };

    std::printf("%-20s %14s %14s %16s\n", "variant", "WS/NoRefresh",
                "WS/Baseline", "paired fraction");
    std::printf("%-20s %14.3f %14s %16s\n", "Baseline (REF)",
                ws_base / ws_ideal, "1.000", "-");
    for (const Variant &v : variants) {
        SchemeSpec s;
        s.kind = SchemeKind::HiraMc;
        s.slackN = 4;
        s.accessPairing = v.access;
        s.refreshPairing = v.rr || v.pull;
        s.pullAhead = v.pull;
        double ws = runner.meanWs(g, s);
        const RefreshStats &rs = runner.lastRefreshStats();
        double paired =
            rs.rowRefreshes == 0
                ? 0.0
                : static_cast<double>(rs.accessPaired +
                                      rs.refreshPaired) /
                      static_cast<double>(rs.rowRefreshes);
        std::printf("%-20s %14.3f %14.3f %15.1f%%\n", v.name,
                    ws / ws_ideal, ws / ws_base, 100.0 * paired);
    }
    note("who wins: full HiRA-MC; each pairing mechanism independently "
         "recovers part of the gap between standalone per-row refresh "
         "and the ideal");
    footer();
    return 0;
}
