/**
 * @file
 * Mitigation zoo x memory standard: every registered refresh scheme
 * (NoRefresh, Baseline, HiRA-2, RFM, PRAC, Graphene-TRR) on every
 * swept memory standard (DDR4-2400, DDR5-4800), weighted speedup over
 * 8-core multiprogrammed mixes. One section per standard: absolute WS
 * per scheme plus rows normalized to that standard's Baseline, so the
 * artifact answers "what does each mitigation cost, and does the
 * answer change across standards" directly. The whole scheme x
 * standard grid runs as one sharded SweepRunner::runPoints() drain.
 *
 * Scale caveat: the committed snapshot uses the default knob scale
 * (HIRA_CYCLES=150000). Past ~200k cycles the 8-core/1-channel config
 * saturates the read queue, and the capless FR-FCFS scheduler starves
 * row-conflict requests behind streaming row hits; periodic REF acts
 * as an accidental anti-starvation drain, so long-horizon runs show
 * refresh-bearing schemes *above* the NoRefresh ideal. That is a
 * property of the controller model at saturation, not of the
 * mitigations under test.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"
#include "sim/scheme_registry.hh"

using namespace hira;
using namespace hira::benchutil;

namespace {

std::vector<SchemeSpec>
zooSchemes()
{
    std::vector<SchemeSpec> schemes;
    schemes.push_back(schemeSpecByName("norefresh"));
    schemes.push_back(schemeSpecByName("baseline"));
    SchemeSpec hira = schemeSpecByName("hira");
    hira.slackN = 2;
    schemes.push_back(hira);
    schemes.push_back(schemeSpecByName("rfm"));      // RAAIMT 32
    schemes.push_back(schemeSpecByName("prac"));     // threshold 256
    schemes.push_back(schemeSpecByName("graphene")); // 16-entry trackers
    return schemes;
}

} // namespace

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Mitigation zoo x memory standard",
           "registry sweep: RowHammer mitigations (RFM, PRAC, "
           "Graphene-TRR) vs the paper's Baseline/HiRA on DDR4-2400 "
           "and DDR5-4800");
    knobsLine(knobs);

    SweepRunner runner(knobs, mixesFromEnv(knobs));
    const std::vector<std::string> standards = {"ddr4_2400", "ddr5_4800"};
    std::vector<SchemeSpec> schemes = zooSchemes();

    SweepGrid grid;
    // ids[standard][scheme]
    std::vector<std::vector<std::size_t>> ids(standards.size());
    for (std::size_t ti = 0; ti < standards.size(); ++ti) {
        GeomSpec g;
        g.standard = standards[ti];
        g.capacityGb = standardByName(standards[ti]).defaultCapacityGb;
        for (const SchemeSpec &s : schemes)
            ids[ti].push_back(grid.add(g, s));
    }
    grid.run(runner);

    const std::vector<std::string> cols = {"meanWS", "vsBaseline"};
    for (std::size_t ti = 0; ti < standards.size(); ++ti) {
        const MemoryStandard &std_ = standardByName(standards[ti]);
        double baseWs = grid.ws(ids[ti][1]); // schemes[1] is Baseline
        std::printf("%s%s (%.0f Gb chips): weighted speedup per "
                    "mitigation\n",
                    ti > 0 ? "\n" : "", std_.display,
                    std_.defaultCapacityGb);
        seriesHeader(std_.display, cols);
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            double ws = grid.ws(ids[ti][si]);
            seriesRow(schemes[si].label(), {ws, ws / baseWs});
        }
    }

    double d4Base = grid.ws(ids[0][1]);
    double d5Base = grid.ws(ids[1][1]);
    std::printf("\nheadlines: DDR5 Baseline WS %+.1f %% vs DDR4 "
                "(halved tREFI, doubled clock); zoo overheads vs "
                "Baseline printed above\n",
                100.0 * (d5Base / d4Base - 1.0));
    footer();
    return 0;
}
