/**
 * @file
 * Table 1 / Table 4 reproduction: per-module HiRA coverage (min/avg/max)
 * and normalized RowHammer threshold (min/avg/max) for the seven tested
 * DDR4 modules, plus the non-HiRA vendor behavior (Section 12).
 */

#include "bench_util.hh"
#include "characterize/coverage.hh"
#include "characterize/rowhammer.hh"
#include "chip/modules.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Table 1 / Table 4 - tested DDR4 modules",
           "HiRA coverage and normalized RowHammer threshold per module");
    knobsLine(knobs);

    std::uint32_t chip_rows =
        static_cast<std::uint32_t>(std::max(knobs.rows, 128));
    std::uint32_t tested =
        static_cast<std::uint32_t>(std::max(knobs.rows / 4, 48));
    std::uint32_t victims =
        static_cast<std::uint32_t>(std::max(knobs.rows / 16, 12));

    std::printf("%-6s %-10s | %-29s | %-29s\n", "module", "vendor",
                "coverage min/avg/max (paper)", "norm NRH min/avg/max "
                "(paper)");
    for (const ModuleInfo &m : hiraModules(chip_rows, 2)) {
        DramChip chip(m.config);
        CoverageConfig ccfg;
        ccfg.rows = spreadRows(chip.config(), tested);
        ccfg.allPatterns = false;
        CoverageResult cov = measureCoverage(chip, ccfg);
        NormalizedNrhResult nrh = measureNormalizedNrh(
            chip, 0, victimRows(chip.config(), victims));
        BoxStats cb = cov.box();
        BoxStats nb = nrh.normalized.box();
        std::printf("%-6s %-10s | %4.1f/%4.1f/%4.1f%% "
                    "(%4.1f/%4.1f/%4.1f) | %4.2f/%4.2f/%4.2f "
                    "(%4.2f/%4.2f/%4.2f)\n",
                    m.label.c_str(), m.vendor.c_str(), 100.0 * cb.min,
                    100.0 * cb.mean, 100.0 * cb.max,
                    100.0 * m.paper.covMin, 100.0 * m.paper.covAvg,
                    100.0 * m.paper.covMax, nb.min, nb.mean, nb.max,
                    m.paper.nrhMin, m.paper.nrhAvg, m.paper.nrhMax);
    }

    // Non-HiRA vendors (Section 12): Algorithm 1 shows no corruption
    // (false positive), Algorithm 2 shows the threshold does not move.
    for (const char *label : {"micron-like", "samsung-like"}) {
        DramChip chip(nonHiraVendorConfig(label, chip_rows, 1));
        NormalizedNrhResult nrh = measureNormalizedNrh(
            chip, 0, victimRows(chip.config(), victims / 2 + 2));
        std::printf("%-6s %-10s | %-29s | %4.2f/%4.2f/%4.2f (~1.0: HiRA "
                    "ignored)\n",
                    label, "-", "n/a (Alg.1 false-positive)",
                    nrh.normalized.box().min, nrh.normalized.box().mean,
                    nrh.normalized.box().max);
    }
    note("coverage spread per module is wider than Table 4's (binomial "
         "sampling noise of the behavioral isolation map); module means "
         "and ordering match");
    footer();
    return 0;
}
