/**
 * @file
 * Fig. 12 reproduction: PARA's performance impact with and without
 * HiRA across RowHammer thresholds (1024 down to 64), normalized to a
 * baseline with no RowHammer defense (12a) and to plain PARA (12b).
 * Periodic refresh stays on REF commands; HiRA serves the preventive
 * refreshes (Section 9.2). The scheme x threshold grid runs as one
 * sharded SweepRunner::runPoints() drain.
 */

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Fig. 12 - PARA preventive refreshes with and without HiRA",
           "paper: PARA costs 29 % at NRH=1024 and 96 % at NRH=64; "
           "HiRA-4 gives 3.73x at NRH=64; slack helps monotonically");
    knobsLine(knobs);

    SweepRunner runner(knobs, mixesFromEnv(knobs));
    const std::vector<double> nrh_values = {1024, 512, 256, 128, 64};
    const std::vector<int> slacks = {-1, 0, 2, 4, 8}; // -1: plain PARA
    std::vector<std::string> cols;
    for (double n : nrh_values)
        cols.push_back(strprintf("NRH=%.0f", n));

    // Reference: baseline refresh, no RowHammer defense.
    SweepGrid grid;
    GeomSpec g;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    std::size_t base_id = grid.add(g, base);

    std::vector<std::vector<std::size_t>> ids(slacks.size());
    std::vector<std::string> labels;
    for (std::size_t si = 0; si < slacks.size(); ++si) {
        for (double nrh : nrh_values)
            ids[si].push_back(grid.add(g, paraScheme(nrh, slacks[si])));
        labels.push_back(paraSchemeLabel(slacks[si]));
    }
    grid.run(runner);

    std::vector<double> base_ws(nrh_values.size(), grid.ws(base_id));
    std::vector<std::vector<double>> ws(slacks.size());
    for (std::size_t si = 0; si < slacks.size(); ++si)
        for (std::size_t ni = 0; ni < nrh_values.size(); ++ni)
            ws[si].push_back(grid.ws(ids[si][ni]));

    std::printf("Fig. 12a: weighted speedup normalized to no-defense "
                "baseline\n");
    seriesHeader("scheme", cols);
    for (std::size_t si = 0; si < ws.size(); ++si) {
        std::vector<double> row;
        for (std::size_t ni = 0; ni < nrh_values.size(); ++ni)
            row.push_back(ws[si][ni] / base_ws[ni]);
        seriesRow(labels[si], row);
    }

    std::printf("\nFig. 12b: weighted speedup normalized to PARA\n");
    seriesHeader("scheme", cols);
    for (std::size_t si = 1; si < ws.size(); ++si) {
        std::vector<double> row;
        for (std::size_t ni = 0; ni < nrh_values.size(); ++ni)
            row.push_back(ws[si][ni] / ws[0][ni]);
        seriesRow(labels[si], row);
    }

    std::size_t last = nrh_values.size() - 1;
    std::printf("\nheadlines at NRH=64: PARA overhead %.1f %% (paper "
                "96.0 %%); HiRA-4 speedup over PARA %.2fx (paper "
                "3.73x)\n",
                100.0 * (1.0 - ws[0][last] / base_ws[last]),
                ws[3][last] / ws[0][last]);
    footer();
    return 0;
}
