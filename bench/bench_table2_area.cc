/**
 * @file
 * Table 2 reproduction: area and access latency of HiRA-MC's components
 * (22 nm SRAM model), plus the Section 6.2 worst-case query latency
 * argument.
 */

#include "bench_util.hh"
#include "hwmodel/sram_model.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    banner("Table 2 - HiRA-MC hardware complexity (per DRAM rank)",
           "paper: 0.00923 mm^2 total, 6.31 ns worst-case query < tRP");

    HiraMcCost cost = hiraMcCost();
    std::printf("%-28s %12s %12s %12s %12s\n", "component", "area mm^2",
                "paper", "access ns", "paper");
    for (const ComponentCost *c : cost.components()) {
        std::printf("%-28s %12.5f %12.5f %12.2f %12.2f\n",
                    c->name.c_str(), c->sram.areaMm2, c->paperAreaMm2,
                    c->sram.accessNs, c->paperAccessNs);
    }
    std::printf("%-28s %12.5f %12.5f\n", "overall", cost.totalAreaMm2(),
                0.00923);
    std::printf("\nworst-case query latency (68 pipelined Refresh-Table/"
                "SPT iterations + RefPtr): %.2f ns (paper 6.31 ns)\n",
                cost.worstCaseQueryNs());
    std::printf("fits within tRP (14.25 ns): %s\n",
                cost.worstCaseQueryNs() < 14.25 ? "yes" : "NO");
    std::printf("fraction of a 22 nm processor die: %.5f %% (paper "
                "0.0023 %%)\n",
                100.0 * cost.dieFraction());
    footer();
    return 0;
}
