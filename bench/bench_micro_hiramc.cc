/**
 * @file
 * google-benchmark micro-benchmarks backing Section 6.2's latency
 * argument in software: HiRA-MC's table operations and the controller's
 * per-cycle cost.
 */

#include <benchmark/benchmark.h>

#include "core/hira_mc.hh"
#include "mem/controller.hh"
#include "security/para_analysis.hh"

using namespace hira;

namespace {

void
BM_RefreshTableScan(benchmark::State &state)
{
    RefreshTable table(68);
    for (int i = 0; i < 68; ++i) {
        table.insert(static_cast<Cycle>(1000 + i * 7), 0,
                     static_cast<BankId>(i % 16),
                     i % 3 == 0 ? RefreshType::Periodic
                                : RefreshType::Preventive);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.earliestForBank(0, 5));
        benchmark::DoNotOptimize(table.earliestForRank(0));
    }
}
BENCHMARK(BM_RefreshTableScan);

void
BM_SptLookup(benchmark::State &state)
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    SubarrayPairsTable spt(geom);
    SubarrayId a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(spt.isolated(a, (a * 7 + 13) % 128));
        a = (a + 1) % 128;
    }
}
BENCHMARK(BM_SptLookup);

void
BM_RefPtrPick(benchmark::State &state)
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    SubarrayPairsTable spt(geom);
    RefPtrTable rp(16, 128, 512);
    for (auto _ : state) {
        RefPtrPick pick = rp.peek(3, 17, spt);
        benchmark::DoNotOptimize(pick);
        rp.advance(3, pick.subarray);
    }
}
BENCHMARK(BM_RefPtrPick);

void
BM_SolvePth(benchmark::State &state)
{
    double nrh = static_cast<double>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(solvePth(nrh, 4.0));
}
BENCHMARK(BM_SolvePth)->Arg(64)->Arg(1024);

void
BM_ControllerTickIdle(benchmark::State &state)
{
    ControllerConfig cc;
    cc.geom = Geometry::forCapacityGb(8.0);
    cc.tp = ddr4_2400(8.0);
    MemoryController ctrl(0, cc, std::make_unique<HiraMc>(HiraMcConfig{}));
    Cycle now = 1;
    for (auto _ : state) {
        ctrl.tick(now++);
        ctrl.completions().clear();
    }
}
BENCHMARK(BM_ControllerTickIdle);

void
BM_ControllerTickLoaded(benchmark::State &state)
{
    ControllerConfig cc;
    cc.geom = Geometry::forCapacityGb(8.0);
    cc.tp = ddr4_2400(8.0);
    MemoryController ctrl(0, cc, std::make_unique<HiraMc>(HiraMcConfig{}));
    Rng rng(1);
    Cycle now = 1;
    std::uint64_t tag = 1;
    for (auto _ : state) {
        if (!ctrl.readQueueFull() && rng.chance(0.2)) {
            Request r;
            r.type = MemType::Read;
            r.da.channel = 0;
            r.da.bank = static_cast<BankId>(rng.below(16));
            r.da.row = static_cast<RowId>(rng.below(65536));
            r.addr = tag * 64;
            r.tag = tag++;
            r.arrival = now;
            ctrl.enqueue(r);
        }
        ctrl.tick(now++);
        ctrl.completions().clear();
    }
}
BENCHMARK(BM_ControllerTickLoaded);

} // namespace

BENCHMARK_MAIN();
