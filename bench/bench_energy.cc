/**
 * @file
 * Energy extension (not a paper figure; motivated by Section 5.2's
 * power-budget discussion): refresh energy of rank-level REF vs HiRA's
 * per-row refresh stream across chip capacities, IDD-based model.
 */

#include "bench_util.hh"
#include "power/energy_model.hh"
#include "sim/experiment.hh"

using namespace hira;
using namespace hira::benchutil;

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    banner("Extension - refresh energy, REF baseline vs HiRA-MC",
           "IDD-based attribution; HiRA trades REF bursts for row "
           "activations (Section 5.2 discusses the power budget via "
           "tFAW)");
    knobsLine(knobs);

    WorkloadMix mix = {"mcf-like", "libquantum-like", "gcc-like",
                       "lbm-like", "h264-like", "milc-like",
                       "omnetpp-like", "astar-like"};
    const Cycle warm = static_cast<Cycle>(knobs.warmup);
    const Cycle run = static_cast<Cycle>(knobs.cycles);

    std::printf("%-8s %-10s %14s %14s %14s %14s\n", "chip", "scheme",
                "refresh uJ", "total uJ", "refresh %", "rows/REFs");
    for (double cap : {8.0, 32.0, 128.0}) {
        GeomSpec g;
        g.capacityGb = cap;
        EnergyModel em(g.toTiming());
        for (const char *label : {"Baseline", "HiRA-2"}) {
            SchemeSpec s;
            if (std::string(label) == "Baseline") {
                s.kind = SchemeKind::Baseline;
            } else {
                s.kind = SchemeKind::HiraMc;
                s.slackN = 2;
            }
            RunResult r =
                runOne(makeSystemConfig(g, s, mix, 5), warm, run);
            EnergyBreakdown e = em.attribute(
                r.sys.controller, r.sys.refresh, 1, warm + run);
            std::printf("%-8s %-10s %14.2f %14.2f %13.1f%% %14llu\n",
                        strprintf("%.0fGb", cap).c_str(), label,
                        e.refreshNj / 1000.0, e.totalNj() / 1000.0,
                        100.0 * e.refreshNj / e.totalNj(),
                        static_cast<unsigned long long>(
                            r.sys.refresh.rowRefreshes +
                            r.sys.refresh.refCommands));
        }
    }
    note("HiRA's per-row energy stays within the same order as REF's "
         "per-row share; the win is latency hiding, not raw energy");
    footer();
    return 0;
}
