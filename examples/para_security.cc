/**
 * @file
 * Configuring PARA for a target reliability: the Section 9.1 analysis
 * as a command-line tool. Prints the probability threshold required for
 * a chip's RowHammer threshold under a chosen queueing slack, and what
 * would happen with PARA-Legacy's optimistic configuration.
 *
 * Usage: ./build/examples/para_security [nrh] [slack_in_tRC]
 */

#include <cstdio>
#include <cstdlib>

#include "dram/timing.hh"
#include "security/para_analysis.hh"

using namespace hira;

int
main(int argc, char **argv)
{
    double nrh = argc > 1 ? std::atof(argv[1]) : 128.0;
    int slack_n = argc > 2 ? std::atoi(argv[2]) : 4;

    TimingParams tp;
    ParaParams pp;
    double slack_acts = slackActivations(slack_n * tp.tRC, pp);

    std::printf("chip RowHammer threshold (NRH)  : %.0f activations\n",
                nrh);
    std::printf("refresh window / row cycle      : %.0f activations\n",
                pp.windowActivations());
    std::printf("queueing slack                  : %d tRC (%.1f extra "
                "activations)\n",
                slack_n, slack_acts);

    double pth = solvePth(nrh, slack_acts, pp);
    std::printf("\nrequired PARA threshold (Expression 8, target "
                "1e-15): pth = %.4f\n", pth);
    std::printf("  -> every row activation triggers a preventive "
                "refresh with %.2f %% probability\n", 100.0 * pth);

    double legacy = solvePthLegacy(nrh, pp);
    double true_prh = rowHammerSuccess(legacy, nrh, slack_acts, pp);
    std::printf("\nPARA-Legacy would pick pth = %.4f, whose true "
                "success probability under this slack is %.3g "
                "(%.2fx the 1e-15 target)\n",
                legacy, true_prh, true_prh / 1e-15);
    std::printf("k factor at the legacy threshold: %.4f\n",
                kFactor(legacy, nrh, slack_acts, pp));
    return 0;
}
