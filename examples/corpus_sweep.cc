/**
 * @file
 * Trace-corpus walkthrough (src/workload/corpus.hh).
 *
 * Sweeps intensity-binned mixes of a trace corpus twice: once
 * measuring the IPC-alone references by simulation, then again with
 * those measurements written into the manifest as alone-IPC priors.
 * The prior-backed sweep must skip every IPC-alone warmup run and
 * still produce bitwise-identical weighted speedups — so this doubles
 * as a CI smoke check of the corpus path, including under sanitizers.
 *
 * With HIRA_CORPUS=<dir> set, the corpus is loaded from there (e.g.,
 * one built by tools/hira_tracegen); otherwise a tiny corpus is
 * synthesized into a temp directory first.
 *
 * Build and run: ./build/examples/example_corpus_sweep
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "common/knobs.hh"
#include "sim/experiment.hh"
#include "sim/trace.hh"
#include "sim/workloads.hh"
#include "workload/corpus.hh"

using namespace hira;

namespace {

std::string
makeTempDir()
{
    const char *base = std::getenv("TMPDIR");
    std::string templ = std::string(base != nullptr ? base : "/tmp") +
                        "/hira_corpus_sweep.XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
        std::perror("mkdtemp");
        std::exit(1);
    }
    return std::string(buf.data());
}

/** Synthesize a 4-trace corpus (no priors) into @p dir. */
std::vector<CorpusEntry>
synthesizeCorpus(const std::string &dir)
{
    const std::vector<std::string> names = {"mcf-like", "gcc-like",
                                            "h264-like",
                                            "libquantum-like"};
    std::vector<CorpusEntry> entries;
    for (std::size_t i = 0; i < names.size(); ++i) {
        CorpusEntry e;
        e.name = names[i];
        e.format = i % 2 == 0 ? TraceFormat::Text : TraceFormat::Binary;
        e.file = e.name +
                 (e.format == TraceFormat::Binary ? ".bin" : ".trace");
        e.instructions = 20000;
        const BenchmarkProfile &prof = benchmarkByName(e.name);
        TraceGen gen(prof, hashString(e.name), 0, 1ull << 28);
        dumpTrace(gen, dir + "/" + e.file, e.format, e.instructions);
        e.mpki = classifyApki(1000.0 * prof.memPerInstr);
        entries.push_back(std::move(e));
    }
    writeManifest(dir, entries);
    return entries;
}

} // namespace

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();

    const char *env = std::getenv("HIRA_CORPUS");
    std::string dir = env != nullptr && *env != '\0' ? env : "";
    bool ownDir = dir.empty();
    std::vector<std::string> cleanup;
    if (ownDir) {
        dir = makeTempDir();
        std::printf("synthesizing a tiny corpus in %s\n", dir.c_str());
        for (const CorpusEntry &e : synthesizeCorpus(dir))
            cleanup.push_back(e.path.empty() ? dir + "/" + e.file
                                             : e.path);
        cleanup.push_back(dir + "/manifest.tsv");
        cleanup.push_back(dir + "/manifest.json");
    }

    auto corpus = std::make_shared<const Corpus>(Corpus::load(dir));
    Corpus::setActive(corpus);
    std::printf("corpus %s: %zu traces\n", dir.c_str(), corpus->size());

    std::vector<WorkloadMix> mixes =
        makeCorpusMixes(knobs.mixes, knobs.cores, *corpus);
    GeomSpec geom;
    SchemeSpec scheme;
    scheme.kind = SchemeKind::Baseline;

    // Pass 1: IPC-alone references resolve from the manifest when it
    // carries priors, by simulation otherwise.
    SweepRunner measured(knobs, mixes);
    double ws_measured = measured.meanWs(geom, scheme);
    std::printf("pass 1: mean weighted speedup %.6f (%llu alone "
                "reference runs)\n",
                ws_measured,
                static_cast<unsigned long long>(
                    measured.aloneRunCount()));

    // Pass 2: promote pass 1's alone IPCs to manifest priors; the
    // sweep must then skip every alone run and reproduce pass 1
    // bitwise.
    std::set<std::string> names;
    for (const WorkloadMix &mix : mixes)
        for (const std::string &spec : mix)
            names.insert(spec.substr(std::string("corpus:").size()));
    std::vector<CorpusEntry> entries = corpus->entries();
    for (CorpusEntry &e : entries) {
        if (names.count(e.name) != 0)
            e.aloneIpc = measured.aloneIpc(e.spec(), geom);
    }
    Corpus::setActive(
        std::make_shared<const Corpus>(Corpus(dir, entries)));

    SweepRunner primed(knobs, mixes);
    double ws_primed = primed.meanWs(geom, scheme);
    std::printf("pass 2: mean weighted speedup %.6f (%llu alone "
                "reference runs)\n",
                ws_primed,
                static_cast<unsigned long long>(primed.aloneRunCount()));

    Corpus::setActive(nullptr);
    if (ownDir) {
        for (const std::string &path : cleanup)
            ::unlink(path.c_str());
        ::rmdir(dir.c_str());
    }

    if (ws_primed != ws_measured) {
        std::printf("FAIL: prior-backed sweep diverged from the "
                    "measured one\n");
        return 1;
    }
    if (primed.aloneRunCount() != 0) {
        std::printf("FAIL: priors did not suppress the alone runs\n");
        return 1;
    }
    std::printf("alone-IPC priors reproduce the measured sweep "
                "bitwise, with zero reference runs\n");
    return 0;
}
