/**
 * @file
 * Characterizing an unknown DRAM module, exactly as Section 4 does on
 * real chips: measure HiRA coverage (Algorithm 1), verify the second
 * row activation with RowHammer (Algorithm 2), and derive the SPT the
 * memory controller would be programmed with (Section 5.1.4).
 *
 * Run with a module label: ./build/examples/characterize_chip [C0|A0|..]
 */

#include <cstdio>
#include <string>

#include "characterize/coverage.hh"
#include "characterize/rowhammer.hh"
#include "chip/modules.hh"

using namespace hira;

int
main(int argc, char **argv)
{
    std::string label = argc > 1 ? argv[1] : "C0";
    ModuleInfo module = moduleByLabel(label, 512, 2);
    DramChip chip(module.config);
    std::printf("characterizing module %s (%s, %.0f Gb, die rev. %s)\n",
                module.label.c_str(), module.vendor.c_str(),
                module.chipCapacityGb, module.dieRev.c_str());

    // Step 1: HiRA coverage at the reliable operating point.
    CoverageConfig ccfg;
    ccfg.rows = spreadRows(chip.config(), 96);
    CoverageResult cov = measureCoverage(chip, ccfg);
    BoxStats cb = cov.box();
    std::printf("step 1 - Algorithm 1 coverage at t1=t2=3ns: "
                "%.1f/%.1f/%.1f %% min/avg/max (paper: "
                "%.1f/%.1f/%.1f %%)\n",
                100.0 * cb.min, 100.0 * cb.mean, 100.0 * cb.max,
                100.0 * module.paper.covMin, 100.0 * module.paper.covAvg,
                100.0 * module.paper.covMax);

    // Step 2: verify the second activation is not ignored (Section 4.3).
    NormalizedNrhResult nrh =
        measureNormalizedNrh(chip, 0, victimRows(chip.config(), 16));
    std::printf("step 2 - Algorithm 2 normalized RowHammer threshold: "
                "%.2fx mean (paper: %.2fx) -> second ACT %s\n",
                nrh.normalized.mean(), module.paper.nrhAvg,
                nrh.normalized.mean() > 1.5 ? "performed"
                                            : "IGNORED by the chip");

    // Step 3: derive the Subarray Pairs Table for the controller.
    const IsolationMap &iso = chip.isolation();
    std::printf("step 3 - SPT: %.1f %% of subarray pairs isolated; "
                "subarray 0 pairs with %zu of %u subarrays\n",
                100.0 * iso.meanIsolatedFraction(),
                iso.partnersOf(0).size(), iso.subarrays());
    std::printf("rows are identical across banks (checked in §4.4.1 "
                "tests), so one table serves the whole module\n");
    return 0;
}
