/**
 * @file
 * Quickstart: the three layers of the library in one page.
 *
 *  1. issue a HiRA operation against the behavioral chip model and see
 *     both rows survive;
 *  2. compute a PARA threshold with the security analysis;
 *  3. run a small 8-core simulation comparing conventional REF against
 *     HiRA-MC.
 *
 * Build and run: ./build/examples/quickstart
 */

#include <cstdio>

#include "characterize/coverage.hh"
#include "chip/modules.hh"
#include "security/para_analysis.hh"
#include "sim/experiment.hh"

using namespace hira;

int
main()
{
    // ---- 1. HiRA on the chip model -----------------------------------
    // Module C0 of the paper's Table 1, scaled to 512 rows per bank.
    DramChip chip(moduleByLabel("C0", 512, 1).config);
    SoftMCHost host(chip);

    // Find a partner row whose subarray is electrically isolated from
    // row 100's, then run Algorithm 1's inner test at t1 = t2 = 3 ns.
    RowId partner = findHiraPartner(host, 0, 100, 3.0, 3.0);
    bool works = partner != kNoRow &&
                 hiraPairWorks(host, 0, 100, partner, 3.0, 3.0);
    std::printf("HiRA(row 100, row %u) at t1=t2=3ns: %s\n",
                partner, works ? "both rows intact" : "failed");

    TimingParams tp;
    std::printf("two-row refresh: %.2f ns nominal vs %.2f ns with HiRA "
                "(-%.1f %%)\n",
                tp.nominalTwoRowRefreshNs(), tp.hiraTwoRowRefreshNs(),
                100.0 * tp.hiraLatencyReduction());

    // ---- 2. PARA configuration (Section 9.1) -------------------------
    double pth = solvePth(/*nrh=*/512.0,
                          slackActivations(4 * tp.tRC));
    std::printf("PARA threshold for NRH=512 with tRefSlack=4tRC: "
                "pth=%.4f\n", pth);

    // ---- 3. System simulation ----------------------------------------
    WorkloadMix mix = {"mcf-like", "libquantum-like", "gcc-like",
                       "lbm-like", "h264-like", "milc-like",
                       "omnetpp-like", "astar-like"};
    GeomSpec geom;
    geom.capacityGb = 64.0;

    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;

    RunResult rb = runOne(makeSystemConfig(geom, base, mix, 1), 20000,
                          60000);
    RunResult rh = runOne(makeSystemConfig(geom, hira, mix, 1), 20000,
                          60000);
    double sb = 0.0, sh = 0.0;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        sb += rb.ipc[i];
        sh += rh.ipc[i];
    }
    std::printf("64 Gb chips, 8 cores: sum-IPC %.3f with REF baseline, "
                "%.3f with HiRA-2 (%+.1f %%)\n",
                sb, sh, 100.0 * (sh / sb - 1.0));
    std::printf("HiRA-MC refreshed %llu rows: %llu hidden under "
                "accesses, %llu paired refresh-refresh, %llu "
                "standalone\n",
                static_cast<unsigned long long>(
                    rh.sys.refresh.rowRefreshes),
                static_cast<unsigned long long>(
                    rh.sys.refresh.accessPaired),
                static_cast<unsigned long long>(
                    rh.sys.refresh.refreshPaired),
                static_cast<unsigned long long>(
                    rh.sys.refresh.standalone));
    return 0;
}
