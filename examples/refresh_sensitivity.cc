/**
 * @file
 * Sweeping refresh configurations for one workload mix: how the refresh
 * scheme choice interacts with chip capacity and RowHammer pressure.
 * A miniature of the Fig. 9 + Fig. 12 studies on a single mix, useful
 * for exploring a design point interactively.
 *
 * Usage: ./build/examples/refresh_sensitivity [capacityGb] [nrh]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hh"

using namespace hira;

namespace {

double
sumIpc(const RunResult &r)
{
    double s = 0.0;
    for (double v : r.ipc)
        s += v;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    double capacity = argc > 1 ? std::atof(argv[1]) : 32.0;
    double nrh = argc > 2 ? std::atof(argv[2]) : 256.0;
    WorkloadMix mix = {"mcf-like", "libquantum-like", "soplex-like",
                       "gcc-like", "lbm-like", "gems-like",
                       "sphinx-like", "bzip2-like"};
    GeomSpec geom;
    geom.capacityGb = capacity;
    const Cycle warm = 20000, run = 80000;

    std::printf("capacity %.0f Gb, NRH %.0f, 8 cores, 1 channel/rank\n\n",
                capacity, nrh);
    std::printf("%-26s %10s %12s\n", "configuration", "sum-IPC",
                "vs NoRefresh");

    SchemeSpec none;
    none.kind = SchemeKind::NoRefresh;
    double ipc_none =
        sumIpc(runOne(makeSystemConfig(geom, none, mix, 9), warm, run));
    std::printf("%-26s %10.3f %11.1f%%\n", "NoRefresh (ideal)", ipc_none,
                0.0);

    auto report = [&](const char *name, const SchemeSpec &s) {
        double ipc =
            sumIpc(runOne(makeSystemConfig(geom, s, mix, 9), warm, run));
        std::printf("%-26s %10.3f %+11.1f%%\n", name, ipc,
                    100.0 * (ipc / ipc_none - 1.0));
    };

    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    report("REF baseline", base);

    for (int n : {0, 2, 8}) {
        SchemeSpec h;
        h.kind = SchemeKind::HiraMc;
        h.slackN = n;
        report(strprintf("HiRA-%d periodic", n).c_str(), h);
    }

    SchemeSpec para = base;
    para.paraEnabled = true;
    para.nrh = nrh;
    report("REF + PARA", para);

    SchemeSpec hpara = para;
    hpara.preventiveViaHira = true;
    hpara.slackN = 4;
    report("REF + PARA via HiRA-4", hpara);
    return 0;
}
