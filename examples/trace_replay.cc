/**
 * @file
 * Trace record -> replay walkthrough (src/workload/).
 *
 * Runs a small multiprogrammed simulation twice per trace format:
 * first live from the synthetic generators while recording each core's
 * instruction stream to disk, then again with every core replaying its
 * recorded file through "file:" workload specs. The two runs must
 * produce bitwise-identical per-core IPC — the replay path is exact,
 * not approximate — so this doubles as a CI smoke check of trace I/O.
 *
 * Build and run: ./build/examples/example_trace_replay
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "common/knobs.hh"
#include "sim/experiment.hh"

using namespace hira;

namespace {

std::string
makeTempDir()
{
    const char *base = std::getenv("TMPDIR");
    std::string templ = std::string(base != nullptr ? base : "/tmp") +
                        "/hira_trace_replay.XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
        std::perror("mkdtemp");
        std::exit(1);
    }
    return std::string(buf.data());
}

} // namespace

int
main()
{
    BenchKnobs knobs = BenchKnobs::fromEnv();
    Cycle warmup = static_cast<Cycle>(knobs.warmup);
    Cycle measure = static_cast<Cycle>(knobs.cycles);

    const WorkloadMix mix = {"mcf-like", "gcc-like", "libquantum-like",
                             "h264-like"};
    GeomSpec geom;
    SchemeSpec scheme;
    scheme.kind = SchemeKind::Baseline;

    std::string dir = makeTempDir();
    std::printf("recording %zu-core mix to %s\n", mix.size(), dir.c_str());

    bool all_identical = true;
    std::vector<std::string> cleanup;
    for (TraceFormat fmt : {TraceFormat::Text, TraceFormat::Binary}) {
        const char *fmt_name = fmt == TraceFormat::Text ? "text" : "binary";
        const char *ext = fmt == TraceFormat::Text ? "trace" : "bin";

        // Live run, recording every core's stream.
        SystemConfig cfg = makeSystemConfig(geom, scheme, mix, /*seed=*/7);
        cfg.traceDumpDir = dir;
        cfg.traceDumpFormat = fmt;
        RunResult live = runOne(cfg, warmup, measure);

        // Replay run: same system, workloads read back from disk.
        WorkloadMix replay_mix;
        for (std::size_t i = 0; i < mix.size(); ++i) {
            std::string path =
                dir + "/core" + std::to_string(i) + "." + ext;
            replay_mix.push_back("file:" + path);
            cleanup.push_back(path);
        }
        SystemConfig rcfg =
            makeSystemConfig(geom, scheme, replay_mix, /*seed=*/7);
        RunResult replay = runOne(rcfg, warmup, measure);

        std::printf("\n%s format: per-core IPC, live generator vs file "
                    "replay\n", fmt_name);
        std::printf("%-8s%14s%14s%12s\n", "core", "live", "replay",
                    "identical");
        bool identical = true;
        for (std::size_t i = 0; i < mix.size(); ++i) {
            bool same = live.ipc[i] == replay.ipc[i];
            identical = identical && same;
            std::printf("%-8zu%14.6f%14.6f%12s\n", i, live.ipc[i],
                        replay.ipc[i], same ? "yes" : "NO");
        }
        std::printf("memory traffic: live %llu reads / %llu writes, "
                    "replay %llu / %llu\n",
                    static_cast<unsigned long long>(live.sys.memReads),
                    static_cast<unsigned long long>(live.sys.memWrites),
                    static_cast<unsigned long long>(replay.sys.memReads),
                    static_cast<unsigned long long>(replay.sys.memWrites));
        identical = identical && live.sys.memReads == replay.sys.memReads &&
                    live.sys.memWrites == replay.sys.memWrites;
        std::printf("%s replay is %s\n", fmt_name,
                    identical ? "bitwise-identical" : "DIVERGENT");
        all_identical = all_identical && identical;
    }

    for (const std::string &path : cleanup)
        ::unlink(path.c_str());
    ::rmdir(dir.c_str());

    if (!all_identical) {
        std::printf("\nFAIL: replay diverged from the live generators\n");
        return 1;
    }
    std::printf("\nboth formats replay bitwise-identically\n");
    return 0;
}
