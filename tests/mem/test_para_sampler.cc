/**
 * @file
 * Statistical tests for ParaSampler (src/mem/para.hh): every existing
 * neighbor of an activated row is selected with probability exactly
 * pth/2 (Fig. 10), including at the bank edges, where the
 * out-of-range neighbor's share is dropped — not redirected to the
 * opposite neighbor, which would double its refresh probability.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>

#include "mem/para.hh"

using namespace hira;

namespace {

constexpr std::uint32_t kRows = 4096;
constexpr int kTrials = 200000;

ParaConfig
config(double pth, std::uint64_t seed)
{
    ParaConfig cfg;
    cfg.enabled = true;
    cfg.pth = pth;
    cfg.seed = seed;
    return cfg;
}

/** Victim histogram of @p trials samples of one fixed row. */
std::map<RowId, int>
sampleRow(RowId row, double pth, std::uint64_t seed)
{
    ParaSampler sampler(config(pth, seed));
    std::map<RowId, int> hist;
    for (int i = 0; i < kTrials; ++i)
        ++hist[sampler.sample(row, kRows)];
    return hist;
}

/** Binomial(n = kTrials, p) sanity band: mean +/- 5 sigma. */
void
expectRate(int count, double p, const char *what)
{
    double mean = kTrials * p;
    double sigma = std::sqrt(kTrials * p * (1.0 - p));
    EXPECT_NEAR(static_cast<double>(count), mean, 5.0 * sigma) << what;
}

} // namespace

TEST(ParaSampler, InteriorRowRefreshesEachNeighborAtHalfPth)
{
    const double pth = 0.4;
    auto hist = sampleRow(1000, pth, 0x1111);
    // Only the two physical neighbors (or no sample) may come back.
    ASSERT_LE(hist.size(), 3u);
    expectRate(hist[999], pth / 2.0, "row - 1");
    expectRate(hist[1001], pth / 2.0, "row + 1");
    expectRate(hist[kNoRow], 1.0 - pth, "no sample");
}

TEST(ParaSampler, BottomEdgeRowDropsTheMissingNeighbor)
{
    // Row 0 has no row -1: that half of the probability mass must be
    // dropped, leaving row 1 at exactly pth/2 — the pre-fix redirect
    // gave it the full pth.
    const double pth = 0.5;
    auto hist = sampleRow(0, pth, 0x2222);
    ASSERT_LE(hist.size(), 2u);
    EXPECT_EQ(hist.count(1), 1u);
    expectRate(hist[1], pth / 2.0, "row 1 at pth/2, not pth");
    expectRate(hist[kNoRow], 1.0 - pth / 2.0, "dropped half");
}

TEST(ParaSampler, TopEdgeRowDropsTheMissingNeighbor)
{
    const double pth = 0.5;
    auto hist = sampleRow(kRows - 1, pth, 0x3333);
    ASSERT_LE(hist.size(), 2u);
    expectRate(hist[kRows - 2], pth / 2.0, "top neighbor at pth/2");
    expectRate(hist[kNoRow], 1.0 - pth / 2.0, "dropped half");
}

TEST(ParaSampler, EdgeAdjacentRowsNotOverRefreshed)
{
    // The distribution property behind the edge fix: row 1 must be
    // refreshed no more often when its neighbor is the edge row 0 than
    // row 1001 is from interior activations of row 1000. Equal
    // activation counts of rows 0 and 1000 must victimize rows 1 and
    // 1001 at statistically equal rates.
    const double pth = 0.6;
    auto edge = sampleRow(0, pth, 0x4444);
    auto interior = sampleRow(1000, pth, 0x5555);
    double edge_rate = static_cast<double>(edge[1]) / kTrials;
    double interior_rate =
        static_cast<double>(interior[1001]) / kTrials;
    // Both estimate pth/2; 5-sigma band on their difference.
    double sigma = std::sqrt(2.0 * (pth / 2.0) * (1.0 - pth / 2.0) /
                             kTrials);
    EXPECT_NEAR(edge_rate, interior_rate, 5.0 * sigma);
}

TEST(ParaSampler, DisabledOrZeroPthNeverSamples)
{
    ParaConfig off;
    off.enabled = false;
    off.pth = 1.0;
    ParaSampler disabled(off);
    ParaSampler zero(config(0.0, 0x6666));
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(disabled.sample(100, kRows), kNoRow);
        EXPECT_EQ(zero.sample(100, kRows), kNoRow);
    }
}
