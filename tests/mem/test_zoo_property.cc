/**
 * @file
 * Parameterized property tests for the mitigation zoo (RFM, PRAC,
 * Graphene-TRR) under random demand: conservation (every generated
 * victim is refreshed, still queued, or was dropped at a full queue),
 * the periodic-REF mirror, and that each scheme's trigger path
 * actually fires at the tested knobs.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/controller.hh"
#include "mem/graphene_trr.hh"
#include "mem/prac.hh"
#include "mem/rfm.hh"

using namespace hira;

namespace {

Request
readReq(int rank, BankId bank, RowId row, std::uint64_t tag)
{
    Request r;
    r.type = MemType::Read;
    r.da.channel = 0;
    r.da.rank = rank;
    r.da.bank = bank;
    r.da.row = row;
    r.addr = (static_cast<Addr>(row) << 24) |
             (static_cast<Addr>(bank) << 16) | (tag << 6);
    r.tag = tag;
    return r;
}

ControllerConfig
zooControllerConfig()
{
    ControllerConfig cc;
    cc.geom = Geometry::forCapacityGb(8.0);
    cc.tp = ddr4_2400(8.0);
    cc.paraImmediate = false;
    return cc;
}

/**
 * Drive the controller with random reads; @p hotRows < rowsPerBank
 * narrows the row pool so per-row trackers (PRAC, Graphene) see
 * repeated activations.
 */
template <class Scheme>
void
driveRandomReads(MemoryController &ctrl, std::uint64_t seed,
                 Cycle horizon, double demand, RowId hotRows)
{
    Rng rng(seed);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < horizon; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(demand) && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(0, static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(hotRows)),
                                 tag++));
        }
    }
}

} // namespace

class RfmProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RfmProperty, VictimConservationAndRefMirror)
{
    RfmConfig rc;
    rc.raaimt = GetParam();
    auto scheme = std::make_unique<RfmRefresh>(rc);
    RfmRefresh *rfm = scheme.get();
    MemoryController ctrl(0, zooControllerConfig(), std::move(scheme));

    driveRandomReads<RfmRefresh>(ctrl, 0x5f3 + rc.raaimt, 120000, 0.08,
                                 65536);

    // Conservation: every victim the RAAIMT crossings generated is
    // either refreshed, still queued in a bank's deque, or was dropped
    // at a full queue and never stored.
    EXPECT_EQ(rfm->stats().preventiveGenerated,
              rfm->stats().rowRefreshes + rfm->pendingVictims() +
                  rfm->stats().preventiveDropped);
    // Targeted refreshes go through the refresh-open machinery as
    // standalone ACT+PRE operations.
    EXPECT_EQ(rfm->stats().rowRefreshes, rfm->stats().standalone);
    // Periodic REF keeps running and is mirrored verbatim.
    EXPECT_GT(rfm->stats().refCommands, 0u);
    EXPECT_EQ(rfm->stats().refCommands,
              rfm->baselineStats().refCommands);
    // The trigger path actually fired at this RAAIMT.
    EXPECT_GT(rfm->stats().preventiveGenerated, 0u);
}

INSTANTIATE_TEST_SUITE_P(RaaimtSweep, RfmProperty,
                         ::testing::Values(8, 16, 32, 64));

class PracProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PracProperty, VictimConservationAndRefMirror)
{
    PracConfig pc;
    pc.threshold = GetParam();
    pc.slackRc = 4;
    auto scheme = std::make_unique<PracRefresh>(pc);
    PracRefresh *prac = scheme.get();
    MemoryController ctrl(0, zooControllerConfig(), std::move(scheme));

    // An 8-row hot pool so per-row counters cross the threshold often
    // even at the higher thresholds of the sweep.
    driveRandomReads<PracRefresh>(ctrl, 0x9c1 + pc.threshold, 150000,
                                  0.08, 8);

    EXPECT_EQ(prac->stats().preventiveGenerated,
              prac->stats().rowRefreshes + prac->table(0).size() +
                  prac->stats().preventiveDropped);
    EXPECT_EQ(prac->stats().rowRefreshes, prac->stats().standalone);
    EXPECT_GT(prac->stats().refCommands, 0u);
    EXPECT_EQ(prac->stats().refCommands,
              prac->baselineStats().refCommands);
    EXPECT_GT(prac->stats().preventiveGenerated, 0u);
    // The deadline-slack drain keeps the table bounded under this load.
    EXPECT_LT(prac->table(0).size(), prac->table(0).capacity());
}

INSTANTIATE_TEST_SUITE_P(ThresholdSweep, PracProperty,
                         ::testing::Values(8, 16, 32, 64));

class GrapheneProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(GrapheneProperty, VictimConservationAndRefMirror)
{
    GrapheneConfig gc;
    gc.trackerSize = 8;
    gc.threshold = GetParam();
    auto scheme = std::make_unique<GrapheneTrr>(gc);
    GrapheneTrr *trr = scheme.get();
    MemoryController ctrl(0, zooControllerConfig(), std::move(scheme));

    // A tiny hot-row pool: the Misra-Gries trackers accumulate counts
    // well past the threshold between per-tREFI TRR selections.
    driveRandomReads<GrapheneTrr>(ctrl, 0x69a + gc.threshold, 150000,
                                  0.08, 8);

    EXPECT_EQ(trr->stats().preventiveGenerated,
              trr->stats().rowRefreshes + trr->pendingVictims() +
                  trr->stats().preventiveDropped);
    EXPECT_EQ(trr->stats().rowRefreshes, trr->stats().standalone);
    EXPECT_GT(trr->stats().refCommands, 0u);
    EXPECT_EQ(trr->stats().refCommands,
              trr->baselineStats().refCommands);
    EXPECT_GT(trr->stats().preventiveGenerated, 0u);
}

INSTANTIATE_TEST_SUITE_P(ThresholdSweep, GrapheneProperty,
                         ::testing::Values(4, 16, 64));
