/**
 * @file
 * Tests for the elastic-refresh postponement option of BaselineRefresh
 * (Elastic Refresh [161] within DDR4's 8-postponement bound).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/controller.hh"

using namespace hira;

namespace {

ControllerConfig
makeConfig()
{
    ControllerConfig cc;
    cc.geom = Geometry::forCapacityGb(8.0);
    cc.tp = ddr4_2400(8.0);
    return cc;
}

Request
readReq(BankId bank, RowId row, std::uint64_t tag)
{
    Request r;
    r.type = MemType::Read;
    r.da.channel = 0;
    r.da.bank = bank;
    r.da.row = row;
    r.addr = (static_cast<Addr>(row) << 20) | (bank << 14) | (tag << 6);
    r.tag = tag;
    return r;
}

} // namespace

TEST(ElasticRefresh, PostponesWhileReadsQueued)
{
    auto cc = makeConfig();
    auto scheme = std::make_unique<BaselineRefresh>(/*max_postpone=*/8);
    BaselineRefresh *br = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    TimingCycles tc(cc.tp);
    // Keep the read queue busy past the first REF due time.
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < tc.refi + 500; ++now) {
        if (ctrl.queuedReads() < 8) {
            ctrl.enqueue(readReq(static_cast<BankId>(tag % 16),
                                 static_cast<RowId>(tag * 37 % 4096),
                                 tag));
            ++tag;
        }
        ctrl.tick(now);
        ctrl.completions().clear();
    }
    // The REF was deferred: debt accrued, no REF issued yet.
    EXPECT_EQ(ctrl.stats().refs, 0u);
    EXPECT_GE(br->debtOf(0), 1);
}

TEST(ElasticRefresh, CatchesUpWhenIdle)
{
    auto cc = makeConfig();
    auto scheme = std::make_unique<BaselineRefresh>(8);
    BaselineRefresh *br = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    TimingCycles tc(cc.tp);
    std::uint64_t tag = 1;
    // Busy phase covering two tREFIs...
    for (Cycle now = 1; now < 2 * tc.refi + 100; ++now) {
        if (ctrl.queuedReads() < 8) {
            ctrl.enqueue(readReq(static_cast<BankId>(tag % 16),
                                 static_cast<RowId>(tag * 37 % 4096),
                                 tag));
            ++tag;
        }
        ctrl.tick(now);
        ctrl.completions().clear();
    }
    EXPECT_EQ(ctrl.stats().refs, 0u);
    // ...then idle: the postponed REFs catch up.
    for (Cycle now = 2 * tc.refi + 100; now < 3 * tc.refi; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
    }
    EXPECT_GE(ctrl.stats().refs, 2u);
    EXPECT_EQ(br->debtOf(0), 0);
}

TEST(ElasticRefresh, ForcedAtPostponementBound)
{
    auto cc = makeConfig();
    auto scheme = std::make_unique<BaselineRefresh>(2);
    BaselineRefresh *br = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    TimingCycles tc(cc.tp);
    std::uint64_t tag = 1;
    // Permanently busy: once the debt exceeds 2, REFs are forced.
    for (Cycle now = 1; now < 5 * tc.refi; ++now) {
        if (ctrl.queuedReads() < 8) {
            ctrl.enqueue(readReq(static_cast<BankId>(tag % 16),
                                 static_cast<RowId>(tag * 37 % 4096),
                                 tag));
            ++tag;
        }
        ctrl.tick(now);
        ctrl.completions().clear();
    }
    EXPECT_GE(ctrl.stats().refs, 2u);
    EXPECT_LE(br->debtOf(0), 3);
}

TEST(ElasticRefresh, ZeroPostponeMatchesStrictBaseline)
{
    auto cc = makeConfig();
    MemoryController ctrl(0, cc, std::make_unique<BaselineRefresh>(0));
    TimingCycles tc(cc.tp);
    for (Cycle now = 1; now < 4 * tc.refi + 200; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
    }
    EXPECT_EQ(ctrl.stats().refs, 4u);
}

TEST(ElasticRefresh, RefreshRateNeverFallsBehindBound)
{
    // Refresh-rate guarantee: after any traffic pattern, issued REFs +
    // outstanding debt always equal the elapsed tREFIs.
    auto cc = makeConfig();
    auto scheme = std::make_unique<BaselineRefresh>(8);
    BaselineRefresh *br = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    TimingCycles tc(cc.tp);
    Rng rng(21);
    std::uint64_t tag = 1;
    Cycle horizon = 6 * tc.refi;
    for (Cycle now = 1; now < horizon; ++now) {
        if (rng.chance(0.05) && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(4096)),
                                 tag++));
        }
        ctrl.tick(now);
        ctrl.completions().clear();
    }
    // REFs come due at refi, 2*refi, ..., strictly before the horizon.
    Cycle elapsed_refis = (horizon - 1) / tc.refi;
    EXPECT_EQ(ctrl.stats().refs + static_cast<std::uint64_t>(
                                      br->debtOf(0)),
              elapsed_refis);
}
