/**
 * @file
 * Focused controller tests: write-drain hysteresis, rank holds, demand
 * HiRA issue path, and trace-recording control.
 */

#include <gtest/gtest.h>

#include "core/hira_mc.hh"
#include "dram/timing_checker.hh"
#include "mem/controller.hh"

using namespace hira;

namespace {

ControllerConfig
makeConfig()
{
    ControllerConfig cc;
    cc.geom = Geometry::forCapacityGb(8.0);
    cc.tp = ddr4_2400(8.0);
    return cc;
}

Request
req(MemType type, BankId bank, RowId row, std::uint64_t tag)
{
    Request r;
    r.type = type;
    r.da.channel = 0;
    r.da.bank = bank;
    r.da.row = row;
    r.addr = (static_cast<Addr>(row) << 20) |
             (static_cast<Addr>(bank) << 14) | (tag << 6);
    r.tag = tag;
    return r;
}

} // namespace

TEST(ControllerDrain, WritesWaitUntilHighWatermark)
{
    auto cc = makeConfig();
    cc.drainHigh = 8;
    cc.drainLow = 2;
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    std::uint64_t tag = 1;
    // Park 4 writes (below the watermark) and a steady read stream.
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ctrl.enqueue(req(MemType::Write,
                                     static_cast<BankId>(i), 7, tag++)));
    }
    for (Cycle now = 1; now < 400; ++now) {
        if (ctrl.queuedReads() < 4) {
            ctrl.enqueue(req(MemType::Read,
                             static_cast<BankId>(8 + (tag % 4)),
                             static_cast<RowId>(tag % 64), tag));
            ++tag;
        }
        ctrl.tick(now);
        ctrl.completions().clear();
    }
    // Reads flowed; the few writes were never urgent.
    EXPECT_GT(ctrl.stats().readsServed, 4u);
    EXPECT_EQ(ctrl.queuedWrites(), 4u);
}

TEST(ControllerDrain, HighWatermarkForcesDrainToLow)
{
    auto cc = makeConfig();
    cc.drainHigh = 8;
    cc.drainLow = 2;
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    std::uint64_t tag = 1;
    for (int i = 0; i < 9; ++i) {
        ASSERT_TRUE(ctrl.enqueue(req(MemType::Write,
                                     static_cast<BankId>(i % 16),
                                     static_cast<RowId>(i), tag++)));
    }
    // Keep one read queued so opportunistic drain is not the trigger.
    ctrl.enqueue(req(MemType::Read, 15, 3, tag++));
    for (Cycle now = 1; now < 3000 && ctrl.queuedWrites() > 2; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
    }
    EXPECT_LE(ctrl.queuedWrites(), 2u);
    EXPECT_GE(ctrl.stats().writesServed, 7u);
}

TEST(ControllerDrain, RankHoldBlocksDemandActs)
{
    auto cc = makeConfig();
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    ctrl.setRankHold(0, true);
    ASSERT_TRUE(ctrl.enqueue(req(MemType::Read, 0, 5, 1)));
    for (Cycle now = 1; now < 300; ++now) {
        ctrl.tick(now);
    }
    EXPECT_EQ(ctrl.stats().readsServed, 0u);
    EXPECT_EQ(ctrl.stats().acts, 0u);
    ctrl.setRankHold(0, false);
    for (Cycle now = 300; now < 600; ++now) {
        ctrl.tick(now);
    }
    EXPECT_EQ(ctrl.stats().readsServed, 1u);
}

TEST(ControllerDrain, TraceRecordingOffByDefault)
{
    auto cc = makeConfig();
    EXPECT_FALSE(cc.recordTrace);
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    ctrl.enqueue(req(MemType::Read, 0, 5, 1));
    for (Cycle now = 1; now < 200; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
    }
    EXPECT_GT(ctrl.stats().readsServed, 0u);
    EXPECT_TRUE(ctrl.trace().empty());
}

TEST(ControllerDrain, DemandHiraCountsAsHiraOp)
{
    // With HiRA-MC attached and a queued periodic refresh, the first
    // demand activation to that bank should ride a HiRA op.
    auto cc = makeConfig();
    cc.paraImmediate = false;
    HiraMcConfig h;
    h.slackN = 8;
    MemoryController ctrl(0, cc, std::make_unique<HiraMc>(h));
    // Let the scheme generate a few periodic requests first.
    Cycle now = 1;
    for (; now < 3000; ++now) {
        ctrl.tick(now);
    }
    std::uint64_t before = ctrl.stats().hiraOps;
    std::uint64_t tag = 1;
    for (; now < 12000; ++now) {
        if (ctrl.queuedReads() < 8) {
            ctrl.enqueue(req(MemType::Read,
                             static_cast<BankId>(tag % 16),
                             static_cast<RowId>(tag * 97 % 65536),
                             tag));
            ++tag;
        }
        ctrl.tick(now);
        ctrl.completions().clear();
    }
    EXPECT_GT(ctrl.stats().hiraOps, before);
}

TEST(ControllerDrain, OpportunisticDrainWhenNoReads)
{
    auto cc = makeConfig();
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(ctrl.enqueue(req(MemType::Write,
                                     static_cast<BankId>(i), 9,
                                     static_cast<std::uint64_t>(i))));
    }
    for (Cycle now = 1; now < 2000 && ctrl.queuedWrites() > 0; ++now)
        ctrl.tick(now);
    // No reads at all: writes drain even far below the watermark.
    EXPECT_EQ(ctrl.queuedWrites(), 0u);
}
