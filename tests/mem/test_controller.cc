/**
 * @file
 * Tests for the memory controller: request lifecycle, FR-FCFS behavior,
 * write drain, forwarding, baseline refresh, immediate PARA, and the
 * command-trace audit against the independent TimingChecker.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/timing_checker.hh"
#include "mem/controller.hh"

using namespace hira;

namespace {

ControllerConfig
makeConfig(double capacity_gb = 8.0)
{
    ControllerConfig cc;
    cc.geom = Geometry::forCapacityGb(capacity_gb);
    cc.tp = ddr4_2400(capacity_gb);
    cc.recordTrace = true;
    return cc;
}

Request
readReq(const Geometry &geom, int rank, BankId bank, RowId row,
        std::uint32_t col, std::uint64_t tag)
{
    (void)geom;
    Request r;
    r.type = MemType::Read;
    r.da.channel = 0;
    r.da.rank = rank;
    r.da.bank = bank;
    r.da.row = row;
    r.da.col = col;
    r.addr = (static_cast<Addr>(row) << 24) |
             (static_cast<Addr>(bank) << 16) | (col << 6);
    r.tag = tag;
    r.coreId = 0;
    return r;
}

Request
writeReq(const Geometry &geom, int rank, BankId bank, RowId row,
         std::uint32_t col, std::uint64_t tag)
{
    Request r = readReq(geom, rank, bank, row, col, tag);
    r.type = MemType::Write;
    return r;
}

/** Run the controller until the tag completes or the limit passes. */
Cycle
runUntilDone(MemoryController &ctrl, std::uint64_t tag, Cycle start,
             Cycle limit)
{
    for (Cycle now = start; now < limit; ++now) {
        ctrl.tick(now);
        for (const Completion &c : ctrl.completions()) {
            if (c.tag == tag)
                return c.at;
        }
    }
    return kNeverCycle;
}

} // namespace

TEST(Controller, SingleReadCompletesWithExpectedLatency)
{
    auto cc = makeConfig();
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    Request r = readReq(cc.geom, 0, 0, 100, 0, 7);
    r.arrival = 1;
    ASSERT_TRUE(ctrl.enqueue(r));
    Cycle done = runUntilDone(ctrl, 7, 1, 500);
    ASSERT_NE(done, kNeverCycle);
    TimingCycles tc(cc.tp);
    // ACT at ~1, RD at ~1+tRCD, data at +tCL+tBL.
    EXPECT_NEAR(static_cast<double>(done),
                static_cast<double>(1 + tc.rcd + tc.cl + tc.bl), 4.0);
    EXPECT_EQ(ctrl.stats().readsServed, 1u);
}

TEST(Controller, RowHitFasterThanRowConflict)
{
    auto cc = makeConfig();
    MemoryController hit_ctrl(0, cc, std::make_unique<NoRefresh>());
    MemoryController conf_ctrl(0, cc, std::make_unique<NoRefresh>());

    // Row hit: same row twice.
    ASSERT_TRUE(hit_ctrl.enqueue(readReq(cc.geom, 0, 0, 5, 0, 1)));
    ASSERT_TRUE(hit_ctrl.enqueue(readReq(cc.geom, 0, 0, 5, 1, 2)));
    Cycle hit_done = runUntilDone(hit_ctrl, 2, 1, 1000);

    // Conflict: different rows in one bank.
    ASSERT_TRUE(conf_ctrl.enqueue(readReq(cc.geom, 0, 0, 5, 0, 1)));
    ASSERT_TRUE(conf_ctrl.enqueue(readReq(cc.geom, 0, 0, 9, 1, 2)));
    Cycle conf_done = runUntilDone(conf_ctrl, 2, 1, 1000);

    ASSERT_NE(hit_done, kNeverCycle);
    ASSERT_NE(conf_done, kNeverCycle);
    EXPECT_LT(hit_done, conf_done);
}

TEST(Controller, BankParallelismBeatsSerialization)
{
    auto cc = makeConfig();
    MemoryController par(0, cc, std::make_unique<NoRefresh>());
    ASSERT_TRUE(par.enqueue(readReq(cc.geom, 0, 0, 5, 0, 1)));
    ASSERT_TRUE(par.enqueue(readReq(cc.geom, 0, 4, 5, 0, 2)));
    Cycle done2 = runUntilDone(par, 2, 1, 1000);
    MemoryController ser(0, cc, std::make_unique<NoRefresh>());
    ASSERT_TRUE(ser.enqueue(readReq(cc.geom, 0, 0, 5, 0, 1)));
    ASSERT_TRUE(ser.enqueue(readReq(cc.geom, 0, 0, 9, 0, 2)));
    Cycle done2s = runUntilDone(ser, 2, 1, 1000);
    EXPECT_LT(done2, done2s);
}

TEST(Controller, ReadForwardsFromWriteQueue)
{
    auto cc = makeConfig();
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    Request w = writeReq(cc.geom, 0, 0, 5, 0, 1);
    ASSERT_TRUE(ctrl.enqueue(w));
    Request r = readReq(cc.geom, 0, 0, 5, 0, 2);
    r.addr = w.addr;
    r.arrival = 3;
    ASSERT_TRUE(ctrl.enqueue(r));
    ASSERT_FALSE(ctrl.completions().empty());
    EXPECT_EQ(ctrl.completions()[0].tag, 2u);
    EXPECT_EQ(ctrl.stats().forwards, 1u);
}

TEST(Controller, ForwardCountsAsServedRead)
{
    // A write-queue forward IS a served read: it must feed readsServed
    // and readLatencySum (at the fixed 4-cycle forward latency) exactly
    // like a DRAM-serviced read, with `forwards` as the sub-count.
    // Keeping the forward out of those stats would skew
    // avgReadLatencyCycles between workloads with different
    // read-after-write locality.
    auto cc = makeConfig();
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    Request w = writeReq(cc.geom, 0, 0, 5, 0, 1);
    ASSERT_TRUE(ctrl.enqueue(w));
    Request r = readReq(cc.geom, 0, 0, 5, 0, 2);
    r.addr = w.addr;
    r.arrival = 3;
    ASSERT_TRUE(ctrl.enqueue(r));

    ASSERT_EQ(ctrl.completions().size(), 1u);
    EXPECT_EQ(ctrl.completions()[0].tag, 2u);
    EXPECT_EQ(ctrl.completions()[0].at, 7u); // arrival + 4
    EXPECT_EQ(ctrl.stats().forwards, 1u);
    EXPECT_EQ(ctrl.stats().readsServed, 1u);
    EXPECT_EQ(ctrl.stats().readLatencySum, 4u);
    // The write stays queued: nothing was issued to DRAM.
    EXPECT_EQ(ctrl.stats().writesServed, 0u);
    EXPECT_EQ(ctrl.queuedWrites(), 1u);
}

TEST(Controller, PreventiveVictimSurvivesDeclinedRefreshAct)
{
    // Regression: preventiveTick must pop a PARA victim only after its
    // refresh ACT actually issued. The issue path used to pop first and
    // assert tryRefreshAct succeeded, relying on pre-checks that
    // duplicated tryRefreshAct's own guards; any drift (e.g. a rank
    // hold placed between probe and issue) would silently drop the
    // victim — a missed preventive refresh. Force the decline path with
    // a rank hold and pin that the victim survives.
    auto cc = makeConfig();
    cc.para.enabled = true;
    cc.para.pth = 1.0; // every ACT samples a victim deterministically
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    ASSERT_TRUE(ctrl.enqueue(readReq(cc.geom, 0, 0, 5, 0, 1)));

    Cycle now = 0;
    while (ctrl.pendingPreventive(0, 0) == 0 && now < 1000)
        ctrl.tick(++now);
    ASSERT_EQ(ctrl.pendingPreventive(0, 0), 1u);

    // Hold the rank: every preventive ACT attempt must decline without
    // consuming the queued victim.
    ctrl.setRankHold(0, true);
    std::uint64_t actsBefore = ctrl.stats().acts;
    for (int i = 0; i < 500; ++i)
        ctrl.tick(++now);
    EXPECT_EQ(ctrl.pendingPreventive(0, 0), 1u);
    EXPECT_EQ(ctrl.stats().acts, actsBefore);

    // Released, the retained victim refreshes (pth = 1 immediately
    // samples a successor, so the queue never empties — the issued ACT
    // is the evidence).
    ctrl.setRankHold(0, false);
    for (int i = 0; i < 500 && ctrl.stats().acts == actsBefore; ++i)
        ctrl.tick(++now);
    EXPECT_GT(ctrl.stats().acts, actsBefore);
}

TEST(Controller, ReadQueueBackpressure)
{
    auto cc = makeConfig();
    cc.readQueueCap = 4;
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ctrl.enqueue(
            readReq(cc.geom, 0, 0, 5, static_cast<std::uint32_t>(i),
                    static_cast<std::uint64_t>(i))));
    }
    EXPECT_FALSE(ctrl.enqueue(readReq(cc.geom, 0, 0, 5, 9, 99)));
    EXPECT_EQ(ctrl.stats().rejectedRequests, 1u);
}

TEST(Controller, WritesDrainEventually)
{
    auto cc = makeConfig();
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(ctrl.enqueue(writeReq(
            cc.geom, 0, static_cast<BankId>(i % 4), 5,
            static_cast<std::uint32_t>(i), static_cast<std::uint64_t>(i))));
    }
    for (Cycle now = 1; now < 5000; ++now)
        ctrl.tick(now);
    EXPECT_EQ(ctrl.stats().writesServed, 10u);
    EXPECT_EQ(ctrl.queuedWrites(), 0u);
}

TEST(Controller, BaselineRefreshIssuesRefPerTrefi)
{
    auto cc = makeConfig();
    MemoryController ctrl(0, cc, std::make_unique<BaselineRefresh>());
    TimingCycles tc(cc.tp);
    Cycle horizon = tc.refi * 4 + 100;
    for (Cycle now = 1; now < horizon; ++now)
        ctrl.tick(now);
    EXPECT_EQ(ctrl.stats().refs, 4u);
}

TEST(Controller, RefreshDelaysColdReadDuringRfc)
{
    auto cc = makeConfig(32.0); // long tRFC
    MemoryController ctrl(0, cc, std::make_unique<BaselineRefresh>());
    TimingCycles tc(cc.tp);
    // Let the first REF fire, then immediately request a read.
    Cycle t = 1;
    for (; t < tc.refi + 2; ++t)
        ctrl.tick(t);
    Request r = readReq(cc.geom, 0, 0, 100, 0, 77);
    r.arrival = t;
    ASSERT_TRUE(ctrl.enqueue(r));
    Cycle done = runUntilDone(ctrl, 77, t, t + 4 * tc.rfc);
    ASSERT_NE(done, kNeverCycle);
    // The read cannot complete before the tRFC window ends.
    EXPECT_GT(done, tc.refi + tc.rfc);
}

TEST(Controller, ImmediateParaInjectsPreventiveRefreshes)
{
    auto cc = makeConfig();
    cc.para.enabled = true;
    cc.para.pth = 0.5;
    MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
    Rng rng(5);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < 30000; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (now % 64 == 0 && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(cc.geom, 0,
                                 static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(1024)), 0,
                                 tag++));
        }
    }
    EXPECT_GT(ctrl.para().generated, 50u);
    // Preventive refreshes are extra activations beyond demand ACTs.
    EXPECT_GT(ctrl.stats().acts, ctrl.stats().readsServed);
}

TEST(Controller, HigherPthMeansMoreActivations)
{
    auto run = [](double pth) {
        auto cc = makeConfig();
        cc.para.enabled = pth > 0.0;
        cc.para.pth = pth;
        MemoryController ctrl(0, cc, std::make_unique<NoRefresh>());
        Rng rng(5);
        std::uint64_t tag = 1;
        for (Cycle now = 1; now < 30000; ++now) {
            ctrl.tick(now);
            ctrl.completions().clear();
            if (now % 64 == 0 && !ctrl.readQueueFull()) {
                ctrl.enqueue(readReq(
                    ControllerConfig().geom, 0,
                    static_cast<BankId>(rng.below(16)),
                    static_cast<RowId>(rng.below(1024)), 0, tag++));
            }
        }
        return ctrl.stats().acts;
    };
    std::uint64_t none = run(0.0);
    std::uint64_t half = run(0.5);
    std::uint64_t high = run(0.86);
    EXPECT_GT(half, none);
    EXPECT_GT(high, half);
}

TEST(Controller, RandomWorkloadTraceAuditsClean)
{
    // The independent TimingChecker must find zero violations in a
    // realistic random workload with baseline refresh and PARA.
    auto cc = makeConfig();
    cc.para.enabled = true;
    cc.para.pth = 0.3;
    MemoryController ctrl(0, cc, std::make_unique<BaselineRefresh>());
    Rng rng(9);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < 60000; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(0.08) && !ctrl.readQueueFull()) {
            bool write = rng.chance(0.3);
            Request r =
                write ? writeReq(cc.geom, 0,
                                 static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(64)), 0,
                                 tag++)
                      : readReq(cc.geom, 0,
                                static_cast<BankId>(rng.below(16)),
                                static_cast<RowId>(rng.below(64)), 0,
                                tag++);
            ctrl.enqueue(r);
        }
    }
    TimingChecker checker(cc.geom, cc.tp);
    auto violations = checker.check(ctrl.trace());
    ASSERT_GT(ctrl.trace().size(), 1000u);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violations, first: "
        << (violations.empty() ? "" : violations[0].message);
}

TEST(Controller, MultiRankTraceAuditsClean)
{
    auto cc = makeConfig();
    cc.geom.ranksPerChannel = 4;
    MemoryController ctrl(0, cc, std::make_unique<BaselineRefresh>());
    Rng rng(11);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < 60000; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(0.1) && !ctrl.readQueueFull()) {
            Request r = readReq(cc.geom, static_cast<int>(rng.below(4)),
                                static_cast<BankId>(rng.below(16)),
                                static_cast<RowId>(rng.below(64)), 0,
                                tag++);
            ctrl.enqueue(r);
        }
    }
    TimingChecker checker(cc.geom, cc.tp);
    auto violations = checker.check(ctrl.trace());
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations[0].message);
}
