/**
 * @file
 * Tests for the pluggable log sink and warn_once() (satellite of the
 * observability PR): sink capture and restoration, per-call-site
 * once-semantics including races and quiet-mode consumption, and the
 * whole-line guarantee under concurrent workers that motivated routing
 * the default stderr sink through the process-wide log mutex.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"

using namespace hira;

namespace {

/**
 * Installs a capturing sink for the test's lifetime and restores the
 * default on destruction. The capture buffer is internally locked
 * because sinks may be called from multiple threads.
 */
class ScopedCaptureSink
{
  public:
    ScopedCaptureSink()
    {
        setLogSink([this](LogLevel level, const std::string &msg) {
            std::lock_guard<std::mutex> lock(m_);
            lines_.emplace_back(level, msg);
        });
    }

    ~ScopedCaptureSink() { setLogSink({}); }

    std::vector<std::pair<LogLevel, std::string>>
    lines() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return lines_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return lines_.size();
    }

  private:
    mutable std::mutex m_;
    std::vector<std::pair<LogLevel, std::string>> lines_;
};

} // namespace

TEST(LogSink, CapturesFormattedMessagesWithLevels)
{
    ScopedCaptureSink sink;
    warn("queue %d over %s", 3, "capacity");
    inform("point %zu done", static_cast<std::size_t>(7));

    auto lines = sink.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].first, LogLevel::Warn);
    EXPECT_EQ(lines[0].second, "queue 3 over capacity");
    EXPECT_EQ(lines[1].first, LogLevel::Info);
    EXPECT_EQ(lines[1].second, "point 7 done");
}

TEST(LogSink, EmptySinkRestoresDefault)
{
    auto probe = [] {
        ScopedCaptureSink inner;
        warn("probe");
        return inner.size();
    };

    ScopedCaptureSink outer;
    setLogSink({}); // back to stderr: the outer capture stops seeing msgs
    warn("to stderr");
    EXPECT_EQ(outer.size(), 0u);

    // A fresh sink takes over again.
    EXPECT_EQ(probe(), 1u);
}

TEST(LogSink, QuietSuppressesSinkToo)
{
    ScopedCaptureSink sink;
    setQuiet(true);
    warn("dropped");
    inform("dropped");
    setQuiet(false);
    EXPECT_EQ(sink.size(), 0u);
    warn("kept");
    EXPECT_EQ(sink.size(), 1u);
}

TEST(WarnOnce, FiresExactlyOncePerCallSite)
{
    ScopedCaptureSink sink;
    for (int i = 0; i < 5; ++i)
        warn_once("repeated condition %d", i);
    auto lines = sink.lines();
    ASSERT_EQ(lines.size(), 1u);
    // The first iteration wins; later formats are never rendered.
    EXPECT_EQ(lines[0].second, "repeated condition 0");
}

TEST(WarnOnce, DistinctCallSitesAreIndependent)
{
    ScopedCaptureSink sink;
    warn_once("site A");
    warn_once("site B"); // different call site: its own once-flag
    EXPECT_EQ(sink.size(), 2u);
}

TEST(WarnOnce, QuietConsumesTheOnceFlag)
{
    ScopedCaptureSink sink;
    // One call site, hit twice (the macro's once-flag is per expansion,
    // so textually repeating warn_once would test two distinct sites).
    auto site = [] { warn_once("swallowed while quiet"); };
    setQuiet(true);
    site();
    setQuiet(false);
    // The flag was consumed under quiet: un-quieting must not
    // resurrect the message on a later pass over the same site.
    site();
    EXPECT_EQ(sink.size(), 0u);
}

TEST(WarnOnce, ExactlyOneThreadWinsTheRace)
{
    ScopedCaptureSink sink;
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 100; ++i)
                warn_once("racing call site");
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(sink.size(), 1u);
}

TEST(LogSink, ConcurrentWarnsArriveWholeAndComplete)
{
    // The tearing regression this PR fixes: each worker's message must
    // arrive as one intact string, never interleaved with another
    // worker's bytes, and none may be lost. The sink-side lock in
    // ScopedCaptureSink only protects the vector; message integrity
    // comes from dispatch() formatting before publication.
    ScopedCaptureSink sink;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                warn("worker %d message %d payload abcdefghij", t, i);
        });
    }
    for (auto &th : threads)
        th.join();

    auto lines = sink.lines();
    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    std::vector<std::string> expected, got;
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kPerThread; ++i)
            expected.push_back(strprintf(
                "worker %d message %d payload abcdefghij", t, i));
    for (const auto &l : lines) {
        EXPECT_EQ(l.first, LogLevel::Warn);
        got.push_back(l.second);
    }
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
}

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("x=%d y=%.2f s=%s", 3, 1.5, "ab"),
              "x=3 y=1.50 s=ab");
    EXPECT_EQ(strprintf("%s", ""), "");
}
