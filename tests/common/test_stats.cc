/**
 * @file
 * Tests for the statistics helpers, including the paper's
 * box-and-whiskers conventions (footnote 6).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace hira;

namespace {

SampleSet
makeSet(std::initializer_list<double> vals)
{
    SampleSet s;
    for (double v : vals)
        s.add(v);
    return s;
}

} // namespace

TEST(SampleSet, MeanAndStddev)
{
    auto s = makeSet({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(SampleSet, MinMax)
{
    auto s = makeSet({3.0, -1.0, 7.5});
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(SampleSet, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(makeSet({1, 2, 3}).quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(makeSet({1, 2, 3, 4}).quantile(0.5), 2.5);
}

TEST(SampleSet, QuartilesMedianOfHalves)
{
    // Footnote 6: Q1 = median of lower half, Q3 = median of upper half.
    auto s = makeSet({1, 2, 3, 4, 5, 6, 7, 8});
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
    EXPECT_DOUBLE_EQ(s.quantile(0.75), 6.5);
    auto odd = makeSet({1, 2, 3, 4, 5, 6, 7});
    EXPECT_DOUBLE_EQ(odd.quantile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(odd.quantile(0.75), 6.0);
}

TEST(SampleSet, BoxSummary)
{
    auto s = makeSet({1, 2, 3, 4, 5, 6, 7, 8});
    BoxStats b = s.box();
    EXPECT_DOUBLE_EQ(b.min, 1.0);
    EXPECT_DOUBLE_EQ(b.max, 8.0);
    EXPECT_DOUBLE_EQ(b.median, 4.5);
    EXPECT_DOUBLE_EQ(b.iqr(), 4.0);
    EXPECT_EQ(b.count, 8u);
    EXPECT_FALSE(b.str().empty());
}

TEST(SampleSet, QuantileExtremes)
{
    auto s = makeSet({5, 1, 9});
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 9.0);
}

TEST(SampleSet, FractionAbove)
{
    auto s = makeSet({1.0, 1.7, 1.8, 2.0});
    EXPECT_DOUBLE_EQ(s.fractionAbove(1.7), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAbove(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.fractionAbove(5.0), 0.0);
}

TEST(SampleSet, MergeSets)
{
    auto a = makeSet({1, 2});
    auto b = makeSet({3, 4});
    a.add(b);
    EXPECT_EQ(a.size(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
}

TEST(Histogram, BinningAndClamping)
{
    std::vector<double> vals = {0.1, 0.1, 0.55, 0.9, -5.0, 99.0};
    auto bins = histogram(vals, 0.0, 1.0, 4);
    ASSERT_EQ(bins.size(), 4u);
    EXPECT_EQ(bins[0].count, 3u); // 0.1, 0.1, clamped -5.0
    EXPECT_EQ(bins[2].count, 1u); // 0.55
    EXPECT_EQ(bins[3].count, 2u); // 0.9, clamped 99.0
    double total = 0.0;
    for (const auto &b : bins)
        total += b.fraction;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, EdgesCoverRange)
{
    auto bins = histogram({0.5}, 0.0, 2.0, 4);
    EXPECT_DOUBLE_EQ(bins.front().lo, 0.0);
    EXPECT_DOUBLE_EQ(bins.back().hi, 2.0);
}

TEST(Histogram, SparklineShape)
{
    auto bins = histogram({0.1, 0.1, 0.1, 0.9}, 0.0, 1.0, 2);
    std::string s = sparkline(bins);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0], '#'); // peak bin renders at max level
}

TEST(Histogram, EmptySamples)
{
    auto bins = histogram({}, 0.0, 1.0, 3);
    for (const auto &b : bins) {
        EXPECT_EQ(b.count, 0u);
        EXPECT_DOUBLE_EQ(b.fraction, 0.0);
    }
}

TEST(SampleSet, EmptySetSummaries)
{
    SampleSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.fractionAbove(0.0), 0.0);
    // box() on an empty set is the zeroed summary, not a panic.
    BoxStats b = s.box();
    EXPECT_EQ(b.count, 0u);
    EXPECT_DOUBLE_EQ(b.min, 0.0);
    EXPECT_DOUBLE_EQ(b.max, 0.0);
    EXPECT_DOUBLE_EQ(b.iqr(), 0.0);
}

TEST(SampleSetDeathTest, QuantileOnEmptyPanics)
{
    SampleSet s;
    EXPECT_DEATH((void)s.quantile(0.5), "assertion failed");
    EXPECT_DEATH((void)s.min(), "assertion failed");
    EXPECT_DEATH((void)s.max(), "assertion failed");
}

TEST(SampleSet, SingleSample)
{
    auto s = makeSet({42.0});
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0); // n < 2: no variance estimate
    BoxStats b = s.box();
    EXPECT_EQ(b.count, 1u);
    EXPECT_DOUBLE_EQ(b.min, 42.0);
    EXPECT_DOUBLE_EQ(b.q1, 42.0);
    EXPECT_DOUBLE_EQ(b.median, 42.0);
    EXPECT_DOUBLE_EQ(b.q3, 42.0);
    EXPECT_DOUBLE_EQ(b.max, 42.0);
    EXPECT_DOUBLE_EQ(b.mean, 42.0);
    EXPECT_DOUBLE_EQ(b.iqr(), 0.0);
}

TEST(SampleSet, AllEqualValues)
{
    auto s = makeSet({3.0, 3.0, 3.0, 3.0, 3.0});
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    BoxStats b = s.box();
    EXPECT_DOUBLE_EQ(b.min, 3.0);
    EXPECT_DOUBLE_EQ(b.q1, 3.0);
    EXPECT_DOUBLE_EQ(b.median, 3.0);
    EXPECT_DOUBLE_EQ(b.q3, 3.0);
    EXPECT_DOUBLE_EQ(b.max, 3.0);
    EXPECT_DOUBLE_EQ(b.iqr(), 0.0);
    // Strictly-above semantics: equal samples do not count.
    EXPECT_DOUBLE_EQ(s.fractionAbove(3.0), 0.0);
}

TEST(Histogram, AllSamplesOutOfRange)
{
    // Everything clamps to the edge bins (the Fig. 5 tail convention):
    // nothing is dropped, fractions still sum to 1.
    auto bins = histogram({-10.0, -0.001, 5.0, 7.0, 99.0}, 0.0, 1.0, 4);
    EXPECT_EQ(bins.front().count, 2u);
    EXPECT_EQ(bins.back().count, 3u);
    double total = 0.0;
    for (const auto &b : bins)
        total += b.fraction;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, BoundaryValuesBinLeftInclusive)
{
    // Bins are [lo, hi): a sample exactly on an interior edge lands in
    // the right-hand bin; hi itself clamps into the last bin.
    auto bins = histogram({0.0, 0.5, 1.0}, 0.0, 1.0, 2);
    EXPECT_EQ(bins[0].count, 1u); // 0.0
    EXPECT_EQ(bins[1].count, 2u); // 0.5 (edge) and 1.0 (== hi, clamped)
}
