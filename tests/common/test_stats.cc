/**
 * @file
 * Tests for the statistics helpers, including the paper's
 * box-and-whiskers conventions (footnote 6).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace hira;

namespace {

SampleSet
makeSet(std::initializer_list<double> vals)
{
    SampleSet s;
    for (double v : vals)
        s.add(v);
    return s;
}

} // namespace

TEST(SampleSet, MeanAndStddev)
{
    auto s = makeSet({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(SampleSet, MinMax)
{
    auto s = makeSet({3.0, -1.0, 7.5});
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(SampleSet, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(makeSet({1, 2, 3}).quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(makeSet({1, 2, 3, 4}).quantile(0.5), 2.5);
}

TEST(SampleSet, QuartilesMedianOfHalves)
{
    // Footnote 6: Q1 = median of lower half, Q3 = median of upper half.
    auto s = makeSet({1, 2, 3, 4, 5, 6, 7, 8});
    EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
    EXPECT_DOUBLE_EQ(s.quantile(0.75), 6.5);
    auto odd = makeSet({1, 2, 3, 4, 5, 6, 7});
    EXPECT_DOUBLE_EQ(odd.quantile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(odd.quantile(0.75), 6.0);
}

TEST(SampleSet, BoxSummary)
{
    auto s = makeSet({1, 2, 3, 4, 5, 6, 7, 8});
    BoxStats b = s.box();
    EXPECT_DOUBLE_EQ(b.min, 1.0);
    EXPECT_DOUBLE_EQ(b.max, 8.0);
    EXPECT_DOUBLE_EQ(b.median, 4.5);
    EXPECT_DOUBLE_EQ(b.iqr(), 4.0);
    EXPECT_EQ(b.count, 8u);
    EXPECT_FALSE(b.str().empty());
}

TEST(SampleSet, QuantileExtremes)
{
    auto s = makeSet({5, 1, 9});
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 9.0);
}

TEST(SampleSet, FractionAbove)
{
    auto s = makeSet({1.0, 1.7, 1.8, 2.0});
    EXPECT_DOUBLE_EQ(s.fractionAbove(1.7), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAbove(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.fractionAbove(5.0), 0.0);
}

TEST(SampleSet, MergeSets)
{
    auto a = makeSet({1, 2});
    auto b = makeSet({3, 4});
    a.add(b);
    EXPECT_EQ(a.size(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
}

TEST(Histogram, BinningAndClamping)
{
    std::vector<double> vals = {0.1, 0.1, 0.55, 0.9, -5.0, 99.0};
    auto bins = histogram(vals, 0.0, 1.0, 4);
    ASSERT_EQ(bins.size(), 4u);
    EXPECT_EQ(bins[0].count, 3u); // 0.1, 0.1, clamped -5.0
    EXPECT_EQ(bins[2].count, 1u); // 0.55
    EXPECT_EQ(bins[3].count, 2u); // 0.9, clamped 99.0
    double total = 0.0;
    for (const auto &b : bins)
        total += b.fraction;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, EdgesCoverRange)
{
    auto bins = histogram({0.5}, 0.0, 2.0, 4);
    EXPECT_DOUBLE_EQ(bins.front().lo, 0.0);
    EXPECT_DOUBLE_EQ(bins.back().hi, 2.0);
}

TEST(Histogram, SparklineShape)
{
    auto bins = histogram({0.1, 0.1, 0.1, 0.9}, 0.0, 1.0, 2);
    std::string s = sparkline(bins);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0], '#'); // peak bin renders at max level
}

TEST(Histogram, EmptySamples)
{
    auto bins = histogram({}, 0.0, 1.0, 3);
    for (const auto &b : bins) {
        EXPECT_EQ(b.count, 0u);
        EXPECT_DOUBLE_EQ(b.fraction, 0.0);
    }
}
