/**
 * @file
 * Tests for the deterministic RNG layer: reproducibility, distributional
 * sanity, and the stateless per-entity hash randomness that the chip
 * variation model depends on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

using namespace hira;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(99);
    std::uint64_t first = a.next();
    a.next();
    a.reseed(99);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(8);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform(3.0, 4.5);
        ASSERT_GE(u, 3.0);
        ASSERT_LT(u, 4.5);
    }
}

TEST(Rng, BelowIsUnbiasedAcrossSmallRange)
{
    Rng r(9);
    int counts[5] = {0};
    for (int i = 0; i < 50000; ++i)
        ++counts[r.below(5)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, RangeInclusive)
{
    Rng r(10);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 200; ++i) {
        std::int64_t v = r.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(12);
    double sum = 0.0, ss = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double g = r.gaussian();
        sum += g;
        ss += g * g;
    }
    double mean = sum / n;
    double var = ss / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, GaussianScaled)
{
    Rng r(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(HashRandom, DeterministicAndOrderIndependent)
{
    double a = hashUniform(42, 7, 9, 3);
    double b = hashUniform(42, 7, 9, 3);
    EXPECT_EQ(a, b);
    EXPECT_NE(hashUniform(42, 7, 9, 3), hashUniform(42, 7, 9, 4));
    EXPECT_NE(hashUniform(42, 7, 9, 3), hashUniform(43, 7, 9, 3));
}

TEST(HashRandom, UniformCoversInterval)
{
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = hashUniform(5, static_cast<std::uint64_t>(i));
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(HashRandom, GaussianMoments)
{
    double sum = 0.0, ss = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double g = hashGaussian(77, static_cast<std::uint64_t>(i));
        sum += g;
        ss += g * g;
    }
    double mean = sum / n;
    double var = ss / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(HashRandom, StringHashStable)
{
    EXPECT_EQ(hashString("C0"), hashString("C0"));
    EXPECT_NE(hashString("C0"), hashString("C1"));
}

TEST(Rng, GoldenStreamPinsGeneratorContract)
{
    // The exact output stream is part of the library contract (see the
    // rng.hh header comment): results published from one platform must
    // reproduce bit-for-bit on any other. These values pin the seeding
    // path (splitmix64 expansion) and the xoshiro256** step function.
    Rng r(0x5eedULL);
    const std::uint64_t expect[4] = {
        0x7e62888939af659eULL,
        0x8f1b51a14c1c7c9bULL,
        0x75b1b6aec14e96dcULL,
        0x46defa1e990b2e9bULL,
    };
    for (std::uint64_t e : expect)
        ASSERT_EQ(r.next(), e);

    // The default-constructed generator uses seed 0x5eed.
    Rng d;
    EXPECT_EQ(d.next(), expect[0]);
}

TEST(Rng, GoldenDerivedValuesPinHashesAndUniform)
{
    EXPECT_EQ(splitmix64(42), 0xbdd732262feb6e95ULL);
    EXPECT_EQ(hashCombine(1, 2), 0xa3c4449e2626b033ULL);
    EXPECT_EQ(hashString("hira"), 0xd2438738b1b00752ULL);
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bit-for-bit, and
    // these literals are exactly representable outputs of the integer
    // pipeline, so a 1-ULP divergence must fail.
    EXPECT_EQ(hashUniform(7, 1, 2, 3), 0.79741486793058791);

    Rng u(123);
    EXPECT_EQ(u.uniform(), 0.087087627748164365);
    EXPECT_EQ(u.uniform(), 0.33945713666267274);
}

TEST(HashRandom, SplitmixAvalanche)
{
    // Flipping one input bit should flip roughly half the output bits.
    int total = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        std::uint64_t d = splitmix64(i) ^ splitmix64(i ^ 1);
        total += __builtin_popcountll(d);
    }
    EXPECT_NEAR(total / 256.0, 32.0, 4.0);
}
