/**
 * @file
 * Tests for the persistent WorkerPool: exact index coverage, reuse
 * across jobs, and the exception contract — a throwing work item must
 * not std::terminate the process; the first exception is rethrown on
 * the calling thread and the pool stays usable afterwards.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/worker_pool.hh"

using namespace hira;

TEST(WorkerPool, CoversEveryIndexExactlyOnce)
{
    WorkerPool pool(4);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkerPool, ReusableAcrossManyJobs)
{
    // Back-to-back jobs of different sizes on one pool: a stale worker
    // straddling a job boundary would double-run or miss indices.
    WorkerPool pool(4);
    for (std::size_t n : {1u, 7u, 64u, 3u, 257u}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " index " << i;
    }
}

TEST(WorkerPool, ZeroItemsReturnsImmediately)
{
    WorkerPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(WorkerPool, SingleThreadRunsInline)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    std::vector<int> order;
    pool.parallelFor(5, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, ClampsNonPositiveThreadCounts)
{
    WorkerPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
    WorkerPool neg(-3);
    EXPECT_EQ(neg.threadCount(), 1);
}

TEST(WorkerPool, ExceptionRethrownOnCallingThread)
{
    WorkerPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](std::size_t i) {
                             if (i == 57)
                                 throw std::runtime_error("item 57");
                         }),
        std::runtime_error);
}

TEST(WorkerPool, ExceptionMessageAndTypePreserved)
{
    WorkerPool pool(2);
    try {
        pool.parallelFor(10, [&](std::size_t) {
            throw std::out_of_range("boom from worker");
        });
        FAIL() << "parallelFor did not rethrow";
    } catch (const std::out_of_range &e) {
        EXPECT_STREQ(e.what(), "boom from worker");
    }
}

TEST(WorkerPool, ExceptionSkipsRemainingAndPoolStaysUsable)
{
    // Index 0 is always claimed first and throws immediately; every
    // other item burns 100 us. If skipping works, only the handful of
    // items claimed before the skip flag was set can execute — far
    // fewer than the 9999 non-throwing items a broken skip would run.
    WorkerPool pool(4);
    std::atomic<int> executed{0};
    EXPECT_THROW(
        pool.parallelFor(10000,
                         [&](std::size_t i) {
                             if (i == 0)
                                 throw std::runtime_error("x");
                             std::this_thread::sleep_for(
                                 std::chrono::microseconds(100));
                             executed.fetch_add(1);
                         }),
        std::runtime_error);
    EXPECT_LT(executed.load(), 1000);

    // The pool recovers: the next job runs clean over every index.
    std::vector<std::atomic<int>> hits(100);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(100, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < 100; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkerPool, InlineModePropagatesException)
{
    WorkerPool pool(1);
    int executed = 0;
    EXPECT_THROW(pool.parallelFor(10,
                                  [&](std::size_t i) {
                                      if (i == 3)
                                          throw std::runtime_error("x");
                                      ++executed;
                                  }),
                 std::runtime_error);
    EXPECT_EQ(executed, 3); // items after the throw were skipped
    pool.parallelFor(4, [&](std::size_t) { ++executed; });
    EXPECT_EQ(executed, 7);
}
