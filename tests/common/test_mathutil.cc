/**
 * @file
 * Tests for log-space numerics used by the PARA security analysis.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/mathutil.hh"

using namespace hira;

TEST(MathUtil, LogAddExpBasic)
{
    double r = logAddExp(std::log(2.0), std::log(3.0));
    EXPECT_NEAR(r, std::log(5.0), 1e-12);
}

TEST(MathUtil, LogAddExpHandlesNegInfinity)
{
    double ninf = -std::numeric_limits<double>::infinity();
    EXPECT_DOUBLE_EQ(logAddExp(ninf, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(logAddExp(1.0, ninf), 1.0);
    EXPECT_DOUBLE_EQ(logAddExp(ninf, ninf), ninf);
}

TEST(MathUtil, LogAddExpExtremeMagnitudes)
{
    // exp(-1000) + exp(-2000) == exp(-1000) to double precision.
    EXPECT_NEAR(logAddExp(-1000.0, -2000.0), -1000.0, 1e-12);
}

TEST(MathUtil, GeometricSumMatchesDirect)
{
    double r = 0.3;
    double direct = 0.0, term = 1.0;
    for (int i = 0; i <= 10; ++i) {
        direct += term;
        term *= r;
    }
    EXPECT_NEAR(logGeometricSum(std::log(r), 10), std::log(direct), 1e-12);
}

TEST(MathUtil, GeometricSumLargeN)
{
    // For |r| < 1 and huge n the sum converges to 1 / (1 - r).
    double r = 0.5;
    double inf_sum = 1.0 / (1.0 - r);
    EXPECT_NEAR(logGeometricSum(std::log(r), 1u << 20), std::log(inf_sum),
                1e-9);
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv<std::uint64_t>(10, 5), 2u);
    EXPECT_EQ(ceilDiv<std::uint64_t>(11, 5), 3u);
    EXPECT_EQ(ceilDiv<std::uint64_t>(1, 5), 1u);
}

TEST(MathUtil, ApproxEqual)
{
    EXPECT_TRUE(approxEqual(1.0, 1.0 + 1e-12, 1e-9));
    EXPECT_FALSE(approxEqual(1.0, 1.1, 1e-3));
    EXPECT_TRUE(approxEqual(1e9, 1e9 + 10, 1e-7));
}
