/**
 * @file
 * Unit tests for the metrics registry (src/common/metrics.hh): the
 * HIRA_METRICS level gating (Off hands out nullptr everywhere, Counters
 * withholds histograms), MetricScope prefix composition, histogram
 * clamped binning, and the snapshot / diff / merge algebra the sweep
 * executor relies on to scope metrics to measurement intervals and
 * aggregate per-mix runs into per-point artifacts.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/metrics.hh"

using namespace hira;

namespace {

/** Scoped HIRA_METRICS override, restoring the prior value on exit. */
class ScopedMetricsEnv
{
  public:
    explicit ScopedMetricsEnv(const char *value)
    {
        const char *prev = ::getenv("HIRA_METRICS");
        had_ = prev != nullptr;
        if (had_)
            prev_ = prev;
        if (value != nullptr)
            ::setenv("HIRA_METRICS", value, 1);
        else
            ::unsetenv("HIRA_METRICS");
    }

    ~ScopedMetricsEnv()
    {
        if (had_)
            ::setenv("HIRA_METRICS", prev_.c_str(), 1);
        else
            ::unsetenv("HIRA_METRICS");
    }

  private:
    bool had_ = false;
    std::string prev_;
};

} // namespace

TEST(MetricsLevel, EnvParsing)
{
    {
        ScopedMetricsEnv env(nullptr);
        EXPECT_EQ(defaultMetricsLevel(), MetricsLevel::Off);
    }
    {
        ScopedMetricsEnv env("");
        EXPECT_EQ(defaultMetricsLevel(), MetricsLevel::Off);
    }
    {
        ScopedMetricsEnv env("off");
        EXPECT_EQ(defaultMetricsLevel(), MetricsLevel::Off);
    }
    {
        ScopedMetricsEnv env("counters");
        EXPECT_EQ(defaultMetricsLevel(), MetricsLevel::Counters);
    }
    {
        ScopedMetricsEnv env("full");
        EXPECT_EQ(defaultMetricsLevel(), MetricsLevel::Full);
    }
    {
        // Unknown values fall back to off (and warn once, not per call).
        ScopedMetricsEnv env("bogus");
        EXPECT_EQ(defaultMetricsLevel(), MetricsLevel::Off);
        EXPECT_EQ(defaultMetricsLevel(), MetricsLevel::Off);
    }
}

TEST(MetricsLevel, Names)
{
    EXPECT_STREQ(metricsLevelName(MetricsLevel::Off), "off");
    EXPECT_STREQ(metricsLevelName(MetricsLevel::Counters), "counters");
    EXPECT_STREQ(metricsLevelName(MetricsLevel::Full), "full");
}

TEST(MetricRegistry, OffRegistersNothing)
{
    MetricRegistry reg(MetricsLevel::Off);
    EXPECT_EQ(reg.counter("a"), nullptr);
    EXPECT_EQ(reg.gauge("b"), nullptr);
    EXPECT_EQ(reg.histogram("c", 0.0, 1.0, 4), nullptr);
    EXPECT_TRUE(reg.snapshot().empty());
}

TEST(MetricRegistry, CountersLevelWithholdsHistograms)
{
    MetricRegistry reg(MetricsLevel::Counters);
    EXPECT_NE(reg.counter("a"), nullptr);
    EXPECT_NE(reg.gauge("b"), nullptr);
    EXPECT_EQ(reg.histogram("c", 0.0, 1.0, 4), nullptr);
}

TEST(MetricRegistry, FullRegistersEverything)
{
    MetricRegistry reg(MetricsLevel::Full);
    EXPECT_NE(reg.counter("a"), nullptr);
    EXPECT_NE(reg.gauge("b"), nullptr);
    EXPECT_NE(reg.histogram("c", 0.0, 1.0, 4), nullptr);
}

TEST(MetricRegistry, ReregistrationReturnsSameMetric)
{
    MetricRegistry reg(MetricsLevel::Full);
    Counter *c = reg.counter("x");
    count(c, 3);
    EXPECT_EQ(reg.counter("x"), c);
    EXPECT_EQ(reg.counter("x")->value, 3u);
    HistogramMetric *h = reg.histogram("h", 0.0, 8.0, 4);
    EXPECT_EQ(reg.histogram("h", 0.0, 8.0, 4), h);
}

TEST(MetricRegistry, HotPathHelpersAreNullSafe)
{
    // The disabled fast path: every helper must accept nullptr.
    count(static_cast<Counter *>(nullptr));
    count(static_cast<Counter *>(nullptr), 42);
    setGauge(nullptr, 1.5);
    observe(nullptr, 3.0);

    Counter c;
    count(&c);
    count(&c, 4);
    EXPECT_EQ(c.value, 5u);
    Gauge g;
    setGauge(&g, 2.5);
    EXPECT_DOUBLE_EQ(g.value, 2.5);
}

TEST(MetricScope, PrefixComposition)
{
    MetricRegistry reg(MetricsLevel::Full);
    MetricScope root(&reg, "");
    MetricScope ctrl = root.sub("ctrl0");
    MetricScope bank = ctrl.sub("bank3");
    EXPECT_EQ(ctrl.prefix(), "ctrl0.");
    EXPECT_EQ(bank.prefix(), "ctrl0.bank3.");

    Counter *c = bank.counter("reads");
    ASSERT_NE(c, nullptr);
    count(c, 7);
    MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.values.count("ctrl0.bank3.reads"), 1u);
    EXPECT_EQ(snap.values.at("ctrl0.bank3.reads").count, 7u);
}

TEST(MetricScope, DefaultConstructedIsDisabled)
{
    MetricScope scope;
    EXPECT_EQ(scope.registry(), nullptr);
    EXPECT_EQ(scope.counter("a"), nullptr);
    EXPECT_EQ(scope.gauge("b"), nullptr);
    EXPECT_EQ(scope.histogram("c", 0.0, 1.0, 2), nullptr);
    // sub() of a null scope stays null instead of crashing.
    EXPECT_EQ(scope.sub("x").counter("y"), nullptr);
}

TEST(HistogramMetric, ClampedBinning)
{
    HistogramMetric h(0.0, 4.0, 4);
    h.observe(0.5);   // bin 0
    h.observe(1.0);   // bin 1 (left-inclusive edges)
    h.observe(-10.0); // clamps to bin 0
    h.observe(4.0);   // == hi, clamps to bin 3
    h.observe(99.0);  // clamps to bin 3
    EXPECT_EQ(h.count(), 5u);
    ASSERT_EQ(h.bins().size(), 4u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[2], 0u);
    EXPECT_EQ(h.bins()[3], 2u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 - 10.0 + 4.0 + 99.0);
}

namespace {

/** A registry with one of each metric kind, pre-loaded with values. */
MetricsSnapshot
sampleSnapshot(std::uint64_t c, double g, std::initializer_list<double> obs)
{
    MetricRegistry reg(MetricsLevel::Full);
    count(reg.counter("n.counter"), c);
    setGauge(reg.gauge("n.gauge"), g);
    HistogramMetric *h = reg.histogram("n.hist", 0.0, 4.0, 4);
    for (double x : obs)
        observe(h, x);
    return reg.snapshot();
}

} // namespace

TEST(MetricsSnapshot, CapturesAllKinds)
{
    MetricsSnapshot snap = sampleSnapshot(5, 1.25, {0.5, 2.5});
    ASSERT_EQ(snap.values.size(), 3u);

    const MetricValue &c = snap.values.at("n.counter");
    EXPECT_EQ(c.kind, MetricValue::Kind::Counter);
    EXPECT_EQ(c.count, 5u);

    const MetricValue &g = snap.values.at("n.gauge");
    EXPECT_EQ(g.kind, MetricValue::Kind::Gauge);
    EXPECT_DOUBLE_EQ(g.value, 1.25);

    const MetricValue &h = snap.values.at("n.hist");
    EXPECT_EQ(h.kind, MetricValue::Kind::Histogram);
    EXPECT_EQ(h.count, 2u);
    EXPECT_DOUBLE_EQ(h.value, 3.0);
    EXPECT_DOUBLE_EQ(h.lo, 0.0);
    EXPECT_DOUBLE_EQ(h.hi, 4.0);
    ASSERT_EQ(h.bins.size(), 4u);
    EXPECT_EQ(h.bins[0], 1u);
    EXPECT_EQ(h.bins[2], 1u);
}

TEST(MetricsSnapshot, DiffScopesToInterval)
{
    // The runOne() protocol: snapshot after warmup, diff at the end.
    MetricsSnapshot base = sampleSnapshot(3, 0.5, {0.5});
    MetricsSnapshot end = sampleSnapshot(10, 2.0, {0.5, 1.5, 3.5});
    MetricsSnapshot d = end.diff(base);

    EXPECT_EQ(d.values.at("n.counter").count, 7u);
    // Gauges are point-in-time: diff keeps the newer value.
    EXPECT_DOUBLE_EQ(d.values.at("n.gauge").value, 2.0);
    const MetricValue &h = d.values.at("n.hist");
    EXPECT_EQ(h.count, 2u);
    EXPECT_DOUBLE_EQ(h.value, 5.0);
    EXPECT_EQ(h.bins[0], 0u);
    EXPECT_EQ(h.bins[1], 1u);
    EXPECT_EQ(h.bins[3], 1u);
}

TEST(MetricsSnapshot, DiffKeepsNamesMissingFromBase)
{
    MetricsSnapshot base;
    MetricsSnapshot end = sampleSnapshot(4, 1.0, {});
    MetricsSnapshot d = end.diff(base);
    EXPECT_EQ(d.values.at("n.counter").count, 4u);
}

TEST(MetricsSnapshot, MergeAccumulates)
{
    // The runPoints() reduction: per-mix runs merge into the point.
    MetricsSnapshot a = sampleSnapshot(3, 1.0, {0.5});
    MetricsSnapshot b = sampleSnapshot(5, 2.0, {0.5, 2.5});
    a.merge(b);

    EXPECT_EQ(a.values.at("n.counter").count, 8u);
    // Gauges add under merge (documented: publish additive quantities).
    EXPECT_DOUBLE_EQ(a.values.at("n.gauge").value, 3.0);
    const MetricValue &h = a.values.at("n.hist");
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.bins[0], 2u);
    EXPECT_EQ(h.bins[2], 1u);
}

TEST(MetricsSnapshot, MergeIntoEmptyAdoptsOther)
{
    MetricsSnapshot a;
    MetricsSnapshot b = sampleSnapshot(2, 0.5, {1.5});
    a.merge(b);
    EXPECT_EQ(a.values.size(), 3u);
    EXPECT_EQ(a.values.at("n.counter").count, 2u);
}

TEST(MetricsSnapshot, DiffThenMergeRoundTrip)
{
    // merge(diff(end, base), base-interval) must reconstruct end for
    // the monotone kinds — the algebra aggregation relies on.
    MetricsSnapshot base = sampleSnapshot(3, 0.5, {0.5});
    MetricsSnapshot end = sampleSnapshot(10, 2.0, {0.5, 1.5, 3.5});
    MetricsSnapshot d = end.diff(base);
    MetricsSnapshot rebuilt = base;
    rebuilt.merge(d);
    EXPECT_EQ(rebuilt.values.at("n.counter").count,
              end.values.at("n.counter").count);
    EXPECT_EQ(rebuilt.values.at("n.hist").count,
              end.values.at("n.hist").count);
    EXPECT_EQ(rebuilt.values.at("n.hist").bins,
              end.values.at("n.hist").bins);
}

TEST(MetricsSnapshotDeathTest, MergeRejectsKindMismatch)
{
    MetricRegistry ra(MetricsLevel::Full);
    count(ra.counter("x"), 1);
    MetricsSnapshot a = ra.snapshot();

    MetricRegistry rb(MetricsLevel::Full);
    setGauge(rb.gauge("x"), 1.0);
    MetricsSnapshot b = rb.snapshot();

    EXPECT_DEATH(a.merge(b), "assertion failed");
}

TEST(MetricsSnapshotDeathTest, DiffRejectsHistogramShapeMismatch)
{
    MetricRegistry ra(MetricsLevel::Full);
    ra.histogram("h", 0.0, 4.0, 4);
    MetricsSnapshot a = ra.snapshot();

    MetricRegistry rb(MetricsLevel::Full);
    rb.histogram("h", 0.0, 4.0, 8);
    MetricsSnapshot b = rb.snapshot();

    EXPECT_DEATH((void)a.diff(b), "assertion failed");
}

TEST(MetricRegistry, SnapshotIterationIsSorted)
{
    MetricRegistry reg(MetricsLevel::Counters);
    reg.counter("z.last");
    reg.counter("a.first");
    reg.gauge("m.middle");
    MetricsSnapshot snap = reg.snapshot();
    std::string prev;
    for (const auto &kv : snap.values) {
        EXPECT_LT(prev, kv.first);
        prev = kv.first;
    }
    EXPECT_EQ(snap.values.begin()->first, "a.first");
}
