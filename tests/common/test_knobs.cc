/**
 * @file
 * Tests for environment-variable bench knobs.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/knobs.hh"

using namespace hira;

TEST(Knobs, FallbackWhenUnset)
{
    unsetenv("HIRA_TEST_KNOB");
    EXPECT_EQ(envKnob("HIRA_TEST_KNOB", 42), 42);
    EXPECT_DOUBLE_EQ(envKnobDouble("HIRA_TEST_KNOB", 1.5), 1.5);
}

TEST(Knobs, ParsesInteger)
{
    setenv("HIRA_TEST_KNOB", "1234", 1);
    EXPECT_EQ(envKnob("HIRA_TEST_KNOB", 0), 1234);
    unsetenv("HIRA_TEST_KNOB");
}

TEST(Knobs, ParsesDouble)
{
    setenv("HIRA_TEST_KNOB", "0.25", 1);
    EXPECT_DOUBLE_EQ(envKnobDouble("HIRA_TEST_KNOB", 0.0), 0.25);
    unsetenv("HIRA_TEST_KNOB");
}

TEST(Knobs, GarbageFallsBack)
{
    setenv("HIRA_TEST_KNOB", "not-a-number", 1);
    EXPECT_EQ(envKnob("HIRA_TEST_KNOB", 7), 7);
    unsetenv("HIRA_TEST_KNOB");
}

TEST(Knobs, EmptyFallsBack)
{
    setenv("HIRA_TEST_KNOB", "", 1);
    EXPECT_EQ(envKnob("HIRA_TEST_KNOB", 7), 7);
    unsetenv("HIRA_TEST_KNOB");
}

TEST(Knobs, BenchKnobsDefaults)
{
    unsetenv("HIRA_MIXES");
    unsetenv("HIRA_CYCLES");
    unsetenv("HIRA_WARMUP");
    unsetenv("HIRA_ROWS");
    unsetenv("HIRA_THREADS");
    BenchKnobs k = BenchKnobs::fromEnv();
    EXPECT_EQ(k.mixes, 6);
    EXPECT_EQ(k.cycles, 150000);
    EXPECT_EQ(k.warmup, 30000);
    EXPECT_EQ(k.rows, 256);
    EXPECT_GT(k.threads, 0);
}

TEST(Knobs, BenchKnobsOverride)
{
    setenv("HIRA_MIXES", "125", 1);
    setenv("HIRA_ROWS", "6144", 1);
    BenchKnobs k = BenchKnobs::fromEnv();
    EXPECT_EQ(k.mixes, 125);
    EXPECT_EQ(k.rows, 6144);
    unsetenv("HIRA_MIXES");
    unsetenv("HIRA_ROWS");
}

TEST(Knobs, FromEnvClampsNonPositiveScales)
{
    // Zero or negative scales would only produce NaN means / empty
    // sweeps downstream, so fromEnv clamps them to a sane floor.
    setenv("HIRA_MIXES", "0", 1);
    setenv("HIRA_CYCLES", "-5", 1);
    setenv("HIRA_WARMUP", "-1", 1);
    setenv("HIRA_ROWS", "0", 1);
    setenv("HIRA_THREADS", "0", 1);
    BenchKnobs k = BenchKnobs::fromEnv();
    EXPECT_EQ(k.mixes, 1);
    EXPECT_EQ(k.cycles, 1);
    EXPECT_EQ(k.warmup, 0);
    EXPECT_EQ(k.rows, 1);
    EXPECT_EQ(k.threads, 1);
    unsetenv("HIRA_MIXES");
    unsetenv("HIRA_CYCLES");
    unsetenv("HIRA_WARMUP");
    unsetenv("HIRA_ROWS");
    unsetenv("HIRA_THREADS");
}

TEST(Knobs, FromEnvCapsIntKnobsBeforeNarrowing)
{
    // 2^31 would wrap negative in the int-typed knobs without the cap.
    setenv("HIRA_MIXES", "2147483648", 1);
    setenv("HIRA_ROWS", "9223372036854775807", 1);
    BenchKnobs k = BenchKnobs::fromEnv();
    EXPECT_EQ(k.mixes, 2147483647);
    EXPECT_EQ(k.rows, 2147483647);
    unsetenv("HIRA_MIXES");
    unsetenv("HIRA_ROWS");
}
