/**
 * @file
 * Tests for the SoftMC host substitute: time quantization, primitive
 * sequences, and the HiRA op helper.
 */

#include <gtest/gtest.h>

#include "softmc/host.hh"

using namespace hira;

namespace {

ChipConfig
cfg(bool honors = true)
{
    ChipConfig c;
    c.seed = 4242;
    c.banks = 2;
    c.rowsPerBank = 512;
    c.subarraysPerBank = 64;
    c.honorsHira = honors;
    c.pairIsolationMean = 0.5;
    return c;
}

} // namespace

TEST(SoftMCHost, QuantizesToCommandGrid)
{
    // SoftMC issues a command every 1.5 ns (footnote 5).
    EXPECT_DOUBLE_EQ(SoftMCHost::quantize(3.0), 3.0);
    EXPECT_DOUBLE_EQ(SoftMCHost::quantize(4.5), 4.5);
    EXPECT_DOUBLE_EQ(SoftMCHost::quantize(1.0), 1.5);
    EXPECT_DOUBLE_EQ(SoftMCHost::quantize(14.25), 15.0);
    EXPECT_DOUBLE_EQ(SoftMCHost::quantize(0.0), 0.0);
}

TEST(SoftMCHost, TimeAdvancesWithCommands)
{
    DramChip chip(cfg());
    SoftMCHost host(chip);
    EXPECT_DOUBLE_EQ(host.time(), 0.0);
    host.act(0, 10, 3.0);
    EXPECT_DOUBLE_EQ(host.time(), 3.0);
    host.pre(0, 14.25);
    EXPECT_DOUBLE_EQ(host.time(), 18.0);
    host.wait(100.0);
    EXPECT_DOUBLE_EQ(host.time(), 118.5);
}

TEST(SoftMCHost, InitializeAndCompareRoundTrip)
{
    DramChip chip(cfg());
    SoftMCHost host(chip);
    host.initializeRow(0, 42, DataPattern::Checker);
    EXPECT_TRUE(host.compareRow(0, 42, DataPattern::Checker));
    EXPECT_FALSE(host.compareRow(0, 42, DataPattern::Zeros));
}

TEST(SoftMCHost, ReadRowReturnsBytes)
{
    DramChip chip(cfg());
    SoftMCHost host(chip);
    host.initializeRow(0, 7, DataPattern::Ones);
    auto data = host.readRow(0, 7);
    ASSERT_EQ(data.size(), chip.config().rowBytes);
    EXPECT_EQ(data[0], 0xFF);
}

TEST(SoftMCHost, HammerAdvancesNominalTime)
{
    DramChip chip(cfg());
    SoftMCHost host(chip);
    NanoSec before = host.time();
    host.hammerPair(0, 100, 102, 1000);
    // 1000 iterations x 2 activations x tRC.
    EXPECT_NEAR(host.time() - before, 1000.0 * 2.0 * 46.25, 1e-6);
}

TEST(SoftMCHost, HiraOpLeavesBankPrecharged)
{
    DramChip chip(cfg());
    SoftMCHost host(chip);
    host.initializeRow(0, 8, DataPattern::Ones);
    host.initializeRow(0, 40, DataPattern::Zeros);
    host.hiraOp(0, 8, 40, 3.0, 3.0);
    // A follow-up init must work from the precharged state.
    host.initializeRow(0, 9, DataPattern::Checker);
    EXPECT_TRUE(host.compareRow(0, 9, DataPattern::Checker));
}

TEST(SoftMCHost, PatternInversion)
{
    EXPECT_EQ(invert(DataPattern::Ones), DataPattern::Zeros);
    EXPECT_EQ(invert(DataPattern::Checker), DataPattern::InvChecker);
    EXPECT_EQ(invert(invert(DataPattern::Checker)), DataPattern::Checker);
}
