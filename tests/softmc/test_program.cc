/**
 * @file
 * Tests for SoftMC command programs and their executor.
 */

#include <gtest/gtest.h>

#include "softmc/program.hh"

using namespace hira;

namespace {

ChipConfig
cfg()
{
    ChipConfig c;
    c.seed = 555;
    c.banks = 1;
    c.rowsPerBank = 512;
    c.subarraysPerBank = 64;
    c.pairIsolationMean = 0.5;
    return c;
}

std::pair<RowId, RowId>
isolatedPair(const DramChip &chip)
{
    const auto &iso = chip.isolation();
    for (RowId a = 8; a < 512; a += 8) {
        for (RowId b = a + 24; b < 512; b += 8) {
            if (iso.rowsIsolated(a, b))
                return {a, b};
        }
    }
    return {0, 0};
}

} // namespace

TEST(CommandProgram, BuilderProducesInstructions)
{
    CommandProgram p;
    p.initRow(0, 1, DataPattern::Ones)
        .hira(0, 1, 2, 3.0, 3.0)
        .verifyRow(0, 1, DataPattern::Ones);
    // initRow: act, write, wait, pre (4); hira: act, pre, act, pre (4);
    // verifyRow: act, check, wait, pre (4).
    EXPECT_EQ(p.size(), 12u);
    EXPECT_EQ(p.instructions()[0].op, SoftMCOp::Act);
    EXPECT_EQ(p.instructions()[1].op, SoftMCOp::WritePattern);
}

TEST(CommandProgram, ExecuteAlgorithm1Inner)
{
    // Build Algorithm 1's inner loop as a program and run it on an
    // isolated pair: all checks must pass.
    DramChip chip(cfg());
    auto [a, b] = isolatedPair(chip);
    ASSERT_NE(a, 0u);
    SoftMCHost host(chip);
    CommandProgram p;
    for (DataPattern pat : kAllPatterns) {
        p.initRow(0, a, pat);
        p.initRow(0, b, invert(pat));
        p.hira(0, a, b, 3.0, 3.0);
        p.verifyRow(0, a, pat);
        p.verifyRow(0, b, invert(pat));
    }
    ProgramResult r = execute(host, p);
    EXPECT_EQ(r.checkResults.size(), 8u);
    EXPECT_TRUE(r.allChecksPassed());
    EXPECT_GT(r.endTime, 0.0);
}

TEST(CommandProgram, ExecuteDetectsSharedSubarrayCorruption)
{
    DramChip chip(cfg());
    SoftMCHost host(chip);
    RowId a = 16, b = 18; // same subarray (8 rows per subarray)
    CommandProgram p;
    p.initRow(0, a, DataPattern::Ones);
    p.initRow(0, b, DataPattern::Zeros);
    p.hira(0, a, b, 3.0, 3.0);
    p.verifyRow(0, a, DataPattern::Ones);
    p.verifyRow(0, b, DataPattern::Zeros);
    ProgramResult r = execute(host, p);
    EXPECT_FALSE(r.allChecksPassed());
}

TEST(CommandProgram, HammerLoopMatchesHostHelper)
{
    DramChip chip_a(cfg()), chip_b(cfg());
    SoftMCHost host_a(chip_a), host_b(chip_b);
    host_a.hammerPair(0, 100, 102, 500);
    CommandProgram p;
    p.hammerLoop(0, 100, 102, 500);
    execute(host_b, p);
    EXPECT_DOUBLE_EQ(chip_a.damageOf(0, 101), chip_b.damageOf(0, 101));
    EXPECT_DOUBLE_EQ(host_a.time(), host_b.time());
}

TEST(CommandProgram, EmptyProgramPasses)
{
    DramChip chip(cfg());
    SoftMCHost host(chip);
    ProgramResult r = execute(host, CommandProgram());
    EXPECT_TRUE(r.allChecksPassed());
    EXPECT_DOUBLE_EQ(r.endTime, 0.0);
}
