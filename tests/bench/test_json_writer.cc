/**
 * @file
 * Regression tests for the HIRA_JSON bench artifact writer
 * (bench/bench_util.hh): JSON has no inf/nan literals, so non-finite
 * series values must be emitted as null — a bare `inf` token breaks
 * every downstream parser.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "bench_util.hh"

using namespace hira;
using namespace hira::benchutil;

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    EXPECT_EQ(detail::jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(detail::jsonNumber(-std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(detail::jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(detail::jsonNumber(1.5), "1.5");
    EXPECT_EQ(detail::jsonNumber(0.0), "0");
}

TEST(JsonWriter, ArtifactWithNonFiniteSeriesStaysValidJson)
{
    std::string templ = "/tmp/hira_json_writer.XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    ASSERT_NE(mkdtemp(buf.data()), nullptr);
    std::string dir = buf.data();
    ::setenv("HIRA_JSON", dir.c_str(), 1);

    banner("json writer regression", "none");
    knobsLine(BenchKnobs{});
    seriesHeader("series", {"a", "b", "c"});
    seriesRow("degenerate",
              {1.5, std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::quiet_NaN()});
    note("contains non-finite values on purpose");
    footer();
    ::unsetenv("HIRA_JSON");

    std::string path = dir + "/BENCH_" + detail::driverName() + ".json";
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string json = ss.str();

    // The degenerate values land as null, never as bare inf/nan.
    EXPECT_NE(json.find("[1.5, null, null]"), std::string::npos) << json;
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);

    ::unlink(path.c_str());
    ::rmdir(dir.c_str());
}
