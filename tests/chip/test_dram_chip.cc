/**
 * @file
 * Tests for the behavioral chip model: normal operation, every HiRA
 * failure mode, vendor-ignore behavior, RowHammer accumulation and
 * restoration, and retention.
 */

#include <gtest/gtest.h>

#include "chip/dram_chip.hh"

using namespace hira;

namespace {

constexpr double kRcd = 14.25, kRas = 32.0, kRp = 14.25;

ChipConfig
testConfig(bool honors = true)
{
    ChipConfig cfg;
    cfg.name = "test";
    cfg.seed = 777;
    cfg.banks = 2;
    cfg.rowsPerBank = 1024;
    cfg.subarraysPerBank = 128; // 8 rows per subarray
    cfg.honorsHira = honors;
    cfg.pairIsolationMean = 0.5;
    return cfg;
}

/** Find a row pair that is design-isolated with mid-window timings. */
std::pair<RowId, RowId>
isolatedPair(const DramChip &chip)
{
    const auto &iso = chip.isolation();
    const auto &cfg = chip.config();
    for (RowId a = 8; a < cfg.rowsPerBank; a += 8) {
        for (RowId b = a + 24; b < cfg.rowsPerBank; b += 8) {
            if (iso.rowsIsolated(a, b))
                return {a, b};
        }
    }
    ADD_FAILURE() << "no isolated pair found";
    return {0, 0};
}

std::pair<RowId, RowId>
sharedPair(const DramChip &chip)
{
    const auto &cfg = chip.config();
    // Same subarray: guaranteed to share sense amplifiers.
    (void)chip;
    return {RowId(16), RowId(16 + cfg.rowsPerSubarray() / 2)};
}

/** Open, write, close a row with nominal timing. */
NanoSec
initRow(DramChip &chip, BankId bank, RowId row, DataPattern p, NanoSec t)
{
    chip.act(bank, row, t);
    chip.writeOpenRow(bank, p, t + kRcd);
    chip.pre(bank, t + kRas);
    return t + kRas + kRp;
}

/** Open, compare, close. */
bool
checkRow(DramChip &chip, BankId bank, RowId row, DataPattern p, NanoSec &t)
{
    chip.act(bank, row, t);
    bool ok = chip.openRowMatches(bank, p, t + kRcd);
    chip.pre(bank, t + kRas);
    t += kRas + kRp;
    return ok;
}

/** Full HiRA with given t1/t2, then close. */
NanoSec
doHira(DramChip &chip, BankId bank, RowId a, RowId b, double t1, double t2,
       NanoSec t)
{
    chip.act(bank, a, t);
    chip.pre(bank, t + t1);
    chip.act(bank, b, t + t1 + t2);
    chip.pre(bank, t + t1 + t2 + kRas);
    return t + t1 + t2 + kRas + kRp;
}

} // namespace

TEST(DramChip, NormalWriteReadBack)
{
    DramChip chip(testConfig());
    NanoSec t = initRow(chip, 0, 100, DataPattern::Checker, 0.0);
    EXPECT_TRUE(checkRow(chip, 0, 100, DataPattern::Checker, t));
    EXPECT_FALSE(checkRow(chip, 0, 100, DataPattern::Ones, t));
}

TEST(DramChip, UninitializedRowNeverMatches)
{
    DramChip chip(testConfig());
    NanoSec t = 0.0;
    EXPECT_FALSE(checkRow(chip, 0, 5, DataPattern::Zeros, t));
}

TEST(DramChip, ReadRowMaterializesPattern)
{
    DramChip chip(testConfig());
    NanoSec t = initRow(chip, 0, 100, DataPattern::Checker, 0.0);
    chip.act(0, 100, t);
    auto data = chip.readOpenRow(0, t + kRcd);
    chip.pre(0, t + kRas);
    ASSERT_EQ(data.size(), chip.config().rowBytes);
    for (auto byte : data)
        EXPECT_EQ(byte, 0xAA);
}

TEST(DramChip, EarlyPreCorruptsRow)
{
    // PRE before restoration completes destroys the row (tRAS exists for
    // a reason). The fate is decided when the precharge runs to term.
    DramChip chip(testConfig());
    NanoSec t = initRow(chip, 0, 200, DataPattern::Ones, 0.0);
    chip.act(0, 200, t);
    chip.pre(0, t + 10.0);          // way before restore completes
    NanoSec t2 = t + 10.0 + 30.0;   // precharge runs to term
    EXPECT_FALSE(checkRow(chip, 0, 200, DataPattern::Ones, t2));
    EXPECT_GT(chip.stats().interruptedRestores, 0u);
}

TEST(DramChip, HiraSuccessPreservesBothRows)
{
    DramChip chip(testConfig());
    auto [a, b] = isolatedPair(chip);
    NanoSec t = initRow(chip, 0, a, DataPattern::Checker, 0.0);
    t = initRow(chip, 0, b, DataPattern::InvChecker, t);
    t = doHira(chip, 0, a, b, 3.0, 3.0, t);
    EXPECT_TRUE(checkRow(chip, 0, a, DataPattern::Checker, t));
    EXPECT_TRUE(checkRow(chip, 0, b, DataPattern::InvChecker, t));
    EXPECT_EQ(chip.stats().hiraSuccess, 1u);
}

TEST(DramChip, HiraSharedSubarrayCorruptsData)
{
    DramChip chip(testConfig());
    auto [a, b] = sharedPair(chip);
    NanoSec t = initRow(chip, 0, a, DataPattern::Checker, 0.0);
    t = initRow(chip, 0, b, DataPattern::InvChecker, t);
    t = doHira(chip, 0, a, b, 3.0, 3.0, t);
    bool a_ok = checkRow(chip, 0, a, DataPattern::Checker, t);
    bool b_ok = checkRow(chip, 0, b, DataPattern::InvChecker, t);
    EXPECT_FALSE(a_ok && b_ok);
    EXPECT_GT(chip.stats().hiraNotIsolated, 0u);
}

TEST(DramChip, HiraTinyT1CorruptsFirstRow)
{
    // t1 = 1.5 ns: sense amps not yet enabled for (almost) any row.
    DramChip chip(testConfig());
    auto [a, b] = isolatedPair(chip);
    // Pick a row whose saEnable is definitely above 1.5 ns.
    ASSERT_GT(chip.variation().saEnable(a), 1.5);
    NanoSec t = initRow(chip, 0, a, DataPattern::Ones, 0.0);
    t = initRow(chip, 0, b, DataPattern::Zeros, t);
    t = doHira(chip, 0, a, b, 1.5, 3.0, t);
    EXPECT_FALSE(checkRow(chip, 0, a, DataPattern::Ones, t));
    EXPECT_GT(chip.stats().hiraBadT1, 0u);
}

TEST(DramChip, HiraHugeT1CorruptsFirstRow)
{
    DramChip chip(testConfig());
    auto [a, b] = isolatedPair(chip);
    ASSERT_LT(chip.variation().ioConnect(a), 6.5);
    NanoSec t = initRow(chip, 0, a, DataPattern::Ones, 0.0);
    t = initRow(chip, 0, b, DataPattern::Zeros, t);
    t = doHira(chip, 0, a, b, 6.5, 3.0, t);
    EXPECT_FALSE(checkRow(chip, 0, a, DataPattern::Ones, t));
}

TEST(DramChip, HiraLateSecondActIsNormalReopen)
{
    // If the second ACT arrives after the precharge completed, there is
    // no HiRA: the first row was closed early (corrupting it) and the
    // second row opens normally.
    DramChip chip(testConfig());
    auto [a, b] = isolatedPair(chip);
    NanoSec t = initRow(chip, 0, a, DataPattern::Ones, 0.0);
    t = initRow(chip, 0, b, DataPattern::Zeros, t);
    chip.act(0, a, t);
    chip.pre(0, t + 3.0);
    chip.act(0, b, t + 3.0 + 20.0); // t2 = 20 ns > interrupt window
    chip.pre(0, t + 3.0 + 20.0 + kRas);
    NanoSec t3 = t + 3.0 + 20.0 + kRas + kRp;
    EXPECT_FALSE(checkRow(chip, 0, a, DataPattern::Ones, t3));
    EXPECT_TRUE(checkRow(chip, 0, b, DataPattern::Zeros, t3));
    EXPECT_EQ(chip.stats().hiraAttempts, 0u);
}

TEST(DramChip, IgnoringVendorLeavesDataIntact)
{
    // Micron/Samsung-like chips ignore the violating PRE and the second
    // ACT: no corruption, but no second activation either (the
    // Algorithm 1 false positive the paper's §4.3 exists to unmask).
    DramChip chip(testConfig(/*honors=*/false));
    auto [a, b] = isolatedPair(chip);
    NanoSec t = initRow(chip, 0, a, DataPattern::Ones, 0.0);
    t = initRow(chip, 0, b, DataPattern::Zeros, t);
    t = doHira(chip, 0, a, b, 3.0, 3.0, t);
    EXPECT_TRUE(checkRow(chip, 0, a, DataPattern::Ones, t));
    EXPECT_TRUE(checkRow(chip, 0, b, DataPattern::Zeros, t));
    EXPECT_EQ(chip.stats().hiraAttempts, 0u);
    EXPECT_GT(chip.stats().ignoredPre, 0u);
    EXPECT_GT(chip.stats().ignoredAct, 0u);
}

TEST(DramChip, HammeringFlipsVictimPastThreshold)
{
    DramChip chip(testConfig());
    RowId victim = 500;
    NanoSec t = initRow(chip, 0, victim, DataPattern::Checker, 0.0);
    t = initRow(chip, 0, victim - 1, DataPattern::InvChecker, t);
    t = initRow(chip, 0, victim + 1, DataPattern::InvChecker, t);
    double nrh = chip.variation().nrhBase(victim);
    // Hammer to 1.3x the base threshold: must flip.
    std::uint64_t n = static_cast<std::uint64_t>(nrh * 1.3 / 2.0);
    t = chip.hammerPair(0, victim - 1, victim + 1, n, t);
    EXPECT_FALSE(checkRow(chip, 0, victim, DataPattern::Checker, t));
}

TEST(DramChip, HammeringBelowThresholdIsHarmless)
{
    DramChip chip(testConfig());
    RowId victim = 500;
    NanoSec t = initRow(chip, 0, victim, DataPattern::Checker, 0.0);
    t = initRow(chip, 0, victim - 1, DataPattern::InvChecker, t);
    t = initRow(chip, 0, victim + 1, DataPattern::InvChecker, t);
    double nrh = chip.variation().nrhBase(victim);
    std::uint64_t n = static_cast<std::uint64_t>(nrh * 0.6 / 2.0);
    t = chip.hammerPair(0, victim - 1, victim + 1, n, t);
    EXPECT_TRUE(checkRow(chip, 0, victim, DataPattern::Checker, t));
}

TEST(DramChip, RefreshBetweenHammerPhasesRaisesTolerance)
{
    // The mechanism behind §4.3: a mid-attack refresh (here a plain
    // re-activation of the victim) removes most accumulated disturbance.
    DramChip chip(testConfig());
    // Pick a victim whose restoration efficacy is high enough that the
    // post-refresh residual stays clearly below the threshold.
    RowId victim = 450;
    while (chip.variation().eta(0, victim) < 0.9)
        ++victim;
    double nrh = chip.variation().nrhBase(victim);
    std::uint64_t half = static_cast<std::uint64_t>(nrh * 0.70 / 2.0);

    // 1.4x the threshold in one go: flips.
    NanoSec t = initRow(chip, 0, victim, DataPattern::Checker, 0.0);
    t = initRow(chip, 0, victim - 1, DataPattern::InvChecker, t);
    t = initRow(chip, 0, victim + 1, DataPattern::InvChecker, t);
    t = chip.hammerPair(0, victim - 1, victim + 1, 2 * half, t);
    EXPECT_FALSE(checkRow(chip, 0, victim, DataPattern::Checker, t));

    // Same count split by a victim refresh: survives.
    t = initRow(chip, 0, victim, DataPattern::Checker, t);
    t = chip.hammerPair(0, victim - 1, victim + 1, half, t);
    chip.act(0, victim, t);
    chip.pre(0, t + kRas);
    t += kRas + kRp;
    t = chip.hammerPair(0, victim - 1, victim + 1, half, t);
    EXPECT_TRUE(checkRow(chip, 0, victim, DataPattern::Checker, t));
}

TEST(DramChip, HiraSecondActRefreshesVictim)
{
    // HiRA's second ACT (targeting the victim) must act as a refresh.
    DramChip chip(testConfig());
    auto [dummy, victim] = isolatedPair(chip);
    if (victim + 1 >= chip.config().rowsPerBank)
        victim -= 8;
    // Walk within the victim's subarray to a high-efficacy row.
    while (chip.variation().eta(0, victim) < 0.9)
        ++victim;
    ASSERT_TRUE(chip.isolation().rowsIsolated(dummy, victim));
    double nrh = chip.variation().nrhBase(victim);
    std::uint64_t half = static_cast<std::uint64_t>(nrh * 0.70 / 2.0);
    NanoSec t = initRow(chip, 0, victim, DataPattern::Checker, 0.0);
    t = initRow(chip, 0, dummy, DataPattern::InvChecker, t);
    t = initRow(chip, 0, victim - 1, DataPattern::InvChecker, t);
    t = initRow(chip, 0, victim + 1, DataPattern::InvChecker, t);
    t = chip.hammerPair(0, victim - 1, victim + 1, half, t);
    t = doHira(chip, 0, dummy, victim, 3.0, 3.0, t);
    t = chip.hammerPair(0, victim - 1, victim + 1, half, t);
    EXPECT_TRUE(checkRow(chip, 0, victim, DataPattern::Checker, t));
}

TEST(DramChip, DamageAccumulatesOnBothNeighbors)
{
    DramChip chip(testConfig());
    NanoSec t = 0.0;
    chip.act(0, 300, t);
    chip.pre(0, t + kRas);
    EXPECT_DOUBLE_EQ(chip.damageOf(0, 299), 1.0);
    EXPECT_DOUBLE_EQ(chip.damageOf(0, 301), 1.0);
    EXPECT_DOUBLE_EQ(chip.damageOf(0, 300), 0.0);
}

TEST(DramChip, EdgeRowHasOneNeighbor)
{
    DramChip chip(testConfig());
    chip.act(0, 0, 0.0);
    chip.pre(0, kRas);
    EXPECT_DOUBLE_EQ(chip.damageOf(0, 1), 1.0);
}

TEST(DramChip, BanksAreIndependent)
{
    DramChip chip(testConfig());
    NanoSec t = initRow(chip, 0, 100, DataPattern::Ones, 0.0);
    NanoSec t1 = initRow(chip, 1, 100, DataPattern::Zeros, 0.0);
    EXPECT_TRUE(checkRow(chip, 0, 100, DataPattern::Ones, t));
    EXPECT_TRUE(checkRow(chip, 1, 100, DataPattern::Zeros, t1));
}

TEST(DramChip, RetentionFailureWithoutRefresh)
{
    DramChip chip(testConfig());
    NanoSec t = initRow(chip, 0, 100, DataPattern::Ones, 0.0);
    // Within the retention time: fine. After a long unrefreshed gap: not.
    NanoSec soon = t + 1e6; // +1 ms
    chip.act(0, 100, soon);
    EXPECT_TRUE(chip.openRowMatches(0, DataPattern::Ones, soon + kRcd));
    chip.pre(0, soon + kRas);
    NanoSec late = soon + kRas + kRp + 5e9; // +5 s unrefreshed
    chip.act(0, 100, late);
    EXPECT_FALSE(chip.openRowMatches(0, DataPattern::Ones, late + kRcd));
    chip.pre(0, late + kRas);
}

TEST(DramChip, HiraOnlySecondRowStaysOpen)
{
    // After HiRA only RowB's buffer is connected: the open row is RowB.
    DramChip chip(testConfig());
    auto [a, b] = isolatedPair(chip);
    NanoSec t = initRow(chip, 0, a, DataPattern::Ones, 0.0);
    t = initRow(chip, 0, b, DataPattern::Zeros, t);
    chip.act(0, a, t);
    chip.pre(0, t + 3.0);
    chip.act(0, b, t + 6.0);
    EXPECT_EQ(chip.openRow(0), b);
    chip.pre(0, t + 6.0 + kRas);
}
