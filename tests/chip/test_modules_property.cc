/**
 * @file
 * Parameterized property tests over the full Table 1/4 module catalog:
 * every module's measured coverage and normalized NRH land in the
 * paper's band, pairs are identical across banks, and the reliable
 * operating point never corrupts data.
 */

#include <gtest/gtest.h>

#include "characterize/coverage.hh"
#include "characterize/rowhammer.hh"
#include "chip/modules.hh"

using namespace hira;

class ModuleProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    static constexpr std::uint32_t kRows = 256;

    DramChip
    chip(std::uint32_t banks = 2) const
    {
        return DramChip(moduleByLabel(GetParam(), kRows, banks).config);
    }
};

TEST_P(ModuleProperty, CoverageMeanWithinPaperBand)
{
    DramChip c = chip();
    ModuleInfo info = moduleByLabel(GetParam(), kRows, 2);
    CoverageConfig cfg;
    cfg.rows = spreadRows(c.config(), 64);
    cfg.allPatterns = false;
    double mean = measureCoverage(c, cfg).mean();
    EXPECT_NEAR(mean, info.paper.covAvg, 0.07) << GetParam();
}

TEST_P(ModuleProperty, NoZeroCoverageRowsAtReliablePoint)
{
    DramChip c = chip();
    CoverageConfig cfg;
    cfg.rows = spreadRows(c.config(), 64);
    cfg.allPatterns = false;
    EXPECT_DOUBLE_EQ(measureCoverage(c, cfg).zeroFraction(), 0.0);
}

TEST_P(ModuleProperty, NormalizedNrhNearTwoMinusEta)
{
    DramChip c = chip(1);
    ModuleInfo info = moduleByLabel(GetParam(), kRows, 1);
    auto r = measureNormalizedNrh(c, 0, victimRows(c.config(), 10));
    EXPECT_NEAR(r.normalized.mean(), info.paper.nrhAvg, 0.22)
        << GetParam();
}

TEST_P(ModuleProperty, PairSetIdenticalAcrossBanks)
{
    DramChip c = chip(2);
    SoftMCHost host(c);
    for (RowId a = 4; a < kRows; a += 48) {
        for (RowId b = 20; b < kRows; b += 56) {
            if (a == b)
                continue;
            EXPECT_EQ(hiraPairWorks(host, 0, a, b, 3.0, 3.0, false),
                      hiraPairWorks(host, 1, a, b, 3.0, 3.0, false))
                << GetParam() << " pair " << a << "," << b;
        }
    }
}

TEST_P(ModuleProperty, SuccessfulPairsNeverCorrupt)
{
    // Determinism of the reliable point: repeating a working pair many
    // times never flips a bit (the paper's ten-iteration criterion).
    DramChip c = chip(1);
    SoftMCHost host(c);
    RowId partner = findHiraPartner(host, 0, 40, 3.0, 3.0);
    ASSERT_NE(partner, kNoRow) << GetParam();
    for (int iter = 0; iter < 10; ++iter) {
        EXPECT_TRUE(hiraPairWorks(host, 0, 40, partner, 3.0, 3.0))
            << GetParam() << " iteration " << iter;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModules, ModuleProperty,
                         ::testing::Values("A0", "A1", "B0", "B1", "C0",
                                           "C1", "C2"));
