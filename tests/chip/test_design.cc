/**
 * @file
 * Tests for the design-level subarray isolation map.
 */

#include <gtest/gtest.h>

#include "chip/design.hh"
#include "chip/modules.hh"

using namespace hira;

namespace {

ChipConfig
smallConfig()
{
    ChipConfig cfg;
    cfg.seed = 1234;
    cfg.rowsPerBank = 1024;
    cfg.subarraysPerBank = 128;
    cfg.pairIsolationMean = 0.33;
    cfg.pairIsolationSpread = 0.05;
    return cfg;
}

} // namespace

TEST(IsolationMap, Symmetric)
{
    IsolationMap iso(smallConfig());
    for (SubarrayId a = 0; a < 128; a += 7) {
        for (SubarrayId b = 0; b < 128; b += 5)
            EXPECT_EQ(iso.isolated(a, b), iso.isolated(b, a));
    }
}

TEST(IsolationMap, NeverSelfIsolated)
{
    IsolationMap iso(smallConfig());
    for (SubarrayId a = 0; a < 128; ++a)
        EXPECT_FALSE(iso.isolated(a, a));
}

TEST(IsolationMap, AdjacentSubarraysShareSenseAmps)
{
    // Open-bitline architecture: adjacent subarrays can never pair.
    IsolationMap iso(smallConfig());
    for (SubarrayId a = 0; a + 1 < 128; ++a)
        EXPECT_FALSE(iso.isolated(a, a + 1));
}

TEST(IsolationMap, MeanFractionNearTarget)
{
    IsolationMap iso(smallConfig());
    EXPECT_NEAR(iso.meanIsolatedFraction(), 0.33, 0.04);
}

TEST(IsolationMap, DeterministicForSameSeed)
{
    IsolationMap a(smallConfig()), b(smallConfig());
    for (SubarrayId s = 0; s < 128; ++s)
        EXPECT_DOUBLE_EQ(a.isolatedFraction(s), b.isolatedFraction(s));
}

TEST(IsolationMap, DifferentSeedsDiffer)
{
    ChipConfig c1 = smallConfig();
    ChipConfig c2 = smallConfig();
    c2.seed = 9999;
    IsolationMap a(c1), b(c2);
    int diff = 0;
    for (SubarrayId s = 0; s < 128; s += 3) {
        for (SubarrayId t = 0; t < 128; t += 3)
            diff += a.isolated(s, t) != b.isolated(s, t);
    }
    EXPECT_GT(diff, 50);
}

TEST(IsolationMap, RowsMapThroughSubarrays)
{
    ChipConfig cfg = smallConfig();
    IsolationMap iso(cfg);
    // Rows in the same subarray are never isolated from each other.
    EXPECT_FALSE(iso.rowsIsolated(0, 1));
    // Row isolation must agree with the subarray map.
    RowId a = 5, b = 600;
    EXPECT_EQ(iso.rowsIsolated(a, b),
              iso.isolated(cfg.subarrayOf(a), cfg.subarrayOf(b)));
}

TEST(IsolationMap, PartnersMatchMatrix)
{
    IsolationMap iso(smallConfig());
    auto partners = iso.partnersOf(10);
    EXPECT_FALSE(partners.empty());
    for (SubarrayId p : partners)
        EXPECT_TRUE(iso.isolated(10, p));
    EXPECT_NEAR(static_cast<double>(partners.size()) / 127.0,
                iso.isolatedFraction(10), 0.01);
}

TEST(IsolationMap, ModuleCatalogCoversTable4)
{
    auto modules = hiraModules(1024, 16);
    ASSERT_EQ(modules.size(), 7u);
    EXPECT_EQ(modules[0].label, "A0");
    EXPECT_EQ(modules[4].label, "C0");
    for (const auto &m : modules) {
        IsolationMap iso(m.config);
        EXPECT_NEAR(iso.meanIsolatedFraction(), m.paper.covAvg, 0.05)
            << m.label;
        EXPECT_TRUE(m.config.honorsHira);
    }
}

TEST(IsolationMap, NonHiraVendorConfig)
{
    ChipConfig cfg = nonHiraVendorConfig("micron-like", 1024, 16);
    EXPECT_FALSE(cfg.honorsHira);
}
