/**
 * @file
 * Tests for the per-row variation sampler: determinism, bounds, and the
 * distributions the Fig. 4 / Fig. 5 behaviors rely on.
 */

#include <gtest/gtest.h>

#include "chip/variation.hh"

using namespace hira;

namespace {

ChipConfig
cfg()
{
    ChipConfig c;
    c.seed = 42;
    c.rowsPerBank = 4096;
    return c;
}

} // namespace

TEST(Variation, Deterministic)
{
    Variation a(cfg()), b(cfg());
    for (RowId r = 0; r < 100; ++r) {
        EXPECT_DOUBLE_EQ(a.saEnable(r), b.saEnable(r));
        EXPECT_DOUBLE_EQ(a.nrhBase(r), b.nrhBase(r));
    }
}

TEST(Variation, SaEnableWindowSupportsT1Of3ns)
{
    // At t1 = 3 ns every row's sense amps are enabled (no zero-coverage
    // rows, §4.2 observation 1); at t1 = 1.5 ns almost none are.
    Variation v(cfg());
    int ok3 = 0, ok15 = 0;
    for (RowId r = 0; r < 2000; ++r) {
        double sa = v.saEnable(r);
        EXPECT_GE(sa, 2.2 - 0.71);
        EXPECT_LE(sa, 2.2 + 0.71);
        ok3 += sa <= 3.0;
        ok15 += sa <= 1.5;
    }
    EXPECT_EQ(ok3, 2000);
    EXPECT_LT(ok15, 2000 / 10);
}

TEST(Variation, IoConnectWindowRejectsT1Of6ns)
{
    // t1 = 6 ns exceeds most rows' row-buffer connect time.
    Variation v(cfg());
    int ok45 = 0, ok6 = 0;
    for (RowId r = 0; r < 2000; ++r) {
        double io = v.ioConnect(r);
        ok45 += 4.5 <= io;
        ok6 += 6.0 <= io;
    }
    EXPECT_EQ(ok45, 2000);   // t1 = 4.5 ns works for all rows
    EXPECT_LT(ok6, 2000 / 5); // t1 = 6 ns fails for most
}

TEST(Variation, T2WindowsCoverMidRange)
{
    Variation v(cfg());
    for (RowId r = 0; r < 2000; ++r) {
        EXPECT_LE(v.bLow(r), 3.0);  // t2 = 3 ns is above every lower bound
        EXPECT_GE(v.bLow(r), 0.0);
        EXPECT_GE(v.bHigh(r), 4.5); // t2 = 4.5 ns below every upper bound
    }
}

TEST(Variation, RestoreTimeBelowTras)
{
    // Every row completes restoration within nominal tRAS (32 ns).
    Variation v(cfg());
    for (RowId r = 0; r < 2000; ++r) {
        EXPECT_LE(v.restoreTime(r), 32.0);
        EXPECT_GE(v.restoreTime(r), 20.0);
    }
}

TEST(Variation, EtaBoundsAndBankBias)
{
    Variation v(cfg());
    double bank_mean[2] = {0.0, 0.0};
    for (RowId r = 0; r < 2000; ++r) {
        for (BankId b : {BankId(0), BankId(1)}) {
            double e = v.eta(b, r);
            EXPECT_GE(e, 0.75);
            EXPECT_LE(e, 1.0);
            bank_mean[b] += e;
        }
    }
    // Bank bias makes per-bank means differ measurably but mildly.
    double diff = std::abs(bank_mean[0] - bank_mean[1]) / 2000.0;
    EXPECT_LT(diff, 0.09);
}

TEST(Variation, NrhDistributionMatchesFig5a)
{
    // Fig. 5a: thresholds roughly 10K-80K, mean ~27.2K.
    Variation v(cfg());
    double sum = 0.0;
    double lo = 1e9, hi = 0.0;
    const int n = 4000;
    for (RowId r = 0; r < n; ++r) {
        double t = v.nrhBase(r);
        sum += t;
        lo = std::min(lo, t);
        hi = std::max(hi, t);
    }
    EXPECT_NEAR(sum / n, 27200.0, 3000.0);
    EXPECT_GT(lo, 8000.0);
    EXPECT_LT(hi, 90000.0);
}

TEST(Variation, SessionNoiseIsSmallAndCentered)
{
    Variation v(cfg());
    double base = v.nrhBase(77);
    double sum = 0.0;
    for (std::uint64_t s = 0; s < 500; ++s) {
        double e = v.nrhEffective(0, 77, s);
        EXPECT_NEAR(e, base, base * 0.16);
        sum += e;
    }
    EXPECT_NEAR(sum / 500.0, base, base * 0.02);
}

TEST(Variation, RetentionAboveTestDurations)
{
    // Section 4.1: tests are kept under ~10 ms so retention never
    // interferes; the weakest row must still be above that.
    Variation v(cfg());
    for (RowId r = 0; r < 2000; ++r)
        EXPECT_GT(v.retentionMs(0, r), 20.0);
}
