/**
 * @file
 * Parameterized property tests for HiRA-MC across slack configurations
 * and capacities: the refresh-rate contract (every bank receives its
 * scheduled refresh work), bounded deadline misses, and conservation
 * (generated preventives = executed + queued) under random demand.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "core/hira_mc.hh"
#include "mem/controller.hh"

using namespace hira;

namespace {

Request
readReq(int rank, BankId bank, RowId row, std::uint64_t tag)
{
    Request r;
    r.type = MemType::Read;
    r.da.channel = 0;
    r.da.rank = rank;
    r.da.bank = bank;
    r.da.row = row;
    r.addr = (static_cast<Addr>(row) << 24) |
             (static_cast<Addr>(bank) << 16) | (tag << 6);
    r.tag = tag;
    return r;
}

} // namespace

class HiraMcProperty
    : public ::testing::TestWithParam<std::tuple<int, double, double>>
{
};

TEST_P(HiraMcProperty, RefreshRateAndDeadlineContract)
{
    auto [slack_n, capacity, demand] = GetParam();
    ControllerConfig cc;
    cc.geom = Geometry::forCapacityGb(capacity);
    cc.tp = ddr4_2400(capacity);
    cc.paraImmediate = false;
    HiraMcConfig h;
    h.slackN = slack_n;
    auto scheme = std::make_unique<HiraMc>(h);
    HiraMc *mc = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));

    TimingCycles tc(cc.tp);
    double interval = static_cast<double>(tc.refi) * 8192.0 /
                      static_cast<double>(cc.geom.refreshGroupsPerBank);
    Cycle horizon = static_cast<Cycle>(interval * 24.0);

    Rng rng(hashCombine(static_cast<std::uint64_t>(slack_n),
                        static_cast<std::uint64_t>(capacity)));
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < horizon; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(demand) && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(0, static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(
                                     cc.geom.rowsPerBank)),
                                 tag++));
        }
    }

    // Rate contract: ~24 refreshes per bank were scheduled; all but the
    // in-flight tail executed.
    double expected = 24.0 * 16.0;
    double got = static_cast<double>(mc->stats().rowRefreshes);
    EXPECT_NEAR(got, expected, expected * 0.15)
        << "slack " << slack_n << " capacity " << capacity;

    // Deadline contract: under this moderate load, misses stay rare.
    double miss_rate = got == 0.0
                           ? 0.0
                           : static_cast<double>(
                                 mc->stats().deadlineMisses) /
                                 got;
    EXPECT_LT(miss_rate, 0.05);

    // The table never leaks entries beyond its slack-bounded occupancy.
    EXPECT_LT(mc->table(0).size(), 40u);
}

INSTANTIATE_TEST_SUITE_P(
    SlackCapacityDemand, HiraMcProperty,
    ::testing::Values(std::make_tuple(0, 8.0, 0.05),
                      std::make_tuple(2, 8.0, 0.05),
                      std::make_tuple(4, 8.0, 0.10),
                      std::make_tuple(8, 8.0, 0.10),
                      std::make_tuple(2, 32.0, 0.05),
                      std::make_tuple(4, 128.0, 0.05)));

class PreventiveProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(PreventiveProperty, GeneratedEqualsExecutedPlusQueued)
{
    double pth = GetParam();
    ControllerConfig cc;
    cc.geom = Geometry::forCapacityGb(8.0);
    cc.tp = ddr4_2400(8.0);
    cc.paraImmediate = false;
    HiraMcConfig h;
    h.slackN = 4;
    h.periodicViaHira = false;
    h.preventive.enabled = true;
    h.preventive.pth = pth;
    auto scheme = std::make_unique<HiraMc>(h);
    HiraMc *mc = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));

    Rng rng(99);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < 120000; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(0.06) && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(0, static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(65536)),
                                 tag++));
        }
    }

    // Conservation: every sampled victim is either refreshed, still
    // queued (in the table, mirrored by the PR-FIFOs), or was dropped
    // by a full 4-entry PR-FIFO and never queued anywhere.
    std::uint64_t queued = mc->table(0).size();
    EXPECT_EQ(mc->stats().preventiveGenerated,
              mc->stats().rowRefreshes + queued +
                  mc->stats().preventiveDropped);
    EXPECT_EQ(mc->stats().preventiveDropped, mc->prFifo(0).overflows());
    if (pth > 0.0) {
        EXPECT_GT(mc->stats().preventiveGenerated, 50u);
    }
}

INSTANTIATE_TEST_SUITE_P(PthSweep, PreventiveProperty,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4));
