/**
 * @file
 * Unit tests for HiRA-MC's hardware components: Refresh Table, RefPtr
 * Table, PR-FIFO, and SPT (Section 5's four structures).
 */

#include <gtest/gtest.h>

#include "core/pr_fifo.hh"
#include "core/refptr_table.hh"
#include "core/refresh_table.hh"
#include "core/spt.hh"

using namespace hira;

TEST(RefreshTable, InsertAndEarliestByDeadline)
{
    RefreshTable t(8);
    std::uint64_t id1, id2, id3;
    t.insert(300, 0, 2, RefreshType::Periodic, &id1);
    t.insert(100, 0, 2, RefreshType::Preventive, &id2);
    t.insert(200, 0, 5, RefreshType::Periodic, &id3);
    ASSERT_NE(t.earliestForBank(0, 2), nullptr);
    EXPECT_EQ(t.earliestForBank(0, 2)->id, id2);
    EXPECT_EQ(t.earliestForRank(0)->id, id2);
    EXPECT_EQ(t.earliestForBank(0, 5)->id, id3);
    EXPECT_EQ(t.earliestForBank(0, 9), nullptr);
}

TEST(RefreshTable, RankSeparation)
{
    RefreshTable t(8);
    t.insert(100, 1, 3, RefreshType::Periodic);
    EXPECT_EQ(t.earliestForRank(0), nullptr);
    ASSERT_NE(t.earliestForRank(1), nullptr);
}

TEST(RefreshTable, PairCandidateSameBankOnly)
{
    RefreshTable t(8);
    std::uint64_t id1, id2, id3;
    t.insert(100, 0, 2, RefreshType::Periodic, &id1);
    t.insert(150, 0, 2, RefreshType::Preventive, &id2);
    t.insert(120, 0, 3, RefreshType::Periodic, &id3);
    const RefreshEntry *first = t.earliestForBank(0, 2);
    const RefreshEntry *pair = t.pairCandidate(*first);
    ASSERT_NE(pair, nullptr);
    EXPECT_EQ(pair->id, id2);
    // Bank 3's lone entry has no pair.
    EXPECT_EQ(t.pairCandidate(*t.earliestForBank(0, 3)), nullptr);
}

TEST(RefreshTable, RemoveById)
{
    RefreshTable t(8);
    std::uint64_t id;
    t.insert(100, 0, 1, RefreshType::Periodic, &id);
    EXPECT_TRUE(t.remove(id));
    EXPECT_FALSE(t.remove(id));
    EXPECT_TRUE(t.empty());
}

TEST(RefreshTable, OverflowCounted)
{
    RefreshTable t(2);
    EXPECT_TRUE(t.insert(1, 0, 0, RefreshType::Periodic));
    EXPECT_TRUE(t.insert(2, 0, 0, RefreshType::Periodic));
    EXPECT_FALSE(t.insert(3, 0, 0, RefreshType::Periodic));
    EXPECT_EQ(t.overflows(), 1u);
    EXPECT_EQ(t.size(), 3u); // entry still stored
}

TEST(RefPtrTable, PeekPrefersLeastRefreshedSubarray)
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    SubarrayPairsTable spt(geom, 0.5, 99);
    RefPtrTable rp(16, geom.subarraysPerBank, 512);
    RefPtrPick first = rp.peek(0, kAnySubarray, spt);
    ASSERT_TRUE(first.valid());
    rp.advance(0, first.subarray);
    RefPtrPick second = rp.peek(0, kAnySubarray, spt);
    ASSERT_TRUE(second.valid());
    EXPECT_NE(second.subarray, first.subarray);
}

TEST(RefPtrTable, PairConstraintRespectsSpt)
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    SubarrayPairsTable spt(geom, 0.32, 99);
    RefPtrTable rp(16, geom.subarraysPerBank, 512);
    SubarrayId partner = 10;
    for (int i = 0; i < 50; ++i) {
        RefPtrPick p = rp.peek(3, partner, spt);
        ASSERT_TRUE(p.valid());
        EXPECT_TRUE(spt.isolated(p.subarray, partner));
        rp.advance(3, p.subarray);
    }
}

TEST(RefPtrTable, PointerWrapsWithinSubarray)
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    SubarrayPairsTable spt(geom, 1.0, 99);
    RefPtrTable rp(16, geom.subarraysPerBank, 4); // 4 groups/subarray
    for (int i = 0; i < 5; ++i)
        rp.advance(0, 7);
    EXPECT_EQ(rp.pointer(0, 7), 1u); // 5 mod 4
    EXPECT_EQ(rp.windowCount(0, 7), 5u);
    rp.resetWindow();
    EXPECT_EQ(rp.windowCount(0, 7), 0u);
    EXPECT_EQ(rp.pointer(0, 7), 1u); // pointer survives window reset
}

TEST(RefPtrTable, BalancedAdvanceAcrossSubarrays)
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    SubarrayPairsTable spt(geom, 1.0, 99);
    RefPtrTable rp(16, geom.subarraysPerBank, 512);
    // Repeatedly refreshing with the min-count policy visits every
    // subarray once before any repeats.
    std::set<SubarrayId> seen;
    for (std::uint32_t i = 0; i < geom.subarraysPerBank; ++i) {
        RefPtrPick p = rp.peek(0, kAnySubarray, spt);
        EXPECT_EQ(seen.count(p.subarray), 0u);
        seen.insert(p.subarray);
        rp.advance(0, p.subarray);
    }
    EXPECT_EQ(seen.size(), geom.subarraysPerBank);
}

TEST(PrFifo, FifoOrderAndSecond)
{
    PrFifoSet f(16);
    EXPECT_TRUE(f.empty(3));
    f.push(3, 100);
    f.push(3, 200);
    EXPECT_EQ(f.front(3), 100u);
    EXPECT_EQ(f.second(3), 200u);
    f.pop(3);
    EXPECT_EQ(f.front(3), 200u);
    EXPECT_EQ(f.second(3), kNoRow);
}

TEST(PrFifo, FullFifoRejectsThePush)
{
    // Section 6 sizes the PR-FIFO at 4 entries per bank: a push into a
    // full FIFO must NOT store the victim (the hardware has nowhere to
    // put it), must return false, and must count the overflow.
    PrFifoSet f(16, 4);
    for (RowId r = 0; r < 4; ++r)
        EXPECT_TRUE(f.push(2, r));
    EXPECT_TRUE(f.full(2));
    EXPECT_FALSE(f.push(2, 99));
    EXPECT_EQ(f.overflows(), 1u);
    EXPECT_EQ(f.size(2), 4u);
    // The rejected victim is nowhere in the FIFO.
    for (RowId r = 0; r < 4; ++r) {
        EXPECT_EQ(f.front(2), r);
        f.pop(2);
    }
    EXPECT_TRUE(f.empty(2));
    // Dropping an entry reopens capacity.
    EXPECT_TRUE(f.push(2, 100));
    EXPECT_EQ(f.overflows(), 1u);
}

TEST(PrFifo, OverflowAccountingAccumulatesAcrossBanks)
{
    PrFifoSet f(4, 1);
    EXPECT_TRUE(f.push(0, 1));
    EXPECT_FALSE(f.push(0, 2));
    EXPECT_FALSE(f.push(0, 3));
    EXPECT_TRUE(f.push(3, 4));
    EXPECT_FALSE(f.push(3, 5));
    EXPECT_EQ(f.overflows(), 3u);
    EXPECT_EQ(f.size(0), 1u);
    EXPECT_EQ(f.size(3), 1u);
}

TEST(PrFifo, BanksIndependent)
{
    PrFifoSet f(16);
    f.push(0, 1);
    EXPECT_TRUE(f.empty(1));
    EXPECT_FALSE(f.empty(0));
}

TEST(Spt, IsolationDensityMatchesAssumption)
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    SubarrayPairsTable spt(geom, 0.32, 0x5b7a);
    EXPECT_NEAR(spt.map().meanIsolatedFraction(), 0.32, 0.04);
}

TEST(Spt, RowToSubarrayMapping)
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    SubarrayPairsTable spt(geom, 0.32, 1);
    EXPECT_EQ(spt.subarrayOf(0), 0u);
    EXPECT_EQ(spt.subarrayOf(511), 0u);
    EXPECT_EQ(spt.subarrayOf(512), 1u);
    EXPECT_EQ(spt.rowsPerSubarray(), 512u);
}

TEST(Spt, AnySubarrayIsWildcard)
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    SubarrayPairsTable spt(geom, 0.32, 1);
    EXPECT_TRUE(spt.isolated(kAnySubarray, 5));
    EXPECT_TRUE(spt.isolated(5, kAnySubarray));
}
