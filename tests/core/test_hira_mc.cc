/**
 * @file
 * Tests for the HiRA-MC refresh scheme driving a real controller:
 * periodic generation rate, deadline guarantees, pairing behavior, the
 * PreventiveRC path, and the protocol audit of HiRA command traces.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/hira_mc.hh"
#include "dram/timing_checker.hh"
#include "mem/controller.hh"

using namespace hira;

namespace {

ControllerConfig
makeConfig(double capacity_gb = 8.0)
{
    ControllerConfig cc;
    cc.geom = Geometry::forCapacityGb(capacity_gb);
    cc.tp = ddr4_2400(capacity_gb);
    cc.recordTrace = true;
    cc.paraImmediate = false;
    return cc;
}

HiraMcConfig
hiraCfg(int slack_n)
{
    HiraMcConfig h;
    h.slackN = slack_n;
    return h;
}

Request
readReq(int rank, BankId bank, RowId row, std::uint64_t tag)
{
    Request r;
    r.type = MemType::Read;
    r.da.channel = 0;
    r.da.rank = rank;
    r.da.bank = bank;
    r.da.row = row;
    r.addr = (static_cast<Addr>(row) << 24) |
             (static_cast<Addr>(bank) << 16) | (tag << 6);
    r.tag = tag;
    r.coreId = 0;
    return r;
}

} // namespace

TEST(HiraMc, IdlePeriodicRefreshRateMatchesSchedule)
{
    // With no demand traffic, HiRA-MC must still refresh every bank at
    // the per-bank generation rate (tREFW / refreshGroupsPerBank).
    auto cc = makeConfig();
    cc.recordTrace = false;
    auto scheme = std::make_unique<HiraMc>(hiraCfg(2));
    HiraMc *mc = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    TimingCycles tc(cc.tp);
    Cycle window = tc.refi * 8192;
    double interval = static_cast<double>(window) /
                      static_cast<double>(cc.geom.refreshGroupsPerBank);
    Cycle horizon = static_cast<Cycle>(interval * 40.0);
    for (Cycle now = 1; now < horizon; ++now)
        ctrl.tick(now);
    double expected = 40.0 * cc.geom.banksPerRank();
    double got = static_cast<double>(mc->stats().rowRefreshes);
    EXPECT_NEAR(got, expected, expected * 0.1);
    // No demand traffic: every refresh executed, none left to rot.
    EXPECT_LT(mc->table(0).size(), 20u);
}

TEST(HiraMc, DeadlinesLargelyMetWhenIdle)
{
    auto cc = makeConfig();
    cc.recordTrace = false;
    auto scheme = std::make_unique<HiraMc>(hiraCfg(4));
    HiraMc *mc = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    for (Cycle now = 1; now < 200000; ++now)
        ctrl.tick(now);
    ASSERT_GT(mc->stats().rowRefreshes, 100u);
    double miss_rate =
        static_cast<double>(mc->stats().deadlineMisses) /
        static_cast<double>(mc->stats().rowRefreshes);
    EXPECT_LT(miss_rate, 0.02);
}

TEST(HiraMc, AccessPairingHappensUnderDemand)
{
    auto cc = makeConfig();
    cc.recordTrace = false;
    auto scheme = std::make_unique<HiraMc>(hiraCfg(4));
    HiraMc *mc = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    Rng rng(3);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < 300000; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(0.15) && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(0, static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(4096)),
                                 tag++));
        }
    }
    EXPECT_GT(mc->stats().accessPaired, 20u);
    EXPECT_GT(ctrl.stats().hiraOps, 20u);
}

TEST(HiraMc, AblationDisablingAccessPairing)
{
    auto cc = makeConfig();
    cc.recordTrace = false;
    HiraMcConfig h = hiraCfg(4);
    h.enableAccessPairing = false;
    auto scheme = std::make_unique<HiraMc>(h);
    HiraMc *mc = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    Rng rng(3);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < 100000; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(0.15) && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(0, static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(4096)),
                                 tag++));
        }
    }
    EXPECT_EQ(mc->stats().accessPaired, 0u);
    EXPECT_GT(mc->stats().rowRefreshes, 100u);
}

TEST(HiraMc, PreventiveRcQueuesAndExecutes)
{
    auto cc = makeConfig();
    cc.recordTrace = false;
    HiraMcConfig h = hiraCfg(4);
    h.periodicViaHira = false; // Fig. 12 setup: REF periodic + HiRA PARA
    h.preventive.enabled = true;
    // pth = 0.3 with recursive sampling: preventive work stays well
    // inside the tFAW activation budget, so the queues must drain.
    h.preventive.pth = 0.3;
    auto scheme = std::make_unique<HiraMc>(h);
    HiraMc *mc = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    Rng rng(4);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < 150000; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(0.08) && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(0, static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(4096)),
                                 tag++));
        }
    }
    EXPECT_GT(mc->stats().preventiveGenerated, 100u);
    // All generated preventive refreshes eventually execute.
    EXPECT_NEAR(static_cast<double>(mc->stats().rowRefreshes),
                static_cast<double>(mc->stats().preventiveGenerated),
                static_cast<double>(mc->stats().preventiveGenerated) *
                        0.2 + 80.0);
    // The internal baseline REF engine still runs the periodic refresh.
    ASSERT_NE(mc->baselineStats(), nullptr);
    EXPECT_GT(mc->baselineStats()->refCommands, 10u);
}

TEST(HiraMc, PrFifoNeverExceedsDepthUnderLowNrhStress)
{
    // Low-NRH stress (pth near the Fig. 12 NRH=64 point): victims are
    // generated far faster than the queues drain, so the 4-entry
    // per-bank PR-FIFO must reject pushes. The FIFO may never exceed
    // its hardware depth, each rejected victim must be counted as a
    // drop, and no RefreshTable request may be scheduled for it.
    auto cc = makeConfig();
    cc.recordTrace = false;
    HiraMcConfig h = hiraCfg(4);
    h.periodicViaHira = false;
    h.preventive.enabled = true;
    h.preventive.pth = 0.86; // solvePth(64) territory
    auto scheme = std::make_unique<HiraMc>(h);
    HiraMc *mc = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    int banks = cc.geom.banksPerRank();
    Rng rng(11);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < 120000; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(0.3) && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(0, static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(4096)),
                                 tag++));
        }
        for (BankId b = 0; b < static_cast<BankId>(banks); ++b)
            ASSERT_LE(mc->prFifo(0).size(b), 4u) << "cycle " << now;
    }
    // The stress actually hit capacity, and the bookkeeping agrees:
    // every rejected push is exactly one counted drop.
    EXPECT_GT(mc->stats().preventiveDropped, 0u);
    EXPECT_EQ(mc->stats().preventiveDropped, mc->prFifo(0).overflows());
    EXPECT_GT(mc->stats().preventiveGenerated,
              mc->stats().preventiveDropped);
    // Dropped victims were never enqueued anywhere: everything that
    // did execute or is still queued traces back to accepted pushes.
    std::uint64_t queued = 0;
    for (BankId b = 0; b < static_cast<BankId>(banks); ++b)
        queued += mc->prFifo(0).size(b);
    EXPECT_EQ(mc->stats().preventiveGenerated -
                  mc->stats().preventiveDropped,
              mc->stats().rowRefreshes + queued);
}

TEST(HiraMc, TraceAuditsCleanWithDemandAndPreventive)
{
    // The full HiRA-MC command stream — demand, periodic HiRA ops,
    // preventive refreshes, pairing — must satisfy the DDR4 protocol
    // auditor (with HiRA-tag exemptions only).
    auto cc = makeConfig();
    HiraMcConfig h = hiraCfg(4);
    h.preventive.enabled = true;
    h.preventive.pth = 0.3;
    MemoryController ctrl(0, cc, std::make_unique<HiraMc>(h));
    Rng rng(6);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < 80000; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(0.12) && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(0, static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(4096)),
                                 tag++));
        }
    }
    ASSERT_GT(ctrl.stats().hiraOps, 0u);
    TimingChecker checker(cc.geom, cc.tp);
    auto violations = checker.check(ctrl.trace());
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violations, first: "
        << (violations.empty() ? "" : violations[0].message);
}

TEST(HiraMc, MultiRankTraceAuditsClean)
{
    auto cc = makeConfig();
    cc.geom.ranksPerChannel = 2;
    MemoryController ctrl(0, cc, std::make_unique<HiraMc>(hiraCfg(2)));
    Rng rng(7);
    std::uint64_t tag = 1;
    for (Cycle now = 1; now < 60000; ++now) {
        ctrl.tick(now);
        ctrl.completions().clear();
        if (rng.chance(0.1) && !ctrl.readQueueFull()) {
            ctrl.enqueue(readReq(static_cast<int>(rng.below(2)),
                                 static_cast<BankId>(rng.below(16)),
                                 static_cast<RowId>(rng.below(4096)),
                                 tag++));
        }
    }
    TimingChecker checker(cc.geom, cc.tp);
    auto violations = checker.check(ctrl.trace());
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations[0].message);
}

TEST(HiraMc, SlackZeroExecutesImmediately)
{
    auto cc = makeConfig();
    cc.recordTrace = false;
    auto scheme = std::make_unique<HiraMc>(hiraCfg(0));
    HiraMc *mc = scheme.get();
    MemoryController ctrl(0, cc, std::move(scheme));
    for (Cycle now = 1; now < 100000; ++now) {
        ctrl.tick(now);
        // With zero slack the table never accumulates entries.
        ASSERT_LT(mc->table(0).size(), 8u);
    }
    EXPECT_GT(mc->stats().rowRefreshes, 500u);
}
