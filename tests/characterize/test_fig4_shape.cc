/**
 * @file
 * Shape tests for the Fig. 4 experiment: the qualitative structure the
 * paper reports must hold across the (t1, t2) grid — not just at the
 * spot-checked corners the other coverage tests exercise.
 */

#include <gtest/gtest.h>

#include <map>

#include "characterize/coverage.hh"
#include "chip/modules.hh"

using namespace hira;

namespace {

/** One shared grid measurement (the experiment is deterministic). */
const std::map<std::pair<int, int>, CoverageResult> &
grid()
{
    static const auto *results = [] {
        auto *m =
            new std::map<std::pair<int, int>, CoverageResult>();
        DramChip chip(moduleByLabel("C0", 256, 1).config);
        std::vector<RowId> rows = spreadRows(chip.config(), 48);
        const double steps[4] = {1.5, 3.0, 4.5, 6.0};
        for (int i = 0; i < 4; ++i) {
            for (int j = 0; j < 4; ++j) {
                CoverageConfig cfg;
                cfg.t1 = steps[i];
                cfg.t2 = steps[j];
                cfg.rows = rows;
                cfg.allPatterns = false;
                (*m)[{i, j}] = measureCoverage(chip, cfg);
            }
        }
        return m;
    }();
    return *results;
}

} // namespace

TEST(Fig4Shape, ReliableT1ValuesHaveNoZeroCoverageRows)
{
    // Observation 1: for t1 in {3, 4.5} ns, every row pairs with at
    // least one other row for every tested t2.
    for (int i : {1, 2}) {
        for (int j = 0; j < 4; ++j) {
            EXPECT_DOUBLE_EQ(grid().at({i, j}).zeroFraction(), 0.0)
                << "t1 index " << i << " t2 index " << j;
        }
    }
}

TEST(Fig4Shape, ExtremeT1ValuesCollapseCoverage)
{
    // Observation 3: t1 = 1.5 or 6 ns leaves rows with zero coverage.
    for (int i : {0, 3}) {
        for (int j = 0; j < 4; ++j) {
            EXPECT_GT(grid().at({i, j}).zeroFraction(), 0.5)
                << "t1 index " << i << " t2 index " << j;
        }
    }
}

TEST(Fig4Shape, BestOperatingPointIsMidGrid)
{
    // Observation 2: the (3, 3) / (3, 4.5) points give the highest mean
    // coverage of the grid.
    double best = std::max(grid().at({1, 1}).mean(),
                           grid().at({1, 2}).mean());
    for (const auto &[key, result] : grid())
        EXPECT_LE(result.mean(), best + 1e-12);
    EXPECT_NEAR(best, 0.33, 0.08);
}

TEST(Fig4Shape, LargeT2ReducesCoverageMonotonically)
{
    // At reliable t1, t2 = 6 ns trims the per-row coverage relative to
    // the 3/4.5 ns mid-points (second activation window).
    for (int i : {1, 2}) {
        EXPECT_LT(grid().at({i, 3}).mean(), grid().at({i, 1}).mean());
        EXPECT_LE(grid().at({i, 0}).mean(),
                  grid().at({i, 1}).mean() + 1e-12);
    }
}

TEST(Fig4Shape, BoxesAreInternallyConsistent)
{
    for (const auto &[key, result] : grid()) {
        BoxStats b = result.box();
        EXPECT_LE(b.min, b.q1);
        EXPECT_LE(b.q1, b.median);
        EXPECT_LE(b.median, b.q3);
        EXPECT_LE(b.q3, b.max);
        EXPECT_GE(b.mean, b.min);
        EXPECT_LE(b.mean, b.max);
    }
}

TEST(Fig4Shape, T2SymmetricAcrossReliableT1)
{
    // Row-A timing windows pass for every row at both t1 = 3 and 4.5 ns,
    // so the coverage surface is identical across those two columns.
    for (int j = 0; j < 4; ++j) {
        EXPECT_DOUBLE_EQ(grid().at({1, j}).mean(),
                         grid().at({2, j}).mean());
    }
}
