/**
 * @file
 * Tests for the HiRA coverage experiment (Algorithm 1 / Fig. 4 / §4.4.1).
 */

#include <gtest/gtest.h>

#include "characterize/coverage.hh"
#include "chip/modules.hh"

using namespace hira;

namespace {

constexpr std::uint32_t kRows = 256; // tested rows per bank (scaled down)

DramChip
makeChip(const std::string &label = "C0")
{
    return DramChip(moduleByLabel(label, kRows, 2).config);
}

} // namespace

TEST(Coverage, PairWorksIsSymmetricallyReasonable)
{
    DramChip chip = makeChip();
    SoftMCHost host(chip);
    const auto &iso = chip.isolation();
    const auto &cfg = chip.config();
    int agree = 0, total = 0;
    for (RowId a = 2; a < kRows; a += 32) {
        for (RowId b = 10; b < kRows; b += 32) {
            if (a == b)
                continue;
            bool works = hiraPairWorks(host, 0, a, b, 3.0, 3.0);
            bool isolated = iso.isolated(cfg.subarrayOf(a),
                                         cfg.subarrayOf(b));
            agree += works == isolated;
            ++total;
        }
    }
    // At t1 = t2 = 3 ns the timing windows pass for every row, so pair
    // success must coincide exactly with design isolation.
    EXPECT_EQ(agree, total);
}

TEST(Coverage, SameRowNeverPairs)
{
    DramChip chip = makeChip();
    SoftMCHost host(chip);
    EXPECT_FALSE(hiraPairWorks(host, 0, 5, 5, 3.0, 3.0));
}

TEST(Coverage, SpreadRowsCoverAllSubarrays)
{
    ChipConfig cfg = moduleByLabel("C0", 1024, 2).config;
    auto rows = spreadRows(cfg, 128);
    EXPECT_EQ(rows.size(), 128u);
    std::set<SubarrayId> subs;
    for (RowId r : rows)
        subs.insert(cfg.subarrayOf(r));
    EXPECT_GT(subs.size(), 100u);
    for (std::size_t i = 1; i < rows.size(); ++i)
        EXPECT_GT(rows[i], rows[i - 1]);
}

TEST(Coverage, ReferencePointMatchesPaperMean)
{
    // At the paper's reliable operating point (t1 = t2 = 3 ns) module C0
    // averages ~35 % coverage (Table 4) and no row has zero coverage.
    DramChip chip = makeChip("C0");
    CoverageConfig cfg;
    cfg.rows = spreadRows(chip.config(), 96);
    CoverageResult r = measureCoverage(chip, cfg);
    EXPECT_NEAR(r.mean(), 0.353, 0.06);
    EXPECT_DOUBLE_EQ(r.zeroFraction(), 0.0);
    EXPECT_GT(r.box().min, 0.15);
}

TEST(Coverage, TinyT1KillsCoverage)
{
    DramChip chip = makeChip("C0");
    CoverageConfig cfg;
    cfg.t1 = 1.5;
    cfg.rows = spreadRows(chip.config(), 64);
    cfg.allPatterns = false; // cheap variant for the sweep tests
    CoverageResult r = measureCoverage(chip, cfg);
    // Most rows cannot be paired at all (Fig. 4, observation 3).
    EXPECT_GT(r.zeroFraction(), 0.8);
    EXPECT_LT(r.mean(), 0.1);
}

TEST(Coverage, HugeT1KillsCoverage)
{
    DramChip chip = makeChip("C0");
    CoverageConfig cfg;
    cfg.t1 = 6.0;
    cfg.rows = spreadRows(chip.config(), 64);
    cfg.allPatterns = false;
    CoverageResult r = measureCoverage(chip, cfg);
    EXPECT_GT(r.zeroFraction(), 0.5);
}

TEST(Coverage, LargeT2ReducesButDoesNotZeroCoverage)
{
    DramChip chip = makeChip("C0");
    CoverageConfig base, late;
    base.rows = late.rows = spreadRows(chip.config(), 64);
    base.allPatterns = late.allPatterns = false;
    late.t2 = 6.0;
    double m_base = measureCoverage(chip, base).mean();
    CoverageResult r_late = measureCoverage(chip, late);
    EXPECT_LT(r_late.mean(), m_base);
    // Observation 1: with t1 = 3 ns no row drops to zero for any t2.
    EXPECT_DOUBLE_EQ(r_late.zeroFraction(), 0.0);
}

TEST(Coverage, IdenticalAcrossBanks)
{
    // §4.4.1: the pairs HiRA can activate are identical across banks.
    DramChip chip = makeChip("B0");
    SoftMCHost host(chip);
    for (RowId a = 2; a < kRows; a += 24) {
        for (RowId b = 14; b < kRows; b += 40) {
            if (a == b)
                continue;
            bool bank0 = hiraPairWorks(host, 0, a, b, 3.0, 3.0);
            bool bank1 = hiraPairWorks(host, 1, a, b, 3.0, 3.0);
            EXPECT_EQ(bank0, bank1) << "pair " << a << "," << b;
        }
    }
}

TEST(Coverage, FindHiraPartnerReturnsWorkingRow)
{
    DramChip chip = makeChip("C0");
    SoftMCHost host(chip);
    RowId partner = findHiraPartner(host, 0, 33, 3.0, 3.0);
    ASSERT_NE(partner, kNoRow);
    EXPECT_TRUE(hiraPairWorks(host, 0, 33, partner, 3.0, 3.0));
}

TEST(Coverage, ModuleMeansOrderedLikeTable4)
{
    // A0 has the lowest coverage, C1 the highest (Table 4).
    DramChip a0 = makeChip("A0");
    DramChip c1 = makeChip("C1");
    CoverageConfig cfg;
    cfg.allPatterns = false;
    cfg.rows = spreadRows(a0.config(), 64);
    double cov_a0 = measureCoverage(a0, cfg).mean();
    double cov_c1 = measureCoverage(c1, cfg).mean();
    EXPECT_LT(cov_a0, cov_c1);
    EXPECT_NEAR(cov_a0, 0.25, 0.06);
    EXPECT_NEAR(cov_c1, 0.384, 0.08);
}

TEST(Coverage, IgnoringVendorLooksFullCoverage)
{
    // On chips that ignore the violating sequence Algorithm 1 sees no
    // corruption anywhere: apparent coverage ~100 % — the false positive
    // §4.3 unmasks.
    DramChip chip(nonHiraVendorConfig("micron-like", kRows, 1));
    CoverageConfig cfg;
    cfg.rows = spreadRows(chip.config(), 32);
    cfg.allPatterns = false;
    CoverageResult r = measureCoverage(chip, cfg);
    EXPECT_GT(r.mean(), 0.95);
}
