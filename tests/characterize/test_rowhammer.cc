/**
 * @file
 * Tests for the RowHammer-threshold verification experiment
 * (Algorithm 2, §4.3, §4.4.2).
 */

#include <gtest/gtest.h>

#include "characterize/coverage.hh"
#include "characterize/rowhammer.hh"
#include "chip/modules.hh"

using namespace hira;

namespace {

constexpr std::uint32_t kRows = 256;

DramChip
makeChip(const std::string &label = "C0")
{
    return DramChip(moduleByLabel(label, kRows, 2).config);
}

} // namespace

TEST(RowHammer, TestOnceFlipsAtHighCount)
{
    DramChip chip = makeChip();
    SoftMCHost host(chip);
    RhConfig cfg;
    RowId victim = 100;
    RowId dummy = findHiraPartner(host, 0, victim, 3.0, 3.0);
    ASSERT_NE(dummy, kNoRow);
    EXPECT_TRUE(rhTestOnce(host, cfg, victim, dummy, 200000, false));
    EXPECT_FALSE(rhTestOnce(host, cfg, victim, dummy, 8000, false));
}

TEST(RowHammer, ThresholdNearBase)
{
    DramChip chip = makeChip();
    SoftMCHost host(chip);
    RhConfig cfg;
    RowId victim = 100;
    RowId dummy = findHiraPartner(host, 0, victim, 3.0, 3.0);
    std::uint64_t thr = measureThreshold(host, cfg, victim, dummy, false);
    double base = chip.variation().nrhBase(victim);
    EXPECT_NEAR(static_cast<double>(thr), base, base * 0.25);
}

TEST(RowHammer, HiraRoughlyDoublesThreshold)
{
    DramChip chip = makeChip();
    SoftMCHost host(chip);
    RhConfig cfg;
    RowId victim = 100;
    RowId dummy = findHiraPartner(host, 0, victim, 3.0, 3.0);
    ASSERT_NE(dummy, kNoRow);
    std::uint64_t without = measureThreshold(host, cfg, victim, dummy,
                                             false);
    std::uint64_t with = measureThreshold(host, cfg, victim, dummy, true);
    double norm = static_cast<double>(with) / static_cast<double>(without);
    EXPECT_GT(norm, 1.4);
    EXPECT_LT(norm, 2.7);
}

TEST(RowHammer, VictimRowsAvoidEdges)
{
    ChipConfig cfg = moduleByLabel("C0", kRows, 1).config;
    auto rows = victimRows(cfg, 64);
    for (RowId r : rows) {
        EXPECT_GT(r, 0u);
        EXPECT_LT(r + 1, cfg.rowsPerBank);
    }
}

TEST(RowHammer, NormalizedDistributionMatchesSection43)
{
    // §4.3: ~1.9x mean, >1.7x for the vast majority of rows; Fig. 5a
    // absolute thresholds average ~27.2K without HiRA.
    DramChip chip = makeChip("C0");
    auto victims = victimRows(chip.config(), 24);
    NormalizedNrhResult r = measureNormalizedNrh(chip, 0, victims);
    EXPECT_NEAR(r.normalized.mean(), 1.9, 0.25);
    EXPECT_GT(r.normalized.fractionAbove(1.5), 0.85);
    EXPECT_NEAR(r.absoluteWithout.mean(), 27200.0, 8000.0);
    EXPECT_GT(r.absoluteWith.mean(), r.absoluteWithout.mean() * 1.5);
}

TEST(RowHammer, IgnoringVendorShowsNoThresholdChange)
{
    // §4.3's whole purpose: on chips that ignore HiRA's second ACT the
    // victim is not refreshed, so the threshold does not move.
    DramChip chip(nonHiraVendorConfig("samsung-like", kRows, 1));
    auto victims = victimRows(chip.config(), 8);
    NormalizedNrhResult r = measureNormalizedNrh(chip, 0, victims);
    EXPECT_NEAR(r.normalized.mean(), 1.0, 0.15);
}

TEST(RowHammer, BankVariationWithinFig6Bounds)
{
    // §4.4.2 / Fig. 6: per-bank mean normalized NRH in ~[1.6, 2.2] and
    // never below 1.56x.
    DramChip chip = makeChip("B0");
    auto victims = victimRows(chip.config(), 10);
    for (BankId bank : {BankId(0), BankId(1)}) {
        NormalizedNrhResult r = measureNormalizedNrh(chip, bank, victims);
        EXPECT_GT(r.normalized.mean(), 1.6) << "bank " << bank;
        EXPECT_LT(r.normalized.mean(), 2.2) << "bank " << bank;
    }
}
