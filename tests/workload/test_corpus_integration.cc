/**
 * @file
 * Integration tests for corpus-backed sweeps: "corpus:" mixes run
 * bitwise-deterministically under SweepRunner::runPoints regardless of
 * thread count, and manifest alone-IPC priors reproduce the
 * measured-alone sweep bitwise while suppressing every IPC-alone
 * reference run.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "sim/experiment.hh"
#include "sim/trace.hh"
#include "sim/workloads.hh"
#include "workload/corpus.hh"
#include "workload/file_trace.hh"

using namespace hira;

namespace {

class CorpusIntegrationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("HIRA_CORPUS");
        Corpus::setActive(nullptr);
        std::string templ = "/tmp/hira_corpus_integ.XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();

        // A 4-trace corpus spanning the intensity bins, both formats.
        const std::vector<std::pair<std::string, TraceFormat>> traces = {
            {"mcf-like", TraceFormat::Text},
            {"libquantum-like", TraceFormat::Binary},
            {"gcc-like", TraceFormat::Text},
            {"h264-like", TraceFormat::Binary},
        };
        for (const auto &t : traces) {
            CorpusEntry e;
            e.name = t.first;
            e.format = t.second;
            e.file = e.name + (t.second == TraceFormat::Binary
                                   ? ".bin"
                                   : ".trace");
            e.instructions = 4000;
            const BenchmarkProfile &prof = benchmarkByName(e.name);
            TraceGen gen(prof, hashString(e.name), 0, 1 << 26);
            dumpTrace(gen, dir + "/" + e.file, e.format, e.instructions);
            files.push_back(dir + "/" + e.file);
            e.mpki = classifyApki(1000.0 * prof.memPerInstr);
            entries.push_back(std::move(e));
        }
        writeManifest(dir, entries, /*also_json=*/false);
        files.push_back(dir + "/manifest.tsv");
    }

    void
    TearDown() override
    {
        Corpus::setActive(nullptr);
        for (const std::string &f : files)
            ::unlink(f.c_str());
        ::rmdir(dir.c_str());
    }

    void
    activate()
    {
        Corpus::setActive(
            std::make_shared<const Corpus>(Corpus::load(dir)));
    }

    static BenchKnobs
    tinyKnobs(int threads)
    {
        BenchKnobs k;
        k.mixes = 4;
        k.cycles = 10000;
        k.warmup = 2000;
        k.rows = 64;
        k.threads = threads;
        k.cores = 4;
        return k;
    }

    static std::vector<SweepPoint>
    smallPlan()
    {
        std::vector<SweepPoint> plan;
        for (int ch : {1, 2}) {
            SweepPoint base;
            base.geom.channels = ch;
            base.scheme.kind = SchemeKind::Baseline;
            plan.push_back(base);
            SweepPoint hira;
            hira.geom.channels = ch;
            hira.scheme.kind = SchemeKind::HiraMc;
            hira.scheme.slackN = 2;
            plan.push_back(hira);
        }
        return plan;
    }

    std::string dir;
    std::vector<std::string> files;
    std::vector<CorpusEntry> entries;
};

} // namespace

TEST_F(CorpusIntegrationTest, RunPointsBitwiseIdenticalOneVsFourThreads)
{
    activate();
    auto corpus = Corpus::active();
    ASSERT_NE(corpus, nullptr);
    std::vector<WorkloadMix> mixes = makeCorpusMixes(4, 4, *corpus);

    SweepRunner serial(tinyKnobs(1), mixes);
    SweepRunner pooled(tinyKnobs(4), mixes);
    std::vector<SweepPoint> plan = smallPlan();
    std::vector<PointResult> a = serial.runPoints(plan);
    std::vector<PointResult> b = pooled.runPoints(plan);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // EXPECT_EQ, not NEAR: corpus replay and the reduction order
        // must both be exact, so any divergence is a real leak.
        EXPECT_EQ(a[i].meanWs, b[i].meanWs) << "point " << i;
        EXPECT_EQ(a[i].refresh.rowRefreshes, b[i].refresh.rowRefreshes)
            << "point " << i;
        EXPECT_EQ(a[i].refresh.preventiveDropped,
                  b[i].refresh.preventiveDropped)
            << "point " << i;
    }
    EXPECT_GT(a[0].meanWs, 0.0);
}

TEST_F(CorpusIntegrationTest, PriorsReproduceMeasuredSweepWithoutAloneRuns)
{
    // Pass 1: manifest without priors — the runner measures every
    // (trace, geometry) reference by simulation.
    activate();
    auto corpus = Corpus::active();
    std::vector<WorkloadMix> mixes = makeCorpusMixes(4, 4, *corpus);
    std::vector<SweepPoint> plan = smallPlan();

    SweepRunner measured(tinyKnobs(2), mixes);
    std::vector<PointResult> res_measured = measured.runPoints(plan);
    std::set<std::string> used;
    for (const WorkloadMix &mix : mixes)
        for (const std::string &spec : mix)
            used.insert(spec);
    // One alone run per (distinct trace, distinct geometry).
    EXPECT_EQ(measured.aloneRunCount(), 2 * used.size());

    // Pass 2: the measured alone IPCs become manifest priors. The
    // prior is the reference (default-geometry) measurement and is
    // applied to every geometry of the sweep.
    GeomSpec ref;
    for (CorpusEntry &e : entries) {
        if (used.count(e.spec()) != 0)
            e.aloneIpc = measured.aloneIpc(e.spec(), ref);
    }
    writeManifest(dir, entries, /*also_json=*/false);
    activate();

    SweepRunner primed(tinyKnobs(2), mixes);
    std::vector<PointResult> res_primed = primed.runPoints(plan);
    EXPECT_EQ(primed.aloneRunCount(), 0u);
    ASSERT_EQ(res_primed.size(), res_measured.size());
    // The 1-channel points use the reference geometry, so the prior
    // equals the measurement bitwise and so do the results.
    for (std::size_t i = 0; i < res_primed.size(); ++i) {
        if (plan[i].geom.key() == ref.key()) {
            EXPECT_EQ(res_primed[i].meanWs, res_measured[i].meanWs)
                << "point " << i;
        } else {
            // Non-reference geometries substitute the reference prior
            // for a per-geometry measurement: close, not identical.
            EXPECT_NEAR(res_primed[i].meanWs, res_measured[i].meanWs,
                        0.35 * res_measured[i].meanWs)
                << "point " << i;
        }
        EXPECT_GT(res_primed[i].meanWs, 0.0);
    }

    // meanWs on the reference geometry also rides on the priors.
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    SweepRunner fresh(tinyKnobs(2), mixes);
    EXPECT_EQ(fresh.meanWs(ref, base), res_primed[0].meanWs);
    EXPECT_EQ(fresh.aloneRunCount(), 0u);
}

TEST_F(CorpusIntegrationTest, MixedCorpusAndSyntheticMixesWork)
{
    // Corpus specs, file specs, and pool names can share a mix.
    activate();
    std::vector<WorkloadMix> mixes = {
        {"corpus:mcf-like", "gcc-like", "corpus:h264-like",
         "file:" + dir + "/gcc-like.trace"},
    };
    SweepRunner runner(tinyKnobs(2), mixes);
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    double ws = runner.meanWs(g, s);
    EXPECT_GT(ws, 0.0);
    EXPECT_EQ(runner.aloneRunCount(), 4u);
}
