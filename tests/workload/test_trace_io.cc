/**
 * @file
 * Unit tests for the workload ingestion subsystem: text/binary trace
 * round-trips, parse-error diagnostics, looping semantics, and registry
 * spec resolution.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "sim/trace.hh"
#include "sim/workloads.hh"
#include "workload/file_trace.hh"
#include "workload/registry.hh"

using namespace hira;

namespace {

/** Per-suite scratch directory, removed on teardown. */
class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string templ = "/tmp/hira_trace_io.XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();
    }

    void
    TearDown() override
    {
        for (const std::string &f : files)
            ::unlink(f.c_str());
        ::rmdir(dir.c_str());
    }

    std::string
    path(const std::string &name)
    {
        std::string p = dir + "/" + name;
        files.push_back(p);
        return p;
    }

    std::string
    writeFile(const std::string &name, const std::string &content)
    {
        std::string p = path(name);
        std::ofstream out(p, std::ios::binary);
        out << content;
        return p;
    }

    std::string dir;
    std::vector<std::string> files;
};

/** Pull @p n instructions from a source. */
std::vector<TraceInst>
drain(TraceSource &src, int n)
{
    std::vector<TraceInst> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        out.push_back(src.next());
    return out;
}

void
expectSameStream(const std::vector<TraceInst> &a,
                 const std::vector<TraceInst> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].isMem, b[i].isMem) << "instruction " << i;
        ASSERT_EQ(a[i].isWrite, b[i].isWrite) << "instruction " << i;
        ASSERT_EQ(a[i].addr, b[i].addr) << "instruction " << i;
    }
}

constexpr Addr kSlice = 1 << 26;

} // namespace

TEST_F(TraceIoTest, TextRoundTripIsExact)
{
    const auto &prof = benchmarkByName("gcc-like");
    std::string p = path("gcc.trace");
    {
        TraceGen gen(prof, 99, 0, kSlice);
        dumpTrace(gen, p, TraceFormat::Text, 5000);
    }
    TraceGen ref(prof, 99, 0, kSlice);
    FileTraceSource replay(p, 0, kSlice);
    expectSameStream(drain(ref, 5000), drain(replay, 5000));
    EXPECT_FALSE(replay.binary());
}

TEST_F(TraceIoTest, BinaryRoundTripIsExact)
{
    const auto &prof = benchmarkByName("mcf-like");
    std::string p = path("mcf.bin");
    {
        TraceGen gen(prof, 7, 0, kSlice);
        dumpTrace(gen, p, TraceFormat::Binary, 5000);
    }
    TraceGen ref(prof, 7, 0, kSlice);
    FileTraceSource replay(p, 0, kSlice);
    expectSameStream(drain(ref, 5000), drain(replay, 5000));
    EXPECT_TRUE(replay.binary());
}

TEST_F(TraceIoTest, RecorderRebasesIntoReplaySlice)
{
    // Record from a core based at 4 GB, replay into a slice at 0: the
    // stream must be identical modulo the base shift.
    const auto &prof = benchmarkByName("libquantum-like");
    Addr base = 4ull << 30;
    std::string p = path("rebase.trace");
    {
        TraceGen gen(prof, 3, base, kSlice);
        dumpTrace(gen, p, TraceFormat::Text, 3000);
    }
    TraceGen ref(prof, 3, base, kSlice);
    FileTraceSource replay(p, 0, kSlice);
    auto a = drain(ref, 3000), b = drain(replay, 3000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].isMem, b[i].isMem);
        if (a[i].isMem) {
            ASSERT_EQ(a[i].addr - base, b[i].addr) << "instruction " << i;
        }
    }
}

TEST_F(TraceIoTest, TextAcceptsCommentsBlanksAndPrefixedHex)
{
    std::string p = writeFile("hand.trace",
                              "# a hand-written trace\n"
                              "\n"
                              "2 R 0x1000\n"
                              "0 W 40\r\n"
                              "  1   N   0\n");
    FileTraceSource src(p, 0, kSlice, {/*loop=*/false});
    auto insts = drain(src, 6);
    EXPECT_FALSE(insts[0].isMem);
    EXPECT_FALSE(insts[1].isMem);
    EXPECT_TRUE(insts[2].isMem);
    EXPECT_FALSE(insts[2].isWrite);
    EXPECT_EQ(insts[2].addr, 0x1000u);
    EXPECT_TRUE(insts[3].isMem);
    EXPECT_TRUE(insts[3].isWrite);
    EXPECT_EQ(insts[3].addr, 0x40u);
    EXPECT_FALSE(insts[4].isMem); // the trailing N run
    EXPECT_FALSE(insts[5].isMem); // exhausted -> idle
    EXPECT_TRUE(src.exhausted());
}

TEST_F(TraceIoTest, AddressesAlignAndWrapIntoSlice)
{
    // 0x1234567 is neither line-aligned nor within a 64 KB slice.
    std::string p = writeFile("wrap.trace", "0 R 1234567\n");
    Addr base = 1 << 20, slice = 1 << 16;
    FileTraceSource src(p, base, slice);
    TraceInst inst = src.next();
    EXPECT_TRUE(inst.isMem);
    EXPECT_EQ(inst.addr % 64, 0u);
    EXPECT_GE(inst.addr, base);
    EXPECT_LT(inst.addr, base + slice);
    EXPECT_EQ(inst.addr, base + ((0x1234567ull / 64) % (slice / 64)) * 64);
}

TEST_F(TraceIoTest, LoopingRepeatsTheStream)
{
    std::string p = writeFile("loop.trace", "1 R 40\n0 W 80\n");
    FileTraceSource src(p, 0, kSlice); // loop=true default
    // One pass is 3 instructions; three passes must repeat exactly.
    auto insts = drain(src, 9);
    for (int pass = 1; pass < 3; ++pass) {
        for (int i = 0; i < 3; ++i) {
            EXPECT_EQ(insts[static_cast<std::size_t>(i)].isMem,
                      insts[static_cast<std::size_t>(pass * 3 + i)].isMem);
            EXPECT_EQ(insts[static_cast<std::size_t>(i)].addr,
                      insts[static_cast<std::size_t>(pass * 3 + i)].addr);
        }
    }
    EXPECT_FALSE(src.exhausted());
    EXPECT_EQ(src.recordsRead(), 6u);
}

TEST_F(TraceIoTest, NonLoopingSourceExhausts)
{
    std::string p = writeFile("once.trace", "0 R 40\n");
    FileTraceSource src(p, 0, kSlice, {/*loop=*/false});
    EXPECT_TRUE(src.next().isMem);
    EXPECT_FALSE(src.exhausted());
    EXPECT_FALSE(src.next().isMem); // ran dry: idles on non-memory
    EXPECT_TRUE(src.exhausted());
    EXPECT_FALSE(src.next().isMem);
}

TEST_F(TraceIoTest, MissingFileIsFatal)
{
    EXPECT_EXIT(FileTraceSource(dir + "/nope.trace", 0, kSlice),
                ::testing::ExitedWithCode(1), "cannot open trace file");
}

TEST_F(TraceIoTest, MalformedTextDiagnosesFileAndLine)
{
    std::string p = writeFile("bad.trace", "0 R 40\nbogus line\n");
    EXPECT_EXIT(
        {
            FileTraceSource src(p, 0, kSlice);
            drain(src, 10);
        },
        ::testing::ExitedWithCode(1), "bad.trace:2:.*non-memory count");
}

TEST_F(TraceIoTest, BadAccessKindDiagnosesFileAndLine)
{
    std::string p = writeFile("kind.trace", "0 X 40\n");
    EXPECT_EXIT(
        {
            FileTraceSource src(p, 0, kSlice);
            drain(src, 10);
        },
        ::testing::ExitedWithCode(1), "kind.trace:1:.*access kind");
}

TEST_F(TraceIoTest, TrailingGarbageDiagnosesFileAndLine)
{
    std::string p = writeFile("junk.trace", "0 R 40 extra\n");
    EXPECT_EXIT(
        {
            FileTraceSource src(p, 0, kSlice);
            drain(src, 10);
        },
        ::testing::ExitedWithCode(1), "junk.trace:1:.*trailing garbage");
}

TEST_F(TraceIoTest, EmptyTraceIsFatal)
{
    std::string p = writeFile("empty.trace", "# only a comment\n");
    EXPECT_EXIT(
        {
            FileTraceSource src(p, 0, kSlice);
            drain(src, 1);
        },
        ::testing::ExitedWithCode(1), "no records");
}

TEST_F(TraceIoTest, TruncatedBinaryIsFatal)
{
    // Valid magic + one whole record + 5 stray bytes.
    std::string p = path("trunc.bin");
    {
        BenchmarkProfile prof = benchmarkByName("mcf-like");
        prof.memPerInstr = 1.0;
        TraceGen gen(prof, 1, 0, kSlice);
        dumpTrace(gen, p, TraceFormat::Binary, 1);
    }
    std::ofstream out(p, std::ios::binary | std::ios::app);
    out.write("extra", 5);
    out.close();
    EXPECT_EXIT(
        {
            FileTraceSource src(p, 0, kSlice);
            drain(src, 10);
        },
        ::testing::ExitedWithCode(1), "truncated record");
}

TEST_F(TraceIoTest, BinaryWithBadKindIsFatal)
{
    std::string magic = "HIRATRC1";
    std::string rec(13, '\0');
    rec[4] = 9; // invalid kind
    std::string p = writeFile("badkind.bin", magic + rec);
    EXPECT_EXIT(
        {
            FileTraceSource src(p, 0, kSlice);
            drain(src, 10);
        },
        ::testing::ExitedWithCode(1), "invalid access kind");
}

TEST_F(TraceIoTest, RegistryResolvesSyntheticNames)
{
    auto src = WorkloadRegistry::global().makeSource("gcc-like", 42, 0,
                                                     kSlice);
    TraceGen ref(benchmarkByName("gcc-like"), 42, 0, kSlice);
    expectSameStream(drain(ref, 2000), drain(*src, 2000));
}

TEST_F(TraceIoTest, RegistryResolvesFileSpecs)
{
    const auto &prof = benchmarkByName("h264-like");
    std::string p = path("reg.trace");
    {
        TraceGen gen(prof, 5, 0, kSlice);
        dumpTrace(gen, p, TraceFormat::Text, 1000);
    }
    auto src = WorkloadRegistry::global().makeSource("file:" + p, 0, 0,
                                                     kSlice);
    TraceGen ref(prof, 5, 0, kSlice);
    expectSameStream(drain(ref, 1000), drain(*src, 1000));
}

TEST_F(TraceIoTest, RegistryFileOnceOptionDisablesLooping)
{
    std::string p = writeFile("one.trace", "0 R 40\n");
    auto looping =
        WorkloadRegistry::global().makeSource("file:" + p, 0, 0, kSlice);
    auto once = WorkloadRegistry::global().makeSource("file:" + p + "?once",
                                                      0, 0, kSlice);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(looping->next().isMem);
        EXPECT_EQ(once->next().isMem, i == 0);
    }
    EXPECT_FALSE(looping->exhausted());
    EXPECT_TRUE(once->exhausted());
}

TEST_F(TraceIoTest, RegistryKnowsSpecsWithoutSideEffects)
{
    const WorkloadRegistry &reg = WorkloadRegistry::global();
    EXPECT_TRUE(reg.known("mcf-like"));
    EXPECT_TRUE(reg.known("file:/does/not/exist"));
    EXPECT_TRUE(reg.known("corpus:not-loaded"));
    EXPECT_FALSE(reg.known("no-such-bench"));
    ASSERT_EQ(reg.schemes().size(), 2u);
    EXPECT_EQ(reg.schemes()[0], "corpus");
    EXPECT_EQ(reg.schemes()[1], "file");
}

TEST_F(TraceIoTest, UnknownNameListsThePool)
{
    EXPECT_EXIT(WorkloadRegistry::global().makeSource("no-such-bench", 0, 0,
                                                      kSlice),
                ::testing::ExitedWithCode(1),
                "unknown benchmark profile.*mcf-like.*file:<path>");
}

TEST_F(TraceIoTest, UnknownSchemeIsFatal)
{
    EXPECT_EXIT(WorkloadRegistry::global().makeSource("http://x", 0, 0,
                                                      kSlice),
                ::testing::ExitedWithCode(1), "unknown workload scheme");
}

TEST_F(TraceIoTest, RecorderSplitsLongComputeRuns)
{
    // A synthetic source that never accesses memory: the recorder must
    // still produce a replayable file via trailing N records.
    BenchmarkProfile prof = benchmarkByName("h264-like");
    prof.memPerInstr = 0.0;
    std::string p = path("compute.trace");
    {
        TraceGen gen(prof, 1, 0, kSlice);
        dumpTrace(gen, p, TraceFormat::Text, 500);
    }
    FileTraceSource replay(p, 0, kSlice, {/*loop=*/false});
    auto insts = drain(replay, 500);
    for (const TraceInst &inst : insts)
        EXPECT_FALSE(inst.isMem);
    EXPECT_FALSE(replay.exhausted());
    replay.next();
    EXPECT_TRUE(replay.exhausted());
}
