/**
 * @file
 * Unit tests for the trace-corpus manifest layer
 * (src/workload/corpus.hh): TSV and JSON parsing with diagnostics,
 * validation (missing files, duplicates), "corpus:" spec resolution,
 * intensity-binned mix building, and alone-IPC prior lookup.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "sim/trace.hh"
#include "sim/workloads.hh"
#include "workload/corpus.hh"
#include "workload/registry.hh"

using namespace hira;

namespace {

constexpr Addr kSlice = 1 << 26;

/** Scratch corpus directory, cleaned up (and deactivated) on teardown. */
class CorpusTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The active corpus and HIRA_CORPUS must not leak between
        // tests (or in from the environment).
        ::unsetenv("HIRA_CORPUS");
        Corpus::setActive(nullptr);
        std::string templ = "/tmp/hira_corpus.XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();
    }

    void
    TearDown() override
    {
        Corpus::setActive(nullptr);
        for (const std::string &f : files)
            ::unlink(f.c_str());
        ::rmdir(dir.c_str());
    }

    std::string
    path(const std::string &name)
    {
        std::string p = dir + "/" + name;
        files.push_back(p);
        return p;
    }

    std::string
    writeFile(const std::string &name, const std::string &content)
    {
        std::string p = path(name);
        std::ofstream out(p, std::ios::binary);
        out << content;
        return p;
    }

    /** Record a short synthetic trace as corpus file @p name. */
    void
    writeTrace(const std::string &name, TraceFormat fmt,
               const std::string &profile = "gcc-like",
               std::uint64_t seed = 42)
    {
        TraceGen gen(benchmarkByName(profile), seed, 0, kSlice);
        dumpTrace(gen, path(name), fmt, 2000);
    }

    std::string dir;
    std::vector<std::string> files;
};

} // namespace

TEST_F(CorpusTest, TsvManifestRoundTrips)
{
    writeTrace("a.trace", TraceFormat::Text);
    writeTrace("b.bin", TraceFormat::Binary);
    std::vector<CorpusEntry> entries(2);
    entries[0].name = "alpha";
    entries[0].file = "a.trace";
    entries[0].format = TraceFormat::Text;
    entries[0].instructions = 2000;
    entries[0].mpki = MpkiClass::High;
    entries[0].aloneIpc = 0.123456789012345678; // must survive exactly
    entries[1].name = "beta";
    entries[1].file = "b.bin";
    entries[1].format = TraceFormat::Binary;
    entries[1].instructions = 2000;
    entries[1].mpki = MpkiClass::Low;
    writeManifest(dir, entries, /*also_json=*/false);
    path("manifest.tsv");

    Corpus c = Corpus::load(dir);
    ASSERT_EQ(c.size(), 2u);
    const CorpusEntry &a = c.at("alpha");
    EXPECT_EQ(a.file, "a.trace");
    EXPECT_EQ(a.path, dir + "/a.trace");
    EXPECT_EQ(a.format, TraceFormat::Text);
    EXPECT_EQ(a.instructions, 2000u);
    EXPECT_EQ(a.mpki, MpkiClass::High);
    EXPECT_TRUE(a.hasAloneIpc());
    EXPECT_EQ(a.aloneIpc, entries[0].aloneIpc); // bitwise round trip
    const CorpusEntry &b = c.at("beta");
    EXPECT_EQ(b.format, TraceFormat::Binary);
    EXPECT_FALSE(b.hasAloneIpc());
    EXPECT_EQ(b.spec(), "corpus:beta");
}

TEST_F(CorpusTest, JsonManifestRoundTrips)
{
    writeTrace("a.trace", TraceFormat::Text);
    writeTrace("b.bin", TraceFormat::Binary);
    std::vector<CorpusEntry> entries(2);
    entries[0].name = "alpha";
    entries[0].file = "a.trace";
    entries[0].format = TraceFormat::Text;
    entries[0].instructions = 2000;
    entries[0].mpki = MpkiClass::Medium;
    entries[0].aloneIpc = 1.0000000000000002; // 1 + 1 ulp
    entries[1].name = "beta";
    entries[1].file = "b.bin";
    entries[1].format = TraceFormat::Binary;
    entries[1].instructions = 2000;
    entries[1].mpki = MpkiClass::Low;
    writeManifest(dir, entries, /*also_json=*/true);
    // Remove the TSV so the JSON flavor is what gets parsed.
    ::unlink((dir + "/manifest.tsv").c_str());
    path("manifest.json");

    Corpus c = Corpus::load(dir);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c.at("alpha").mpki, MpkiClass::Medium);
    EXPECT_EQ(c.at("alpha").aloneIpc, entries[0].aloneIpc);
    EXPECT_EQ(c.at("alpha").instructions, 2000u);
    EXPECT_FALSE(c.at("beta").hasAloneIpc());
    EXPECT_EQ(c.at("beta").format, TraceFormat::Binary);
}

TEST_F(CorpusTest, HandWrittenManifestsParse)
{
    writeTrace("t.trace", TraceFormat::Text);
    writeFile("manifest.tsv",
              "# comment line\n"
              "\n"
              "mcf t.trace text 1000 H 0.5\n"
              "gcc t.trace text 1000 m -\n");
    Corpus c = Corpus::load(dir);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c.at("mcf").aloneIpc, 0.5);
    EXPECT_EQ(c.at("gcc").mpki, MpkiClass::Medium);

    ::unlink((dir + "/manifest.tsv").c_str());
    writeFile("manifest.json",
              "{\"version\": 1, \"traces\": [\n"
              "  {\"name\": \"lbm\", \"file\": \"t.trace\",\n"
              "   \"class\": \"L\", \"alone_ipc\": null}\n"
              "]}\n");
    Corpus j = Corpus::load(dir);
    ASSERT_EQ(j.size(), 1u);
    EXPECT_EQ(j.at("lbm").mpki, MpkiClass::Low);
    EXPECT_FALSE(j.at("lbm").hasAloneIpc());
    EXPECT_EQ(j.at("lbm").format, TraceFormat::Text); // default
}

TEST_F(CorpusTest, MissingManifestIsFatal)
{
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "neither manifest.tsv nor manifest.json");
}

TEST_F(CorpusTest, MalformedTsvDiagnosesFileAndLine)
{
    writeTrace("t.trace", TraceFormat::Text);
    writeFile("manifest.tsv", "ok t.trace text 1000 H -\nbad t.trace\n");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "manifest.tsv:2: expected 6 columns");
}

TEST_F(CorpusTest, BadTsvFieldsAreFatal)
{
    writeTrace("t.trace", TraceFormat::Text);
    writeFile("manifest.tsv", "x t.trace elvish 1000 H -\n");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "unknown trace format 'elvish'");
    writeFile("manifest.tsv", "x t.trace text 1000 X -\n");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "unknown intensity class 'X'");
    writeFile("manifest.tsv", "x t.trace text 1000 H -3.0\n");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "bad alone-IPC");
    writeFile("manifest.tsv", "x t.trace text twelve H -\n");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "bad instruction count");
    writeFile("manifest.tsv", "x t.trace text 1000 H - extra\n");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "trailing garbage");
}

TEST_F(CorpusTest, MalformedJsonIsFatal)
{
    writeTrace("t.trace", TraceFormat::Text);
    writeFile("manifest.json", "{\"traces\": [{\"name\": \"x\",]}");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "invalid JSON");
    writeFile("manifest.json", "{\"version\": 1}");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "needs a \"traces\" array");
    writeFile("manifest.json",
              "{\"traces\": [{\"file\": \"t.trace\", \"class\": \"H\"}]}");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "traces\\[0\\]: missing \"name\"");
    writeFile("manifest.json",
              "{\"traces\": [{\"name\": \"x\", \"file\": \"t.trace\", "
              "\"class\": \"H\", \"alone_ipc\": -1}]}");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "alone_ipc");
    // Out-of-uint64-range instruction counts would make the
    // double -> integer cast undefined; they must die cleanly.
    writeFile("manifest.json",
              "{\"traces\": [{\"name\": \"x\", \"file\": \"t.trace\", "
              "\"class\": \"H\", \"instructions\": 1e30}]}");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "instructions");
}

TEST_F(CorpusTest, MissingTraceFileIsFatal)
{
    writeFile("manifest.tsv", "ghost nope.trace text 1000 H -\n");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "trace file .*nope.trace.*does not exist");
}

TEST_F(CorpusTest, NonRoundTrippableFieldsAreFatal)
{
    // Names/files with whitespace, '#', '"', or '\' would produce a
    // manifest the readers mis-parse: both the writer and the loader
    // must reject them up front.
    writeTrace("t.trace", TraceFormat::Text);
    std::vector<CorpusEntry> entries(1);
    entries[0].name = "my trace";
    entries[0].file = "t.trace";
    EXPECT_EXIT(writeManifest(dir, entries),
                ::testing::ExitedWithCode(1), "cannot round-trip");
    entries[0].name = "ok";
    entries[0].file = "weird\"name.trace";
    EXPECT_EXIT(writeManifest(dir, entries),
                ::testing::ExitedWithCode(1), "cannot round-trip");
    // A JSON manifest can encode such a name; loading must reject it.
    writeFile("manifest.json",
              "{\"traces\": [{\"name\": \"a#b\", \"file\": "
              "\"t.trace\", \"class\": \"H\"}]}");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "cannot round-trip");
}

TEST_F(CorpusTest, DuplicateNamesAreFatal)
{
    writeTrace("t.trace", TraceFormat::Text);
    writeFile("manifest.tsv",
              "dup t.trace text 1000 H -\ndup t.trace text 1000 L -\n");
    EXPECT_EXIT(Corpus::load(dir), ::testing::ExitedWithCode(1),
                "duplicate trace name 'dup'");
}

TEST_F(CorpusTest, UnknownEntryListsTheCorpus)
{
    writeTrace("t.trace", TraceFormat::Text);
    writeFile("manifest.tsv",
              "one t.trace text 1000 H -\ntwo t.trace text 1000 L -\n");
    Corpus c = Corpus::load(dir);
    EXPECT_EQ(c.find("three"), nullptr);
    EXPECT_EXIT(c.at("three"), ::testing::ExitedWithCode(1),
                "no trace 'three'; it has: one, two");
}

TEST_F(CorpusTest, CorpusSpecResolvesThroughTheRegistry)
{
    writeTrace("gcc.trace", TraceFormat::Text, "gcc-like", 7);
    writeFile("manifest.tsv", "gcc gcc.trace text 2000 M -\n");
    Corpus::setActive(std::make_shared<const Corpus>(Corpus::load(dir)));

    auto src = WorkloadRegistry::global().makeSource("corpus:gcc", 0, 0,
                                                     kSlice);
    TraceGen ref(benchmarkByName("gcc-like"), 7, 0, kSlice);
    for (int i = 0; i < 2000; ++i) {
        TraceInst a = ref.next(), b = src->next();
        ASSERT_EQ(a.isMem, b.isMem) << "instruction " << i;
        ASSERT_EQ(a.addr, b.addr) << "instruction " << i;
    }

    // ?once runs dry instead of looping.
    auto once = WorkloadRegistry::global().makeSource("corpus:gcc?once",
                                                      0, 0, kSlice);
    for (int i = 0; i < 3000; ++i)
        once->next();
    EXPECT_TRUE(once->exhausted());
}

TEST_F(CorpusTest, CorpusSpecWithoutActiveCorpusIsFatal)
{
    EXPECT_EXIT(WorkloadRegistry::global().makeSource("corpus:x", 0, 0,
                                                      kSlice),
                ::testing::ExitedWithCode(1),
                "corpus:x.*needs an active trace corpus.*HIRA_CORPUS");
}

TEST_F(CorpusTest, UnknownCorpusEntryInSpecIsFatal)
{
    writeTrace("t.trace", TraceFormat::Text);
    writeFile("manifest.tsv", "one t.trace text 1000 H -\n");
    Corpus::setActive(std::make_shared<const Corpus>(Corpus::load(dir)));
    EXPECT_EXIT(WorkloadRegistry::global().makeSource("corpus:nope", 0, 0,
                                                      kSlice),
                ::testing::ExitedWithCode(1), "no trace 'nope'");
}

TEST_F(CorpusTest, ActiveCorpusLoadsLazilyFromEnvironment)
{
    writeTrace("t.trace", TraceFormat::Text);
    writeFile("manifest.tsv", "envy t.trace text 1000 H 0.25\n");
    ::setenv("HIRA_CORPUS", dir.c_str(), 1);
    auto active = Corpus::active();
    ASSERT_NE(active, nullptr);
    EXPECT_EQ(active->at("envy").aloneIpc, 0.25);
    ::unsetenv("HIRA_CORPUS");
}

TEST_F(CorpusTest, AloneIpcPriorLookup)
{
    writeTrace("t.trace", TraceFormat::Text);
    writeFile("manifest.tsv",
              "primed t.trace text 1000 H 0.75\n"
              "bare t.trace text 1000 L -\n");
    Corpus::setActive(std::make_shared<const Corpus>(Corpus::load(dir)));

    double out = -1.0;
    EXPECT_TRUE(corpusAloneIpcPrior("corpus:primed", out));
    EXPECT_EQ(out, 0.75);
    // "?once" runs dry instead of looping, so the looping-replay
    // prior does not apply — that spec must fall back to measurement.
    EXPECT_FALSE(corpusAloneIpcPrior("corpus:primed?once", out));
    EXPECT_FALSE(corpusAloneIpcPrior("corpus:bare", out));
    EXPECT_FALSE(corpusAloneIpcPrior("corpus:unknown", out));
    EXPECT_FALSE(corpusAloneIpcPrior("mcf-like", out));
    EXPECT_FALSE(corpusAloneIpcPrior("file:/x", out));

    Corpus::setActive(nullptr);
    EXPECT_FALSE(corpusAloneIpcPrior("corpus:primed", out));
}

TEST_F(CorpusTest, ClassifyApkiThresholds)
{
    EXPECT_EQ(classifyApki(0.0), MpkiClass::Low);
    EXPECT_EQ(classifyApki(79.9), MpkiClass::Low);
    EXPECT_EQ(classifyApki(80.0), MpkiClass::Medium);
    EXPECT_EQ(classifyApki(199.9), MpkiClass::Medium);
    EXPECT_EQ(classifyApki(200.0), MpkiClass::High);
    EXPECT_EQ(mpkiClassLetter(MpkiClass::High), 'H');
    EXPECT_EQ(mpkiClassLetter(MpkiClass::Medium), 'M');
    EXPECT_EQ(mpkiClassLetter(MpkiClass::Low), 'L');
}

TEST_F(CorpusTest, CorpusMixesAreBinnedAndDeterministic)
{
    writeTrace("t.trace", TraceFormat::Text);
    std::string manifest;
    // 3 High, 2 Medium, 2 Low traces, all sharing one trace file.
    for (const char *n : {"h1", "h2", "h3"})
        manifest += std::string(n) + " t.trace text 1000 H -\n";
    for (const char *n : {"m1", "m2"})
        manifest += std::string(n) + " t.trace text 1000 M -\n";
    for (const char *n : {"l1", "l2"})
        manifest += std::string(n) + " t.trace text 1000 L -\n";
    writeFile("manifest.tsv", manifest);
    Corpus c = Corpus::load(dir);

    std::vector<WorkloadMix> mixes = makeCorpusMixes(8, 4, c);
    ASSERT_EQ(mixes.size(), 8u);
    std::set<std::string> h = {"corpus:h1", "corpus:h2", "corpus:h3"};
    std::set<std::string> m = {"corpus:m1", "corpus:m2"};
    std::set<std::string> l = {"corpus:l1", "corpus:l2"};
    for (const WorkloadMix &mix : mixes)
        ASSERT_EQ(mix.size(), 4u);
    // Categories rotate H, M, L, mixed, H, M, L, mixed.
    for (int i : {0, 4})
        for (const std::string &s : mixes[static_cast<std::size_t>(i)])
            EXPECT_EQ(h.count(s), 1u) << s;
    for (int i : {1, 5})
        for (const std::string &s : mixes[static_cast<std::size_t>(i)])
            EXPECT_EQ(m.count(s), 1u) << s;
    for (int i : {2, 6})
        for (const std::string &s : mixes[static_cast<std::size_t>(i)])
            EXPECT_EQ(l.count(s), 1u) << s;

    // Deterministic in the seed; different seeds decorrelate.
    EXPECT_EQ(makeCorpusMixes(8, 4, c), mixes);
    EXPECT_NE(makeCorpusMixes(8, 4, c, 0xd1ff), mixes);
}

TEST_F(CorpusTest, SingleClassCorpusStillBuildsMixes)
{
    writeTrace("t.trace", TraceFormat::Text);
    writeFile("manifest.tsv", "only t.trace text 1000 H -\n");
    Corpus c = Corpus::load(dir);
    std::vector<WorkloadMix> mixes = makeCorpusMixes(3, 2, c);
    ASSERT_EQ(mixes.size(), 3u);
    for (const WorkloadMix &mix : mixes)
        for (const std::string &s : mix)
            EXPECT_EQ(s, "corpus:only");
}
