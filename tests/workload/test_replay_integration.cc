/**
 * @file
 * Integration tests for trace-driven workloads: a synthetic run
 * recorded to disk and replayed through FileTraceSource must drive the
 * full system to bitwise-identical IPC in both formats, and SweepRunner
 * must evaluate mixes combining synthetic and "file:" workloads end to
 * end.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "sim/experiment.hh"
#include "workload/file_trace.hh"

using namespace hira;

namespace {

class ReplayIntegrationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string templ = "/tmp/hira_replay.XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();
    }

    void
    TearDown() override
    {
        for (const std::string &f : files)
            ::unlink(f.c_str());
        ::rmdir(dir.c_str());
    }

    std::string dir;
    std::vector<std::string> files;

    static constexpr Cycle kWarmup = 2000;
    static constexpr Cycle kMeasure = 15000;

    /**
     * Record a live run of @p mix, then replay it from the dumped
     * per-core files; return {live, replay}.
     */
    std::pair<RunResult, RunResult>
    recordAndReplay(const WorkloadMix &mix, TraceFormat fmt)
    {
        GeomSpec geom;
        SchemeSpec scheme;
        scheme.kind = SchemeKind::Baseline;

        SystemConfig cfg = makeSystemConfig(geom, scheme, mix, 21);
        cfg.traceDumpDir = dir;
        cfg.traceDumpFormat = fmt;
        RunResult live = runOne(cfg, kWarmup, kMeasure);

        const char *ext = fmt == TraceFormat::Binary ? "bin" : "trace";
        WorkloadMix replay_mix;
        for (std::size_t i = 0; i < mix.size(); ++i) {
            std::string path =
                dir + "/core" + std::to_string(i) + "." + ext;
            files.push_back(path);
            replay_mix.push_back("file:" + path);
        }
        SystemConfig rcfg = makeSystemConfig(geom, scheme, replay_mix, 21);
        RunResult replay = runOne(rcfg, kWarmup, kMeasure);
        return {live, replay};
    }
};

void
expectIdenticalRuns(const RunResult &live, const RunResult &replay)
{
    ASSERT_EQ(live.ipc.size(), replay.ipc.size());
    for (std::size_t i = 0; i < live.ipc.size(); ++i) {
        // Bitwise equality, not EXPECT_NEAR: replay is exact.
        EXPECT_EQ(live.ipc[i], replay.ipc[i]) << "core " << i;
    }
    EXPECT_EQ(live.sys.memReads, replay.sys.memReads);
    EXPECT_EQ(live.sys.memWrites, replay.sys.memWrites);
    EXPECT_EQ(live.sys.llcHits, replay.sys.llcHits);
    EXPECT_EQ(live.sys.llcMisses, replay.sys.llcMisses);
    EXPECT_EQ(live.sys.controller.acts, replay.sys.controller.acts);
}

} // namespace

TEST_F(ReplayIntegrationTest, TextReplayIsBitwiseIdentical)
{
    auto [live, replay] = recordAndReplay(
        {"mcf-like", "gcc-like", "libquantum-like", "h264-like"},
        TraceFormat::Text);
    expectIdenticalRuns(live, replay);
}

TEST_F(ReplayIntegrationTest, BinaryReplayIsBitwiseIdentical)
{
    auto [live, replay] = recordAndReplay(
        {"lbm-like", "omnetpp-like"}, TraceFormat::Binary);
    expectIdenticalRuns(live, replay);
}

TEST_F(ReplayIntegrationTest, ShortTraceLoopsThroughLongerRun)
{
    // Record a short run, then replay it through a 4x longer one: the
    // looping FileTraceSource must keep feeding the core (the system
    // keeps making progress well past one trace length).
    GeomSpec geom;
    SchemeSpec scheme;
    scheme.kind = SchemeKind::Baseline;
    WorkloadMix mix = {"mcf-like"};

    SystemConfig cfg = makeSystemConfig(geom, scheme, mix, 3);
    cfg.traceDumpDir = dir;
    RunResult shortRun = runOne(cfg, 500, 3000);

    std::string path = dir + "/core0.trace";
    files.push_back(path);
    SystemConfig rcfg =
        makeSystemConfig(geom, scheme, {"file:" + path}, 3);
    RunResult longRun = runOne(rcfg, 500, 12000);

    EXPECT_GT(shortRun.ipc[0], 0.0);
    EXPECT_GT(longRun.ipc[0], 0.0);
    // ~4x the cycles with a looping trace: clearly more cache accesses
    // than one pass of the recorded run contains. (Repeated passes hit
    // in the LLC, so memory traffic is the wrong looping signal.)
    std::uint64_t short_accesses =
        shortRun.sys.llcHits + shortRun.sys.llcMisses;
    std::uint64_t long_accesses =
        longRun.sys.llcHits + longRun.sys.llcMisses;
    EXPECT_GT(long_accesses, short_accesses * 2);
}

TEST_F(ReplayIntegrationTest, SweepRunnerMixesSyntheticAndFileWorkloads)
{
    // Capture one benchmark to disk, then sweep a mix that pairs the
    // file-backed replay with synthetic pool workloads, exercising the
    // alone-IPC cache and the worker pool over "file:" specs.
    GeomSpec geom;
    SchemeSpec scheme;
    scheme.kind = SchemeKind::Baseline;

    SystemConfig cfg =
        makeSystemConfig(geom, scheme, {"gcc-like"}, 11);
    cfg.traceDumpDir = dir;
    runOne(cfg, kWarmup, kMeasure);
    std::string path = dir + "/core0.trace";
    files.push_back(path);

    BenchKnobs knobs;
    knobs.mixes = 1;
    knobs.cycles = kMeasure;
    knobs.warmup = kWarmup;
    knobs.threads = 2;
    knobs.cores = 3;

    std::vector<WorkloadMix> mixes = {
        {"mcf-like", "file:" + path, "h264-like"},
    };
    SweepRunner runner(knobs, mixes);
    ASSERT_EQ(runner.mixes().size(), 1u);

    double ws = runner.meanWs(geom, scheme);
    EXPECT_GT(ws, 0.0);
    EXPECT_LE(ws, 3.0 + 1e-9); // weighted speedup bounded by core count

    // Deterministic across runner instances.
    SweepRunner runner2(knobs, mixes);
    EXPECT_EQ(ws, runner2.meanWs(geom, scheme));
}

TEST_F(ReplayIntegrationTest, HiraCoresKnobSizesGeneratedMixes)
{
    BenchKnobs knobs;
    knobs.mixes = 3;
    knobs.cores = 5;
    SweepRunner runner(knobs);
    ASSERT_EQ(runner.mixes().size(), 3u);
    for (const WorkloadMix &mix : runner.mixes())
        EXPECT_EQ(mix.size(), 5u);
}
