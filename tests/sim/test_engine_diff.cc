/**
 * @file
 * Differential suite for the two simulation-loop engines: the
 * event-driven skip-ahead kernel must reproduce the legacy dense
 * cycle loop bitwise at the SystemResult level — every IPC double,
 * every command/refresh counter — across refresh schemes (Baseline,
 * elastic Baseline, NoRefresh, PARA, HiRA-MC in all its modes),
 * geometries, and workload kinds (synthetic, file-backed, corpus,
 * exhausted ?once traces). Also guards the skip-ahead path itself:
 * on an idle-heavy config the event loop must execute strictly fewer
 * iterations than it simulates cycles, so a regression to dense
 * ticking fails loudly.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "sim/experiment.hh"
#include "sim/trace.hh"
#include "sim/workloads.hh"
#include "workload/corpus.hh"
#include "workload/file_trace.hh"

using namespace hira;

namespace {

constexpr Cycle kWarm = 3000;
constexpr Cycle kRun = 20000;

WorkloadMix
memHeavyMix()
{
    return {"mcf-like", "libquantum-like", "lbm-like", "gems-like"};
}

WorkloadMix
lowIntensityMix()
{
    return {"h264-like", "namd-like", "perlbench-like", "hmmer-like"};
}

SystemResult
runEngine(SystemConfig cfg, SimEngine engine, Cycle warm, Cycle run,
          SimLoopStats *stats = nullptr)
{
    cfg.engine = engine;
    System sys(cfg);
    sys.run(warm);
    sys.resetStats();
    sys.run(run);
    if (stats != nullptr)
        *stats = sys.loopStats();
    return sys.result();
}

void
expectIdentical(const SystemResult &a, const SystemResult &b,
                const std::string &label)
{
    SCOPED_TRACE(label);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "core " << i;
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWrites, b.memWrites);
    EXPECT_EQ(a.avgReadLatencyCycles, b.avgReadLatencyCycles);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);

    EXPECT_EQ(a.controller.readsServed, b.controller.readsServed);
    EXPECT_EQ(a.controller.writesServed, b.controller.writesServed);
    EXPECT_EQ(a.controller.readLatencySum, b.controller.readLatencySum);
    EXPECT_EQ(a.controller.forwards, b.controller.forwards);
    EXPECT_EQ(a.controller.acts, b.controller.acts);
    EXPECT_EQ(a.controller.pres, b.controller.pres);
    EXPECT_EQ(a.controller.refs, b.controller.refs);
    EXPECT_EQ(a.controller.hiraOps, b.controller.hiraOps);
    EXPECT_EQ(a.controller.rejectedRequests, b.controller.rejectedRequests);

    EXPECT_EQ(a.refresh.refCommands, b.refresh.refCommands);
    EXPECT_EQ(a.refresh.rowRefreshes, b.refresh.rowRefreshes);
    EXPECT_EQ(a.refresh.accessPaired, b.refresh.accessPaired);
    EXPECT_EQ(a.refresh.refreshPaired, b.refresh.refreshPaired);
    EXPECT_EQ(a.refresh.standalone, b.refresh.standalone);
    EXPECT_EQ(a.refresh.deadlineMisses, b.refresh.deadlineMisses);
    EXPECT_EQ(a.refresh.preventiveGenerated, b.refresh.preventiveGenerated);
    EXPECT_EQ(a.refresh.preventiveDropped, b.refresh.preventiveDropped);
}

void
expectEnginesAgree(const SystemConfig &cfg, const std::string &label,
                   Cycle warm = kWarm, Cycle run = kRun)
{
    SystemResult cyc = runEngine(cfg, SimEngine::CycleLoop, warm, run);
    SystemResult evt = runEngine(cfg, SimEngine::EventLoop, warm, run);
    expectIdentical(cyc, evt, label);
}

SystemConfig
makeConfig(const SchemeSpec &scheme, const WorkloadMix &mix,
           const GeomSpec &geom = GeomSpec{}, std::uint64_t seed = 99)
{
    return makeSystemConfig(geom, scheme, mix, seed);
}

} // namespace

TEST(EngineDiff, BaselineSchemes)
{
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectEnginesAgree(makeConfig(base, memHeavyMix()), "baseline");

    SchemeSpec elastic = base;
    elastic.refPostpone = 4;
    expectEnginesAgree(makeConfig(elastic, memHeavyMix()),
                       "baseline+postpone4");

    SchemeSpec none;
    none.kind = SchemeKind::NoRefresh;
    expectEnginesAgree(makeConfig(none, memHeavyMix()), "norefresh");
}

TEST(EngineDiff, ImmediatePara)
{
    SchemeSpec para;
    para.kind = SchemeKind::Baseline;
    para.paraEnabled = true;
    para.nrh = 256.0;
    expectEnginesAgree(makeConfig(para, memHeavyMix()), "baseline+para");
}

TEST(EngineDiff, HiraMcModes)
{
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    expectEnginesAgree(makeConfig(hira, memHeavyMix()), "hira-2");

    // PreventiveRC at a devastating threshold: deep PR-FIFOs, drops.
    SchemeSpec prc = hira;
    prc.slackN = 4;
    prc.paraEnabled = true;
    prc.preventiveViaHira = true;
    prc.nrh = 64.0;
    expectEnginesAgree(makeConfig(prc, memHeavyMix()),
                       "hira-4+para(hira)");

    // Periodic refresh on conventional REF, only preventive via HiRA
    // (Section 9.2): exercises the internal BaselineRefresh engine.
    SchemeSpec split;
    split.kind = SchemeKind::Baseline;
    split.paraEnabled = true;
    split.preventiveViaHira = true;
    split.slackN = 2;
    split.nrh = 512.0;
    expectEnginesAgree(makeConfig(split, memHeavyMix()),
                       "ref-periodic+hira-preventive");
}

TEST(EngineDiff, MitigationZoo)
{
    // Aggressive knobs so every scheme's trigger path fires within the
    // run; the event loop must reproduce each queue drain and
    // time-triggered TRR/window instant despite skipping idle cycles.
    SchemeSpec rfm;
    rfm.kind = SchemeKind::Rfm;
    rfm.raaimt = 16;
    expectEnginesAgree(makeConfig(rfm, memHeavyMix()), "rfm-16");

    SchemeSpec prac;
    prac.kind = SchemeKind::Prac;
    prac.pracThreshold = 32;
    expectEnginesAgree(makeConfig(prac, memHeavyMix()), "prac-32");

    SchemeSpec graphene;
    graphene.kind = SchemeKind::Graphene;
    graphene.trackerSize = 8;
    graphene.nrh = 64.0; // registry sizes the MG threshold as nrh/4
    expectEnginesAgree(makeConfig(graphene, memHeavyMix()),
                       "graphene-trk8");

    // Low-intensity mix: long idle stretches between triggers, the
    // regime where a too-late nextEventCycle horizon would diverge.
    expectEnginesAgree(makeConfig(rfm, lowIntensityMix()),
                       "rfm-16 low-intensity");
    expectEnginesAgree(makeConfig(graphene, lowIntensityMix()),
                       "graphene-trk8 low-intensity");
}

TEST(EngineDiff, MitigationZooOnDdr5)
{
    GeomSpec ddr5;
    ddr5.standard = "ddr5_4800";
    ddr5.capacityGb = 16.0;

    SchemeSpec prac;
    prac.kind = SchemeKind::Prac;
    prac.pracThreshold = 32;
    expectEnginesAgree(makeConfig(prac, memHeavyMix(), ddr5),
                       "prac-32 ddr5");

    SchemeSpec graphene;
    graphene.kind = SchemeKind::Graphene;
    graphene.trackerSize = 8;
    graphene.nrh = 64.0;
    expectEnginesAgree(makeConfig(graphene, memHeavyMix(), ddr5),
                       "graphene-trk8 ddr5");
}

TEST(EngineDiff, GeometriesAndMixes)
{
    GeomSpec wide;
    wide.channels = 2;
    wide.ranks = 2;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectEnginesAgree(makeConfig(base, memHeavyMix(), wide),
                       "baseline 2ch2rk");

    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    expectEnginesAgree(makeConfig(hira, memHeavyMix(), wide),
                       "hira-2 2ch2rk");

    // Low-intensity mix: mostly LLC-resident cores, the regime the
    // skip-ahead kernel targets for controller sleeping.
    expectEnginesAgree(makeConfig(base, lowIntensityMix()),
                       "baseline low-intensity");
    expectEnginesAgree(makeConfig(hira, lowIntensityMix()),
                       "hira-2 low-intensity");

    GeomSpec big;
    big.capacityGb = 64.0;
    expectEnginesAgree(makeConfig(base, memHeavyMix(), big),
                       "baseline 64Gb");
}

namespace {

/** Temp-dir fixture providing recorded trace files and a corpus. */
class EngineDiffFiles : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("HIRA_CORPUS");
        Corpus::setActive(nullptr);
        std::string templ = "/tmp/hira_engine_diff.XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();

        const std::vector<std::pair<std::string, TraceFormat>> traces = {
            {"mcf-like", TraceFormat::Text},
            {"libquantum-like", TraceFormat::Binary},
            {"gcc-like", TraceFormat::Text},
            {"h264-like", TraceFormat::Binary},
        };
        std::vector<CorpusEntry> entries;
        for (const auto &t : traces) {
            CorpusEntry e;
            e.name = t.first;
            e.format = t.second;
            e.file = e.name + (t.second == TraceFormat::Binary
                                   ? ".bin"
                                   : ".trace");
            e.instructions = 6000;
            const BenchmarkProfile &prof = benchmarkByName(e.name);
            TraceGen gen(prof, hashString(e.name), 0, 1 << 26);
            dumpTrace(gen, dir + "/" + e.file, e.format, e.instructions);
            files.push_back(dir + "/" + e.file);
            e.mpki = classifyApki(1000.0 * prof.memPerInstr);
            entries.push_back(std::move(e));
        }
        writeManifest(dir, entries, /*also_json=*/false);
        files.push_back(dir + "/manifest.tsv");
    }

    void
    TearDown() override
    {
        Corpus::setActive(nullptr);
        for (const std::string &f : files)
            ::unlink(f.c_str());
        ::rmdir(dir.c_str());
    }

    std::string dir;
    std::vector<std::string> files;
};

} // namespace

TEST_F(EngineDiffFiles, FileBackedMixes)
{
    WorkloadMix mix = {"file:" + dir + "/mcf-like.trace",
                       "file:" + dir + "/libquantum-like.bin",
                       "gcc-like", "h264-like"};
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectEnginesAgree(makeConfig(base, mix), "file mix baseline");

    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    expectEnginesAgree(makeConfig(hira, mix), "file mix hira-2");
}

TEST_F(EngineDiffFiles, CorpusMixes)
{
    Corpus::setActive(std::make_shared<const Corpus>(Corpus::load(dir)));
    WorkloadMix mix = {"corpus:mcf-like", "corpus:libquantum-like",
                       "corpus:gcc-like", "corpus:h264-like"};
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectEnginesAgree(makeConfig(base, mix), "corpus mix baseline");

    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    expectEnginesAgree(makeConfig(hira, mix), "corpus mix hira-2");
}

TEST_F(EngineDiffFiles, ExhaustedOnceTraces)
{
    // ?once traces run dry early; the cores then retire non-memory
    // instructions forever — the exhausted-run fast-forward regime.
    WorkloadMix mix = {"file:" + dir + "/mcf-like.trace?once",
                       "file:" + dir + "/gcc-like.trace?once"};
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectEnginesAgree(makeConfig(base, mix), "exhausted once traces",
                       /*warm=*/1000, /*run=*/60000);
}

TEST_F(EngineDiffFiles, ExhaustedFastForwardSurvivesStatsReset)
{
    // Regression: the exhausted-run fast-forward must stamp window
    // slots with the exact per-tick readyAt values the dense loop
    // writes. The stamps look interchangeable while cpuCycle grows,
    // but resetStats() rewinds cpuCycle to zero, turning them into
    // future times that gate retirement — approximate stamps then
    // stall the head for a different number of ticks than the cycle
    // engine. A single-core ?once trace that runs dry during warmup
    // (exactly the sweep runner's IPC-alone configuration) hits this.
    WorkloadMix solo = {"file:" + dir + "/h264-like.bin?once"};
    SchemeSpec none;
    none.kind = SchemeKind::NoRefresh;
    expectEnginesAgree(makeConfig(none, solo),
                       "single-core exhausted alone run",
                       /*warm=*/2000, /*run=*/20000);
}

TEST_F(EngineDiffFiles, SkipAheadEngagesOnIdleHeavyConfig)
{
    // Regression guard for the skip-ahead path itself: once the ?once
    // traces run dry the whole system is quiescent between refresh
    // deadlines, so the event loop must execute strictly fewer
    // iterations than it simulates cycles — by a wide margin here.
    WorkloadMix mix = {"file:" + dir + "/mcf-like.trace?once",
                       "file:" + dir + "/gcc-like.trace?once"};
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    SystemConfig cfg = makeConfig(base, mix);

    SimLoopStats evt;
    runEngine(cfg, SimEngine::EventLoop, 1000, 60000, &evt);
    EXPECT_EQ(evt.simulatedCycles, 61000u);
    EXPECT_EQ(evt.executedCycles + evt.skippedCycles, evt.simulatedCycles);
    EXPECT_LT(evt.executedCycles, evt.simulatedCycles);
    EXPECT_LT(evt.executedCycles, evt.simulatedCycles / 4)
        << "skip-ahead barely engaged on an idle-heavy config";

    // The dense loop by definition executes every cycle.
    SimLoopStats cyc;
    runEngine(cfg, SimEngine::CycleLoop, 1000, 60000, &cyc);
    EXPECT_EQ(cyc.executedCycles, cyc.simulatedCycles);
    EXPECT_EQ(cyc.skippedCycles, 0u);
}

TEST(EngineDiff, MemoryStallSkipsEngageOnLatencyBoundConfig)
{
    // A single pointer-chasing core is latency-bound: the bus idles
    // between serialized misses while the core stalls on a full
    // window, exactly the "low-intensity phase" the ISSUE targets.
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    SystemConfig cfg = makeConfig(base, {"mcf-like"});

    SimLoopStats evt;
    SystemResult e = runEngine(cfg, SimEngine::EventLoop, kWarm, kRun, &evt);
    EXPECT_LT(evt.executedCycles, evt.simulatedCycles);

    SystemResult c = runEngine(cfg, SimEngine::CycleLoop, kWarm, kRun);
    expectIdentical(c, e, "single-core mcf");
}

TEST(EngineDiff, RepeatedRunsInterleaveWithResetStats)
{
    // run/resetStats/run sequences (the warmup protocol) must agree
    // even when the skip-ahead crosses the reset boundary state.
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 4;
    SystemConfig cfg = makeConfig(hira, memHeavyMix());

    auto sequence = [&cfg](SimEngine engine) {
        SystemConfig c = cfg;
        c.engine = engine;
        System sys(c);
        sys.run(2000);
        sys.resetStats();
        sys.run(8000);
        sys.resetStats();
        sys.run(8000);
        return sys.result();
    };
    expectIdentical(sequence(SimEngine::CycleLoop),
                    sequence(SimEngine::EventLoop), "double reset");
}
