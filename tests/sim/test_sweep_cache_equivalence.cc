/**
 * @file
 * Cold-vs-warm equivalence for the cached sweep path: runPoints() with
 * no cache, an empty cache, a fully-primed cache, and a mixed partial
 * cache must produce bitwise-identical results at any thread count —
 * the result cache is a pure memoization of the deterministic
 * simulation. Also pins that warm runs simulate nothing (points AND
 * alone-IPC warmups), that cached entries do not leak across
 * engine/kernel selections, and that full-level metrics survive the
 * round trip.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include <stdlib.h>

#include "sim/experiment.hh"
#include "sim/result_cache.hh"

using namespace hira;

namespace {

class SweepCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Pin every environment input of the cache key; tests flip
        // individual knobs back and forth themselves.
        ::setenv("HIRA_CACHE_REV", "test", 1);
        ::setenv("HIRA_ENGINE", "event", 1);
        ::setenv("HIRA_KERNEL", "specialized", 1);
        ::unsetenv("HIRA_METRICS");
        ::unsetenv("HIRA_STANDARD");
        ::unsetenv("HIRA_RESULT_CACHE");
        ::unsetenv("HIRA_RESULT_CACHE_MODE");
        ::unsetenv("HIRA_CORPUS");
        std::string templ = "/tmp/hira_swcache.XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();
    }

    void
    TearDown() override
    {
        ::unsetenv("HIRA_CACHE_REV");
        ::unsetenv("HIRA_ENGINE");
        ::unsetenv("HIRA_KERNEL");
        ::unsetenv("HIRA_METRICS");
        std::filesystem::remove_all(dir);
    }

    static BenchKnobs
    tinyKnobs(int threads)
    {
        BenchKnobs k;
        k.mixes = 2;
        k.cycles = 12000;
        k.warmup = 3000;
        k.threads = threads;
        return k;
    }

    static std::vector<SweepPoint>
    tinyPlan()
    {
        std::vector<SweepPoint> plan;
        SweepPoint base;
        base.scheme.kind = SchemeKind::Baseline;
        plan.push_back(base);
        SweepPoint hira;
        hira.scheme.kind = SchemeKind::HiraMc;
        hira.scheme.slackN = 2;
        plan.push_back(hira);
        SweepPoint rfm;
        rfm.scheme.kind = SchemeKind::Rfm;
        plan.push_back(rfm);
        return plan;
    }

    /** Point @p runner at the fixture's cache dir. */
    void
    attachCache(SweepRunner &runner)
    {
        runner.setResultCache(std::make_unique<ResultCache>(
            dir, ResultCacheMode::ReadWrite));
    }

    std::string dir;
};

void
expectBitwiseEqual(const std::vector<PointResult> &a,
                   const std::vector<PointResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].meanWs, b[i].meanWs) << "point " << i;
        EXPECT_EQ(a[i].refresh.refCommands, b[i].refresh.refCommands);
        EXPECT_EQ(a[i].refresh.rowRefreshes, b[i].refresh.rowRefreshes);
        EXPECT_EQ(a[i].refresh.accessPaired, b[i].refresh.accessPaired);
        EXPECT_EQ(a[i].refresh.refreshPaired,
                  b[i].refresh.refreshPaired);
        EXPECT_EQ(a[i].refresh.standalone, b[i].refresh.standalone);
        EXPECT_EQ(a[i].refresh.deadlineMisses,
                  b[i].refresh.deadlineMisses);
        EXPECT_EQ(a[i].refresh.preventiveGenerated,
                  b[i].refresh.preventiveGenerated);
        EXPECT_EQ(a[i].refresh.preventiveDropped,
                  b[i].refresh.preventiveDropped);
        EXPECT_EQ(a[i].simCycles, b[i].simCycles);
    }
}

} // namespace

TEST_F(SweepCacheTest, NoCacheVsColdVsWarmAreBitwiseIdentical)
{
    std::vector<SweepPoint> plan = tinyPlan();

    // Reference: no cache at all (fromEnv is null — env is pinned).
    SweepRunner plain(tinyKnobs(2));
    ASSERT_EQ(plain.resultCache(), nullptr);
    std::vector<PointResult> reference = plain.runPoints(plan);
    EXPECT_EQ(plain.pointsSimulated(), plan.size());
    EXPECT_EQ(plain.pointsFromCache(), 0u);

    // Cold: empty cache, everything simulates, results identical.
    SweepRunner cold(tinyKnobs(2));
    attachCache(cold);
    std::vector<PointResult> coldOut = cold.runPoints(plan);
    expectBitwiseEqual(coldOut, reference);
    EXPECT_EQ(cold.pointsSimulated(), plan.size());
    for (const PointResult &r : coldOut)
        EXPECT_FALSE(r.cacheHit);

    // Warm: a FRESH runner on the same dir simulates nothing — no
    // points, no alone-IPC warmups — and reproduces every bit.
    SweepRunner warm(tinyKnobs(2));
    attachCache(warm);
    std::vector<PointResult> warmOut = warm.runPoints(plan);
    expectBitwiseEqual(warmOut, reference);
    EXPECT_EQ(warm.pointsSimulated(), 0u);
    EXPECT_EQ(warm.pointsFromCache(), plan.size());
    EXPECT_EQ(warm.aloneRunCount(), 0u);
    for (const PointResult &r : warmOut)
        EXPECT_TRUE(r.cacheHit);
    // Hits preserve the original run's cost accounting.
    for (std::size_t i = 0; i < warmOut.size(); ++i) {
        EXPECT_EQ(warmOut[i].wallSeconds, coldOut[i].wallSeconds);
        EXPECT_EQ(warmOut[i].simCycles, coldOut[i].simCycles);
    }
    // lastRefreshStats() keeps its final-point contract on a fully
    // cached plan.
    EXPECT_EQ(warm.lastRefreshStats().rowRefreshes,
              reference.back().refresh.rowRefreshes);
}

TEST_F(SweepCacheTest, PartialCacheMatchesAndOnlySimulatesMisses)
{
    std::vector<SweepPoint> plan = tinyPlan();
    SweepRunner reference(tinyKnobs(2));
    std::vector<PointResult> want = reference.runPoints(plan);

    // Prime ONLY the middle point.
    SweepRunner primer(tinyKnobs(2));
    attachCache(primer);
    primer.runPoints({plan[1]});

    for (int threads : {1, 4}) {
        SweepRunner mixed(tinyKnobs(threads));
        attachCache(mixed);
        std::vector<PointResult> got = mixed.runPoints(plan);
        expectBitwiseEqual(got, want);
        EXPECT_EQ(mixed.pointsFromCache(), 1u) << threads;
        EXPECT_EQ(mixed.pointsSimulated(), plan.size() - 1)
            << threads;
        EXPECT_TRUE(got[1].cacheHit);
        EXPECT_FALSE(got[0].cacheHit);
        EXPECT_FALSE(got[2].cacheHit);
        // After the first mixed run the cache is fully primed; the
        // second iteration re-primes a fresh dir to stay partial.
        std::filesystem::remove_all(dir);
        std::filesystem::create_directory(dir);
        SweepRunner reprime(tinyKnobs(2));
        attachCache(reprime);
        reprime.runPoints({plan[1]});
    }
}

TEST_F(SweepCacheTest, WarmIsIdenticalAcrossThreadCounts)
{
    std::vector<SweepPoint> plan = tinyPlan();
    SweepRunner cold(tinyKnobs(1));
    attachCache(cold);
    std::vector<PointResult> want = cold.runPoints(plan);
    for (int threads : {1, 4}) {
        SweepRunner warm(tinyKnobs(threads));
        attachCache(warm);
        std::vector<PointResult> got = warm.runPoints(plan);
        expectBitwiseEqual(got, want);
        EXPECT_EQ(warm.pointsSimulated(), 0u);
    }
}

TEST_F(SweepCacheTest, EntriesDoNotLeakAcrossEngineOrKernel)
{
    // Engine and kernel produce bitwise-identical numbers, but they
    // are distinct key inputs (conservative: a cross-selection reuse
    // could mask an equivalence bug instead of letting the diff
    // suites catch it). A cache primed under one selection must MISS
    // under the other — and re-simulating must still agree bitwise,
    // which makes every warm rerun a cross-check of the equivalence.
    std::vector<SweepPoint> plan = {tinyPlan()[1]};
    SweepRunner cold(tinyKnobs(2));
    attachCache(cold);
    std::vector<PointResult> eventOut = cold.runPoints(plan);

    ::setenv("HIRA_ENGINE", "cycle", 1);
    SweepRunner cycleRunner(tinyKnobs(2));
    attachCache(cycleRunner);
    std::vector<PointResult> cycleOut = cycleRunner.runPoints(plan);
    EXPECT_EQ(cycleRunner.pointsSimulated(), 1u);
    EXPECT_EQ(cycleRunner.pointsFromCache(), 0u);
    expectBitwiseEqual(cycleOut, eventOut);
    ::setenv("HIRA_ENGINE", "event", 1);

    ::setenv("HIRA_KERNEL", "generic", 1);
    SweepRunner genericRunner(tinyKnobs(2));
    attachCache(genericRunner);
    std::vector<PointResult> genericOut = genericRunner.runPoints(plan);
    EXPECT_EQ(genericRunner.pointsSimulated(), 1u);
    expectBitwiseEqual(genericOut, eventOut);
    ::setenv("HIRA_KERNEL", "specialized", 1);

    // Back on the original selection: warm.
    SweepRunner warm(tinyKnobs(2));
    attachCache(warm);
    warm.runPoints(plan);
    EXPECT_EQ(warm.pointsSimulated(), 0u);
}

TEST_F(SweepCacheTest, FullMetricsSurviveTheRoundTrip)
{
    ::setenv("HIRA_METRICS", "full", 1);
    std::vector<SweepPoint> plan = {tinyPlan()[1]};
    SweepRunner cold(tinyKnobs(2));
    attachCache(cold);
    std::vector<PointResult> coldOut = cold.runPoints(plan);
    ASSERT_FALSE(coldOut[0].metrics.empty());

    SweepRunner warm(tinyKnobs(2));
    attachCache(warm);
    std::vector<PointResult> warmOut = warm.runPoints(plan);
    EXPECT_EQ(warm.pointsSimulated(), 0u);
    const auto &want = coldOut[0].metrics.values;
    const auto &got = warmOut[0].metrics.values;
    ASSERT_EQ(want.size(), got.size());
    for (const auto &kv : want) {
        auto it = got.find(kv.first);
        ASSERT_NE(it, got.end()) << kv.first;
        EXPECT_EQ(kv.second.count, it->second.count) << kv.first;
        EXPECT_EQ(kv.second.value, it->second.value) << kv.first;
        EXPECT_EQ(kv.second.bins, it->second.bins) << kv.first;
    }
    ::unsetenv("HIRA_METRICS");
}

TEST_F(SweepCacheTest, AloneIpcPersistsIndependentlyOfPoints)
{
    std::vector<SweepPoint> plan = tinyPlan();
    SweepRunner cold(tinyKnobs(2));
    attachCache(cold);
    std::vector<PointResult> want = cold.runPoints(plan);
    EXPECT_GT(cold.aloneRunCount(), 0u);

    // Drop the point entries but keep the alone entries: points must
    // re-simulate, alone warmups must all come from disk.
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".point")
            std::filesystem::remove(entry.path());
    }
    SweepRunner half(tinyKnobs(2));
    attachCache(half);
    std::vector<PointResult> got = half.runPoints(plan);
    expectBitwiseEqual(got, want);
    EXPECT_EQ(half.pointsSimulated(), plan.size());
    EXPECT_EQ(half.aloneRunCount(), 0u);
}
