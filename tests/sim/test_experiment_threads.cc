/**
 * @file
 * Deterministic-threading tests for SweepRunner: the sharded executor
 * (src/sim/experiment.cc) must be a pure parallelization — per-run
 * seeds are pure functions of (geometry, scheme, mix index), results
 * land in per-index slots, and the alone-IPC cache is single-flight —
 * so the thread count must not change any result bit, and no alone
 * run may ever execute twice.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include <stdlib.h>

#include "sim/experiment.hh"

using namespace hira;

namespace {

BenchKnobs
tinyKnobs(int threads)
{
    BenchKnobs k;
    k.mixes = 4;
    k.cycles = 12000;
    k.warmup = 3000;
    k.rows = 64;
    k.threads = threads;
    return k;
}

} // namespace

TEST(SweepRunnerThreads, BaselineMeanWsIdenticalOneVsFourThreads)
{
    SweepRunner serial(tinyKnobs(1));
    SweepRunner pooled(tinyKnobs(4));
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the summation order over mixes
    // is fixed by index, so even a low-bit reduction-order divergence
    // is a scheduling leak and must fail.
    EXPECT_EQ(serial.meanWs(g, s), pooled.meanWs(g, s));
}

TEST(SweepRunnerThreads, HiraMcMeanWsAndStatsIdenticalOneVsFourThreads)
{
    SweepRunner serial(tinyKnobs(1));
    SweepRunner pooled(tinyKnobs(4));
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::HiraMc;
    s.slackN = 2;
    EXPECT_EQ(serial.meanWs(g, s), pooled.meanWs(g, s));

    const RefreshStats &a = serial.lastRefreshStats();
    const RefreshStats &b = pooled.lastRefreshStats();
    EXPECT_EQ(a.refCommands, b.refCommands);
    EXPECT_EQ(a.rowRefreshes, b.rowRefreshes);
    EXPECT_EQ(a.accessPaired, b.accessPaired);
    EXPECT_EQ(a.refreshPaired, b.refreshPaired);
    EXPECT_EQ(a.standalone, b.standalone);
    EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
}

TEST(SweepRunnerThreads, RunPointsIdenticalOneVsFourThreads)
{
    // The sharded plan path must be bitwise thread-count independent,
    // point by point, including the per-point refresh aggregates.
    std::vector<SweepPoint> plan;
    for (int ch : {1, 2}) {
        for (int slack : {-1, 2}) {
            SweepPoint p;
            p.geom.channels = ch;
            if (slack < 0) {
                p.scheme.kind = SchemeKind::Baseline;
            } else {
                p.scheme.kind = SchemeKind::HiraMc;
                p.scheme.slackN = slack;
            }
            plan.push_back(p);
        }
    }
    SweepRunner serial(tinyKnobs(1));
    SweepRunner pooled(tinyKnobs(4));
    std::vector<PointResult> a = serial.runPoints(plan);
    std::vector<PointResult> b = pooled.runPoints(plan);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].meanWs, b[i].meanWs) << "point " << i;
        EXPECT_EQ(a[i].refresh.rowRefreshes, b[i].refresh.rowRefreshes);
        EXPECT_EQ(a[i].refresh.accessPaired, b[i].refresh.accessPaired);
        EXPECT_EQ(a[i].refresh.deadlineMisses,
                  b[i].refresh.deadlineMisses);
    }
}

TEST(SweepRunnerThreads, RunPointsIdenticalAcrossEnginesAndThreadCounts)
{
    // The sharded plan path must be bitwise identical under either
    // simulation-loop engine (HIRA_ENGINE), at any thread count: the
    // event kernel is a pure wall-clock optimization. Guards the full
    // SweepRunner stack (seeding, alone-IPC cache, reductions) on top
    // of the per-system differential suite in test_engine_diff.cc.
    std::vector<SweepPoint> plan;
    for (int slack : {-1, 2}) {
        SweepPoint p;
        if (slack < 0) {
            p.scheme.kind = SchemeKind::Baseline;
        } else {
            p.scheme.kind = SchemeKind::HiraMc;
            p.scheme.slackN = slack;
        }
        plan.push_back(p);
    }

    auto run_with_engine = [&plan](const char *engine, int threads) {
        EXPECT_EQ(::setenv("HIRA_ENGINE", engine, 1), 0);
        SweepRunner runner(tinyKnobs(threads));
        return runner.runPoints(plan);
    };
    std::vector<std::vector<PointResult>> results;
    results.push_back(run_with_engine("cycle", 1));
    results.push_back(run_with_engine("event", 1));
    results.push_back(run_with_engine("event", 4));
    ::unsetenv("HIRA_ENGINE");

    ASSERT_EQ(results.size(), 3u);
    for (std::size_t v = 1; v < results.size(); ++v) {
        ASSERT_EQ(results[v].size(), results[0].size());
        for (std::size_t i = 0; i < results[0].size(); ++i) {
            EXPECT_EQ(results[v][i].meanWs, results[0][i].meanWs)
                << "variant " << v << " point " << i;
            EXPECT_EQ(results[v][i].refresh.rowRefreshes,
                      results[0][i].refresh.rowRefreshes);
            EXPECT_EQ(results[v][i].refresh.refCommands,
                      results[0][i].refresh.refCommands);
            EXPECT_EQ(results[v][i].refresh.deadlineMisses,
                      results[0][i].refresh.deadlineMisses);
        }
    }
}

TEST(SweepRunnerThreads, NoDuplicateAloneRunsAcrossAPlan)
{
    // A plan spanning several schemes and geometries needs exactly one
    // alone run per distinct (benchmark, geometry) pair, shared across
    // all points — never one per point.
    SweepRunner runner(tinyKnobs(4));
    std::vector<SweepPoint> plan;
    for (int ch : {1, 2}) {
        for (int slack : {-1, 0, 2}) {
            SweepPoint p;
            p.geom.channels = ch;
            if (slack < 0) {
                p.scheme.kind = SchemeKind::Baseline;
            } else {
                p.scheme.kind = SchemeKind::HiraMc;
                p.scheme.slackN = slack;
            }
            plan.push_back(p);
        }
    }
    runner.runPoints(plan);

    std::set<std::string> benches;
    for (const WorkloadMix &mix : runner.mixes())
        for (const std::string &b : mix)
            benches.insert(b);
    // 2 geometries in the plan, each needing every distinct bench once.
    EXPECT_EQ(runner.aloneRunCount(), 2 * benches.size());

    // Re-running the plan hits the cache: no new alone runs.
    std::uint64_t before = runner.aloneRunCount();
    runner.runPoints(plan);
    EXPECT_EQ(runner.aloneRunCount(), before);
}

TEST(SweepRunnerThreads, AloneCacheIsSingleFlightUnderConcurrency)
{
    // Hammer one cold cache key from many threads at once: exactly one
    // leader may run the simulation; everyone must observe its value.
    SweepRunner runner(tinyKnobs(1));
    GeomSpec g;
    const int nthreads = 8;
    std::vector<double> seen(nthreads, 0.0);
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t) {
        threads.emplace_back([&, t]() {
            seen[t] = runner.aloneIpc("mcf-like", g);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(runner.aloneRunCount(), 1u);
    for (int t = 1; t < nthreads; ++t)
        EXPECT_EQ(seen[t], seen[0]) << "thread " << t;
    EXPECT_GT(seen[0], 0.0);
}

TEST(SweepRunnerThreads, RepeatedCallsOnOneRunnerStayStable)
{
    // The alone-IPC cache fills on the first call; the second call hits
    // it. Both paths must produce the same mean weighted speedup.
    SweepRunner runner(tinyKnobs(4));
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    double first = runner.meanWs(g, s);
    double second = runner.meanWs(g, s);
    EXPECT_EQ(first, second);
}
