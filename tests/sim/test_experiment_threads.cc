/**
 * @file
 * Deterministic-threading tests for SweepRunner: the worker pool
 * (src/sim/experiment.cc) must be a pure parallelization — per-mix
 * seeds are fixed, results land in per-mix slots, and the alone-IPC
 * cache is guarded by a mutex — so the thread count must not change
 * any result bit.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace hira;

namespace {

BenchKnobs
tinyKnobs(int threads)
{
    BenchKnobs k;
    k.mixes = 4;
    k.cycles = 12000;
    k.warmup = 3000;
    k.rows = 64;
    k.threads = threads;
    return k;
}

} // namespace

TEST(SweepRunnerThreads, BaselineMeanWsIdenticalOneVsFourThreads)
{
    SweepRunner serial(tinyKnobs(1));
    SweepRunner pooled(tinyKnobs(4));
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the summation order over mixes
    // is fixed by index, so even a low-bit reduction-order divergence
    // is a scheduling leak and must fail.
    EXPECT_EQ(serial.meanWs(g, s), pooled.meanWs(g, s));
}

TEST(SweepRunnerThreads, HiraMcMeanWsAndStatsIdenticalOneVsFourThreads)
{
    SweepRunner serial(tinyKnobs(1));
    SweepRunner pooled(tinyKnobs(4));
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::HiraMc;
    s.slackN = 2;
    EXPECT_EQ(serial.meanWs(g, s), pooled.meanWs(g, s));

    const RefreshStats &a = serial.lastRefreshStats();
    const RefreshStats &b = pooled.lastRefreshStats();
    EXPECT_EQ(a.refCommands, b.refCommands);
    EXPECT_EQ(a.rowRefreshes, b.rowRefreshes);
    EXPECT_EQ(a.accessPaired, b.accessPaired);
    EXPECT_EQ(a.refreshPaired, b.refreshPaired);
    EXPECT_EQ(a.standalone, b.standalone);
    EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
}

TEST(SweepRunnerThreads, RepeatedCallsOnOneRunnerStayStable)
{
    // The alone-IPC cache fills on the first call; the second call hits
    // it. Both paths must produce the same mean weighted speedup.
    SweepRunner runner(tinyKnobs(4));
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    double first = runner.meanWs(g, s);
    double second = runner.meanWs(g, s);
    EXPECT_EQ(first, second);
}
