/**
 * @file
 * Integration tests of the full system: determinism, refresh-scheme
 * ordering (NoRefresh >= HiRA >= Baseline at high capacity), PARA
 * overheads, weighted speedup, and full-system trace audits.
 */

#include <gtest/gtest.h>

#include "dram/timing_checker.hh"
#include "sim/experiment.hh"

using namespace hira;

namespace {

constexpr Cycle kWarm = 20000;
constexpr Cycle kRun = 60000;

WorkloadMix
memHeavyMix()
{
    return {"mcf-like", "libquantum-like", "lbm-like", "gems-like",
            "soplex-like", "milc-like", "leslie3d-like", "omnetpp-like"};
}

double
sumIpc(const std::vector<double> &ipc)
{
    double s = 0.0;
    for (double v : ipc)
        s += v;
    return s;
}

RunResult
quickRun(const GeomSpec &g, const SchemeSpec &s, const WorkloadMix &mix,
         std::uint64_t seed = 77)
{
    return runOne(makeSystemConfig(g, s, mix, seed), kWarm, kRun);
}

} // namespace

TEST(SystemSim, DeterministicAcrossRuns)
{
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    RunResult a = quickRun(g, s, memHeavyMix());
    RunResult b = quickRun(g, s, memHeavyMix());
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_DOUBLE_EQ(a.ipc[i], b.ipc[i]);
}

TEST(SystemSim, AllCoresMakeProgress)
{
    GeomSpec g;
    SchemeSpec s;
    RunResult r = quickRun(g, s, memHeavyMix());
    for (double ipc : r.ipc)
        EXPECT_GT(ipc, 0.005);
    EXPECT_GT(r.sys.memReads, 1000u);
}

TEST(SystemSim, RefreshCostsPerformanceAtHighCapacity)
{
    // Fig. 9a's first-order effect: at 128 Gb the baseline pays heavily
    // for tRFC; the ideal No-Refresh system does not.
    GeomSpec g;
    g.capacityGb = 128.0;
    SchemeSpec none, base;
    none.kind = SchemeKind::NoRefresh;
    base.kind = SchemeKind::Baseline;
    double ipc_none = sumIpc(quickRun(g, none, memHeavyMix()).ipc);
    double ipc_base = sumIpc(quickRun(g, base, memHeavyMix()).ipc);
    EXPECT_LT(ipc_base, ipc_none * 0.90);
}

TEST(SystemSim, HiraBeatsBaselineAtHighCapacity)
{
    // The paper's headline (Fig. 9b): HiRA-2 outperforms rank-level REF
    // for high-capacity chips on memory-intensive workloads.
    GeomSpec g;
    g.capacityGb = 128.0;
    SchemeSpec base, hira;
    base.kind = SchemeKind::Baseline;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    double ipc_base = sumIpc(quickRun(g, base, memHeavyMix()).ipc);
    double ipc_hira = sumIpc(quickRun(g, hira, memHeavyMix()).ipc);
    EXPECT_GT(ipc_hira, ipc_base * 1.02);
}

TEST(SystemSim, HiraRefreshRateMatchesSchedule)
{
    GeomSpec g;
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    RunResult r = quickRun(g, hira, memHeavyMix());
    // Expected row refreshes over warmup+run: banks * cycles / interval.
    TimingCycles tc(g.toTiming());
    double interval = static_cast<double>(tc.refi) * 8192.0 /
                      static_cast<double>(g.toGeometry()
                                              .refreshGroupsPerBank);
    double expected =
        static_cast<double>(kWarm + kRun) / interval * 16.0;
    EXPECT_NEAR(static_cast<double>(r.sys.refresh.rowRefreshes), expected,
                expected * 0.15);
    EXPECT_EQ(r.sys.refresh.refCommands, 0u);
}

TEST(SystemSim, ParaSlowsSystemMoreAtLowerNrh)
{
    GeomSpec g;
    SchemeSpec none, p1024, p64;
    none.kind = SchemeKind::Baseline;
    p1024 = none;
    p1024.paraEnabled = true;
    p1024.nrh = 1024.0;
    p64 = p1024;
    p64.nrh = 64.0;
    double ipc_none = sumIpc(quickRun(g, none, memHeavyMix()).ipc);
    double ipc_1024 = sumIpc(quickRun(g, p1024, memHeavyMix()).ipc);
    double ipc_64 = sumIpc(quickRun(g, p64, memHeavyMix()).ipc);
    EXPECT_LT(ipc_1024, ipc_none);
    EXPECT_LT(ipc_64, ipc_1024 * 0.6); // NRH=64 is devastating (Fig. 12)
}

TEST(SystemSim, HiraRecoversParaOverheadAtLowNrh)
{
    // Fig. 12b: HiRA-4 gives a large speedup over plain PARA at NRH=64.
    GeomSpec g;
    SchemeSpec para, hira;
    para.kind = SchemeKind::Baseline;
    para.paraEnabled = true;
    para.nrh = 64.0;
    hira = para;
    hira.preventiveViaHira = true;
    hira.slackN = 4;
    double ipc_para = sumIpc(quickRun(g, para, memHeavyMix()).ipc);
    double ipc_hira = sumIpc(quickRun(g, hira, memHeavyMix()).ipc);
    EXPECT_GT(ipc_hira, ipc_para * 1.2);
}

TEST(SystemSim, WeightedSpeedupMath)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({1.0, 2.0}, {2.0, 2.0}), 1.5);
    EXPECT_DOUBLE_EQ(weightedSpeedup({0.5}, {1.0}), 0.5);
}

TEST(SystemSim, MultiChannelImprovesThroughput)
{
    GeomSpec one, four;
    four.channels = 4;
    SchemeSpec s;
    double ipc1 = sumIpc(quickRun(one, s, memHeavyMix()).ipc);
    double ipc4 = sumIpc(quickRun(four, s, memHeavyMix()).ipc);
    EXPECT_GT(ipc4, ipc1 * 1.3);
}

TEST(SystemSim, FullSystemTracesAuditClean)
{
    // End-to-end protocol audit: every channel's command trace from a
    // full-system run (HiRA periodic + PreventiveRC PARA) is legal.
    GeomSpec g;
    g.channels = 2;
    SchemeSpec s;
    s.kind = SchemeKind::HiraMc;
    s.slackN = 4;
    s.paraEnabled = true;
    s.preventiveViaHira = true;
    s.nrh = 512.0;
    SystemConfig cfg = makeSystemConfig(g, s, memHeavyMix(), 3);
    cfg.recordTraces = true;
    System sys(cfg);
    sys.run(30000);
    TimingChecker checker(cfg.geom, cfg.tp);
    for (int ch = 0; ch < sys.channels(); ++ch) {
        auto violations = checker.check(sys.controller(ch).trace());
        EXPECT_TRUE(violations.empty())
            << "channel " << ch << ": "
            << (violations.empty() ? "" : violations[0].message);
    }
}

TEST(SystemSim, BaselineSystemTraceAuditsClean)
{
    GeomSpec g;
    g.ranks = 2;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    s.paraEnabled = true;
    s.nrh = 256.0;
    SystemConfig cfg = makeSystemConfig(g, s, memHeavyMix(), 4);
    cfg.recordTraces = true;
    System sys(cfg);
    sys.run(30000);
    TimingChecker checker(cfg.geom, cfg.tp);
    auto violations = checker.check(sys.controller(0).trace());
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations[0].message);
}
