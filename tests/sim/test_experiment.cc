/**
 * @file
 * Tests for the experiment-spec layer: spec-to-config wiring (including
 * the slack-adjusted PARA thresholds of §9.1 step 4), labels/keys, and
 * SweepRunner determinism at a tiny scale.
 */

#include <gtest/gtest.h>

#include "security/para_analysis.hh"
#include "sim/experiment.hh"

using namespace hira;

TEST(ExperimentSpec, GeomKeyDistinguishesPoints)
{
    GeomSpec a, b;
    b.capacityGb = 32.0;
    GeomSpec c;
    c.ranks = 4;
    EXPECT_NE(a.key(), b.key());
    EXPECT_NE(a.key(), c.key());
    EXPECT_EQ(a.key(), GeomSpec().key());
}

TEST(ExperimentSpec, SchemeLabels)
{
    SchemeSpec s;
    s.kind = SchemeKind::HiraMc;
    s.slackN = 4;
    EXPECT_EQ(s.label(), "HiRA-4");
    s.paraEnabled = true;
    s.preventiveViaHira = true;
    EXPECT_EQ(s.label(), "HiRA-4+PARA(HiRA)");
    SchemeSpec b;
    b.paraEnabled = true;
    EXPECT_EQ(b.label(), "Baseline+PARA");
}

TEST(ExperimentSpec, GeometryWiring)
{
    GeomSpec g;
    g.capacityGb = 32.0;
    g.channels = 2;
    g.ranks = 4;
    Geometry geom = g.toGeometry();
    EXPECT_EQ(geom.channels, 2);
    EXPECT_EQ(geom.ranksPerChannel, 4);
    EXPECT_EQ(geom.rowsPerBank, 262144u);
    EXPECT_NEAR(g.toTiming().tRFC, TimingParams::scaledRfc(32.0), 1e-9);
}

TEST(ExperimentSpec, ImmediateParaConfigUsesZeroSlackPth)
{
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    s.paraEnabled = true;
    s.nrh = 256.0;
    SystemConfig cfg = makeSystemConfig(g, s, {"gcc-like"}, 1);
    EXPECT_EQ(cfg.scheme, SchemeKind::Baseline);
    EXPECT_TRUE(cfg.para.enabled);
    EXPECT_NEAR(cfg.para.pth, solvePth(256.0, 0.0), 1e-9);
    EXPECT_FALSE(cfg.hira.preventive.enabled);
}

TEST(ExperimentSpec, PreventiveViaHiraUsesSlackAdjustedPth)
{
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline; // periodic stays REF (Fig. 12)
    s.paraEnabled = true;
    s.preventiveViaHira = true;
    s.slackN = 4;
    s.nrh = 128.0;
    SystemConfig cfg = makeSystemConfig(g, s, {"gcc-like"}, 1);
    EXPECT_EQ(cfg.scheme, SchemeKind::HiraMc);
    EXPECT_FALSE(cfg.hira.periodicViaHira);
    EXPECT_TRUE(cfg.hira.preventive.enabled);
    double expect =
        solvePth(128.0, slackActivations(4 * cfg.tp.tRC));
    EXPECT_NEAR(cfg.hira.preventive.pth, expect, 1e-9);
    // The slack-adjusted threshold exceeds the zero-slack one.
    EXPECT_GT(cfg.hira.preventive.pth, solvePth(128.0, 0.0));
    EXPECT_FALSE(cfg.para.enabled);
}

TEST(ExperimentSpec, ElasticPostponeWiring)
{
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    s.refPostpone = 8;
    SystemConfig cfg = makeSystemConfig(g, s, {"gcc-like"}, 1);
    EXPECT_EQ(cfg.refPostpone, 8);
}

TEST(ExperimentSpec, AblationSwitchesWiring)
{
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::HiraMc;
    s.accessPairing = false;
    s.pullAhead = false;
    s.sptIsolation = 0.6;
    SystemConfig cfg = makeSystemConfig(g, s, {"gcc-like"}, 1);
    EXPECT_FALSE(cfg.hira.enableAccessPairing);
    EXPECT_FALSE(cfg.hira.enablePullAhead);
    EXPECT_DOUBLE_EQ(cfg.hira.sptIsolation, 0.6);
}

TEST(ExperimentSpec, SweepRunnerDeterministicTinyScale)
{
    BenchKnobs k;
    k.mixes = 2;
    k.cycles = 15000;
    k.warmup = 5000;
    k.rows = 64;
    k.threads = 1;
    SweepRunner a(k), b(k);
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    EXPECT_DOUBLE_EQ(a.meanWs(g, s), b.meanWs(g, s));
    EXPECT_EQ(a.mixes().size(), 2u);
}

TEST(ExperimentSpec, WeightedSpeedupBounds)
{
    // Shared IPC can never exceed alone IPC per core in a contention
    // model, so WS <= core count; and WS > 0 for any progress.
    BenchKnobs k;
    k.mixes = 1;
    k.cycles = 20000;
    k.warmup = 5000;
    k.threads = 1;
    SweepRunner runner(k);
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    double ws = runner.meanWs(g, s);
    EXPECT_GT(ws, 0.0);
    EXPECT_LT(ws, 8.5);
}
