/**
 * @file
 * Tests for the experiment-spec layer: spec-to-config wiring (including
 * the slack-adjusted PARA thresholds of §9.1 step 4), labels/keys, and
 * SweepRunner determinism at a tiny scale.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "security/para_analysis.hh"
#include "sim/experiment.hh"

using namespace hira;

TEST(ExperimentSpec, GeomKeyDistinguishesPoints)
{
    GeomSpec a, b;
    b.capacityGb = 32.0;
    GeomSpec c;
    c.ranks = 4;
    GeomSpec d;
    d.capacityGb = 8.04; // must not collapse onto 8.0 (%.17g key)
    EXPECT_NE(a.key(), b.key());
    EXPECT_NE(a.key(), c.key());
    EXPECT_NE(a.key(), d.key());
    EXPECT_EQ(a.key(), GeomSpec().key());
}

TEST(ExperimentSpec, GeomKeySeparatesMemoryStandards)
{
    // The DDR4 default keeps the historical key (so the pre-registry
    // golden seeds and alone-IPC cache keys stay valid); any other
    // standard gets its own suffix, hence its own RNG streams and
    // cache slots.
    GeomSpec d4;
    EXPECT_EQ(d4.key(), "c8-ch1-rk1");
    GeomSpec d5;
    d5.standard = "ddr5_4800";
    EXPECT_EQ(d5.key(), "c8-ch1-rk1-sddr5_4800");
    EXPECT_NE(sweepRunSeed(d4.key(), SchemeSpec().seedKey(), 0),
              sweepRunSeed(d5.key(), SchemeSpec().seedKey(), 0));
}

TEST(ExperimentSpec, SchemeLabels)
{
    SchemeSpec s;
    s.kind = SchemeKind::HiraMc;
    s.slackN = 4;
    EXPECT_EQ(s.label(), "HiRA-4");
    s.paraEnabled = true;
    s.preventiveViaHira = true;
    EXPECT_EQ(s.label(), "HiRA-4+PARA(HiRA)");
    SchemeSpec b;
    b.paraEnabled = true;
    EXPECT_EQ(b.label(), "Baseline+PARA");
}

TEST(ExperimentSpec, GeometryWiring)
{
    GeomSpec g;
    g.capacityGb = 32.0;
    g.channels = 2;
    g.ranks = 4;
    Geometry geom = g.toGeometry();
    EXPECT_EQ(geom.channels, 2);
    EXPECT_EQ(geom.ranksPerChannel, 4);
    EXPECT_EQ(geom.rowsPerBank, 262144u);
    EXPECT_NEAR(g.toTiming().tRFC, TimingParams::scaledRfc(32.0), 1e-9);
}

TEST(ExperimentSpec, ImmediateParaConfigUsesZeroSlackPth)
{
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    s.paraEnabled = true;
    s.nrh = 256.0;
    SystemConfig cfg = makeSystemConfig(g, s, {"gcc-like"}, 1);
    EXPECT_EQ(cfg.scheme, SchemeKind::Baseline);
    EXPECT_TRUE(cfg.para.enabled);
    EXPECT_NEAR(cfg.para.pth, solvePth(256.0, 0.0), 1e-9);
    EXPECT_FALSE(cfg.hira.preventive.enabled);
}

TEST(ExperimentSpec, PreventiveViaHiraUsesSlackAdjustedPth)
{
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline; // periodic stays REF (Fig. 12)
    s.paraEnabled = true;
    s.preventiveViaHira = true;
    s.slackN = 4;
    s.nrh = 128.0;
    SystemConfig cfg = makeSystemConfig(g, s, {"gcc-like"}, 1);
    EXPECT_EQ(cfg.scheme, SchemeKind::HiraMc);
    EXPECT_FALSE(cfg.hira.periodicViaHira);
    EXPECT_TRUE(cfg.hira.preventive.enabled);
    double expect =
        solvePth(128.0, slackActivations(4 * cfg.tp.tRC));
    EXPECT_NEAR(cfg.hira.preventive.pth, expect, 1e-9);
    // The slack-adjusted threshold exceeds the zero-slack one.
    EXPECT_GT(cfg.hira.preventive.pth, solvePth(128.0, 0.0));
    EXPECT_FALSE(cfg.para.enabled);
}

TEST(ExperimentSpec, ElasticPostponeWiring)
{
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    s.refPostpone = 8;
    SystemConfig cfg = makeSystemConfig(g, s, {"gcc-like"}, 1);
    EXPECT_EQ(cfg.refPostpone, 8);
}

TEST(ExperimentSpec, AblationSwitchesWiring)
{
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::HiraMc;
    s.accessPairing = false;
    s.pullAhead = false;
    s.sptIsolation = 0.6;
    SystemConfig cfg = makeSystemConfig(g, s, {"gcc-like"}, 1);
    EXPECT_FALSE(cfg.hira.enableAccessPairing);
    EXPECT_FALSE(cfg.hira.enablePullAhead);
    EXPECT_DOUBLE_EQ(cfg.hira.sptIsolation, 0.6);
}

TEST(ExperimentSpec, SweepRunSeedGoldenValues)
{
    // Pinned golden values for the per-run seeding (PR 3): the seed
    // folds geometry key, scheme seedKey(), and mix index, so no two
    // distinct sweep points share per-mix RNG streams.
    // hashString/hashCombine are pure and platform-independent
    // (src/common/rng.hh contract) and seedKey() round-trips doubles
    // with %.17g, so these constants must hold everywhere; changing
    // the seeding scheme is a results-breaking change and must update
    // them.
    GeomSpec g8; // c8-ch1-rk1
    GeomSpec g32;
    g32.capacityGb = 32.0;
    g32.channels = 4; // c32-ch4-rk1
    SchemeSpec base;  // Baseline defaults
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 4; // HiRA-4

    EXPECT_EQ(sweepRunSeed(g8.key(), base.seedKey(), 0),
              0x72aa31c0132305ebULL);
    EXPECT_EQ(sweepRunSeed(g8.key(), base.seedKey(), 1),
              0x9ae0765635c97ce0ULL);
    EXPECT_EQ(sweepRunSeed(g32.key(), hira.seedKey(), 0),
              0xdb04ae1bf281e7d9ULL);
    EXPECT_EQ(sweepRunSeed(g32.key(), hira.seedKey(), 5),
              0xecd98b6eb9805dfaULL);

    // Zoo schemes and the DDR5 standard (PR 9): the registry's seed-key
    // suffixes and the geometry key's standard suffix feed these, so
    // they pin both extension points.
    GeomSpec d5; // c16-ch1-rk1-sddr5_4800
    d5.standard = "ddr5_4800";
    d5.capacityGb = 16.0;
    SchemeSpec rfm;
    rfm.kind = SchemeKind::Rfm;
    SchemeSpec prac;
    prac.kind = SchemeKind::Prac;
    SchemeSpec trr;
    trr.kind = SchemeKind::Graphene;
    EXPECT_EQ(sweepRunSeed(g8.key(), rfm.seedKey(), 0),
              0x7e7c4b19108796e2ULL);
    EXPECT_EQ(sweepRunSeed(d5.key(), prac.seedKey(), 0),
              0x2c546b0a162ebefdULL);
    EXPECT_EQ(sweepRunSeed(d5.key(), trr.seedKey(), 3),
              0xaa9922a0e6ff55a2ULL);
    EXPECT_EQ(sweepRunSeed(d5.key(), base.seedKey(), 0),
              0x5adc4089828c2946ULL);
}

TEST(ExperimentSpec, SweepRunSeedDistinguishesEveryAxis)
{
    GeomSpec g;
    GeomSpec g2;
    g2.channels = 2;
    SchemeSpec base;
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;

    std::uint64_t s = sweepRunSeed(g.key(), base.seedKey(), 0);
    EXPECT_NE(s, sweepRunSeed(g2.key(), base.seedKey(), 0)); // geometry
    EXPECT_NE(s, sweepRunSeed(g.key(), hira.seedKey(), 0));  // scheme
    EXPECT_NE(s, sweepRunSeed(g.key(), base.seedKey(), 1));  // mix index
}

TEST(ExperimentSpec, SeedKeySeparatesPointsThatShareALabel)
{
    // The fig12/15/16 grids: every HiRA-served PARA point has
    // label "Baseline+PARA(HiRA)" regardless of threshold or slack.
    // seedKey() must still separate them (and the ablation switches),
    // or all those sweep points reuse identical RNG streams.
    SchemeSpec a;
    a.paraEnabled = true;
    a.preventiveViaHira = true;
    a.nrh = 1024.0;
    a.slackN = 2;

    SchemeSpec b = a;
    b.nrh = 64.0; // different threshold, same label
    EXPECT_EQ(a.label(), b.label());
    EXPECT_NE(a.seedKey(), b.seedKey());

    SchemeSpec c = a;
    c.slackN = 8; // different slack, same label
    EXPECT_EQ(a.label(), c.label());
    EXPECT_NE(a.seedKey(), c.seedKey());

    SchemeSpec d = a;
    d.accessPairing = false; // ablation switch, label unchanged
    EXPECT_EQ(a.label(), d.label());
    EXPECT_NE(a.seedKey(), d.seedKey());

    SchemeSpec e;
    SchemeSpec f;
    f.refPostpone = 8; // elastic postponement, label unchanged
    EXPECT_EQ(e.label(), f.label());
    EXPECT_NE(e.seedKey(), f.seedKey());
}

TEST(ExperimentSpec, SeedKeySeparatesZooKnobs)
{
    // The zoo schemes' knobs live outside the base seedKey() fields;
    // the registry's per-scheme suffix must separate them, or an RFM
    // RAAIMT sweep (etc.) would reuse one RNG stream for every point.
    SchemeSpec rfm;
    rfm.kind = SchemeKind::Rfm;
    SchemeSpec rfm2 = rfm;
    rfm2.raaimt = 64;
    EXPECT_EQ(rfm.label(), rfm2.label());
    EXPECT_NE(rfm.seedKey(), rfm2.seedKey());

    SchemeSpec prac;
    prac.kind = SchemeKind::Prac;
    SchemeSpec prac2 = prac;
    prac2.pracThreshold = 512;
    EXPECT_EQ(prac.label(), prac2.label());
    EXPECT_NE(prac.seedKey(), prac2.seedKey());

    SchemeSpec trr;
    trr.kind = SchemeKind::Graphene;
    SchemeSpec trr2 = trr;
    trr2.trackerSize = 32;
    EXPECT_EQ(trr.label(), trr2.label());
    EXPECT_NE(trr.seedKey(), trr2.seedKey());

    // Legacy schemes keep suffix-free keys: the pre-registry golden
    // seeds depend on it.
    SchemeSpec base;
    EXPECT_EQ(base.seedKey().find("-raaimt"), std::string::npos);
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    EXPECT_EQ(hira.seedKey().find("-trk"), std::string::npos);
}

TEST(ExperimentSpec, WeightedSpeedupRejectsDegenerateAloneIpc)
{
    // A zero alone-IPC (e.g. an instantly-exhausted "file:" trace)
    // must fail fast with a diagnostic, not return inf/NaN.
    std::vector<double> shared = {0.5, 0.5};
    std::vector<double> zero = {1.0, 0.0};
    EXPECT_EXIT(weightedSpeedup(shared, zero, "mix 7 on c8-ch1-rk1"),
                ::testing::ExitedWithCode(1),
                "mix 7 on c8-ch1-rk1.*ipc_alone\\[1\\].*not a "
                "positive finite IPC");
    std::vector<double> nan = {std::nan(""), 1.0};
    EXPECT_EXIT(weightedSpeedup(shared, nan),
                ::testing::ExitedWithCode(1), "ipc_alone\\[0\\]");
    // Healthy inputs still work.
    std::vector<double> alone = {1.0, 0.5};
    EXPECT_DOUBLE_EQ(weightedSpeedup(shared, alone), 1.5);
}

TEST(ExperimentSpec, RunPointsMatchesSerialMeanWsLoop)
{
    // The sharded plan executor must be bitwise identical to the old
    // serial per-point meanWs loop at the same seeds.
    BenchKnobs k;
    k.mixes = 2;
    k.cycles = 12000;
    k.warmup = 3000;
    k.rows = 64;
    k.threads = 2;

    std::vector<SweepPoint> plan;
    for (int ch : {1, 2}) {
        for (int slack : {-1, 2}) {
            SweepPoint p;
            p.geom.channels = ch;
            if (slack < 0) {
                p.scheme.kind = SchemeKind::Baseline;
            } else {
                p.scheme.kind = SchemeKind::HiraMc;
                p.scheme.slackN = slack;
            }
            plan.push_back(p);
        }
    }

    SweepRunner serial(k);
    std::vector<double> expect;
    for (const SweepPoint &p : plan)
        expect.push_back(serial.meanWs(p.geom, p.scheme));

    SweepRunner planned(k);
    std::vector<PointResult> got = planned.runPoints(plan);
    ASSERT_EQ(got.size(), plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i)
        EXPECT_EQ(got[i].meanWs, expect[i]) << "point " << i;

    // lastRefreshStats() reflects the final plan point, matching what
    // a trailing meanWs call would have left behind.
    EXPECT_EQ(planned.lastRefreshStats().rowRefreshes,
              serial.lastRefreshStats().rowRefreshes);
}

TEST(ExperimentSpec, RunPointsEmptyPlanIsANoOp)
{
    BenchKnobs k;
    k.mixes = 1;
    k.threads = 1;
    SweepRunner runner(k);
    EXPECT_TRUE(runner.runPoints({}).empty());
    EXPECT_EQ(runner.aloneRunCount(), 0u);
}

TEST(ExperimentSpec, SweepRunnerDeterministicTinyScale)
{
    BenchKnobs k;
    k.mixes = 2;
    k.cycles = 15000;
    k.warmup = 5000;
    k.rows = 64;
    k.threads = 1;
    SweepRunner a(k), b(k);
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    EXPECT_DOUBLE_EQ(a.meanWs(g, s), b.meanWs(g, s));
    EXPECT_EQ(a.mixes().size(), 2u);
}

TEST(ExperimentSpec, WeightedSpeedupBounds)
{
    // Shared IPC can never exceed alone IPC per core in a contention
    // model, so WS <= core count; and WS > 0 for any progress.
    BenchKnobs k;
    k.mixes = 1;
    k.cycles = 20000;
    k.warmup = 5000;
    k.threads = 1;
    SweepRunner runner(k);
    GeomSpec g;
    SchemeSpec s;
    s.kind = SchemeKind::Baseline;
    double ws = runner.meanWs(g, s);
    EXPECT_GT(ws, 0.0);
    EXPECT_LT(ws, 8.5);
}
