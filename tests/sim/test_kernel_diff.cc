/**
 * @file
 * Differential suite for the two simulation kernels: the specialized
 * (devirtualized per-scheme) kernel must reproduce the generic virtual
 * oracle bitwise at the SystemResult level — every IPC double, every
 * command/refresh counter — across refresh schemes (Baseline, elastic
 * Baseline, NoRefresh, PARA, HiRA-MC in all its modes), both
 * simulation-loop engines, geometries, and workload kinds (synthetic,
 * file-backed, corpus). Also pins the HIRA_KERNEL knob's parsing and
 * the kernel registry's out-of-range SchemeKind panic.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "sim/experiment.hh"
#include "sim/kernel.hh"
#include "sim/trace.hh"
#include "sim/workloads.hh"
#include "workload/corpus.hh"
#include "workload/file_trace.hh"

using namespace hira;

namespace {

constexpr Cycle kWarm = 3000;
constexpr Cycle kRun = 20000;

WorkloadMix
memHeavyMix()
{
    return {"mcf-like", "libquantum-like", "lbm-like", "gems-like"};
}

SystemResult
runKernel(SystemConfig cfg, SimEngine engine, SimKernel kernel,
          Cycle warm, Cycle run)
{
    cfg.engine = engine;
    cfg.kernel = kernel;
    System sys(cfg);
    EXPECT_EQ(sys.kernel(), kernel);
    sys.run(warm);
    sys.resetStats();
    sys.run(run);
    return sys.result();
}

void
expectIdentical(const SystemResult &a, const SystemResult &b,
                const std::string &label)
{
    SCOPED_TRACE(label);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "core " << i;
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWrites, b.memWrites);
    EXPECT_EQ(a.avgReadLatencyCycles, b.avgReadLatencyCycles);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);

    EXPECT_EQ(a.controller.readsServed, b.controller.readsServed);
    EXPECT_EQ(a.controller.writesServed, b.controller.writesServed);
    EXPECT_EQ(a.controller.readLatencySum, b.controller.readLatencySum);
    EXPECT_EQ(a.controller.forwards, b.controller.forwards);
    EXPECT_EQ(a.controller.acts, b.controller.acts);
    EXPECT_EQ(a.controller.pres, b.controller.pres);
    EXPECT_EQ(a.controller.refs, b.controller.refs);
    EXPECT_EQ(a.controller.hiraOps, b.controller.hiraOps);
    EXPECT_EQ(a.controller.rejectedRequests, b.controller.rejectedRequests);

    EXPECT_EQ(a.refresh.refCommands, b.refresh.refCommands);
    EXPECT_EQ(a.refresh.rowRefreshes, b.refresh.rowRefreshes);
    EXPECT_EQ(a.refresh.accessPaired, b.refresh.accessPaired);
    EXPECT_EQ(a.refresh.refreshPaired, b.refresh.refreshPaired);
    EXPECT_EQ(a.refresh.standalone, b.refresh.standalone);
    EXPECT_EQ(a.refresh.deadlineMisses, b.refresh.deadlineMisses);
    EXPECT_EQ(a.refresh.preventiveGenerated, b.refresh.preventiveGenerated);
    EXPECT_EQ(a.refresh.preventiveDropped, b.refresh.preventiveDropped);
}

/** Generic oracle vs specialized kernel, under both loop engines. */
void
expectKernelsAgree(const SystemConfig &cfg, const std::string &label,
                   Cycle warm = kWarm, Cycle run = kRun)
{
    for (SimEngine engine :
         {SimEngine::CycleLoop, SimEngine::EventLoop}) {
        std::string tag =
            label + " (" + simEngineName(engine) + " engine)";
        SystemResult gen =
            runKernel(cfg, engine, SimKernel::Generic, warm, run);
        SystemResult spec =
            runKernel(cfg, engine, SimKernel::Specialized, warm, run);
        expectIdentical(gen, spec, tag);
    }
}

SystemConfig
makeConfig(const SchemeSpec &scheme, const WorkloadMix &mix,
           const GeomSpec &geom = GeomSpec{}, std::uint64_t seed = 99)
{
    return makeSystemConfig(geom, scheme, mix, seed);
}

} // namespace

TEST(KernelDiff, BaselineSchemes)
{
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectKernelsAgree(makeConfig(base, memHeavyMix()), "baseline");

    SchemeSpec elastic = base;
    elastic.refPostpone = 4;
    expectKernelsAgree(makeConfig(elastic, memHeavyMix()),
                       "baseline+postpone4");

    SchemeSpec none;
    none.kind = SchemeKind::NoRefresh;
    expectKernelsAgree(makeConfig(none, memHeavyMix()), "norefresh");
}

TEST(KernelDiff, ImmediatePara)
{
    // PARA lives in the controller, not the scheme; the specialized
    // Baseline kernel must leave its sampling sequence untouched.
    SchemeSpec para;
    para.kind = SchemeKind::Baseline;
    para.paraEnabled = true;
    para.nrh = 256.0;
    expectKernelsAgree(makeConfig(para, memHeavyMix()), "baseline+para");
}

TEST(KernelDiff, HiraMcModes)
{
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    expectKernelsAgree(makeConfig(hira, memHeavyMix()), "hira-2");

    // PreventiveRC at a devastating threshold: deep PR-FIFOs, drops.
    SchemeSpec prc = hira;
    prc.slackN = 4;
    prc.paraEnabled = true;
    prc.preventiveViaHira = true;
    prc.nrh = 64.0;
    expectKernelsAgree(makeConfig(prc, memHeavyMix()),
                       "hira-4+para(hira)");

    // Periodic refresh on conventional REF, only preventive via HiRA
    // (Section 9.2): exercises the internal BaselineRefresh engine
    // inside HiraMc — which the specialized kernel must still reach
    // through HiraMc::tick, never directly.
    SchemeSpec split;
    split.kind = SchemeKind::Baseline;
    split.paraEnabled = true;
    split.preventiveViaHira = true;
    split.slackN = 2;
    split.nrh = 512.0;
    expectKernelsAgree(makeConfig(split, memHeavyMix()),
                       "ref-periodic+hira-preventive");
}

TEST(KernelDiff, MitigationZoo)
{
    // Aggressive knobs so every scheme's trigger path fires within the
    // 20k-cycle run: RAAIMT crossings, PRAC threshold hits, and
    // Graphene TRR selections all happen many times.
    SchemeSpec rfm;
    rfm.kind = SchemeKind::Rfm;
    rfm.raaimt = 16;
    expectKernelsAgree(makeConfig(rfm, memHeavyMix()), "rfm-16");

    SchemeSpec prac;
    prac.kind = SchemeKind::Prac;
    prac.pracThreshold = 32;
    expectKernelsAgree(makeConfig(prac, memHeavyMix()), "prac-32");

    SchemeSpec graphene;
    graphene.kind = SchemeKind::Graphene;
    graphene.trackerSize = 8;
    graphene.nrh = 64.0; // registry sizes the MG threshold as nrh/4
    expectKernelsAgree(makeConfig(graphene, memHeavyMix()),
                       "graphene-trk8");
}

TEST(KernelDiff, MitigationZooOnDdr5)
{
    // The zoo on DDR5-4800 timings: different tREFI/tRC change every
    // trigger cadence, so the specialized kernels must agree on both
    // standards, not just the DDR4 default.
    GeomSpec ddr5;
    ddr5.standard = "ddr5_4800";
    ddr5.capacityGb = 16.0;

    SchemeSpec rfm;
    rfm.kind = SchemeKind::Rfm;
    rfm.raaimt = 16;
    expectKernelsAgree(makeConfig(rfm, memHeavyMix(), ddr5),
                       "rfm-16 ddr5");

    SchemeSpec graphene;
    graphene.kind = SchemeKind::Graphene;
    graphene.trackerSize = 8;
    graphene.nrh = 64.0;
    expectKernelsAgree(makeConfig(graphene, memHeavyMix(), ddr5),
                       "graphene-trk8 ddr5");
}

TEST(KernelDiff, WideGeometry)
{
    GeomSpec wide;
    wide.channels = 2;
    wide.ranks = 2;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectKernelsAgree(makeConfig(base, memHeavyMix(), wide),
                       "baseline 2ch2rk");

    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    expectKernelsAgree(makeConfig(hira, memHeavyMix(), wide),
                       "hira-2 2ch2rk");
}

TEST(KernelDiff, KnobParsing)
{
    ::setenv("HIRA_KERNEL", "generic", 1);
    EXPECT_EQ(defaultSimKernel(), SimKernel::Generic);
    ::setenv("HIRA_KERNEL", "specialized", 1);
    EXPECT_EQ(defaultSimKernel(), SimKernel::Specialized);
    // Unknown values warn once and fall back to the default.
    ::setenv("HIRA_KERNEL", "bogus", 1);
    EXPECT_EQ(defaultSimKernel(), SimKernel::Specialized);
    ::unsetenv("HIRA_KERNEL");
    EXPECT_EQ(defaultSimKernel(), SimKernel::Specialized);

    EXPECT_STREQ(simKernelName(SimKernel::Generic), "generic");
    EXPECT_STREQ(simKernelName(SimKernel::Specialized), "specialized");
}

TEST(KernelDiffDeath, OutOfRangeSchemeKindPanics)
{
    // The kind keys a static_cast on the specialized hot path, so an
    // unmapped value must die before any run loop — under either
    // kernel flavor.
    EXPECT_DEATH(kernelVariantFor(static_cast<SchemeKind>(99),
                                  SimKernel::Specialized),
                 "kernel registry");
    EXPECT_DEATH(kernelVariantFor(static_cast<SchemeKind>(99),
                                  SimKernel::Generic),
                 "kernel registry");
}

namespace {

/** Temp-dir fixture providing recorded trace files and a corpus. */
class KernelDiffFiles : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("HIRA_CORPUS");
        Corpus::setActive(nullptr);
        std::string templ = "/tmp/hira_kernel_diff.XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();

        const std::vector<std::pair<std::string, TraceFormat>> traces = {
            {"mcf-like", TraceFormat::Text},
            {"libquantum-like", TraceFormat::Binary},
            {"gcc-like", TraceFormat::Text},
            {"h264-like", TraceFormat::Binary},
        };
        std::vector<CorpusEntry> entries;
        for (const auto &t : traces) {
            CorpusEntry e;
            e.name = t.first;
            e.format = t.second;
            e.file = e.name + (t.second == TraceFormat::Binary
                                   ? ".bin"
                                   : ".trace");
            e.instructions = 6000;
            const BenchmarkProfile &prof = benchmarkByName(e.name);
            TraceGen gen(prof, hashString(e.name), 0, 1 << 26);
            dumpTrace(gen, dir + "/" + e.file, e.format, e.instructions);
            files.push_back(dir + "/" + e.file);
            e.mpki = classifyApki(1000.0 * prof.memPerInstr);
            entries.push_back(std::move(e));
        }
        writeManifest(dir, entries, /*also_json=*/false);
        files.push_back(dir + "/manifest.tsv");
    }

    void
    TearDown() override
    {
        Corpus::setActive(nullptr);
        for (const std::string &f : files)
            ::unlink(f.c_str());
        ::rmdir(dir.c_str());
    }

    std::string dir;
    std::vector<std::string> files;
};

} // namespace

TEST_F(KernelDiffFiles, FileBackedMixes)
{
    WorkloadMix mix = {"file:" + dir + "/mcf-like.trace",
                       "file:" + dir + "/libquantum-like.bin",
                       "gcc-like", "h264-like"};
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectKernelsAgree(makeConfig(base, mix), "file mix baseline");

    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    expectKernelsAgree(makeConfig(hira, mix), "file mix hira-2");
}

TEST_F(KernelDiffFiles, CorpusMixes)
{
    Corpus::setActive(std::make_shared<const Corpus>(Corpus::load(dir)));
    WorkloadMix mix = {"corpus:mcf-like", "corpus:libquantum-like",
                       "corpus:gcc-like", "corpus:h264-like"};
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectKernelsAgree(makeConfig(base, mix), "corpus mix baseline");

    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    expectKernelsAgree(makeConfig(hira, mix), "corpus mix hira-2");
}

TEST_F(KernelDiffFiles, ExhaustedOnceTraces)
{
    // ?once traces run dry early; the specialized kernel must drive the
    // exhausted-run fast-forward exactly like the oracle.
    WorkloadMix mix = {"file:" + dir + "/mcf-like.trace?once",
                       "file:" + dir + "/gcc-like.trace?once"};
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectKernelsAgree(makeConfig(base, mix), "exhausted once traces",
                       /*warm=*/1000, /*run=*/60000);
}

TEST(KernelDiff, RepeatedRunsInterleaveWithResetStats)
{
    // run/resetStats/run sequences (the warmup protocol) must agree
    // across kernels; the kernelTag_ dispatch happens per run() call.
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 4;
    SystemConfig cfg = makeConfig(hira, memHeavyMix());

    auto sequence = [&cfg](SimKernel kernel) {
        SystemConfig c = cfg;
        c.engine = SimEngine::EventLoop;
        c.kernel = kernel;
        System sys(c);
        sys.run(2000);
        sys.resetStats();
        sys.run(8000);
        sys.resetStats();
        sys.run(8000);
        return sys.result();
    };
    expectIdentical(sequence(SimKernel::Generic),
                    sequence(SimKernel::Specialized), "double reset");
}
