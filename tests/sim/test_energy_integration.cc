/**
 * @file
 * Integration of the energy model with full-system runs: refresh-energy
 * attribution across schemes behaves as the §5.2 power discussion
 * implies (HiRA exchanges REF bursts for row activations of the same
 * order; No-Refresh spends nothing on refresh).
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "sim/experiment.hh"

using namespace hira;

namespace {

EnergyBreakdown
runAndAttribute(SchemeKind kind, double capacity, int slack = 2)
{
    GeomSpec g;
    g.capacityGb = capacity;
    SchemeSpec s;
    s.kind = kind;
    s.slackN = slack;
    WorkloadMix mix = {"mcf-like", "libquantum-like", "gcc-like",
                       "lbm-like", "h264-like", "milc-like",
                       "omnetpp-like", "astar-like"};
    RunResult r = runOne(makeSystemConfig(g, s, mix, 31), 10000, 40000);
    EnergyModel em(g.toTiming());
    return em.attribute(r.sys.controller, r.sys.refresh, 1, 50000);
}

} // namespace

TEST(EnergyIntegration, NoRefreshSpendsNothingOnRefresh)
{
    EnergyBreakdown e = runAndAttribute(SchemeKind::NoRefresh, 32.0);
    EXPECT_DOUBLE_EQ(e.refNj, 0.0);
    EXPECT_DOUBLE_EQ(e.refreshNj, 0.0);
    EXPECT_GT(e.totalNj(), 0.0);
}

TEST(EnergyIntegration, BaselineRefreshEnergyIsRefBursts)
{
    EnergyBreakdown e = runAndAttribute(SchemeKind::Baseline, 32.0);
    EXPECT_GT(e.refNj, 0.0);
    EXPECT_DOUBLE_EQ(e.refreshNj, e.refNj);
}

TEST(EnergyIntegration, HiraRefreshEnergyIsActivations)
{
    EnergyBreakdown e = runAndAttribute(SchemeKind::HiraMc, 32.0);
    EXPECT_DOUBLE_EQ(e.refNj, 0.0); // no REF commands under HiRA periodic
    EXPECT_GT(e.refreshNj, 0.0);
}

TEST(EnergyIntegration, SameOrderRefreshEnergyAcrossSchemes)
{
    // §5.2's implicit claim: HiRA stays within the activation power
    // budget; its refresh energy is the same order as REF's.
    EnergyBreakdown base = runAndAttribute(SchemeKind::Baseline, 32.0);
    EnergyBreakdown hira = runAndAttribute(SchemeKind::HiraMc, 32.0);
    EXPECT_GT(hira.refreshNj, base.refreshNj * 0.1);
    EXPECT_LT(hira.refreshNj, base.refreshNj * 10.0);
}

TEST(EnergyIntegration, RefreshEnergyGrowsWithCapacity)
{
    EnergyBreakdown small = runAndAttribute(SchemeKind::Baseline, 8.0);
    EnergyBreakdown big = runAndAttribute(SchemeKind::Baseline, 128.0);
    EXPECT_GT(big.refreshNj, small.refreshNj);
}
