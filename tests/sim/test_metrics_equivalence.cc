/**
 * @file
 * The observability no-perturbation contract: instrumentation only
 * *reads* simulator state, so SystemResult must be bitwise identical —
 * every IPC double, every command/refresh counter — with HIRA_METRICS
 * off and full, across refresh schemes and both simulation-loop
 * engines, and with trace-event emission enabled. Also sanity-checks
 * the snapshot mirrors against the stats structs they mirror, and the
 * measurement-interval scoping of RunResult::metrics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <stdlib.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/trace_events.hh"
#include "sim/experiment.hh"

using namespace hira;

namespace {

constexpr Cycle kWarm = 2000;
constexpr Cycle kRun = 15000;

WorkloadMix
mix4()
{
    return {"mcf-like", "libquantum-like", "gcc-like", "h264-like"};
}

SystemResult
runAtLevel(SystemConfig cfg, MetricsLevel level, SimEngine engine,
           MetricsSnapshot *snap = nullptr, SimLoopStats *loop = nullptr)
{
    cfg.metricsLevel = level;
    cfg.engine = engine;
    System sys(cfg);
    sys.run(kWarm);
    sys.resetStats();
    sys.run(kRun);
    if (snap != nullptr)
        *snap = sys.metricsSnapshot();
    if (loop != nullptr)
        *loop = sys.loopStats();
    return sys.result();
}

void
expectIdentical(const SystemResult &a, const SystemResult &b,
                const std::string &label)
{
    SCOPED_TRACE(label);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "core " << i;
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWrites, b.memWrites);
    EXPECT_EQ(a.avgReadLatencyCycles, b.avgReadLatencyCycles);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);

    EXPECT_EQ(a.controller.readsServed, b.controller.readsServed);
    EXPECT_EQ(a.controller.writesServed, b.controller.writesServed);
    EXPECT_EQ(a.controller.readLatencySum, b.controller.readLatencySum);
    EXPECT_EQ(a.controller.forwards, b.controller.forwards);
    EXPECT_EQ(a.controller.acts, b.controller.acts);
    EXPECT_EQ(a.controller.pres, b.controller.pres);
    EXPECT_EQ(a.controller.refs, b.controller.refs);
    EXPECT_EQ(a.controller.hiraOps, b.controller.hiraOps);
    EXPECT_EQ(a.controller.rejectedRequests, b.controller.rejectedRequests);

    EXPECT_EQ(a.refresh.refCommands, b.refresh.refCommands);
    EXPECT_EQ(a.refresh.rowRefreshes, b.refresh.rowRefreshes);
    EXPECT_EQ(a.refresh.accessPaired, b.refresh.accessPaired);
    EXPECT_EQ(a.refresh.refreshPaired, b.refresh.refreshPaired);
    EXPECT_EQ(a.refresh.standalone, b.refresh.standalone);
    EXPECT_EQ(a.refresh.deadlineMisses, b.refresh.deadlineMisses);
    EXPECT_EQ(a.refresh.preventiveGenerated, b.refresh.preventiveGenerated);
    EXPECT_EQ(a.refresh.preventiveDropped, b.refresh.preventiveDropped);
}

void
expectLevelsAgree(const SystemConfig &cfg, const std::string &label)
{
    for (SimEngine engine : {SimEngine::CycleLoop, SimEngine::EventLoop}) {
        const char *ename =
            engine == SimEngine::CycleLoop ? "cycle" : "event";
        SystemResult off = runAtLevel(cfg, MetricsLevel::Off, engine);
        SystemResult full = runAtLevel(cfg, MetricsLevel::Full, engine);
        expectIdentical(off, full, label + " off-vs-full " + ename);
        SystemResult ctrs = runAtLevel(cfg, MetricsLevel::Counters, engine);
        expectIdentical(off, ctrs, label + " off-vs-counters " + ename);
    }
}

SystemConfig
makeConfig(const SchemeSpec &scheme, std::uint64_t seed = 99)
{
    return makeSystemConfig(GeomSpec{}, scheme, mix4(), seed);
}

} // namespace

TEST(MetricsEquivalence, BaselineSchemes)
{
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    expectLevelsAgree(makeConfig(base), "baseline");

    SchemeSpec none;
    none.kind = SchemeKind::NoRefresh;
    expectLevelsAgree(makeConfig(none), "norefresh");
}

TEST(MetricsEquivalence, ParaSchemes)
{
    // Preventive refreshes draw from the per-run RNG: the strongest
    // perturbation detector, since any instrumentation that consumed
    // randomness or reordered commands would shift every PARA draw.
    SchemeSpec para;
    para.kind = SchemeKind::Baseline;
    para.paraEnabled = true;
    para.nrh = 256.0;
    expectLevelsAgree(makeConfig(para), "baseline+para");
}

TEST(MetricsEquivalence, HiraMcSchemes)
{
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    expectLevelsAgree(makeConfig(hira), "hira-2");

    // PreventiveRC with drops: exercises the PR-FIFO depth histogram
    // and the preventive_dropped mirror on a config that actually drops.
    SchemeSpec prc = hira;
    prc.slackN = 4;
    prc.paraEnabled = true;
    prc.preventiveViaHira = true;
    prc.nrh = 64.0;
    expectLevelsAgree(makeConfig(prc), "hira-4+para(hira)");
}

TEST(MetricsEquivalence, HoldsUnderGenericKernel)
{
    // The suite above runs under the default (specialized) kernel; the
    // no-perturbation contract must hold on the generic virtual oracle
    // too, and the metrics level must not perturb results *across*
    // kernels either (full/generic vs off/specialized).
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    SystemConfig cfg = makeConfig(hira);
    cfg.kernel = SimKernel::Generic;
    expectLevelsAgree(cfg, "hira-2 generic kernel");

    SystemConfig spec = makeConfig(hira);
    spec.kernel = SimKernel::Specialized;
    expectIdentical(
        runAtLevel(cfg, MetricsLevel::Full, SimEngine::EventLoop),
        runAtLevel(spec, MetricsLevel::Off, SimEngine::EventLoop),
        "full/generic vs off/specialized");
}

TEST(MetricsEquivalence, TracingDoesNotPerturbResults)
{
    std::string path = strprintf("/tmp/hira_trace_equiv_%d.json",
                                 static_cast<int>(::getpid()));
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    SystemConfig cfg = makeConfig(hira);

    SystemResult untraced =
        runAtLevel(cfg, MetricsLevel::Full, SimEngine::EventLoop);

    TraceEventLog &tlog = TraceEventLog::global();
    tlog.resetForTest(path);
    ASSERT_TRUE(tlog.enabled());
    SystemResult traced =
        runAtLevel(cfg, MetricsLevel::Full, SimEngine::EventLoop);
    EXPECT_GT(tlog.bufferedEvents(), 0u)
        << "tracing enabled but the kernel emitted nothing";
    tlog.flush();
    tlog.resetForTest(std::string());

    expectIdentical(untraced, traced, "traced vs untraced");

    // The flushed file is a Trace Event Format envelope.
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "trace file missing: " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
    in.close();
    ::remove(path.c_str());
}

TEST(MetricsEquivalence, SnapshotMirrorsMatchStats)
{
    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    SystemConfig cfg = makeConfig(hira);

    MetricsSnapshot snap;
    SimLoopStats loop;
    SystemResult res = runAtLevel(cfg, MetricsLevel::Full,
                                  SimEngine::EventLoop, &snap, &loop);
    ASSERT_FALSE(snap.empty());

    auto counterAt = [&snap](const std::string &name) {
        auto it = snap.values.find(name);
        EXPECT_NE(it, snap.values.end()) << "missing metric " << name;
        return it != snap.values.end() ? it->second.count : 0;
    };

    // Kernel mirrors == SimLoopStats.
    EXPECT_EQ(counterAt("kernel.simulated_cycles"), loop.simulatedCycles);
    EXPECT_EQ(counterAt("kernel.executed_cycles"), loop.executedCycles);
    EXPECT_EQ(counterAt("kernel.skipped_cycles"), loop.skippedCycles);
    EXPECT_EQ(counterAt("kernel.ctrl_ticks"), loop.ctrlTicks);

    // Controller + scheme mirrors == the (single-channel) result sums.
    EXPECT_EQ(counterAt("ctrl0.reads_served"), res.controller.readsServed);
    EXPECT_EQ(counterAt("ctrl0.cmd.act"), res.controller.acts);
    EXPECT_EQ(counterAt("ctrl0.cmd.hira"), res.controller.hiraOps);
    EXPECT_EQ(counterAt("ctrl0.scheme.ref_commands"),
              res.refresh.refCommands);
    EXPECT_EQ(counterAt("ctrl0.scheme.preventive_generated"),
              res.refresh.preventiveGenerated);
    EXPECT_EQ(counterAt("ctrl0.scheme.preventive_dropped"),
              res.refresh.preventiveDropped);
    EXPECT_EQ(counterAt("llc.hits"), res.llcHits);
    EXPECT_EQ(counterAt("llc.misses"), res.llcMisses);

    // Live event-kernel metrics exist under Full.
    EXPECT_EQ(snap.values.count("kernel.skip_len"), 1u);
    EXPECT_EQ(snap.values.at("kernel.skip_len").kind,
              MetricValue::Kind::Histogram);
    // PR-FIFO depth histogram is registered under the scheme scope.
    EXPECT_EQ(snap.values.count("ctrl0.scheme.pr_fifo_depth"), 1u);
}

TEST(MetricsEquivalence, OffSnapshotIsEmpty)
{
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    MetricsSnapshot snap;
    runAtLevel(makeConfig(base), MetricsLevel::Off, SimEngine::EventLoop,
               &snap);
    EXPECT_TRUE(snap.empty());
}

TEST(MetricsEquivalence, RunOneScopesMetricsToMeasurement)
{
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    SystemConfig cfg = makeConfig(base);
    cfg.metricsLevel = MetricsLevel::Full;

    RunResult r = runOne(cfg, kWarm, kRun);
    ASSERT_FALSE(r.metrics.empty());
    // The warmup's cycles were diffed away: the simulated-cycle mirror
    // covers exactly the measurement interval.
    EXPECT_EQ(r.metrics.values.at("kernel.simulated_cycles").count, kRun);

    // And the mirrors survive the diff consistently: executed + skipped
    // partition the measured cycles.
    EXPECT_EQ(r.metrics.values.at("kernel.executed_cycles").count +
                  r.metrics.values.at("kernel.skipped_cycles").count,
              kRun);
}

TEST(MetricsEquivalence, RunOneMetricsEmptyWhenOff)
{
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    SystemConfig cfg = makeConfig(base);
    cfg.metricsLevel = MetricsLevel::Off;
    RunResult r = runOne(cfg, kWarm, kRun);
    EXPECT_TRUE(r.metrics.empty());
}
