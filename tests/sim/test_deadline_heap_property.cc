/**
 * @file
 * Property suite for the event kernel's deadline index
 * (src/sim/deadline_heap.hh).
 *
 * Two layers. The heap itself is checked against a brute-force
 * shadow array under long randomized update/lower sequences: the
 * reported minimum, per-slot keys, and min-slot consistency must match
 * at every step. Then the System integration is checked at quiescence:
 * after arbitrary run() quanta, every controller slot must equal that
 * controller's own nextEvent() bound exactly — not just conservatively
 * — across refresh schemes and geometries (including 2ch2rk, where
 * cross-channel writebacks exercise the mid-sweep listener lowering).
 * A key stuck low would only waste polls, but this equality is what
 * makes the O(1) heap-min read in firstActionableCycle() equivalent to
 * the dense per-controller nextEvent() scan it replaced.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sim/deadline_heap.hh"
#include "sim/experiment.hh"

using namespace hira;

namespace {

Cycle
bruteMin(const std::vector<Cycle> &ref)
{
    Cycle m = kNeverCycle;
    for (Cycle k : ref)
        m = std::min(m, k);
    return m;
}

} // namespace

TEST(DeadlineHeap, StartsParkedAtNever)
{
    DeadlineHeap h(5);
    EXPECT_EQ(h.size(), 5u);
    EXPECT_EQ(h.min(), kNeverCycle);
    for (std::size_t s = 0; s < 5; ++s)
        EXPECT_EQ(h.key(s), kNeverCycle);
}

TEST(DeadlineHeap, UpdateRaisesAndLowers)
{
    DeadlineHeap h(3);
    h.update(0, 100);
    h.update(1, 50);
    h.update(2, 75);
    EXPECT_EQ(h.min(), 50u);
    EXPECT_EQ(h.minSlot(), 1u);

    h.update(1, 200); // raise the minimum away
    EXPECT_EQ(h.min(), 75u);
    EXPECT_EQ(h.minSlot(), 2u);

    h.update(0, 10); // lower via update
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.minSlot(), 0u);
}

TEST(DeadlineHeap, LowerNeverRaises)
{
    DeadlineHeap h(2);
    h.update(0, 40);
    h.lower(0, 90); // no-op: lower() only moves keys toward the root
    EXPECT_EQ(h.key(0), 40u);
    h.lower(0, 15);
    EXPECT_EQ(h.key(0), 15u);
    EXPECT_EQ(h.min(), 15u);
}

TEST(DeadlineHeap, SingleSlot)
{
    DeadlineHeap h(1);
    h.update(0, 7);
    EXPECT_EQ(h.min(), 7u);
    h.update(0, kNeverCycle);
    EXPECT_EQ(h.min(), kNeverCycle);
}

TEST(DeadlineHeapProperty, RandomizedOpsTrackShadowArray)
{
    // Several sizes, including non-power-of-two and the 2–3 slots real
    // Systems use. Duplicate keys are common on purpose (range 0..31):
    // ties stress the sift loops' <= / < choices.
    for (std::size_t n : {1u, 2u, 3u, 8u, 17u}) {
        SCOPED_TRACE(n);
        DeadlineHeap h(n);
        std::vector<Cycle> ref(n, kNeverCycle);
        std::mt19937 rng(0xd00d + static_cast<unsigned>(n));
        for (int step = 0; step < 20000; ++step) {
            std::size_t slot = rng() % n;
            Cycle k = (rng() % 8 == 0) ? kNeverCycle : rng() % 32;
            if (rng() % 2 == 0) {
                h.update(slot, k);
                ref[slot] = k;
            } else {
                h.lower(slot, k);
                ref[slot] = std::min(ref[slot], k);
            }
            ASSERT_EQ(h.key(slot), ref[slot]);
            ASSERT_EQ(h.min(), bruteMin(ref));
            // minSlot must actually hold the minimum key (ties may
            // resolve to any tied slot).
            ASSERT_EQ(h.key(h.minSlot()), h.min());
        }
    }
}

namespace {

/**
 * Run the event engine in randomized quanta and, at every quiescent
 * point, compare each controller's heap key against its nextEvent()
 * bound and the heap minimum against the brute-force minimum over
 * components — the exact scan firstActionableCycle() used to perform.
 */
void
runSystemProperty(const SchemeSpec &scheme, const GeomSpec &geom,
                  std::uint64_t seed)
{
    WorkloadMix mix = {"mcf-like", "h264-like", "lbm-like", "namd-like"};
    SystemConfig cfg = makeSystemConfig(geom, scheme, mix, seed);
    cfg.engine = SimEngine::EventLoop;
    System sys(cfg);

    ASSERT_EQ(sys.wakeSlots(),
              static_cast<std::size_t>(sys.channels()) + 1);
    std::mt19937 rng(static_cast<unsigned>(seed));
    for (int step = 0; step < 150; ++step) {
        sys.run(1 + rng() % 97);
        Cycle brute = kNeverCycle;
        for (int ch = 0; ch < sys.channels(); ++ch) {
            Cycle bound = sys.controller(ch).nextEvent();
            ASSERT_EQ(sys.wakeKey(static_cast<std::size_t>(ch)), bound)
                << "channel " << ch << " at cycle " << sys.now();
            brute = std::min(brute, bound);
        }
        // The LLC slot stays parked: outbound backpressure never pins
        // the kernel (see Llc::nextEventCycle's closed-form contract).
        ASSERT_EQ(sys.wakeKey(sys.wakeSlots() - 1), kNeverCycle);
        ASSERT_EQ(sys.wakeMin(), brute);
    }
}

} // namespace

TEST(DeadlineHeapProperty, SystemKeysMatchComponentBounds)
{
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    runSystemProperty(base, GeomSpec{}, 11);

    SchemeSpec none;
    none.kind = SchemeKind::NoRefresh;
    runSystemProperty(none, GeomSpec{}, 12);

    SchemeSpec para = base;
    para.paraEnabled = true;
    para.nrh = 256.0;
    runSystemProperty(para, GeomSpec{}, 13);

    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    runSystemProperty(hira, GeomSpec{}, 14);
}

TEST(DeadlineHeapProperty, SystemKeysMatchOn2ch2rk)
{
    GeomSpec wide;
    wide.channels = 2;
    wide.ranks = 2;
    SchemeSpec base;
    base.kind = SchemeKind::Baseline;
    runSystemProperty(base, wide, 21);

    SchemeSpec hira;
    hira.kind = SchemeKind::HiraMc;
    hira.slackN = 2;
    runSystemProperty(hira, wide, 22);
}
