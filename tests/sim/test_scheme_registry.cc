/**
 * @file
 * Tests for the refresh-scheme registry (sim/scheme_registry.hh): every
 * SchemeKind has exactly one entry, names resolve both ways, the
 * configure hooks wire SchemeSpec knobs into the right SystemConfig
 * blocks, and unknown names die with the known-name list.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/scheme_registry.hh"

using namespace hira;

TEST(SchemeRegistry, EveryKindHasExactlyOneEntry)
{
    std::set<SchemeKind> kinds;
    std::set<std::string> names;
    for (const SchemeRegistryEntry &e : schemeRegistry()) {
        EXPECT_TRUE(kinds.insert(e.kind).second)
            << "duplicate kind for " << e.name;
        EXPECT_TRUE(names.insert(e.name).second)
            << "duplicate name " << e.name;
        EXPECT_NE(e.make, nullptr);
        EXPECT_NE(e.configure, nullptr);
        EXPECT_NE(e.labelBase, nullptr);
        EXPECT_NE(e.seedKeySuffix, nullptr);
    }
    // All six kinds: the legacy three plus the mitigation zoo.
    EXPECT_EQ(schemeRegistry().size(), 6u);
    for (SchemeKind k :
         {SchemeKind::NoRefresh, SchemeKind::Baseline, SchemeKind::HiraMc,
          SchemeKind::Rfm, SchemeKind::Prac, SchemeKind::Graphene})
        EXPECT_EQ(schemeEntryByKind(k).kind, k);
}

TEST(SchemeRegistry, NamesResolveBothWays)
{
    for (const SchemeRegistryEntry &e : schemeRegistry()) {
        EXPECT_EQ(&schemeEntryByName(e.name), &e);
        EXPECT_EQ(schemeSpecByName(e.name).kind, e.kind);
        EXPECT_NE(knownSchemeNames().find(e.name), std::string::npos);
    }
}

TEST(SchemeRegistry, ZooConfigureHooksWireTheirBlocks)
{
    GeomSpec g;
    SchemeSpec rfm = schemeSpecByName("rfm");
    rfm.raaimt = 24;
    SystemConfig cfg = makeSystemConfig(g, rfm, {"gcc-like"}, 1);
    EXPECT_EQ(cfg.scheme, SchemeKind::Rfm);
    EXPECT_EQ(cfg.rfm.raaimt, 24);

    SchemeSpec prac = schemeSpecByName("prac");
    prac.pracThreshold = 48;
    prac.slackN = 6;
    cfg = makeSystemConfig(g, prac, {"gcc-like"}, 1);
    EXPECT_EQ(cfg.scheme, SchemeKind::Prac);
    EXPECT_EQ(cfg.prac.threshold, 48);
    EXPECT_EQ(cfg.prac.slackRc, 6);

    SchemeSpec graphene = schemeSpecByName("graphene");
    graphene.trackerSize = 12;
    graphene.nrh = 400.0;
    cfg = makeSystemConfig(g, graphene, {"gcc-like"}, 1);
    EXPECT_EQ(cfg.scheme, SchemeKind::Graphene);
    EXPECT_EQ(cfg.graphene.trackerSize, 12);
    EXPECT_EQ(cfg.graphene.threshold, 100); // nrh / 4
}

TEST(SchemeRegistry, ZooLabels)
{
    EXPECT_EQ(schemeSpecByName("rfm").label(), "RFM");
    EXPECT_EQ(schemeSpecByName("prac").label(), "PRAC");
    EXPECT_EQ(schemeSpecByName("graphene").label(), "Graphene-TRR");
    // PARA composition suffixes still apply to zoo schemes.
    SchemeSpec s = schemeSpecByName("rfm");
    s.paraEnabled = true;
    EXPECT_EQ(s.label(), "RFM+PARA");
}

TEST(SchemeRegistry, StandardIsStampedIntoSystemConfig)
{
    GeomSpec g;
    g.standard = "ddr5_4800";
    g.capacityGb = 16.0;
    SystemConfig cfg =
        makeSystemConfig(g, schemeSpecByName("baseline"), {"gcc-like"}, 1);
    EXPECT_EQ(cfg.standard, "ddr5_4800");
    EXPECT_DOUBLE_EQ(cfg.tp.tCK, ddr5_4800(16.0).tCK);
}

TEST(SchemeRegistryDeath, UnknownNameIsFatalAndListsTheRegistry)
{
    // A typo in a sweep spec or bench section must never silently fall
    // back to a default scheme; the diagnostic names all six.
    EXPECT_EXIT(schemeEntryByName("graphine"),
                ::testing::ExitedWithCode(1),
                "unknown refresh scheme 'graphine'.*norefresh.*baseline.*"
                "hira.*rfm.*prac.*graphene");
}
