/**
 * @file
 * Tests for the content-addressed result cache (sim/result_cache.hh):
 * golden cache-key strings (the cross-process contract between
 * SweepRunner, hira_sweepd, and its workers), key sensitivity to every
 * behavior-affecting input, exact store/load round trips, LRU-front
 * behavior, read-mode, and rejection of stale/corrupt entries.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <stdlib.h>

#include "sim/result_cache.hh"
#include "workload/corpus.hh"

using namespace hira;

namespace {

/**
 * Pins every environment input of the cache key, so golden strings are
 * stable no matter what the ambient shell exports.
 */
class ResultCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::setenv("HIRA_CACHE_REV", "test", 1);
        ::setenv("HIRA_ENGINE", "event", 1);
        ::setenv("HIRA_KERNEL", "specialized", 1);
        ::unsetenv("HIRA_METRICS");
        ::unsetenv("HIRA_STANDARD");
        ::unsetenv("HIRA_RESULT_CACHE");
        ::unsetenv("HIRA_RESULT_CACHE_MODE");
        ::unsetenv("HIRA_CORPUS");
        Corpus::setActive(nullptr);
        std::string templ = "/tmp/hira_rcache.XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();
    }

    void
    TearDown() override
    {
        Corpus::setActive(nullptr);
        ::unsetenv("HIRA_CACHE_REV");
        ::unsetenv("HIRA_ENGINE");
        ::unsetenv("HIRA_KERNEL");
        std::filesystem::remove_all(dir);
    }

    static BenchKnobs
    knobs()
    {
        BenchKnobs k;
        k.warmup = 3000;
        k.cycles = 12000;
        k.threads = 1;
        return k;
    }

    static std::vector<WorkloadMix>
    mixes()
    {
        return {{"mcf-like", "gcc-like"}};
    }

    static PointResult
    samplePoint()
    {
        PointResult r;
        r.meanWs = 1.0 / 3.0; // not exactly representable in decimal
        r.wallSeconds = 0.125;
        r.simCycles = 15000;
        r.refresh.refCommands = 11;
        r.refresh.rowRefreshes = 22;
        r.refresh.accessPaired = 3;
        r.refresh.refreshPaired = 4;
        r.refresh.standalone = 5;
        r.refresh.deadlineMisses = 6;
        r.refresh.preventiveGenerated = 7;
        r.refresh.preventiveDropped = 8;
        MetricValue c;
        c.kind = MetricValue::Kind::Counter;
        c.count = 42;
        r.metrics.values["ctrl0.reads"] = c;
        MetricValue g;
        g.kind = MetricValue::Kind::Gauge;
        g.value = 0.1 + 0.2; // 0.30000000000000004
        r.metrics.values["ctrl0.util"] = g;
        MetricValue h;
        h.kind = MetricValue::Kind::Histogram;
        h.count = 9;
        h.value = 123.456;
        h.lo = 0.0;
        h.hi = 64.0;
        h.bins = {1, 0, 5, 3};
        r.metrics.values["kernel.skip_len"] = h;
        return r;
    }

    std::string dir;
};

void
expectEqualResults(const PointResult &a, const PointResult &b)
{
    EXPECT_EQ(a.meanWs, b.meanWs);
    EXPECT_EQ(a.wallSeconds, b.wallSeconds);
    EXPECT_EQ(a.simCycles, b.simCycles);
    EXPECT_EQ(a.refresh.refCommands, b.refresh.refCommands);
    EXPECT_EQ(a.refresh.rowRefreshes, b.refresh.rowRefreshes);
    EXPECT_EQ(a.refresh.accessPaired, b.refresh.accessPaired);
    EXPECT_EQ(a.refresh.refreshPaired, b.refresh.refreshPaired);
    EXPECT_EQ(a.refresh.standalone, b.refresh.standalone);
    EXPECT_EQ(a.refresh.deadlineMisses, b.refresh.deadlineMisses);
    EXPECT_EQ(a.refresh.preventiveGenerated,
              b.refresh.preventiveGenerated);
    EXPECT_EQ(a.refresh.preventiveDropped, b.refresh.preventiveDropped);
    ASSERT_EQ(a.metrics.values.size(), b.metrics.values.size());
    for (const auto &kv : a.metrics.values) {
        auto it = b.metrics.values.find(kv.first);
        ASSERT_NE(it, b.metrics.values.end()) << kv.first;
        EXPECT_EQ(static_cast<int>(kv.second.kind),
                  static_cast<int>(it->second.kind));
        EXPECT_EQ(kv.second.count, it->second.count);
        EXPECT_EQ(kv.second.value, it->second.value);
        EXPECT_EQ(kv.second.lo, it->second.lo);
        EXPECT_EQ(kv.second.hi, it->second.hi);
        EXPECT_EQ(kv.second.bins, it->second.bins);
    }
}

} // namespace

TEST_F(ResultCacheTest, GoldenPointKey)
{
    // The canonical key format is a cross-process contract: a format
    // change silently invalidates every existing cache (acceptable,
    // it's a cache) but MUST be a deliberate, reviewed act — hence the
    // full golden string.
    SweepPoint p;
    EXPECT_EQ(p.cacheKey(knobs(), mixes()),
              "hira-point-v1\n"
              "rev=test\n"
              "geom=c8-ch1-rk1\n"
              "standard=ddr4_2400\n"
              "engine=event\n"
              "kernel=specialized\n"
              "metrics=off\n"
              "warmup=3000\n"
              "cycles=12000\n"
              "scheme=k1-n2-post0-pvh1-para0-nrh1024-prev0-ap1-rp1-"
              "pull1-spt0.32000000000000001\n"
              "mixes=1\n"
              "mix0=mcf-like|gcc-like\n");
}

TEST_F(ResultCacheTest, GoldenAloneKey)
{
    GeomSpec g;
    EXPECT_EQ(aloneResultCacheKey("mcf-like", g, knobs()),
              "hira-alone-v1\n"
              "rev=test\n"
              "geom=c8-ch1-rk1\n"
              "standard=ddr4_2400\n"
              "engine=event\n"
              "kernel=specialized\n"
              "metrics=off\n"
              "warmup=3000\n"
              "cycles=12000\n"
              "bench=mcf-like\n");
}

TEST_F(ResultCacheTest, EveryInputChangesThePointKey)
{
    SweepPoint p;
    const std::string base = p.cacheKey(knobs(), mixes());

    SweepPoint geom = p;
    geom.geom.capacityGb = 32.0;
    EXPECT_NE(geom.cacheKey(knobs(), mixes()), base);

    SweepPoint standard = p;
    standard.geom.standard = "ddr5_4800";
    EXPECT_NE(standard.cacheKey(knobs(), mixes()), base);

    SweepPoint scheme = p;
    scheme.scheme.kind = SchemeKind::HiraMc;
    EXPECT_NE(scheme.cacheKey(knobs(), mixes()), base);

    BenchKnobs warm = knobs();
    warm.warmup += 1;
    EXPECT_NE(p.cacheKey(warm, mixes()), base);

    BenchKnobs cyc = knobs();
    cyc.cycles += 1;
    EXPECT_NE(p.cacheKey(cyc, mixes()), base);

    EXPECT_NE(p.cacheKey(knobs(), {{"mcf-like"}}), base);
    EXPECT_NE(p.cacheKey(knobs(), {{"mcf-like", "gcc-like"},
                                   {"mcf-like", "gcc-like"}}),
              base);

    ::setenv("HIRA_CACHE_REV", "other", 1);
    EXPECT_NE(p.cacheKey(knobs(), mixes()), base);
    ::setenv("HIRA_CACHE_REV", "test", 1);

    ::setenv("HIRA_ENGINE", "cycle", 1);
    EXPECT_NE(p.cacheKey(knobs(), mixes()), base);
    ::setenv("HIRA_ENGINE", "event", 1);

    ::setenv("HIRA_KERNEL", "generic", 1);
    EXPECT_NE(p.cacheKey(knobs(), mixes()), base);
    ::setenv("HIRA_KERNEL", "specialized", 1);

    // Metrics level changes the PointResult::metrics payload, so it
    // keys separate slots even though the numbers are identical.
    ::setenv("HIRA_METRICS", "full", 1);
    EXPECT_NE(p.cacheKey(knobs(), mixes()), base);
    ::unsetenv("HIRA_METRICS");

    // Thread count must NOT change the key: results are bitwise
    // thread-count-independent, and a per-thread-count cache would
    // defeat cross-machine sharing.
    BenchKnobs threads = knobs();
    threads.threads = 8;
    EXPECT_EQ(p.cacheKey(threads, mixes()), base);
}

TEST_F(ResultCacheTest, CorpusSpecsResolveAgainstTheActiveManifest)
{
    // Non-corpus specs pass through verbatim.
    EXPECT_EQ(resolvedMixSpecKey("mcf-like"), "mcf-like");
    EXPECT_EQ(resolvedMixSpecKey("file:/tmp/x.trace"),
              "file:/tmp/x.trace");

    // A corpus entry folds file/format/instructions/class/prior into
    // the key, so renaming-in-place or re-measuring a prior can never
    // serve a stale cached point.
    { std::ofstream(dir + "/a.trace") << "# empty\n"; }
    CorpusEntry e;
    e.name = "mix-a";
    e.file = "a.trace";
    e.format = TraceFormat::Text;
    e.instructions = 5000;
    e.mpki = MpkiClass::High;
    e.aloneIpc = 0.75;
    auto corpus = std::make_shared<Corpus>(
        dir, std::vector<CorpusEntry>{e});
    Corpus::setActive(corpus);

    std::string resolved = resolvedMixSpecKey("corpus:mix-a");
    EXPECT_EQ(resolved,
              "corpus:mix-a{file=a.trace;fmt=text;instr=5000;class=H;"
              "prior=0.75}");
    // "?once" changes replay semantics: the option must survive into
    // the key alongside the resolved entry.
    EXPECT_EQ(resolvedMixSpecKey("corpus:mix-a?once"),
              "corpus:mix-a?once{file=a.trace;fmt=text;instr=5000;"
              "class=H;prior=0.75}");

    // A different prior for the same name = a different key.
    CorpusEntry e2 = e;
    e2.aloneIpc = 0.0; // "not measured"
    Corpus::setActive(std::make_shared<Corpus>(
        dir, std::vector<CorpusEntry>{e2}));
    EXPECT_EQ(resolvedMixSpecKey("corpus:mix-a"),
              "corpus:mix-a{file=a.trace;fmt=text;instr=5000;class=H;"
              "prior=-}");

    Corpus::setActive(nullptr);
    EXPECT_EXIT((void)resolvedMixSpecKey("corpus:mix-a"),
                ::testing::ExitedWithCode(1),
                "needs an active trace corpus");
}

TEST_F(ResultCacheTest, PointRoundTripIsExact)
{
    std::string key = SweepPoint().cacheKey(knobs(), mixes());
    PointResult stored = samplePoint();
    {
        ResultCache cache(dir, ResultCacheMode::ReadWrite);
        cache.storePoint(key, stored);
        EXPECT_EQ(cache.stats().writes, 1u);
    }
    // A FRESH instance (empty LRU): the round trip below is through
    // the file bytes, not memory.
    ResultCache cache(dir, ResultCacheMode::ReadWrite);
    PointResult loaded;
    ASSERT_TRUE(cache.lookupPoint(key, loaded));
    expectEqualResults(loaded, stored);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_GT(cache.stats().bytesRead, 0u);

    double ipc = 0.0;
    EXPECT_FALSE(cache.lookupAlone("no-such-key", ipc));
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(ResultCacheTest, AloneRoundTripIsExact)
{
    std::string key = aloneResultCacheKey("mcf-like", GeomSpec(), knobs());
    ResultCache cache(dir, ResultCacheMode::ReadWrite);
    cache.storeAlone(key, 0.1 + 0.2);
    ResultCache fresh(dir, ResultCacheMode::ReadWrite);
    double ipc = 0.0;
    ASSERT_TRUE(fresh.lookupAlone(key, ipc));
    EXPECT_EQ(ipc, 0.1 + 0.2);
}

TEST_F(ResultCacheTest, LruFrontServesWithoutTheFile)
{
    std::string key = SweepPoint().cacheKey(knobs(), mixes());
    ResultCache cache(dir, ResultCacheMode::ReadWrite);
    cache.storePoint(key, samplePoint()); // store populates the LRU
    ASSERT_EQ(std::remove(cache.pointPath(key).c_str()), 0);
    PointResult out;
    EXPECT_TRUE(cache.lookupPoint(key, out));
    expectEqualResults(out, samplePoint());
    // A fresh instance must miss: the file is gone.
    ResultCache fresh(dir, ResultCacheMode::ReadWrite);
    EXPECT_FALSE(fresh.lookupPoint(key, out));
}

TEST_F(ResultCacheTest, ReadModeNeverWrites)
{
    std::string key = SweepPoint().cacheKey(knobs(), mixes());
    ResultCache cache(dir, ResultCacheMode::Read);
    cache.storePoint(key, samplePoint());
    EXPECT_EQ(cache.stats().writes, 0u);
    EXPECT_FALSE(std::filesystem::exists(cache.pointPath(key)));
    PointResult out;
    EXPECT_FALSE(cache.lookupPoint(key, out));
}

TEST_F(ResultCacheTest, FromEnvHonorsKnobs)
{
    EXPECT_EQ(ResultCache::fromEnv(), nullptr); // no dir set

    ::setenv("HIRA_RESULT_CACHE", dir.c_str(), 1);
    auto cache = ResultCache::fromEnv();
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->dir(), dir);
    EXPECT_EQ(cache->mode(), ResultCacheMode::ReadWrite);

    ::setenv("HIRA_RESULT_CACHE_MODE", "read", 1);
    cache = ResultCache::fromEnv();
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->mode(), ResultCacheMode::Read);

    ::setenv("HIRA_RESULT_CACHE_MODE", "off", 1);
    EXPECT_EQ(ResultCache::fromEnv(), nullptr);

    ::unsetenv("HIRA_RESULT_CACHE");
    ::unsetenv("HIRA_RESULT_CACHE_MODE");
}

TEST_F(ResultCacheTest, StaleEntryIsRejectedOnKeyMismatch)
{
    // Copy keyA's entry file onto keyB's slot — the embedded full key
    // no longer matches the lookup key (this is what a hash collision
    // or a tampered cache dir would look like) and must read as a
    // miss, never as keyB's result.
    SweepPoint a;
    SweepPoint b;
    b.scheme.kind = SchemeKind::HiraMc;
    std::string keyA = a.cacheKey(knobs(), mixes());
    std::string keyB = b.cacheKey(knobs(), mixes());
    ResultCache cache(dir, ResultCacheMode::ReadWrite);
    cache.storePoint(keyA, samplePoint());
    std::filesystem::copy_file(cache.pointPath(keyA),
                               cache.pointPath(keyB));
    ResultCache fresh(dir, ResultCacheMode::ReadWrite);
    PointResult out;
    EXPECT_FALSE(fresh.lookupPoint(keyB, out));
    EXPECT_EQ(fresh.stats().stale, 1u);
    // keyA itself still hits.
    EXPECT_TRUE(fresh.lookupPoint(keyA, out));
}

TEST_F(ResultCacheTest, CorruptAndTruncatedEntriesAreSkipped)
{
    std::string key = SweepPoint().cacheKey(knobs(), mixes());
    ResultCache writer(dir, ResultCacheMode::ReadWrite);
    writer.storePoint(key, samplePoint());
    std::string path = writer.pointPath(key);

    // Truncation: drop the trailing "end" terminator and some payload.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        bytes = buf.str();
    }
    ASSERT_GT(bytes.size(), 20u);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, bytes.size() - 20);
    }
    ResultCache truncated(dir, ResultCacheMode::ReadWrite);
    PointResult out;
    EXPECT_FALSE(truncated.lookupPoint(key, out));
    EXPECT_EQ(truncated.stats().corrupt, 1u);

    // Garbage: not even the magic line.
    {
        std::ofstream g(path, std::ios::binary | std::ios::trunc);
        g << "not a cache entry\n";
    }
    ResultCache garbage(dir, ResultCacheMode::ReadWrite);
    EXPECT_FALSE(garbage.lookupPoint(key, out));
    EXPECT_EQ(garbage.stats().corrupt, 1u);

    // And a rewrite repairs the slot.
    garbage.storePoint(key, samplePoint());
    ResultCache repaired(dir, ResultCacheMode::ReadWrite);
    EXPECT_TRUE(repaired.lookupPoint(key, out));
    expectEqualResults(out, samplePoint());
}

TEST_F(ResultCacheTest, MetricsSnapshotExposesCounters)
{
    ResultCache cache(dir, ResultCacheMode::ReadWrite);
    PointResult out;
    (void)cache.lookupPoint("nope", out);
    cache.storePoint("k", samplePoint());
    MetricsSnapshot snap = cache.metricsSnapshot();
    EXPECT_EQ(snap.values.at("result_cache.misses").count, 1u);
    EXPECT_EQ(snap.values.at("result_cache.writes").count, 1u);
    EXPECT_GT(snap.values.at("result_cache.bytes_written").count, 0u);
}
