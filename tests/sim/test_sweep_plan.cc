/**
 * @file
 * Tests for the serialized sweep-plan wire format (sim/sweep_plan.hh):
 * exact round trips, hand-written JSON with defaults, and fatal
 * diagnostics on malformed plans — the daemon must reject garbage at
 * the door, not simulate something else.
 */

#include <gtest/gtest.h>

#include "sim/scheme_registry.hh"
#include "sim/sweep_plan.hh"

using namespace hira;

namespace {

SweepPlan
samplePlan()
{
    SweepPlan plan;
    plan.mixes = {{"mcf-like", "gcc-like"}, {"corpus:x?once"}};
    plan.warmup = 1234;
    plan.cycles = 56789;

    SweepPoint base;
    base.scheme = schemeSpecByName("baseline");
    plan.points.push_back(base);

    SweepPoint hira;
    hira.geom.capacityGb = 8.04; // %.17g must round-trip this
    hira.geom.channels = 2;
    hira.geom.ranks = 4;
    hira.geom.standard = "ddr5_4800";
    hira.scheme = schemeSpecByName("hira");
    hira.scheme.slackN = 8;
    hira.scheme.paraEnabled = true;
    hira.scheme.preventiveViaHira = true;
    hira.scheme.nrh = 333.25;
    hira.scheme.sptIsolation = 0.17;
    plan.points.push_back(hira);

    SweepPoint rfm;
    rfm.scheme = schemeSpecByName("rfm");
    rfm.scheme.raaimt = 16;
    plan.points.push_back(rfm);
    return plan;
}

} // namespace

TEST(SweepPlan, RoundTripIsExact)
{
    SweepPlan plan = samplePlan();
    SweepPlan back =
        sweepPlanFromJson(sweepPlanToJson(plan), "round-trip");
    EXPECT_EQ(back.mixes, plan.mixes);
    EXPECT_EQ(back.warmup, plan.warmup);
    EXPECT_EQ(back.cycles, plan.cycles);
    ASSERT_EQ(back.points.size(), plan.points.size());
    for (std::size_t i = 0; i < plan.points.size(); ++i) {
        // The geometry key and scheme seed-key cover every serialized
        // field injectively, so key equality IS spec equality — and it
        // is exactly what the result cache hashes.
        EXPECT_EQ(back.points[i].geom.key(), plan.points[i].geom.key());
        EXPECT_EQ(back.points[i].geom.standard,
                  plan.points[i].geom.standard);
        EXPECT_EQ(back.points[i].scheme.seedKey(),
                  plan.points[i].scheme.seedKey());
    }
}

TEST(SweepPlan, HandWrittenPlanGetsDefaults)
{
    SweepPlan plan = sweepPlanFromJson(
        "{\"mixes\": [[\"mcf-like\"]],"
        " \"points\": [{\"scheme\": {\"name\": \"hira\"}}]}",
        "hand-written");
    EXPECT_EQ(plan.warmup, -1); // ambient knob default
    EXPECT_EQ(plan.cycles, -1);
    ASSERT_EQ(plan.points.size(), 1u);
    // Unset geom keys take the GeomSpec defaults.
    EXPECT_EQ(plan.points[0].geom.key(), GeomSpec().key());
    EXPECT_EQ(plan.points[0].scheme.kind, SchemeKind::HiraMc);
    EXPECT_EQ(plan.points[0].scheme.seedKey(),
              schemeSpecByName("hira").seedKey());
}

TEST(SweepPlan, SchemeOverridesApply)
{
    SweepPlan plan = sweepPlanFromJson(
        "{\"mixes\": [[\"mcf-like\"]],"
        " \"points\": [{\"scheme\": {\"name\": \"hira\","
        " \"slack_n\": 16, \"para_enabled\": true,"
        " \"nrh\": 512.5}}]}",
        "overrides");
    const SchemeSpec &s = plan.points[0].scheme;
    EXPECT_EQ(s.slackN, 16);
    EXPECT_TRUE(s.paraEnabled);
    EXPECT_EQ(s.nrh, 512.5);
}

TEST(SweepPlan, MalformedPlansAreFatal)
{
    EXPECT_EXIT((void)sweepPlanFromJson("{]", "t"),
                ::testing::ExitedWithCode(1), "invalid JSON");
    EXPECT_EXIT((void)sweepPlanFromJson("[]", "t"),
                ::testing::ExitedWithCode(1),
                "top level must be an object");
    EXPECT_EXIT((void)sweepPlanFromJson(
                    "{\"mixes\": [[\"a\"]], \"points\": []}", "t"),
                ::testing::ExitedWithCode(1),
                "'points' is missing or empty");
    EXPECT_EXIT((void)sweepPlanFromJson(
                    "{\"points\": [{\"scheme\": {\"name\": "
                    "\"baseline\"}}]}",
                    "t"),
                ::testing::ExitedWithCode(1),
                "'mixes' is missing or empty");
    EXPECT_EXIT((void)sweepPlanFromJson(
                    "{\"mixes\": [[\"a\"]], \"points\": "
                    "[{\"scheme\": {\"name\": \"frobnicate\"}}]}",
                    "t"),
                ::testing::ExitedWithCode(1),
                "unknown refresh scheme");
    EXPECT_EXIT((void)sweepPlanFromJson(
                    "{\"mixes\": [[\"a\"]], \"points\": "
                    "[{\"scheme\": {\"name\": \"hira\", "
                    "\"slackety\": 4}}]}",
                    "t"),
                ::testing::ExitedWithCode(1),
                "unknown scheme key 'slackety'");
    EXPECT_EXIT((void)sweepPlanFromJson(
                    "{\"mixes\": [[\"a\"]], \"points\": "
                    "[{\"geom\": {\"chanels\": 2}, \"scheme\": "
                    "{\"name\": \"hira\"}}]}",
                    "t"),
                ::testing::ExitedWithCode(1),
                "unknown geom key 'chanels'");
}
