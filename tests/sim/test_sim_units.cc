/**
 * @file
 * Unit tests for the system-simulator building blocks: trace generator,
 * workload pool, LLC, and core model.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/core.hh"
#include "sim/trace.hh"
#include "sim/workloads.hh"

using namespace hira;

TEST(TraceGen, DeterministicStreams)
{
    const auto &prof = benchmarkByName("mcf-like");
    TraceGen a(prof, 42, 0, 1 << 30), b(prof, 42, 0, 1 << 30);
    for (int i = 0; i < 1000; ++i) {
        TraceInst x = a.next(), y = b.next();
        EXPECT_EQ(x.isMem, y.isMem);
        EXPECT_EQ(x.addr, y.addr);
    }
}

TEST(TraceGen, MemoryIntensityMatchesProfile)
{
    const auto &prof = benchmarkByName("mcf-like");
    TraceGen g(prof, 1, 0, 1 << 30);
    int mem = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        mem += g.next().isMem;
    EXPECT_NEAR(static_cast<double>(mem) / n, prof.memPerInstr, 0.01);
}

TEST(TraceGen, AddressesStayInSlice)
{
    const auto &prof = benchmarkByName("libquantum-like");
    Addr base = 4ull << 30, slice = 1ull << 30;
    TraceGen g(prof, 2, base, slice);
    for (int i = 0; i < 20000; ++i) {
        TraceInst t = g.next();
        if (!t.isMem)
            continue;
        EXPECT_GE(t.addr, base);
        EXPECT_LT(t.addr, base + slice);
        EXPECT_EQ(t.addr % 64, 0u);
    }
}

TEST(TraceGen, StreamProfileIsSequential)
{
    BenchmarkProfile prof = benchmarkByName("libquantum-like");
    prof.hotFraction = 0.0;
    prof.streamFraction = 1.0;
    prof.memPerInstr = 1.0;
    TraceGen g(prof, 3, 0, 1 << 30);
    Addr prev = g.next().addr;
    int sequential = 0;
    for (int i = 0; i < 1000; ++i) {
        Addr cur = g.next().addr;
        sequential += cur == prev + 64;
        prev = cur;
    }
    EXPECT_GT(sequential, 990);
}

TEST(Workloads, PoolHasSpectrum)
{
    const auto &pool = benchmarkPool();
    EXPECT_GE(pool.size(), 16u);
    double lo = 1.0, hi = 0.0;
    for (const auto &p : pool) {
        lo = std::min(lo, p.memPerInstr);
        hi = std::max(hi, p.memPerInstr);
        EXPECT_GT(p.footprintLines, 0u);
        EXPECT_GE(p.hotLines, 1u);
        EXPECT_LE(p.hotFraction + p.streamFraction, 2.0);
    }
    EXPECT_LT(lo, 0.06);  // cache-friendly end
    EXPECT_GT(hi, 0.25);  // memory-bound end
}

TEST(Workloads, MixesAreDeterministicAndSized)
{
    auto a = makeMixes(125, 8);
    auto b = makeMixes(125, 8);
    ASSERT_EQ(a.size(), 125u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].size(), 8u);
        EXPECT_EQ(a[i], b[i]);
    }
}

TEST(Workloads, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(benchmarkByName("no-such-bench"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

namespace {

/** LLC harness with a scripted memory backend. */
struct LlcHarness
{
    std::vector<Request> sent;
    std::vector<std::pair<int, std::uint64_t>> notified;
    bool accept = true;
    Llc llc;

    LlcHarness(LlcConfig cfg = {})
        : llc(
              cfg,
              [this](const Request &r) {
                  if (!accept)
                      return false;
                  sent.push_back(r);
                  return true;
              },
              [this](int core, std::uint64_t tag, Cycle) {
                  notified.push_back({core, tag});
              })
    {
    }
};

} // namespace

TEST(Llc, MissThenHit)
{
    LlcHarness h;
    EXPECT_EQ(h.llc.access(false, 0x1000, 0, 1, 10), LlcResult::Miss);
    ASSERT_EQ(h.sent.size(), 1u);
    EXPECT_EQ(h.sent[0].type, MemType::Read);
    h.llc.onMemCompletion(h.sent[0].tag, 50);
    ASSERT_EQ(h.notified.size(), 1u);
    EXPECT_EQ(h.notified[0].second, 1u);
    EXPECT_EQ(h.llc.access(false, 0x1000, 0, 2, 60), LlcResult::Hit);
    EXPECT_EQ(h.llc.hits, 1u);
}

TEST(Llc, MshrMergesSameLine)
{
    LlcHarness h;
    EXPECT_EQ(h.llc.access(false, 0x2000, 0, 1, 0), LlcResult::Miss);
    EXPECT_EQ(h.llc.access(false, 0x2010, 1, 2, 1), LlcResult::Miss);
    EXPECT_EQ(h.sent.size(), 1u); // one fetch for both
    EXPECT_EQ(h.llc.mshrMerges, 1u);
    h.llc.onMemCompletion(h.sent[0].tag, 99);
    EXPECT_EQ(h.notified.size(), 2u);
}

TEST(Llc, DirtyEvictionWritesBack)
{
    LlcConfig small;
    small.sizeBytes = 8192; // 2 sets x 8 ways x 64 B... tiny
    small.ways = 8;
    LlcHarness h(small);
    // Fill one set with dirty lines, then force an eviction.
    // Set index = line & 15; lines with equal low bits collide.
    int sets = 8192 / (8 * 64);
    for (int i = 0; i <= 8; ++i) {
        Addr addr = static_cast<Addr>(i) * 64 *
                    static_cast<Addr>(sets); // same set
        h.llc.access(true, addr, 0, static_cast<std::uint64_t>(i), 0);
        ASSERT_FALSE(h.sent.empty());
        h.llc.onMemCompletion(h.sent.back().tag, 1);
    }
    bool saw_writeback = false;
    for (const Request &r : h.sent)
        saw_writeback = saw_writeback || r.type == MemType::Write;
    EXPECT_TRUE(saw_writeback);
    EXPECT_GT(h.llc.writebacks, 0u);
}

TEST(Llc, BlocksWhenMshrsExhausted)
{
    LlcConfig cfg;
    cfg.mshrs = 2;
    LlcHarness h(cfg);
    EXPECT_EQ(h.llc.access(false, 64 * 100, 0, 1, 0), LlcResult::Miss);
    EXPECT_EQ(h.llc.access(false, 64 * 200, 0, 2, 0), LlcResult::Miss);
    EXPECT_EQ(h.llc.access(false, 64 * 300, 0, 3, 0), LlcResult::Blocked);
    EXPECT_GT(h.llc.blocked, 0u);
}

TEST(Llc, OutboundQueueRetries)
{
    LlcHarness h;
    h.accept = false; // controller full
    EXPECT_EQ(h.llc.access(false, 0x4000, 0, 1, 0), LlcResult::Miss);
    EXPECT_TRUE(h.sent.empty()); // queued, not sent
    h.accept = true;
    h.llc.tick(5);
    EXPECT_EQ(h.sent.size(), 1u);
}

namespace {

/**
 * Core harness with an instantly-filling memory backend: misses complete
 * on the next tick, so only LLC hit latency and window size matter.
 */
struct CoreHarness
{
    LlcConfig cfg;
    std::vector<std::uint64_t> pendingFills;
    Llc llc;
    BenchmarkProfile prof;
    TraceGen gen;
    CoreModel core;

    explicit CoreHarness(const BenchmarkProfile &p, int window = 128)
        : llc(
              cfg,
              [this](const Request &r) {
                  if (r.type == MemType::Read)
                      pendingFills.push_back(r.tag);
                  return true;
              },
              [this](int, std::uint64_t tag, Cycle) {
                  core.onDataReturn(tag);
              }),
          prof(p),
          gen(prof, 11, 0, 1 << 26),
          core(0, gen, llc, 4, window)
    {
    }

    void
    tick()
    {
        std::vector<std::uint64_t> fills;
        fills.swap(pendingFills);
        for (std::uint64_t tag : fills)
            llc.onMemCompletion(tag, 0);
        core.tick(0);
    }
};

} // namespace

TEST(CoreModel, PureComputeReachesFullWidth)
{
    BenchmarkProfile p = benchmarkByName("h264-like");
    p.memPerInstr = 0.0;
    CoreHarness h(p);
    for (int i = 0; i < 10000; ++i)
        h.tick();
    EXPECT_NEAR(h.core.ipc(), 4.0, 0.05);
}

TEST(CoreModel, HitLatencyLimitsIpcBelowWidth)
{
    BenchmarkProfile p = benchmarkByName("h264-like");
    p.memPerInstr = 0.5;
    p.writeFraction = 0.0;
    p.hotFraction = 1.0; // everything hits the LLC
    // A 32-entry window cannot cover 4 loads/cycle x 30-cycle hits.
    CoreHarness h(p, 32);
    for (int i = 0; i < 20000; ++i)
        h.tick();
    double ipc = h.core.ipc();
    EXPECT_GT(ipc, 1.0);
    EXPECT_LT(ipc, 3.5);
}

TEST(CoreModel, ResetStatsClearsCounters)
{
    BenchmarkProfile p = benchmarkByName("h264-like");
    p.memPerInstr = 0.0;
    CoreHarness h(p);
    for (int i = 0; i < 100; ++i)
        h.tick();
    h.core.resetStats();
    EXPECT_EQ(h.core.retiredInstructions(), 0u);
    EXPECT_EQ(h.core.cpuCycles(), 0u);
}
