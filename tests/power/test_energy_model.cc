/**
 * @file
 * Tests for the IDD-based DDR4 energy model.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"

using namespace hira;

namespace {

EnergyModel
model(double capacity_gb = 8.0)
{
    return EnergyModel(ddr4_2400(capacity_gb));
}

} // namespace

TEST(EnergyModel, PerOpEnergiesPositiveAndOrdered)
{
    EnergyModel m = model();
    EXPECT_GT(m.actPreEnergyNj(), 0.0);
    EXPECT_GT(m.readEnergyNj(), 0.0);
    EXPECT_GT(m.writeEnergyNj(), 0.0);
    EXPECT_GT(m.refEnergyNj(), 0.0);
    // A full all-bank REF burns far more than one row activation.
    EXPECT_GT(m.refEnergyNj(), 10.0 * m.actPreEnergyNj());
}

TEST(EnergyModel, ActPreMagnitudeSane)
{
    // (55-42) mA * 46.25 ns * 1.2 V * 8 chips ~ 5.8 nJ.
    EXPECT_NEAR(model().actPreEnergyNj(), 5.77, 0.2);
}

TEST(EnergyModel, RefEnergyScalesWithCapacity)
{
    // tRFC grows as C^0.6, so does the REF burst energy.
    EXPECT_GT(model(128.0).refEnergyNj(), 3.0 * model(8.0).refEnergyNj());
}

TEST(EnergyModel, BackgroundScalesWithRanksAndTime)
{
    EnergyModel m = model();
    double one = m.backgroundEnergyNj(1, 1000);
    EXPECT_NEAR(m.backgroundEnergyNj(2, 1000), 2.0 * one, 1e-9);
    EXPECT_NEAR(m.backgroundEnergyNj(1, 2000), 2.0 * one, 1e-9);
}

TEST(EnergyModel, AttributionAddsUp)
{
    EnergyModel m = model();
    ControllerStats cs;
    cs.acts = 100;
    cs.readsServed = 300;
    cs.writesServed = 50;
    RefreshStats rs;
    rs.refCommands = 10;
    rs.rowRefreshes = 40;
    EnergyBreakdown e = m.attribute(cs, rs, 1, 10000);
    EXPECT_NEAR(e.totalNj(),
                e.actPreNj + e.readNj + e.writeNj + e.refNj +
                    e.backgroundNj,
                1e-9);
    EXPECT_NEAR(e.actPreNj, 100 * m.actPreEnergyNj(), 1e-9);
    EXPECT_NEAR(e.refNj, 10 * m.refEnergyNj(), 1e-9);
    // Refresh attribution: REF bursts plus per-row refresh activations.
    EXPECT_NEAR(e.refreshNj, e.refNj + 40 * m.actPreEnergyNj(), 1e-9);
}

TEST(EnergyModel, HiraRowRefreshCheaperThanRefPerRowAtHighCapacity)
{
    // At 128 Gb a REF refreshes refreshGroupsPerBank*16/8192 rows per
    // command; compare per-row energies of the two mechanisms.
    Geometry g = Geometry::forCapacityGb(128.0);
    EnergyModel m = model(128.0);
    double rows_per_ref =
        static_cast<double>(g.refreshGroupsPerBank) * 16.0 / 8192.0;
    double ref_per_row = m.refEnergyNj() / rows_per_ref;
    // Both are the same order of magnitude: HiRA does not blow up the
    // refresh energy budget (it may even be cheaper per row).
    EXPECT_LT(m.actPreEnergyNj(), 3.0 * ref_per_row);
    EXPECT_GT(m.actPreEnergyNj(), 0.1 * ref_per_row);
}
