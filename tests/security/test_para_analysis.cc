/**
 * @file
 * Tests for the PARA security analysis (Expressions 2-9, Figs. 10-11).
 * Anchors are the paper's published numbers: pth ~0.068 at NRH = 1024
 * and ~0.834-0.86 at NRH = 64; k = 1.0331 / 1.3212; legacy pRH reaching
 * 1.32e-15 at NRH = 64.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "security/para_analysis.hh"

using namespace hira;

TEST(ParaAnalysis, WindowActivations)
{
    ParaParams pp;
    // 64 ms / 46.25 ns ~ 1.38M activations (footnote 11's basis).
    EXPECT_NEAR(pp.windowActivations(), 1.3838e6, 5e3);
}

TEST(ParaAnalysis, SlackActivations)
{
    ParaParams pp;
    EXPECT_NEAR(slackActivations(4 * 46.25, pp), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(slackActivations(0.0, pp), 0.0);
}

TEST(ParaAnalysis, SuccessProbabilityDecreasesInPth)
{
    double prev = 0.0;
    bool first = true;
    for (double p : {0.05, 0.1, 0.2, 0.4, 0.8}) {
        double lp = logRowHammerSuccess(p, 256.0, 0.0);
        if (!first) {
            EXPECT_LT(lp, prev);
        }
        prev = lp;
        first = false;
    }
}

TEST(ParaAnalysis, SuccessProbabilityIncreasesWithSlack)
{
    // Queued refreshes give the attacker extra activations.
    double base = logRowHammerSuccess(0.5, 128.0, 0.0);
    double slack8 = logRowHammerSuccess(0.5, 128.0, 8.0);
    EXPECT_GT(slack8, base);
}

TEST(ParaAnalysis, StrictModelAboveLegacy)
{
    // Expression 8 counts all attack patterns, so it can only exceed
    // PARA-Legacy's single-pattern estimate (k >= 1).
    for (double nrh : {64.0, 256.0, 1024.0}) {
        double p = solvePthLegacy(nrh);
        EXPECT_GE(kFactor(p, nrh, 0.0), 1.0);
    }
}

TEST(ParaAnalysis, SolvedPthMeetsTarget)
{
    ParaParams pp;
    for (double nrh : {64.0, 128.0, 512.0, 1024.0}) {
        double p = solvePth(nrh, 0.0, pp);
        double log_prh = logRowHammerSuccess(p, nrh, 0.0, pp);
        EXPECT_NEAR(log_prh, std::log(pp.target), 1e-6) << "NRH " << nrh;
    }
}

TEST(ParaAnalysis, PthAnchorsFromFig11a)
{
    // "pth increases from 0.068 to 0.860 when NRH reduces from 1024 to
    // 64" (tRefSlack = 0).
    EXPECT_NEAR(solvePth(1024.0, 0.0), 0.068, 0.006);
    EXPECT_NEAR(solvePth(64.0, 0.0), 0.84, 0.03);
}

TEST(ParaAnalysis, PthIncreasesAsNrhDecreases)
{
    double prev = 0.0;
    for (double nrh : {1024.0, 512.0, 256.0, 128.0, 64.0}) {
        double p = solvePth(nrh, 0.0);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(ParaAnalysis, PthIncreasesWithSlackAtNrh128)
{
    // Fig. 11a: at NRH = 128, pth ~0.48 / 0.49 / 0.50 / 0.52 for slack
    // 0 / 2tRC / 4tRC / 8tRC.
    ParaParams pp;
    double tRC = pp.tRC;
    double p0 = solvePth(128.0, slackActivations(0.0, pp), pp);
    double p2 = solvePth(128.0, slackActivations(2 * tRC, pp), pp);
    double p4 = solvePth(128.0, slackActivations(4 * tRC, pp), pp);
    double p8 = solvePth(128.0, slackActivations(8 * tRC, pp), pp);
    EXPECT_NEAR(p0, 0.48, 0.03);
    EXPECT_NEAR(p8, 0.52, 0.03);
    EXPECT_LT(p0, p2);
    EXPECT_LT(p2, p4);
    EXPECT_LT(p4, p8);
}

TEST(ParaAnalysis, KFactorAnchors)
{
    // §9.1.3: k = 1.0005 for (NRH = 50K, pth = 0.001); k ~1.033 at the
    // NRH = 1024 operating point; k = 1.3212 for pth = 0.8341.
    EXPECT_NEAR(kFactor(0.001, 50000.0, 0.0), 1.0005, 0.0005);
    EXPECT_NEAR(kFactor(solvePth(1024.0, 0.0), 1024.0, 0.0), 1.033, 0.004);
    EXPECT_NEAR(kFactor(0.8341, 64.0, 0.0), 1.3212, 0.005);
}

TEST(ParaAnalysis, LegacyConfigMissesTarget)
{
    // Fig. 11b: pth solved under PARA-Legacy yields a true success
    // probability of ~1.03e-15 at NRH = 1024 and ~1.32e-15 at NRH = 64.
    ParaParams pp;
    double legacy1024 = solvePthLegacy(1024.0, pp);
    double legacy64 = solvePthLegacy(64.0, pp);
    EXPECT_NEAR(rowHammerSuccess(legacy1024, 1024.0, 0.0, pp) / 1e-15,
                1.03, 0.02);
    EXPECT_NEAR(rowHammerSuccess(legacy64, 64.0, 0.0, pp) / 1e-15, 1.32,
                0.02);
}

TEST(ParaAnalysis, SweepCoversGridAndIsConsistent)
{
    auto sweep = paraSweep({1024.0, 256.0, 64.0}, {0.0, 4 * 46.25});
    ASSERT_EQ(sweep.size(), 6u);
    for (const auto &pt : sweep) {
        EXPECT_GT(pt.pth, 0.0);
        EXPECT_LT(pt.pth, 1.0);
        // The strict pth always exceeds legacy's at the same NRH.
        EXPECT_GE(pt.pth, pt.pthLegacy - 1e-9);
        // Legacy's true pRH always misses (exceeds) the 1e-15 target.
        EXPECT_GE(pt.legacyTruePrh, 1e-15);
    }
}

TEST(ParaAnalysis, LegacyMatchesClosedForm)
{
    double p = 0.3;
    double nrh = 100.0;
    EXPECT_NEAR(logRowHammerSuccessLegacy(p, nrh),
                nrh * std::log(1.0 - p / 2.0), 1e-12);
}

TEST(ParaAnalysis, SolvePthMonotonicInSlackN)
{
    // Section 9.1 step 4: queueing slack hands the attacker extra
    // unpunished activations, so the threshold compensating for it can
    // never decrease as slackN grows.
    ParaParams pp;
    for (double nrh : {64.0, 256.0, 1024.0, 4096.0}) {
        double prev = 0.0;
        for (int slack_n : {0, 1, 2, 4, 8, 16, 64, 256}) {
            double p = solvePth(
                nrh, slackActivations(slack_n * pp.tRC, pp), pp);
            EXPECT_GE(p, prev)
                << "nrh=" << nrh << " slackN=" << slack_n;
            prev = p;
        }
    }
}

TEST(ParaAnalysis, SolvePthClampsToUnitInterval)
{
    // Extreme corners: a near-defenseless chip (tiny NRH) with a huge
    // queueing slack pushes the solver toward pth = 1; a very robust
    // chip pushes it toward 0. The result must stay within [0, 1] in
    // both directions rather than diverging or crossing the bounds.
    ParaParams pp;
    double hard = solvePth(8.0, slackActivations(1000 * pp.tRC, pp), pp);
    EXPECT_GT(hard, 0.9);
    EXPECT_LE(hard, 1.0);

    double easy = solvePth(200000.0, 0.0, pp);
    EXPECT_GE(easy, 0.0);
    EXPECT_LT(easy, 0.01);

    for (double nrh : {8.0, 64.0, 1024.0, 100000.0}) {
        for (int slack_n : {0, 10, 1000}) {
            double p = solvePth(
                nrh, slackActivations(slack_n * pp.tRC, pp), pp);
            EXPECT_GE(p, 0.0) << "nrh=" << nrh << " slackN=" << slack_n;
            EXPECT_LE(p, 1.0) << "nrh=" << nrh << " slackN=" << slack_n;
        }
    }
}
