/**
 * @file
 * Property tests: any command stream scheduled at ChannelTimingModel's
 * own earliest-issue times must audit clean under TimingChecker, across
 * generations (DDR4/DDR5), capacities, and rank counts, with randomized
 * interleavings of ACT/RD/WR/PRE/REF/HiRA.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "dram/timing_checker.hh"
#include "dram/timing_state.hh"

using namespace hira;

namespace {

struct Driver
{
    Geometry geom;
    TimingParams tp;
    ChannelTimingModel model;
    TimingChecker checker;
    std::vector<Command> trace;
    Cycle bus = 0;
    Rng rng;

    Driver(const Geometry &g, const TimingParams &t, std::uint64_t seed)
        : geom(g), tp(t), model(g, t), checker(g, t), rng(seed)
    {
    }

    Cycle
    slot(Cycle earliest)
    {
        return std::max(earliest, bus + 1);
    }

    void
    push(CommandType type, Cycle cycle, int rank, BankId bank, RowId row,
         HiraRole role = HiraRole::None)
    {
        Command c;
        c.type = type;
        c.cycle = cycle;
        c.rank = rank;
        c.bank = bank;
        c.row = row;
        c.hiraRole = role;
        trace.push_back(c);
        bus = std::max(bus, cycle);
    }

    /** One random legal step on a random bank. */
    void
    step()
    {
        int rank = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(geom.ranksPerChannel)));
        BankId bank = static_cast<BankId>(rng.below(16));
        RowId row = static_cast<RowId>(rng.below(512));
        const TimingCycles &tc = model.cycles();

        if (model.openRow(rank, bank) != kNoRow) {
            switch (rng.below(3)) {
              case 0: {
                Cycle t = slot(model.earliestRd(rank, bank));
                model.issueRd(rank, bank, t);
                push(CommandType::RD, t, rank, bank,
                     model.openRow(rank, bank));
                break;
              }
              case 1: {
                Cycle t = slot(model.earliestWr(rank, bank));
                model.issueWr(rank, bank, t);
                push(CommandType::WR, t, rank, bank,
                     model.openRow(rank, bank));
                break;
              }
              default: {
                Cycle t = slot(model.earliestPre(rank, bank));
                model.issuePre(rank, bank, t);
                push(CommandType::PRE, t, rank, bank, 0);
                break;
              }
            }
            return;
        }

        switch (rng.below(3)) {
          case 0: {
            Cycle t = slot(model.earliestAct(rank, bank));
            model.issueAct(rank, bank, row, t);
            push(CommandType::ACT, t, rank, bank, row);
            break;
          }
          case 1: {
            // HiRA refresh pair: two rows, the second stays open.
            Cycle t = slot(model.earliestHira(rank, bank));
            Cycle second = model.issueHira(rank, bank, row, row + 1, t);
            push(CommandType::ACT, t, rank, bank, row,
                 HiraRole::FirstAct);
            push(CommandType::PRE, t + tc.c1, rank, bank, 0,
                 HiraRole::CutPre);
            push(CommandType::ACT, second, rank, bank, row + 1,
                 HiraRole::SecondAct);
            break;
          }
          default: {
            // All-bank REF once every bank in the rank is closed.
            bool all_closed = true;
            for (BankId b = 0; b < 16; ++b)
                all_closed = all_closed && model.bankClosed(rank, b);
            if (all_closed) {
                Cycle t = slot(model.earliestRef(rank));
                model.issueRef(rank, t);
                push(CommandType::REF, t, rank, 0, 0);
            }
            break;
          }
        }
    }
};

} // namespace

class TimingPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, int, bool>>
{
};

TEST_P(TimingPropertyTest, ModelScheduledStreamAuditsClean)
{
    auto [capacity, ranks, ddr5] = GetParam();
    Geometry g = Geometry::forCapacityGb(capacity);
    g.ranksPerChannel = ranks;
    TimingParams tp = ddr5 ? ddr5_4800(capacity) : ddr4_2400(capacity);
    Driver d(g, tp, hashCombine(static_cast<std::uint64_t>(ranks),
                                static_cast<std::uint64_t>(capacity)));
    for (int i = 0; i < 600; ++i)
        d.step();
    // HiRA records future commands: sort before auditing.
    std::stable_sort(d.trace.begin(), d.trace.end(),
                     [](const Command &a, const Command &b) {
                         return a.cycle < b.cycle;
                     });
    auto violations = d.checker.check(d.trace);
    ASSERT_GT(d.trace.size(), 500u);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violations, first: "
        << (violations.empty() ? "" : violations[0].message);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TimingPropertyTest,
    ::testing::Values(std::make_tuple(8.0, 1, false),
                      std::make_tuple(8.0, 2, false),
                      std::make_tuple(8.0, 4, false),
                      std::make_tuple(2.0, 1, false),
                      std::make_tuple(32.0, 2, false),
                      std::make_tuple(128.0, 1, false),
                      std::make_tuple(16.0, 1, true),
                      std::make_tuple(16.0, 4, true)));
