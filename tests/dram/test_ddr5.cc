/**
 * @file
 * Tests for the DDR5-4800 preset and its interaction with the timing
 * machinery (the paper's Section 2.3 notes DDR5 halves tREFI/tREFW).
 */

#include <gtest/gtest.h>

#include "dram/timing_state.hh"

using namespace hira;

TEST(Ddr5, PresetHalvesRefreshWindow)
{
    TimingParams d4 = ddr4_2400(16.0);
    TimingParams d5 = ddr5_4800(16.0);
    EXPECT_DOUBLE_EQ(d5.tREFI, d4.tREFI / 2.0);
    EXPECT_DOUBLE_EQ(d5.tREFW, d4.tREFW / 2.0);
}

TEST(Ddr5, DoubleClock)
{
    TimingParams d5 = ddr5_4800();
    EXPECT_NEAR(d5.tCK, 1.0 / 2.4, 1e-12);
    // 3 ns on the 2.4 GHz clock is 8 cycles (still on the command grid).
    EXPECT_EQ(d5.cycles(3.0), 8u);
}

TEST(Ddr5, HiraHeadlineHoldsOnDdr5)
{
    // The 51.4 % two-row latency reduction is set by tRAS/tRP/t1/t2,
    // which barely move across generations.
    TimingParams d5 = ddr5_4800();
    EXPECT_NEAR(d5.hiraLatencyReduction(), 0.51, 0.02);
}

TEST(Ddr5, TimingModelRunsOnDdr5)
{
    Geometry geom = Geometry::forCapacityGb(16.0);
    TimingParams d5 = ddr5_4800(16.0);
    ChannelTimingModel model(geom, d5);
    const TimingCycles &tc = model.cycles();
    model.issueAct(0, 0, 5, 0);
    EXPECT_EQ(model.earliestRd(0, 0), tc.rcd);
    Cycle second = model.issueHira(0, 1, 7, 9,
                                   model.earliestHira(0, 1));
    EXPECT_EQ(second, model.earliestHira(0, 1) == 0
                          ? tc.hiraSpan()
                          : second);
    EXPECT_EQ(model.openRow(0, 1), 9u);
}

TEST(Ddr5, RefreshIntervalCyclesConsistent)
{
    TimingParams d5 = ddr5_4800();
    TimingCycles tc(d5);
    // 3.9 us at 2.4 GHz = 9360 cycles (same count as DDR4's 7.8 us at
    // 1.2 GHz, by construction of the standards).
    EXPECT_EQ(tc.refi, 9360u);
}
