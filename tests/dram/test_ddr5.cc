/**
 * @file
 * Tests for the DDR5-4800 preset and its interaction with the timing
 * machinery (the paper's Section 2.3 notes DDR5 halves tREFI/tREFW),
 * plus an end-to-end System::run on DDR5 timings pinning the
 * cycle/event engine equivalence off the DDR4 default.
 */

#include <gtest/gtest.h>

#include "dram/timing_state.hh"
#include "sim/experiment.hh"

using namespace hira;

TEST(Ddr5, PresetHalvesRefreshWindow)
{
    TimingParams d4 = ddr4_2400(16.0);
    TimingParams d5 = ddr5_4800(16.0);
    EXPECT_DOUBLE_EQ(d5.tREFI, d4.tREFI / 2.0);
    EXPECT_DOUBLE_EQ(d5.tREFW, d4.tREFW / 2.0);
}

TEST(Ddr5, DoubleClock)
{
    TimingParams d5 = ddr5_4800();
    EXPECT_NEAR(d5.tCK, 1.0 / 2.4, 1e-12);
    // 3 ns on the 2.4 GHz clock is 8 cycles (still on the command grid).
    EXPECT_EQ(d5.cycles(3.0), 8u);
}

TEST(Ddr5, HiraHeadlineHoldsOnDdr5)
{
    // The 51.4 % two-row latency reduction is set by tRAS/tRP/t1/t2,
    // which barely move across generations.
    TimingParams d5 = ddr5_4800();
    EXPECT_NEAR(d5.hiraLatencyReduction(), 0.51, 0.02);
}

TEST(Ddr5, TimingModelRunsOnDdr5)
{
    Geometry geom = Geometry::forCapacityGb(16.0);
    TimingParams d5 = ddr5_4800(16.0);
    ChannelTimingModel model(geom, d5);
    const TimingCycles &tc = model.cycles();
    model.issueAct(0, 0, 5, 0);
    EXPECT_EQ(model.earliestRd(0, 0), tc.rcd);
    Cycle second = model.issueHira(0, 1, 7, 9,
                                   model.earliestHira(0, 1));
    EXPECT_EQ(second, model.earliestHira(0, 1) == 0
                          ? tc.hiraSpan()
                          : second);
    EXPECT_EQ(model.openRow(0, 1), 9u);
}

TEST(Ddr5, RefreshIntervalCyclesConsistent)
{
    TimingParams d5 = ddr5_4800();
    TimingCycles tc(d5);
    // 3.9 us at 2.4 GHz = 9360 cycles (same count as DDR4's 7.8 us at
    // 1.2 GHz, by construction of the standards).
    EXPECT_EQ(tc.refi, 9360u);
}

TEST(Ddr5, EndToEndSystemRunMatchesAcrossEngines)
{
    // Full-system integration on DDR5-4800 timings through the
    // standards registry: both loop engines must agree bitwise at the
    // SystemResult level, and the run must actually do memory work —
    // the DDR5 grid is not just a timing-table variation, it exercises
    // the halved-tREFI refresh cadence end to end.
    GeomSpec geom;
    geom.standard = "ddr5_4800";
    geom.capacityGb = 16.0;
    SchemeSpec scheme;
    scheme.kind = SchemeKind::Baseline;
    SystemConfig cfg = makeSystemConfig(
        geom, scheme, {"mcf-like", "libquantum-like"}, 77);
    EXPECT_DOUBLE_EQ(cfg.tp.tCK, ddr5_4800(16.0).tCK);

    auto runWith = [&cfg](SimEngine engine) {
        SystemConfig c = cfg;
        c.engine = engine;
        System sys(c);
        sys.run(3000);
        sys.resetStats();
        sys.run(20000);
        return sys.result();
    };
    SystemResult cyc = runWith(SimEngine::CycleLoop);
    SystemResult evt = runWith(SimEngine::EventLoop);

    ASSERT_EQ(cyc.ipc.size(), evt.ipc.size());
    for (std::size_t i = 0; i < cyc.ipc.size(); ++i)
        EXPECT_EQ(cyc.ipc[i], evt.ipc[i]) << "core " << i;
    EXPECT_EQ(cyc.memReads, evt.memReads);
    EXPECT_EQ(cyc.memWrites, evt.memWrites);
    EXPECT_EQ(cyc.avgReadLatencyCycles, evt.avgReadLatencyCycles);
    EXPECT_EQ(cyc.refresh.refCommands, evt.refresh.refCommands);
    EXPECT_EQ(cyc.controller.acts, evt.controller.acts);
    EXPECT_EQ(cyc.controller.refs, evt.controller.refs);

    EXPECT_GT(cyc.memReads, 0u);
    EXPECT_GT(cyc.refresh.refCommands, 0u);
    // DDR5's tREFI is half DDR4's in wall clock but the same cycle
    // count on the doubled clock: 20k measured cycles hold >= 2 REFs.
    EXPECT_GE(cyc.refresh.refCommands, 2u);
}
