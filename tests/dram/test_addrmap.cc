/**
 * @file
 * Tests for the MOP address mapper: bijection across geometries
 * (parameterized), MOP block locality, and channel interleaving.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "dram/addrmap.hh"

using namespace hira;

namespace {

Geometry
makeGeom(int channels, int ranks, double capacity_gb)
{
    Geometry g = Geometry::forCapacityGb(capacity_gb);
    g.channels = channels;
    g.ranksPerChannel = ranks;
    return g;
}

} // namespace

class AddrMapParam
    : public ::testing::TestWithParam<std::tuple<int, int, double>>
{
};

TEST_P(AddrMapParam, DecodeEncodeBijection)
{
    auto [channels, ranks, cap] = GetParam();
    AddressMapper map(makeGeom(channels, ranks, cap));
    Rng rng(hashCombine(static_cast<std::uint64_t>(channels),
                        static_cast<std::uint64_t>(ranks)));
    for (int i = 0; i < 2000; ++i) {
        Addr a = rng.next() % map.addressSpaceBytes();
        a &= ~Addr(63); // line aligned
        DramAddr da = map.decode(a);
        EXPECT_EQ(map.encode(da), a);
        EXPECT_LT(da.channel, channels);
        EXPECT_LT(da.rank, ranks);
        EXPECT_LT(da.bank, 16u);
        EXPECT_LT(da.row, map.geometry().rowsPerBank);
        EXPECT_LT(da.col, map.geometry().colsPerRow);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddrMapParam,
    ::testing::Values(std::make_tuple(1, 1, 8.0),
                      std::make_tuple(2, 1, 8.0),
                      std::make_tuple(4, 2, 8.0),
                      std::make_tuple(8, 8, 8.0),
                      std::make_tuple(1, 1, 2.0),
                      std::make_tuple(1, 1, 32.0),
                      std::make_tuple(2, 4, 128.0)));

TEST(AddrMap, MopBlockStaysInOneRow)
{
    AddressMapper map(makeGeom(2, 1, 8.0));
    // Four consecutive cache lines (one MOP block) share the row/bank.
    DramAddr first = map.decode(0);
    for (Addr a = 64; a < 4 * 64; a += 64) {
        DramAddr da = map.decode(a);
        EXPECT_EQ(da.channel, first.channel);
        EXPECT_EQ(da.bank, first.bank);
        EXPECT_EQ(da.row, first.row);
        EXPECT_NE(da.col, first.col);
    }
}

TEST(AddrMap, NextMopBlockSwitchesChannel)
{
    AddressMapper map(makeGeom(2, 1, 8.0));
    DramAddr block0 = map.decode(0);
    DramAddr block1 = map.decode(4 * 64);
    EXPECT_NE(block0.channel, block1.channel);
}

TEST(AddrMap, StreamTouchesAllBanks)
{
    Geometry g = makeGeom(1, 1, 8.0);
    AddressMapper map(g);
    std::vector<bool> seen(16, false);
    // One MOP block per bank: 16 blocks of 4 lines.
    for (Addr a = 0; a < 16 * 4 * 64; a += 64)
        seen[map.decode(a).bank] = true;
    for (int b = 0; b < 16; ++b)
        EXPECT_TRUE(seen[static_cast<std::size_t>(b)]) << "bank " << b;
}

TEST(AddrMap, WrapsAddressSpace)
{
    AddressMapper map(makeGeom(1, 1, 8.0));
    Addr space = map.addressSpaceBytes();
    EXPECT_EQ(map.decode(space + 128).row, map.decode(128).row);
    EXPECT_EQ(map.decode(space + 128).col, map.decode(128).col);
}

TEST(AddrMap, SubLineBitsIgnoredByCoordinates)
{
    AddressMapper map(makeGeom(1, 1, 8.0));
    DramAddr a = map.decode(4096);
    DramAddr b = map.decode(4096 + 17);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.col, b.col);
    EXPECT_EQ(a.bank, b.bank);
}
