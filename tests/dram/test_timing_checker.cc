/**
 * @file
 * Tests for the independent command-trace auditor: legal traces pass,
 * each class of violation is detected, and HiRA-tagged sequences are
 * held to the HiRA rules instead of nominal tRAS / tRP.
 */

#include <gtest/gtest.h>

#include "dram/timing_checker.hh"
#include "dram/timing_state.hh"

using namespace hira;

namespace {

struct Fixture
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    TimingParams tp = ddr4_2400(8.0);
    TimingCycles tc{tp};
    TimingChecker checker{geom, tp};

    Command
    cmd(CommandType t, Cycle cyc, BankId bank = 0, RowId row = 0,
        HiraRole role = HiraRole::None, int rank = 0)
    {
        Command c;
        c.type = t;
        c.cycle = cyc;
        c.rank = rank;
        c.bank = bank;
        c.row = row;
        c.hiraRole = role;
        return c;
    }
};

} // namespace

TEST(TimingChecker, LegalOpenReadCloseTracePasses)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 0, 0, 5),
        f.cmd(CommandType::RD, f.tc.rcd, 0, 5),
        f.cmd(CommandType::PRE, f.tc.ras, 0),
        f.cmd(CommandType::ACT, f.tc.ras + f.tc.rp, 0, 6),
    };
    EXPECT_TRUE(f.checker.check(trace).empty());
}

TEST(TimingChecker, DetectsRcdViolation)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 0, 0, 5),
        f.cmd(CommandType::RD, f.tc.rcd - 1, 0, 5),
    };
    auto v = f.checker.check(trace);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("tRCD"), std::string::npos);
}

TEST(TimingChecker, DetectsRasViolation)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 0, 0, 5),
        f.cmd(CommandType::PRE, f.tc.ras - 1, 0),
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].message.find("tRAS"), std::string::npos);
}

TEST(TimingChecker, DetectsRpViolation)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 0, 0, 5),
        f.cmd(CommandType::PRE, f.tc.ras, 0),
        f.cmd(CommandType::ACT, f.tc.ras + f.tc.rp - 1, 0, 6),
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].message.find("tRP"), std::string::npos);
}

TEST(TimingChecker, DetectsActToOpenBank)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 0, 0, 5),
        f.cmd(CommandType::ACT, f.tc.rc, 0, 6),
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].message.find("open row"), std::string::npos);
}

TEST(TimingChecker, DetectsRrdViolation)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 0, 0, 5),
        f.cmd(CommandType::ACT, 1, 4, 5), // other group: needs tRRD_S
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].message.find("tRRD"), std::string::npos);
}

TEST(TimingChecker, DetectsFawViolation)
{
    Fixture f;
    std::vector<Command> trace;
    // Five ACTs spaced by exactly tRRD_S (4 cycles): the 5th lands at
    // cycle 16 < tFAW (20) after the 1st.
    BankId banks[5] = {0, 4, 8, 12, 1};
    Cycle t = 0;
    for (int i = 0; i < 5; ++i) {
        trace.push_back(f.cmd(CommandType::ACT, t, banks[i], 1));
        t += f.tc.rrdS;
    }
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v.back().message.find("tFAW"), std::string::npos);
}

TEST(TimingChecker, HiraSequenceWithExactTimingsPasses)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 100, 0, 7, HiraRole::FirstAct),
        f.cmd(CommandType::PRE, 100 + f.tc.c1, 0, 0, HiraRole::CutPre),
        f.cmd(CommandType::ACT, 100 + f.tc.c1 + f.tc.c2, 0, 9,
              HiraRole::SecondAct),
        f.cmd(CommandType::RD, 100 + f.tc.c1 + f.tc.c2 + f.tc.rcd, 0, 9),
        f.cmd(CommandType::PRE, 100 + f.tc.c1 + f.tc.c2 + f.tc.ras, 0),
    };
    auto v = f.checker.check(trace);
    EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].message);
}

TEST(TimingChecker, UntaggedHiraTimingIsFlagged)
{
    Fixture f;
    // The same violated timings without HiRA tags must be caught.
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 100, 0, 7),
        f.cmd(CommandType::PRE, 100 + f.tc.c1, 0),
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].message.find("tRAS"), std::string::npos);
}

TEST(TimingChecker, HiraWithWrongGapIsFlagged)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 100, 0, 7, HiraRole::FirstAct),
        f.cmd(CommandType::PRE, 100 + f.tc.c1 + 1, 0, 0, HiraRole::CutPre),
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].message.find("not exactly t1"), std::string::npos);
}

TEST(TimingChecker, HiraSecondActWithoutCutPreIsFlagged)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 100, 0, 7),
        f.cmd(CommandType::PRE, 100 + f.tc.ras, 0),
        f.cmd(CommandType::ACT, 100 + f.tc.ras + f.tc.rp, 0, 9,
              HiraRole::SecondAct),
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
}

TEST(TimingChecker, HiraActsStillCountTowardFaw)
{
    Fixture f;
    Cycle t = 0;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, t, 0, 7, HiraRole::FirstAct),
        f.cmd(CommandType::PRE, t + f.tc.c1, 0, 0, HiraRole::CutPre),
        f.cmd(CommandType::ACT, t + f.tc.c1 + f.tc.c2, 0, 9,
              HiraRole::SecondAct),
    };
    // Two more ACTs fill the window; a fifth one cycle before the tFAW
    // boundary (cycle 19 vs first ACT at 0, tFAW = 20) must be flagged.
    Cycle t3 = t + f.tc.c1 + f.tc.c2 + f.tc.rrdS;
    trace.push_back(f.cmd(CommandType::ACT, t3, 4, 1));
    trace.push_back(f.cmd(CommandType::ACT, t3 + f.tc.rrdS, 8, 1));
    trace.push_back(
        f.cmd(CommandType::ACT, t3 + 2 * f.tc.rrdS - 1, 12, 1));
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    bool found = false;
    for (const auto &viol : v)
        found = found || viol.message.find("tFAW") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(TimingChecker, RefWindowBlocksCommands)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::REF, 0),
        f.cmd(CommandType::ACT, f.tc.rfc - 1, 0, 1),
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].message.find("tRFC"), std::string::npos);
}

TEST(TimingChecker, RefWithOpenBankIsFlagged)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 0, 0, 1),
        f.cmd(CommandType::REF, f.tc.ras),
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].message.find("open bank"), std::string::npos);
}

TEST(TimingChecker, CommandBusConflictDetected)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 5, 0, 1),
        f.cmd(CommandType::ACT, 5, 4, 1),
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].message.find("command-bus"), std::string::npos);
}

TEST(TimingChecker, UnsortedTraceDetected)
{
    Fixture f;
    std::vector<Command> trace = {
        f.cmd(CommandType::ACT, 10, 0, 1),
        f.cmd(CommandType::PRE, 5, 0),
    };
    auto v = f.checker.check(trace);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].message.find("sorted"), std::string::npos);
}

TEST(TimingChecker, ModelDrivenRandomTraceIsLegal)
{
    // Property: any trace generated by driving ChannelTimingModel at its
    // own earliest-issue times must audit clean.
    Fixture f;
    ChannelTimingModel model(f.geom, f.tp);
    std::vector<Command> trace;
    Cycle bus = 0;
    auto push = [&](Command c) {
        c.cycle = std::max(c.cycle, bus + 1);
        bus = c.cycle;
        trace.push_back(c);
        return c.cycle;
    };
    // Interleave activity on several banks, including HiRA ops.
    for (int iter = 0; iter < 50; ++iter) {
        BankId bank = static_cast<BankId>((iter * 5) % 16);
        if (model.openRow(0, bank) != kNoRow) {
            Cycle t = push(f.cmd(CommandType::RD,
                                 model.earliestRd(0, bank), bank,
                                 model.openRow(0, bank)));
            model.issueRd(0, bank, t);
            t = push(f.cmd(CommandType::PRE, model.earliestPre(0, bank),
                           bank));
            model.issuePre(0, bank, t);
        } else if (iter % 3 == 0) {
            Cycle t = push(f.cmd(CommandType::ACT,
                                 model.earliestHira(0, bank), bank, 7,
                                 HiraRole::FirstAct));
            Cycle second = model.issueHira(0, bank, 7, 9, t);
            Command pre = f.cmd(CommandType::PRE, t + f.tc.c1, bank, 0,
                                HiraRole::CutPre);
            bus = pre.cycle;
            trace.push_back(pre);
            Command act2 = f.cmd(CommandType::ACT, second, bank, 9,
                                 HiraRole::SecondAct);
            bus = act2.cycle;
            trace.push_back(act2);
        } else {
            Cycle t = push(f.cmd(CommandType::ACT,
                                 model.earliestAct(0, bank), bank, 3));
            model.issueAct(0, bank, 3, t);
        }
    }
    auto v = f.checker.check(trace);
    EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].message);
}
