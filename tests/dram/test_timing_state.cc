/**
 * @file
 * Tests for ChannelTimingModel: each DDR4 constraint in isolation, the
 * HiRA sequence semantics, tFAW with HiRA's double activation, and the
 * REF blocking window.
 */

#include <gtest/gtest.h>

#include "dram/timing_state.hh"

using namespace hira;

namespace {

struct Fixture
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    TimingParams tp = ddr4_2400(8.0);
    ChannelTimingModel model{geom, tp};
    const TimingCycles &tc = model.cycles();
};

} // namespace

TEST(TimingCycles, ConversionTable)
{
    TimingCycles tc(ddr4_2400(8.0));
    EXPECT_EQ(tc.rcd, 18u);  // 14.25 / 0.8333
    EXPECT_EQ(tc.rp, 18u);
    EXPECT_EQ(tc.ras, 39u);  // 32 ns
    EXPECT_EQ(tc.rc, 56u);   // 46.25 ns
    EXPECT_EQ(tc.faw, 20u);  // 16 ns
    EXPECT_EQ(tc.c1, 4u);    // 3 ns
    EXPECT_EQ(tc.c2, 4u);
    EXPECT_EQ(tc.hiraSpan(), 8u);
    EXPECT_EQ(tc.refi, 9360u);
}

TEST(TimingState, FreshBankImmediatelyActivatable)
{
    Fixture f;
    EXPECT_EQ(f.model.earliestAct(0, 0), 0u);
    EXPECT_TRUE(f.model.bankClosed(0, 0));
}

TEST(TimingState, ActSetsRcdRasRc)
{
    Fixture f;
    f.model.issueAct(0, 0, 42, 100);
    EXPECT_EQ(f.model.openRow(0, 0), 42u);
    EXPECT_EQ(f.model.earliestRd(0, 0), 100 + f.tc.rcd);
    EXPECT_EQ(f.model.earliestWr(0, 0), 100 + f.tc.rcd);
    EXPECT_EQ(f.model.earliestPre(0, 0), 100 + f.tc.ras);
    // Same-bank re-activation: tRC (after an intervening PRE).
    EXPECT_GE(f.model.earliestAct(0, 0), 100 + f.tc.rc);
}

TEST(TimingState, PreThenActRespectsRp)
{
    Fixture f;
    f.model.issueAct(0, 0, 1, 0);
    Cycle pre_at = f.model.earliestPre(0, 0);
    f.model.issuePre(0, 0, pre_at);
    EXPECT_TRUE(f.model.bankClosed(0, 0));
    EXPECT_GE(f.model.earliestAct(0, 0), pre_at + f.tc.rp);
}

TEST(TimingState, RrdBetweenBanks)
{
    Fixture f;
    f.model.issueAct(0, 0, 1, 0);
    // Bank 1 shares the bank group with bank 0 -> tRRD_L.
    EXPECT_EQ(f.model.earliestAct(0, 1), f.tc.rrdL);
    // Bank 4 is in another group -> tRRD_S.
    EXPECT_EQ(f.model.earliestAct(0, 4), f.tc.rrdS);
}

TEST(TimingState, FawLimitsFourActivations)
{
    Fixture f;
    // Four ACTs to different bank groups as fast as tRRD_S allows.
    Cycle t = 0;
    for (BankId b : {BankId(0), BankId(4), BankId(8), BankId(12)}) {
        t = std::max(t, f.model.earliestAct(0, b));
        f.model.issueAct(0, b, 1, t);
    }
    // The fifth ACT must wait for the tFAW window from the first.
    Cycle fifth = f.model.earliestAct(0, 1);
    EXPECT_GE(fifth, f.tc.faw);
}

TEST(TimingState, ReadOccupiesDataBusAndSetsRtp)
{
    Fixture f;
    f.model.issueAct(0, 0, 1, 0);
    Cycle rd_at = f.model.earliestRd(0, 0);
    Cycle done = f.model.issueRd(0, 0, rd_at);
    EXPECT_EQ(done, rd_at + f.tc.cl + f.tc.bl);
    EXPECT_GE(f.model.earliestPre(0, 0), rd_at + f.tc.rtp);
    EXPECT_EQ(f.model.dataBusBusyCycles(), f.tc.bl);
}

TEST(TimingState, ConsecutiveReadsSpacedByCcd)
{
    Fixture f;
    f.model.issueAct(0, 0, 1, 0);
    f.model.issueAct(0, 4, 1, f.model.earliestAct(0, 4));
    Cycle rd1 = f.model.earliestRd(0, 0);
    f.model.issueRd(0, 0, rd1);
    // Same bank group -> tCCD_L; different group -> tCCD_S.
    EXPECT_GE(f.model.earliestRd(0, 0), rd1 + f.tc.ccdL);
    EXPECT_GE(f.model.earliestRd(0, 4), rd1 + f.tc.ccdS);
}

TEST(TimingState, WriteRecoveryBeforePre)
{
    Fixture f;
    f.model.issueAct(0, 0, 1, 0);
    Cycle wr_at = f.model.earliestWr(0, 0);
    f.model.issueWr(0, 0, wr_at);
    EXPECT_GE(f.model.earliestPre(0, 0),
              wr_at + f.tc.cwl + f.tc.bl + f.tc.wr);
}

TEST(TimingState, WriteToReadTurnaround)
{
    Fixture f;
    f.model.issueAct(0, 0, 1, 0);
    f.model.issueAct(0, 4, 1, f.model.earliestAct(0, 4));
    Cycle wr_at = f.model.earliestWr(0, 0);
    f.model.issueWr(0, 0, wr_at);
    Cycle wr_end = wr_at + f.tc.cwl + f.tc.bl;
    EXPECT_GE(f.model.earliestRd(0, 4), wr_end + f.tc.wtrS);
    EXPECT_GE(f.model.earliestRd(0, 0), wr_end + f.tc.wtrL);
}

TEST(TimingState, RefBlocksWholeRank)
{
    Fixture f;
    Cycle ref_at = f.model.earliestRef(0);
    f.model.issueRef(0, ref_at);
    for (BankId b = 0; b < 16; ++b)
        EXPECT_GE(f.model.earliestAct(0, b), ref_at + f.tc.rfc);
}

TEST(TimingState, RefDoesNotBlockOtherRanks)
{
    Geometry g = Geometry::forCapacityGb(8.0);
    g.ranksPerChannel = 2;
    ChannelTimingModel model(g, ddr4_2400(8.0));
    model.issueRef(0, 0);
    EXPECT_EQ(model.earliestAct(1, 0), 0u);
}

TEST(TimingState, RefAfterPreWaitsForRp)
{
    Fixture f;
    f.model.issueAct(0, 3, 9, 0);
    Cycle pre_at = f.model.earliestPre(0, 3);
    f.model.issuePre(0, 3, pre_at);
    EXPECT_GE(f.model.earliestRef(0), pre_at + f.tc.rp);
}

TEST(TimingState, HiraSequenceTiming)
{
    Fixture f;
    Cycle start = f.model.earliestHira(0, 0);
    Cycle second = f.model.issueHira(0, 0, /*refresh_row=*/7,
                                     /*second_row=*/9, start);
    EXPECT_EQ(second, start + f.tc.hiraSpan());
    // Bank behaves as if second_row was activated at `second`.
    EXPECT_EQ(f.model.openRow(0, 0), 9u);
    EXPECT_EQ(f.model.earliestRd(0, 0), second + f.tc.rcd);
    EXPECT_EQ(f.model.earliestPre(0, 0), second + f.tc.ras);
}

TEST(TimingState, HiraTwoRowLatencyBeatsNominal)
{
    // The §4.2 headline, stated in bus cycles: HiRA refreshes two rows in
    // span + tRAS; nominal commands need tRAS + tRP + tRAS.
    Fixture f;
    Cycle hira = f.tc.hiraSpan() + f.tc.ras;
    Cycle nominal = 2 * f.tc.ras + f.tc.rp;
    EXPECT_LT(hira, nominal);
    double reduction = 1.0 - double(hira) / double(nominal);
    EXPECT_NEAR(reduction, 0.514, 0.03);
}

TEST(TimingState, HiraCountsTwoActsAgainstFaw)
{
    Fixture f;
    // HiRA (2 ACTs) + 2 single ACTs fill the tFAW window of 4.
    Cycle s = f.model.issueHira(0, 0, 1, 2, 0);
    Cycle t = std::max(f.model.earliestAct(0, 4), s + 1);
    f.model.issueAct(0, 4, 1, t);
    t = f.model.earliestAct(0, 8);
    f.model.issueAct(0, 8, 1, t);
    // A fifth activation (bank 12) must respect tFAW from HiRA's first.
    EXPECT_GE(f.model.earliestAct(0, 12), f.tc.faw);
}

TEST(TimingState, HiraNeedsTwoFawSlots)
{
    Fixture f;
    // Fill three of the four tFAW slots right away.
    Cycle t = 0;
    for (BankId b : {BankId(0), BankId(4), BankId(8)}) {
        t = std::max(t, f.model.earliestAct(0, b));
        f.model.issueAct(0, b, 1, t);
    }
    // A plain ACT could go as the 4th activation, but a HiRA op needs
    // room for two, so its earliest start is later than a plain ACT's.
    Cycle plain = f.model.earliestAct(0, 12);
    Cycle hira = f.model.earliestHira(0, 12);
    EXPECT_GE(hira, plain);
}

TEST(TimingState, EarliestRdAccountsForDataBusRankSwitch)
{
    Geometry g = Geometry::forCapacityGb(8.0);
    g.ranksPerChannel = 2;
    ChannelTimingModel model(g, ddr4_2400(8.0));
    TimingCycles tc(ddr4_2400(8.0));
    model.issueAct(0, 0, 1, 0);
    model.issueAct(1, 0, 1, tc.rrdS); // other rank: no tRRD coupling needed
    Cycle rd0 = model.earliestRd(0, 0);
    model.issueRd(0, 0, rd0);
    Cycle rd1 = model.earliestRd(1, 0);
    // Rank switch: burst must start tRTRS after the previous burst ends.
    EXPECT_GE(rd1 + tc.cl, rd0 + tc.cl + tc.bl + tc.rtrs);
}
