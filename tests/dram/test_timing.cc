/**
 * @file
 * Tests for DDR4 timing parameters, cycle conversion, the Expression-1
 * tRFC capacity scaling, and the Section-4.2 headline latency arithmetic.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dram/timing.hh"

using namespace hira;

TEST(Timing, DefaultsMatchTable3)
{
    TimingParams tp;
    EXPECT_DOUBLE_EQ(tp.tRC, 46.25);
    EXPECT_DOUBLE_EQ(tp.tRAS, 32.0);
    EXPECT_DOUBLE_EQ(tp.tRP, 14.25);
    EXPECT_DOUBLE_EQ(tp.tFAW, 16.0);
    EXPECT_DOUBLE_EQ(tp.t1, 3.0);
    EXPECT_DOUBLE_EQ(tp.t2, 3.0);
    EXPECT_DOUBLE_EQ(tp.tREFI, 7800.0);
}

TEST(Timing, CycleConversionRoundsUp)
{
    TimingParams tp;
    // tCK = 0.8333 ns: 3 ns -> 4 cycles, 14.25 ns -> 18 cycles.
    EXPECT_EQ(tp.cycles(3.0), 4u);
    EXPECT_EQ(tp.cycles(14.25), 18u);
    EXPECT_EQ(tp.cycles(0.0), 0u);
    // Exact multiples must not round up an extra cycle.
    EXPECT_EQ(tp.cycles(tp.tCK * 10), 10u);
}

TEST(Timing, NsRoundTrip)
{
    TimingParams tp;
    EXPECT_NEAR(tp.ns(12), 10.0, 1e-9);
}

TEST(Timing, Expression1RfcScaling)
{
    // tRFC = 110 * C^0.6 (paper Expression 1).
    EXPECT_NEAR(TimingParams::scaledRfc(8.0), 110.0 * std::pow(8.0, 0.6),
                1e-9);
    EXPECT_NEAR(TimingParams::scaledRfc(8.0), 383.0, 1.0);
    EXPECT_NEAR(TimingParams::scaledRfc(128.0), 2026.0, 5.0);
    EXPECT_NEAR(TimingParams::scaledRfc(2.0), 166.7, 1.0);
}

TEST(Timing, RfcGrowsSublinearly)
{
    double r8 = TimingParams::scaledRfc(8.0);
    double r16 = TimingParams::scaledRfc(16.0);
    EXPECT_GT(r16, r8);
    EXPECT_LT(r16, 2.0 * r8);
}

TEST(Timing, SetCapacityAppliesRfc)
{
    TimingParams tp;
    tp.setCapacityGb(32.0);
    EXPECT_NEAR(tp.tRFC, TimingParams::scaledRfc(32.0), 1e-9);
    EXPECT_EQ(ddr4_2400(32.0).tRFC, tp.tRFC);
}

TEST(Timing, Section42HeadlineLatencies)
{
    TimingParams tp;
    // Two rows with nominal commands: 2*tRAS + tRP = 78.25 ns.
    EXPECT_NEAR(tp.nominalTwoRowRefreshNs(), 78.25, 1e-9);
    // With HiRA: t1 + t2 + tRAS = 38 ns.
    EXPECT_NEAR(tp.hiraTwoRowRefreshNs(), 38.0, 1e-9);
    // Headline: 51.4 % reduction.
    EXPECT_NEAR(tp.hiraLatencyReduction(), 0.514, 0.001);
}

TEST(Timing, BaselineRefreshOverheadFractionAt128Gb)
{
    // The rank is blocked tRFC out of every tREFI; at 128 Gb that is
    // ~26 %, the first-order source of the paper's 26.3 % (Fig. 9a).
    TimingParams tp = ddr4_2400(128.0);
    double blocked = tp.tRFC / tp.tREFI;
    EXPECT_NEAR(blocked, 0.26, 0.01);
}
