/**
 * @file
 * Tests for the memory-standard registry (dram/standard.hh): name
 * lookups, the HIRA_STANDARD knob, the fatal unknown-name diagnostic,
 * and the presets' basic sanity relative to each other.
 */

#include <gtest/gtest.h>

#include <stdlib.h>

#include "dram/standard.hh"

using namespace hira;

TEST(StandardRegistry, KnownStandardsResolve)
{
    EXPECT_STREQ(standardByName("ddr4_2400").name, "ddr4_2400");
    EXPECT_STREQ(standardByName("ddr5_4800").name, "ddr5_4800");
    EXPECT_STREQ(standardByName("lpddr5_6400").name, "lpddr5_6400");
    EXPECT_STREQ(standardByName("ddr4_2400").display, "DDR4-2400");
}

TEST(StandardRegistry, RegistryIsCompleteAndNamed)
{
    // Every entry must resolve through its own name, and the
    // diagnostic list must mention all of them.
    std::string names = knownStandardNames();
    for (const MemoryStandard &s : standardRegistry()) {
        EXPECT_EQ(&standardByName(s.name), &s);
        EXPECT_NE(names.find(s.name), std::string::npos) << s.name;
    }
    EXPECT_GE(standardRegistry().size(), 3u);
}

TEST(StandardRegistry, FactoriesMatchThePresets)
{
    TimingParams viaRegistry = standardByName("ddr5_4800").make(16.0);
    TimingParams direct = ddr5_4800(16.0);
    EXPECT_DOUBLE_EQ(viaRegistry.tCK, direct.tCK);
    EXPECT_DOUBLE_EQ(viaRegistry.tREFI, direct.tREFI);
    EXPECT_DOUBLE_EQ(viaRegistry.tRC, direct.tRC);
}

TEST(StandardRegistry, Lpddr5StubIsFasterClockSameRefreshBeat)
{
    // The LPDDR5-6400 stub: 3.2 GHz clock, DDR5-style halved tREFI.
    TimingParams lp = standardByName("lpddr5_6400").make(16.0);
    TimingParams d4 = standardByName("ddr4_2400").make(16.0);
    EXPECT_LT(lp.tCK, d4.tCK);
    EXPECT_DOUBLE_EQ(lp.tREFI, d4.tREFI / 2.0);
}

TEST(StandardRegistry, KnobSelectsTheDefault)
{
    ::unsetenv("HIRA_STANDARD");
    EXPECT_EQ(defaultStandardName(), "ddr4_2400");
    ::setenv("HIRA_STANDARD", "ddr5_4800", 1);
    EXPECT_EQ(defaultStandardName(), "ddr5_4800");
    ::setenv("HIRA_STANDARD", "", 1);
    EXPECT_EQ(defaultStandardName(), "ddr4_2400");
    ::unsetenv("HIRA_STANDARD");
}

TEST(StandardRegistryDeath, UnknownNameIsFatalAndListsTheRegistry)
{
    // A typo must never silently fall back to DDR4 timings; the
    // diagnostic names every registered standard.
    EXPECT_EXIT(standardByName("ddr6_9600"),
                ::testing::ExitedWithCode(1),
                "unknown memory standard 'ddr6_9600'.*ddr4_2400.*"
                "ddr5_4800.*lpddr5_6400");
}

TEST(StandardRegistryDeath, UnknownKnobValueIsFatal)
{
    ::setenv("HIRA_STANDARD", "bogus", 1);
    EXPECT_EXIT(defaultStandardName(), ::testing::ExitedWithCode(1),
                "unknown memory standard 'bogus'");
    ::unsetenv("HIRA_STANDARD");
}
