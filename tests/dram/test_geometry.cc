/**
 * @file
 * Tests for DRAM geometry derivation and capacity scaling.
 */

#include <gtest/gtest.h>

#include "dram/geometry.hh"

using namespace hira;

TEST(Geometry, Table3Defaults)
{
    Geometry g;
    EXPECT_EQ(g.banksPerRank(), 16);
    EXPECT_EQ(g.rowsPerBank, 65536u);
    EXPECT_EQ(g.subarraysPerBank, 128u);
    EXPECT_EQ(g.rowsPerSubarray(), 512u);
    EXPECT_EQ(g.colsPerRow * g.lineBytes, 8192u); // 8 KB rows
}

TEST(Geometry, BankCountsAcrossSystem)
{
    Geometry g;
    g.channels = 2;
    g.ranksPerChannel = 4;
    EXPECT_EQ(g.banksPerChannel(), 64);
    EXPECT_EQ(g.totalBanks(), 128);
}

TEST(Geometry, BankGroupOf)
{
    Geometry g;
    EXPECT_EQ(g.bankGroupOf(0), 0);
    EXPECT_EQ(g.bankGroupOf(3), 0);
    EXPECT_EQ(g.bankGroupOf(4), 1);
    EXPECT_EQ(g.bankGroupOf(15), 3);
}

TEST(Geometry, CapacityScalingRows)
{
    auto g2 = Geometry::forCapacityGb(2.0);
    auto g8 = Geometry::forCapacityGb(8.0);
    auto g128 = Geometry::forCapacityGb(128.0);
    EXPECT_EQ(g2.rowsPerBank, 16384u);
    EXPECT_EQ(g8.rowsPerBank, 65536u);
    EXPECT_EQ(g128.rowsPerBank, 1048576u);
}

TEST(Geometry, RefreshGroupScalingIsSublinear)
{
    // DESIGN.md scaling model: refresh groups per bank scale as C^0.3.
    auto g8 = Geometry::forCapacityGb(8.0);
    auto g128 = Geometry::forCapacityGb(128.0);
    EXPECT_EQ(g8.refreshGroupsPerBank, 65536u);
    EXPECT_GT(g128.refreshGroupsPerBank, g8.refreshGroupsPerBank);
    // 16x capacity -> 16^0.3 ~ 2.30x refresh work, not 16x.
    double ratio = double(g128.refreshGroupsPerBank) /
                   double(g8.refreshGroupsPerBank);
    EXPECT_NEAR(ratio, 2.30, 0.05);
}

TEST(Geometry, RefreshGroupsNeverExceedRows)
{
    for (double c : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
        auto g = Geometry::forCapacityGb(c);
        EXPECT_LE(g.refreshGroupsPerBank, g.rowsPerBank)
            << "capacity " << c;
    }
}

TEST(Geometry, TotalBytesMatchCapacity)
{
    // A 1-channel, 1-rank system of 8 Gb x8 chips: rank capacity is
    // 8 Gb * 8 chips = 8 GB.
    Geometry g = Geometry::forCapacityGb(8.0);
    EXPECT_EQ(g.totalBytes(), 8ull << 30);
}

TEST(Geometry, SmallCapacityRefreshGroupsClampToRows)
{
    // Below the 8 Gb anchor the C^0.6 model would exceed one external
    // refresh per row; it must clamp to the row count.
    auto g2 = Geometry::forCapacityGb(2.0);
    EXPECT_EQ(g2.refreshGroupsPerBank, g2.rowsPerBank);
}
