/**
 * @file
 * Tests for the 22 nm SRAM model and the Table 2 cost breakdown.
 */

#include <gtest/gtest.h>

#include "hwmodel/sram_model.hh"

using namespace hira;

TEST(SramModel, AreaMonotonicInEntriesAndBits)
{
    double a1 = estimateSram(64, 16).areaMm2;
    double a2 = estimateSram(128, 16).areaMm2;
    double a3 = estimateSram(128, 32).areaMm2;
    EXPECT_LT(a1, a2);
    EXPECT_LT(a2, a3);
}

TEST(SramModel, LatencyMonotonicInEntries)
{
    EXPECT_LT(estimateSram(64, 16).accessNs,
              estimateSram(4096, 16).accessNs);
}

TEST(SramModel, Table2RefreshTable)
{
    auto cost = hiraMcCost();
    // Paper: 0.00031 mm^2, 0.07 ns.
    EXPECT_NEAR(cost.refreshTable.sram.areaMm2, 0.00031, 0.00015);
    EXPECT_NEAR(cost.refreshTable.sram.accessNs, 0.07, 0.02);
    EXPECT_EQ(cost.refreshTable.sram.entries, 68u);
}

TEST(SramModel, Table2RefPtrTable)
{
    auto cost = hiraMcCost();
    // Paper: 0.00683 mm^2, 0.12 ns, 2048 entries x 10 bits.
    EXPECT_NEAR(cost.refPtrTable.sram.areaMm2, 0.00683, 0.0015);
    EXPECT_NEAR(cost.refPtrTable.sram.accessNs, 0.12, 0.02);
    EXPECT_EQ(cost.refPtrTable.sram.entries, 2048u);
    EXPECT_EQ(cost.refPtrTable.sram.bitsPerEntry, 10u);
}

TEST(SramModel, Table2PrFifo)
{
    auto cost = hiraMcCost();
    EXPECT_NEAR(cost.prFifo.sram.areaMm2, 0.00029, 0.0002);
    EXPECT_NEAR(cost.prFifo.sram.accessNs, 0.07, 0.02);
}

TEST(SramModel, Table2Spt)
{
    auto cost = hiraMcCost();
    EXPECT_NEAR(cost.spt.sram.areaMm2, 0.0018, 0.0008);
    EXPECT_NEAR(cost.spt.sram.accessNs, 0.09, 0.02);
}

TEST(SramModel, TotalAreaNearPaper)
{
    // Paper: 0.00923 mm^2 per rank overall.
    auto cost = hiraMcCost();
    EXPECT_NEAR(cost.totalAreaMm2(), 0.00923, 0.0025);
}

TEST(SramModel, WorstCaseQueryBelowTrp)
{
    // §6.2's conclusion: the 68-iteration pipelined traversal plus one
    // RefPtr access (~6.31 ns) completes well within tRP (~14.5 ns).
    auto cost = hiraMcCost();
    EXPECT_NEAR(cost.worstCaseQueryNs(), 6.31, 1.2);
    EXPECT_LT(cost.worstCaseQueryNs(), 14.25);
}

TEST(SramModel, DieFractionTiny)
{
    auto cost = hiraMcCost();
    EXPECT_NEAR(cost.dieFraction(), 0.000023, 0.00001);
}

TEST(SramModel, ComponentsListComplete)
{
    auto cost = hiraMcCost();
    auto comps = cost.components();
    ASSERT_EQ(comps.size(), 4u);
    double sum = 0.0;
    for (const auto *c : comps)
        sum += c->sram.areaMm2;
    EXPECT_DOUBLE_EQ(sum, cost.totalAreaMm2());
}

TEST(SramModel, ScalesWithGeometry)
{
    // Doubling banks doubles RefPtr and PR-FIFO capacity.
    auto base = hiraMcCost(16);
    auto big = hiraMcCost(32);
    EXPECT_GT(big.refPtrTable.sram.areaMm2, base.refPtrTable.sram.areaMm2);
    EXPECT_GT(big.prFifo.sram.areaMm2, base.prFifo.sram.areaMm2);
}
