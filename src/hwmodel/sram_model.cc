#include "hwmodel/sram_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace hira {

namespace {

// Fit constants (22 nm, anchored to CACTI 7 results; see DESIGN.md).
constexpr double kBaseAreaUm2 = 100.0;   //!< fixed periphery
constexpr double kAreaPerBitUm2 = 0.115; //!< cell + array overhead
constexpr double kAreaPerEntryUm2 = 2.1; //!< decoder / wordline driver
constexpr double kBaseLatNs = 0.05;
constexpr double kLatPerSqrtEntry = 0.0013;
constexpr double kLatPerSqrtBit = 0.002;

} // namespace

SramEstimate
estimateSram(std::uint32_t entries, std::uint32_t bits_per_entry)
{
    hira_assert(entries > 0 && bits_per_entry > 0);
    SramEstimate e;
    e.entries = entries;
    e.bitsPerEntry = bits_per_entry;
    double bits = static_cast<double>(entries) * bits_per_entry;
    double um2 = kBaseAreaUm2 + kAreaPerBitUm2 * bits +
                 kAreaPerEntryUm2 * entries;
    e.areaMm2 = um2 * 1e-6;
    e.accessNs = kBaseLatNs +
                 kLatPerSqrtEntry * std::sqrt(static_cast<double>(entries)) +
                 kLatPerSqrtBit *
                     std::sqrt(static_cast<double>(bits_per_entry));
    return e;
}

double
HiraMcCost::totalAreaMm2() const
{
    return refreshTable.sram.areaMm2 + refPtrTable.sram.areaMm2 +
           prFifo.sram.areaMm2 + spt.sram.areaMm2;
}

double
HiraMcCost::worstCaseQueryNs() const
{
    // §6.2: 68 pipelined {Refresh Table, SPT} iterations bounded by the
    // slower of the two per iteration, then one RefPtr Table access for
    // the row address of the winning periodic refresh.
    double per_iter =
        std::max(refreshTable.sram.accessNs, spt.sram.accessNs);
    return static_cast<double>(refreshTable.sram.entries) * per_iter +
           refPtrTable.sram.accessNs;
}

double
HiraMcCost::dieFraction() const
{
    // 22 nm Intel processor die [172]; the paper's 0.0023 % of 0.00923
    // mm^2 implies ~400 mm^2.
    constexpr double kDieMm2 = 400.0;
    return totalAreaMm2() / kDieMm2;
}

std::vector<const ComponentCost *>
HiraMcCost::components() const
{
    return {&refreshTable, &refPtrTable, &prFifo, &spt};
}

HiraMcCost
hiraMcCost(int banks_per_rank, int subarrays_per_bank,
           int refresh_table_entries, int pr_fifo_per_bank)
{
    HiraMcCost c;
    // Refresh Table: 10-bit deadline + 4-bit bank id + 2-bit type.
    c.refreshTable = {"Refresh Table",
                      estimateSram(
                          static_cast<std::uint32_t>(refresh_table_entries),
                          16),
                      0.00031, 0.07};
    // RefPtr Table: one 10-bit next-row pointer per subarray per bank.
    c.refPtrTable = {
        "RefPtr Table",
        estimateSram(static_cast<std::uint32_t>(banks_per_rank *
                                                subarrays_per_bank),
                     10),
        0.00683, 0.12};
    // PR-FIFO: 4 victim-row entries per bank (16-bit row + valid).
    c.prFifo = {"PR-FIFO",
                estimateSram(static_cast<std::uint32_t>(banks_per_rank *
                                                        pr_fifo_per_bank),
                             17),
                0.00029, 0.07};
    // SPT: per-subarray bitmap of isolated partner subarrays.
    c.spt = {"Subarray Pairs Table (SPT)",
             estimateSram(static_cast<std::uint32_t>(subarrays_per_bank),
                          static_cast<std::uint32_t>(subarrays_per_bank)),
             0.00180, 0.09};
    return c;
}

} // namespace hira
