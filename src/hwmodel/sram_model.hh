/**
 * @file
 * Analytic 22 nm SRAM area / latency model and the HiRA-MC hardware cost
 * table (Section 6, Table 2).
 *
 * Substitute for CACTI 7.0 [8]: a two-term analytic model (cell array +
 * entry-proportional periphery; wire-delay-dominated access time) with
 * constants anchored to published CACTI 22 nm results. Table 2 needs
 * only order-of-magnitude-correct per-structure costs plus the §6.2
 * pipelined-traversal argument, both of which this captures.
 */

#ifndef HIRA_HWMODEL_SRAM_MODEL_HH
#define HIRA_HWMODEL_SRAM_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hira {

/** Area / latency estimate of one SRAM array at 22 nm. */
struct SramEstimate
{
    std::uint32_t entries;
    std::uint32_t bitsPerEntry;
    double areaMm2;
    double accessNs;
};

/** Estimate one direct-mapped SRAM array. */
SramEstimate estimateSram(std::uint32_t entries,
                          std::uint32_t bits_per_entry);

/** One row of Table 2. */
struct ComponentCost
{
    std::string name;
    SramEstimate sram;
    double paperAreaMm2;   //!< published value, for reporting
    double paperAccessNs;  //!< published value, for reporting
};

/** HiRA-MC's full hardware cost breakdown (per DRAM rank). */
struct HiraMcCost
{
    ComponentCost refreshTable;
    ComponentCost refPtrTable;
    ComponentCost prFifo;
    ComponentCost spt;

    double totalAreaMm2() const;

    /**
     * Worst-case query latency (§6.2): the Concurrent Refresh Finder
     * iterates all 68 Refresh Table entries, reading the Refresh Table
     * and the SPT in a pipeline, then one RefPtr Table access.
     */
    double worstCaseQueryNs() const;

    /** Fraction of a 22 nm processor die (~400 mm^2, [172]). */
    double dieFraction() const;

    std::vector<const ComponentCost *> components() const;
};

/**
 * Build the Table 2 cost model for the given geometry parameters.
 * Defaults follow Section 6: tRefSlack = 4 tRC => 68 Refresh Table
 * entries; 128 subarrays x 16 banks RefPtr; 4-entry PR-FIFO per bank.
 */
HiraMcCost hiraMcCost(int banks_per_rank = 16, int subarrays_per_bank = 128,
                      int refresh_table_entries = 68,
                      int pr_fifo_per_bank = 4);

} // namespace hira

#endif // HIRA_HWMODEL_SRAM_MODEL_HH
