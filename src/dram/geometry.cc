#include "dram/geometry.hh"

#include <cmath>

#include "common/logging.hh"

namespace {
constexpr double kRefreshWorkExponent = 0.3;
}

namespace hira {

Geometry
Geometry::forCapacityGb(double capacity_gb)
{
    hira_assert(capacity_gb > 0.0);
    Geometry g;
    g.capacityGb = capacity_gb;
    double scale = capacity_gb / 8.0;
    double rows = 65536.0 * scale;
    hira_assert(rows >= 1024.0);
    g.rowsPerBank = static_cast<std::uint32_t>(std::lround(rows));
    // External refresh work scales as C^0.3 (see DESIGN.md "Scaling
    // model": the exponent is calibrated so HiRA-0's overhead at 128 Gb
    // matches the paper's reported 19.4 %; Expression 1's C^0.6 governs
    // the baseline's internal refresh time, not the number of
    // externally issued row refreshes). For chips below the 8 Gb anchor
    // the model would exceed one op per row; an external refresh never
    // covers less than one row, so clamp to the row count.
    g.refreshGroupsPerBank = static_cast<std::uint32_t>(
        std::lround(65536.0 * std::pow(scale, kRefreshWorkExponent)));
    if (g.refreshGroupsPerBank > g.rowsPerBank)
        g.refreshGroupsPerBank = g.rowsPerBank;
    // Keep the subarray count fixed at 128 (the paper's RefPtr Table size)
    // as long as each subarray still holds at least one row.
    g.subarraysPerBank = 128;
    if (g.rowsPerBank < g.subarraysPerBank)
        g.subarraysPerBank = g.rowsPerBank;
    return g;
}

} // namespace hira
