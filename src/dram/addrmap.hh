/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 *
 * Implements the MOP (Minimalist Open-Page) style mapping the paper's
 * Table 3 cites [68]: a small block of consecutive cache lines stays in
 * one row (preserving row-buffer locality for spatial streams), and
 * successive blocks interleave across channels, bank groups, banks, and
 * ranks (exposing memory-level parallelism). Field order, LSB first:
 *
 *   line offset | colLow (MOP block) | channel | bankGroup | bank | rank
 *   | colHigh | row
 */

#ifndef HIRA_DRAM_ADDRMAP_HH
#define HIRA_DRAM_ADDRMAP_HH

#include "common/types.hh"
#include "dram/geometry.hh"

namespace hira {

/** Decoded DRAM coordinates of a physical address. */
struct DramAddr
{
    int channel = 0;
    int rank = 0;
    BankId bank = 0;   //!< flat bank id in the rank (group folded in)
    RowId row = 0;
    std::uint32_t col = 0;

    bool
    operator==(const DramAddr &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank &&
               row == o.row && col == o.col;
    }
};

/** MOP address mapper for a fixed geometry. */
class AddressMapper
{
  public:
    /**
     * @param geom system geometry (all field widths must be powers of two)
     * @param mop_lines cache lines per MOP block (4 in [68])
     */
    explicit AddressMapper(const Geometry &geom, std::uint32_t mop_lines = 4);

    /** Decode a physical byte address. */
    DramAddr decode(Addr addr) const;

    /** Re-encode coordinates into the canonical physical address. */
    Addr encode(const DramAddr &da) const;

    /** Size of the mapped physical address space in bytes. */
    Addr addressSpaceBytes() const { return spaceBytes; }

    const Geometry &geometry() const { return geom; }

  private:
    static int log2i(std::uint64_t v);

    Geometry geom;
    int offsetBits;
    int colLowBits;
    int channelBits;
    int groupBits;
    int bankBits;   //!< bank-within-group
    int rankBits;
    int colHighBits;
    int rowBits;
    Addr spaceBytes;
};

} // namespace hira

#endif // HIRA_DRAM_ADDRMAP_HH
