#include "dram/standard.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace hira {

const std::vector<MemoryStandard> &
standardRegistry()
{
    static const std::vector<MemoryStandard> registry = {
        {"ddr4_2400", "DDR4-2400", ddr4_2400, 8.0},
        {"ddr5_4800", "DDR5-4800", ddr5_4800, 16.0},
        {"lpddr5_6400", "LPDDR5-6400", lpddr5_6400, 16.0},
    };
    return registry;
}

std::string
knownStandardNames()
{
    std::string names;
    for (const MemoryStandard &s : standardRegistry())
        names += std::string(names.empty() ? "" : ", ") + s.name;
    return names;
}

const MemoryStandard &
standardByName(const std::string &name)
{
    for (const MemoryStandard &s : standardRegistry()) {
        if (name == s.name)
            return s;
    }
    fatal("unknown memory standard '%s'; the registry has: %s "
          "(dram/standard.cc)",
          name.c_str(), knownStandardNames().c_str());
}

std::string
defaultStandardName()
{
    const char *v = std::getenv("HIRA_STANDARD");
    if (v == nullptr || *v == '\0')
        return "ddr4_2400";
    // Validate eagerly: a misspelled HIRA_STANDARD must not run a whole
    // sweep on the DDR4 fallback.
    return standardByName(v).name;
}

} // namespace hira
