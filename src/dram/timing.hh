/**
 * @file
 * DDR4 timing parameters.
 *
 * All primary values are stored in nanoseconds (as DRAM datasheets specify
 * them) and converted to memory-bus clock cycles with ceil rounding, the
 * conservative direction a real memory controller uses. The default set
 * models DDR4-2400 CL17 with the paper's Table 3 values (tRC = 46.25 ns,
 * tFAW = 16 ns, t1 = t2 = 3 ns) and the tRFC capacity-scaling model of
 * Expression 1: tRFC = 110 * C^0.6 ns for a chip of capacity C gigabits.
 */

#ifndef HIRA_DRAM_TIMING_HH
#define HIRA_DRAM_TIMING_HH

#include <cmath>

#include "common/types.hh"

namespace hira {

/** Complete DDR4 timing parameter set plus the HiRA custom timings. */
struct TimingParams
{
    // Clock.
    double tCK = 1.0 / 1.2;       //!< bus clock period, ns (DDR4-2400)

    // Row / bank core timings (Table 3 of the paper).
    double tRCD = 14.25;          //!< ACT to RD/WR
    double tRP = 14.25;           //!< PRE to ACT
    double tRAS = 32.0;           //!< ACT to PRE (charge restoration)
    double tRC = 46.25;           //!< ACT to ACT, same bank

    // Activation rate limits.
    double tRRD_S = 3.3;          //!< ACT to ACT, different bank group
    double tRRD_L = 4.9;          //!< ACT to ACT, same bank group
    double tFAW = 16.0;           //!< four-activation window (Table 3)

    // Column timings (DDR4-2400 CL17).
    double tCL = 14.16;           //!< read latency (17 tCK)
    double tCWL = 10.0;           //!< write latency (12 tCK)
    double tBL = 3.33;            //!< burst of 8 occupies 4 tCK
    double tCCD_S = 3.33;         //!< CAS to CAS, different bank group
    double tCCD_L = 5.0;          //!< CAS to CAS, same bank group
    double tRTP = 7.5;            //!< RD to PRE
    double tWR = 15.0;            //!< write recovery (end of burst to PRE)
    double tWTR_S = 2.5;          //!< write-to-read, different bank group
    double tWTR_L = 7.5;          //!< write-to-read, same bank group
    double tRTRS = 1.67;          //!< rank-to-rank data bus switch (2 tCK)

    // Refresh.
    double tREFI = 7800.0;        //!< REF command interval
    double tRFC = 350.0;          //!< REF latency (set by setCapacityGb)
    double tREFW = 64.0e6;        //!< refresh window, 64 ms

    // HiRA custom timings (Section 4.2: reliable point t1 = t2 = 3 ns).
    double t1 = 3.0;              //!< HiRA first ACT to PRE
    double t2 = 3.0;              //!< HiRA PRE to second ACT

    /** Convert a ns value to bus cycles, rounding up. */
    Cycle
    cycles(double ns) const
    {
        return static_cast<Cycle>(std::ceil(ns / tCK - 1e-9));
    }

    /** Convert bus cycles back to ns. */
    double ns(Cycle c) const { return static_cast<double>(c) * tCK; }

    /**
     * Expression 1 of the paper: projected refresh latency for a chip of
     * the given capacity in gigabits.
     */
    static double
    scaledRfc(double capacity_gb)
    {
        return 110.0 * std::pow(capacity_gb, 0.6);
    }

    /** Apply the Expression-1 tRFC for the given chip capacity. */
    void setCapacityGb(double capacity_gb) { tRFC = scaledRfc(capacity_gb); }

    /**
     * Latency of refreshing two rows in the same bank with nominal
     * commands: ACT, wait tRAS, PRE, wait tRP, ACT, wait tRAS
     * (78.25 ns for Table 3 timings; see footnote 2).
     */
    double nominalTwoRowRefreshNs() const { return 2 * tRAS + tRP; }

    /**
     * Latency of refreshing two rows with one HiRA operation:
     * t1 + t2 + tRAS (38 ns; Section 4.2).
     */
    double hiraTwoRowRefreshNs() const { return t1 + t2 + tRAS; }

    /** Headline latency reduction of Section 4.2 (51.4 %). */
    double
    hiraLatencyReduction() const
    {
        return 1.0 - hiraTwoRowRefreshNs() / nominalTwoRowRefreshNs();
    }
};

/** DDR4-2400 defaults with tRFC set for the given chip capacity. */
TimingParams ddr4_2400(double capacity_gb = 8.0);

/**
 * DDR5-4800 preset (JESD79-5 [61], approximate datasheet values): twice
 * the bus clock, half the refresh window (32 ms) and interval (3.9 us).
 * Core row timings barely move across generations.
 */
TimingParams ddr5_4800(double capacity_gb = 16.0);

/**
 * LPDDR5-6400 stub preset (JESD209-5, approximate): mobile part with a
 * faster bus still, DDR5-style 32 ms refresh window, and slightly
 * relaxed row-core timings. Registered in the standard registry so
 * sweeps can select it, but not yet validated against a datasheet to
 * the same depth as the DDR4/DDR5 presets.
 */
TimingParams lpddr5_6400(double capacity_gb = 16.0);

} // namespace hira

#endif // HIRA_DRAM_TIMING_HH
