#include "dram/timing_checker.hh"

#include <deque>
#include <map>

#include "common/logging.hh"

namespace hira {

TimingChecker::TimingChecker(const Geometry &g, const TimingParams &tp)
    : geom(g), tc(tp)
{
}

namespace {

/** Per-bank audit state. */
struct BankAudit
{
    bool open = false;
    RowId row = kNoRow;
    Cycle lastAct = kNeverCycle;
    HiraRole lastActRole = HiraRole::None;
    Cycle lastPre = kNeverCycle;
    HiraRole lastPreRole = HiraRole::None;
    Cycle lastRd = kNeverCycle;
    Cycle lastWr = kNeverCycle;
};

/** Per-rank audit state. */
struct RankAudit
{
    std::deque<Cycle> acts;      //!< all ACT cycles (for tFAW)
    Cycle lastActCycle = kNeverCycle;
    int lastActGroup = -1;
    BankId lastActBank = 0;
    HiraRole lastActRole = HiraRole::None;
    Cycle lastRd = kNeverCycle;
    int lastRdGroup = -1;
    Cycle lastWr = kNeverCycle;
    int lastWrGroup = -1;
    Cycle refUntil = 0;          //!< rank blocked through this cycle
};

struct Auditor
{
    const Geometry &geom;
    const TimingCycles &tc;
    std::vector<Violation> &out;
    std::vector<BankAudit> banks;
    std::vector<RankAudit> ranks;

    Auditor(const Geometry &g, const TimingCycles &t,
            std::vector<Violation> &o)
        : geom(g), tc(t), out(o)
    {
        banks.resize(static_cast<std::size_t>(g.ranksPerChannel) *
                     static_cast<std::size_t>(g.banksPerRank()));
        ranks.resize(static_cast<std::size_t>(g.ranksPerChannel));
    }

    BankAudit &
    bank(const Command &c)
    {
        return banks[static_cast<std::size_t>(c.rank) *
                         static_cast<std::size_t>(geom.banksPerRank()) +
                     c.bank];
    }

    void
    violation(std::size_t idx, const std::string &msg)
    {
        out.push_back({idx, msg});
    }

    void
    require(bool ok, std::size_t idx, const Command &c, const char *what)
    {
        if (!ok) {
            violation(idx, strprintf("%s @%llu rank%d bank%u: %s",
                                     commandName(c.type),
                                     (unsigned long long)c.cycle, c.rank,
                                     c.bank, what));
        }
    }

    static bool
    elapsed(Cycle from, Cycle now, Cycle min_gap)
    {
        return from == kNeverCycle || now >= from + min_gap;
    }

    void
    checkActLike(std::size_t i, const Command &c, bool is_hira_second)
    {
        BankAudit &b = bank(c);
        RankAudit &r = ranks[static_cast<std::size_t>(c.rank)];
        int group = geom.bankGroupOf(c.bank);

        require(!b.open, i, c, "ACT to a bank with an open row");
        require(c.cycle >= r.refUntil, i, c, "ACT during tRFC window");

        if (is_hira_second) {
            // Second HiRA ACT: must follow the CutPre by exactly t2 and
            // the first ACT by exactly t1 + t2; tRC / tRP are exempt.
            require(b.lastPreRole == HiraRole::CutPre, i, c,
                    "HiRA second ACT without a preceding CutPre");
            require(b.lastPre != kNeverCycle &&
                        c.cycle == b.lastPre + tc.c2,
                    i, c, "HiRA second ACT not exactly t2 after PRE");
            require(b.lastAct != kNeverCycle &&
                        c.cycle == b.lastAct + tc.c1 + tc.c2,
                    i, c, "HiRA second ACT not exactly t1+t2 after ACT");
        } else {
            require(elapsed(b.lastAct, c.cycle, tc.rc), i, c,
                    "tRC violated (ACT-to-ACT same bank)");
            require(elapsed(b.lastPre, c.cycle, tc.rp), i, c,
                    "tRP violated (PRE-to-ACT)");
        }

        // Rank-level ACT spacing. The HiRA pair targets the same bank, so
        // tRRD (a different-bank constraint) does not bind between them.
        if (r.lastActCycle != kNeverCycle &&
            !(is_hira_second && r.lastActBank == c.bank &&
              r.lastActRole == HiraRole::FirstAct)) {
            Cycle gap = group == r.lastActGroup ? tc.rrdL : tc.rrdS;
            if (r.lastActBank != c.bank) {
                require(c.cycle >= r.lastActCycle + gap, i, c,
                        "tRRD violated");
            }
        }

        // tFAW: this ACT and the one four-back must span >= tFAW.
        if (r.acts.size() >= 4) {
            Cycle fourth_back = r.acts[r.acts.size() - 4];
            require(c.cycle >= fourth_back + tc.faw, i, c, "tFAW violated");
        }

        b.open = true;
        b.row = c.row;
        b.lastAct = c.cycle;
        b.lastActRole = c.hiraRole;
        r.acts.push_back(c.cycle);
        if (r.acts.size() > 8)
            r.acts.pop_front();
        r.lastActCycle = c.cycle;
        r.lastActGroup = group;
        r.lastActBank = c.bank;
        r.lastActRole = c.hiraRole;
    }

    void
    checkPre(std::size_t i, const Command &c)
    {
        BankAudit &b = bank(c);
        RankAudit &r = ranks[static_cast<std::size_t>(c.rank)];
        require(c.cycle >= r.refUntil, i, c, "PRE during tRFC window");
        if (c.hiraRole == HiraRole::CutPre) {
            require(b.lastActRole == HiraRole::FirstAct, i, c,
                    "CutPre without a preceding HiRA first ACT");
            require(b.lastAct != kNeverCycle &&
                        c.cycle == b.lastAct + tc.c1,
                    i, c, "CutPre not exactly t1 after the first ACT");
        } else {
            require(elapsed(b.lastAct, c.cycle, tc.ras), i, c,
                    "tRAS violated (ACT-to-PRE)");
            require(elapsed(b.lastRd, c.cycle, tc.rtp), i, c,
                    "tRTP violated (RD-to-PRE)");
            require(elapsed(b.lastWr, c.cycle,
                            tc.cwl + tc.bl + tc.wr),
                    i, c, "write recovery violated (WR-to-PRE)");
        }
        // PRE on an already closed bank is harmless in DDR4 but our
        // controller never does it, so flag it.
        require(b.open || c.hiraRole == HiraRole::CutPre, i, c,
                "PRE to a closed bank");
        b.open = false;
        b.lastPre = c.cycle;
        b.lastPreRole = c.hiraRole;
    }

    void
    checkColumn(std::size_t i, const Command &c)
    {
        BankAudit &b = bank(c);
        RankAudit &r = ranks[static_cast<std::size_t>(c.rank)];
        int group = geom.bankGroupOf(c.bank);
        bool is_rd = c.type == CommandType::RD;
        require(b.open, i, c, "column access to a closed bank");
        require(b.row == c.row || c.row == 0, i, c,
                "column access to a row other than the open row");
        require(c.cycle >= r.refUntil, i, c, "CAS during tRFC window");
        require(elapsed(b.lastAct, c.cycle, tc.rcd), i, c,
                "tRCD violated (ACT-to-CAS)");
        if (is_rd) {
            if (r.lastRd != kNeverCycle) {
                Cycle gap = group == r.lastRdGroup ? tc.ccdL : tc.ccdS;
                require(c.cycle >= r.lastRd + gap, i, c, "tCCD violated");
            }
            if (r.lastWr != kNeverCycle) {
                Cycle wtr = group == r.lastWrGroup ? tc.wtrL : tc.wtrS;
                require(c.cycle >= r.lastWr + tc.cwl + tc.bl + wtr, i, c,
                        "tWTR violated (WR-to-RD)");
            }
            b.lastRd = c.cycle;
            r.lastRd = c.cycle;
            r.lastRdGroup = group;
        } else {
            if (r.lastWr != kNeverCycle) {
                Cycle gap = group == r.lastWrGroup ? tc.ccdL : tc.ccdS;
                require(c.cycle >= r.lastWr + gap, i, c, "tCCD violated");
            }
            b.lastWr = c.cycle;
            r.lastWr = c.cycle;
            r.lastWrGroup = group;
        }
    }

    void
    checkRef(std::size_t i, const Command &c)
    {
        RankAudit &r = ranks[static_cast<std::size_t>(c.rank)];
        require(c.cycle >= r.refUntil, i, c,
                "REF during a previous tRFC window");
        std::size_t base = static_cast<std::size_t>(c.rank) *
                           static_cast<std::size_t>(geom.banksPerRank());
        for (int bi = 0; bi < geom.banksPerRank(); ++bi) {
            const BankAudit &b = banks[base + static_cast<std::size_t>(bi)];
            require(!b.open, i, c, "REF with an open bank");
            require(elapsed(b.lastPre, c.cycle, tc.rp), i, c,
                    "REF before tRP after PRE");
        }
        r.refUntil = c.cycle + tc.rfc;
    }
};

} // namespace

std::vector<Violation>
TimingChecker::check(const std::vector<Command> &trace) const
{
    std::vector<Violation> out;
    Auditor a(geom, tc, out);
    Cycle prev_cycle = kNeverCycle;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Command &c = trace[i];
        if (prev_cycle != kNeverCycle) {
            if (c.cycle < prev_cycle) {
                a.violation(i, "trace not sorted by cycle");
                continue;
            }
            if (c.cycle == prev_cycle) {
                a.violation(i, strprintf(
                    "two commands on one command-bus cycle (%llu)",
                    (unsigned long long)c.cycle));
            }
        }
        prev_cycle = c.cycle;
        switch (c.type) {
          case CommandType::ACT:
            a.checkActLike(i, c, c.hiraRole == HiraRole::SecondAct);
            break;
          case CommandType::PRE:
            a.checkPre(i, c);
            break;
          case CommandType::PREA:
            for (BankId b = 0;
                 b < static_cast<BankId>(geom.banksPerRank()); ++b) {
                Command sub = c;
                sub.bank = b;
                if (a.bank(sub).open)
                    a.checkPre(i, sub);
            }
            break;
          case CommandType::RD:
          case CommandType::WR:
            a.checkColumn(i, c);
            break;
          case CommandType::REF:
            a.checkRef(i, c);
            break;
        }
    }
    return out;
}

} // namespace hira
