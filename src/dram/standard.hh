/**
 * @file
 * Memory-standard registry: named TimingParams factories.
 *
 * A MemoryStandard promotes the timing preset from an ad-hoc function
 * call to a first-class sweep dimension: every standard has a stable
 * registry name (used in seed keys, bench sections, and the
 * HIRA_STANDARD knob), a display label, and a TimingParams factory
 * parameterized by chip capacity. Lookups by unknown name are fatal and
 * list the known names, mirroring benchmarkByName() — a typo in a sweep
 * spec must never silently fall back to DDR4.
 */

#ifndef HIRA_DRAM_STANDARD_HH
#define HIRA_DRAM_STANDARD_HH

#include <string>
#include <vector>

#include "dram/timing.hh"

namespace hira {

/** One registry entry: a named TimingParams factory. */
struct MemoryStandard
{
    const char *name;       //!< registry key ("ddr4_2400", ...)
    const char *display;    //!< human label for bench headers ("DDR4-2400")
    TimingParams (*make)(double capacity_gb); //!< preset factory
    double defaultCapacityGb; //!< datasheet-typical chip capacity
};

/** All registered standards, in registration order. */
const std::vector<MemoryStandard> &standardRegistry();

/** Comma-joined registry names, for diagnostics and docs. */
std::string knownStandardNames();

/**
 * Look up a standard by registry name. Unknown names are fatal and
 * print the known-name list.
 */
const MemoryStandard &standardByName(const std::string &name);

/**
 * The standard every GeomSpec starts from: HIRA_STANDARD if set (fatal
 * on an unknown value — a misspelled knob silently running DDR4 would
 * invalidate a whole sweep), else "ddr4_2400".
 */
std::string defaultStandardName();

} // namespace hira

#endif // HIRA_DRAM_STANDARD_HH
