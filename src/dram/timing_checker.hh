/**
 * @file
 * Independent DDR4 command-trace auditor.
 *
 * Re-derives protocol legality from scratch (separately from
 * ChannelTimingModel, which the controller uses to schedule), so that
 * tests can assert that every command trace a controller emits is legal.
 * HiRA's deliberate tRAS / tRP violations are recognized through the
 * HiraRole tags and checked against the *HiRA* rules instead: the inner
 * PRE must come exactly t1 after the first ACT, the second ACT exactly t2
 * after the PRE, and both ACTs must still satisfy tRRD / tFAW (§5.2).
 */

#ifndef HIRA_DRAM_TIMING_CHECKER_HH
#define HIRA_DRAM_TIMING_CHECKER_HH

#include <string>
#include <vector>

#include "dram/command.hh"
#include "dram/geometry.hh"
#include "dram/timing.hh"
#include "dram/timing_state.hh"

namespace hira {

/** One detected protocol violation. */
struct Violation
{
    std::size_t commandIndex; //!< offending command's index in the trace
    std::string message;
};

/** Audits a single channel's command trace. */
class TimingChecker
{
  public:
    TimingChecker(const Geometry &geom, const TimingParams &tp);

    /**
     * Check a trace (must be sorted by cycle; ties are a violation since
     * a channel issues at most one command per cycle).
     */
    std::vector<Violation> check(const std::vector<Command> &trace) const;

  private:
    Geometry geom;
    TimingCycles tc;
};

/** Append-only command-trace recorder controllers can optionally feed. */
class CommandTraceRecorder
{
  public:
    void
    record(const Command &cmd)
    {
        if (enabled)
            trace.push_back(cmd);
    }

    void setEnabled(bool on) { enabled = on; }
    bool isEnabled() const { return enabled; }
    const std::vector<Command> &commands() const { return trace; }
    void clear() { trace.clear(); }

  private:
    bool enabled = false;
    std::vector<Command> trace;
};

} // namespace hira

#endif // HIRA_DRAM_TIMING_CHECKER_HH
