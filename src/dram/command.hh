/**
 * @file
 * DDR4 command vocabulary. HiRA is not a new command: it is the sequence
 * ACT - t1 - PRE - t2 - ACT of standard commands (Section 3), so only the
 * standard commands appear here. The controller and the trace auditor tag
 * commands that belong to a HiRA sequence so the auditor knows which
 * nominal-timing rules are deliberately violated.
 */

#ifndef HIRA_DRAM_COMMAND_HH
#define HIRA_DRAM_COMMAND_HH

#include <string>

#include "common/types.hh"

namespace hira {

/** DDR4 commands relevant to this work (Section 2.2). */
enum class CommandType
{
    ACT,  //!< open a row
    PRE,  //!< close the open row / precharge the bank
    PREA, //!< precharge all banks in a rank
    RD,   //!< column read
    WR,   //!< column write
    REF,  //!< all-bank refresh
};

/** Role of a command within a HiRA sequence, for the trace auditor. */
enum class HiraRole
{
    None,      //!< ordinary command, nominal timing applies
    FirstAct,  //!< HiRA's first ACT (refresh target)
    CutPre,    //!< HiRA's PRE issued t1 after the first ACT
    SecondAct, //!< HiRA's second ACT issued t2 after the PRE
};

/** A scheduled DRAM command instance. */
struct Command
{
    CommandType type = CommandType::ACT;
    Cycle cycle = 0;        //!< issue time, bus cycles
    int channel = 0;
    int rank = 0;
    BankId bank = 0;        //!< flat bank id within the rank
    RowId row = 0;          //!< for ACT
    std::uint32_t col = 0;  //!< for RD/WR
    HiraRole hiraRole = HiraRole::None;

    bool
    isColumn() const
    {
        return type == CommandType::RD || type == CommandType::WR;
    }
};

/** Short mnemonic for logs and test failure messages. */
inline const char *
commandName(CommandType t)
{
    switch (t) {
      case CommandType::ACT: return "ACT";
      case CommandType::PRE: return "PRE";
      case CommandType::PREA: return "PREA";
      case CommandType::RD: return "RD";
      case CommandType::WR: return "WR";
      case CommandType::REF: return "REF";
    }
    return "?";
}

} // namespace hira

#endif // HIRA_DRAM_COMMAND_HH
