#include "dram/timing.hh"

namespace hira {

TimingParams
ddr4_2400(double capacity_gb)
{
    TimingParams tp;
    tp.setCapacityGb(capacity_gb);
    return tp;
}

TimingParams
ddr5_4800(double capacity_gb)
{
    TimingParams tp;
    tp.tCK = 1.0 / 2.4;
    tp.tRCD = 14.16;
    tp.tRP = 14.16;
    tp.tRAS = 32.0;
    tp.tRC = 46.16;
    tp.tRRD_S = 2.5;
    tp.tRRD_L = 5.0;
    tp.tFAW = 13.33;   // 32 tCK for x8 devices
    tp.tCL = 14.16;    // CL34
    tp.tCWL = 13.33;
    tp.tBL = 3.33;     // BL16 at double the data rate
    tp.tCCD_S = 3.33;
    tp.tCCD_L = 5.0;
    tp.tRTP = 7.5;
    tp.tWR = 30.0;
    tp.tWTR_S = 2.5;
    tp.tWTR_L = 10.0;
    tp.tRTRS = 0.83;
    tp.tREFI = 3900.0; // half of DDR4 (Section 2.3)
    tp.tREFW = 32.0e6;
    tp.setCapacityGb(capacity_gb);
    return tp;
}

TimingParams
lpddr5_6400(double capacity_gb)
{
    TimingParams tp;
    tp.tCK = 1.0 / 3.2;
    tp.tRCD = 18.0;
    tp.tRP = 18.0;
    tp.tRAS = 42.0;
    tp.tRC = 60.0;
    tp.tRRD_S = 5.0;
    tp.tRRD_L = 5.0;
    tp.tFAW = 20.0;
    tp.tCL = 17.5;
    tp.tCWL = 14.0;
    tp.tBL = 2.5;      // BL16 at 6400 MT/s
    tp.tCCD_S = 2.5;
    tp.tCCD_L = 5.0;
    tp.tRTP = 7.5;
    tp.tWR = 34.0;
    tp.tWTR_S = 5.0;
    tp.tWTR_L = 10.0;
    tp.tRTRS = 0.625;
    tp.tREFI = 3900.0; // DDR5-style halved refresh beat
    tp.tREFW = 32.0e6;
    tp.setCapacityGb(capacity_gb);
    return tp;
}

} // namespace hira
