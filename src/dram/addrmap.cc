#include "dram/addrmap.hh"

#include "common/logging.hh"

namespace hira {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::uint64_t
extract(Addr addr, int &shift, int bits)
{
    std::uint64_t v = (addr >> shift) & ((std::uint64_t(1) << bits) - 1);
    shift += bits;
    return v;
}

void
insert(Addr &addr, int &shift, int bits, std::uint64_t v)
{
    addr |= (v & ((std::uint64_t(1) << bits) - 1)) << shift;
    shift += bits;
}

} // namespace

int
AddressMapper::log2i(std::uint64_t v)
{
    hira_assert(isPow2(v));
    int n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

AddressMapper::AddressMapper(const Geometry &g, std::uint32_t mop_lines)
    : geom(g)
{
    hira_assert(isPow2(g.lineBytes));
    hira_assert(isPow2(g.colsPerRow));
    hira_assert(isPow2(mop_lines) && mop_lines <= g.colsPerRow);
    hira_assert(isPow2(static_cast<std::uint64_t>(g.channels)));
    hira_assert(isPow2(static_cast<std::uint64_t>(g.ranksPerChannel)));
    hira_assert(isPow2(static_cast<std::uint64_t>(g.bankGroups)));
    hira_assert(isPow2(static_cast<std::uint64_t>(g.banksPerGroup)));
    hira_assert(isPow2(g.rowsPerBank));

    offsetBits = log2i(g.lineBytes);
    colLowBits = log2i(mop_lines);
    channelBits = log2i(static_cast<std::uint64_t>(g.channels));
    groupBits = log2i(static_cast<std::uint64_t>(g.bankGroups));
    bankBits = log2i(static_cast<std::uint64_t>(g.banksPerGroup));
    rankBits = log2i(static_cast<std::uint64_t>(g.ranksPerChannel));
    colHighBits = log2i(g.colsPerRow) - colLowBits;
    rowBits = log2i(g.rowsPerBank);
    spaceBytes = geom.totalBytes();
}

DramAddr
AddressMapper::decode(Addr addr) const
{
    addr %= spaceBytes;
    int shift = offsetBits;
    DramAddr da;
    std::uint64_t col_low = extract(addr, shift, colLowBits);
    da.channel = static_cast<int>(extract(addr, shift, channelBits));
    std::uint64_t group = extract(addr, shift, groupBits);
    std::uint64_t bank_in_group = extract(addr, shift, bankBits);
    da.rank = static_cast<int>(extract(addr, shift, rankBits));
    std::uint64_t col_high = extract(addr, shift, colHighBits);
    da.row = static_cast<RowId>(extract(addr, shift, rowBits));
    da.bank = static_cast<BankId>(group * geom.banksPerGroup + bank_in_group);
    da.col = static_cast<std::uint32_t>((col_high << colLowBits) | col_low);
    return da;
}

Addr
AddressMapper::encode(const DramAddr &da) const
{
    Addr addr = 0;
    int shift = offsetBits;
    std::uint64_t col_low = da.col & ((1u << colLowBits) - 1);
    std::uint64_t col_high = da.col >> colLowBits;
    std::uint64_t group =
        da.bank / static_cast<std::uint32_t>(geom.banksPerGroup);
    std::uint64_t bank_in_group =
        da.bank % static_cast<std::uint32_t>(geom.banksPerGroup);
    insert(addr, shift, colLowBits, col_low);
    insert(addr, shift, channelBits,
           static_cast<std::uint64_t>(da.channel));
    insert(addr, shift, groupBits, group);
    insert(addr, shift, bankBits, bank_in_group);
    insert(addr, shift, rankBits, static_cast<std::uint64_t>(da.rank));
    insert(addr, shift, colHighBits, col_high);
    insert(addr, shift, rowBits, da.row);
    return addr;
}

} // namespace hira
