/**
 * @file
 * Cycle-accurate DDR4 timing state machine for one memory channel.
 *
 * Tracks, per bank / rank / channel, the earliest cycle at which each
 * command may legally issue, and mutates that state as commands issue.
 * The HiRA operation (ACT - t1 - PRE - t2 - ACT, Section 3) is applied
 * atomically via issueHira(): the inner PRE and second ACT deliberately
 * violate tRAS / tRP (that is the whole point of HiRA), while both ACTs
 * still count against tRRD and tFAW (Section 5.2) and the first ACT obeys
 * all nominal inbound constraints.
 *
 * The model is deliberately independent of the request scheduler so that
 * tests/dram can drive it directly and tests/mem can audit controller
 * traces against TimingChecker, which re-derives legality from scratch.
 */

#ifndef HIRA_DRAM_TIMING_STATE_HH
#define HIRA_DRAM_TIMING_STATE_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "dram/geometry.hh"
#include "dram/timing.hh"

namespace hira {

/** All TimingParams pre-converted to bus cycles. */
struct TimingCycles
{
    Cycle rcd, rp, ras, rc;
    Cycle rrdS, rrdL, faw;
    Cycle cl, cwl, bl, ccdS, ccdL, rtp, wr, wtrS, wtrL, rtrs;
    Cycle refi, rfc;
    Cycle c1, c2; //!< HiRA t1, t2

    explicit TimingCycles(const TimingParams &tp);
    TimingCycles() = default;

    /** Bus cycles a full HiRA sequence spans (first ACT to second ACT). */
    Cycle hiraSpan() const { return c1 + c2; }
};

/** Per-bank timing state. */
struct BankState
{
    RowId openRow = kNoRow;
    Cycle actReady = 0; //!< earliest ACT (bank-local: tRC / tRP / tRFC)
    Cycle preReady = 0; //!< earliest PRE (tRAS / tRTP / write recovery)
    Cycle rdReady = 0;  //!< earliest RD (tRCD)
    Cycle wrReady = 0;  //!< earliest WR (tRCD)
};

/** Per-rank timing state. */
struct RankState
{
    Cycle actReadyS = 0;                  //!< tRRD_S from last ACT
    std::vector<Cycle> actReadyL;         //!< tRRD_L per bank group
    std::array<Cycle, 4> fawRing{kNeverCycle, kNeverCycle, kNeverCycle,
                                 kNeverCycle}; //!< last four ACT cycles
    int fawIdx = 0;                       //!< ring cursor (oldest entry)
    Cycle rdReadyS = 0, rdReadyL_unused = 0;
    std::vector<Cycle> rdReadyL;          //!< tCCD_L per bank group
    Cycle wrReadyS = 0;
    std::vector<Cycle> wrReadyL;
    Cycle refBlockUntil = 0;              //!< end of tRFC window
};

/**
 * Timing model for one channel: per-bank, per-rank, and shared-bus
 * constraints. Flat bank indexing: rank * banksPerRank + bank.
 */
class ChannelTimingModel
{
  public:
    ChannelTimingModel(const Geometry &geom, const TimingParams &tp);

    const TimingCycles &cycles() const { return tc; }
    const Geometry &geometry() const { return geom; }

    // --- queries -----------------------------------------------------
    //
    // The earliest-command queries read struct-of-arrays horizons
    // (resolvedAct/Pre/Rd/Wr below, flat-indexed by bankIndex) that are
    // rebuilt in one pass over all banks the first time a query runs
    // after a mutation. The controller's scheduling loops query every
    // queued request per wake, so one batch rebuild per issued command
    // replaces hundreds of per-query max-chains.

    // Inline: every scheduler scan reads the open row once per queued
    // request, so this is the single most-called query in the model.
    RowId
    openRow(int rank, BankId bank) const
    {
        return banks[static_cast<std::size_t>(bankIndex(rank, bank))]
            .openRow;
    }
    bool
    bankClosed(int rank, BankId bank) const
    {
        return openRow(rank, bank) == kNoRow;
    }

    /** Flat horizon-array index of (rank, bank). */
    int bankIndex(int rank, BankId bank) const
    {
        return rank * geom.banksPerRank() + static_cast<int>(bank);
    }

    /** Earliest cycle an ACT to (rank, bank) may issue. */
    Cycle earliestAct(int rank, BankId bank) const
    {
        if (resolvedDirty)
            rebuildResolved();
        return resolvedAct[static_cast<std::size_t>(bankIndex(rank, bank))];
    }
    /** Earliest cycle a PRE to (rank, bank) may issue. */
    Cycle earliestPre(int rank, BankId bank) const
    {
        if (resolvedDirty)
            rebuildResolved();
        return resolvedPre[static_cast<std::size_t>(bankIndex(rank, bank))];
    }
    /** Earliest RD issue cycle (bank must be open; data bus checked). */
    Cycle earliestRd(int rank, BankId bank) const
    {
        if (resolvedDirty)
            rebuildResolved();
        return resolvedRd[static_cast<std::size_t>(bankIndex(rank, bank))];
    }
    /** Earliest WR issue cycle. */
    Cycle earliestWr(int rank, BankId bank) const
    {
        if (resolvedDirty)
            rebuildResolved();
        return resolvedWr[static_cast<std::size_t>(bankIndex(rank, bank))];
    }
    /** Earliest all-bank REF for the rank (all banks must be closed). */
    Cycle earliestRef(int rank) const;
    /**
     * Earliest first-ACT cycle of a HiRA sequence on (rank, bank): the
     * nominal ACT constraints plus room for the second ACT in the tFAW
     * window.
     */
    Cycle earliestHira(int rank, BankId bank) const
    {
        if (resolvedDirty)
            rebuildResolved();
        return resolvedHira[static_cast<std::size_t>(bankIndex(rank, bank))];
    }

    /**
     * Earliest cycle the bank's next row command could legally issue:
     * an ACT when the bank is closed, a PRE when a row is open. This is
     * the bank's scheduling horizon for the event-driven engine
     * (src/sim/system.cc): until this cycle, no controller decision on
     * the bank can change, so a quiescent controller may sleep to the
     * minimum of these horizons without diverging from per-cycle
     * polling.
     */
    Cycle earliestBankCommand(int rank, BankId bank) const
    {
        if (resolvedDirty)
            rebuildResolved();
        return resolvedBankCmd[static_cast<std::size_t>(
            bankIndex(rank, bank))];
    }

    // --- mutations ---------------------------------------------------

    void issueAct(int rank, BankId bank, RowId row, Cycle now);
    void issuePre(int rank, BankId bank, Cycle now);
    /** @return cycle at which read data has fully returned. */
    Cycle issueRd(int rank, BankId bank, Cycle now);
    Cycle issueWr(int rank, BankId bank, Cycle now);
    void issueRef(int rank, Cycle now);
    /**
     * Issue a full HiRA sequence starting at @p now: ACT(refresh_row),
     * +t1 PRE, +t2 ACT(second_row). Afterwards the bank behaves exactly
     * as if second_row had been activated at now + t1 + t2.
     * @return issue cycle of the second ACT.
     */
    Cycle issueHira(int rank, BankId bank, RowId refresh_row,
                    RowId second_row, Cycle now);

    /** Data-bus cycles the channel has transferred (utilization stat). */
    Cycle dataBusBusyCycles() const { return dataBusBusy; }

  private:
    BankState &bankRef(int rank, BankId bank);
    const BankState &bankRef(int rank, BankId bank) const;

    Cycle fawConstraint(const RankState &r, int slots_needed) const;
    void recordAct(int rank, BankId bank, Cycle now);
    Cycle columnDataStart(int rank, bool is_read, Cycle now) const;
    void rebuildResolved() const;

    Geometry geom;
    TimingCycles tc;
    std::vector<BankState> banks;
    std::vector<RankState> ranks;

    // Resolved earliest-command horizons, flat parallel arrays indexed
    // by bankIndex(). Derived state only: rebuilt from banks/ranks/bus
    // on the first query after any mutation (resolvedDirty), so the
    // rebuild runs at most once per issued command.
    mutable std::vector<Cycle> resolvedAct, resolvedPre;
    mutable std::vector<Cycle> resolvedRd, resolvedWr;
    mutable std::vector<Cycle> resolvedHira, resolvedBankCmd;
    mutable bool resolvedDirty = true;

    // Shared data bus.
    Cycle dataBusFree = 0;
    int dataBusLastRank = -1;
    Cycle dataBusBusy = 0;
};

} // namespace hira

#endif // HIRA_DRAM_TIMING_STATE_HH
