#include "dram/timing_state.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hira {

TimingCycles::TimingCycles(const TimingParams &tp)
{
    rcd = tp.cycles(tp.tRCD);
    rp = tp.cycles(tp.tRP);
    ras = tp.cycles(tp.tRAS);
    rc = tp.cycles(tp.tRC);
    rrdS = tp.cycles(tp.tRRD_S);
    rrdL = tp.cycles(tp.tRRD_L);
    faw = tp.cycles(tp.tFAW);
    cl = tp.cycles(tp.tCL);
    cwl = tp.cycles(tp.tCWL);
    bl = tp.cycles(tp.tBL);
    ccdS = tp.cycles(tp.tCCD_S);
    ccdL = tp.cycles(tp.tCCD_L);
    rtp = tp.cycles(tp.tRTP);
    wr = tp.cycles(tp.tWR);
    wtrS = tp.cycles(tp.tWTR_S);
    wtrL = tp.cycles(tp.tWTR_L);
    rtrs = tp.cycles(tp.tRTRS);
    refi = tp.cycles(tp.tREFI);
    rfc = tp.cycles(tp.tRFC);
    c1 = tp.cycles(tp.t1);
    c2 = tp.cycles(tp.t2);
}

ChannelTimingModel::ChannelTimingModel(const Geometry &g,
                                       const TimingParams &tp)
    : geom(g), tc(tp)
{
    banks.resize(static_cast<std::size_t>(geom.ranksPerChannel) *
                 static_cast<std::size_t>(geom.banksPerRank()));
    ranks.resize(static_cast<std::size_t>(geom.ranksPerChannel));
    for (auto &r : ranks) {
        r.actReadyL.assign(static_cast<std::size_t>(geom.bankGroups), 0);
        r.rdReadyL.assign(static_cast<std::size_t>(geom.bankGroups), 0);
        r.wrReadyL.assign(static_cast<std::size_t>(geom.bankGroups), 0);
    }
    resolvedAct.resize(banks.size());
    resolvedPre.resize(banks.size());
    resolvedRd.resize(banks.size());
    resolvedWr.resize(banks.size());
    resolvedHira.resize(banks.size());
    resolvedBankCmd.resize(banks.size());
}

BankState &
ChannelTimingModel::bankRef(int rank, BankId bank)
{
    return banks[static_cast<std::size_t>(rank) *
                     static_cast<std::size_t>(geom.banksPerRank()) +
                 bank];
}

const BankState &
ChannelTimingModel::bankRef(int rank, BankId bank) const
{
    return banks[static_cast<std::size_t>(rank) *
                     static_cast<std::size_t>(geom.banksPerRank()) +
                 bank];
}

Cycle
ChannelTimingModel::fawConstraint(const RankState &r, int slots_needed) const
{
    // fawRing holds the last four ACT cycles; fawIdx points at the oldest.
    // An ACT at t requires t >= oldest + tFAW (so at most 4 ACTs fall in
    // any tFAW window). A HiRA op needs two slots: its second ACT, at
    // t + hiraSpan, must clear the *second*-oldest entry.
    hira_assert(slots_needed == 1 || slots_needed == 2);
    Cycle oldest = r.fawRing[static_cast<std::size_t>(r.fawIdx)];
    Cycle bound = oldest == kNeverCycle ? 0 : oldest + tc.faw;
    if (slots_needed == 2) {
        Cycle second = r.fawRing[static_cast<std::size_t>((r.fawIdx + 1) % 4)];
        if (second != kNeverCycle) {
            Cycle span = tc.hiraSpan();
            Cycle b2 = second + tc.faw;
            bound = std::max(bound, b2 > span ? b2 - span : 0);
        }
    }
    return bound;
}

void
ChannelTimingModel::recordAct(int rank, BankId bank, Cycle now)
{
    RankState &r = ranks[static_cast<std::size_t>(rank)];
    int group = geom.bankGroupOf(bank);
    r.actReadyS = std::max(r.actReadyS, now + tc.rrdS);
    r.actReadyL[static_cast<std::size_t>(group)] =
        std::max(r.actReadyL[static_cast<std::size_t>(group)], now + tc.rrdL);
    r.fawRing[static_cast<std::size_t>(r.fawIdx)] = now;
    r.fawIdx = (r.fawIdx + 1) % 4;
}

void
ChannelTimingModel::rebuildResolved() const
{
    // One flat pass refreshing every bank's resolved horizons. Values
    // are identical to the retired per-query max-chains; hoisting the
    // rank-common terms out of the bank loop is what makes the pass
    // cheap enough to run after every issued command.
    const int bpr = geom.banksPerRank();
    for (int rank = 0; rank < geom.ranksPerChannel; ++rank) {
        const RankState &r = ranks[static_cast<std::size_t>(rank)];
        Cycle act_rank = std::max(r.actReadyS, r.refBlockUntil);
        act_rank = std::max(act_rank, fawConstraint(r, 1));
        Cycle faw2 = fawConstraint(r, 2);
        Cycle bus_free = dataBusFree;
        if (dataBusLastRank >= 0 && dataBusLastRank != rank)
            bus_free += tc.rtrs;
        Cycle rd_rank = std::max(r.rdReadyS, r.refBlockUntil);
        Cycle wr_rank = std::max(r.wrReadyS, r.refBlockUntil);
        std::size_t base = static_cast<std::size_t>(rank) *
                           static_cast<std::size_t>(bpr);
        for (int bank = 0; bank < bpr; ++bank) {
            std::size_t i = base + static_cast<std::size_t>(bank);
            const BankState &b = banks[i];
            std::size_t group = static_cast<std::size_t>(
                geom.bankGroupOf(static_cast<BankId>(bank)));

            Cycle act = std::max(b.actReady, act_rank);
            act = std::max(act, r.actReadyL[group]);
            resolvedAct[i] = act;
            resolvedHira[i] = std::max(act, faw2);

            Cycle pre = std::max(b.preReady, r.refBlockUntil);
            resolvedPre[i] = pre;
            resolvedBankCmd[i] = b.openRow == kNoRow ? act : pre;

            Cycle rd = std::max(b.rdReady, rd_rank);
            rd = std::max(rd, r.rdReadyL[group]);
            // Data bus: burst starts at rd + CL; honor rank switch
            // turnaround.
            if (bus_free > rd + tc.cl)
                rd = bus_free - tc.cl;
            resolvedRd[i] = rd;

            Cycle wr = std::max(b.wrReady, wr_rank);
            wr = std::max(wr, r.wrReadyL[group]);
            if (bus_free > wr + tc.cwl)
                wr = bus_free - tc.cwl;
            resolvedWr[i] = wr;
        }
    }
    resolvedDirty = false;
}

Cycle
ChannelTimingModel::earliestRef(int rank) const
{
    const RankState &r = ranks[static_cast<std::size_t>(rank)];
    Cycle t = r.refBlockUntil;
    for (BankId b = 0; b < static_cast<BankId>(geom.banksPerRank()); ++b) {
        const BankState &bs = bankRef(rank, b);
        hira_assert(bs.openRow == kNoRow); // caller precharges first
        t = std::max(t, bs.actReady);      // tRP after the last PRE
    }
    return t;
}

void
ChannelTimingModel::issueAct(int rank, BankId bank, RowId row, Cycle now)
{
    BankState &b = bankRef(rank, bank);
    hira_assert(b.openRow == kNoRow);
    hira_assert(now >= earliestAct(rank, bank));
    b.openRow = row;
    b.rdReady = std::max(b.rdReady, now + tc.rcd);
    b.wrReady = std::max(b.wrReady, now + tc.rcd);
    b.preReady = std::max(b.preReady, now + tc.ras);
    b.actReady = std::max(b.actReady, now + tc.rc);
    recordAct(rank, bank, now);
    resolvedDirty = true;
}

void
ChannelTimingModel::issuePre(int rank, BankId bank, Cycle now)
{
    BankState &b = bankRef(rank, bank);
    hira_assert(now >= earliestPre(rank, bank));
    b.openRow = kNoRow;
    b.actReady = std::max(b.actReady, now + tc.rp);
    resolvedDirty = true;
}

Cycle
ChannelTimingModel::columnDataStart(int rank, bool is_read, Cycle now) const
{
    Cycle start = now + (is_read ? tc.cl : tc.cwl);
    (void)rank;
    return start;
}

Cycle
ChannelTimingModel::issueRd(int rank, BankId bank, Cycle now)
{
    BankState &b = bankRef(rank, bank);
    RankState &r = ranks[static_cast<std::size_t>(rank)];
    int group = geom.bankGroupOf(bank);
    hira_assert(b.openRow != kNoRow);
    hira_assert(now >= earliestRd(rank, bank));
    b.preReady = std::max(b.preReady, now + tc.rtp);
    r.rdReadyS = std::max(r.rdReadyS, now + tc.ccdS);
    r.rdReadyL[static_cast<std::size_t>(group)] =
        std::max(r.rdReadyL[static_cast<std::size_t>(group)],
                 now + tc.ccdL);
    // Read-to-write turnaround: WR data may start after the read burst
    // plus one bus turnaround slot.
    Cycle rd_end = columnDataStart(rank, true, now) + tc.bl;
    Cycle wr_ok = rd_end + 1 > tc.cwl ? rd_end + 1 - tc.cwl : 0;
    r.wrReadyS = std::max(r.wrReadyS, wr_ok);
    dataBusFree = rd_end;
    dataBusLastRank = rank;
    dataBusBusy += tc.bl;
    resolvedDirty = true;
    return rd_end;
}

Cycle
ChannelTimingModel::issueWr(int rank, BankId bank, Cycle now)
{
    BankState &b = bankRef(rank, bank);
    RankState &r = ranks[static_cast<std::size_t>(rank)];
    int group = geom.bankGroupOf(bank);
    hira_assert(b.openRow != kNoRow);
    hira_assert(now >= earliestWr(rank, bank));
    Cycle wr_end = columnDataStart(rank, false, now) + tc.bl;
    b.preReady = std::max(b.preReady, wr_end + tc.wr);
    r.wrReadyS = std::max(r.wrReadyS, now + tc.ccdS);
    r.wrReadyL[static_cast<std::size_t>(group)] =
        std::max(r.wrReadyL[static_cast<std::size_t>(group)],
                 now + tc.ccdL);
    // Write-to-read turnaround (tWTR counted from end of write burst).
    r.rdReadyS = std::max(r.rdReadyS, wr_end + tc.wtrS);
    for (auto &rl : r.rdReadyL)
        rl = std::max(rl, wr_end + tc.wtrS);
    r.rdReadyL[static_cast<std::size_t>(group)] =
        std::max(r.rdReadyL[static_cast<std::size_t>(group)],
                 wr_end + tc.wtrL);
    dataBusFree = wr_end;
    dataBusLastRank = rank;
    dataBusBusy += tc.bl;
    resolvedDirty = true;
    return wr_end;
}

void
ChannelTimingModel::issueRef(int rank, Cycle now)
{
    RankState &r = ranks[static_cast<std::size_t>(rank)];
    hira_assert(now >= earliestRef(rank));
    r.refBlockUntil = now + tc.rfc;
    for (BankId b = 0; b < static_cast<BankId>(geom.banksPerRank()); ++b) {
        BankState &bs = bankRef(rank, b);
        bs.actReady = std::max(bs.actReady, now + tc.rfc);
    }
    resolvedDirty = true;
}

Cycle
ChannelTimingModel::issueHira(int rank, BankId bank, RowId refresh_row,
                              RowId second_row, Cycle now)
{
    BankState &b = bankRef(rank, bank);
    hira_assert(b.openRow == kNoRow);
    hira_assert(now >= earliestHira(rank, bank));
    (void)refresh_row;

    // First ACT: opens the refresh target; its restoration completes in
    // the shadow of the rest of the sequence (Section 3).
    recordAct(rank, bank, now);

    // Inner PRE at now + c1 and second ACT at now + c1 + c2 deliberately
    // violate tRAS / tRP; the second ACT is a nominal activation for all
    // downstream purposes.
    Cycle second = now + tc.hiraSpan();
    b.openRow = second_row;
    b.rdReady = std::max(b.rdReady, second + tc.rcd);
    b.wrReady = std::max(b.wrReady, second + tc.rcd);
    b.preReady = std::max(b.preReady, second + tc.ras);
    b.actReady = std::max(b.actReady, second + tc.rc);
    recordAct(rank, bank, second);
    resolvedDirty = true;
    return second;
}

} // namespace hira
