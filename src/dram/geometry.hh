/**
 * @file
 * DRAM system geometry: channels, ranks, bank groups, banks, subarrays,
 * rows, columns, and the capacity-scaling rules used by the evaluation.
 */

#ifndef HIRA_DRAM_GEOMETRY_HH
#define HIRA_DRAM_GEOMETRY_HH

#include <cstdint>

#include "common/types.hh"

namespace hira {

/**
 * Geometry of the simulated memory system. Defaults follow Table 3 of the
 * paper: 1 channel, 1 rank, 4 bank groups x 4 banks, 64K rows per bank for
 * an 8 Gb chip, 8 KB rows (128 64-byte cache lines).
 */
struct Geometry
{
    int channels = 1;
    int ranksPerChannel = 1;
    int bankGroups = 4;
    int banksPerGroup = 4;
    std::uint32_t rowsPerBank = 65536;
    std::uint32_t subarraysPerBank = 128;
    std::uint32_t colsPerRow = 128;    //!< 64 B cache lines per 8 KB row
    std::uint32_t lineBytes = 64;
    double capacityGb = 8.0;           //!< per-chip capacity

    /**
     * Number of externally visible row-refresh operations per bank per
     * refresh window when refresh is performed with per-row commands
     * (HiRA). Scales as capacity^0.6 mirroring Expression 1; see DESIGN.md
     * "Scaling model". 64K at 8 Gb.
     */
    std::uint32_t refreshGroupsPerBank = 65536;

    int banksPerRank() const { return bankGroups * banksPerGroup; }
    int banksPerChannel() const { return ranksPerChannel * banksPerRank(); }
    int totalBanks() const { return channels * banksPerChannel(); }
    std::uint32_t rowsPerSubarray() const
    {
        return rowsPerBank / subarraysPerBank;
    }

    std::uint64_t
    bytesPerBank() const
    {
        return std::uint64_t(rowsPerBank) * colsPerRow * lineBytes;
    }

    std::uint64_t
    totalBytes() const
    {
        return bytesPerBank() * static_cast<std::uint64_t>(totalBanks());
    }

    /** Bank group of a flat per-rank bank id. */
    int bankGroupOf(BankId bank) const
    {
        return static_cast<int>(bank) / banksPerGroup;
    }

    /**
     * Geometry for a given per-chip capacity (gigabits), holding row size
     * and bank count fixed and scaling the row count, as DDR4 generations
     * do. refreshGroupsPerBank scales as capacity^0.6 (DESIGN.md).
     */
    static Geometry forCapacityGb(double capacity_gb);
};

} // namespace hira

#endif // HIRA_DRAM_GEOMETRY_HH
