#include "security/para_analysis.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace hira {

double
slackActivations(double t_ref_slack_ns, const ParaParams &pp)
{
    return t_ref_slack_ns / pp.tRC;
}

double
logRowHammerSuccess(double pth, double nrh, double n_ref_slack,
                    const ParaParams &pp)
{
    hira_assert(pth > 0.0 && pth < 1.0);
    hira_assert(nrh > 0.0);
    // Expression 7: Nf_max = ((tREFW / tRC) - NRH - NRefSlack) / 2.
    double nf_max_d =
        (pp.windowActivations() - nrh - n_ref_slack) / 2.0;
    hira_assert(nf_max_d >= 0.0);
    std::uint64_t nf_max = static_cast<std::uint64_t>(nf_max_d);

    // Expression 8:
    //   pRH = sum_{Nf=0}^{Nfmax} (1-p/2)^(Nf + NRH - NRefSlack) (p/2)^Nf
    //       = (1-p/2)^(NRH - NRefSlack) * sum r^Nf,  r = (p/2)(1-p/2).
    double log_q = std::log1p(-pth / 2.0);      // log(1 - p/2)
    double log_half_p = std::log(pth / 2.0);    // log(p/2)
    double log_r = log_half_p + log_q;
    double exponent = nrh - n_ref_slack;
    return exponent * log_q + logGeometricSum(log_r, nf_max);
}

double
rowHammerSuccess(double pth, double nrh, double n_ref_slack,
                 const ParaParams &pp)
{
    return std::exp(logRowHammerSuccess(pth, nrh, n_ref_slack, pp));
}

double
logRowHammerSuccessLegacy(double pth, double nrh)
{
    return nrh * std::log1p(-pth / 2.0);
}

double
kFactor(double pth, double nrh, double n_ref_slack, const ParaParams &pp)
{
    return std::exp(logRowHammerSuccess(pth, nrh, n_ref_slack, pp) -
                    logRowHammerSuccessLegacy(pth, nrh));
}

namespace {

/** Bisection for a strictly decreasing log-probability function. */
template <typename F>
double
bisectPth(F &&log_prob, double log_target)
{
    double lo = 1e-9, hi = 1.0 - 1e-9;
    // log_prob decreases in pth: prob(lo) > target > prob(hi) expected.
    for (int iter = 0; iter < 200; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (log_prob(mid) > log_target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace

double
solvePth(double nrh, double n_ref_slack, const ParaParams &pp)
{
    double log_target = std::log(pp.target);
    return bisectPth(
        [&](double p) {
            return logRowHammerSuccess(p, nrh, n_ref_slack, pp);
        },
        log_target);
}

double
solvePthLegacy(double nrh, const ParaParams &pp)
{
    double log_target = std::log(pp.target);
    return bisectPth(
        [&](double p) { return logRowHammerSuccessLegacy(p, nrh); },
        log_target);
}

std::vector<ParaSweepPoint>
paraSweep(const std::vector<double> &nrh_values,
          const std::vector<double> &slack_ns_values, const ParaParams &pp)
{
    std::vector<ParaSweepPoint> out;
    for (double nrh : nrh_values) {
        double legacy = solvePthLegacy(nrh, pp);
        for (double slack_ns : slack_ns_values) {
            ParaSweepPoint pt;
            pt.nrh = nrh;
            pt.slackNs = slack_ns;
            double nrs = slackActivations(slack_ns, pp);
            pt.pth = solvePth(nrh, nrs, pp);
            pt.pthLegacy = legacy;
            pt.legacyTruePrh = rowHammerSuccess(legacy, nrh, nrs, pp);
            out.push_back(pt);
        }
    }
    return out;
}

} // namespace hira
