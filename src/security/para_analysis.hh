/**
 * @file
 * Security analysis of PARA under HiRA-MC's refresh queueing slack
 * (Section 9.1, Expressions 2-9, Figs. 10-11).
 *
 * PARA refreshes a neighbor of every activated row with probability pth.
 * The paper models the attack as Nf failed attempts (each costing, in
 * the worst case, one aggressor activation plus one preventive refresh)
 * followed by one successful run of NRH unpunished activations, sums the
 * success probability over all Nf that fit in a refresh window, extends
 * it with the extra activations an attacker gains while a preventive
 * refresh sits queued for tRefSlack, and solves pth for a 1e-15 failure
 * target. All computation here is in log space: the raw probabilities
 * underflow doubles by hundreds of orders of magnitude.
 */

#ifndef HIRA_SECURITY_PARA_ANALYSIS_HH
#define HIRA_SECURITY_PARA_ANALYSIS_HH

#include <cstdint>
#include <vector>

namespace hira {

/** System constants entering the analysis (footnote 13 defaults). */
struct ParaParams
{
    double tREFW = 64.0e6;    //!< refresh window, ns
    double tRC = 46.25;       //!< row cycle, ns
    double target = 1.0e-15;  //!< RowHammer success probability target

    /** Activations an attacker fits in one refresh window. */
    double windowActivations() const { return tREFW / tRC; }
};

/**
 * Worst-case extra activations the attacker performs while a preventive
 * refresh is queued (NRefSlack = tRefSlack / tRC, Step 4).
 */
double slackActivations(double t_ref_slack_ns, const ParaParams &pp = {});

/**
 * log of the overall RowHammer success probability (Expression 8) for a
 * given PARA threshold.
 * @param pth PARA probability threshold in (0, 1)
 * @param nrh RowHammer threshold of the chip
 * @param n_ref_slack worst-case queued-refresh activations
 */
double logRowHammerSuccess(double pth, double nrh, double n_ref_slack,
                           const ParaParams &pp = {});

/** Expression 8 in linear space (may underflow to 0 for large pth). */
double rowHammerSuccess(double pth, double nrh, double n_ref_slack,
                        const ParaParams &pp = {});

/**
 * PARA-Legacy's success model [84]: (1 - pth/2)^NRH, assuming the
 * attacker hammers exactly NRH times and no more (Section 9.1.3).
 */
double logRowHammerSuccessLegacy(double pth, double nrh);

/**
 * Expression 9's k factor: how much larger the true success probability
 * is than PARA-Legacy's estimate at the same pth.
 */
double kFactor(double pth, double nrh, double n_ref_slack,
               const ParaParams &pp = {});

/**
 * Solve pth so the overall success probability meets the target
 * (Step 5; bisection on the strictly decreasing Expression 8).
 */
double solvePth(double nrh, double n_ref_slack, const ParaParams &pp = {});

/** Solve pth under the PARA-Legacy model (the dashed Fig. 11 curves). */
double solvePthLegacy(double nrh, const ParaParams &pp = {});

/** One point of the Fig. 11 sweep. */
struct ParaSweepPoint
{
    double nrh;
    double slackNs;
    double pth;        //!< threshold meeting the 1e-15 target (Fig. 11a)
    double pthLegacy;  //!< PARA-Legacy threshold at the same NRH
    double legacyTruePrh; //!< Expression 8 evaluated at pthLegacy (Fig. 11b)
};

/** Compute the Fig. 11 sweep for the given thresholds and slacks. */
std::vector<ParaSweepPoint>
paraSweep(const std::vector<double> &nrh_values,
          const std::vector<double> &slack_ns_values,
          const ParaParams &pp = {});

} // namespace hira

#endif // HIRA_SECURITY_PARA_ANALYSIS_HH
