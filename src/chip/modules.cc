#include "chip/modules.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace hira {

namespace {

struct Entry
{
    const char *label;
    const char *vendor;
    double capacityGb;
    const char *dieRev;
    PaperModuleNumbers paper;
    double isoSpread; //!< per-subarray isolation spread calibration
};

// Table 4 of the paper (coverage and normalized-NRH min/avg/max).
const Entry kEntries[] = {
    {"A0", "G.SKILL", 4.0, "B",
     {0.248, 0.250, 0.255, 1.75, 1.90, 2.52}, 0.010},
    {"A1", "G.SKILL", 4.0, "B",
     {0.249, 0.266, 0.283, 1.72, 1.94, 2.55}, 0.015},
    {"B0", "Kingston", 8.0, "D",
     {0.251, 0.326, 0.368, 1.71, 1.89, 2.34}, 0.040},
    {"B1", "Kingston", 8.0, "D",
     {0.250, 0.316, 0.349, 1.74, 1.91, 2.51}, 0.035},
    {"C0", "SK Hynix", 4.0, "F",
     {0.253, 0.353, 0.395, 1.47, 1.89, 2.23}, 0.045},
    {"C1", "SK Hynix", 4.0, "F",
     {0.292, 0.384, 0.499, 1.09, 1.88, 2.27}, 0.065},
    {"C2", "SK Hynix", 4.0, "F",
     {0.265, 0.361, 0.423, 1.49, 1.96, 2.58}, 0.050},
};

ChipConfig
baseConfig(const char *label, std::uint32_t rows, std::uint32_t banks)
{
    ChipConfig cfg;
    cfg.name = label;
    cfg.seed = hashString(label);
    cfg.banks = banks;
    cfg.rowsPerBank = rows;
    cfg.subarraysPerBank = rows >= 128 ? 128 : rows / 2;
    hira_assert(rows % cfg.subarraysPerBank == 0);
    return cfg;
}

} // namespace

std::vector<ModuleInfo>
hiraModules(std::uint32_t rows_per_bank, std::uint32_t banks)
{
    std::vector<ModuleInfo> out;
    for (const Entry &e : kEntries) {
        ModuleInfo m;
        m.label = e.label;
        m.vendor = e.vendor;
        m.chipCapacityGb = e.capacityGb;
        m.dieRev = e.dieRev;
        m.paper = e.paper;
        m.config = baseConfig(e.label, rows_per_bank, banks);
        m.config.honorsHira = true;
        m.config.pairIsolationMean = e.paper.covAvg;
        m.config.pairIsolationSpread = e.isoSpread;
        // Restoration efficacy calibrated so 2 / (2 - eta) matches the
        // module's mean normalized NRH.
        m.config.var.etaMean = 2.0 - 2.0 / e.paper.nrhAvg;
        out.push_back(std::move(m));
    }
    return out;
}

ModuleInfo
moduleByLabel(const std::string &label, std::uint32_t rows_per_bank,
              std::uint32_t banks)
{
    for (ModuleInfo &m : hiraModules(rows_per_bank, banks)) {
        if (m.label == label)
            return m;
    }
    fatal("unknown DRAM module label '%s'", label.c_str());
}

ChipConfig
nonHiraVendorConfig(const std::string &label, std::uint32_t rows_per_bank,
                    std::uint32_t banks)
{
    ChipConfig cfg = baseConfig(label.c_str(), rows_per_bank, banks);
    cfg.honorsHira = false;
    return cfg;
}

} // namespace hira
