#include "chip/dram_chip.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace hira {

const DataPattern kAllPatterns[4] = {
    DataPattern::Ones,
    DataPattern::Zeros,
    DataPattern::Checker,
    DataPattern::InvChecker,
};

namespace {

std::uint64_t
rowKey(BankId bank, RowId row)
{
    return (static_cast<std::uint64_t>(bank) << 32) | row;
}

} // namespace

DramChip::DramChip(const ChipConfig &config)
    : cfg(config), iso(config), var(config)
{
    hira_assert(cfg.rowsPerBank % cfg.subarraysPerBank == 0);
    banks.resize(cfg.banks);
}

DramChip::RowState &
DramChip::rowState(BankId bank, RowId row)
{
    return rows[rowKey(bank, row)];
}

const DramChip::RowState *
DramChip::rowStateIfAny(BankId bank, RowId row) const
{
    auto it = rows.find(rowKey(bank, row));
    return it == rows.end() ? nullptr : &it->second;
}

void
DramChip::disturbNeighbors(BankId bank, RowId row, double amount)
{
    // Physically adjacent rows receive the disturbance (blast radius 1;
    // the controller-visible to physical row mapping is modeled as the
    // identity, see DESIGN.md).
    if (row > 0)
        rowState(bank, row - 1).damage += amount;
    if (row + 1 < cfg.rowsPerBank)
        rowState(bank, row + 1).damage += amount;
}

void
DramChip::restoreRow(BankId bank, RowId row, NanoSec t)
{
    RowState &rs = rowState(bank, row);
    double e = var.eta(bank, row);
    rs.damage *= (1.0 - e);
    rs.session += 1;
    rs.lastRestore = t;
}

void
DramChip::corruptRow(BankId bank, RowId row)
{
    rowState(bank, row).corrupted = true;
}

void
DramChip::settlePending(Bank &b, BankId bank, NanoSec t)
{
    for (const PendingRestore &p : b.pending) {
        if (p.done <= t) {
            restoreRow(bank, p.row, p.done);
        } else {
            ++stats_.interruptedRestores;
            corruptRow(bank, p.row);
        }
    }
    b.pending.clear();
}

void
DramChip::finalizePrecharge(Bank &b, BankId bank)
{
    // The PRE issued at b.preTime ran to term: the wordline of b.row went
    // down. If its charge restoration had not completed, the data is
    // lost; otherwise the restoration counts as a refresh.
    hira_assert(b.phase == Phase::Precharging);
    double elapsed = b.preTime - b.actTime;
    if (elapsed + 1e-9 >= var.restoreTime(b.row)) {
        restoreRow(bank, b.row, b.preTime);
    } else {
        ++stats_.interruptedRestores;
        corruptRow(bank, b.row);
    }
    settlePending(b, bank, b.preTime);
    b.phase = Phase::Precharged;
    b.row = kNoRow;
}

void
DramChip::act(BankId bank, RowId row, NanoSec t)
{
    hira_assert(bank < cfg.banks && row < cfg.rowsPerBank);
    Bank &b = banks[bank];
    hira_assert(t + 1e-9 >= b.lastEvent);
    b.lastEvent = t;
    latestTime = std::max(latestTime, t);
    ++stats_.acts;

    switch (b.phase) {
      case Phase::Precharged:
        b.phase = Phase::Active;
        b.row = row;
        b.actTime = t;
        disturbNeighbors(bank, row, 1.0);
        return;

      case Phase::Active:
        // ACT to an open bank: real chips ignore it (also the fate of
        // HiRA's second ACT on vendors that ignored the violating PRE).
        ++stats_.ignoredAct;
        return;

      case Phase::Precharging: {
        double t2 = t - b.preTime;
        if (t2 > kHiraInterruptNs) {
            // The precharge ran to term before this ACT: normal reopen.
            finalizePrecharge(b, bank);
            b.phase = Phase::Active;
            b.row = row;
            b.actTime = t;
            disturbNeighbors(bank, row, 1.0);
            // Activating before the bitlines finished equalizing makes
            // the sensing unreliable.
            if (t2 < kPrechargeDoneNs)
                corruptRow(bank, row);
            return;
        }

        // HiRA second ACT: the PRE is interrupted while RowA's wordline
        // is still up (Section 3, step 3).
        ++stats_.hiraAttempts;
        RowId row_a = b.row;
        double t1 = b.preTime - b.actTime;
        bool ok = true;

        if (!iso.rowsIsolated(row_a, row)) {
            // Shared bitlines / sense amplifiers: the second activation
            // fights RowA's ongoing restoration; both rows lose data.
            corruptRow(bank, row_a);
            corruptRow(bank, row);
            ++stats_.hiraNotIsolated;
            ok = false;
        }
        if (t1 + 1e-9 < var.saEnable(row_a) ||
            t1 - 1e-9 > var.ioConnect(row_a)) {
            // Condition 1 / hypothesis for large t1 (Section 4.2): the
            // sense amps never latched RowA, or its local row buffer
            // already reached the bank I/O.
            corruptRow(bank, row_a);
            ++stats_.hiraBadT1;
            ok = false;
        }
        if (t2 + 1e-9 < var.bLow(row) || t2 - 1e-9 > var.bHigh(row)) {
            // The second activation misses its own reliable window.
            corruptRow(bank, row);
            ++stats_.hiraBadT2;
            ok = false;
        }
        if (ok)
            ++stats_.hiraSuccess;

        // RowA's wordline stays up; its restoration finishes in the
        // shadow of RowB's tRAS unless the bank is closed too early
        // (checked when the closing PRE arrives).
        if (!rowState(bank, row_a).corrupted) {
            b.pending.push_back(
                {row_a, b.actTime + var.restoreTime(row_a)});
        }
        b.phase = Phase::Active;
        b.row = row;
        b.actTime = t;
        disturbNeighbors(bank, row, 1.0);
        return;
      }
    }
}

void
DramChip::pre(BankId bank, NanoSec t)
{
    hira_assert(bank < cfg.banks);
    Bank &b = banks[bank];
    hira_assert(t + 1e-9 >= b.lastEvent);
    b.lastEvent = t;
    latestTime = std::max(latestTime, t);
    ++stats_.pres;

    switch (b.phase) {
      case Phase::Precharged:
        return; // PRE to an idle bank is a no-op

      case Phase::Active: {
        double elapsed = t - b.actTime;
        if (!cfg.honorsHira && elapsed < kIgnoreRasBelowNs) {
            // Non-supporting vendors ignore a PRE that grossly violates
            // tRAS (Section 12): the bank silently stays active.
            ++stats_.ignoredPre;
            return;
        }
        b.phase = Phase::Precharging;
        b.preTime = t;
        return;
      }

      case Phase::Precharging:
        // Second PRE with no intervening ACT: the first already decided
        // the row's fate.
        finalizePrecharge(b, bank);
        return;
    }
}

NanoSec
DramChip::hammerPair(BankId bank, RowId aggr_a, RowId aggr_b,
                     std::uint64_t n, NanoSec t)
{
    Bank &bk = banks[bank];
    if (bk.phase == Phase::Precharging)
        finalizePrecharge(bk, bank); // settle a still-pending PRE
    hira_assert(bk.phase == Phase::Precharged);
    if (n == 0)
        return t;
    // Equivalent to n iterations of
    //   act(a); pre() after tRAS; act(b); pre() after tRAS;
    // with nominal timing: each aggressor activation disturbs its two
    // neighbors once and fully restores the aggressor itself.
    disturbNeighbors(bank, aggr_a, static_cast<double>(n));
    disturbNeighbors(bank, aggr_b, static_cast<double>(n));
    NanoSec end = t + static_cast<double>(2 * n) * kRcNs;
    latestTime = std::max(latestTime, end);
    // The aggressors themselves are restored on every iteration.
    for (RowId r : {aggr_a, aggr_b}) {
        RowState &rs = rowState(bank, r);
        rs.damage = 0.0;
        rs.session += n;
        rs.lastRestore = end;
    }
    stats_.acts += 2 * n;
    stats_.pres += 2 * n;
    return end;
}

void
DramChip::writeOpenRow(BankId bank, DataPattern p, NanoSec t)
{
    Bank &b = banks[bank];
    hira_assert(b.phase == Phase::Active);
    hira_assert(t + 1e-9 >= b.actTime + kRcdNs);
    b.lastEvent = t;
    RowState &rs = rowState(bank, b.row);
    rs.basePattern = static_cast<std::uint8_t>(p);
    rs.initialized = true;
    rs.corrupted = false;
    rs.damage = 0.0;
    rs.session += 1;
    rs.lastRestore = t;
}

bool
DramChip::hasFlips(BankId bank, RowId row, const RowState &rs,
                   NanoSec t) const
{
    if (!rs.initialized || rs.corrupted)
        return true;
    if (rs.damage >= var.nrhEffective(bank, row, rs.session))
        return true;
    double elapsed_ms = (t - rs.lastRestore) * 1e-6;
    if (elapsed_ms > var.retentionMs(bank, row))
        return true;
    return false;
}

bool
DramChip::openRowMatches(BankId bank, DataPattern expected, NanoSec t)
{
    Bank &b = banks[bank];
    hira_assert(b.phase == Phase::Active);
    hira_assert(t + 1e-9 >= b.actTime + kRcdNs);
    b.lastEvent = t;
    const RowState &rs = rowState(bank, b.row);
    if (rs.basePattern != static_cast<std::uint8_t>(expected))
        return false;
    return !hasFlips(bank, b.row, rs, t);
}

std::vector<std::uint8_t>
DramChip::readOpenRow(BankId bank, NanoSec t)
{
    Bank &b = banks[bank];
    hira_assert(b.phase == Phase::Active);
    b.lastEvent = t;
    RowState &rs = rowState(bank, b.row);
    std::vector<std::uint8_t> data(cfg.rowBytes, rs.basePattern);
    if (hasFlips(bank, b.row, rs, t)) {
        // Materialize a deterministic set of flipped bits: at least one,
        // more as the disturbance overshoots the threshold.
        double nrh = var.nrhEffective(bank, b.row, rs.session);
        double excess = nrh > 0.0 ? std::max(rs.damage / nrh - 1.0, 0.0)
                                  : 0.0;
        std::size_t nflips =
            1 + static_cast<std::size_t>(std::min(excess * 8.0, 63.0));
        if (rs.corrupted || !rs.initialized)
            nflips = 16 + (hashCombine(cfg.seed, rowKey(bank, b.row)) % 48);
        std::uint64_t h = hashCombine(cfg.seed, rowKey(bank, b.row));
        for (std::size_t i = 0; i < nflips; ++i) {
            h = splitmix64(h);
            std::size_t bit = h % (cfg.rowBytes * 8);
            data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
    }
    return data;
}

RowId
DramChip::openRow(BankId bank) const
{
    const Bank &b = banks[bank];
    return b.phase == Phase::Active ? b.row : kNoRow;
}

double
DramChip::damageOf(BankId bank, RowId row) const
{
    const RowState *rs = rowStateIfAny(bank, row);
    return rs == nullptr ? 0.0 : rs->damage;
}

} // namespace hira
