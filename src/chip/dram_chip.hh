/**
 * @file
 * Behavioral circuit-level DRAM chip model.
 *
 * Substitute for the paper's real-chip testbed (56 DDR4 chips behind
 * SoftMC, Section 4.1). The chip is observed exclusively through timed
 * ACT / PRE commands plus open-row data access, exactly like the real
 * infrastructure, and encodes the paper's observed phenomenology:
 *
 *  - HiRA (ACT - t1 - PRE - t2 - ACT) succeeds iff the two rows are in
 *    electrically isolated subarrays and the per-row t1 / t2 operating
 *    windows are met (Section 4.2's four operating conditions);
 *  - chips that do not support HiRA ignore the grossly violating PRE /
 *    second ACT (Section 12's hypothesis for Micron / Samsung);
 *  - activations disturb physically adjacent rows (RowHammer) with
 *    per-row thresholds, and a completed charge restoration removes the
 *    accumulated disturbance with per-row efficacy (Section 4.3);
 *  - rows lose data if their charge restoration is interrupted, and
 *    retain data only for their retention time without refresh.
 */

#ifndef HIRA_CHIP_DRAM_CHIP_HH
#define HIRA_CHIP_DRAM_CHIP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chip/config.hh"
#include "chip/design.hh"
#include "chip/variation.hh"

namespace hira {

/** The four test data patterns of Section 4.1. */
enum class DataPattern : std::uint8_t
{
    Ones = 0xFF,
    Zeros = 0x00,
    Checker = 0xAA,
    InvChecker = 0x55,
};

/** The inverse pattern (Algorithm 1 initializes RowB with !datapattern). */
inline DataPattern
invert(DataPattern p)
{
    return static_cast<DataPattern>(~static_cast<std::uint8_t>(p));
}

/** All four patterns, iteration order of Algorithm 1. */
extern const DataPattern kAllPatterns[4];

/** Operation counters exposed for tests and harness reporting. */
struct ChipStats
{
    std::uint64_t acts = 0;
    std::uint64_t pres = 0;
    std::uint64_t ignoredPre = 0;   //!< vendor ignored a violating PRE
    std::uint64_t ignoredAct = 0;   //!< ACT to an open bank ignored
    std::uint64_t hiraAttempts = 0;
    std::uint64_t hiraSuccess = 0;
    std::uint64_t hiraNotIsolated = 0;
    std::uint64_t hiraBadT1 = 0;
    std::uint64_t hiraBadT2 = 0;
    std::uint64_t interruptedRestores = 0;
};

/** One bank's command-visible state. */
class DramChip
{
  public:
    explicit DramChip(const ChipConfig &cfg);

    // ----- command interface (times in absolute ns) -------------------

    /** Row activation. */
    void act(BankId bank, RowId row, NanoSec t);

    /** Bank precharge. */
    void pre(BankId bank, NanoSec t);

    /**
     * Bulk double-sided hammering: @p n iterations of
     * ACT(a) tRAS PRE tRP ACT(b) tRAS PRE tRP with nominal timing.
     * Semantically identical to the explicit loop; O(1).
     * @return the time after the last iteration.
     */
    NanoSec hammerPair(BankId bank, RowId aggr_a, RowId aggr_b,
                       std::uint64_t n, NanoSec t);

    // ----- data access on the open row ---------------------------------

    /** Write the pattern into the open row (fully restores its cells). */
    void writeOpenRow(BankId bank, DataPattern p, NanoSec t);

    /**
     * Compare the open row against the expected pattern.
     * @return true iff no bit flip is present.
     */
    bool openRowMatches(BankId bank, DataPattern expected, NanoSec t);

    /** Materialize the open row's bytes (pattern with flips applied). */
    std::vector<std::uint8_t> readOpenRow(BankId bank, NanoSec t);

    // ----- inspection ---------------------------------------------------

    RowId openRow(BankId bank) const;
    const ChipConfig &config() const { return cfg; }
    const IsolationMap &isolation() const { return iso; }
    const Variation &variation() const { return var; }
    const ChipStats &stats() const { return stats_; }

    /** Accumulated RowHammer disturbance of a row (test hook). */
    double damageOf(BankId bank, RowId row) const;

    /** Latest event time the chip has seen (ns); hosts resume from it. */
    NanoSec currentTime() const { return latestTime; }

  private:
    enum class Phase
    {
        Precharged,
        Active,
        Precharging, //!< PRE received, wordline fate not yet decided
    };

    struct RowState
    {
        std::uint8_t basePattern = 0;
        bool initialized = false;
        bool corrupted = false;
        double damage = 0.0;
        std::uint64_t session = 0;
        NanoSec lastRestore = 0.0;
    };

    struct PendingRestore
    {
        RowId row;
        NanoSec done;
    };

    struct Bank
    {
        Phase phase = Phase::Precharged;
        RowId row = kNoRow;
        NanoSec actTime = 0.0;
        NanoSec preTime = 0.0;
        NanoSec lastEvent = 0.0;
        std::vector<PendingRestore> pending;
    };

    RowState &rowState(BankId bank, RowId row);
    const RowState *rowStateIfAny(BankId bank, RowId row) const;

    /** Apply the aggressor effect of activating @p row. */
    void disturbNeighbors(BankId bank, RowId row, double amount);

    /** Complete a full charge restoration of @p row at time @p t. */
    void restoreRow(BankId bank, RowId row, NanoSec t);

    /** Mark a row's data as destroyed. */
    void corruptRow(BankId bank, RowId row);

    /** Decide the fate of a Precharging bank whose PRE ran to term. */
    void finalizePrecharge(Bank &b, BankId bank);

    /** Settle the pending background restores at a closing PRE. */
    void settlePending(Bank &b, BankId bank, NanoSec t);

    /** True iff the row currently shows at least one bit flip. */
    bool hasFlips(BankId bank, RowId row, const RowState &rs,
                  NanoSec t) const;

    ChipConfig cfg;
    IsolationMap iso;
    Variation var;
    std::vector<Bank> banks;
    std::unordered_map<std::uint64_t, RowState> rows;
    ChipStats stats_;
    NanoSec latestTime = 0.0;

    // Behavioral window constants (ns). A PRE interrupted within
    // kHiraInterruptNs keeps the previous wordline up; a precharge is
    // electrically complete after kPrechargeDoneNs; non-supporting
    // vendors ignore a PRE arriving earlier than kIgnoreRasBelowNs after
    // the ACT (Section 12's hypothesis).
    static constexpr double kHiraInterruptNs = 7.0;
    static constexpr double kPrechargeDoneNs = 13.0;
    static constexpr double kIgnoreRasBelowNs = 20.0;
    static constexpr double kRcdNs = 14.25;
    static constexpr double kRasNs = 32.0;
    static constexpr double kRpNs = 14.25;
    static constexpr double kRcNs = 46.25;
};

} // namespace hira

#endif // HIRA_CHIP_DRAM_CHIP_HH
