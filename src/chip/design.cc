#include "chip/design.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace hira {

namespace {

constexpr std::uint64_t kTagSubTarget = 100;
constexpr std::uint64_t kTagPair = 101;

} // namespace

IsolationMap::IsolationMap(const ChipConfig &config)
    : cfg(config), count(config.subarraysPerBank)
{
    hira_assert(count >= 2);
    matrix.assign(static_cast<std::size_t>(count) * count, false);

    // Per-subarray isolation target around the module mean. Averaging
    // the two endpoints' targets halves the spread, so pre-widen by 2x.
    std::vector<double> target(count);
    for (SubarrayId s = 0; s < count; ++s) {
        double u =
            hashUniform(hashCombine(cfg.seed, kTagSubTarget), s);
        target[s] = cfg.pairIsolationMean +
                    2.0 * cfg.pairIsolationSpread * (2.0 * u - 1.0);
    }

    for (SubarrayId a = 0; a < count; ++a) {
        for (SubarrayId b = a + 1; b < count; ++b) {
            // Open-bitline: adjacent subarrays share sense amplifiers.
            if (b - a < 2)
                continue;
            double p = std::clamp(0.5 * (target[a] + target[b]), 0.0, 1.0);
            bool iso = hashUniform(hashCombine(cfg.seed, kTagPair), a, b) < p;
            matrix[static_cast<std::size_t>(a) * count + b] = iso;
            matrix[static_cast<std::size_t>(b) * count + a] = iso;
        }
    }
}

double
IsolationMap::isolatedFraction(SubarrayId a) const
{
    std::uint32_t n = 0;
    for (SubarrayId b = 0; b < count; ++b)
        n += isolated(a, b) ? 1 : 0;
    return static_cast<double>(n) / static_cast<double>(count - 1);
}

double
IsolationMap::meanIsolatedFraction() const
{
    double sum = 0.0;
    for (SubarrayId a = 0; a < count; ++a)
        sum += isolatedFraction(a);
    return sum / static_cast<double>(count);
}

std::vector<SubarrayId>
IsolationMap::partnersOf(SubarrayId a) const
{
    std::vector<SubarrayId> out;
    for (SubarrayId b = 0; b < count; ++b) {
        if (isolated(a, b))
            out.push_back(b);
    }
    return out;
}

} // namespace hira
