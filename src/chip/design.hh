/**
 * @file
 * Design-level subarray isolation map.
 *
 * In the open-bitline architecture (Section 2.1), vertically adjacent
 * subarrays share sense amplifiers, so they can never host a HiRA pair.
 * Beyond adjacency, whether two subarrays' charge-restoration circuits
 * are electrically isolated is a property of the (proprietary) chip
 * design; the paper observes the resulting pair set to be identical
 * across all banks of a module (Section 4.4.1). We model it as a
 * deterministic per-module map whose isolated-pair density matches the
 * module's measured HiRA coverage (Table 4).
 */

#ifndef HIRA_CHIP_DESIGN_HH
#define HIRA_CHIP_DESIGN_HH

#include <vector>

#include "chip/config.hh"

namespace hira {

/** Immutable isolation map for one module design. */
class IsolationMap
{
  public:
    explicit IsolationMap(const ChipConfig &cfg);

    /** True if the two subarrays share no bitline or sense amplifier. */
    bool
    isolated(SubarrayId a, SubarrayId b) const
    {
        if (a == b)
            return false;
        return matrix[static_cast<std::size_t>(a) * count + b];
    }

    /** True if two *rows* may form a HiRA pair at the circuit level. */
    bool
    rowsIsolated(RowId a, RowId b) const
    {
        return isolated(cfg.subarrayOf(a), cfg.subarrayOf(b));
    }

    std::uint32_t subarrays() const { return count; }

    /** Fraction of (ordered) peer subarrays isolated from @p a. */
    double isolatedFraction(SubarrayId a) const;

    /** Mean isolated fraction over all subarrays. */
    double meanIsolatedFraction() const;

    /** List of subarrays isolated from @p a (the SPT entry, §5.1.4). */
    std::vector<SubarrayId> partnersOf(SubarrayId a) const;

  private:
    ChipConfig cfg;
    std::uint32_t count;
    std::vector<bool> matrix; //!< symmetric count x count
};

} // namespace hira

#endif // HIRA_CHIP_DESIGN_HH
