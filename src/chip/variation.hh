/**
 * @file
 * Deterministic per-row / per-cell variation derived from the chip seed.
 *
 * All values come from stateless hashes so they are independent of
 * evaluation order and identical across runs, and — matching the paper's
 * Section 4.4.1 observation — identical across banks wherever the
 * phenomenon is design-induced (timing windows, isolation), while
 * bank-dependent only where the paper observed bank variation
 * (restoration efficacy, Fig. 6).
 */

#ifndef HIRA_CHIP_VARIATION_HH
#define HIRA_CHIP_VARIATION_HH

#include "chip/config.hh"

namespace hira {

/** Per-row and per-cell variation sampler for one chip. */
class Variation
{
  public:
    explicit Variation(const ChipConfig &chip_cfg) : cfg(chip_cfg) {}

    /** Sense-amp enable latency of the row: HiRA's t1 lower bound (ns). */
    double saEnable(RowId row) const;

    /** Row-buffer-to-bank-I/O connect latency: t1 upper bound (ns). */
    double ioConnect(RowId row) const;

    /** Second-row t2 lower bound (ns). */
    double bLow(RowId row) const;

    /** Second-row t2 upper bound (ns). */
    double bHigh(RowId row) const;

    /** Full charge-restoration latency of the row (ns). */
    double restoreTime(RowId row) const;

    /** Refresh restoration efficacy in [etaLo, etaHi]; bank-biased. */
    double eta(BankId bank, RowId row) const;

    /** Base RowHammer threshold of the row (activations). */
    double nrhBase(RowId row) const;

    /**
     * Effective RowHammer threshold for one charge session (between two
     * restorations); includes the per-session measurement noise.
     */
    double nrhEffective(BankId bank, RowId row,
                        std::uint64_t session) const;

    /** Retention time of the row's weakest cell (ms). */
    double retentionMs(BankId bank, RowId row) const;

  private:
    /** Gaussian clamped to mean +/- 2 sigma. */
    double clamped(double mean, double sigma, std::uint64_t tag,
                   std::uint64_t a, std::uint64_t b = 0,
                   std::uint64_t c = 0) const;

    ChipConfig cfg;
};

} // namespace hira

#endif // HIRA_CHIP_VARIATION_HH
