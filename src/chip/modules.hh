/**
 * @file
 * Catalog of the DDR4 modules the paper tests (Tables 1 and 4), plus
 * non-HiRA-supporting vendor stand-ins (Section 12).
 *
 * Each entry carries the chip-model calibration (isolation density,
 * spread) targeting the module's measured HiRA coverage, and the paper's
 * published numbers so harnesses can print paper-vs-measured columns.
 */

#ifndef HIRA_CHIP_MODULES_HH
#define HIRA_CHIP_MODULES_HH

#include <string>
#include <vector>

#include "chip/config.hh"

namespace hira {

/** Published Table 4 numbers for one module. */
struct PaperModuleNumbers
{
    double covMin, covAvg, covMax;    //!< HiRA coverage, fraction
    double nrhMin, nrhAvg, nrhMax;    //!< normalized RowHammer threshold
};

/** One cataloged module: chip config + paper reference values. */
struct ModuleInfo
{
    std::string label;      //!< A0, A1, B0, B1, C0, C1, C2
    std::string vendor;     //!< DIMM vendor (chips are SK Hynix)
    double chipCapacityGb;
    std::string dieRev;
    PaperModuleNumbers paper;
    ChipConfig config;      //!< calibrated chip-model configuration
};

/**
 * The seven HiRA-supporting modules of Table 1 / Table 4.
 * @param rows_per_bank chip-model rows per bank (characterization scale;
 *        the paper tests 6K of 64K rows; tests/benches default smaller)
 * @param banks banks per chip
 */
std::vector<ModuleInfo> hiraModules(std::uint32_t rows_per_bank = 1024,
                                    std::uint32_t banks = 16);

/** Look up one module by label ("C0" etc.). */
ModuleInfo moduleByLabel(const std::string &label,
                         std::uint32_t rows_per_bank = 1024,
                         std::uint32_t banks = 16);

/**
 * A module whose chips ignore HiRA's violating command sequence
 * (Micron/Samsung-like behavior, Section 12).
 */
ChipConfig nonHiraVendorConfig(const std::string &label,
                               std::uint32_t rows_per_bank = 1024,
                               std::uint32_t banks = 16);

} // namespace hira

#endif // HIRA_CHIP_MODULES_HH
