/**
 * @file
 * Configuration of the behavioral DRAM chip model.
 *
 * The model is phenomenological: it encodes the behaviors the paper
 * *observes* through the DRAM command interface (Section 4), not the
 * manufacturers' proprietary circuits (which Section 12 notes are not
 * public). Every distribution is sampled deterministically from the chip
 * seed via stateless hashes, so identical chips behave identically.
 */

#ifndef HIRA_CHIP_CONFIG_HH
#define HIRA_CHIP_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace hira {

/**
 * Process/design variation parameters. Gaussian values are clamped to
 * mean +/- 2 sigma unless explicit bounds are given (real distributions
 * are bounded; unbounded tails would create physically absurd rows).
 */
struct VariationParams
{
    // Row-A side of the HiRA window (Section 4.2 hypotheses):
    // sense amps must be enabled before the PRE arrives...
    double saEnableMean = 2.2, saEnableSigma = 0.35;   //!< ns, t1 lower bound
    // ...and the PRE must arrive before the local row buffer connects to
    // the bank I/O.
    double ioConnectMean = 5.4, ioConnectSigma = 0.35; //!< ns, t1 upper bound

    // Row-B side: the second ACT must wait for the bitline equalization
    // head start but still interrupt the precharge.
    double bLowMean = 0.9, bLowSigma = 0.45;           //!< ns, t2 lower bound
    double bHighMean = 6.4, bHighSigma = 0.5;          //!< ns, t2 upper bound

    // Charge restoration.
    double restoreMean = 28.0, restoreSigma = 1.5;     //!< ns to full restore

    // Refresh restoration efficacy against accumulated RowHammer
    // disturbance (drives the ~1.9x normalized threshold of Section 4.3).
    double etaMean = 0.94, etaSigma = 0.05;
    double etaLo = 0.75, etaHi = 1.0;
    double etaBankSpread = 0.04;   //!< per-bank bias (Fig. 6 variation)

    // RowHammer thresholds (Fig. 5a: 10K-80K, mean 27.2K).
    double nrhMean = 27200.0;
    double nrhLogSigma = 0.30;     //!< lognormal shape across rows
    double nrhTrialSigma = 0.06;   //!< per-charge-session measurement noise

    // Retention (Section 4.1 keeps tests under 10 ms to avoid these).
    double retentionMinMs = 80.0;
    double retentionLogSigma = 1.0;
};

/** Full configuration of one chip (or lock-stepped module of chips). */
struct ChipConfig
{
    std::string name = "generic";
    std::uint64_t seed = 0x51c7;

    std::uint32_t banks = 16;
    std::uint32_t rowsPerBank = 4096;
    std::uint32_t subarraysPerBank = 128;
    std::uint32_t rowBytes = 1024; //!< per-chip row (8 KB rank row / x8)

    /**
     * True for chips that honor HiRA's timing-violating sequence
     * (SK-Hynix-like); false for chips that ignore the violating PRE /
     * second ACT (Micron/Samsung-like, Section 12).
     */
    bool honorsHira = true;

    /**
     * Design-level electrical isolation between subarray pairs: target
     * mean fraction of isolated pairs and the per-subarray spread of
     * that target (drives Table 4's per-module coverage statistics).
     */
    double pairIsolationMean = 0.33;
    double pairIsolationSpread = 0.05;

    VariationParams var;

    std::uint32_t
    rowsPerSubarray() const
    {
        return rowsPerBank / subarraysPerBank;
    }

    SubarrayId
    subarrayOf(RowId row) const
    {
        return row / rowsPerSubarray();
    }
};

} // namespace hira

#endif // HIRA_CHIP_CONFIG_HH
