#include "chip/variation.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"

namespace hira {

namespace {

// Hash-domain tags so each physical quantity draws from its own stream.
enum : std::uint64_t
{
    kTagSaEnable = 1,
    kTagIoConnect = 2,
    kTagBLow = 3,
    kTagBHigh = 4,
    kTagRestore = 5,
    kTagEta = 6,
    kTagEtaBank = 7,
    kTagNrh = 8,
    kTagNrhTrial = 9,
    kTagRetention = 10,
};

} // namespace

double
Variation::clamped(double mean, double sigma, std::uint64_t tag,
                   std::uint64_t a, std::uint64_t b, std::uint64_t c) const
{
    double g = hashGaussian(hashCombine(cfg.seed, tag), a, b, c);
    g = std::clamp(g, -2.0, 2.0);
    return mean + sigma * g;
}

double
Variation::saEnable(RowId row) const
{
    return clamped(cfg.var.saEnableMean, cfg.var.saEnableSigma, kTagSaEnable,
                   row);
}

double
Variation::ioConnect(RowId row) const
{
    return clamped(cfg.var.ioConnectMean, cfg.var.ioConnectSigma,
                   kTagIoConnect, row);
}

double
Variation::bLow(RowId row) const
{
    double v = clamped(cfg.var.bLowMean, cfg.var.bLowSigma, kTagBLow, row);
    return std::max(v, 0.0);
}

double
Variation::bHigh(RowId row) const
{
    return clamped(cfg.var.bHighMean, cfg.var.bHighSigma, kTagBHigh, row);
}

double
Variation::restoreTime(RowId row) const
{
    return clamped(cfg.var.restoreMean, cfg.var.restoreSigma, kTagRestore,
                   row);
}

double
Variation::eta(BankId bank, RowId row) const
{
    double bank_bias =
        cfg.var.etaBankSpread *
        (2.0 * hashUniform(hashCombine(cfg.seed, kTagEtaBank), bank) - 1.0);
    double e = clamped(cfg.var.etaMean + bank_bias, cfg.var.etaSigma,
                       kTagEta, bank, row);
    return std::clamp(e, cfg.var.etaLo, cfg.var.etaHi);
}

double
Variation::nrhBase(RowId row) const
{
    double g = hashGaussian(hashCombine(cfg.seed, kTagNrh), row);
    g = std::clamp(g, -2.5, 2.5);
    return cfg.var.nrhMean * std::exp(cfg.var.nrhLogSigma * g);
}

double
Variation::nrhEffective(BankId bank, RowId row, std::uint64_t session) const
{
    double jitter = hashGaussian(hashCombine(cfg.seed, kTagNrhTrial), bank,
                                 row, session);
    jitter = std::clamp(jitter, -2.5, 2.5);
    return nrhBase(row) * (1.0 + cfg.var.nrhTrialSigma * jitter);
}

double
Variation::retentionMs(BankId bank, RowId row) const
{
    double g = hashGaussian(hashCombine(cfg.seed, kTagRetention), bank, row);
    g = std::clamp(g, -2.5, 2.5);
    // Lognormal above a hard floor: the weakest cells sit just above the
    // refresh window, the bulk retains far longer (Section 2.3, [102]).
    return cfg.var.retentionMinMs *
           std::exp(cfg.var.retentionLogSigma * std::fabs(g));
}

} // namespace hira
