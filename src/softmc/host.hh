/**
 * @file
 * SoftMC substitute: a host that issues precisely timed DRAM command
 * sequences to the behavioral chip model.
 *
 * Mirrors the paper's testing infrastructure (Section 4.1): a modified
 * SoftMC on an Alveo U200 that issues one DRAM command every 1.5 ns
 * (footnote 5). Waits are therefore quantized up to the 1.5 ns grid.
 */

#ifndef HIRA_SOFTMC_HOST_HH
#define HIRA_SOFTMC_HOST_HH

#include <vector>

#include "chip/dram_chip.hh"

namespace hira {

/** Timed command host over one DramChip. */
class SoftMCHost
{
  public:
    /** SoftMC's minimum command spacing on the Alveo U200 (footnote 5). */
    static constexpr double kSlotNs = 1.5;

    // Nominal DDR4 timings the host uses for protocol-conforming steps.
    static constexpr double kRcdNs = 14.25;
    static constexpr double kRasNs = 32.0;
    static constexpr double kRpNs = 14.25;

    /** The host resumes from the chip's current time. */
    explicit SoftMCHost(DramChip &dram)
        : chip(&dram), now(dram.currentTime())
    {
    }

    /** Current host time (ns since construction). */
    NanoSec time() const { return now; }

    /** Round a wait up to the 1.5 ns command grid. */
    static double quantize(double ns);

    /** Advance time without issuing a command. */
    void wait(double ns) { now += quantize(ns); }

    /** Issue ACT, then wait the (quantized) delay. */
    void act(BankId bank, RowId row, double wait_ns);

    /** Issue PRE, then wait the (quantized) delay. */
    void pre(BankId bank, double wait_ns);

    /**
     * Initialize a row with a data pattern using nominal timing:
     * ACT, tRCD, write, tRAS residue, PRE, tRP.
     */
    void initializeRow(BankId bank, RowId row, DataPattern p);

    /**
     * Read a row back and compare against the expected pattern
     * (Algorithm 1's compare_data): ACT, tRCD, compare, PRE, tRP.
     * @return true iff no bit flip.
     */
    bool compareRow(BankId bank, RowId row, DataPattern expected);

    /** Materialize a row's bytes with nominal timing. */
    std::vector<std::uint8_t> readRow(BankId bank, RowId row);

    /**
     * Double-sided hammering: @p n iterations of
     * ACT(a) tRAS PRE tRP ACT(b) tRAS PRE tRP (2n activations total).
     */
    void hammerPair(BankId bank, RowId aggr_a, RowId aggr_b,
                    std::uint64_t n);

    /**
     * Perform one HiRA operation: ACT(row_a) t1 PRE t2 ACT(row_b) tRAS
     * PRE tRP (Algorithm 1 lines 11-16, including closing both rows).
     */
    void hiraOp(BankId bank, RowId row_a, RowId row_b, double t1,
                double t2);

    DramChip &chipRef() { return *chip; }

  private:
    DramChip *chip;
    NanoSec now = 0.0;
};

} // namespace hira

#endif // HIRA_SOFTMC_HOST_HH
