#include "softmc/host.hh"

#include <cmath>

namespace hira {

double
SoftMCHost::quantize(double ns)
{
    if (ns <= 0.0)
        return 0.0;
    return std::ceil(ns / kSlotNs - 1e-9) * kSlotNs;
}

void
SoftMCHost::act(BankId bank, RowId row, double wait_ns)
{
    chip->act(bank, row, now);
    now += quantize(wait_ns);
}

void
SoftMCHost::pre(BankId bank, double wait_ns)
{
    chip->pre(bank, now);
    now += quantize(wait_ns);
}

void
SoftMCHost::initializeRow(BankId bank, RowId row, DataPattern p)
{
    act(bank, row, kRcdNs);
    chip->writeOpenRow(bank, p, now);
    // Remainder of tRAS after the column write, then close.
    wait(kRasNs - kRcdNs);
    pre(bank, kRpNs);
}

bool
SoftMCHost::compareRow(BankId bank, RowId row, DataPattern expected)
{
    act(bank, row, kRcdNs);
    bool ok = chip->openRowMatches(bank, expected, now);
    wait(kRasNs - kRcdNs);
    pre(bank, kRpNs);
    return ok;
}

std::vector<std::uint8_t>
SoftMCHost::readRow(BankId bank, RowId row)
{
    act(bank, row, kRcdNs);
    std::vector<std::uint8_t> data = chip->readOpenRow(bank, now);
    wait(kRasNs - kRcdNs);
    pre(bank, kRpNs);
    return data;
}

void
SoftMCHost::hammerPair(BankId bank, RowId aggr_a, RowId aggr_b,
                       std::uint64_t n)
{
    now = chip->hammerPair(bank, aggr_a, aggr_b, n, now);
}

void
SoftMCHost::hiraOp(BankId bank, RowId row_a, RowId row_b, double t1,
                   double t2)
{
    act(bank, row_a, t1);
    pre(bank, t2);
    act(bank, row_b, kRasNs);
    pre(bank, kRpNs);
}

} // namespace hira
