#include "softmc/program.hh"

namespace hira {

CommandProgram &
CommandProgram::act(BankId bank, RowId row, double wait_ns)
{
    SoftMCInst i;
    i.op = SoftMCOp::Act;
    i.bank = bank;
    i.row = row;
    i.waitNs = wait_ns;
    insts.push_back(i);
    return *this;
}

CommandProgram &
CommandProgram::pre(BankId bank, double wait_ns)
{
    SoftMCInst i;
    i.op = SoftMCOp::Pre;
    i.bank = bank;
    i.waitNs = wait_ns;
    insts.push_back(i);
    return *this;
}

CommandProgram &
CommandProgram::writePattern(BankId bank, DataPattern p)
{
    SoftMCInst i;
    i.op = SoftMCOp::WritePattern;
    i.bank = bank;
    i.pattern = p;
    insts.push_back(i);
    return *this;
}

CommandProgram &
CommandProgram::checkPattern(BankId bank, DataPattern p)
{
    SoftMCInst i;
    i.op = SoftMCOp::CheckPattern;
    i.bank = bank;
    i.pattern = p;
    insts.push_back(i);
    return *this;
}

CommandProgram &
CommandProgram::wait(double ns)
{
    SoftMCInst i;
    i.op = SoftMCOp::Wait;
    i.waitNs = ns;
    insts.push_back(i);
    return *this;
}

CommandProgram &
CommandProgram::hammerLoop(BankId bank, RowId aggr_a, RowId aggr_b,
                           std::uint64_t n)
{
    SoftMCInst i;
    i.op = SoftMCOp::HammerLoop;
    i.bank = bank;
    i.row = aggr_a;
    i.row2 = aggr_b;
    i.count = n;
    insts.push_back(i);
    return *this;
}

CommandProgram &
CommandProgram::initRow(BankId bank, RowId row, DataPattern p)
{
    act(bank, row, SoftMCHost::kRcdNs);
    writePattern(bank, p);
    wait(SoftMCHost::kRasNs - SoftMCHost::kRcdNs);
    pre(bank, SoftMCHost::kRpNs);
    return *this;
}

CommandProgram &
CommandProgram::verifyRow(BankId bank, RowId row, DataPattern p)
{
    act(bank, row, SoftMCHost::kRcdNs);
    checkPattern(bank, p);
    wait(SoftMCHost::kRasNs - SoftMCHost::kRcdNs);
    pre(bank, SoftMCHost::kRpNs);
    return *this;
}

CommandProgram &
CommandProgram::hira(BankId bank, RowId row_a, RowId row_b, double t1,
                     double t2)
{
    act(bank, row_a, t1);
    pre(bank, t2);
    act(bank, row_b, SoftMCHost::kRasNs);
    pre(bank, SoftMCHost::kRpNs);
    return *this;
}

ProgramResult
execute(SoftMCHost &host, const CommandProgram &prog)
{
    ProgramResult result;
    DramChip &chip = host.chipRef();
    for (const SoftMCInst &i : prog.instructions()) {
        switch (i.op) {
          case SoftMCOp::Act:
            host.act(i.bank, i.row, i.waitNs);
            break;
          case SoftMCOp::Pre:
            host.pre(i.bank, i.waitNs);
            break;
          case SoftMCOp::WritePattern:
            chip.writeOpenRow(i.bank, i.pattern, host.time());
            break;
          case SoftMCOp::CheckPattern:
            result.checkResults.push_back(
                chip.openRowMatches(i.bank, i.pattern, host.time()));
            break;
          case SoftMCOp::Wait:
            host.wait(i.waitNs);
            break;
          case SoftMCOp::HammerLoop:
            host.hammerPair(i.bank, i.row, i.row2, i.count);
            break;
        }
    }
    result.endTime = host.time();
    return result;
}

} // namespace hira
