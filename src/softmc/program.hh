/**
 * @file
 * SoftMC command programs: a small instruction representation for timed
 * DRAM command sequences, mirroring how the real SoftMC host sends
 * pre-assembled programs to the FPGA (Section 4.1).
 *
 * The characterization algorithms can either drive SoftMCHost directly
 * or assemble a CommandProgram and execute it; programs make the issued
 * sequences inspectable and testable as data.
 */

#ifndef HIRA_SOFTMC_PROGRAM_HH
#define HIRA_SOFTMC_PROGRAM_HH

#include <vector>

#include "softmc/host.hh"

namespace hira {

/** SoftMC program opcodes. */
enum class SoftMCOp
{
    Act,          //!< activate row, then wait
    Pre,          //!< precharge bank, then wait
    WritePattern, //!< write pattern into the open row
    CheckPattern, //!< compare open row against pattern, record result
    Wait,         //!< advance time
    HammerLoop,   //!< n iterations of double-sided hammering
};

/** One SoftMC instruction. */
struct SoftMCInst
{
    SoftMCOp op;
    BankId bank = 0;
    RowId row = 0;
    RowId row2 = 0;           //!< second aggressor for HammerLoop
    DataPattern pattern = DataPattern::Zeros;
    double waitNs = 0.0;
    std::uint64_t count = 0;  //!< HammerLoop iteration count
};

/** Result of executing a program. */
struct ProgramResult
{
    std::vector<bool> checkResults; //!< one entry per CheckPattern
    NanoSec endTime = 0.0;

    bool
    allChecksPassed() const
    {
        for (bool b : checkResults) {
            if (!b)
                return false;
        }
        return true;
    }
};

/** Builder + container for a SoftMC program. */
class CommandProgram
{
  public:
    CommandProgram &act(BankId bank, RowId row, double wait_ns);
    CommandProgram &pre(BankId bank, double wait_ns);
    CommandProgram &writePattern(BankId bank, DataPattern p);
    CommandProgram &checkPattern(BankId bank, DataPattern p);
    CommandProgram &wait(double ns);
    CommandProgram &hammerLoop(BankId bank, RowId aggr_a, RowId aggr_b,
                               std::uint64_t n);

    /** Append the canonical row-initialization sequence. */
    CommandProgram &initRow(BankId bank, RowId row, DataPattern p);

    /** Append the canonical read-back-and-compare sequence. */
    CommandProgram &verifyRow(BankId bank, RowId row, DataPattern p);

    /** Append a full HiRA operation (Algorithm 1 lines 11-16). */
    CommandProgram &hira(BankId bank, RowId row_a, RowId row_b, double t1,
                         double t2);

    const std::vector<SoftMCInst> &instructions() const { return insts; }
    std::size_t size() const { return insts.size(); }

  private:
    std::vector<SoftMCInst> insts;
};

/** Execute a program on a host; returns the recorded check results. */
ProgramResult execute(SoftMCHost &host, const CommandProgram &prog);

} // namespace hira

#endif // HIRA_SOFTMC_PROGRAM_HH
