/**
 * @file
 * Trace-corpus manifests: a directory of trace files plus per-trace
 * metadata (format, instruction count, memory-intensity class, and an
 * optional alone-IPC prior), addressed by "corpus:<name>" workload
 * specs.
 *
 * A corpus directory holds the trace files and a manifest — either
 * `manifest.tsv` or `manifest.json` (TSV wins when both exist):
 *
 * TSV: comment lines start with '#'; each record line has six
 * whitespace-separated columns
 *
 *     <name> <file> <format> <instructions> <class> <alone-ipc>
 *
 * where <format> is `text` or `binary`, <class> is `H`, `M`, or `L`
 * (memory-intensity bin, see classifyApki), and <alone-ipc> is the
 * trace's single-core reference IPC or `-` when not measured.
 *
 * JSON: an object `{"version": 1, "traces": [...]}` whose entries
 * carry the same fields as keys (`name`, `file`, `format`,
 * `instructions`, `class`, `alone_ipc`; omit `alone_ipc` or use null
 * for "not measured").
 *
 * `<file>` paths are resolved relative to the manifest's directory;
 * absolute paths pass through. `tools/hira_tracegen` writes both
 * manifest flavors; see BUILDING.md for the workflow.
 *
 * The *active* corpus (Corpus::active) backs `corpus:` spec resolution
 * and the SweepRunner alone-IPC priors. It loads lazily from the
 * HIRA_CORPUS environment variable, or is installed explicitly
 * (tools/tests).
 */

#ifndef HIRA_WORKLOAD_CORPUS_HH
#define HIRA_WORKLOAD_CORPUS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/workloads.hh"
#include "workload/file_trace.hh"

namespace hira {

/** Memory-intensity bin of one trace (the paper's H/M/L categories). */
enum class MpkiClass
{
    Low,
    Medium,
    High,
};

/** Manifest letter of a class (L/M/H). */
char mpkiClassLetter(MpkiClass cls);

/**
 * Bin a trace by its memory accesses per kilo-instruction: High at
 * >= 200, Medium at >= 80, Low below. APKI is intrinsic to the trace
 * (unlike cache-dependent MPKI), so the bin is stable across machine
 * configurations.
 */
MpkiClass classifyApki(double apki);

/** One manifest entry. */
struct CorpusEntry
{
    std::string name;         //!< workload name ("corpus:<name>" spec)
    std::string file;         //!< path as written in the manifest
    std::string path;         //!< resolved path (relative to the dir)
    TraceFormat format = TraceFormat::Text;
    std::uint64_t instructions = 0; //!< recorded instruction count
    MpkiClass mpki = MpkiClass::Low;
    /** Single-core reference (alone) IPC; <= 0 means "not measured". */
    double aloneIpc = 0.0;

    bool hasAloneIpc() const { return aloneIpc > 0.0; }
    std::string spec() const { return "corpus:" + name; }
};

/** An immutable, loaded trace corpus. */
class Corpus
{
  public:
    /**
     * Load the manifest of @p dir (`manifest.tsv`, else
     * `manifest.json`). Fatal on a missing/malformed manifest, on
     * duplicate names, and on entries whose trace file does not exist.
     */
    static Corpus load(const std::string &dir);

    /** Build from in-memory entries (tools/tests). Same validation. */
    Corpus(std::string dir, std::vector<CorpusEntry> entries);

    const std::string &dir() const { return dir_; }
    const std::vector<CorpusEntry> &entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }

    /** Entry by name, or nullptr. */
    const CorpusEntry *find(const std::string &name) const;

    /** Entry by name; fatal with the available names on a miss. */
    const CorpusEntry &at(const std::string &name) const;

    // ----- the process-wide active corpus -------------------------------

    /**
     * The corpus "corpus:" specs and alone-IPC priors resolve against.
     * On first use, loads from $HIRA_CORPUS when set; nullptr when no
     * corpus is configured. Thread-safe.
     */
    static std::shared_ptr<const Corpus> active();

    /**
     * active(), but fatal (naming @p what) when none is configured.
     * Returns the shared_ptr so the corpus outlives the caller's use
     * even if setActive replaces it concurrently.
     */
    static std::shared_ptr<const Corpus> activeOrFatal(const char *what);

    /** Install @p corpus as the active one (nullptr to clear). */
    static void setActive(std::shared_ptr<const Corpus> corpus);

  private:
    std::string dir_;
    std::vector<CorpusEntry> entries_;
    std::map<std::string, std::size_t> byName;
};

/**
 * Write @p entries as a manifest into @p dir: `manifest.tsv`, plus
 * `manifest.json` when @p also_json is set. Alone-IPC priors are
 * printed with %.17g so they round-trip exactly (prior-carrying sweeps
 * reproduce measured-alone sweeps bitwise). A non-empty @p comment is
 * recorded in both flavors (hira_tracegen uses it to note the knobs
 * the priors were measured at — informational, not parsed back).
 */
void writeManifest(const std::string &dir,
                   const std::vector<CorpusEntry> &entries,
                   bool also_json = true,
                   const std::string &comment = std::string());

/**
 * Build @p count intensity-binned mixes of @p cores "corpus:" specs,
 * cycling through the paper-style categories — all-High, all-Medium,
 * all-Low, and fully mixed — restricted to the bins the corpus
 * actually populates. Deterministic in @p seed.
 */
std::vector<WorkloadMix> makeCorpusMixes(int count, int cores,
                                         const Corpus &corpus,
                                         std::uint64_t seed = 0xc0b05);

/**
 * Alone-IPC prior of workload spec @p spec, if it is a plain
 * "corpus:<name>" spec whose active-corpus entry carries one. Returns
 * false (and leaves @p out untouched) for non-corpus specs,
 * option-carrying specs ("?once" changes the replay the prior was
 * measured with), absent priors, or when no corpus is active. Used by
 * SweepRunner to skip IPC-alone warmup runs.
 */
bool corpusAloneIpcPrior(const std::string &spec, double &out);

} // namespace hira

#endif // HIRA_WORKLOAD_CORPUS_HH
