/**
 * @file
 * The polymorphic instruction-trace source interface.
 *
 * A TraceSource yields one TraceInst per call, forever. Implementations
 * are the synthetic TraceGen (src/sim/trace.hh), the on-disk
 * FileTraceSource, and the pass-through TraceRecorder
 * (src/workload/file_trace.hh). Cores pull from the interface and never
 * care where the stream comes from.
 */

#ifndef HIRA_WORKLOAD_TRACE_SOURCE_HH
#define HIRA_WORKLOAD_TRACE_SOURCE_HH

#include "common/types.hh"

namespace hira {

/** One trace instruction. */
struct TraceInst
{
    bool isMem = false;
    bool isWrite = false;
    Addr addr = 0; //!< line-aligned, within the source's address region
};

/** Abstract source of an instruction stream for one core. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction. Infinite: finite sources that have
     * run out (see exhausted()) keep returning non-memory instructions.
     */
    virtual TraceInst next() = 0;

    /**
     * Start of the address region memory accesses are mapped into.
     * TraceRecorder subtracts this when writing, so trace files store
     * region-relative addresses and replay into any core's slice.
     */
    virtual Addr regionBase() const { return 0; }

    /**
     * True once a finite, non-looping source has run dry (its next()
     * now only returns non-memory instructions). Unbounded sources
     * always return false.
     */
    virtual bool exhausted() const { return false; }
};

} // namespace hira

#endif // HIRA_WORKLOAD_TRACE_SOURCE_HH
