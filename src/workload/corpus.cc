#include "workload/corpus.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include <sys/stat.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace hira {

namespace {

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

/**
 * Reject @p value if it cannot round-trip through the manifest
 * formats: whitespace/'#' break the TSV columns, '"' and '\\' are
 * written unescaped into JSON, and control characters break both.
 */
void
checkManifestToken(const std::string &what, const std::string &value,
                   const std::string &context)
{
    for (char c : value) {
        if (std::isspace(static_cast<unsigned char>(c)) ||
            static_cast<unsigned char>(c) < 0x20 || c == '#' ||
            c == '"' || c == '\\') {
            fatal("%s: %s '%s' contains '%c', which cannot round-trip "
                  "through a corpus manifest",
                  context.c_str(), what.c_str(), value.c_str(),
                  std::isspace(static_cast<unsigned char>(c)) ? ' ' : c);
        }
    }
}

std::string
joinPath(const std::string &dir, const std::string &file)
{
    if (!file.empty() && file[0] == '/')
        return file;
    return dir + "/" + file;
}

TraceFormat
formatFromString(const std::string &s, const std::string &where)
{
    if (s == "text")
        return TraceFormat::Text;
    if (s == "binary")
        return TraceFormat::Binary;
    fatal("%s: unknown trace format '%s' (expected 'text' or 'binary')",
          where.c_str(), s.c_str());
}

const char *
formatToString(TraceFormat f)
{
    return f == TraceFormat::Binary ? "binary" : "text";
}

MpkiClass
classFromLetter(const std::string &s, const std::string &where)
{
    if (s == "H" || s == "h")
        return MpkiClass::High;
    if (s == "M" || s == "m")
        return MpkiClass::Medium;
    if (s == "L" || s == "l")
        return MpkiClass::Low;
    fatal("%s: unknown intensity class '%s' (expected H, M, or L)",
          where.c_str(), s.c_str());
}

// ---------------------------------------------------------------------
// Manifest readers
// ---------------------------------------------------------------------

std::vector<CorpusEntry>
parseTsvManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open corpus manifest '%s'", path.c_str());
    std::vector<CorpusEntry> entries;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::istringstream fields(line);
        std::string name;
        if (!(fields >> name) || name[0] == '#')
            continue; // blank or comment
        std::string where = strprintf("%s:%zu", path.c_str(), lineno);
        CorpusEntry e;
        e.name = name;
        std::string format, instructions, cls, alone;
        if (!(fields >> e.file >> format >> instructions >> cls >> alone)) {
            fatal("%s: expected 6 columns "
                  "(name file format instructions class alone-ipc)",
                  where.c_str());
        }
        std::string extra;
        if (fields >> extra) {
            fatal("%s: trailing garbage '%s'", where.c_str(),
                  extra.c_str());
        }
        e.format = formatFromString(format, where);
        char *end = nullptr;
        errno = 0;
        e.instructions = std::strtoull(instructions.c_str(), &end, 10);
        // The isdigit guard also rejects negatives, which strtoull
        // would otherwise silently wrap to huge values.
        if (!std::isdigit(static_cast<unsigned char>(instructions[0])) ||
            end == instructions.c_str() || *end != '\0' ||
            errno == ERANGE) {
            fatal("%s: bad instruction count '%s'", where.c_str(),
                  instructions.c_str());
        }
        e.mpki = classFromLetter(cls, where);
        if (alone != "-") {
            errno = 0;
            e.aloneIpc = std::strtod(alone.c_str(), &end);
            if (end == alone.c_str() || *end != '\0' || errno == ERANGE ||
                !std::isfinite(e.aloneIpc) || e.aloneIpc <= 0.0) {
                fatal("%s: bad alone-IPC '%s' (expected a positive "
                      "number or '-')",
                      where.c_str(), alone.c_str());
            }
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

std::vector<CorpusEntry>
parseJsonManifest(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open corpus manifest '%s'", path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    JsonValue root = parseJson(text, path);
    if (root.kind != JsonValue::Kind::Object)
        fatal("%s: manifest root must be a JSON object", path.c_str());
    const JsonValue *traces = root.get("traces");
    if (traces == nullptr || traces->kind != JsonValue::Kind::Array)
        fatal("%s: manifest needs a \"traces\" array", path.c_str());

    std::vector<CorpusEntry> entries;
    for (std::size_t i = 0; i < traces->array.size(); ++i) {
        const JsonValue &t = traces->array[i];
        std::string where = strprintf("%s: traces[%zu]", path.c_str(), i);
        if (t.kind != JsonValue::Kind::Object)
            fatal("%s: must be an object", where.c_str());
        CorpusEntry e;
        auto str = [&](const char *key, bool required) -> std::string {
            const JsonValue *v = t.get(key);
            if (v == nullptr || v->kind == JsonValue::Kind::Null) {
                if (required) {
                    fatal("%s: missing \"%s\"", where.c_str(), key);
                }
                return std::string();
            }
            if (v->kind != JsonValue::Kind::String)
                fatal("%s: \"%s\" must be a string", where.c_str(), key);
            return v->string;
        };
        e.name = str("name", true);
        e.file = str("file", true);
        std::string format = str("format", false);
        e.format = format.empty() ? TraceFormat::Text
                                  : formatFromString(format, where);
        if (const JsonValue *v = t.get("instructions")) {
            // The range check (and rejecting NaN, which fails every
            // comparison) keeps the double -> uint64 cast defined;
            // 2^53 is where doubles stop holding exact counts anyway.
            if (v->kind != JsonValue::Kind::Number ||
                !(v->number >= 0.0) || v->number > 0x1.0p53) {
                fatal("%s: \"instructions\" must be a number in "
                      "[0, 2^53]",
                      where.c_str());
            }
            e.instructions = static_cast<std::uint64_t>(v->number);
        }
        e.mpki = classFromLetter(str("class", true), where);
        if (const JsonValue *v = t.get("alone_ipc")) {
            if (v->kind == JsonValue::Kind::Null) {
                // explicit "not measured"
            } else if (v->kind != JsonValue::Kind::Number ||
                       !std::isfinite(v->number) || v->number <= 0.0) {
                fatal("%s: \"alone_ipc\" must be a positive finite "
                      "number or null",
                      where.c_str());
            } else {
                e.aloneIpc = v->number;
            }
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

// ---------------------------------------------------------------------
// Active-corpus state
// ---------------------------------------------------------------------

std::mutex &
activeMutex()
{
    static std::mutex m;
    return m;
}

struct ActiveCorpus
{
    std::shared_ptr<const Corpus> corpus;
    bool envChecked = false;
};

ActiveCorpus &
activeState()
{
    static ActiveCorpus s;
    return s;
}

} // namespace

char
mpkiClassLetter(MpkiClass cls)
{
    switch (cls) {
      case MpkiClass::Low: return 'L';
      case MpkiClass::Medium: return 'M';
      case MpkiClass::High: return 'H';
    }
    panic("unreachable intensity class");
}

MpkiClass
classifyApki(double apki)
{
    if (apki >= 200.0)
        return MpkiClass::High;
    if (apki >= 80.0)
        return MpkiClass::Medium;
    return MpkiClass::Low;
}

Corpus::Corpus(std::string dir, std::vector<CorpusEntry> entries)
    : dir_(std::move(dir)), entries_(std::move(entries))
{
    if (entries_.empty())
        fatal("corpus '%s' has no traces", dir_.c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        CorpusEntry &e = entries_[i];
        if (e.name.empty() || e.name.find('?') != std::string::npos ||
            e.name.find(':') != std::string::npos) {
            fatal("corpus '%s': invalid trace name '%s' ('?' and ':' "
                  "are spec syntax)",
                  dir_.c_str(), e.name.c_str());
        }
        std::string context = "corpus '" + dir_ + "'";
        checkManifestToken("trace name", e.name, context);
        if (e.file.empty())
            fatal("corpus '%s': entry '%s' has no file", dir_.c_str(),
                  e.name.c_str());
        checkManifestToken("file path", e.file, context);
        e.path = joinPath(dir_, e.file);
        if (!fileExists(e.path)) {
            fatal("corpus '%s': trace file '%s' (entry '%s') does not "
                  "exist",
                  dir_.c_str(), e.path.c_str(), e.name.c_str());
        }
        if (!byName.emplace(e.name, i).second) {
            fatal("corpus '%s': duplicate trace name '%s'", dir_.c_str(),
                  e.name.c_str());
        }
    }
}

Corpus
Corpus::load(const std::string &dir)
{
    std::string tsv = dir + "/manifest.tsv";
    std::string json = dir + "/manifest.json";
    if (fileExists(tsv))
        return Corpus(dir, parseTsvManifest(tsv));
    if (fileExists(json))
        return Corpus(dir, parseJsonManifest(json));
    fatal("corpus directory '%s' has neither manifest.tsv nor "
          "manifest.json",
          dir.c_str());
}

const CorpusEntry *
Corpus::find(const std::string &name) const
{
    auto it = byName.find(name);
    return it == byName.end() ? nullptr : &entries_[it->second];
}

const CorpusEntry &
Corpus::at(const std::string &name) const
{
    const CorpusEntry *e = find(name);
    if (e == nullptr) {
        std::string names;
        for (const CorpusEntry &cur : entries_)
            names += (names.empty() ? "" : ", ") + cur.name;
        fatal("corpus '%s' has no trace '%s'; it has: %s", dir_.c_str(),
              name.c_str(), names.c_str());
    }
    return *e;
}

std::shared_ptr<const Corpus>
Corpus::active()
{
    std::lock_guard<std::mutex> lock(activeMutex());
    ActiveCorpus &s = activeState();
    if (s.corpus == nullptr && !s.envChecked) {
        s.envChecked = true;
        const char *dir = std::getenv("HIRA_CORPUS");
        if (dir != nullptr && *dir != '\0')
            s.corpus = std::make_shared<const Corpus>(Corpus::load(dir));
    }
    return s.corpus;
}

std::shared_ptr<const Corpus>
Corpus::activeOrFatal(const char *what)
{
    std::shared_ptr<const Corpus> c = active();
    if (c == nullptr) {
        fatal("%s needs an active trace corpus: set HIRA_CORPUS=<dir> "
              "(a directory with manifest.tsv or manifest.json, see "
              "BUILDING.md) or install one via Corpus::setActive",
              what);
    }
    return c;
}

void
Corpus::setActive(std::shared_ptr<const Corpus> corpus)
{
    std::lock_guard<std::mutex> lock(activeMutex());
    ActiveCorpus &s = activeState();
    s.corpus = std::move(corpus);
    // A later clear falls back to HIRA_CORPUS again.
    s.envChecked = s.corpus != nullptr;
}

void
writeManifest(const std::string &dir,
              const std::vector<CorpusEntry> &entries, bool also_json,
              const std::string &comment)
{
    std::string tsv = dir + "/manifest.tsv";
    // Entries usually come through a validated Corpus, but tools and
    // tests may hand-build them: reject fields that would produce a
    // manifest the readers mis-parse — before truncating any existing
    // manifest file.
    for (const CorpusEntry &e : entries) {
        std::string context = "writing manifest '" + tsv + "'";
        checkManifestToken("trace name", e.name, context);
        checkManifestToken("file path", e.file, context);
        // A non-finite prior would print as a bare 'inf'/'nan' token
        // that the readers (and any JSON consumer) reject.
        if (e.hasAloneIpc() && !std::isfinite(e.aloneIpc)) {
            fatal("%s: entry '%s' has non-finite alone-IPC %g",
                  context.c_str(), e.name.c_str(), e.aloneIpc);
        }
    }
    std::ofstream out(tsv);
    if (!out)
        fatal("cannot write corpus manifest '%s'", tsv.c_str());
    out << "# hira corpus manifest v1\n"
        << "# name file format instructions class alone-ipc\n";
    if (!comment.empty())
        out << "# " << comment << '\n';
    for (const CorpusEntry &e : entries) {
        out << e.name << '\t' << e.file << '\t' << formatToString(e.format)
            << '\t' << e.instructions << '\t' << mpkiClassLetter(e.mpki)
            << '\t'
            << (e.hasAloneIpc() ? strprintf("%.17g", e.aloneIpc)
                                : std::string("-"))
            << '\n';
    }
    out.flush();
    if (!out)
        fatal("write error on corpus manifest '%s'", tsv.c_str());

    if (!also_json)
        return;
    std::string json = dir + "/manifest.json";
    std::ofstream jout(json);
    if (!jout)
        fatal("cannot write corpus manifest '%s'", json.c_str());
    jout << "{\n  \"version\": 1,\n";
    if (!comment.empty()) {
        // The reader ignores unknown keys; this is for humans.
        std::string escaped;
        for (char c : comment) {
            if (c == '"' || c == '\\')
                escaped.push_back('\\');
            escaped.push_back(c);
        }
        jout << "  \"note\": \"" << escaped << "\",\n";
    }
    jout << "  \"traces\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const CorpusEntry &e = entries[i];
        jout << strprintf(
            "    {\"name\": \"%s\", \"file\": \"%s\", \"format\": "
            "\"%s\", \"instructions\": %llu, \"class\": \"%c\", "
            "\"alone_ipc\": ",
            e.name.c_str(), e.file.c_str(), formatToString(e.format),
            static_cast<unsigned long long>(e.instructions),
            mpkiClassLetter(e.mpki));
        jout << (e.hasAloneIpc() ? strprintf("%.17g", e.aloneIpc)
                                 : std::string("null"));
        jout << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    jout << "  ]\n}\n";
    jout.flush();
    if (!jout)
        fatal("write error on corpus manifest '%s'", json.c_str());
}

std::vector<WorkloadMix>
makeCorpusMixes(int count, int cores, const Corpus &corpus,
                std::uint64_t seed)
{
    // Bins in category order: High, Medium, Low, then the whole corpus
    // as the "mixed" category. Empty bins drop out, so a single-class
    // corpus still yields valid mixes.
    std::vector<std::vector<const CorpusEntry *>> bins(4);
    for (const CorpusEntry &e : corpus.entries()) {
        switch (e.mpki) {
          case MpkiClass::High: bins[0].push_back(&e); break;
          case MpkiClass::Medium: bins[1].push_back(&e); break;
          case MpkiClass::Low: bins[2].push_back(&e); break;
        }
        bins[3].push_back(&e);
    }
    std::vector<const std::vector<const CorpusEntry *> *> categories;
    for (const auto &bin : bins) {
        if (!bin.empty())
            categories.push_back(&bin);
    }
    hira_assert(!categories.empty());

    Rng rng(seed);
    std::vector<WorkloadMix> mixes;
    mixes.reserve(static_cast<std::size_t>(count));
    for (int m = 0; m < count; ++m) {
        const auto &bin =
            *categories[static_cast<std::size_t>(m) % categories.size()];
        WorkloadMix mix;
        mix.reserve(static_cast<std::size_t>(cores));
        for (int c = 0; c < cores; ++c)
            mix.push_back(bin[rng.below(bin.size())]->spec());
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

bool
corpusAloneIpcPrior(const std::string &spec, double &out)
{
    const char kPrefix[] = "corpus:";
    if (spec.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0)
        return false;
    std::shared_ptr<const Corpus> corpus = Corpus::active();
    if (corpus == nullptr)
        return false;
    std::string name = spec.substr(sizeof(kPrefix) - 1);
    // No prior for option-carrying specs: "?once" runs the trace dry
    // instead of looping, so the looping-replay prior is NOT the IPC
    // the measured fallback would produce for this spec — substituting
    // it would silently change the weighted-speedup denominator.
    if (name.find('?') != std::string::npos)
        return false;
    const CorpusEntry *e = corpus->find(name);
    if (e == nullptr || !e->hasAloneIpc())
        return false;
    out = e->aloneIpc;
    return true;
}

} // namespace hira
