#include "workload/file_trace.hh"

#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/logging.hh"

namespace hira {

namespace {

constexpr char kMagic[8] = {'H', 'I', 'R', 'A', 'T', 'R', 'C', '1'};
constexpr std::size_t kMagicSize = sizeof(kMagic);
constexpr std::size_t kBinaryRecordSize = 4 + 1 + 8; //!< nonmem, kind, addr
constexpr std::size_t kReadChunk = 256 * 1024;

enum RecordKind
{
    kRead = 0,
    kWrite = 1,
    kNoAccess = 2,
};

void
putLe(std::string &out, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t
getLe(const unsigned char *p, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// FileTraceSource
// ---------------------------------------------------------------------

FileTraceSource::FileTraceSource(const std::string &path, Addr base_addr,
                                 Addr slice_bytes, FileTraceOptions options)
    : filePath(path), base(base_addr), sliceLines(slice_bytes / 64),
      opts(options)
{
    hira_assert(slice_bytes >= 64);
    file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        fatal("cannot open trace file '%s': %s", path.c_str(),
              std::strerror(errno));
    }
    // Sniff the format: a binary trace starts with the 8-byte magic.
    char head[kMagicSize];
    std::size_t got = std::fread(head, 1, kMagicSize, file);
    isBinary = got == kMagicSize &&
               std::memcmp(head, kMagic, kMagicSize) == 0;
    rewindPayload();
}

FileTraceSource::~FileTraceSource()
{
    if (file != nullptr)
        std::fclose(file);
}

void
FileTraceSource::parseError(const std::string &what) const
{
    if (isBinary) {
        fatal("%s: corrupt binary trace at byte offset %llu: %s",
              filePath.c_str(),
              static_cast<unsigned long long>(byteOffset), what.c_str());
    }
    fatal("%s:%zu: %s", filePath.c_str(), lineNo, what.c_str());
}

void
FileTraceSource::rewindPayload()
{
    long start = isBinary ? static_cast<long>(kMagicSize) : 0L;
    if (std::fseek(file, start, SEEK_SET) != 0)
        fatal("cannot seek in trace file '%s'", filePath.c_str());
    buffer.clear();
    bufPos = 0;
    lineNo = 0;
    byteOffset = static_cast<std::uint64_t>(start);
    recordsThisPass = 0;
}

bool
FileTraceSource::fillBuffer()
{
    if (bufPos < buffer.size())
        return true;
    buffer.resize(kReadChunk);
    std::size_t got = std::fread(&buffer[0], 1, kReadChunk, file);
    buffer.resize(got);
    bufPos = 0;
    return got > 0;
}

bool
FileTraceSource::readByte(int &out)
{
    if (!fillBuffer())
        return false;
    out = static_cast<unsigned char>(buffer[bufPos++]);
    ++byteOffset;
    return true;
}

bool
FileTraceSource::readLine(std::string &out)
{
    out.clear();
    bool any = false;
    int c;
    while (readByte(c)) {
        any = true;
        if (c == '\n')
            break;
        out.push_back(static_cast<char>(c));
    }
    if (!any)
        return false;
    if (!out.empty() && out.back() == '\r')
        out.pop_back();
    ++lineNo;
    return true;
}

bool
FileTraceSource::readTextRecord(Record &rec)
{
    std::string line;
    for (;;) {
        if (!readLine(line))
            return false; // EOF
        const char *p = line.c_str();
        while (std::isspace(static_cast<unsigned char>(*p)))
            ++p;
        if (*p == '\0' || *p == '#')
            continue; // blank or comment

        // <nonmem-count>
        if (!std::isdigit(static_cast<unsigned char>(*p)))
            parseError("expected decimal non-memory count, got '" + line +
                       "'");
        char *end = nullptr;
        errno = 0;
        rec.nonMem = std::strtoull(p, &end, 10);
        if (errno == ERANGE)
            parseError("non-memory count out of range");
        p = end;
        if (!std::isspace(static_cast<unsigned char>(*p)))
            parseError("expected whitespace after non-memory count");
        while (std::isspace(static_cast<unsigned char>(*p)))
            ++p;

        // R|W|N
        switch (*p) {
          case 'R': rec.kind = kRead; break;
          case 'W': rec.kind = kWrite; break;
          case 'N': rec.kind = kNoAccess; break;
          default:
            parseError(std::string("expected access kind R, W, or N, "
                                   "got '") +
                       (*p != '\0' ? std::string(1, *p)
                                   : std::string("end of line")) +
                       "'");
        }
        ++p;
        if (!std::isspace(static_cast<unsigned char>(*p)))
            parseError("expected whitespace after access kind");
        while (std::isspace(static_cast<unsigned char>(*p)))
            ++p;

        // <hex-addr>, with or without 0x.
        if (!std::isxdigit(static_cast<unsigned char>(*p)) &&
            !(p[0] == '0' && (p[1] == 'x' || p[1] == 'X'))) {
            parseError("expected hexadecimal address");
        }
        errno = 0;
        rec.addr = std::strtoull(p, &end, 16);
        if (end == p)
            parseError("expected hexadecimal address");
        if (errno == ERANGE)
            parseError("address out of range");
        p = end;
        while (std::isspace(static_cast<unsigned char>(*p)))
            ++p;
        if (*p != '\0')
            parseError(std::string("trailing garbage '") + p + "'");
        if (rec.kind == kNoAccess && rec.addr != 0)
            parseError("kind N must carry address 0");
        return true;
    }
}

bool
FileTraceSource::readBinaryRecord(Record &rec)
{
    unsigned char raw[kBinaryRecordSize];
    std::size_t got = 0;
    int c;
    while (got < kBinaryRecordSize && readByte(c))
        raw[got++] = static_cast<unsigned char>(c);
    if (got == 0)
        return false; // clean EOF at a record boundary
    if (got < kBinaryRecordSize) {
        parseError(strprintf("truncated record (%zu of %zu bytes)", got,
                             kBinaryRecordSize));
    }
    rec.nonMem = getLe(raw, 4);
    rec.kind = raw[4];
    rec.addr = getLe(raw + 5, 8);
    if (rec.kind > kNoAccess)
        parseError(strprintf("invalid access kind %d", rec.kind));
    if (rec.kind == kNoAccess && rec.addr != 0)
        parseError("kind N must carry address 0");
    return true;
}

bool
FileTraceSource::readRecord(Record &rec)
{
    if (isBinary ? readBinaryRecord(rec) : readTextRecord(rec)) {
        ++nRecords;
        ++recordsThisPass;
        return true;
    }
    return false;
}

Addr
FileTraceSource::mapToSlice(Addr file_addr) const
{
    return base + ((file_addr / 64) % sliceLines) * 64;
}

TraceInst
FileTraceSource::next()
{
    int rewinds = 0;
    for (;;) {
        if (pendingNonMem > 0) {
            --pendingNonMem;
            return TraceInst{};
        }
        if (haveAccess) {
            haveAccess = false;
            return access;
        }
        if (doneForever)
            return TraceInst{};

        Record rec;
        if (readRecord(rec)) {
            pendingNonMem = rec.nonMem;
            if (rec.kind != kNoAccess) {
                access.isMem = true;
                access.isWrite = rec.kind == kWrite;
                access.addr = mapToSlice(rec.addr);
                haveAccess = true;
            }
            continue;
        }
        // EOF.
        if (recordsThisPass == 0 && nRecords == 0)
            parseError("trace contains no records");
        if (!opts.loop) {
            doneForever = true;
            continue;
        }
        // Two rewinds within one next() call means a full pass produced
        // no instruction (e.g., a file of "0 N 0" records): bail rather
        // than spin forever.
        if (++rewinds >= 2)
            parseError("trace yields no instructions");
        rewindPayload();
    }
}

// ---------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------

TraceRecorder::TraceRecorder(std::unique_ptr<TraceSource> inner,
                             const std::string &path, TraceFormat format)
    : owned(std::move(inner)), src(owned.get()), filePath(path), fmt(format)
{
    hira_assert(src != nullptr);
    open(path);
}

TraceRecorder::TraceRecorder(TraceSource &inner, const std::string &path,
                             TraceFormat format)
    : src(&inner), filePath(path), fmt(format)
{
    open(path);
}

void
TraceRecorder::open(const std::string &path)
{
    file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        fatal("cannot create trace file '%s': %s", path.c_str(),
              std::strerror(errno));
    }
    // Buffer writes in 1 MB chunks: one record is tiny.
    std::setvbuf(file, nullptr, _IOFBF, 1 << 20);
    if (fmt == TraceFormat::Binary)
        std::fwrite(kMagic, 1, kMagicSize, file);
}

TraceRecorder::~TraceRecorder()
{
    flush();
    std::fclose(file);
}

void
TraceRecorder::writeRecord(std::uint64_t nonmem, int kind, Addr rel_addr)
{
    if (fmt == TraceFormat::Text) {
        std::fprintf(file, "%llu %c %llx\n",
                     static_cast<unsigned long long>(nonmem),
                     kind == kRead ? 'R' : (kind == kWrite ? 'W' : 'N'),
                     static_cast<unsigned long long>(rel_addr));
    } else {
        std::string rec;
        rec.reserve(kBinaryRecordSize);
        putLe(rec, nonmem, 4);
        rec.push_back(static_cast<char>(kind));
        putLe(rec, rel_addr, 8);
        std::fwrite(rec.data(), 1, rec.size(), file);
    }
    if (std::ferror(file))
        fatal("write error on trace file '%s'", filePath.c_str());
}

TraceInst
TraceRecorder::next()
{
    TraceInst inst = src->next();
    ++nInsts;
    if (!inst.isMem) {
        ++pendingNonMem;
        // The binary record's non-memory count is 32-bit; split absurdly
        // long compute runs across N records.
        if (pendingNonMem == 0xffffffffULL) {
            writeRecord(pendingNonMem, kNoAccess, 0);
            pendingNonMem = 0;
        }
        return inst;
    }
    Addr rb = src->regionBase();
    hira_assert(inst.addr >= rb);
    writeRecord(pendingNonMem, inst.isWrite ? kWrite : kRead,
                inst.addr - rb);
    pendingNonMem = 0;
    return inst;
}

void
TraceRecorder::flush()
{
    if (pendingNonMem > 0) {
        writeRecord(pendingNonMem, kNoAccess, 0);
        pendingNonMem = 0;
    }
    // A failed flush (e.g., ENOSPC) would silently truncate the file and
    // surface later as a baffling parse error on replay; die here instead.
    if (std::fflush(file) != 0 || std::ferror(file)) {
        fatal("write error flushing trace file '%s': %s", filePath.c_str(),
              std::strerror(errno));
    }
}

void
dumpTrace(TraceSource &src, const std::string &path, TraceFormat format,
          std::uint64_t count)
{
    TraceRecorder rec(src, path, format);
    for (std::uint64_t i = 0; i < count; ++i)
        rec.next();
}

} // namespace hira
