#include "workload/registry.hh"

#include "common/logging.hh"
#include "sim/workloads.hh"
#include "workload/corpus.hh"
#include "workload/file_trace.hh"

namespace hira {

namespace {

/**
 * Strip a trailing "?loop" / "?once" option from @p arg (the spec with
 * the scheme prefix removed) into @p opts; fatal on unknown options.
 */
std::string
stripLoopOption(const std::string &arg, const char *scheme,
                FileTraceOptions &opts)
{
    std::string rest = arg;
    std::size_t q = rest.rfind('?');
    if (q != std::string::npos) {
        std::string opt = rest.substr(q + 1);
        rest.erase(q);
        if (opt == "once")
            opts.loop = false;
        else if (opt == "loop")
            opts.loop = true;
        else {
            fatal("unknown trace option '?%s' in '%s:%s' "
                  "(supported: ?loop, ?once)",
                  opt.c_str(), scheme, arg.c_str());
        }
    }
    return rest;
}

/** "file:<path>[?loop|?once]" -> FileTraceSource. */
std::unique_ptr<TraceSource>
makeFileSource(const std::string &arg, std::uint64_t /*seed*/, Addr base,
               Addr slice_bytes)
{
    FileTraceOptions opts;
    std::string path = stripLoopOption(arg, "file", opts);
    if (path.empty())
        fatal("empty path in workload spec 'file:%s'", arg.c_str());
    return std::make_unique<FileTraceSource>(path, base, slice_bytes, opts);
}

/**
 * "corpus:<name>[?loop|?once]" -> FileTraceSource of the named trace
 * in the active corpus (HIRA_CORPUS / Corpus::setActive).
 */
std::unique_ptr<TraceSource>
makeCorpusSource(const std::string &arg, std::uint64_t /*seed*/, Addr base,
                 Addr slice_bytes)
{
    FileTraceOptions opts;
    std::string name = stripLoopOption(arg, "corpus", opts);
    if (name.empty())
        fatal("empty trace name in workload spec 'corpus:%s'", arg.c_str());
    std::shared_ptr<const Corpus> corpus =
        Corpus::activeOrFatal(("workload spec 'corpus:" + arg + "'").c_str());
    const CorpusEntry &entry = corpus->at(name);
    return std::make_unique<FileTraceSource>(entry.path, base, slice_bytes,
                                             opts);
}

} // namespace

WorkloadRegistry::WorkloadRegistry()
{
    registerScheme("file", makeFileSource);
    registerScheme("corpus", makeCorpusSource);
}

WorkloadRegistry &
WorkloadRegistry::global()
{
    static WorkloadRegistry reg;
    return reg;
}

void
WorkloadRegistry::registerScheme(const std::string &scheme, Factory factory)
{
    factories[scheme] = std::move(factory);
}

std::vector<std::string>
WorkloadRegistry::schemes() const
{
    std::vector<std::string> out;
    for (const auto &kv : factories)
        out.push_back(kv.first);
    return out;
}

std::string
WorkloadRegistry::specSyntax()
{
    return "a synthetic pool name, 'file:<path>[?once]', or "
           "'corpus:<name>[?once]' (HIRA_CORPUS manifest)";
}

bool
WorkloadRegistry::known(const std::string &spec) const
{
    std::size_t colon = spec.find(':');
    if (colon != std::string::npos)
        return factories.count(spec.substr(0, colon)) > 0;
    for (const BenchmarkProfile &p : benchmarkPool()) {
        if (p.name == spec)
            return true;
    }
    return false;
}

std::unique_ptr<TraceSource>
WorkloadRegistry::makeSource(const std::string &spec, std::uint64_t seed,
                             Addr base, Addr slice_bytes) const
{
    std::size_t colon = spec.find(':');
    if (colon != std::string::npos) {
        std::string scheme = spec.substr(0, colon);
        auto it = factories.find(scheme);
        if (it == factories.end()) {
            fatal("unknown workload scheme '%s:' in spec '%s'; expected %s",
                  scheme.c_str(), spec.c_str(), specSyntax().c_str());
        }
        return it->second(spec.substr(colon + 1), seed, base, slice_bytes);
    }
    // Plain name: the synthetic pool (fatal with the available names on
    // a miss, see benchmarkByName).
    return std::make_unique<TraceGen>(benchmarkByName(spec), seed, base,
                                      slice_bytes);
}

} // namespace hira
