/**
 * @file
 * File-backed trace ingestion and recording.
 *
 * Two on-disk formats carry the same record stream (see BUILDING.md):
 *
 * Text (CPU2017-style, one record per line, '#' comments and blank
 * lines allowed):
 *
 *     <nonmem-count> R|W|N <hex-addr>
 *
 * meaning "<nonmem-count> non-memory instructions, then one memory
 * Read/Write at <hex-addr>". Kind N carries no access (addr must be 0)
 * and flushes a trailing run of non-memory instructions, which makes
 * record -> replay lossless.
 *
 * Binary: an 8-byte magic "HIRATRC1", then packed little-endian
 * records of { u32 nonmem-count, u8 kind (0=R 1=W 2=N), u64 addr },
 * 13 bytes each.
 *
 * Addresses in a file are region-relative: FileTraceSource maps them
 * into its core's private slice by line index modulo the slice size,
 * so a trace recorded from core i replays bitwise-identically into any
 * equally-sized slice, and absolute addresses from foreign traces are
 * confined to the slice.
 */

#ifndef HIRA_WORKLOAD_FILE_TRACE_HH
#define HIRA_WORKLOAD_FILE_TRACE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "workload/trace_source.hh"

namespace hira {

/** On-disk trace encoding. */
enum class TraceFormat
{
    Text,
    Binary,
};

/** FileTraceSource behavior switches. */
struct FileTraceOptions
{
    /**
     * Rewind and replay from the start when the file runs out (the
     * usual choice: simulations run for a fixed cycle count). When
     * false the source reports exhausted() and idles on non-memory
     * instructions instead.
     */
    bool loop = true;
};

/**
 * Streams a trace file (either format, sniffed from the magic) into a
 * core's address slice. I/O is buffered and record-at-a-time; the file
 * is never slurped. Parse errors are fatal with file:line (text) or
 * record-offset (binary) diagnostics.
 */
class FileTraceSource final : public TraceSource
{
  public:
    /**
     * @param path trace file to stream
     * @param base_addr start of the core's private address slice
     * @param slice_bytes size of the slice accesses are mapped into
     * @param opts looping behavior
     */
    FileTraceSource(const std::string &path, Addr base_addr,
                    Addr slice_bytes, FileTraceOptions opts = {});
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    TraceInst next() override;
    Addr regionBase() const override { return base; }
    bool exhausted() const override { return doneForever; }

    bool binary() const { return isBinary; }
    const std::string &path() const { return filePath; }
    /** Records consumed so far (across loops). */
    std::uint64_t recordsRead() const { return nRecords; }

  private:
    struct Record
    {
        std::uint64_t nonMem = 0;
        int kind = 0; //!< 0=R 1=W 2=N
        Addr addr = 0;
    };

    bool fillBuffer();
    bool readByte(int &out);
    bool readLine(std::string &out);
    bool readRecord(Record &rec);
    bool readTextRecord(Record &rec);
    bool readBinaryRecord(Record &rec);
    void rewindPayload();
    [[noreturn]] void parseError(const std::string &what) const;
    Addr mapToSlice(Addr file_addr) const;

    std::string filePath;
    Addr base;
    std::uint64_t sliceLines;
    FileTraceOptions opts;

    std::FILE *file = nullptr;
    std::string buffer;       //!< read-ahead chunk
    std::size_t bufPos = 0;
    bool isBinary = false;
    std::size_t lineNo = 0;       //!< text diagnostics
    std::uint64_t byteOffset = 0; //!< binary diagnostics
    std::uint64_t nRecords = 0;
    std::uint64_t recordsThisPass = 0;

    // Staged emission state: non-memory run, then the access.
    std::uint64_t pendingNonMem = 0;
    bool haveAccess = false;
    TraceInst access;
    bool doneForever = false;
};

/**
 * Pass-through TraceSource that records everything pulled through it to
 * a trace file. Wraps an owned source (System's per-core recording) or
 * a borrowed one (dumpTrace). Addresses are written relative to the
 * wrapped source's regionBase(). The trailing run of non-memory
 * instructions is flushed as an N record on destruction, so replaying
 * the file reproduces the pulled stream bitwise.
 */
class TraceRecorder final : public TraceSource
{
  public:
    TraceRecorder(std::unique_ptr<TraceSource> inner, const std::string &path,
                  TraceFormat format);
    /** Non-owning variant; @p inner must outlive the recorder. */
    TraceRecorder(TraceSource &inner, const std::string &path,
                  TraceFormat format);
    ~TraceRecorder() override;

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    TraceInst next() override;
    Addr regionBase() const override { return src->regionBase(); }
    bool exhausted() const override { return src->exhausted(); }

    /** Write the trailing non-memory run (if any) and flush the file. */
    void flush();

    std::uint64_t instructionsRecorded() const { return nInsts; }

  private:
    void open(const std::string &path);
    void writeRecord(std::uint64_t nonmem, int kind, Addr rel_addr);

    std::unique_ptr<TraceSource> owned;
    TraceSource *src;
    std::string filePath;
    TraceFormat fmt;
    std::FILE *file = nullptr;
    std::uint64_t pendingNonMem = 0;
    std::uint64_t nInsts = 0;
};

/**
 * Pull @p count instructions from @p src and record them to @p path.
 * Convenience wrapper over TraceRecorder for capturing a source outside
 * a simulation.
 */
void dumpTrace(TraceSource &src, const std::string &path, TraceFormat format,
               std::uint64_t count);

} // namespace hira

#endif // HIRA_WORKLOAD_FILE_TRACE_HH
