/**
 * @file
 * Workload registry: resolves mix-entry specs to trace sources.
 *
 * A WorkloadMix entry is either a synthetic-pool benchmark name
 * ("mcf-like") or a scheme-prefixed spec ("file:/path/to.trace"), so
 * SystemConfig::mix, makeMixes, and SweepRunner work unchanged over
 * mixed synthetic/file workloads. Supported spec forms:
 *
 *   <name>                  synthetic-pool profile (src/sim/workloads.cc)
 *   file:<path>             on-disk trace, looping when shorter than
 *                           the run (text or binary, format sniffed)
 *   file:<path>?once        same, but running dry instead of looping
 *   corpus:<name>[?once]    trace <name> of the active corpus manifest
 *                           (HIRA_CORPUS; src/workload/corpus.hh)
 *
 * New schemes (e.g., network-streamed traces) register a factory under
 * their prefix.
 */

#ifndef HIRA_WORKLOAD_REGISTRY_HH
#define HIRA_WORKLOAD_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workload/trace_source.hh"

namespace hira {

/** Resolves workload specs into per-core trace sources. */
class WorkloadRegistry
{
  public:
    /**
     * Factory for one spec scheme. @p arg is the spec with the
     * "<scheme>:" prefix stripped; @p seed / @p base / @p slice_bytes
     * describe the core the source feeds.
     */
    using Factory = std::function<std::unique_ptr<TraceSource>(
        const std::string &arg, std::uint64_t seed, Addr base,
        Addr slice_bytes)>;

    /** The process-wide registry ("file" scheme pre-registered). */
    static WorkloadRegistry &global();

    WorkloadRegistry();

    /**
     * Resolve @p spec into a source for a core with the given seed and
     * private address slice. Fatal on unknown names/schemes, listing
     * what is available.
     */
    std::unique_ptr<TraceSource> makeSource(const std::string &spec,
                                            std::uint64_t seed, Addr base,
                                            Addr slice_bytes) const;

    /**
     * True if @p spec names a pool profile or a registered scheme. No
     * side effects; scheme arguments are NOT validated (makeSource can
     * still be fatal on, e.g., a missing or malformed trace file).
     */
    bool known(const std::string &spec) const;

    /** Register a factory under a scheme prefix (overwrites). */
    void registerScheme(const std::string &scheme, Factory factory);

    /** Registered scheme prefixes, sorted. */
    std::vector<std::string> schemes() const;

    /** One-line summary of valid spec syntax (for error messages). */
    static std::string specSyntax();

  private:
    std::map<std::string, Factory> factories;
};

} // namespace hira

#endif // HIRA_WORKLOAD_REGISTRY_HH
