#include "power/energy_model.hh"

namespace hira {

EnergyModel::EnergyModel(const TimingParams &timing, const IddParams &idd)
    : tp(timing), params(idd)
{
}

namespace {

/** Charge-above-standby energy: (I - I_base) * t * V, in nJ. */
double
deltaEnergyNj(double i_ma, double i_base_ma, double t_ns, double vdd,
              int chips)
{
    // mA * ns * V = pJ; divide by 1000 for nJ; multiply by chips.
    return (i_ma - i_base_ma) * t_ns * vdd * chips / 1000.0;
}

} // namespace

double
EnergyModel::actPreEnergyNj() const
{
    return deltaEnergyNj(params.idd0, params.idd3n, tp.tRC, params.vdd,
                         params.chipsPerRank);
}

double
EnergyModel::readEnergyNj() const
{
    return deltaEnergyNj(params.idd4r, params.idd3n, tp.tBL, params.vdd,
                         params.chipsPerRank);
}

double
EnergyModel::writeEnergyNj() const
{
    return deltaEnergyNj(params.idd4w, params.idd3n, tp.tBL, params.vdd,
                         params.chipsPerRank);
}

double
EnergyModel::refEnergyNj() const
{
    return deltaEnergyNj(params.idd5b, params.idd2n, tp.tRFC, params.vdd,
                         params.chipsPerRank);
}

double
EnergyModel::backgroundEnergyNj(int ranks, Cycle cycles) const
{
    // Conservative: active-standby current for every rank.
    double t_ns = static_cast<double>(cycles) * tp.tCK;
    return params.idd3n * t_ns * params.vdd * params.chipsPerRank *
           ranks / 1000.0;
}

EnergyBreakdown
EnergyModel::attribute(const ControllerStats &cs, const RefreshStats &rs,
                       int ranks, Cycle cycles) const
{
    EnergyBreakdown e;
    e.actPreNj = static_cast<double>(cs.acts) * actPreEnergyNj();
    e.readNj = static_cast<double>(cs.readsServed) * readEnergyNj();
    e.writeNj = static_cast<double>(cs.writesServed) * writeEnergyNj();
    e.refNj = static_cast<double>(rs.refCommands) * refEnergyNj();
    e.backgroundNj = backgroundEnergyNj(ranks, cycles);
    e.refreshNj = e.refNj + static_cast<double>(rs.rowRefreshes) *
                                actPreEnergyNj();
    return e;
}

} // namespace hira
