/**
 * @file
 * IDD-based DDR4 energy model (Micron power-calculator methodology).
 *
 * Extension beyond the paper's evaluation: Section 5.2 reasons about
 * HiRA's activation-power budget through tFAW but does not quantify
 * energy. This model attributes energy to row activations (IDD0),
 * column bursts (IDD4R/W), REF commands (IDD5B), and standby background
 * current, so the bench harnesses can compare the energy of rank-level
 * REF against HiRA's per-row refresh streams.
 */

#ifndef HIRA_POWER_ENERGY_MODEL_HH
#define HIRA_POWER_ENERGY_MODEL_HH

#include "dram/geometry.hh"
#include "dram/timing.hh"
#include "mem/controller.hh"
#include "mem/refresh.hh"

namespace hira {

/**
 * DDR4-2400 x8 current parameters (mA per chip, datasheet-typical
 * values [113]) and supply voltage.
 */
struct IddParams
{
    double vdd = 1.2;     //!< V
    double idd0 = 55.0;   //!< one ACT-PRE cycle
    double idd2n = 34.0;  //!< precharge standby
    double idd3n = 42.0;  //!< active standby
    double idd4r = 150.0; //!< read burst
    double idd4w = 145.0; //!< write burst
    double idd5b = 190.0; //!< refresh burst
    int chipsPerRank = 8; //!< x8 chips per 64-bit rank
};

/** Energy attribution for one simulation interval (nanojoules). */
struct EnergyBreakdown
{
    double actPreNj = 0.0;     //!< demand + refresh row activations
    double readNj = 0.0;
    double writeNj = 0.0;
    double refNj = 0.0;        //!< rank-level REF commands
    double backgroundNj = 0.0; //!< standby current over the interval

    double
    totalNj() const
    {
        return actPreNj + readNj + writeNj + refNj + backgroundNj;
    }

    /** Energy spent on refresh work only (REF + refresh activations). */
    double refreshNj = 0.0;
};

/** The energy model for one rank population. */
class EnergyModel
{
  public:
    EnergyModel(const TimingParams &tp, const IddParams &idd = {});

    /** Energy of one ACT+PRE pair on one rank (nJ). */
    double actPreEnergyNj() const;

    /** Energy of one read / write burst on one rank (nJ). */
    double readEnergyNj() const;
    double writeEnergyNj() const;

    /** Energy of one all-bank REF on one rank (nJ). */
    double refEnergyNj() const;

    /** Standby energy of @p ranks ranks over @p cycles bus cycles. */
    double backgroundEnergyNj(int ranks, Cycle cycles) const;

    /**
     * Attribute a simulation interval's energy from controller and
     * refresh statistics. Refresh row activations are the scheme's
     * rowRefreshes; demand activations are the remainder of acts.
     */
    EnergyBreakdown attribute(const ControllerStats &cs,
                              const RefreshStats &rs, int ranks,
                              Cycle cycles) const;

    const IddParams &idd() const { return params; }

  private:
    TimingParams tp;
    IddParams params;
};

} // namespace hira

#endif // HIRA_POWER_ENERGY_MODEL_HH
