/**
 * @file
 * PR-FIFO (Section 5, component 2): a small per-bank FIFO of victim
 * rows awaiting a preventive refresh, 4 entries per bank (Section 6's
 * worst-case sizing).
 */

#ifndef HIRA_CORE_PR_FIFO_HH
#define HIRA_CORE_PR_FIFO_HH

#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace hira {

/** The per-rank set of per-bank preventive-refresh FIFOs. */
class PrFifoSet
{
  public:
    PrFifoSet(int banks, std::size_t fifo_depth = 4)
        : fifos(static_cast<std::size_t>(banks)), depth(fifo_depth)
    {
    }

    bool
    full(BankId bank) const
    {
        return fifos[bank].size() >= depth;
    }

    bool
    empty(BankId bank) const
    {
        return fifos[bank].empty();
    }

    std::size_t
    size(BankId bank) const
    {
        return fifos[bank].size();
    }

    /**
     * Enqueue a victim. A full FIFO rejects the entry (the hardware has
     * exactly @p depth slots, Section 6): the victim is NOT stored,
     * false is returned, and the overflow counter advances. The caller
     * must then skip the preventive refresh it was about to schedule.
     */
    bool
    push(BankId bank, RowId victim)
    {
        if (fifos[bank].size() >= depth) {
            ++overflows_;
            return false;
        }
        fifos[bank].push_back(victim);
        return true;
    }

    RowId
    front(BankId bank) const
    {
        hira_assert(!fifos[bank].empty());
        return fifos[bank].front();
    }

    /** Second-oldest entry (refresh-refresh pairing), or kNoRow. */
    RowId
    second(BankId bank) const
    {
        return fifos[bank].size() >= 2 ? fifos[bank][1] : kNoRow;
    }

    void
    pop(BankId bank)
    {
        hira_assert(!fifos[bank].empty());
        fifos[bank].pop_front();
    }

    std::uint64_t overflows() const { return overflows_; }

  private:
    std::vector<std::deque<RowId>> fifos;
    std::size_t depth;
    std::uint64_t overflows_ = 0;
};

} // namespace hira

#endif // HIRA_CORE_PR_FIFO_HH
