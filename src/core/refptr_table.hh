/**
 * @file
 * The RefPtr Table (Section 5, component 1): one next-row-to-refresh
 * pointer per subarray per bank, plus a per-window refreshed-row count
 * so HiRA-MC can advance all subarrays in a balanced manner while
 * exploiting subarray-level parallelism (Section 5.1.3, case 1b).
 */

#ifndef HIRA_CORE_REFPTR_TABLE_HH
#define HIRA_CORE_REFPTR_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "core/spt.hh"

namespace hira {

/** A picked (subarray, row) periodic-refresh target. */
struct RefPtrPick
{
    SubarrayId subarray = kAnySubarray;
    RowId row = kNoRow;

    bool valid() const { return row != kNoRow; }
};

/** Per-rank RefPtr table. */
class RefPtrTable
{
  public:
    /**
     * @param bank_count banks per rank
     * @param subarrays subarrays per bank
     * @param rows_per_subarray rows (refresh groups) per subarray
     */
    RefPtrTable(int bank_count, std::uint32_t subarrays,
                std::uint32_t rows_per_subarray)
        : banks(bank_count), subs(subarrays), rowsPerSub(rows_per_subarray)
    {
        hira_assert(banks > 0 && subs > 0 && rowsPerSub > 0);
        ptr.assign(static_cast<std::size_t>(banks) * subs, 0);
        count.assign(static_cast<std::size_t>(banks) * subs, 0);
    }

    /**
     * Peek the next periodic-refresh row for the bank: among subarrays
     * isolated from @p pair_with (or all subarrays for kAnySubarray),
     * the one with the fewest refreshes this window. Does not advance.
     */
    RefPtrPick
    peek(BankId bank, SubarrayId pair_with,
         const SubarrayPairsTable &spt) const
    {
        RefPtrPick best;
        std::uint64_t best_count = ~std::uint64_t(0);
        for (SubarrayId s = 0; s < subs; ++s) {
            if (pair_with != kAnySubarray && !spt.isolated(s, pair_with))
                continue;
            std::uint64_t c = count[index(bank, s)];
            if (c < best_count) {
                best_count = c;
                best.subarray = s;
                best.row = s * spt.rowsPerSubarray() +
                           (ptr[index(bank, s)] % rowsPerSub);
            }
        }
        return best;
    }

    /** Commit a refresh of the picked subarray's next row. */
    void
    advance(BankId bank, SubarrayId subarray)
    {
        std::size_t i = index(bank, subarray);
        ptr[i] = (ptr[i] + 1) % rowsPerSub;
        ++count[i];
    }

    /** Start a new refresh window: clear the per-window counts. */
    void
    resetWindow()
    {
        std::fill(count.begin(), count.end(), 0);
    }

    std::uint64_t
    windowCount(BankId bank, SubarrayId s) const
    {
        return count[index(bank, s)];
    }

    std::uint32_t
    pointer(BankId bank, SubarrayId s) const
    {
        return ptr[index(bank, s)];
    }

  private:
    std::size_t
    index(BankId bank, SubarrayId s) const
    {
        hira_assert(bank < static_cast<BankId>(banks) && s < subs);
        return static_cast<std::size_t>(bank) * subs + s;
    }

    int banks;
    std::uint32_t subs;
    std::uint32_t rowsPerSub;
    std::vector<std::uint32_t> ptr;
    std::vector<std::uint64_t> count;
};

} // namespace hira

#endif // HIRA_CORE_REFPTR_TABLE_HH
