/**
 * @file
 * HiRA-MC: the HiRA Memory Controller refresh scheme (Section 5).
 *
 * Components (Fig. 7): the Periodic Refresh Controller generates one
 * per-bank row-refresh request per generation interval, staggered
 * across banks; the Preventive Refresh Controller samples every row
 * activation with a slack-adjusted PARA threshold and queues victims in
 * per-bank PR-FIFOs; the Refresh Table holds all queued requests with
 * deadlines; the Concurrent Refresh Finder pairs queued refreshes with
 * demand activations (case 1, via the controller's pickHiddenRefresh
 * hook) or with each other (case 2) and falls back to standalone
 * refreshes at the deadline.
 *
 * HiRA-N configurations set tRefSlack = N * tRC (Sections 8-9's
 * notation).
 */

#ifndef HIRA_CORE_HIRA_MC_HH
#define HIRA_CORE_HIRA_MC_HH

#include <memory>
#include <vector>

#include "core/pr_fifo.hh"
#include "core/refptr_table.hh"
#include "core/refresh_table.hh"
#include "core/spt.hh"
#include "mem/para.hh"
#include "mem/refresh.hh"

namespace hira {

/** HiRA-MC configuration. */
struct HiraMcConfig
{
    /** tRefSlack in units of tRC (HiRA-N). */
    int slackN = 2;
    /** SPT isolated-pair density (paper §7 assumption: 32 %). */
    double sptIsolation = 0.32;
    std::uint64_t seed = 0x41a4;
    /**
     * PreventiveRC sampling. The pth here must already be slack-adjusted
     * via security::solvePth (Section 9.1, step 4).
     */
    ParaConfig preventive;
    /**
     * True: periodic refresh is performed with HiRA row refreshes
     * (Section 8). False: periodic refresh stays on conventional REF
     * commands and only preventive refreshes use HiRA (Section 9.2).
     */
    bool periodicViaHira = true;
    // Ablation switches (DESIGN.md ablation index).
    bool enableAccessPairing = true;
    bool enableRefreshPairing = true;
    /**
     * When a periodic refresh must execute standalone and no second
     * request is queued for its bank (the staggered generation schedule
     * rarely queues two), pull the bank's *next* scheduled request
     * forward and pair it refresh-refresh (two rows in t1+t2+tRAS
     * instead of one in tRC). Refreshing ahead of schedule is always
     * safe; this realizes Section 5.1.3's refresh-refresh parallelism
     * for periodic refreshes. Disable for the pairing ablation.
     */
    bool enablePullAhead = true;
    /** Case-2 urgency margin in units of tRC (paper: 1). */
    int deadlineMarginRc = 1;
};

/** The HiRA-MC refresh scheme for one memory controller (channel). */
class HiraMc final : public RefreshScheme
{
  public:
    explicit HiraMc(const HiraMcConfig &cfg);

    void attach(MemoryController *ctrl) override;
    void attachMetrics(const MetricScope &scope) override;
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    RowId pickHiddenRefresh(int rank, BankId bank, RowId row_a,
                            Cycle now) override;
    void onHiraIssued(int rank, BankId bank, RowId refresh_row,
                      Cycle now) override;
    void onActivate(int rank, BankId bank, RowId row, Cycle now) override;

    // ----- inspection ---------------------------------------------------

    const RefreshTable &table(int rank) const { return tables[rank]; }
    const RefPtrTable &refPtr(int rank) const { return refptrs[rank]; }
    const PrFifoSet &prFifo(int rank) const { return fifos[rank]; }
    const SubarrayPairsTable &spt() const { return *spt_; }
    const HiraMcConfig &config() const { return cfg; }
    /** Stats of the internal baseline REF engine (periodicViaHira=false). */
    const RefreshStats *baselineStats() const;

  private:
    struct Target
    {
        RowId row = kNoRow;
        SubarrayId subarray = kAnySubarray;

        bool valid() const { return row != kNoRow; }
    };

    struct Proposal
    {
        bool valid = false;
        std::uint64_t entryId = 0;
        int rank = 0;
        BankId bank = 0;
        RefreshType type = RefreshType::Periodic;
        Target target;
    };

    void generatePeriodic(Cycle now);
    bool caseTwo(Cycle now);
    Target targetFor(const RefreshEntry &e, SubarrayId pair_with,
                     int fifo_index) const;
    void commit(const RefreshEntry &e, const Target &t, Cycle now);

    HiraMcConfig cfg;
    std::unique_ptr<BaselineRefresh> baseline;
    std::unique_ptr<SubarrayPairsTable> spt_;
    std::vector<RefreshTable> tables;   //!< per rank
    std::vector<RefPtrTable> refptrs;   //!< per rank
    std::vector<PrFifoSet> fifos;       //!< per rank
    ParaSampler sampler;

    std::vector<double> nextGen;        //!< per (rank, bank), in cycles
    // Cached min over nextGen for the event-engine horizon: every tick
    // recomputes the wake bound, but the array only changes when a
    // generation instant passes (generatePeriodic) or a pull-ahead
    // consumes one (caseTwo), so those sites invalidate and the scan
    // runs once per change instead of once per recompute.
    mutable double nextGenMin = 0.0;
    mutable bool nextGenMinValid = false;
    double genIntervalCycles = 0.0;
    Cycle slackCycles = 0;
    Cycle marginCycles = 0;
    Cycle windowCycles = 0;
    Cycle nextWindowReset = 0;
    Proposal proposal;
    int rankCursor = 0;

    // Observability (nullptr when metrics are off). mPrFifoDepth samples
    // the per-bank PR-FIFO occupancy right after each successful push;
    // mRefptrResets counts tREFW window rollovers.
    HistogramMetric *mPrFifoDepth = nullptr;
    Counter *mRefptrResets = nullptr;
};

} // namespace hira

#endif // HIRA_CORE_HIRA_MC_HH
