#include "core/hira_mc.hh"

#include <cmath>

#include "common/logging.hh"
#include "mem/controller.hh"

namespace hira {

HiraMc::HiraMc(const HiraMcConfig &config)
    : cfg(config), sampler(config.preventive)
{
    hira_assert(cfg.slackN >= 0);
    if (!cfg.periodicViaHira)
        baseline = std::make_unique<BaselineRefresh>();
}

void
HiraMc::attach(MemoryController *controller)
{
    RefreshScheme::attach(controller);
    const Geometry &geom = controller->geometry();
    const TimingCycles &tcy = controller->tc();

    spt_ = std::make_unique<SubarrayPairsTable>(geom, cfg.sptIsolation,
                                                cfg.seed);
    slackCycles = static_cast<Cycle>(cfg.slackN) * tcy.rc;
    marginCycles = static_cast<Cycle>(cfg.deadlineMarginRc) * tcy.rc;
    // tREFW = 8192 tREFI intervals (64 ms for DDR4).
    windowCycles = tcy.refi * 8192;
    nextWindowReset = windowCycles;

    std::uint32_t groups_per_sub =
        geom.refreshGroupsPerBank / geom.subarraysPerBank;
    if (groups_per_sub == 0)
        groups_per_sub = 1;

    tables.clear();
    refptrs.clear();
    fifos.clear();
    for (int r = 0; r < geom.ranksPerChannel; ++r) {
        // §6 sizing: slack-bounded periodic entries per rank plus up to
        // 4 preventive entries per bank (68 at tRefSlack = 4 tRC).
        std::size_t capacity =
            static_cast<std::size_t>(std::max(cfg.slackN, 4)) +
            4 * static_cast<std::size_t>(geom.banksPerRank());
        tables.emplace_back(capacity);
        refptrs.emplace_back(geom.banksPerRank(), geom.subarraysPerBank,
                             groups_per_sub);
        fifos.emplace_back(geom.banksPerRank());
    }

    // Periodic generation: one row-refresh request per bank every
    // tREFW / refreshGroupsPerBank, staggered across the rank's banks
    // (Section 5.1.1's 60.9 ns example).
    genIntervalCycles =
        static_cast<double>(windowCycles) /
        static_cast<double>(geom.refreshGroupsPerBank);
    int total_banks = geom.ranksPerChannel * geom.banksPerRank();
    nextGen.assign(static_cast<std::size_t>(total_banks), 0.0);
    for (int i = 0; i < total_banks; ++i) {
        nextGen[static_cast<std::size_t>(i)] =
            genIntervalCycles * static_cast<double>(i + 1) /
            static_cast<double>(total_banks);
    }
    nextGenMinValid = false;

    if (baseline != nullptr)
        baseline->attach(controller);
}

void
HiraMc::attachMetrics(const MetricScope &scope)
{
    // PR-FIFOs hold 4 entries (Section 6); one extra bin keeps the
    // full-FIFO occupancy distinguishable from near-full.
    mPrFifoDepth = scope.histogram("pr_fifo_depth", 0.0, 5.0, 5);
    mRefptrResets = scope.counter("refptr_resets");
}

const RefreshStats *
HiraMc::baselineStats() const
{
    return baseline != nullptr ? &baseline->stats() : nullptr;
}

void
HiraMc::generatePeriodic(Cycle now)
{
    const Geometry &geom = ctrl->geometry();
    int banks = geom.banksPerRank();
    for (int rank = 0; rank < geom.ranksPerChannel; ++rank) {
        for (BankId bank = 0; bank < static_cast<BankId>(banks); ++bank) {
            std::size_t idx =
                static_cast<std::size_t>(rank * banks) + bank;
            while (nextGen[idx] <= static_cast<double>(now)) {
                Cycle gen = static_cast<Cycle>(nextGen[idx]);
                tables[rank].insert(gen + slackCycles, rank, bank,
                                    RefreshType::Periodic);
                nextGen[idx] += genIntervalCycles;
                nextGenMinValid = false;
            }
        }
    }
}

HiraMc::Target
HiraMc::targetFor(const RefreshEntry &e, SubarrayId pair_with,
                  int fifo_index) const
{
    Target t;
    if (e.type == RefreshType::Periodic) {
        RefPtrPick pick = refptrs[e.rank].peek(e.bank, pair_with, *spt_);
        t.row = pick.row;
        t.subarray = pick.subarray;
        return t;
    }
    const PrFifoSet &fifo = fifos[e.rank];
    RowId row = fifo_index == 0
                    ? (fifo.empty(e.bank) ? kNoRow : fifo.front(e.bank))
                    : fifo.second(e.bank);
    if (row == kNoRow)
        return t;
    SubarrayId sub = spt_->subarrayOf(row);
    if (pair_with != kAnySubarray && !spt_->isolated(sub, pair_with))
        return t;
    t.row = row;
    t.subarray = sub;
    return t;
}

void
HiraMc::commit(const RefreshEntry &e, const Target &t, Cycle now)
{
    // A refresh is late when it completes more than the case-2 margin
    // past its deadline; sub-tRC scheduling latency (inevitable at
    // tRefSlack = 0, where the deadline equals the generation instant)
    // is not a retention hazard.
    if (now > e.deadline + marginCycles)
        ++stats_.deadlineMisses;
    if (e.type == RefreshType::Periodic) {
        refptrs[e.rank].advance(e.bank, t.subarray);
    } else {
        fifos[e.rank].pop(e.bank);
    }
    ++stats_.rowRefreshes;
    bool removed = tables[e.rank].remove(e.id);
    hira_assert(removed);
}

void
HiraMc::tick(Cycle now)
{
    if (now >= nextWindowReset) {
        for (auto &rp : refptrs)
            rp.resetWindow();
        nextWindowReset += windowCycles;
        count(mRefptrResets);
    }

    if (cfg.periodicViaHira) {
        generatePeriodic(now);
    } else {
        baseline->tick(now);
        if (!ctrl->busFree(now))
            return;
    }
    caseTwo(now);
}

Cycle
HiraMc::nextEventCycle(Cycle now) const
{
    // The refptr tREFW window reset is a state change and must execute
    // at the same tick in both engines. The scan bails at the floor:
    // no horizon can pull the wake below the next cycle.
    const Cycle floor = now + 1;
    Cycle wake = nextWindowReset;
    auto consider = [&wake, floor](Cycle c) {
        if (c < wake)
            wake = c;
        return wake <= floor;
    };

    // Queued refresh requests: not-yet-due entries sleep until their
    // case-2 urgency instant; due entries wait on their bank's timing
    // horizon. Blocked banks (refresh row open awaiting auto-PRE) are
    // unblocked by an issue, after which the controller polls densely.
    const ChannelTimingModel &model = ctrl->timing();
    for (const RefreshTable &table : tables) {
        for (const RefreshEntry &e : table.all()) {
            if (e.deadline > now + marginCycles) {
                if (consider(e.deadline - marginCycles))
                    return floor;
                continue;
            }
            if (ctrl->bankBlocked(e.rank, e.bank))
                continue;
            if (consider(model.earliestBankCommand(e.rank, e.bank)))
                return floor;
        }
    }

    if (cfg.periodicViaHira) {
        // First cycle c with min(nextGen) <= c, i.e. ceil of the next
        // generation instant (exact: instants stay far below 2^53).
        // ceil is monotone, so caching the double min is equivalent.
        if (!nextGenMinValid) {
            nextGenMin = nextGen.empty() ? 0.0 : nextGen[0];
            for (double g : nextGen) {
                if (g < nextGenMin)
                    nextGenMin = g;
            }
            nextGenMinValid = true;
        }
        if (consider(static_cast<Cycle>(std::ceil(nextGenMin))))
            return floor;
    } else if (consider(baseline->nextEventCycle(now))) {
        return floor;
    }
    return wake;
}

bool
HiraMc::caseTwo(Cycle now)
{
    const Geometry &geom = ctrl->geometry();
    int nranks = geom.ranksPerChannel;
    for (int i = 0; i < nranks; ++i) {
        int rank = (rankCursor + i) % nranks;
        // Earliest-deadline due entry whose bank is actionable. Scanning
        // past blocked banks avoids head-of-line blocking while a
        // just-refreshed bank waits for its auto-PRE.
        const RefreshEntry *e = nullptr;
        for (const RefreshEntry &cand : tables[rank].all()) {
            if (cand.rank != rank || cand.deadline > now + marginCycles)
                continue;
            if (ctrl->bankBlocked(rank, cand.bank))
                continue;
            if (e == nullptr || cand.deadline < e->deadline)
                e = &cand;
        }
        if (e == nullptr)
            continue;
        BankId bank = e->bank;

        const ChannelTimingModel &model = ctrl->timing();
        if (model.openRow(rank, bank) != kNoRow) {
            // Step 7 of Fig. 8: precharge the target bank first.
            if (ctrl->tryPre(rank, bank, now)) {
                rankCursor = rank + 1;
                return true;
            }
            continue;
        }

        // Copy the entry: commits mutate the table.
        RefreshEntry first = *e;
        Target tc_first = targetFor(first, kAnySubarray, 0);
        if (!tc_first.valid()) {
            // Desynchronized preventive entry (FIFO drained elsewhere):
            // drop it defensively.
            tables[rank].remove(first.id);
            continue;
        }

        if (cfg.enableRefreshPairing && cfg.enablePullAhead &&
            first.type == RefreshType::Periodic &&
            tables[rank].pairCandidate(first) == nullptr) {
            // No queued partner: pull the bank's next scheduled periodic
            // refresh forward and pair the two (see HiraMcConfig).
            Target ahead = targetFor(first, tc_first.subarray, 0);
            if (ahead.valid() &&
                ctrl->tryHiraRefreshPair(rank, bank, tc_first.row,
                                         ahead.row, now)) {
                commit(first, tc_first, now);
                refptrs[rank].advance(bank, ahead.subarray);
                ++stats_.rowRefreshes;
                stats_.refreshPaired += 2;
                std::size_t idx =
                    static_cast<std::size_t>(
                        rank * ctrl->geometry().banksPerRank()) +
                    bank;
                nextGen[idx] += genIntervalCycles;
                nextGenMinValid = false;
                rankCursor = rank + 1;
                return true;
            }
        }

        if (cfg.enableRefreshPairing) {
            const RefreshEntry *e2 = tables[rank].pairCandidate(first);
            if (e2 != nullptr) {
                RefreshEntry second = *e2;
                int fifo_index =
                    (first.type == RefreshType::Preventive &&
                     second.type == RefreshType::Preventive)
                        ? 1
                        : 0;
                Target tc_second =
                    targetFor(second, tc_first.subarray, fifo_index);
                if (tc_second.valid() &&
                    ctrl->tryHiraRefreshPair(rank, bank, tc_first.row,
                                             tc_second.row, now)) {
                    // Commit order matters for two preventive entries:
                    // the second target's FIFO index was relative to the
                    // un-popped queue, so commit first, then second.
                    commit(first, tc_first, now);
                    commit(second, tc_second, now);
                    stats_.refreshPaired += 2;
                    rankCursor = rank + 1;
                    return true;
                }
            }
        }

        if (ctrl->tryRefreshAct(rank, bank, tc_first.row, now)) {
            commit(first, tc_first, now);
            ++stats_.standalone;
            rankCursor = rank + 1;
            return true;
        }
    }
    return false;
}

RowId
HiraMc::pickHiddenRefresh(int rank, BankId bank, RowId row_a, Cycle now)
{
    (void)now;
    proposal.valid = false;
    if (!cfg.enableAccessPairing)
        return kNoRow;
    const RefreshEntry *e = tables[rank].earliestForBank(rank, bank);
    if (e == nullptr)
        return kNoRow;
    Target t = targetFor(*e, spt_->subarrayOf(row_a), 0);
    if (!t.valid())
        return kNoRow;
    proposal.valid = true;
    proposal.entryId = e->id;
    proposal.rank = rank;
    proposal.bank = bank;
    proposal.type = e->type;
    proposal.target = t;
    return t.row;
}

void
HiraMc::onHiraIssued(int rank, BankId bank, RowId refresh_row, Cycle now)
{
    hira_assert(proposal.valid && proposal.rank == rank &&
                proposal.bank == bank &&
                proposal.target.row == refresh_row);
    RefreshEntry e;
    e.id = proposal.entryId;
    e.rank = rank;
    e.bank = bank;
    e.type = proposal.type;
    // Recover the deadline for the miss statistic.
    for (const RefreshEntry &cur : tables[rank].all()) {
        if (cur.id == proposal.entryId) {
            e.deadline = cur.deadline;
            break;
        }
    }
    commit(e, proposal.target, now);
    ++stats_.accessPaired;
    proposal.valid = false;
}

void
HiraMc::onActivate(int rank, BankId bank, RowId row, Cycle now)
{
    if (!cfg.preventive.enabled)
        return;
    RowId victim =
        sampler.sample(row, ctrl->geometry().rowsPerBank);
    if (victim == kNoRow)
        return;
    ++stats_.preventiveGenerated;
    if (!fifos[rank].push(bank, victim)) {
        // The 4-entry per-bank PR-FIFO is full: the victim was never
        // enqueued, so scheduling a RefreshTable request for it would
        // desynchronize the two structures. Count the drop instead.
        ++stats_.preventiveDropped;
        return;
    }
    observe(mPrFifoDepth,
            static_cast<double>(fifos[rank].size(bank)));
    tables[rank].insert(now + slackCycles, rank, bank,
                        RefreshType::Preventive);
}

} // namespace hira
