/**
 * @file
 * Subarray Pairs Table (SPT, Section 5.1.4): the controller's on-chip
 * copy of which subarray pairs are electrically isolated, obtained by a
 * one-time reverse-engineering pass (our Algorithm 1 coverage
 * experiment) or from manufacturer MSRs.
 *
 * For the performance simulator the SPT is instantiated from the same
 * design-level IsolationMap the chip model uses, with the paper's §7
 * assumption as the default density: a refresh can pair with 32 % of
 * the rows in the bank.
 */

#ifndef HIRA_CORE_SPT_HH
#define HIRA_CORE_SPT_HH

#include "chip/design.hh"
#include "dram/geometry.hh"

namespace hira {

/** Sentinel for "no constraining partner subarray". */
inline constexpr SubarrayId kAnySubarray = ~SubarrayId(0);

/** The controller-side subarray isolation table. */
class SubarrayPairsTable
{
  public:
    /**
     * @param geom system geometry (subarray count, rows per bank)
     * @param isolation_mean fraction of isolated pairs (paper: 0.32)
     * @param seed design seed (must match the chip for a paired system)
     */
    SubarrayPairsTable(const Geometry &geom, double isolation_mean = 0.32,
                       std::uint64_t seed = 0x5b7a);

    SubarrayId
    subarrayOf(RowId row) const
    {
        return row / rowsPerSub;
    }

    bool
    isolated(SubarrayId a, SubarrayId b) const
    {
        if (a == kAnySubarray || b == kAnySubarray)
            return true;
        return iso.isolated(a, b);
    }

    bool
    rowsIsolated(RowId a, RowId b) const
    {
        return isolated(subarrayOf(a), subarrayOf(b));
    }

    std::uint32_t subarrays() const { return iso.subarrays(); }
    std::uint32_t rowsPerSubarray() const { return rowsPerSub; }
    const IsolationMap &map() const { return iso; }

  private:
    static ChipConfig designConfig(const Geometry &geom,
                                   double isolation_mean,
                                   std::uint64_t seed);

    IsolationMap iso;
    std::uint32_t rowsPerSub;
};

} // namespace hira

#endif // HIRA_CORE_SPT_HH
