#include "core/spt.hh"

#include "common/logging.hh"

namespace hira {

ChipConfig
SubarrayPairsTable::designConfig(const Geometry &geom,
                                 double isolation_mean, std::uint64_t seed)
{
    ChipConfig cfg;
    cfg.name = "spt-design";
    cfg.seed = seed;
    cfg.banks = static_cast<std::uint32_t>(geom.banksPerRank());
    cfg.rowsPerBank = geom.rowsPerBank;
    cfg.subarraysPerBank = geom.subarraysPerBank;
    cfg.pairIsolationMean = isolation_mean;
    cfg.pairIsolationSpread = 0.03;
    return cfg;
}

SubarrayPairsTable::SubarrayPairsTable(const Geometry &geom,
                                       double isolation_mean,
                                       std::uint64_t seed)
    : iso(designConfig(geom, isolation_mean, seed)),
      rowsPerSub(geom.rowsPerBank / geom.subarraysPerBank)
{
    hira_assert(rowsPerSub > 0);
}

} // namespace hira
