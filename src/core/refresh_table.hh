/**
 * @file
 * The Refresh Table (Section 5, component 3): queued periodic and
 * preventive refresh requests with their deadline, bank, and type.
 *
 * Sized per the paper's §6 analysis: with tRefSlack = 4 tRC a rank can
 * hold at most 4 periodic + 64 preventive requests (68 entries). The
 * table is small, so linear scans (which is also what the pipelined
 * hardware traversal of §6.2 does) are used throughout.
 */

#ifndef HIRA_CORE_REFRESH_TABLE_HH
#define HIRA_CORE_REFRESH_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hira {

/** Refresh request type (2-bit field in hardware). */
enum class RefreshType : std::uint8_t
{
    Periodic,
    Preventive,
};

/** One Refresh Table entry. */
struct RefreshEntry
{
    std::uint64_t id = 0;   //!< unique handle for commit/remove
    Cycle deadline = 0;
    int rank = 0;
    BankId bank = 0;
    RefreshType type = RefreshType::Periodic;
};

/** The per-controller refresh request table. */
class RefreshTable
{
  public:
    explicit RefreshTable(std::size_t capacity) : cap(capacity) {}

    /**
     * Insert a request. Returns false when the insert exceeds the
     * hardware capacity (the entry is still stored; the caller should
     * force-drain — a correctly provisioned configuration never hits
     * this, and the overflow counter is exposed for tests).
     */
    bool
    insert(Cycle deadline, int rank, BankId bank, RefreshType type,
           std::uint64_t *id_out = nullptr)
    {
        RefreshEntry e;
        e.id = nextId++;
        e.deadline = deadline;
        e.rank = rank;
        e.bank = bank;
        e.type = type;
        entries.push_back(e);
        if (id_out != nullptr)
            *id_out = e.id;
        if (entries.size() > cap) {
            ++overflows_;
            return false;
        }
        return true;
    }

    /** Earliest-deadline entry for one bank, or nullptr. */
    const RefreshEntry *
    earliestForBank(int rank, BankId bank) const
    {
        const RefreshEntry *best = nullptr;
        for (const RefreshEntry &e : entries) {
            if (e.rank != rank || e.bank != bank)
                continue;
            if (best == nullptr || e.deadline < best->deadline)
                best = &e;
        }
        return best;
    }

    /** Earliest-deadline entry in one rank, or nullptr. */
    const RefreshEntry *
    earliestForRank(int rank) const
    {
        const RefreshEntry *best = nullptr;
        for (const RefreshEntry &e : entries) {
            if (e.rank != rank)
                continue;
            if (best == nullptr || e.deadline < best->deadline)
                best = &e;
        }
        return best;
    }

    /**
     * A second entry in the same bank as @p first (for refresh-refresh
     * pairing), earliest deadline first; nullptr if none.
     */
    const RefreshEntry *
    pairCandidate(const RefreshEntry &first) const
    {
        const RefreshEntry *best = nullptr;
        for (const RefreshEntry &e : entries) {
            if (e.id == first.id || e.rank != first.rank ||
                e.bank != first.bank) {
                continue;
            }
            if (best == nullptr || e.deadline < best->deadline)
                best = &e;
        }
        return best;
    }

    /** Remove an entry by id; returns false if not present. */
    bool
    remove(std::uint64_t id)
    {
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].id == id) {
                entries[i] = entries.back();
                entries.pop_back();
                return true;
            }
        }
        return false;
    }

    std::size_t size() const { return entries.size(); }
    std::size_t capacity() const { return cap; }
    bool empty() const { return entries.empty(); }
    std::uint64_t overflows() const { return overflows_; }
    const std::vector<RefreshEntry> &all() const { return entries; }

  private:
    std::size_t cap;
    std::vector<RefreshEntry> entries;
    std::uint64_t nextId = 1;
    std::uint64_t overflows_ = 0;
};

} // namespace hira

#endif // HIRA_CORE_REFRESH_TABLE_HH
