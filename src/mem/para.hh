/**
 * @file
 * PARA [84]: the stateless probabilistic RowHammer defense HiRA-MC's
 * PreventiveRC builds on (Section 9).
 *
 * On every row activation, with probability pth, one of the two
 * physically adjacent rows is selected for a preventive refresh.
 * Preventive refreshes are themselves row activations and are sampled
 * too (they genuinely disturb their own neighbors); this recursion is
 * what makes PARA's overhead explode at very low RowHammer thresholds
 * (Fig. 12: 96 % at NRH = 64, where pth ~0.86).
 */

#ifndef HIRA_MEM_PARA_HH
#define HIRA_MEM_PARA_HH

#include "common/rng.hh"
#include "common/types.hh"

namespace hira {

/** PARA configuration. */
struct ParaConfig
{
    bool enabled = false;
    double pth = 0.0;          //!< preventive-refresh probability
    std::uint64_t seed = 0x9a5a;
};

/** The sampling logic, shared by immediate PARA and PreventiveRC. */
class ParaSampler
{
  public:
    explicit ParaSampler(const ParaConfig &para_cfg)
        : cfg(para_cfg), rng(hashCombine(para_cfg.seed, 0xbeef))
    {
    }

    bool enabled() const { return cfg.enabled; }
    double pth() const { return cfg.pth; }

    /**
     * Sample an activation of @p row. Returns the victim row to
     * preventively refresh, or kNoRow (the common case).
     *
     * Fig. 10: each existing neighbor is refreshed with probability
     * exactly pth/2. When the coin-flipped neighbor falls off the bank
     * edge the sample is dropped — redirecting to the opposite
     * neighbor would give edge-adjacent rows double the refresh
     * probability (and there is no row off the edge to disturb).
     */
    RowId
    sample(RowId row, std::uint32_t rows_per_bank)
    {
        if (!cfg.enabled || !rng.chance(cfg.pth))
            return kNoRow;
        bool up = rng.chance(0.5);
        if (up)
            return row + 1 < rows_per_bank ? row + 1 : kNoRow;
        return row > 0 ? row - 1 : kNoRow;
    }

    /** Count of preventive refreshes generated (stat). */
    std::uint64_t generated = 0;

  private:
    ParaConfig cfg;
    Rng rng;
};

} // namespace hira

#endif // HIRA_MEM_PARA_HH
