/**
 * @file
 * Cycle-level DDR4 memory controller for one channel.
 *
 * Models the Table 3 controller: 64-entry read and write queues,
 * FR-FCFS scheduling [143, 190] with the open-row policy, write-drain
 * watermarks, one command per channel cycle (the shared command bus all
 * ranks contend on, which drives the Fig. 14/16 rank-scaling behavior),
 * a pluggable refresh scheme (NoRefresh / BaselineRefresh / HiRA-MC),
 * and PARA in its original immediate form (preventive refresh as soon
 * as the activated row's bank is free) or delegated to the scheme's
 * PreventiveRC.
 *
 * The HiRA operation is issued atomically: the controller reserves the
 * two future command-bus slots for the inner PRE and second ACT, applies
 * the timing effects through ChannelTimingModel::issueHira, and logs all
 * three commands with HiraRole tags so TimingChecker can audit traces.
 */

#ifndef HIRA_MEM_CONTROLLER_HH
#define HIRA_MEM_CONTROLLER_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/metrics.hh"
#include "dram/timing_checker.hh"
#include "dram/timing_state.hh"
#include "mem/para.hh"
#include "mem/refresh.hh"
#include "mem/request.hh"

namespace hira {

/** Static configuration of one controller. */
struct ControllerConfig
{
    Geometry geom;
    TimingParams tp;
    int readQueueCap = 64;
    int writeQueueCap = 64;
    int drainHigh = 48;  //!< enter write-drain mode at this depth
    int drainLow = 16;   //!< leave write-drain mode at this depth
    ParaConfig para;
    /**
     * True: preventive refreshes execute immediately (original PARA).
     * False: activations are only reported to the refresh scheme, whose
     * PreventiveRC queues them with slack (HiRA-MC).
     */
    bool paraImmediate = true;
    bool recordTrace = false; //!< feed the TimingChecker trace recorder

    /**
     * Metrics scope for this controller instance (e.g. "ctrl0."); a
     * default-constructed scope disables all instrumentation. The
     * refresh scheme receives the "scheme." child scope. Metrics only
     * observe: scheduling decisions are identical with and without a
     * live scope (pinned by tests/sim/test_metrics_equivalence.cc).
     */
    MetricScope metrics;
};

/** Demand-side statistics. */
struct ControllerStats
{
    std::uint64_t readsServed = 0;
    std::uint64_t writesServed = 0;
    std::uint64_t readLatencySum = 0; //!< enqueue to data return, cycles
    std::uint64_t forwards = 0;       //!< reads served from the write queue
    std::uint64_t acts = 0;
    std::uint64_t pres = 0;
    std::uint64_t refs = 0;
    std::uint64_t hiraOps = 0;
    std::uint64_t rejectedRequests = 0; //!< enqueue failures (full queue)
};

/** One channel's memory controller. */
class MemoryController
{
  public:
    MemoryController(int channel_id, const ControllerConfig &cfg,
                     std::unique_ptr<RefreshScheme> scheme);

    // ----- demand interface -------------------------------------------

    /** Enqueue a demand request; false if the queue is full. */
    bool enqueue(const Request &req);

    /** Advance one memory-bus cycle. */
    void tick(Cycle now);

    /**
     * Event-engine wake-up: a conservative lower bound on the next
     * cycle at which tick() could do anything observable or a queued
     * completion falls due. Between the last tick and this cycle,
     * tick() is provably a no-op, so the event engine
     * (src/sim/system.cc) skips it without diverging from per-cycle
     * polling. The bound is recomputed lazily after each tick from the
     * per-bank timing-state horizons, queue occupancy, pending
     * completions, and the refresh scheme's own nextEventCycle();
     * enqueue() lowers it so newly arriving work is polled at the same
     * cycle the dense loop would have seen it. HiRA bus-slot
     * reservations need no horizon of their own: a reservation only
     * exists after an issue, and an issue always forces a poll of the
     * following cycle, after which any still-gated horizon degrades to
     * dense polling. Never later than the true next event; possibly
     * earlier (a wasted poll, never a divergence).
     */
    Cycle nextEvent() const;

    /**
     * Observer of wake-bound lowering: called with the `seen` cycle
     * whenever enqueue() accepts a request, so an external deadline
     * index (System's heap, src/sim/deadline_heap.hh) can lower this
     * controller's key without re-querying nextEvent(). Raising keys
     * stays the owner's job (after each tick), so the listener only
     * ever makes the index more conservative.
     */
    void setWakeListener(std::function<void(Cycle)> fn)
    {
        wakeListener = std::move(fn);
    }

    /**
     * Account @p n enqueue rejections in bulk. The event engine calls
     * this when it skips cycles during which the dense loop would have
     * re-offered (and re-rejected) the LLC's outbound head once per
     * cycle — the only per-cycle observable of those retries is this
     * counter, so bulk accrual keeps SystemResult bitwise identical.
     */
    void accrueRejected(std::uint64_t n) { stats_.rejectedRequests += n; }

    // ----- specialized-kernel surface -----------------------------------

    /**
     * tick() instantiated for one concrete scheme type S: identical
     * behavior, but every scheme hook on the path dispatches through
     * SchemeOps<S> (mem/controller_kernel.hh) — devirtualized and
     * inlinable when S is a final scheme class, plain virtual when
     * S = RefreshScheme (the generic oracle tick() forwards to). Only
     * System's run loops call these with a concrete S, after pinning
     * at construction that the attached scheme really is an S.
     */
    template <class S> void tickAs(Cycle now);

    /** nextEvent() instantiated for scheme type S (same contract). */
    template <class S> Cycle nextEventAs() const;

    /** Completions accumulated since the last drain. */
    std::vector<Completion> &completions() { return completions_; }

    bool readQueueFull() const;
    bool writeQueueFull() const;
    std::size_t queuedReads() const { return readQ.size(); }
    std::size_t queuedWrites() const { return writeQ.size(); }

    // ----- primitives for refresh schemes ------------------------------

    /** True if the command bus can carry a command this cycle. */
    bool busFree(Cycle now) const;

    /** Issue an all-bank REF to the rank (all banks must be closed). */
    bool tryRef(int rank, Cycle now);

    /** Precharge one open bank of the rank (REF preparation). */
    bool tryCloseOneBank(int rank, Cycle now);

    /** Precharge a specific bank. */
    bool tryPre(int rank, BankId bank, Cycle now);

    /**
     * Standalone per-row refresh: ACT @p row now, auto-PRE after tRAS.
     * The bank is withheld from demand scheduling until the PRE.
     */
    bool tryRefreshAct(int rank, BankId bank, RowId row, Cycle now);

    /**
     * Refresh-refresh HiRA (Section 5.1.3 case 2): one HiRA op
     * refreshing @p first and @p second, auto-PRE after the second's
     * tRAS.
     */
    bool tryHiraRefreshPair(int rank, BankId bank, RowId first,
                            RowId second, Cycle now);

    // ----- inspection ---------------------------------------------------

    const ChannelTimingModel &timing() const { return model; }
    const Geometry &geometry() const { return cfg.geom; }
    const TimingCycles &tc() const { return model.cycles(); }
    const ControllerStats &stats() const { return stats_; }
    RefreshScheme &scheme() { return *refreshScheme; }
    const RefreshScheme &scheme() const { return *refreshScheme; }
    ParaSampler &para() { return paraSampler; }
    /**
     * Recorded command trace, sorted by issue cycle (HiRA's inner PRE /
     * second ACT are recorded at issue time but occupy future bus
     * slots).
     */
    std::vector<Command> trace() const;
    int channelId() const { return channel; }

    /** True if the bank is withheld from demand scheduling. */
    bool bankBlocked(int rank, BankId bank) const;

    /**
     * Hold all new activations to the rank (REF preparation: the rank
     * must drain to all-banks-precharged before a REF can issue).
     */
    void setRankHold(int rank, bool hold);
    bool rankHeld(int rank) const;

    /** Pending preventive refreshes on the bank (immediate PARA). */
    std::size_t pendingPreventive(int rank, BankId bank) const;

  private:
    struct BankAux
    {
        bool refreshOpen = false;      //!< refresh row open, PRE pending
        std::deque<RowId> preventive;  //!< immediate-PARA victims
    };

    std::size_t bankIndex(int rank, BankId bank) const;
    BankAux &aux(int rank, BankId bank);
    const BankAux &aux(int rank, BankId bank) const;

    void record(CommandType type, Cycle cycle, int rank, BankId bank,
                RowId row, HiraRole role = HiraRole::None);
    void markIssued(Cycle now);
    bool slotReservedAt(Cycle c) const;
    void reserveHiraSlots(Cycle now);
    void autoPreTick(Cycle now);
    bool issueColumnIfReady(std::deque<Request> &queue, bool is_read,
                            Cycle now);

    // The scheme-touching hot path, templated over the scheme type
    // (bodies in mem/controller_kernel.hh). The non-template entry
    // points above (tick, nextEvent, tryRefreshAct) forward to the
    // S = RefreshScheme instantiations.
    template <class S> Cycle computeNextEventAs(Cycle now) const;
    /** Every activation funnels through here (PARA sampling hook). */
    template <class S>
    void onRowActivationAs(int rank, BankId bank, RowId row, Cycle now);
    template <class S> void preventiveTickAs(Cycle now);
    template <class S> void scheduleDemandAs(Cycle now);
    template <class S>
    bool issueRowCommandAs(std::deque<Request> &queue, Cycle now);
    template <class S> bool tryDemandActAs(const Request &req, Cycle now);
    template <class S>
    bool tryRefreshActAs(int rank, BankId bank, RowId row, Cycle now);

    /** Rebuild the bank's open-row-hit counts from the queues. */
    void recountHits(int rank, BankId bank);

    /**
     * True if the bank's open row has a queued hit the scheduler still
     * honors: readQ hits always, writeQ hits only in write-drain mode
     * (mirroring which queues FR-FCFS serves). Gates conflict PREs in
     * issueRowCommand and preventive closes in preventiveTick, and the
     * wake scan replays exactly this predicate so the event engine
     * defers the same PREs dense would.
     */
    bool bankHasOpenRowHit(std::size_t idx) const
    {
        return nReadHit[idx] != 0 ||
               (writeMode && nWriteHit[idx] != 0);
    }

    int channel;
    ControllerConfig cfg;
    ChannelTimingModel model;
    std::unique_ptr<RefreshScheme> refreshScheme;
    ParaSampler paraSampler;

    std::deque<Request> readQ, writeQ;
    std::vector<Completion> completions_;
    std::vector<BankAux> bankAux;
    std::vector<Cycle> reservedSlots; //!< future HiRA PRE/ACT bus slots

    std::vector<bool> rankHold;
    bool writeMode = false;
    bool issuedThisCycle = false;
    Cycle lastTick = 0;
    int preventiveCursor = 0;

    // Cached nextEvent() bound: invalidated by tick(), lowered by
    // enqueue(). mutable so the lazy recompute stays behind a const
    // query (the cycle engine never queries it and pays nothing).
    mutable Cycle nextWake = 0;
    mutable bool nextWakeValid = false;
    std::function<void(Cycle)> wakeListener;
    // Per-bank queued-request index, flat bankIndex() order: how many
    // reads / writes target each bank, and how many of those hit the
    // bank's currently open row. Maintained incrementally — enqueue and
    // column issue adjust the target bank O(1), row transitions recount
    // one bank (recountHits / tryPre) — so the wake scan and the
    // scheduler's row-hit gates run over banks, not queue entries.
    std::vector<std::uint16_t> nRead, nWrite, nReadHit, nWriteHit;
    // issueRowCommand() scratch: per-bank attempted marks (one row-
    // command attempt per bank per call, oldest request wins).
    std::vector<std::uint8_t> bankSeenScratch;

    ControllerStats stats_;
    CommandTraceRecorder recorder;

    // Observability (all nullptr when metrics are off; the ControllerStats
    // command mix is mirrored into the registry at snapshot time instead
    // of being double-counted here). mRowHits counts column issues (every
    // column issue hits the open row under FR-FCFS), mRowMisses demand
    // ACTs into a closed bank, mRowConflicts conflict PREs; mWakeRecomputes
    // counts lazy nextEvent() horizon recomputes (cache invalidations) and
    // mWakeLowers accepted-enqueue wake lowerings. Per-bank enqueue
    // counters live in mBankReads/mBankWrites (bankIndex order); queue
    // depth histograms are observed once per tick at MetricsLevel::Full.
    std::vector<Counter *> mBankReads, mBankWrites;
    Counter *mRowHits = nullptr;
    Counter *mRowMisses = nullptr;
    Counter *mRowConflicts = nullptr;
    mutable Counter *mWakeRecomputes = nullptr;
    Counter *mWakeLowers = nullptr;
    HistogramMetric *mReadQDepth = nullptr;
    HistogramMetric *mWriteQDepth = nullptr;
};

} // namespace hira

// Companion header with the templated hot-path bodies (tickAs /
// nextEventAs and the SchemeOps dispatch shims); it needs the complete
// class above, and every includer of this header needs those
// definitions to instantiate the kernels.
#include "mem/controller_kernel.hh"

#endif // HIRA_MEM_CONTROLLER_HH
