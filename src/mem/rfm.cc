#include "mem/rfm.hh"

#include "common/logging.hh"
#include "mem/controller.hh"

namespace hira {

RfmRefresh::RfmRefresh(const RfmConfig &config) : cfg(config)
{
    hira_assert(cfg.raaimt > 0);
    hira_assert(cfg.queueCap > 0);
    baseline_ = std::make_unique<BaselineRefresh>();
}

void
RfmRefresh::attach(MemoryController *controller)
{
    RefreshScheme::attach(controller);
    const Geometry &geom = controller->geometry();
    std::size_t nbanks = static_cast<std::size_t>(geom.ranksPerChannel) *
                         static_cast<std::size_t>(geom.banksPerRank());
    raa.assign(nbanks, 0);
    victims.assign(nbanks, {});
    pendingTotal = 0;
    bankCursor = 0;
    baseline_->attach(controller);
}

void
RfmRefresh::attachMetrics(const MetricScope &scope)
{
    mRfmTriggers = scope.counter("rfm_triggers");
}

void
RfmRefresh::onActivate(int rank, BankId bank, RowId row, Cycle now)
{
    (void)now;
    std::size_t idx =
        static_cast<std::size_t>(rank * ctrl->geometry().banksPerRank()) +
        bank;
    if (++raa[idx] < cfg.raaimt)
        return;
    // RAAIMT crossed: the bank owes an RFM. Subtracting (not zeroing)
    // the threshold keeps the rolling-counter semantics when several
    // ACTs land between drain opportunities.
    raa[idx] -= cfg.raaimt;
    count(mRfmTriggers);
    RowId rows = ctrl->geometry().rowsPerBank;
    RowId neighbors[2] = {row > 0 ? row - 1 : kNoRow,
                          row + 1 < rows ? row + 1 : kNoRow};
    for (RowId victim : neighbors) {
        if (victim == kNoRow)
            continue;
        ++stats_.preventiveGenerated;
        if (victims[idx].size() >=
            static_cast<std::size_t>(cfg.queueCap)) {
            // A full victim queue models the device's bounded RFM work
            // list: the victim is never refreshed, so count the drop
            // (conservation: generated = refreshed + queued + dropped).
            ++stats_.preventiveDropped;
            continue;
        }
        victims[idx].push_back(victim);
        ++pendingTotal;
    }
}

bool
RfmRefresh::drain(Cycle now)
{
    if (pendingTotal == 0)
        return false;
    const Geometry &geom = ctrl->geometry();
    int nbanks = geom.ranksPerChannel * geom.banksPerRank();
    for (int i = 0; i < nbanks; ++i) {
        int idx = (bankCursor + i) % nbanks;
        int rank = idx / geom.banksPerRank();
        BankId bank = static_cast<BankId>(idx % geom.banksPerRank());
        std::deque<RowId> &q = victims[static_cast<std::size_t>(idx)];
        if (q.empty() || ctrl->bankBlocked(rank, bank))
            continue;
        if (ctrl->timing().openRow(rank, bank) != kNoRow) {
            // Close the bank so the RFM refresh can proceed.
            if (ctrl->tryPre(rank, bank, now)) {
                bankCursor = idx + 1;
                return true;
            }
            continue;
        }
        if (ctrl->tryRefreshAct(rank, bank, q.front(), now)) {
            q.pop_front();
            --pendingTotal;
            ++stats_.rowRefreshes;
            ++stats_.standalone;
            bankCursor = idx + 1;
            return true;
        }
    }
    return false;
}

void
RfmRefresh::tick(Cycle now)
{
    baseline_->tick(now);
    // Mirror the internal REF engine so System::result() needs no
    // scheme-specific aggregation (unlike HiraMc's baselineStats hook).
    stats_.refCommands = baseline_->stats().refCommands;
    if (!ctrl->busFree(now))
        return;
    drain(now);
}

Cycle
RfmRefresh::nextEventCycle(Cycle now) const
{
    // Queued victims drain against per-bank timing gates (auto-PRE,
    // rank holds); poll densely while any are pending — the queues are
    // tiny, so the window is short. RAA counters only change via
    // onActivate, i.e. on issues, which force a poll anyway.
    if (pendingTotal > 0)
        return now + 1;
    return baseline_->nextEventCycle(now);
}

} // namespace hira
