#include "mem/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hira {

MemoryController::MemoryController(int channel_id,
                                   const ControllerConfig &config,
                                   std::unique_ptr<RefreshScheme> scheme)
    : channel(channel_id),
      cfg(config),
      model(config.geom, config.tp),
      refreshScheme(std::move(scheme)),
      paraSampler(config.para)
{
    hira_assert(refreshScheme != nullptr);
    bankAux.resize(static_cast<std::size_t>(cfg.geom.ranksPerChannel) *
                   static_cast<std::size_t>(cfg.geom.banksPerRank()));
    rankHold.assign(static_cast<std::size_t>(cfg.geom.ranksPerChannel),
                    false);
    nRead.assign(bankAux.size(), 0);
    nWrite.assign(bankAux.size(), 0);
    nReadHit.assign(bankAux.size(), 0);
    nWriteHit.assign(bankAux.size(), 0);
    bankSeenScratch.assign(bankAux.size(), 0);
    recorder.setEnabled(cfg.recordTrace);
    refreshScheme->attach(this);

    // Metrics registration (cold path; every pointer stays nullptr when
    // the scope is disabled). Queue-depth capacity +1 so the full-queue
    // depth lands in its own bin rather than clamping into the last one.
    const MetricScope &ms = cfg.metrics;
    mRowHits = ms.counter("row_hits");
    mRowMisses = ms.counter("row_misses");
    mRowConflicts = ms.counter("row_conflicts");
    mWakeRecomputes = ms.counter("wake_recomputes");
    mWakeLowers = ms.counter("wake_enqueue_lowers");
    mReadQDepth = ms.histogram("read_q_depth", 0.0,
                               static_cast<double>(cfg.readQueueCap + 1),
                               16);
    mWriteQDepth = ms.histogram(
        "write_q_depth", 0.0,
        static_cast<double>(cfg.writeQueueCap + 1), 16);
    mBankReads.resize(bankAux.size(), nullptr);
    mBankWrites.resize(bankAux.size(), nullptr);
    if (ms.registry() != nullptr) {
        for (std::size_t i = 0; i < bankAux.size(); ++i) {
            MetricScope bank = ms.sub(strprintf("bank%zu", i));
            mBankReads[i] = bank.counter("reads");
            mBankWrites[i] = bank.counter("writes");
        }
    }
    refreshScheme->attachMetrics(ms.sub("scheme"));
}

std::size_t
MemoryController::bankIndex(int rank, BankId bank) const
{
    return static_cast<std::size_t>(rank) *
               static_cast<std::size_t>(cfg.geom.banksPerRank()) +
           bank;
}

MemoryController::BankAux &
MemoryController::aux(int rank, BankId bank)
{
    return bankAux[bankIndex(rank, bank)];
}

const MemoryController::BankAux &
MemoryController::aux(int rank, BankId bank) const
{
    return bankAux[bankIndex(rank, bank)];
}

void
MemoryController::setRankHold(int rank, bool hold)
{
    rankHold[static_cast<std::size_t>(rank)] = hold;
}

bool
MemoryController::rankHeld(int rank) const
{
    return rankHold[static_cast<std::size_t>(rank)];
}

std::vector<Command>
MemoryController::trace() const
{
    std::vector<Command> t = recorder.commands();
    std::stable_sort(t.begin(), t.end(),
                     [](const Command &a, const Command &b) {
                         return a.cycle < b.cycle;
                     });
    return t;
}

bool
MemoryController::bankBlocked(int rank, BankId bank) const
{
    const BankAux &a = aux(rank, bank);
    return a.refreshOpen || !a.preventive.empty();
}

std::size_t
MemoryController::pendingPreventive(int rank, BankId bank) const
{
    return aux(rank, bank).preventive.size();
}

bool
MemoryController::readQueueFull() const
{
    return readQ.size() >=
           static_cast<std::size_t>(cfg.readQueueCap);
}

bool
MemoryController::writeQueueFull() const
{
    return writeQ.size() >=
           static_cast<std::size_t>(cfg.writeQueueCap);
}

bool
MemoryController::enqueue(const Request &req)
{
    hira_assert(req.da.channel == channel);
    // Wake the event engine exactly when the dense loop would first see
    // an accepted request: this same cycle if our tick is still ahead
    // of us in the current cycle's controller phase, the next cycle if
    // we already ticked (lastTick == arrival). When the cache is
    // invalid (we ticked this cycle and nobody queried since), the lazy
    // recompute sees the queued request itself. Rejected requests leave
    // the controller untouched and owe no wake — lowering the wake on
    // the LLC's per-cycle outbound retries would pin a full controller
    // to dense polling for as long as its queue stays full.
    auto lowerWake = [this, &req]() {
        Cycle seen = lastTick == req.arrival ? req.arrival + 1
                                             : req.arrival;
        if (nextWakeValid && seen < nextWake)
            nextWake = seen;
        if (wakeListener)
            wakeListener(seen);
        count(mWakeLowers);
    };
    if (req.type == MemType::Read) {
        // Forward from a queued write to the same line. The forward
        // serves the read (fixed latency, data from the write queue),
        // so it counts toward readsServed / readLatencySum like any
        // other completed read; `forwards` stays as the sub-count.
        for (const Request &w : writeQ) {
            if (w.addr == req.addr) {
                completions_.push_back(
                    {req.tag, req.coreId, req.arrival + 4});
                ++stats_.forwards;
                ++stats_.readsServed;
                stats_.readLatencySum += 4;
                lowerWake();
                return true;
            }
        }
        if (readQueueFull()) {
            ++stats_.rejectedRequests;
            return false;
        }
        readQ.push_back(req);
        std::size_t idx = bankIndex(req.da.rank, req.da.bank);
        count(mBankReads[idx]);
        ++nRead[idx];
        if (model.openRow(req.da.rank, req.da.bank) == req.da.row)
            ++nReadHit[idx];
        lowerWake();
        return true;
    }
    if (writeQueueFull()) {
        ++stats_.rejectedRequests;
        return false;
    }
    writeQ.push_back(req);
    std::size_t idx = bankIndex(req.da.rank, req.da.bank);
    count(mBankWrites[idx]);
    ++nWrite[idx];
    if (model.openRow(req.da.rank, req.da.bank) == req.da.row)
        ++nWriteHit[idx];
    lowerWake();
    return true;
}

void
MemoryController::recountHits(int rank, BankId bank)
{
    std::size_t idx = bankIndex(rank, bank);
    RowId open = model.openRow(rank, bank);
    std::uint16_t nr = 0, nw = 0;
    if (open != kNoRow) {
        for (const Request &r : readQ) {
            if (r.da.rank == rank && r.da.bank == bank &&
                r.da.row == open) {
                ++nr;
            }
        }
        for (const Request &r : writeQ) {
            if (r.da.rank == rank && r.da.bank == bank &&
                r.da.row == open) {
                ++nw;
            }
        }
    }
    nReadHit[idx] = nr;
    nWriteHit[idx] = nw;
}

void
MemoryController::record(CommandType type, Cycle cycle, int rank,
                         BankId bank, RowId row, HiraRole role)
{
    if (!recorder.isEnabled())
        return;
    Command c;
    c.type = type;
    c.cycle = cycle;
    c.channel = channel;
    c.rank = rank;
    c.bank = bank;
    c.row = row;
    c.hiraRole = role;
    recorder.record(c);
}

void
MemoryController::markIssued(Cycle now)
{
    hira_assert(!issuedThisCycle);
    (void)now;
    issuedThisCycle = true;
}

bool
MemoryController::slotReservedAt(Cycle c) const
{
    return std::find(reservedSlots.begin(), reservedSlots.end(), c) !=
           reservedSlots.end();
}

void
MemoryController::reserveHiraSlots(Cycle now)
{
    reservedSlots.push_back(now + model.cycles().c1);
    reservedSlots.push_back(now + model.cycles().hiraSpan());
}

bool
MemoryController::busFree(Cycle now) const
{
    return !issuedThisCycle && !slotReservedAt(now);
}

void
MemoryController::onRowActivation(int rank, BankId bank, RowId row,
                                  Cycle now)
{
    ++stats_.acts;
    refreshScheme->onActivate(rank, bank, row, now);
    if (!paraSampler.enabled())
        return;
    RowId victim = paraSampler.sample(row, cfg.geom.rowsPerBank);
    if (victim == kNoRow)
        return;
    ++paraSampler.generated;
    if (cfg.paraImmediate)
        aux(rank, bank).preventive.push_back(victim);
    // In PreventiveRC mode the scheme saw the activation via onActivate
    // and does its own (slack-adjusted) sampling.
}

// --------------------------------------------------------------------
// Refresh-scheme primitives
// --------------------------------------------------------------------

bool
MemoryController::tryRef(int rank, Cycle now)
{
    if (!busFree(now))
        return false;
    for (BankId b = 0; b < static_cast<BankId>(cfg.geom.banksPerRank());
         ++b) {
        if (model.openRow(rank, b) != kNoRow)
            return false;
    }
    if (model.earliestRef(rank) > now)
        return false;
    model.issueRef(rank, now);
    record(CommandType::REF, now, rank, 0, 0);
    markIssued(now);
    ++stats_.refs;
    return true;
}

bool
MemoryController::tryCloseOneBank(int rank, Cycle now)
{
    if (!busFree(now))
        return false;
    for (BankId b = 0; b < static_cast<BankId>(cfg.geom.banksPerRank());
         ++b) {
        if (model.openRow(rank, b) != kNoRow &&
            model.earliestPre(rank, b) <= now) {
            return tryPre(rank, b, now);
        }
    }
    return false;
}

bool
MemoryController::tryPre(int rank, BankId bank, Cycle now)
{
    if (!busFree(now) || model.openRow(rank, bank) == kNoRow ||
        model.earliestPre(rank, bank) > now) {
        return false;
    }
    model.issuePre(rank, bank, now);
    record(CommandType::PRE, now, rank, bank, 0);
    markIssued(now);
    ++stats_.pres;
    aux(rank, bank).refreshOpen = false;
    // Row closed: nothing hits it any more (recountHits shortcut).
    std::size_t idx = bankIndex(rank, bank);
    nReadHit[idx] = 0;
    nWriteHit[idx] = 0;
    return true;
}

bool
MemoryController::tryRefreshAct(int rank, BankId bank, RowId row,
                                Cycle now)
{
    if (!busFree(now) || rankHeld(rank) ||
        model.openRow(rank, bank) != kNoRow ||
        model.earliestAct(rank, bank) > now) {
        return false;
    }
    model.issueAct(rank, bank, row, now);
    record(CommandType::ACT, now, rank, bank, row);
    markIssued(now);
    aux(rank, bank).refreshOpen = true;
    recountHits(rank, bank); // a refresh row can match queued requests
    onRowActivation(rank, bank, row, now);
    return true;
}

bool
MemoryController::tryHiraRefreshPair(int rank, BankId bank, RowId first,
                                     RowId second, Cycle now)
{
    const TimingCycles &tcy = model.cycles();
    if (!busFree(now) || slotReservedAt(now + tcy.c1) ||
        slotReservedAt(now + tcy.hiraSpan())) {
        return false;
    }
    if (rankHeld(rank) || model.openRow(rank, bank) != kNoRow ||
        model.earliestHira(rank, bank) > now) {
        return false;
    }
    Cycle second_at = model.issueHira(rank, bank, first, second, now);
    record(CommandType::ACT, now, rank, bank, first, HiraRole::FirstAct);
    record(CommandType::PRE, now + tcy.c1, rank, bank, 0,
           HiraRole::CutPre);
    record(CommandType::ACT, second_at, rank, bank, second,
           HiraRole::SecondAct);
    reserveHiraSlots(now);
    markIssued(now);
    ++stats_.hiraOps;
    aux(rank, bank).refreshOpen = true; // auto-PRE after the second tRAS
    recountHits(rank, bank); // bank now open with `second`
    onRowActivation(rank, bank, first, now);
    onRowActivation(rank, bank, second, second_at);
    return true;
}

// --------------------------------------------------------------------
// Per-cycle operation
// --------------------------------------------------------------------

void
MemoryController::tick(Cycle now)
{
    issuedThisCycle = false;
    lastTick = now;
    // Occupancy at tick entry; under the event engine this samples only
    // executed cycles (skipped cycles have provably unchanged queues).
    observe(mReadQDepth, static_cast<double>(readQ.size()));
    observe(mWriteQDepth, static_cast<double>(writeQ.size()));
    // Retire expired HiRA bus-slot reservations (at most a handful of
    // future slots; plain index compaction, nothing allocates here).
    if (!reservedSlots.empty()) {
        std::size_t kept = 0;
        for (Cycle c : reservedSlots) {
            if (c >= now)
                reservedSlots[kept++] = c;
        }
        reservedSlots.resize(kept);
    }

    autoPreTick(now);
    if (!issuedThisCycle && !slotReservedAt(now))
        refreshScheme->tick(now);
    if (!issuedThisCycle)
        preventiveTick(now);
    if (!issuedThisCycle)
        scheduleDemand(now);
    nextWakeValid = false; // state changed; nextEvent() recomputes
}

void
MemoryController::autoPreTick(Cycle now)
{
    if (!busFree(now))
        return;
    for (int rank = 0; rank < cfg.geom.ranksPerChannel; ++rank) {
        for (BankId b = 0;
             b < static_cast<BankId>(cfg.geom.banksPerRank()); ++b) {
            BankAux &a = aux(rank, b);
            if (a.refreshOpen && model.openRow(rank, b) != kNoRow &&
                model.earliestPre(rank, b) <= now) {
                tryPre(rank, b, now);
                return;
            }
        }
    }
}

void
MemoryController::preventiveTick(Cycle now)
{
    if (!cfg.paraImmediate || !paraSampler.enabled() || !busFree(now))
        return;
    int nbanks = cfg.geom.ranksPerChannel * cfg.geom.banksPerRank();
    for (int i = 0; i < nbanks; ++i) {
        int idx = (preventiveCursor + i) % nbanks;
        int rank = idx / cfg.geom.banksPerRank();
        BankId bank = static_cast<BankId>(idx % cfg.geom.banksPerRank());
        BankAux &a = aux(rank, bank);
        if (a.preventive.empty() || a.refreshOpen)
            continue;
        if (model.openRow(rank, bank) == kNoRow) {
            // Pop the victim only once the refresh ACT actually issued:
            // tryRefreshAct re-checks the rank hold, bank state, and
            // ACT timing itself, and any of those can decline (e.g. a
            // hold placed between our earliestAct probe and the issue).
            // Popping first would silently drop the victim — a missed
            // preventive refresh, invisible until a bit flips.
            if (tryRefreshAct(rank, bank, a.preventive.front(), now)) {
                a.preventive.pop_front();
                preventiveCursor = idx + 1;
                return;
            }
        } else if (!bankHasOpenRowHit(bankIndex(rank, bank)) &&
                   model.earliestPre(rank, bank) <= now) {
            // Close the bank so the preventive refresh can proceed; row
            // hits in flight drain first.
            tryPre(rank, bank, now);
            preventiveCursor = idx + 1;
            return;
        }
    }
}

Cycle
MemoryController::nextEvent() const
{
    if (!nextWakeValid) {
        nextWake = computeNextEvent(lastTick);
        nextWakeValid = true;
        count(mWakeRecomputes);
    }
    return nextWake;
}

Cycle
MemoryController::computeNextEvent(Cycle now) const
{
    // The one state change the horizon scan below cannot see is the
    // write-drain hysteresis flip: writeMode changes how preventiveTick
    // weighs queued row hits and which queue schedules, and the dense
    // loop re-evaluates the flip on every busFree tick. The flip is a
    // pure function of the queue depths, so replaying the hysteresis
    // block on the current depths tells exactly whether the next dense
    // tick would change writeMode; if so, poll it. Depth changes
    // between recomputes cannot be missed: they happen only on issues
    // (each followed by this recompute) and enqueues (which lower the
    // wake to arrival+1). Everything else an issue touches —
    // completions pushed, preventive victims sampled, bank refreshOpen
    // transitions, scheme bookkeeping, data-bus adjusted horizons —
    // re-enters through the scan, which runs on post-issue state.
    {
        bool wm = writeMode;
        if (!wm) {
            if (writeQ.size() >= static_cast<std::size_t>(cfg.drainHigh) ||
                (readQ.empty() && !writeQ.empty())) {
                wm = true;
            }
        } else if (writeQ.size() <=
                       static_cast<std::size_t>(cfg.drainLow) &&
                   !readQ.empty()) {
            wm = false;
        }
        if (wm && writeQ.empty())
            wm = false;
        if (wm != writeMode)
            return now + 1;
    }

    // Horizons can never push the wake below the next cycle, so the
    // scan bails as soon as the running minimum reaches that floor.
    const Cycle floor = now + 1;
    Cycle wake = kNeverCycle;
    auto consider = [&wake, floor](Cycle c) {
        if (c < wake)
            wake = c;
        return wake <= floor;
    };

    // One sweep over the per-bank request index (nRead / nWrite /
    // n*Hit), no queue walk at all. Only the active queue can schedule
    // before the next mode flip, and flips always land on ticks the
    // wake list covers (the hysteresis check above plus enqueue's wake
    // lowering), so the inactive class contributes no horizon. The
    // conflict-PRE and preventive-close entries replay issueRowCommand
    // / preventiveTick's row-hit gate (bankHasOpenRowHit): a PRE dense
    // defers while the open row has queued hits is not considered,
    // because the hit counts only change at covered ticks (hit issues,
    // hit arrivals through enqueue, row transitions through commands),
    // after which this recompute runs again.
    const int bpr = cfg.geom.banksPerRank();
    for (int rank = 0; rank < cfg.geom.ranksPerChannel; ++rank) {
        // Held ranks: the holding scheme's horizon polls densely while
        // it drains the rank toward a REF, so ACT entries drop out.
        const bool held = rankHold[static_cast<std::size_t>(rank)];
        for (BankId b = 0; b < static_cast<BankId>(bpr); ++b) {
            std::size_t idx = bankIndex(rank, b);
            const BankAux &a = bankAux[idx];
            if (a.refreshOpen) {
                // Demand and preventive work is withheld; the bank's
                // only event is the auto-PRE of the refresh row.
                if (model.openRow(rank, b) != kNoRow &&
                    consider(model.earliestPre(rank, b))) {
                    return floor;
                }
                continue;
            }
            std::uint16_t nq = writeMode ? nWrite[idx] : nRead[idx];
            std::uint16_t nh = writeMode ? nWriteHit[idx] : nReadHit[idx];
            bool preventivePending = !a.preventive.empty();
            if (nq == 0 && !preventivePending)
                continue;
            if (model.openRow(rank, b) == kNoRow) {
                // Everything queued wants an ACT (demand row or
                // preventive victim).
                if (!held && consider(model.earliestAct(rank, b)))
                    return floor;
                continue;
            }
            if (nh != 0 &&
                consider(writeMode ? model.earliestWr(rank, b)
                                   : model.earliestRd(rank, b))) {
                return floor;
            }
            if ((nq > nh || preventivePending) &&
                !bankHasOpenRowHit(idx) &&
                consider(model.earliestPre(rank, b))) {
                return floor;
            }
        }
    }

    // Completions must reach the LLC at exactly their arrival cycle.
    for (const Completion &c : completions_) {
        if (consider(c.at))
            return floor;
    }

    if (consider(refreshScheme->nextEventCycle(now)))
        return floor;

    if (wake == kNeverCycle)
        return kNeverCycle;
    return std::max(wake, floor);
}

bool
MemoryController::issueColumnIfReady(std::deque<Request> &queue,
                                     bool is_read, Cycle now)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &req = queue[i];
        int rank = req.da.rank;
        BankId bank = req.da.bank;
        if (aux(rank, bank).refreshOpen)
            continue;
        if (model.openRow(rank, bank) != req.da.row)
            continue;
        if (is_read) {
            if (model.earliestRd(rank, bank) > now)
                continue;
            Cycle done = model.issueRd(rank, bank, now);
            record(CommandType::RD, now, rank, bank, req.da.row);
            completions_.push_back({req.tag, req.coreId, done});
            stats_.readLatencySum += done - req.arrival;
            ++stats_.readsServed;
        } else {
            if (model.earliestWr(rank, bank) > now)
                continue;
            model.issueWr(rank, bank, now);
            record(CommandType::WR, now, rank, bank, req.da.row);
            ++stats_.writesServed;
        }
        markIssued(now);
        count(mRowHits);
        std::size_t idx = bankIndex(rank, bank);
        if (is_read) {
            --nRead[idx];
            --nReadHit[idx]; // the issued request hit the open row
        } else {
            --nWrite[idx];
            --nWriteHit[idx];
        }
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
    }
    return false;
}

bool
MemoryController::tryDemandAct(const Request &req, Cycle now)
{
    int rank = req.da.rank;
    BankId bank = req.da.bank;
    if (rankHeld(rank) || model.earliestAct(rank, bank) > now)
        return false;

    // Case-1 hook (Fig. 8): give the refresh scheme the chance to hide a
    // refresh under this activation with a HiRA operation.
    RowId hidden =
        refreshScheme->pickHiddenRefresh(rank, bank, req.da.row, now);
    if (hidden != kNoRow) {
        const TimingCycles &tcy = model.cycles();
        if (model.earliestHira(rank, bank) <= now &&
            !slotReservedAt(now + tcy.c1) &&
            !slotReservedAt(now + tcy.hiraSpan())) {
            Cycle second_at =
                model.issueHira(rank, bank, hidden, req.da.row, now);
            record(CommandType::ACT, now, rank, bank, hidden,
                   HiraRole::FirstAct);
            record(CommandType::PRE, now + tcy.c1, rank, bank, 0,
                   HiraRole::CutPre);
            record(CommandType::ACT, second_at, rank, bank, req.da.row,
                   HiraRole::SecondAct);
            reserveHiraSlots(now);
            markIssued(now);
            ++stats_.hiraOps;
            count(mRowMisses); // the demand ACT rode a closed bank
            recountHits(rank, bank); // bank now open with req's row
            refreshScheme->onHiraIssued(rank, bank, hidden, now);
            onRowActivation(rank, bank, hidden, now);
            onRowActivation(rank, bank, req.da.row, second_at);
            return true;
        }
    }

    model.issueAct(rank, bank, req.da.row, now);
    record(CommandType::ACT, now, rank, bank, req.da.row);
    markIssued(now);
    count(mRowMisses);
    recountHits(rank, bank);
    onRowActivation(rank, bank, req.da.row, now);
    return true;
}

bool
MemoryController::issueRowCommand(std::deque<Request> &queue, Cycle now)
{
    // Oldest-first, one attempt per bank.
    std::fill(bankSeenScratch.begin(), bankSeenScratch.end(), 0);
    for (const Request &req : queue) {
        int rank = req.da.rank;
        BankId bank = req.da.bank;
        std::size_t idx = bankIndex(rank, bank);
        if (bankSeenScratch[idx] != 0)
            continue;
        bankSeenScratch[idx] = 1;
        if (bankBlocked(rank, bank))
            continue;
        RowId open = model.openRow(rank, bank);
        if (open == req.da.row)
            continue; // row hit waiting on CAS timing
        if (open == kNoRow) {
            if (tryDemandAct(req, now))
                return true;
            continue;
        }
        // Conflict: close the row once its queued hits have drained.
        if (bankHasOpenRowHit(idx))
            continue;
        if (model.earliestPre(rank, bank) <= now) {
            count(mRowConflicts);
            return tryPre(rank, bank, now);
        }
    }
    return false;
}

void
MemoryController::scheduleDemand(Cycle now)
{
    if (!busFree(now))
        return;

    // Write-drain mode hysteresis; also drain opportunistically when
    // there is no read work at all.
    if (!writeMode) {
        if (writeQ.size() >= static_cast<std::size_t>(cfg.drainHigh) ||
            (readQ.empty() && !writeQ.empty())) {
            writeMode = true;
        }
    } else if (writeQ.size() <= static_cast<std::size_t>(cfg.drainLow) &&
               !readQ.empty()) {
        writeMode = false;
    }
    if (writeMode && writeQ.empty())
        writeMode = false;

    std::deque<Request> &active = writeMode ? writeQ : readQ;
    if (active.empty())
        return;

    // FR-FCFS: ready column accesses first, then oldest-first row
    // commands.
    if (issueColumnIfReady(active, !writeMode, now))
        return;
    issueRowCommand(active, now);
}

} // namespace hira
