#include "mem/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hira {

MemoryController::MemoryController(int channel_id,
                                   const ControllerConfig &config,
                                   std::unique_ptr<RefreshScheme> scheme)
    : channel(channel_id),
      cfg(config),
      model(config.geom, config.tp),
      refreshScheme(std::move(scheme)),
      paraSampler(config.para)
{
    hira_assert(refreshScheme != nullptr);
    bankAux.resize(static_cast<std::size_t>(cfg.geom.ranksPerChannel) *
                   static_cast<std::size_t>(cfg.geom.banksPerRank()));
    rankHold.assign(static_cast<std::size_t>(cfg.geom.ranksPerChannel),
                    false);
    nRead.assign(bankAux.size(), 0);
    nWrite.assign(bankAux.size(), 0);
    nReadHit.assign(bankAux.size(), 0);
    nWriteHit.assign(bankAux.size(), 0);
    bankSeenScratch.assign(bankAux.size(), 0);
    recorder.setEnabled(cfg.recordTrace);
    refreshScheme->attach(this);

    // Metrics registration (cold path; every pointer stays nullptr when
    // the scope is disabled). Queue-depth capacity +1 so the full-queue
    // depth lands in its own bin rather than clamping into the last one.
    const MetricScope &ms = cfg.metrics;
    mRowHits = ms.counter("row_hits");
    mRowMisses = ms.counter("row_misses");
    mRowConflicts = ms.counter("row_conflicts");
    mWakeRecomputes = ms.counter("wake_recomputes");
    mWakeLowers = ms.counter("wake_enqueue_lowers");
    mReadQDepth = ms.histogram("read_q_depth", 0.0,
                               static_cast<double>(cfg.readQueueCap + 1),
                               16);
    mWriteQDepth = ms.histogram(
        "write_q_depth", 0.0,
        static_cast<double>(cfg.writeQueueCap + 1), 16);
    mBankReads.resize(bankAux.size(), nullptr);
    mBankWrites.resize(bankAux.size(), nullptr);
    if (ms.registry() != nullptr) {
        for (std::size_t i = 0; i < bankAux.size(); ++i) {
            MetricScope bank = ms.sub(strprintf("bank%zu", i));
            mBankReads[i] = bank.counter("reads");
            mBankWrites[i] = bank.counter("writes");
        }
    }
    refreshScheme->attachMetrics(ms.sub("scheme"));
}

std::size_t
MemoryController::bankIndex(int rank, BankId bank) const
{
    return static_cast<std::size_t>(rank) *
               static_cast<std::size_t>(cfg.geom.banksPerRank()) +
           bank;
}

MemoryController::BankAux &
MemoryController::aux(int rank, BankId bank)
{
    return bankAux[bankIndex(rank, bank)];
}

const MemoryController::BankAux &
MemoryController::aux(int rank, BankId bank) const
{
    return bankAux[bankIndex(rank, bank)];
}

void
MemoryController::setRankHold(int rank, bool hold)
{
    rankHold[static_cast<std::size_t>(rank)] = hold;
}

bool
MemoryController::rankHeld(int rank) const
{
    return rankHold[static_cast<std::size_t>(rank)];
}

std::vector<Command>
MemoryController::trace() const
{
    std::vector<Command> t = recorder.commands();
    std::stable_sort(t.begin(), t.end(),
                     [](const Command &a, const Command &b) {
                         return a.cycle < b.cycle;
                     });
    return t;
}

bool
MemoryController::bankBlocked(int rank, BankId bank) const
{
    const BankAux &a = aux(rank, bank);
    return a.refreshOpen || !a.preventive.empty();
}

std::size_t
MemoryController::pendingPreventive(int rank, BankId bank) const
{
    return aux(rank, bank).preventive.size();
}

bool
MemoryController::readQueueFull() const
{
    return readQ.size() >=
           static_cast<std::size_t>(cfg.readQueueCap);
}

bool
MemoryController::writeQueueFull() const
{
    return writeQ.size() >=
           static_cast<std::size_t>(cfg.writeQueueCap);
}

bool
MemoryController::enqueue(const Request &req)
{
    hira_assert(req.da.channel == channel);
    // Wake the event engine exactly when the dense loop would first see
    // an accepted request: this same cycle if our tick is still ahead
    // of us in the current cycle's controller phase, the next cycle if
    // we already ticked (lastTick == arrival). When the cache is
    // invalid (we ticked this cycle and nobody queried since), the lazy
    // recompute sees the queued request itself. Rejected requests leave
    // the controller untouched and owe no wake — lowering the wake on
    // the LLC's per-cycle outbound retries would pin a full controller
    // to dense polling for as long as its queue stays full.
    auto lowerWake = [this, &req]() {
        Cycle seen = lastTick == req.arrival ? req.arrival + 1
                                             : req.arrival;
        if (nextWakeValid && seen < nextWake)
            nextWake = seen;
        if (wakeListener)
            wakeListener(seen);
        count(mWakeLowers);
    };
    if (req.type == MemType::Read) {
        // Forward from a queued write to the same line. The forward
        // serves the read (fixed latency, data from the write queue),
        // so it counts toward readsServed / readLatencySum like any
        // other completed read; `forwards` stays as the sub-count.
        for (const Request &w : writeQ) {
            if (w.addr == req.addr) {
                completions_.push_back(
                    {req.tag, req.coreId, req.arrival + 4});
                ++stats_.forwards;
                ++stats_.readsServed;
                stats_.readLatencySum += 4;
                lowerWake();
                return true;
            }
        }
        if (readQueueFull()) {
            ++stats_.rejectedRequests;
            return false;
        }
        readQ.push_back(req);
        std::size_t idx = bankIndex(req.da.rank, req.da.bank);
        count(mBankReads[idx]);
        ++nRead[idx];
        if (model.openRow(req.da.rank, req.da.bank) == req.da.row)
            ++nReadHit[idx];
        lowerWake();
        return true;
    }
    if (writeQueueFull()) {
        ++stats_.rejectedRequests;
        return false;
    }
    writeQ.push_back(req);
    std::size_t idx = bankIndex(req.da.rank, req.da.bank);
    count(mBankWrites[idx]);
    ++nWrite[idx];
    if (model.openRow(req.da.rank, req.da.bank) == req.da.row)
        ++nWriteHit[idx];
    lowerWake();
    return true;
}

void
MemoryController::recountHits(int rank, BankId bank)
{
    std::size_t idx = bankIndex(rank, bank);
    RowId open = model.openRow(rank, bank);
    std::uint16_t nr = 0, nw = 0;
    if (open != kNoRow) {
        for (const Request &r : readQ) {
            if (r.da.rank == rank && r.da.bank == bank &&
                r.da.row == open) {
                ++nr;
            }
        }
        for (const Request &r : writeQ) {
            if (r.da.rank == rank && r.da.bank == bank &&
                r.da.row == open) {
                ++nw;
            }
        }
    }
    nReadHit[idx] = nr;
    nWriteHit[idx] = nw;
}

void
MemoryController::record(CommandType type, Cycle cycle, int rank,
                         BankId bank, RowId row, HiraRole role)
{
    if (!recorder.isEnabled())
        return;
    Command c;
    c.type = type;
    c.cycle = cycle;
    c.channel = channel;
    c.rank = rank;
    c.bank = bank;
    c.row = row;
    c.hiraRole = role;
    recorder.record(c);
}

void
MemoryController::markIssued(Cycle now)
{
    hira_assert(!issuedThisCycle);
    (void)now;
    issuedThisCycle = true;
}

bool
MemoryController::slotReservedAt(Cycle c) const
{
    return std::find(reservedSlots.begin(), reservedSlots.end(), c) !=
           reservedSlots.end();
}

void
MemoryController::reserveHiraSlots(Cycle now)
{
    reservedSlots.push_back(now + model.cycles().c1);
    reservedSlots.push_back(now + model.cycles().hiraSpan());
}

bool
MemoryController::busFree(Cycle now) const
{
    return !issuedThisCycle && !slotReservedAt(now);
}

// --------------------------------------------------------------------
// Refresh-scheme primitives
// --------------------------------------------------------------------

bool
MemoryController::tryRef(int rank, Cycle now)
{
    if (!busFree(now))
        return false;
    for (BankId b = 0; b < static_cast<BankId>(cfg.geom.banksPerRank());
         ++b) {
        if (model.openRow(rank, b) != kNoRow)
            return false;
    }
    if (model.earliestRef(rank) > now)
        return false;
    model.issueRef(rank, now);
    record(CommandType::REF, now, rank, 0, 0);
    markIssued(now);
    ++stats_.refs;
    return true;
}

bool
MemoryController::tryCloseOneBank(int rank, Cycle now)
{
    if (!busFree(now))
        return false;
    for (BankId b = 0; b < static_cast<BankId>(cfg.geom.banksPerRank());
         ++b) {
        if (model.openRow(rank, b) != kNoRow &&
            model.earliestPre(rank, b) <= now) {
            return tryPre(rank, b, now);
        }
    }
    return false;
}

bool
MemoryController::tryPre(int rank, BankId bank, Cycle now)
{
    if (!busFree(now) || model.openRow(rank, bank) == kNoRow ||
        model.earliestPre(rank, bank) > now) {
        return false;
    }
    model.issuePre(rank, bank, now);
    record(CommandType::PRE, now, rank, bank, 0);
    markIssued(now);
    ++stats_.pres;
    aux(rank, bank).refreshOpen = false;
    // Row closed: nothing hits it any more (recountHits shortcut).
    std::size_t idx = bankIndex(rank, bank);
    nReadHit[idx] = 0;
    nWriteHit[idx] = 0;
    return true;
}

bool
MemoryController::tryRefreshAct(int rank, BankId bank, RowId row,
                                Cycle now)
{
    // Called by the schemes themselves (HiRA-MC standalone refreshes,
    // plus the templated preventive path via tryRefreshActAs): the
    // non-template form keeps the oracle's virtual onActivate, which is
    // fine — scheme-initiated issues are per-refresh, not per-cycle.
    return tryRefreshActAs<RefreshScheme>(rank, bank, row, now);
}

bool
MemoryController::tryHiraRefreshPair(int rank, BankId bank, RowId first,
                                     RowId second, Cycle now)
{
    const TimingCycles &tcy = model.cycles();
    if (!busFree(now) || slotReservedAt(now + tcy.c1) ||
        slotReservedAt(now + tcy.hiraSpan())) {
        return false;
    }
    if (rankHeld(rank) || model.openRow(rank, bank) != kNoRow ||
        model.earliestHira(rank, bank) > now) {
        return false;
    }
    Cycle second_at = model.issueHira(rank, bank, first, second, now);
    record(CommandType::ACT, now, rank, bank, first, HiraRole::FirstAct);
    record(CommandType::PRE, now + tcy.c1, rank, bank, 0,
           HiraRole::CutPre);
    record(CommandType::ACT, second_at, rank, bank, second,
           HiraRole::SecondAct);
    reserveHiraSlots(now);
    markIssued(now);
    ++stats_.hiraOps;
    aux(rank, bank).refreshOpen = true; // auto-PRE after the second tRAS
    recountHits(rank, bank); // bank now open with `second`
    onRowActivationAs<RefreshScheme>(rank, bank, first, now);
    onRowActivationAs<RefreshScheme>(rank, bank, second, second_at);
    return true;
}

// --------------------------------------------------------------------
// Per-cycle operation
// --------------------------------------------------------------------

void
MemoryController::tick(Cycle now)
{
    // The generic oracle: the same templated body System's specialized
    // kernels run, with every scheme hook on ordinary virtual dispatch.
    tickAs<RefreshScheme>(now);
}

void
MemoryController::autoPreTick(Cycle now)
{
    if (!busFree(now))
        return;
    for (int rank = 0; rank < cfg.geom.ranksPerChannel; ++rank) {
        for (BankId b = 0;
             b < static_cast<BankId>(cfg.geom.banksPerRank()); ++b) {
            BankAux &a = aux(rank, b);
            if (a.refreshOpen && model.openRow(rank, b) != kNoRow &&
                model.earliestPre(rank, b) <= now) {
                tryPre(rank, b, now);
                return;
            }
        }
    }
}

Cycle
MemoryController::nextEvent() const
{
    return nextEventAs<RefreshScheme>();
}

bool
MemoryController::issueColumnIfReady(std::deque<Request> &queue,
                                     bool is_read, Cycle now)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &req = queue[i];
        int rank = req.da.rank;
        BankId bank = req.da.bank;
        if (aux(rank, bank).refreshOpen)
            continue;
        if (model.openRow(rank, bank) != req.da.row)
            continue;
        if (is_read) {
            if (model.earliestRd(rank, bank) > now)
                continue;
            Cycle done = model.issueRd(rank, bank, now);
            record(CommandType::RD, now, rank, bank, req.da.row);
            completions_.push_back({req.tag, req.coreId, done});
            stats_.readLatencySum += done - req.arrival;
            ++stats_.readsServed;
        } else {
            if (model.earliestWr(rank, bank) > now)
                continue;
            model.issueWr(rank, bank, now);
            record(CommandType::WR, now, rank, bank, req.da.row);
            ++stats_.writesServed;
        }
        markIssued(now);
        count(mRowHits);
        std::size_t idx = bankIndex(rank, bank);
        if (is_read) {
            --nRead[idx];
            --nReadHit[idx]; // the issued request hit the open row
        } else {
            --nWrite[idx];
            --nWriteHit[idx];
        }
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
    }
    return false;
}

} // namespace hira
