#include "mem/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hira {

MemoryController::MemoryController(int channel_id,
                                   const ControllerConfig &config,
                                   std::unique_ptr<RefreshScheme> scheme)
    : channel(channel_id),
      cfg(config),
      model(config.geom, config.tp),
      refreshScheme(std::move(scheme)),
      paraSampler(config.para)
{
    hira_assert(refreshScheme != nullptr);
    bankAux.resize(static_cast<std::size_t>(cfg.geom.ranksPerChannel) *
                   static_cast<std::size_t>(cfg.geom.banksPerRank()));
    rankHold.assign(static_cast<std::size_t>(cfg.geom.ranksPerChannel),
                    false);
    recorder.setEnabled(cfg.recordTrace);
    refreshScheme->attach(this);
}

std::size_t
MemoryController::bankIndex(int rank, BankId bank) const
{
    return static_cast<std::size_t>(rank) *
               static_cast<std::size_t>(cfg.geom.banksPerRank()) +
           bank;
}

MemoryController::BankAux &
MemoryController::aux(int rank, BankId bank)
{
    return bankAux[bankIndex(rank, bank)];
}

const MemoryController::BankAux &
MemoryController::aux(int rank, BankId bank) const
{
    return bankAux[bankIndex(rank, bank)];
}

void
MemoryController::setRankHold(int rank, bool hold)
{
    rankHold[static_cast<std::size_t>(rank)] = hold;
}

bool
MemoryController::rankHeld(int rank) const
{
    return rankHold[static_cast<std::size_t>(rank)];
}

std::vector<Command>
MemoryController::trace() const
{
    std::vector<Command> t = recorder.commands();
    std::stable_sort(t.begin(), t.end(),
                     [](const Command &a, const Command &b) {
                         return a.cycle < b.cycle;
                     });
    return t;
}

bool
MemoryController::bankBlocked(int rank, BankId bank) const
{
    const BankAux &a = aux(rank, bank);
    return a.refreshOpen || !a.preventive.empty();
}

std::size_t
MemoryController::pendingPreventive(int rank, BankId bank) const
{
    return aux(rank, bank).preventive.size();
}

bool
MemoryController::readQueueFull() const
{
    return readQ.size() >=
           static_cast<std::size_t>(cfg.readQueueCap);
}

bool
MemoryController::writeQueueFull() const
{
    return writeQ.size() >=
           static_cast<std::size_t>(cfg.writeQueueCap);
}

bool
MemoryController::enqueue(const Request &req)
{
    hira_assert(req.da.channel == channel);
    // Wake the event engine exactly when the dense loop would first see
    // this request: this same cycle if our tick is still ahead of us in
    // the current cycle's controller phase, the next cycle if we
    // already ticked (lastTick == arrival). When the cache is invalid
    // (we ticked this cycle and nobody queried since), the lazy
    // recompute sees the queued request itself.
    if (nextWakeValid) {
        Cycle seen = lastTick == req.arrival ? req.arrival + 1
                                             : req.arrival;
        if (seen < nextWake)
            nextWake = seen;
    }
    if (req.type == MemType::Read) {
        // Forward from a queued write to the same line.
        for (const Request &w : writeQ) {
            if (w.addr == req.addr) {
                completions_.push_back(
                    {req.tag, req.coreId, req.arrival + 4});
                ++stats_.forwards;
                return true;
            }
        }
        if (readQueueFull()) {
            ++stats_.rejectedRequests;
            return false;
        }
        readQ.push_back(req);
        return true;
    }
    if (writeQueueFull()) {
        ++stats_.rejectedRequests;
        return false;
    }
    writeQ.push_back(req);
    return true;
}

void
MemoryController::record(CommandType type, Cycle cycle, int rank,
                         BankId bank, RowId row, HiraRole role)
{
    if (!recorder.isEnabled())
        return;
    Command c;
    c.type = type;
    c.cycle = cycle;
    c.channel = channel;
    c.rank = rank;
    c.bank = bank;
    c.row = row;
    c.hiraRole = role;
    recorder.record(c);
}

void
MemoryController::markIssued(Cycle now)
{
    hira_assert(!issuedThisCycle);
    (void)now;
    issuedThisCycle = true;
}

bool
MemoryController::slotReservedAt(Cycle c) const
{
    return std::find(reservedSlots.begin(), reservedSlots.end(), c) !=
           reservedSlots.end();
}

void
MemoryController::reserveHiraSlots(Cycle now)
{
    reservedSlots.push_back(now + model.cycles().c1);
    reservedSlots.push_back(now + model.cycles().hiraSpan());
}

bool
MemoryController::busFree(Cycle now) const
{
    return !issuedThisCycle && !slotReservedAt(now);
}

void
MemoryController::onRowActivation(int rank, BankId bank, RowId row,
                                  Cycle now)
{
    ++stats_.acts;
    refreshScheme->onActivate(rank, bank, row, now);
    if (!paraSampler.enabled())
        return;
    RowId victim = paraSampler.sample(row, cfg.geom.rowsPerBank);
    if (victim == kNoRow)
        return;
    ++paraSampler.generated;
    if (cfg.paraImmediate)
        aux(rank, bank).preventive.push_back(victim);
    // In PreventiveRC mode the scheme saw the activation via onActivate
    // and does its own (slack-adjusted) sampling.
}

// --------------------------------------------------------------------
// Refresh-scheme primitives
// --------------------------------------------------------------------

bool
MemoryController::tryRef(int rank, Cycle now)
{
    if (!busFree(now))
        return false;
    for (BankId b = 0; b < static_cast<BankId>(cfg.geom.banksPerRank());
         ++b) {
        if (model.openRow(rank, b) != kNoRow)
            return false;
    }
    if (model.earliestRef(rank) > now)
        return false;
    model.issueRef(rank, now);
    record(CommandType::REF, now, rank, 0, 0);
    markIssued(now);
    ++stats_.refs;
    return true;
}

bool
MemoryController::tryCloseOneBank(int rank, Cycle now)
{
    if (!busFree(now))
        return false;
    for (BankId b = 0; b < static_cast<BankId>(cfg.geom.banksPerRank());
         ++b) {
        if (model.openRow(rank, b) != kNoRow &&
            model.earliestPre(rank, b) <= now) {
            return tryPre(rank, b, now);
        }
    }
    return false;
}

bool
MemoryController::tryPre(int rank, BankId bank, Cycle now)
{
    if (!busFree(now) || model.openRow(rank, bank) == kNoRow ||
        model.earliestPre(rank, bank) > now) {
        return false;
    }
    model.issuePre(rank, bank, now);
    record(CommandType::PRE, now, rank, bank, 0);
    markIssued(now);
    ++stats_.pres;
    aux(rank, bank).refreshOpen = false;
    return true;
}

bool
MemoryController::tryRefreshAct(int rank, BankId bank, RowId row,
                                Cycle now)
{
    if (!busFree(now) || rankHeld(rank) ||
        model.openRow(rank, bank) != kNoRow ||
        model.earliestAct(rank, bank) > now) {
        return false;
    }
    model.issueAct(rank, bank, row, now);
    record(CommandType::ACT, now, rank, bank, row);
    markIssued(now);
    aux(rank, bank).refreshOpen = true;
    onRowActivation(rank, bank, row, now);
    return true;
}

bool
MemoryController::tryHiraRefreshPair(int rank, BankId bank, RowId first,
                                     RowId second, Cycle now)
{
    const TimingCycles &tcy = model.cycles();
    if (!busFree(now) || slotReservedAt(now + tcy.c1) ||
        slotReservedAt(now + tcy.hiraSpan())) {
        return false;
    }
    if (rankHeld(rank) || model.openRow(rank, bank) != kNoRow ||
        model.earliestHira(rank, bank) > now) {
        return false;
    }
    Cycle second_at = model.issueHira(rank, bank, first, second, now);
    record(CommandType::ACT, now, rank, bank, first, HiraRole::FirstAct);
    record(CommandType::PRE, now + tcy.c1, rank, bank, 0,
           HiraRole::CutPre);
    record(CommandType::ACT, second_at, rank, bank, second,
           HiraRole::SecondAct);
    reserveHiraSlots(now);
    markIssued(now);
    ++stats_.hiraOps;
    aux(rank, bank).refreshOpen = true; // auto-PRE after the second tRAS
    onRowActivation(rank, bank, first, now);
    onRowActivation(rank, bank, second, second_at);
    return true;
}

// --------------------------------------------------------------------
// Per-cycle operation
// --------------------------------------------------------------------

void
MemoryController::tick(Cycle now)
{
    issuedThisCycle = false;
    lastTick = now;
    // Retire expired HiRA bus-slot reservations (at most a handful of
    // future slots; plain index compaction, nothing allocates here).
    if (!reservedSlots.empty()) {
        std::size_t kept = 0;
        for (Cycle c : reservedSlots) {
            if (c >= now)
                reservedSlots[kept++] = c;
        }
        reservedSlots.resize(kept);
    }

    autoPreTick(now);
    if (!issuedThisCycle && !slotReservedAt(now))
        refreshScheme->tick(now);
    if (!issuedThisCycle)
        preventiveTick(now);
    if (!issuedThisCycle)
        scheduleDemand(now);
    nextWakeValid = false; // state changed; nextEvent() recomputes
}

void
MemoryController::autoPreTick(Cycle now)
{
    if (!busFree(now))
        return;
    for (int rank = 0; rank < cfg.geom.ranksPerChannel; ++rank) {
        for (BankId b = 0;
             b < static_cast<BankId>(cfg.geom.banksPerRank()); ++b) {
            BankAux &a = aux(rank, b);
            if (a.refreshOpen && model.openRow(rank, b) != kNoRow &&
                model.earliestPre(rank, b) <= now) {
                tryPre(rank, b, now);
                return;
            }
        }
    }
}

void
MemoryController::preventiveTick(Cycle now)
{
    if (!cfg.paraImmediate || !paraSampler.enabled() || !busFree(now))
        return;
    int nbanks = cfg.geom.ranksPerChannel * cfg.geom.banksPerRank();
    for (int i = 0; i < nbanks; ++i) {
        int idx = (preventiveCursor + i) % nbanks;
        int rank = idx / cfg.geom.banksPerRank();
        BankId bank = static_cast<BankId>(idx % cfg.geom.banksPerRank());
        BankAux &a = aux(rank, bank);
        if (a.preventive.empty() || a.refreshOpen)
            continue;
        if (model.openRow(rank, bank) == kNoRow) {
            if (rankHeld(rank))
                continue;
            RowId victim = a.preventive.front();
            if (model.earliestAct(rank, bank) <= now) {
                a.preventive.pop_front();
                bool ok = tryRefreshAct(rank, bank, victim, now);
                hira_assert(ok);
                preventiveCursor = idx + 1;
                return;
            }
        } else if (!queueHasRowHit(rank, bank,
                                   model.openRow(rank, bank)) &&
                   model.earliestPre(rank, bank) <= now) {
            // Close the bank so the preventive refresh can proceed; row
            // hits in flight drain first.
            tryPre(rank, bank, now);
            preventiveCursor = idx + 1;
            return;
        }
    }
}

Cycle
MemoryController::nextEvent() const
{
    if (!nextWakeValid) {
        nextWake = computeNextEvent(lastTick);
        nextWakeValid = true;
    }
    return nextWake;
}

Cycle
MemoryController::computeNextEvent(Cycle now) const
{
    // An issue can cascade (scheme bookkeeping, freed banks, hysteresis
    // flips): always poll the following cycle.
    if (issuedThisCycle)
        return now + 1;

    // Horizons can never push the wake below the next cycle, so the
    // scan bails as soon as the running minimum reaches that floor.
    const Cycle floor = now + 1;
    Cycle wake = kNeverCycle;
    auto consider = [&wake, floor](Cycle c) {
        if (c < wake)
            wake = c;
        return wake <= floor;
    };

    // Demand queues. Both queues are considered regardless of the
    // write-drain mode: the hysteresis flip is a pure function of the
    // queue depths, which only change at ticks the wake list already
    // covers, so polling at the earliest per-request horizon reproduces
    // the dense flip cycle. Row-hit gating of conflict PREs is ignored
    // here (conservative: wake early, find nothing, sleep again).
    // Requests sharing a bank share a horizon per class (row hit vs
    // row command), so each (bank, class) is computed at most once.
    horizonSeen.assign(bankAux.size(), 0);
    auto considerRequest = [&](const Request &req, bool is_read) {
        int rank = req.da.rank;
        BankId bank = req.da.bank;
        std::size_t idx = bankIndex(rank, bank);
        const BankAux &a = bankAux[idx];
        if (a.refreshOpen)
            return false; // unblocked by the auto-PRE horizon below
        RowId open = model.openRow(rank, bank);
        if (open == req.da.row) {
            std::uint8_t bit = is_read ? 1 : 2;
            if ((horizonSeen[idx] & bit) != 0)
                return false;
            horizonSeen[idx] |= bit;
            return consider(is_read ? model.earliestRd(rank, bank)
                                    : model.earliestWr(rank, bank));
        }
        if ((horizonSeen[idx] & 4) != 0)
            return false;
        horizonSeen[idx] |= 4;
        if (open == kNoRow) {
            if (!rankHeld(rank))
                return consider(model.earliestAct(rank, bank));
            // Held ranks: the holding scheme's horizon polls densely
            // while it drains the rank toward a REF.
            return false;
        }
        return consider(model.earliestPre(rank, bank));
    };
    for (const Request &r : readQ) {
        if (considerRequest(r, true))
            return floor;
    }
    for (const Request &r : writeQ) {
        if (considerRequest(r, false))
            return floor;
    }

    // Completions must reach the LLC at exactly their arrival cycle.
    for (const Completion &c : completions_) {
        if (consider(c.at))
            return floor;
    }

    // Per-bank wake list: auto-PRE of refresh-open rows and queued
    // immediate-PARA victims, each keyed by its timing-state horizon.
    for (int rank = 0; rank < cfg.geom.ranksPerChannel; ++rank) {
        for (BankId b = 0;
             b < static_cast<BankId>(cfg.geom.banksPerRank()); ++b) {
            const BankAux &a = aux(rank, b);
            if (a.refreshOpen) {
                if (model.openRow(rank, b) != kNoRow &&
                    consider(model.earliestPre(rank, b))) {
                    return floor;
                }
                continue;
            }
            if (a.preventive.empty())
                continue;
            if (model.openRow(rank, b) != kNoRow) {
                if (consider(model.earliestPre(rank, b)))
                    return floor;
            } else if (!rankHeld(rank)) {
                if (consider(model.earliestAct(rank, b)))
                    return floor;
            }
        }
    }

    if (consider(refreshScheme->nextEventCycle(now)))
        return floor;

    if (wake == kNeverCycle)
        return kNeverCycle;
    return std::max(wake, floor);
}

bool
MemoryController::queueHasRowHit(int rank, BankId bank, RowId row) const
{
    for (const Request &r : readQ) {
        if (r.da.rank == rank && r.da.bank == bank && r.da.row == row)
            return true;
    }
    if (writeMode) {
        for (const Request &r : writeQ) {
            if (r.da.rank == rank && r.da.bank == bank &&
                r.da.row == row) {
                return true;
            }
        }
    }
    return false;
}

bool
MemoryController::issueColumnIfReady(std::deque<Request> &queue,
                                     bool is_read, Cycle now)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &req = queue[i];
        int rank = req.da.rank;
        BankId bank = req.da.bank;
        if (aux(rank, bank).refreshOpen)
            continue;
        if (model.openRow(rank, bank) != req.da.row)
            continue;
        if (is_read) {
            if (model.earliestRd(rank, bank) > now)
                continue;
            Cycle done = model.issueRd(rank, bank, now);
            record(CommandType::RD, now, rank, bank, req.da.row);
            completions_.push_back({req.tag, req.coreId, done});
            stats_.readLatencySum += done - req.arrival;
            ++stats_.readsServed;
        } else {
            if (model.earliestWr(rank, bank) > now)
                continue;
            model.issueWr(rank, bank, now);
            record(CommandType::WR, now, rank, bank, req.da.row);
            ++stats_.writesServed;
        }
        markIssued(now);
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
    }
    return false;
}

bool
MemoryController::tryDemandAct(const Request &req, Cycle now)
{
    int rank = req.da.rank;
    BankId bank = req.da.bank;
    if (rankHeld(rank) || model.earliestAct(rank, bank) > now)
        return false;

    // Case-1 hook (Fig. 8): give the refresh scheme the chance to hide a
    // refresh under this activation with a HiRA operation.
    RowId hidden =
        refreshScheme->pickHiddenRefresh(rank, bank, req.da.row, now);
    if (hidden != kNoRow) {
        const TimingCycles &tcy = model.cycles();
        if (model.earliestHira(rank, bank) <= now &&
            !slotReservedAt(now + tcy.c1) &&
            !slotReservedAt(now + tcy.hiraSpan())) {
            Cycle second_at =
                model.issueHira(rank, bank, hidden, req.da.row, now);
            record(CommandType::ACT, now, rank, bank, hidden,
                   HiraRole::FirstAct);
            record(CommandType::PRE, now + tcy.c1, rank, bank, 0,
                   HiraRole::CutPre);
            record(CommandType::ACT, second_at, rank, bank, req.da.row,
                   HiraRole::SecondAct);
            reserveHiraSlots(now);
            markIssued(now);
            ++stats_.hiraOps;
            refreshScheme->onHiraIssued(rank, bank, hidden, now);
            onRowActivation(rank, bank, hidden, now);
            onRowActivation(rank, bank, req.da.row, second_at);
            return true;
        }
    }

    model.issueAct(rank, bank, req.da.row, now);
    record(CommandType::ACT, now, rank, bank, req.da.row);
    markIssued(now);
    onRowActivation(rank, bank, req.da.row, now);
    return true;
}

bool
MemoryController::issueRowCommand(std::deque<Request> &queue, Cycle now)
{
    // Oldest-first, one attempt per bank.
    std::vector<bool> seen(bankAux.size(), false);
    for (const Request &req : queue) {
        int rank = req.da.rank;
        BankId bank = req.da.bank;
        std::size_t idx = bankIndex(rank, bank);
        if (seen[idx])
            continue;
        seen[idx] = true;
        if (bankBlocked(rank, bank))
            continue;
        RowId open = model.openRow(rank, bank);
        if (open == req.da.row)
            continue; // row hit waiting on CAS timing
        if (open == kNoRow) {
            if (tryDemandAct(req, now))
                return true;
            continue;
        }
        // Conflict: close the row once its queued hits have drained.
        if (queueHasRowHit(rank, bank, open))
            continue;
        if (model.earliestPre(rank, bank) <= now)
            return tryPre(rank, bank, now);
    }
    return false;
}

void
MemoryController::scheduleDemand(Cycle now)
{
    if (!busFree(now))
        return;

    // Write-drain mode hysteresis; also drain opportunistically when
    // there is no read work at all.
    if (!writeMode) {
        if (writeQ.size() >= static_cast<std::size_t>(cfg.drainHigh) ||
            (readQ.empty() && !writeQ.empty())) {
            writeMode = true;
        }
    } else if (writeQ.size() <= static_cast<std::size_t>(cfg.drainLow) &&
               !readQ.empty()) {
        writeMode = false;
    }
    if (writeMode && writeQ.empty())
        writeMode = false;

    std::deque<Request> &active = writeMode ? writeQ : readQ;
    if (active.empty())
        return;

    // FR-FCFS: ready column accesses first, then oldest-first row
    // commands.
    if (issueColumnIfReady(active, !writeMode, now))
        return;
    issueRowCommand(active, now);
}

} // namespace hira
