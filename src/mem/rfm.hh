/**
 * @file
 * RFM: DDR5 refresh management (JESD79-5 section 4.7) as a refresh
 * scheme.
 *
 * The DRAM keeps a per-bank Rolling Accumulated ACT (RAA) counter; when
 * it crosses the RAA Initial Management Threshold (RAAIMT) the
 * controller owes the bank an RFM command, during which the device
 * refreshes the rows most at risk — modeled here as targeted refreshes
 * of the last activated row's physical neighbors, issued through the
 * controller's refresh-open machinery (ACT, tRAS restore, auto-PRE),
 * which blocks the bank exactly the way tRFM does. Periodic refresh
 * stays on conventional rank-level REF via an internal BaselineRefresh
 * engine, mirrored into this scheme's RefreshStats.
 */

#ifndef HIRA_MEM_RFM_HH
#define HIRA_MEM_RFM_HH

#include <deque>
#include <memory>
#include <vector>

#include "mem/refresh.hh"

namespace hira {

/** RFM configuration. */
struct RfmConfig
{
    /** RAA Initial Management Threshold: ACTs per bank per RFM. */
    int raaimt = 32;
    /** Victims queued per bank awaiting their RFM refresh slot. */
    int queueCap = 8;
};

/** The RFM refresh scheme for one memory controller (channel). */
class RfmRefresh final : public RefreshScheme
{
  public:
    explicit RfmRefresh(const RfmConfig &cfg);

    void attach(MemoryController *ctrl) override;
    void attachMetrics(const MetricScope &scope) override;
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void onActivate(int rank, BankId bank, RowId row, Cycle now) override;

    const RfmConfig &config() const { return cfg; }
    /** Stats of the internal baseline REF engine (test hook). */
    const RefreshStats &baselineStats() const { return baseline_->stats(); }
    /** Victims currently queued across all banks (test hook). */
    std::uint64_t pendingVictims() const { return pendingTotal; }

  private:
    bool drain(Cycle now);

    RfmConfig cfg;
    std::unique_ptr<BaselineRefresh> baseline_;
    std::vector<int> raa;                    //!< per (rank, bank)
    std::vector<std::deque<RowId>> victims;  //!< per (rank, bank)
    std::uint64_t pendingTotal = 0;
    int bankCursor = 0;

    Counter *mRfmTriggers = nullptr; //!< RAAIMT crossings (null when off)
};

} // namespace hira

#endif // HIRA_MEM_RFM_HH
