/**
 * @file
 * Memory requests and completions exchanged between the LLC / cores and
 * the memory controllers.
 */

#ifndef HIRA_MEM_REQUEST_HH
#define HIRA_MEM_REQUEST_HH

#include "common/types.hh"
#include "dram/addrmap.hh"

namespace hira {

/** Demand request kind. */
enum class MemType
{
    Read,
    Write,
};

/** One demand memory request (64-byte line granularity). */
struct Request
{
    MemType type = MemType::Read;
    Addr addr = 0;          //!< line-aligned physical address
    DramAddr da;            //!< decoded DRAM coordinates
    int coreId = -1;        //!< requesting core (-1: writeback)
    std::uint64_t tag = 0;  //!< issuer-meaningful identifier
    Cycle arrival = 0;      //!< cycle the request entered the controller
};

/** Completion notification for a read. */
struct Completion
{
    std::uint64_t tag = 0;
    int coreId = -1;
    Cycle at = 0; //!< cycle the data is fully returned
};

} // namespace hira

#endif // HIRA_MEM_REQUEST_HH
