/**
 * @file
 * Refresh scheme interface and the two non-HiRA schemes: NoRefresh (the
 * ideal upper bound of Fig. 9a) and BaselineRefresh (rank-level REF
 * every tREFI, as in deployed DDR4 controllers).
 */

#ifndef HIRA_MEM_REFRESH_HH
#define HIRA_MEM_REFRESH_HH

#include <vector>

#include "common/metrics.hh"
#include "common/types.hh"
#include "dram/geometry.hh"

namespace hira {

class MemoryController;

/** Refresh statistics every scheme reports. */
struct RefreshStats
{
    std::uint64_t refCommands = 0;       //!< rank-level REF commands
    std::uint64_t rowRefreshes = 0;      //!< per-row refresh operations
    std::uint64_t accessPaired = 0;      //!< hidden under a demand ACT
    std::uint64_t refreshPaired = 0;     //!< two refreshes per HiRA op
    std::uint64_t standalone = 0;        //!< plain ACT+PRE refreshes
    std::uint64_t deadlineMisses = 0;    //!< executed past their deadline
    std::uint64_t preventiveGenerated = 0;
    /** Preventive victims rejected by a full PR-FIFO (never refreshed). */
    std::uint64_t preventiveDropped = 0;
};

/**
 * A refresh scheme plugged into one memory controller. The controller
 * calls tick() first each cycle (refresh has priority over demand
 * scheduling when deadlines require it) and offers the Case-1 hook
 * before every demand activation.
 */
class RefreshScheme
{
  public:
    virtual ~RefreshScheme() = default;

    /** Called once after the controller is constructed. */
    virtual void attach(MemoryController *controller) { ctrl = controller; }

    /**
     * Offer the scheme a metrics scope (e.g. "ctrl0.scheme."), called
     * right after attach(). Schemes register what they want and keep
     * the returned pointers; the default registers nothing (the
     * RefreshStats every scheme reports are mirrored into the registry
     * by System::metricsSnapshot() without scheme cooperation).
     * Metrics must only observe — scheme behavior must be identical
     * with and without a live scope.
     */
    virtual void attachMetrics(const MetricScope &scope) { (void)scope; }

    /**
     * Per-cycle refresh work. May issue at most one command through the
     * controller's try* primitives.
     */
    virtual void tick(Cycle now) = 0;

    /**
     * Case-1 hook (Fig. 8): the controller is about to activate
     * @p row_a on (rank, bank) for a demand access. Return a row whose
     * refresh should ride along as HiRA's first ACT, or kNoRow.
     */
    virtual RowId
    pickHiddenRefresh(int rank, BankId bank, RowId row_a, Cycle now)
    {
        (void)rank; (void)bank; (void)row_a; (void)now;
        return kNoRow;
    }

    /** The proposed HiRA op was issued; commit the bookkeeping. */
    virtual void
    onHiraIssued(int rank, BankId bank, RowId refresh_row, Cycle now)
    {
        (void)rank; (void)bank; (void)refresh_row; (void)now;
    }

    /** Notification of every row activation (for PreventiveRC). */
    virtual void
    onActivate(int rank, BankId bank, RowId row, Cycle now)
    {
        (void)rank; (void)bank; (void)row; (void)now;
    }

    /**
     * Event-engine horizon: a conservative lower bound on the next
     * cycle at which tick() could observably act or change state, given
     * no intervening commands on the channel (any issue wakes the
     * controller for the following cycle anyway). Returning a cycle
     * that is too *early* only costs a wasted poll; returning one that
     * is too *late* breaks the bitwise cycle/event equivalence, so when
     * in doubt return now + 1 (the base-class default, which keeps
     * unknown schemes correct by degrading them to dense ticking).
     * kNeverCycle means "nothing scheduled".
     */
    virtual Cycle
    nextEventCycle(Cycle now) const
    {
        return now + 1;
    }

    const RefreshStats &stats() const { return stats_; }

  protected:
    MemoryController *ctrl = nullptr;
    RefreshStats stats_;
};

/** The ideal No Refresh configuration (Fig. 9a's normalization base). */
class NoRefresh final : public RefreshScheme
{
  public:
    void tick(Cycle) override {}
    Cycle nextEventCycle(Cycle) const override { return kNeverCycle; }
};

/**
 * Conventional rank-level refresh: one all-bank REF per rank every
 * tREFI, rank offsets staggered; blocks the rank for tRFC.
 *
 * With @p max_postpone > 0 it behaves like Elastic Refresh [161] within
 * the DDR4 postponement rules: a due REF is deferred while demand reads
 * are queued, up to max_postpone (the standard allows 8) outstanding
 * REFs, after which it is forced.
 */
class BaselineRefresh final : public RefreshScheme
{
  public:
    explicit BaselineRefresh(int max_postpone = 0)
        : maxPostpone(max_postpone)
    {
    }

    void attach(MemoryController *ctrl) override;
    // tick/nextEventCycle are defined inline in mem/controller_kernel.hh
    // (they need the complete MemoryController, and the specialized
    // kernel inlines them into tickAs<BaselineRefresh>).
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;

    /** Currently postponed REFs on the rank (test hook). */
    int debtOf(int rank) const { return debt[rank]; }

  private:
    int maxPostpone;
    std::vector<Cycle> nextRefAt; //!< per rank
    std::vector<int> debt;        //!< postponed REFs per rank
    std::vector<bool> closing;    //!< draining banks ahead of a due REF
};

} // namespace hira

#endif // HIRA_MEM_REFRESH_HH
