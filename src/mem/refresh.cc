#include "mem/refresh.hh"

#include "common/logging.hh"
#include "mem/controller.hh"

namespace hira {

void
BaselineRefresh::attach(MemoryController *controller)
{
    RefreshScheme::attach(controller);
    const Geometry &geom = controller->geometry();
    Cycle refi = controller->tc().refi;
    nextRefAt.resize(static_cast<std::size_t>(geom.ranksPerChannel));
    debt.assign(static_cast<std::size_t>(geom.ranksPerChannel), 0);
    closing.assign(static_cast<std::size_t>(geom.ranksPerChannel), false);
    for (int r = 0; r < geom.ranksPerChannel; ++r) {
        // Stagger rank refresh phases so tRFC windows do not align.
        nextRefAt[static_cast<std::size_t>(r)] =
            refi * static_cast<Cycle>(r + 1) /
            static_cast<Cycle>(geom.ranksPerChannel);
    }
}

void
BaselineRefresh::tick(Cycle now)
{
    const Geometry &geom = ctrl->geometry();
    for (int r = 0; r < geom.ranksPerChannel; ++r) {
        std::size_t ri = static_cast<std::size_t>(r);
        // Accrue due REFs into the debt counter.
        while (now >= nextRefAt[ri]) {
            ++debt[ri];
            nextRefAt[ri] += ctrl->tc().refi;
        }
        if (debt[ri] == 0) {
            if (closing[ri]) {
                ctrl->setRankHold(r, false);
                closing[ri] = false;
            }
            continue;
        }

        // Elastic postponement [161]: while demand reads are queued and
        // the debt is within the standard's bound, defer the REF.
        bool must = debt[ri] > maxPostpone;
        if (!must && ctrl->queuedReads() > 0 && !closing[ri])
            continue;

        // REF is due: hold new activations, drain open banks, issue.
        if (!closing[ri]) {
            closing[ri] = true;
            ctrl->setRankHold(r, true);
        }
        if (ctrl->tryRef(r, now)) {
            --debt[ri];
            closing[ri] = false;
            ctrl->setRankHold(r, false);
            ++stats_.refCommands;
            return;
        }
        if (ctrl->tryCloseOneBank(r, now))
            return;
    }
}

Cycle
BaselineRefresh::nextEventCycle(Cycle now) const
{
    Cycle wake = kNeverCycle;
    const Geometry &geom = ctrl->geometry();
    for (int r = 0; r < geom.ranksPerChannel; ++r) {
        std::size_t ri = static_cast<std::size_t>(r);
        if (closing[ri])
            return now + 1; // actively draining banks toward a REF
        if (debt[ri] > 0) {
            // After an un-gated tick, a standing debt means the REF is
            // being postponed (reads queued, within the bound). The
            // postponement can end two ways: the read queue drains —
            // an issue event, after which the controller polls densely
            // anyway — or the debt crosses the bound at the next
            // accrual. Ticks gated by a reserved HiRA bus slot can
            // also leave debt standing with an empty read queue; then
            // the scheme wants to act as soon as the gate lifts.
            bool must = debt[ri] > maxPostpone;
            if (must || ctrl->queuedReads() == 0)
                return now + 1;
        }
        if (nextRefAt[ri] < wake)
            wake = nextRefAt[ri]; // next debt accrual instant
    }
    return wake;
}

} // namespace hira
