#include "mem/refresh.hh"

#include "common/logging.hh"
#include "mem/controller.hh"

namespace hira {

void
BaselineRefresh::attach(MemoryController *controller)
{
    RefreshScheme::attach(controller);
    const Geometry &geom = controller->geometry();
    Cycle refi = controller->tc().refi;
    nextRefAt.resize(static_cast<std::size_t>(geom.ranksPerChannel));
    debt.assign(static_cast<std::size_t>(geom.ranksPerChannel), 0);
    closing.assign(static_cast<std::size_t>(geom.ranksPerChannel), false);
    for (int r = 0; r < geom.ranksPerChannel; ++r) {
        // Stagger rank refresh phases so tRFC windows do not align.
        nextRefAt[static_cast<std::size_t>(r)] =
            refi * static_cast<Cycle>(r + 1) /
            static_cast<Cycle>(geom.ranksPerChannel);
    }
}

// BaselineRefresh::tick and ::nextEventCycle are defined inline in
// mem/controller_kernel.hh so tickAs<BaselineRefresh> can inline them.
// This out-of-line attach() anchors the class's vtable emission here.

} // namespace hira
