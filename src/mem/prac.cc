#include "mem/prac.hh"

#include "common/logging.hh"
#include "mem/controller.hh"

namespace hira {

PracRefresh::PracRefresh(const PracConfig &config) : cfg(config)
{
    hira_assert(cfg.threshold > 0);
    hira_assert(cfg.slackRc >= 0);
    baseline_ = std::make_unique<BaselineRefresh>();
}

void
PracRefresh::attach(MemoryController *controller)
{
    RefreshScheme::attach(controller);
    const Geometry &geom = controller->geometry();
    slackCycles = static_cast<Cycle>(cfg.slackRc) * controller->tc().rc;
    std::size_t nbanks = static_cast<std::size_t>(geom.ranksPerChannel) *
                         static_cast<std::size_t>(geom.banksPerRank());
    counters.assign(nbanks, {});
    tables.clear();
    rowOf.clear();
    for (int r = 0; r < geom.ranksPerChannel; ++r) {
        // Same shape as HiRA-MC's §6 sizing: up to 4 queued targeted
        // refreshes per bank.
        tables.emplace_back(4 *
                            static_cast<std::size_t>(geom.banksPerRank()));
        rowOf.emplace_back();
    }
    rankCursor = 0;
    baseline_->attach(controller);
}

void
PracRefresh::attachMetrics(const MetricScope &scope)
{
    mPracTriggers = scope.counter("prac_triggers");
    mTableDepth = scope.histogram(
        "table_depth", 0.0,
        static_cast<double>(tables.empty() ? 64 : tables[0].capacity() + 1),
        16);
}

void
PracRefresh::onActivate(int rank, BankId bank, RowId row, Cycle now)
{
    std::size_t idx =
        static_cast<std::size_t>(rank * ctrl->geometry().banksPerRank()) +
        bank;
    int &c = counters[idx][row];
    if (++c < cfg.threshold)
        return;
    // Threshold crossed: back off the counter and queue targeted
    // refreshes for both physical neighbors.
    c = 0;
    count(mPracTriggers);
    RefreshTable &table = tables[static_cast<std::size_t>(rank)];
    RowId rows = ctrl->geometry().rowsPerBank;
    RowId neighbors[2] = {row > 0 ? row - 1 : kNoRow,
                          row + 1 < rows ? row + 1 : kNoRow};
    for (RowId victim : neighbors) {
        if (victim == kNoRow)
            continue;
        ++stats_.preventiveGenerated;
        if (table.size() >= table.capacity()) {
            // RefreshTable::insert stores past capacity (overflow
            // accounting for force-drain callers); PRAC instead models
            // a hard hardware bound, so guard before inserting and
            // count the never-refreshed victim as dropped.
            ++stats_.preventiveDropped;
            continue;
        }
        std::uint64_t id = 0;
        table.insert(now + slackCycles, rank, bank,
                     RefreshType::Preventive, &id);
        rowOf[static_cast<std::size_t>(rank)][id] = victim;
        observe(mTableDepth, static_cast<double>(table.size()));
    }
}

bool
PracRefresh::drain(Cycle now)
{
    const Geometry &geom = ctrl->geometry();
    int nranks = geom.ranksPerChannel;
    for (int i = 0; i < nranks; ++i) {
        int rank = (rankCursor + i) % nranks;
        RefreshTable &table = tables[static_cast<std::size_t>(rank)];
        if (table.empty())
            continue;
        // Earliest-deadline entry whose bank is actionable (skipping
        // blocked banks avoids head-of-line blocking behind an
        // in-flight refresh's auto-PRE).
        const RefreshEntry *e = nullptr;
        for (const RefreshEntry &cand : table.all()) {
            if (ctrl->bankBlocked(rank, cand.bank))
                continue;
            if (e == nullptr || cand.deadline < e->deadline)
                e = &cand;
        }
        if (e == nullptr)
            continue;
        // Copy the entry: the refresh ACT below re-enters onActivate,
        // which can insert into (and reallocate) this same table.
        RefreshEntry entry = *e;
        if (ctrl->timing().openRow(rank, entry.bank) != kNoRow) {
            if (ctrl->tryPre(rank, entry.bank, now)) {
                rankCursor = rank + 1;
                return true;
            }
            continue;
        }
        auto &rows = rowOf[static_cast<std::size_t>(rank)];
        RowId victim = rows.at(entry.id);
        if (ctrl->tryRefreshAct(rank, entry.bank, victim, now)) {
            if (now > entry.deadline)
                ++stats_.deadlineMisses;
            ++stats_.rowRefreshes;
            ++stats_.standalone;
            bool removed = table.remove(entry.id);
            hira_assert(removed);
            rows.erase(entry.id);
            rankCursor = rank + 1;
            return true;
        }
    }
    return false;
}

void
PracRefresh::tick(Cycle now)
{
    baseline_->tick(now);
    // Mirror the internal REF engine so System::result() needs no
    // scheme-specific aggregation.
    stats_.refCommands = baseline_->stats().refCommands;
    if (!ctrl->busFree(now))
        return;
    drain(now);
}

Cycle
PracRefresh::nextEventCycle(Cycle now) const
{
    // Queued targeted refreshes drain against per-bank timing gates;
    // poll densely while any are queued (tables cap at 4 per bank, so
    // the dense window is short). Counters only change via onActivate,
    // i.e. on issues, which force a poll anyway.
    for (const RefreshTable &table : tables) {
        if (!table.empty())
            return now + 1;
    }
    return baseline_->nextEventCycle(now);
}

} // namespace hira
