/**
 * @file
 * Graphene-TRR: Misra-Gries frequent-item tracking with periodic
 * target-row-refresh, as a refresh scheme.
 *
 * Each bank owns a k-entry Misra-Gries summary of its activation
 * stream (Graphene, MICRO 2020): an activation of a tracked row bumps
 * its counter; an untracked row takes a free slot, or — when the table
 * is full — decrements every counter (zeroed entries free their slot).
 * Once per tREFI, per rank, the tracker's hottest row at or above the
 * threshold gets its two physical neighbors queued for targeted refresh
 * (the TRR action) and its counter reset. Victims drain through the
 * controller's refresh-open machinery; the trackers reset every tREFW
 * window. Periodic refresh stays on conventional REF via an internal
 * BaselineRefresh engine, mirrored into this scheme's RefreshStats.
 */

#ifndef HIRA_MEM_GRAPHENE_TRR_HH
#define HIRA_MEM_GRAPHENE_TRR_HH

#include <deque>
#include <memory>
#include <vector>

#include "mem/refresh.hh"

namespace hira {

/** Graphene-TRR configuration. */
struct GrapheneConfig
{
    /** Misra-Gries tracker entries per bank. */
    int trackerSize = 16;
    /** Minimum tracked count before a TRR refresh targets the row. */
    int threshold = 128;
    /** Victims queued per bank awaiting their refresh slot. */
    int queueCap = 8;
};

/** The Graphene-TRR refresh scheme for one memory controller. */
class GrapheneTrr final : public RefreshScheme
{
  public:
    explicit GrapheneTrr(const GrapheneConfig &cfg);

    void attach(MemoryController *ctrl) override;
    void attachMetrics(const MetricScope &scope) override;
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void onActivate(int rank, BankId bank, RowId row, Cycle now) override;

    const GrapheneConfig &config() const { return cfg; }
    /** Stats of the internal baseline REF engine (test hook). */
    const RefreshStats &baselineStats() const { return baseline_->stats(); }
    /** Victims currently queued across all banks (test hook). */
    std::uint64_t pendingVictims() const { return pendingTotal; }

  private:
    struct Tracked
    {
        RowId row;
        int hits;
    };

    void trrSelect(int rank, Cycle now);
    bool drain(Cycle now);

    GrapheneConfig cfg;
    std::unique_ptr<BaselineRefresh> baseline_;
    std::vector<std::vector<Tracked>> trackers;  //!< per (rank, bank)
    std::vector<std::deque<RowId>> victims;      //!< per (rank, bank)
    std::vector<Cycle> nextTrrAt;                //!< per rank
    std::uint64_t pendingTotal = 0;
    Cycle windowCycles = 0;
    Cycle nextWindowReset = 0;
    int bankCursor = 0;

    Counter *mTrrSelections = nullptr;    //!< TRR victims queued
    HistogramMetric *mTrackerDepth = nullptr; //!< entries at selection
};

} // namespace hira

#endif // HIRA_MEM_GRAPHENE_TRR_HH
