/**
 * @file
 * PRAC: per-row activation counting (the DDR5 Per Row Activation
 * Counter direction) as a refresh scheme.
 *
 * Every activation increments an in-DRAM counter for the activated row;
 * when a row's count crosses the threshold the controller performs a
 * targeted refresh of the row's physical neighbors before they can
 * disturb-fail, then resets the counter (back-off). Queued targeted
 * refreshes live in the existing RefreshTable with a slack deadline and
 * drain earliest-deadline-first through the controller's refresh-open
 * machinery. Periodic refresh stays on conventional REF via an internal
 * BaselineRefresh engine, mirrored into this scheme's RefreshStats.
 */

#ifndef HIRA_MEM_PRAC_HH
#define HIRA_MEM_PRAC_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/refresh_table.hh"
#include "mem/refresh.hh"

namespace hira {

/** PRAC configuration. */
struct PracConfig
{
    /** Activations before a row's neighbors get a targeted refresh. */
    int threshold = 256;
    /** Targeted-refresh deadline slack in units of tRC. */
    int slackRc = 4;
};

/** The PRAC refresh scheme for one memory controller (channel). */
class PracRefresh final : public RefreshScheme
{
  public:
    explicit PracRefresh(const PracConfig &cfg);

    void attach(MemoryController *ctrl) override;
    void attachMetrics(const MetricScope &scope) override;
    void tick(Cycle now) override;
    Cycle nextEventCycle(Cycle now) const override;
    void onActivate(int rank, BankId bank, RowId row, Cycle now) override;

    const PracConfig &config() const { return cfg; }
    /** Stats of the internal baseline REF engine (test hook). */
    const RefreshStats &baselineStats() const { return baseline_->stats(); }
    /** Queued targeted refreshes in one rank's table (test hook). */
    const RefreshTable &table(int rank) const
    {
        return tables[static_cast<std::size_t>(rank)];
    }

  private:
    bool drain(Cycle now);

    PracConfig cfg;
    std::unique_ptr<BaselineRefresh> baseline_;
    /** Per-(rank, bank) activation counters, keyed by row. */
    std::vector<std::unordered_map<RowId, int>> counters;
    std::vector<RefreshTable> tables;                //!< per rank
    /** Victim row per queued table entry id, per rank. */
    std::vector<std::unordered_map<std::uint64_t, RowId>> rowOf;
    Cycle slackCycles = 0;
    int rankCursor = 0;

    Counter *mPracTriggers = nullptr;      //!< threshold crossings
    HistogramMetric *mTableDepth = nullptr; //!< occupancy after insert
};

} // namespace hira

#endif // HIRA_MEM_PRAC_HH
