#include "mem/graphene_trr.hh"

#include "common/logging.hh"
#include "mem/controller.hh"

namespace hira {

GrapheneTrr::GrapheneTrr(const GrapheneConfig &config) : cfg(config)
{
    hira_assert(cfg.trackerSize > 0);
    hira_assert(cfg.threshold > 0);
    hira_assert(cfg.queueCap > 0);
    baseline_ = std::make_unique<BaselineRefresh>();
}

void
GrapheneTrr::attach(MemoryController *controller)
{
    RefreshScheme::attach(controller);
    const Geometry &geom = controller->geometry();
    const TimingCycles &tcy = controller->tc();
    std::size_t nbanks = static_cast<std::size_t>(geom.ranksPerChannel) *
                         static_cast<std::size_t>(geom.banksPerRank());
    trackers.assign(nbanks, {});
    for (auto &t : trackers)
        t.reserve(static_cast<std::size_t>(cfg.trackerSize));
    victims.assign(nbanks, {});
    pendingTotal = 0;
    bankCursor = 0;
    // tREFW = 8192 tREFI intervals (as in HiraMc's refptr window).
    windowCycles = tcy.refi * 8192;
    nextWindowReset = windowCycles;
    // TRR selection once per tREFI per rank, staggered like the
    // baseline REF schedule so multi-rank channels don't burst.
    nextTrrAt.assign(static_cast<std::size_t>(geom.ranksPerChannel), 0);
    for (int r = 0; r < geom.ranksPerChannel; ++r) {
        nextTrrAt[static_cast<std::size_t>(r)] =
            tcy.refi * static_cast<Cycle>(r + 1) /
            static_cast<Cycle>(geom.ranksPerChannel);
    }
    baseline_->attach(controller);
}

void
GrapheneTrr::attachMetrics(const MetricScope &scope)
{
    mTrrSelections = scope.counter("trr_selections");
    mTrackerDepth = scope.histogram(
        "tracker_depth", 0.0, static_cast<double>(cfg.trackerSize + 1),
        static_cast<std::size_t>(cfg.trackerSize + 1));
}

void
GrapheneTrr::onActivate(int rank, BankId bank, RowId row, Cycle now)
{
    (void)now;
    std::size_t idx =
        static_cast<std::size_t>(rank * ctrl->geometry().banksPerRank()) +
        bank;
    std::vector<Tracked> &t = trackers[idx];
    for (Tracked &e : t) {
        if (e.row == row) {
            ++e.hits;
            return;
        }
    }
    if (t.size() < static_cast<std::size_t>(cfg.trackerSize)) {
        t.push_back({row, 1});
        return;
    }
    // Misra-Gries spill: decrement every counter; zeroed entries free
    // their slot for later rows. The untracked activation is absorbed.
    std::size_t kept = 0;
    for (Tracked &e : t) {
        if (--e.hits > 0)
            t[kept++] = e;
    }
    t.resize(kept);
}

void
GrapheneTrr::trrSelect(int rank, Cycle now)
{
    // Hottest tracked row at or above the threshold across the rank's
    // banks; deterministic tie-break on (bank, then tracker order —
    // itself deterministic, insertion-ordered).
    const Geometry &geom = ctrl->geometry();
    int banks = geom.banksPerRank();
    Tracked *best = nullptr;
    std::size_t bestIdx = 0;
    for (BankId bank = 0; bank < static_cast<BankId>(banks); ++bank) {
        std::size_t idx = static_cast<std::size_t>(rank * banks) + bank;
        for (Tracked &e : trackers[idx]) {
            if (e.hits < cfg.threshold)
                continue;
            if (best == nullptr || e.hits > best->hits) {
                best = &e;
                bestIdx = idx;
            }
        }
    }
    if (best == nullptr)
        return;
    observe(mTrackerDepth,
            static_cast<double>(trackers[bestIdx].size()));
    RowId row = best->row;
    best->hits = 0; // refreshed neighbors: restart the count
    RowId rows = geom.rowsPerBank;
    RowId neighbors[2] = {row > 0 ? row - 1 : kNoRow,
                          row + 1 < rows ? row + 1 : kNoRow};
    std::deque<RowId> &q = victims[bestIdx];
    for (RowId victim : neighbors) {
        if (victim == kNoRow)
            continue;
        ++stats_.preventiveGenerated;
        count(mTrrSelections);
        if (q.size() >= static_cast<std::size_t>(cfg.queueCap)) {
            ++stats_.preventiveDropped;
            continue;
        }
        q.push_back(victim);
        ++pendingTotal;
    }
    (void)now;
}

bool
GrapheneTrr::drain(Cycle now)
{
    if (pendingTotal == 0)
        return false;
    const Geometry &geom = ctrl->geometry();
    int nbanks = geom.ranksPerChannel * geom.banksPerRank();
    for (int i = 0; i < nbanks; ++i) {
        int idx = (bankCursor + i) % nbanks;
        int rank = idx / geom.banksPerRank();
        BankId bank = static_cast<BankId>(idx % geom.banksPerRank());
        std::deque<RowId> &q = victims[static_cast<std::size_t>(idx)];
        if (q.empty() || ctrl->bankBlocked(rank, bank))
            continue;
        if (ctrl->timing().openRow(rank, bank) != kNoRow) {
            if (ctrl->tryPre(rank, bank, now)) {
                bankCursor = idx + 1;
                return true;
            }
            continue;
        }
        if (ctrl->tryRefreshAct(rank, bank, q.front(), now)) {
            q.pop_front();
            --pendingTotal;
            ++stats_.rowRefreshes;
            ++stats_.standalone;
            bankCursor = idx + 1;
            return true;
        }
    }
    return false;
}

void
GrapheneTrr::tick(Cycle now)
{
    // Time-triggered state changes first, un-gated by the bus: both
    // engines must apply them at exactly this tick. The while loops
    // catch up across ticks suppressed by an earlier issue or a
    // reserved HiRA bus slot.
    while (now >= nextWindowReset) {
        for (auto &t : trackers)
            t.clear();
        nextWindowReset += windowCycles;
    }
    for (std::size_t r = 0; r < nextTrrAt.size(); ++r) {
        while (now >= nextTrrAt[r]) {
            trrSelect(static_cast<int>(r), now);
            nextTrrAt[r] += ctrl->tc().refi;
        }
    }

    baseline_->tick(now);
    // Mirror the internal REF engine so System::result() needs no
    // scheme-specific aggregation.
    stats_.refCommands = baseline_->stats().refCommands;
    if (!ctrl->busFree(now))
        return;
    drain(now);
}

Cycle
GrapheneTrr::nextEventCycle(Cycle now) const
{
    // Queued victims drain against per-bank timing gates: poll densely
    // while any are pending. Otherwise the next state change is the
    // earliest of the per-rank TRR selection instants, the tracker
    // window reset, and the baseline REF engine (tracker counters only
    // change via onActivate, i.e. on issues, which force a poll).
    if (pendingTotal > 0)
        return now + 1;
    Cycle wake = nextWindowReset;
    for (Cycle t : nextTrrAt) {
        if (t < wake)
            wake = t;
    }
    Cycle b = baseline_->nextEventCycle(now);
    if (b < wake)
        wake = b;
    return wake;
}

} // namespace hira
