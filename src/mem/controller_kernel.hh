/**
 * @file
 * The memory controller's templated hot path — the per-scheme
 * specialized simulation kernels (see src/sim/kernel.hh for the
 * dispatch layer and the generic-oracle contract).
 *
 * Everything here is the body of functions declared in controller.hh,
 * transposed over a scheme type parameter S: SchemeOps<S> turns each
 * refresh-scheme hook into either a plain virtual call (S ==
 * RefreshScheme, the generic oracle) or a devirtualized qualified call
 * on the concrete final class, which the per-cycle loop can then
 * inline. The non-template entry points in controller.cc forward to
 * the S = RefreshScheme instantiation, so every existing caller (unit
 * tests, schemes invoking controller primitives) keeps the oracle's
 * exact behavior.
 *
 * This header is included at the bottom of controller.hh — include
 * either header and you get both; the split only keeps the class
 * declaration readable.
 */

#ifndef HIRA_MEM_CONTROLLER_KERNEL_HH
#define HIRA_MEM_CONTROLLER_KERNEL_HH

#include <algorithm>
#include <type_traits>

#include "mem/controller.hh"

namespace hira {

/**
 * Dispatch shim for one refresh-scheme hook set. The generic oracle
 * (S = RefreshScheme) uses ordinary virtual dispatch; a concrete S
 * resolves every hook at compile time with a qualified call, which is
 * non-virtual and inlinable (the scheme classes are final, so the
 * static type is the dynamic type — System's constructor pins the
 * cast's soundness once per run). Hooks a scheme does not override
 * resolve to the inherited RefreshScheme defaults, exactly as the
 * vtable would.
 */
template <class S>
struct SchemeOps
{
    static constexpr bool kGeneric = std::is_same_v<S, RefreshScheme>;

    static void
    tick(RefreshScheme &s, Cycle now)
    {
        if constexpr (kGeneric)
            s.tick(now);
        else
            static_cast<S &>(s).S::tick(now);
    }

    static RowId
    pickHiddenRefresh(RefreshScheme &s, int rank, BankId bank,
                      RowId row_a, Cycle now)
    {
        if constexpr (kGeneric)
            return s.pickHiddenRefresh(rank, bank, row_a, now);
        else
            return static_cast<S &>(s).S::pickHiddenRefresh(rank, bank,
                                                            row_a, now);
    }

    static void
    onHiraIssued(RefreshScheme &s, int rank, BankId bank,
                 RowId refresh_row, Cycle now)
    {
        if constexpr (kGeneric)
            s.onHiraIssued(rank, bank, refresh_row, now);
        else
            static_cast<S &>(s).S::onHiraIssued(rank, bank, refresh_row,
                                                now);
    }

    static void
    onActivate(RefreshScheme &s, int rank, BankId bank, RowId row,
               Cycle now)
    {
        if constexpr (kGeneric)
            s.onActivate(rank, bank, row, now);
        else
            static_cast<S &>(s).S::onActivate(rank, bank, row, now);
    }

    static Cycle
    nextEventCycle(const RefreshScheme &s, Cycle now)
    {
        if constexpr (kGeneric)
            return s.nextEventCycle(now);
        else
            return static_cast<const S &>(s).S::nextEventCycle(now);
    }
};

// --------------------------------------------------------------------
// BaselineRefresh per-cycle bodies. Declared in refresh.hh; defined
// here (not refresh.cc) because they need the complete MemoryController
// and because defining them inline lets tickAs<BaselineRefresh> /
// computeNextEventAs<BaselineRefresh> fold them into the kernel.
// --------------------------------------------------------------------

inline void
BaselineRefresh::tick(Cycle now)
{
    const Geometry &geom = ctrl->geometry();
    for (int r = 0; r < geom.ranksPerChannel; ++r) {
        std::size_t ri = static_cast<std::size_t>(r);
        // Accrue due REFs into the debt counter.
        while (now >= nextRefAt[ri]) {
            ++debt[ri];
            nextRefAt[ri] += ctrl->tc().refi;
        }
        if (debt[ri] == 0) {
            if (closing[ri]) {
                ctrl->setRankHold(r, false);
                closing[ri] = false;
            }
            continue;
        }

        // Elastic postponement [161]: while demand reads are queued and
        // the debt is within the standard's bound, defer the REF.
        bool must = debt[ri] > maxPostpone;
        if (!must && ctrl->queuedReads() > 0 && !closing[ri])
            continue;

        // REF is due: hold new activations, drain open banks, issue.
        if (!closing[ri]) {
            closing[ri] = true;
            ctrl->setRankHold(r, true);
        }
        if (ctrl->tryRef(r, now)) {
            --debt[ri];
            closing[ri] = false;
            ctrl->setRankHold(r, false);
            ++stats_.refCommands;
            return;
        }
        if (ctrl->tryCloseOneBank(r, now))
            return;
    }
}

inline Cycle
BaselineRefresh::nextEventCycle(Cycle now) const
{
    Cycle wake = kNeverCycle;
    const Geometry &geom = ctrl->geometry();
    for (int r = 0; r < geom.ranksPerChannel; ++r) {
        std::size_t ri = static_cast<std::size_t>(r);
        if (closing[ri])
            return now + 1; // actively draining banks toward a REF
        if (debt[ri] > 0) {
            // After an un-gated tick, a standing debt means the REF is
            // being postponed (reads queued, within the bound). The
            // postponement can end two ways: the read queue drains —
            // an issue event, after which the controller polls densely
            // anyway — or the debt crosses the bound at the next
            // accrual. Ticks gated by a reserved HiRA bus slot can
            // also leave debt standing with an empty read queue; then
            // the scheme wants to act as soon as the gate lifts.
            bool must = debt[ri] > maxPostpone;
            if (must || ctrl->queuedReads() == 0)
                return now + 1;
        }
        if (nextRefAt[ri] < wake)
            wake = nextRefAt[ri]; // next debt accrual instant
    }
    return wake;
}

// --------------------------------------------------------------------
// MemoryController templated hot path. Each body is the former
// non-template implementation with every scheme touch routed through
// SchemeOps<S>; the S = RefreshScheme instantiation IS the legacy
// behavior (controller.cc's tick()/nextEvent() forward to it), so the
// differential suite compares the same code shape under two dispatch
// disciplines.
// --------------------------------------------------------------------

template <class S>
void
MemoryController::onRowActivationAs(int rank, BankId bank, RowId row,
                                    Cycle now)
{
    ++stats_.acts;
    SchemeOps<S>::onActivate(*refreshScheme, rank, bank, row, now);
    if (!paraSampler.enabled())
        return;
    RowId victim = paraSampler.sample(row, cfg.geom.rowsPerBank);
    if (victim == kNoRow)
        return;
    ++paraSampler.generated;
    if (cfg.paraImmediate)
        aux(rank, bank).preventive.push_back(victim);
    // In PreventiveRC mode the scheme saw the activation via onActivate
    // and does its own (slack-adjusted) sampling.
}

template <class S>
bool
MemoryController::tryRefreshActAs(int rank, BankId bank, RowId row,
                                  Cycle now)
{
    if (!busFree(now) || rankHeld(rank) ||
        model.openRow(rank, bank) != kNoRow ||
        model.earliestAct(rank, bank) > now) {
        return false;
    }
    model.issueAct(rank, bank, row, now);
    record(CommandType::ACT, now, rank, bank, row);
    markIssued(now);
    aux(rank, bank).refreshOpen = true;
    recountHits(rank, bank); // a refresh row can match queued requests
    onRowActivationAs<S>(rank, bank, row, now);
    return true;
}

template <class S>
void
MemoryController::preventiveTickAs(Cycle now)
{
    if (!cfg.paraImmediate || !paraSampler.enabled() || !busFree(now))
        return;
    int nbanks = cfg.geom.ranksPerChannel * cfg.geom.banksPerRank();
    for (int i = 0; i < nbanks; ++i) {
        int idx = (preventiveCursor + i) % nbanks;
        int rank = idx / cfg.geom.banksPerRank();
        BankId bank = static_cast<BankId>(idx % cfg.geom.banksPerRank());
        BankAux &a = aux(rank, bank);
        if (a.preventive.empty() || a.refreshOpen)
            continue;
        if (model.openRow(rank, bank) == kNoRow) {
            // Pop the victim only once the refresh ACT actually issued:
            // tryRefreshAct re-checks the rank hold, bank state, and
            // ACT timing itself, and any of those can decline (e.g. a
            // hold placed between our earliestAct probe and the issue).
            // Popping first would silently drop the victim — a missed
            // preventive refresh, invisible until a bit flips.
            if (tryRefreshActAs<S>(rank, bank, a.preventive.front(),
                                   now)) {
                a.preventive.pop_front();
                preventiveCursor = idx + 1;
                return;
            }
        } else if (!bankHasOpenRowHit(bankIndex(rank, bank)) &&
                   model.earliestPre(rank, bank) <= now) {
            // Close the bank so the preventive refresh can proceed; row
            // hits in flight drain first.
            tryPre(rank, bank, now);
            preventiveCursor = idx + 1;
            return;
        }
    }
}

template <class S>
bool
MemoryController::tryDemandActAs(const Request &req, Cycle now)
{
    int rank = req.da.rank;
    BankId bank = req.da.bank;
    if (rankHeld(rank) || model.earliestAct(rank, bank) > now)
        return false;

    // Case-1 hook (Fig. 8): give the refresh scheme the chance to hide a
    // refresh under this activation with a HiRA operation.
    RowId hidden = SchemeOps<S>::pickHiddenRefresh(*refreshScheme, rank,
                                                   bank, req.da.row, now);
    if (hidden != kNoRow) {
        const TimingCycles &tcy = model.cycles();
        if (model.earliestHira(rank, bank) <= now &&
            !slotReservedAt(now + tcy.c1) &&
            !slotReservedAt(now + tcy.hiraSpan())) {
            Cycle second_at =
                model.issueHira(rank, bank, hidden, req.da.row, now);
            record(CommandType::ACT, now, rank, bank, hidden,
                   HiraRole::FirstAct);
            record(CommandType::PRE, now + tcy.c1, rank, bank, 0,
                   HiraRole::CutPre);
            record(CommandType::ACT, second_at, rank, bank, req.da.row,
                   HiraRole::SecondAct);
            reserveHiraSlots(now);
            markIssued(now);
            ++stats_.hiraOps;
            count(mRowMisses); // the demand ACT rode a closed bank
            recountHits(rank, bank); // bank now open with req's row
            SchemeOps<S>::onHiraIssued(*refreshScheme, rank, bank, hidden,
                                       now);
            onRowActivationAs<S>(rank, bank, hidden, now);
            onRowActivationAs<S>(rank, bank, req.da.row, second_at);
            return true;
        }
    }

    model.issueAct(rank, bank, req.da.row, now);
    record(CommandType::ACT, now, rank, bank, req.da.row);
    markIssued(now);
    count(mRowMisses);
    recountHits(rank, bank);
    onRowActivationAs<S>(rank, bank, req.da.row, now);
    return true;
}

template <class S>
bool
MemoryController::issueRowCommandAs(std::deque<Request> &queue, Cycle now)
{
    // Oldest-first, one attempt per bank.
    std::fill(bankSeenScratch.begin(), bankSeenScratch.end(), 0);
    for (const Request &req : queue) {
        int rank = req.da.rank;
        BankId bank = req.da.bank;
        std::size_t idx = bankIndex(rank, bank);
        if (bankSeenScratch[idx] != 0)
            continue;
        bankSeenScratch[idx] = 1;
        if (bankBlocked(rank, bank))
            continue;
        RowId open = model.openRow(rank, bank);
        if (open == req.da.row)
            continue; // row hit waiting on CAS timing
        if (open == kNoRow) {
            if (tryDemandActAs<S>(req, now))
                return true;
            continue;
        }
        // Conflict: close the row once its queued hits have drained.
        if (bankHasOpenRowHit(idx))
            continue;
        if (model.earliestPre(rank, bank) <= now) {
            count(mRowConflicts);
            return tryPre(rank, bank, now);
        }
    }
    return false;
}

template <class S>
void
MemoryController::scheduleDemandAs(Cycle now)
{
    if (!busFree(now))
        return;

    // Write-drain mode hysteresis; also drain opportunistically when
    // there is no read work at all.
    if (!writeMode) {
        if (writeQ.size() >= static_cast<std::size_t>(cfg.drainHigh) ||
            (readQ.empty() && !writeQ.empty())) {
            writeMode = true;
        }
    } else if (writeQ.size() <= static_cast<std::size_t>(cfg.drainLow) &&
               !readQ.empty()) {
        writeMode = false;
    }
    if (writeMode && writeQ.empty())
        writeMode = false;

    std::deque<Request> &active = writeMode ? writeQ : readQ;
    if (active.empty())
        return;

    // FR-FCFS: ready column accesses first, then oldest-first row
    // commands.
    if (issueColumnIfReady(active, !writeMode, now))
        return;
    issueRowCommandAs<S>(active, now);
}

template <class S>
void
MemoryController::tickAs(Cycle now)
{
    issuedThisCycle = false;
    lastTick = now;
    // Occupancy at tick entry; under the event engine this samples only
    // executed cycles (skipped cycles have provably unchanged queues).
    observe(mReadQDepth, static_cast<double>(readQ.size()));
    observe(mWriteQDepth, static_cast<double>(writeQ.size()));
    // Retire expired HiRA bus-slot reservations (at most a handful of
    // future slots; plain index compaction, nothing allocates here).
    if (!reservedSlots.empty()) {
        std::size_t kept = 0;
        for (Cycle c : reservedSlots) {
            if (c >= now)
                reservedSlots[kept++] = c;
        }
        reservedSlots.resize(kept);
    }

    autoPreTick(now);
    if (!issuedThisCycle && !slotReservedAt(now))
        SchemeOps<S>::tick(*refreshScheme, now);
    if (!issuedThisCycle)
        preventiveTickAs<S>(now);
    if (!issuedThisCycle)
        scheduleDemandAs<S>(now);
    nextWakeValid = false; // state changed; nextEvent() recomputes
}

template <class S>
Cycle
MemoryController::nextEventAs() const
{
    if (!nextWakeValid) {
        nextWake = computeNextEventAs<S>(lastTick);
        nextWakeValid = true;
        count(mWakeRecomputes);
    }
    return nextWake;
}

template <class S>
Cycle
MemoryController::computeNextEventAs(Cycle now) const
{
    // The one state change the horizon scan below cannot see is the
    // write-drain hysteresis flip: writeMode changes how preventiveTick
    // weighs queued row hits and which queue schedules, and the dense
    // loop re-evaluates the flip on every busFree tick. The flip is a
    // pure function of the queue depths, so replaying the hysteresis
    // block on the current depths tells exactly whether the next dense
    // tick would change writeMode; if so, poll it. Depth changes
    // between recomputes cannot be missed: they happen only on issues
    // (each followed by this recompute) and enqueues (which lower the
    // wake to arrival+1). Everything else an issue touches —
    // completions pushed, preventive victims sampled, bank refreshOpen
    // transitions, scheme bookkeeping, data-bus adjusted horizons —
    // re-enters through the scan, which runs on post-issue state.
    {
        bool wm = writeMode;
        if (!wm) {
            if (writeQ.size() >= static_cast<std::size_t>(cfg.drainHigh) ||
                (readQ.empty() && !writeQ.empty())) {
                wm = true;
            }
        } else if (writeQ.size() <=
                       static_cast<std::size_t>(cfg.drainLow) &&
                   !readQ.empty()) {
            wm = false;
        }
        if (wm && writeQ.empty())
            wm = false;
        if (wm != writeMode)
            return now + 1;
    }

    // Horizons can never push the wake below the next cycle, so the
    // scan bails as soon as the running minimum reaches that floor.
    const Cycle floor = now + 1;
    Cycle wake = kNeverCycle;
    auto consider = [&wake, floor](Cycle c) {
        if (c < wake)
            wake = c;
        return wake <= floor;
    };

    // One sweep over the per-bank request index (nRead / nWrite /
    // n*Hit), no queue walk at all. Only the active queue can schedule
    // before the next mode flip, and flips always land on ticks the
    // wake list covers (the hysteresis check above plus enqueue's wake
    // lowering), so the inactive class contributes no horizon. The
    // conflict-PRE and preventive-close entries replay issueRowCommand
    // / preventiveTick's row-hit gate (bankHasOpenRowHit): a PRE dense
    // defers while the open row has queued hits is not considered,
    // because the hit counts only change at covered ticks (hit issues,
    // hit arrivals through enqueue, row transitions through commands),
    // after which this recompute runs again.
    const int bpr = cfg.geom.banksPerRank();
    for (int rank = 0; rank < cfg.geom.ranksPerChannel; ++rank) {
        // Held ranks: the holding scheme's horizon polls densely while
        // it drains the rank toward a REF, so ACT entries drop out.
        const bool held = rankHold[static_cast<std::size_t>(rank)];
        for (BankId b = 0; b < static_cast<BankId>(bpr); ++b) {
            std::size_t idx = bankIndex(rank, b);
            const BankAux &a = bankAux[idx];
            if (a.refreshOpen) {
                // Demand and preventive work is withheld; the bank's
                // only event is the auto-PRE of the refresh row.
                if (model.openRow(rank, b) != kNoRow &&
                    consider(model.earliestPre(rank, b))) {
                    return floor;
                }
                continue;
            }
            std::uint16_t nq = writeMode ? nWrite[idx] : nRead[idx];
            std::uint16_t nh = writeMode ? nWriteHit[idx] : nReadHit[idx];
            bool preventivePending = !a.preventive.empty();
            if (nq == 0 && !preventivePending)
                continue;
            if (model.openRow(rank, b) == kNoRow) {
                // Everything queued wants an ACT (demand row or
                // preventive victim).
                if (!held && consider(model.earliestAct(rank, b)))
                    return floor;
                continue;
            }
            if (nh != 0 &&
                consider(writeMode ? model.earliestWr(rank, b)
                                   : model.earliestRd(rank, b))) {
                return floor;
            }
            if ((nq > nh || preventivePending) &&
                !bankHasOpenRowHit(idx) &&
                consider(model.earliestPre(rank, b))) {
                return floor;
            }
        }
    }

    // Completions must reach the LLC at exactly their arrival cycle.
    for (const Completion &c : completions_) {
        if (consider(c.at))
            return floor;
    }

    if (consider(SchemeOps<S>::nextEventCycle(*refreshScheme, now)))
        return floor;

    if (wake == kNeverCycle)
        return kNeverCycle;
    return std::max(wake, floor);
}

} // namespace hira

#endif // HIRA_MEM_CONTROLLER_KERNEL_HH
