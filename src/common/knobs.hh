/**
 * @file
 * Environment-variable scale knobs for benchmark harnesses.
 *
 * Defaults keep the full bench suite fast; paper-scale runs set e.g.
 * HIRA_MIXES=125 HIRA_CYCLES=2000000.
 */

#ifndef HIRA_COMMON_KNOBS_HH
#define HIRA_COMMON_KNOBS_HH

#include <cstdint>
#include <string>

namespace hira {

/** Integer knob: $name from the environment, or fallback. */
std::int64_t envKnob(const std::string &name, std::int64_t fallback);

/** Floating-point knob. */
double envKnobDouble(const std::string &name, double fallback);

/** Bench-scale knobs used across all harnesses. */
struct BenchKnobs
{
    /** Number of workload mixes per data point (paper: 125). */
    int mixes = 6;
    /** Measured memory-bus cycles per simulation (paper: 200M instrs). */
    std::int64_t cycles = 150000;
    /** Warmup memory-bus cycles. */
    std::int64_t warmup = 30000;
    /** Rows per bank tested by characterization harnesses (paper: 6K). */
    int rows = 256;
    /** Worker threads for simulation sweeps. */
    int threads = 4;
    /** Cores per workload mix (paper: 8). */
    int cores = 8;

    static BenchKnobs fromEnv();
};

} // namespace hira

#endif // HIRA_COMMON_KNOBS_HH
