/**
 * @file
 * Fundamental scalar types shared across the HiRA library.
 */

#ifndef HIRA_COMMON_TYPES_HH
#define HIRA_COMMON_TYPES_HH

#include <cstdint>

namespace hira {

/** Simulation time in memory-bus clock cycles (DDR4-2400: 0.8333 ns/cycle). */
using Cycle = std::uint64_t;

/** Simulation / experiment time in nanoseconds (real-valued). */
using NanoSec = double;

/** Physical byte address. */
using Addr = std::uint64_t;

/** DRAM row index within a bank. */
using RowId = std::uint32_t;

/** DRAM subarray index within a bank. */
using SubarrayId = std::uint32_t;

/** Flat bank index within a rank (bank group folded in). */
using BankId = std::uint32_t;

/** A reserved value meaning "no cycle" / "never". */
inline constexpr Cycle kNeverCycle = ~Cycle(0);

/** A reserved value meaning "no row is open". */
inline constexpr RowId kNoRow = ~RowId(0);

} // namespace hira

#endif // HIRA_COMMON_TYPES_HH
