/**
 * @file
 * Persistent worker pool for index-parallel work.
 *
 * One pool outlives many parallelFor() calls, so sweep executors can
 * drain a whole grid of work items through a single set of threads
 * instead of spawning a fresh pool (and paying a join barrier) per
 * sweep point. Exceptions thrown by work items do not
 * std::terminate the process: the first one is captured, the
 * remaining unstarted items are skipped, and it is rethrown on the
 * calling thread once the pool has quiesced.
 */

#ifndef HIRA_COMMON_WORKER_POOL_HH
#define HIRA_COMMON_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hira {

/**
 * Fixed-size pool of worker threads executing indexed jobs.
 *
 * With fewer than two threads the pool spawns nothing and
 * parallelFor() runs inline on the caller, so a single-threaded run
 * has no scheduling layer at all; either way the work function sees
 * each index in [0, n) exactly once. Results must be written to
 * per-index slots (and seeds derived from the index), which makes any
 * computation bitwise independent of the thread count.
 */
class WorkerPool
{
  public:
    /** @p threads is clamped to at least 1. */
    explicit WorkerPool(int threads);

    /** Joins the workers; any queued job must have completed. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Total concurrency of a parallelFor() call, caller included
     * (>= 1; 1 means inline execution, no spawned threads).
     */
    int threadCount() const { return nthreads; }

    /**
     * Run fn(i) for every i in [0, n) across the pool and block until
     * all indices are accounted for. If any invocation throws, the
     * first exception is rethrown here after the pool drains;
     * already-started items complete, unstarted ones are skipped.
     * Concurrent calls from different threads serialize (one job at a
     * time per pool); calling it from inside a work item of the same
     * pool deadlocks.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();
    void runItems();

    const int nthreads;
    std::vector<std::thread> workers;

    std::mutex submitMutex; //!< serializes whole parallelFor() calls
    std::mutex m;
    std::condition_variable wakeCv; //!< new job posted / shutdown
    std::condition_variable doneCv; //!< all indices of the job consumed

    const std::function<void(std::size_t)> *job = nullptr;
    std::size_t jobSize = 0;
    std::atomic<std::size_t> nextIndex{0};
    std::atomic<bool> skipRemaining{false};
    std::size_t finished = 0;      //!< indices run or skipped (under m)
    std::size_t activeWorkers = 0; //!< workers inside runItems (under m)
    std::exception_ptr firstError;
    std::uint64_t generation = 0;
    bool shuttingDown = false;
};

} // namespace hira

#endif // HIRA_COMMON_WORKER_POOL_HH
