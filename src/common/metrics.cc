#include "common/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace hira {

MetricsLevel
defaultMetricsLevel()
{
    const char *v = std::getenv("HIRA_METRICS");
    if (v == nullptr || *v == '\0' || std::strcmp(v, "off") == 0)
        return MetricsLevel::Off;
    if (std::strcmp(v, "counters") == 0)
        return MetricsLevel::Counters;
    if (std::strcmp(v, "full") == 0)
        return MetricsLevel::Full;
    warn_once("unknown HIRA_METRICS='%s' (expected 'off', 'counters', or "
              "'full'); using 'off'",
              v);
    return MetricsLevel::Off;
}

const char *
metricsLevelName(MetricsLevel level)
{
    switch (level) {
      case MetricsLevel::Off: return "off";
      case MetricsLevel::Counters: return "counters";
      case MetricsLevel::Full: return "full";
    }
    return "off";
}

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi)
{
    hira_assert(bins > 0 && hi > lo);
    width_ = (hi - lo) / static_cast<double>(bins);
    bins_.assign(bins, 0);
}

void
HistogramMetric::observe(double x)
{
    ++count_;
    sum_ += x;
    double pos = (x - lo_) / width_;
    std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(std::floor(pos));
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(bins_.size()) - 1);
    ++bins_[static_cast<std::size_t>(idx)];
}

MetricsSnapshot
MetricsSnapshot::diff(const MetricsSnapshot &base) const
{
    MetricsSnapshot out;
    for (const auto &kv : values) {
        MetricValue v = kv.second;
        auto it = base.values.find(kv.first);
        if (it != base.values.end()) {
            const MetricValue &b = it->second;
            hira_assert(b.kind == v.kind);
            switch (v.kind) {
              case MetricValue::Kind::Counter:
                v.count -= b.count;
                break;
              case MetricValue::Kind::Gauge:
                break; // gauges are point-in-time: keep the newer value
              case MetricValue::Kind::Histogram:
                hira_assert(b.bins.size() == v.bins.size() &&
                            b.lo == v.lo && b.hi == v.hi);
                v.count -= b.count;
                v.value -= b.value;
                for (std::size_t i = 0; i < v.bins.size(); ++i)
                    v.bins[i] -= b.bins[i];
                break;
            }
        }
        out.values.emplace(kv.first, std::move(v));
    }
    return out;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &kv : other.values) {
        auto it = values.find(kv.first);
        if (it == values.end()) {
            values.emplace(kv.first, kv.second);
            continue;
        }
        MetricValue &v = it->second;
        const MetricValue &o = kv.second;
        hira_assert(v.kind == o.kind);
        switch (v.kind) {
          case MetricValue::Kind::Counter:
            v.count += o.count;
            break;
          case MetricValue::Kind::Gauge:
            v.value += o.value;
            break;
          case MetricValue::Kind::Histogram:
            hira_assert(v.bins.size() == o.bins.size() && v.lo == o.lo &&
                        v.hi == o.hi);
            v.count += o.count;
            v.value += o.value;
            for (std::size_t i = 0; i < v.bins.size(); ++i)
                v.bins[i] += o.bins[i];
            break;
        }
    }
}

MetricRegistry::MetricRegistry(MetricsLevel level) : level_(level) {}

Counter *
MetricRegistry::counter(const std::string &name)
{
    if (level_ == MetricsLevel::Off)
        return nullptr;
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    return it->second.get();
}

Gauge *
MetricRegistry::gauge(const std::string &name)
{
    if (level_ == MetricsLevel::Off)
        return nullptr;
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    return it->second.get();
}

HistogramMetric *
MetricRegistry::histogram(const std::string &name, double lo, double hi,
                          std::size_t bins)
{
    if (level_ != MetricsLevel::Full)
        return nullptr;
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name,
                          std::make_unique<HistogramMetric>(lo, hi, bins))
                 .first;
    }
    return it->second.get();
}

MetricsSnapshot
MetricRegistry::snapshot() const
{
    MetricsSnapshot snap;
    for (const auto &kv : counters_) {
        MetricValue v;
        v.kind = MetricValue::Kind::Counter;
        v.count = kv.second->value;
        snap.values.emplace(kv.first, std::move(v));
    }
    for (const auto &kv : gauges_) {
        MetricValue v;
        v.kind = MetricValue::Kind::Gauge;
        v.value = kv.second->value;
        snap.values.emplace(kv.first, std::move(v));
    }
    for (const auto &kv : histograms_) {
        MetricValue v;
        v.kind = MetricValue::Kind::Histogram;
        v.count = kv.second->count();
        v.value = kv.second->sum();
        v.lo = kv.second->lo();
        v.hi = kv.second->hi();
        v.bins = kv.second->bins();
        snap.values.emplace(kv.first, std::move(v));
    }
    return snap;
}

} // namespace hira
