/**
 * @file
 * Minimal shared JSON support: a recursive-descent reader scoped to
 * what the repo's formats need (objects, arrays, strings with the
 * common escapes, numbers, booleans, null) plus the escaping/number
 * helpers every emitter shares.
 *
 * Grown out of the corpus-manifest reader (PR 4) when the sweep-plan
 * protocol (sim/sweep_plan.hh) and the result cache needed the same
 * machinery: one parser, one set of fatal diagnostics ("<where>:
 * invalid JSON at byte N: ...") for every JSON surface.
 */

#ifndef HIRA_COMMON_JSON_HH
#define HIRA_COMMON_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace hira {

/** One parsed JSON value (a small, copyable tree). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member by key, or nullptr (first match wins). */
    const JsonValue *
    get(const std::string &key) const
    {
        for (const auto &kv : object) {
            if (kv.first == key)
                return &kv.second;
        }
        return nullptr;
    }
};

/**
 * Parse @p text as one JSON document. Malformed input is fatal with
 * @p where (a path or protocol name) and the byte offset; trailing
 * garbage after the top-level value is rejected.
 */
JsonValue parseJson(const std::string &text, const std::string &where);

/** Escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Render @p v as a JSON number that round-trips bitwise: %.17g is
 * exact for finite doubles; NaN/Inf (which JSON cannot express)
 * render as null.
 */
std::string jsonDouble(double v);

} // namespace hira

#endif // HIRA_COMMON_JSON_HH
