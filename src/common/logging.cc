#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace hira {

namespace {

std::atomic<bool> g_quiet{false};

/**
 * Serializes the default sink's stderr writes so messages from
 * concurrent WorkerPool workers come out whole-line. Also guards the
 * installed-sink pointer swap.
 */
std::mutex g_log_mutex;

LogSink g_sink; // empty -> default stderr sink

void
stderrSink(LogLevel level, const std::string &msg)
{
    const char *tag = level == LogLevel::Warn ? "warn" : "info";
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

void
dispatch(LogLevel level, const std::string &msg)
{
    // One critical section covers both reading the installed sink and
    // the default sink's fprintf: a single fprintf is atomic on glibc
    // but not guaranteed elsewhere, and holding the lock keeps
    // warn/inform lines from interleaving no matter the platform.
    std::lock_guard<std::mutex> lock(g_log_mutex);
    if (g_sink)
        g_sink(level, msg);
    else
        stderrSink(level, msg);
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
    return out;
}

} // namespace

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(g_log_mutex);
    g_sink = std::move(sink);
}

void
setQuiet(bool q)
{
    g_quiet.store(q);
}

bool
quiet()
{
    return g_quiet.load();
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (quiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    dispatch(LogLevel::Warn, msg);
}

void
warnOnceImpl(std::atomic<bool> &fired, const char *fmt, ...)
{
    // exchange() makes exactly one caller per site the emitter, even
    // under races. Quiet mode still consumes the once-flag so a later
    // un-quieted repeat doesn't resurrect the message.
    if (fired.exchange(true))
        return;
    if (quiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    dispatch(LogLevel::Warn, msg);
}

void
informImpl(const char *fmt, ...)
{
    if (quiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    dispatch(LogLevel::Info, msg);
}

} // namespace hira
