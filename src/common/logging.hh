/**
 * @file
 * Minimal gem5-flavored status/error reporting.
 *
 * panic(): an internal invariant was violated (library bug) — aborts.
 * fatal(): the user asked for something impossible (bad config) — exits.
 * warn()/inform(): non-fatal status messages for the user.
 *
 * warn()/inform() route through a pluggable LogSink (default: stderr
 * behind a process-wide mutex, so concurrent WorkerPool workers never
 * tear each other's lines). warn_once() fires at most once per call
 * site per process, for messages that would otherwise repeat on every
 * simulation in a long sweep.
 */

#ifndef HIRA_COMMON_LOGGING_HH
#define HIRA_COMMON_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <functional>
#include <string>

namespace hira {

/** Severity tag handed to the LogSink with each message. */
enum class LogLevel
{
    Warn,
    Info,
};

/**
 * Destination for warn()/inform() messages. Receives the formatted
 * message body without the "warn: "/"info: " prefix or trailing
 * newline; the sink decides presentation. Sinks may be called from
 * multiple threads concurrently and must synchronize internally (the
 * default stderr sink serializes on a mutex).
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Replace the warn()/inform() destination; an empty function restores
 * the default stderr sink. Not meant to race with concurrent logging —
 * install sinks before spawning workers.
 */
void setLogSink(LogSink sink);

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** warn() that fires only while @p fired was false (see warn_once). */
void warnOnceImpl(std::atomic<bool> &fired, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Suppress warn()/inform() output (used by tests). */
void setQuiet(bool quiet);
bool quiet();

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace hira

#define panic(...) ::hira::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::hira::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::hira::warnImpl(__VA_ARGS__)
#define inform(...) ::hira::informImpl(__VA_ARGS__)

/**
 * warn() at most once per call site per process (thread-safe; exactly
 * one thread wins the race and emits). Use for conditions that repeat
 * per-simulation in long sweeps, e.g. unknown knob values.
 */
#define warn_once(...)                                                        \
    do {                                                                      \
        static ::std::atomic<bool> hira_warn_once_fired_{false};              \
        ::hira::warnOnceImpl(hira_warn_once_fired_, __VA_ARGS__);             \
    } while (0)

/** Invariant check that survives NDEBUG builds. */
#define hira_assert(cond, ...)                                                \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::hira::panicImpl(__FILE__, __LINE__,                             \
                              "assertion failed: %s", #cond);                 \
        }                                                                     \
    } while (0)

#endif // HIRA_COMMON_LOGGING_HH
