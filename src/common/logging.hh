/**
 * @file
 * Minimal gem5-flavored status/error reporting.
 *
 * panic(): an internal invariant was violated (library bug) — aborts.
 * fatal(): the user asked for something impossible (bad config) — exits.
 * warn()/inform(): non-fatal status messages for the user.
 */

#ifndef HIRA_COMMON_LOGGING_HH
#define HIRA_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace hira {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests). */
void setQuiet(bool quiet);
bool quiet();

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace hira

#define panic(...) ::hira::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::hira::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::hira::warnImpl(__VA_ARGS__)
#define inform(...) ::hira::informImpl(__VA_ARGS__)

/** Invariant check that survives NDEBUG builds. */
#define hira_assert(cond, ...)                                                \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::hira::panicImpl(__FILE__, __LINE__,                             \
                              "assertion failed: %s", #cond);                 \
        }                                                                     \
    } while (0)

#endif // HIRA_COMMON_LOGGING_HH
