#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hira {

std::string
BoxStats::str() const
{
    return strprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f",
                     min, q1, median, q3, max, mean);
}

double
SampleSet::mean() const
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : samples)
        sum += x;
    return sum / static_cast<double>(samples.size());
}

double
SampleSet::stddev() const
{
    if (samples.size() < 2)
        return 0.0;
    double m = mean();
    double ss = 0.0;
    for (double x : samples)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(samples.size() - 1));
}

double
SampleSet::min() const
{
    hira_assert(!samples.empty());
    return *std::min_element(samples.begin(), samples.end());
}

double
SampleSet::max() const
{
    hira_assert(!samples.empty());
    return *std::max_element(samples.begin(), samples.end());
}

namespace {

/** Median of sorted[first, last) by midpoint averaging. */
double
medianOfRange(const std::vector<double> &sorted, std::size_t first,
              std::size_t last)
{
    std::size_t n = last - first;
    if (n == 0)
        return 0.0;
    std::size_t mid = first + n / 2;
    if (n % 2 == 1)
        return sorted[mid];
    return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

} // namespace

double
SampleSet::quantile(double q) const
{
    hira_assert(!samples.empty());
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    std::size_t n = sorted.size();

    // Degenerate set: every quantile is the sample itself. Without this
    // the median-of-halves convention below would hand q1/q3 an empty
    // half and report 0 for a set that never contained one.
    if (n == 1)
        return sorted.front();

    if (q <= 0.0)
        return sorted.front();
    if (q >= 1.0)
        return sorted.back();
    if (q == 0.5)
        return medianOfRange(sorted, 0, n);
    if (q == 0.25)
        return medianOfRange(sorted, 0, n / 2);
    if (q == 0.75)
        return medianOfRange(sorted, (n + 1) / 2, n);

    double pos = q * static_cast<double>(n - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= n)
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

BoxStats
SampleSet::box() const
{
    BoxStats b;
    if (samples.empty())
        return b;
    b.min = min();
    b.q1 = quantile(0.25);
    b.median = quantile(0.5);
    b.q3 = quantile(0.75);
    b.max = max();
    b.mean = mean();
    b.count = samples.size();
    return b;
}

double
SampleSet::fractionAbove(double threshold) const
{
    if (samples.empty())
        return 0.0;
    std::size_t n = 0;
    for (double x : samples) {
        if (x > threshold)
            ++n;
    }
    return static_cast<double>(n) / static_cast<double>(samples.size());
}

std::vector<HistBin>
histogram(const std::vector<double> &samples, double lo, double hi,
          std::size_t bins)
{
    hira_assert(bins > 0 && hi > lo);
    std::vector<HistBin> out(bins);
    double width = (hi - lo) / static_cast<double>(bins);
    for (std::size_t i = 0; i < bins; ++i) {
        out[i].lo = lo + width * static_cast<double>(i);
        out[i].hi = out[i].lo + width;
        out[i].count = 0;
        out[i].fraction = 0.0;
    }
    for (double x : samples) {
        double pos = (x - lo) / width;
        std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(std::floor(pos));
        idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                         static_cast<std::ptrdiff_t>(bins) - 1);
        ++out[static_cast<std::size_t>(idx)].count;
    }
    if (!samples.empty()) {
        for (auto &b : out) {
            b.fraction = static_cast<double>(b.count) /
                         static_cast<double>(samples.size());
        }
    }
    return out;
}

std::string
sparkline(const std::vector<HistBin> &bins)
{
    static const char *levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    double peak = 0.0;
    for (const auto &b : bins)
        peak = std::max(peak, b.fraction);
    std::string out;
    for (const auto &b : bins) {
        int lvl = peak > 0.0
                      ? static_cast<int>(std::round(b.fraction / peak * 7.0))
                      : 0;
        out += levels[std::clamp(lvl, 0, 7)];
    }
    return out;
}

} // namespace hira
