#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace hira {

namespace {

class JsonParser
{
  public:
    JsonParser(const std::string &text, const std::string &where)
        : src(text), file(where)
    {
    }

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos != src.size())
            error("trailing garbage after the top-level value");
        return v;
    }

  private:
    [[noreturn]] void
    error(const std::string &what) const
    {
        fatal("%s: invalid JSON at byte %zu: %s", file.c_str(), pos,
              what.c_str());
    }

    void
    skipSpace()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos]))) {
            ++pos;
        }
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= src.size())
            error("unexpected end of input");
        return src[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            error(strprintf("expected '%c'", c));
        ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < src.size() && peek() == c) {
            ++pos;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (consume('}'))
            return v;
        do {
            JsonValue key = parseString();
            expect(':');
            v.object.emplace_back(key.string, parseValue());
        } while (consume(','));
        expect('}');
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (consume(']'))
            return v;
        do {
            v.array.push_back(parseValue());
        } while (consume(','));
        expect(']');
        return v;
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos < src.size() && src[pos] != '"') {
            char c = src[pos++];
            if (c != '\\') {
                v.string.push_back(c);
                continue;
            }
            if (pos >= src.size())
                error("unterminated escape");
            char esc = src[pos++];
            switch (esc) {
              case '"': v.string.push_back('"'); break;
              case '\\': v.string.push_back('\\'); break;
              case '/': v.string.push_back('/'); break;
              case 'n': v.string.push_back('\n'); break;
              case 't': v.string.push_back('\t'); break;
              case 'r': v.string.push_back('\r'); break;
              case 'b': v.string.push_back('\b'); break;
              case 'f': v.string.push_back('\f'); break;
              case 'u': {
                if (pos + 4 > src.size())
                    error("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = src[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        error("bad \\u escape digit");
                }
                // Every format this reader serves is ASCII; anything
                // wider is unexpected and likely a producer bug.
                if (code > 0x7f)
                    error("non-ASCII \\u escape");
                v.string.push_back(static_cast<char>(code));
                break;
              }
              default: error("unknown escape");
            }
        }
        if (pos >= src.size())
            error("unterminated string");
        ++pos; // closing quote
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (src.compare(pos, 4, "true") == 0) {
            v.boolean = true;
            pos += 4;
        } else if (src.compare(pos, 5, "false") == 0) {
            v.boolean = false;
            pos += 5;
        } else {
            error("expected 'true' or 'false'");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (src.compare(pos, 4, "null") != 0)
            error("expected 'null'");
        pos += 4;
        return JsonValue{};
    }

    JsonValue
    parseNumber()
    {
        const char *start = src.c_str() + pos;
        char *end = nullptr;
        errno = 0;
        double d = std::strtod(start, &end);
        if (end == start || errno == ERANGE)
            error("malformed number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = d;
        pos += static_cast<std::size_t>(end - start);
        return v;
    }

    const std::string &src;
    std::string file;
    std::size_t pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text, const std::string &where)
{
    return JsonParser(text, where).parse();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    return strprintf("%.17g", v);
}

} // namespace hira
