/**
 * @file
 * Hierarchical metrics registry in the spirit of gem5's per-SimObject
 * stats: named counters, gauges, and fixed-bin histograms grouped per
 * component instance (`ctrl0.bank3.reads`, `ctrl0.scheme.pr_fifo_depth`,
 * `llc.hits`, `core2.ff_ticks`, `kernel.skip_len`, ...), with
 * snapshot / diff / merge so sweep executors can aggregate per-mix
 * simulations into per-point artifacts.
 *
 * Design constraints (see BUILDING.md "Metrics and event tracing"):
 *
 *  - Instrumentation must never perturb simulation state: metrics only
 *    *read* simulator state, so results are bitwise identical with
 *    metrics on and off (pinned by tests/sim/test_metrics_equivalence).
 *  - Near-zero overhead when disabled: components hold raw pointers to
 *    their metrics, and every pointer is nullptr when the registry is
 *    off (or, for histograms, below MetricsLevel::Full) — hot paths pay
 *    a single predictable null test via the count()/observe() helpers.
 *  - A registry belongs to one simulation instance (one System) and is
 *    NOT thread-safe; concurrent sweeps each own their registry.
 *    Registration happens on the cold construction path; name lookup is
 *    never on the per-cycle path.
 */

#ifndef HIRA_COMMON_METRICS_HH
#define HIRA_COMMON_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hira {

/**
 * Instrumentation level, from the HIRA_METRICS environment variable.
 * `off` registers nothing (every metric pointer is nullptr),
 * `counters` enables counters and gauges, `full` adds histograms.
 */
enum class MetricsLevel
{
    Off,
    Counters,
    Full,
};

/**
 * Level selected by HIRA_METRICS ("off", "counters", "full"; default
 * "off"). Read on every call so tests can flip the variable between
 * runs; unknown values warn once and fall back to "off".
 */
MetricsLevel defaultMetricsLevel();

/** Display name ("off" / "counters" / "full"). */
const char *metricsLevelName(MetricsLevel level);

/** Monotone event count. */
struct Counter
{
    std::uint64_t value = 0;
};

/** Point-in-time value (published, not accumulated). */
struct Gauge
{
    double value = 0.0;
};

/**
 * Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp
 * to the edge bins (the same tail convention as stats.hh histogram()).
 */
class HistogramMetric
{
  public:
    HistogramMetric(double lo, double hi, std::size_t bins);

    void observe(double x);

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    const std::vector<std::uint64_t> &bins() const { return bins_; }

  private:
    double lo_, hi_, width_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::vector<std::uint64_t> bins_;
};

// Hot-path helpers: one predictable null test when metrics are off.
inline void
count(Counter *c, std::uint64_t n = 1)
{
    if (c != nullptr)
        c->value += n;
}

inline void
setGauge(Gauge *g, double v)
{
    if (g != nullptr)
        g->value = v;
}

inline void
observe(HistogramMetric *h, double x)
{
    if (h != nullptr)
        h->observe(x);
}

/** One metric's value captured by MetricRegistry::snapshot(). */
struct MetricValue
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    Kind kind = Kind::Counter;
    std::uint64_t count = 0; //!< counter value / histogram sample count
    double value = 0.0;      //!< gauge value / histogram sample sum
    double lo = 0.0, hi = 0.0;        //!< histogram bounds
    std::vector<std::uint64_t> bins;  //!< histogram bin counts
};

/**
 * Immutable capture of a registry's metrics, keyed by full dotted
 * name (std::map: deterministic iteration order for artifacts).
 */
struct MetricsSnapshot
{
    std::map<std::string, MetricValue> values;

    bool empty() const { return values.empty(); }

    /**
     * This snapshot minus @p base: counters and histogram bins
     * subtract (names missing from @p base keep their full value),
     * gauges keep this snapshot's value. Used to scope metrics to the
     * measurement interval (runOne diffs the post-warmup snapshot
     * away). Histogram shapes must match; panics otherwise.
     */
    MetricsSnapshot diff(const MetricsSnapshot &base) const;

    /**
     * Accumulate @p other into this snapshot: counters, histogram
     * bins, and gauges all add (so gauges merged across runs are sums
     * — publish additive quantities, or per-run snapshots, not
     * averages). Kinds and histogram shapes of shared names must
     * match; panics otherwise.
     */
    void merge(const MetricsSnapshot &other);
};

/**
 * The per-simulation-instance metrics registry. Components register
 * metrics by full dotted name at construction (usually through a
 * MetricScope) and keep the returned pointer for the hot path;
 * registering an existing name returns the same metric.
 */
class MetricRegistry
{
  public:
    explicit MetricRegistry(MetricsLevel level);

    MetricsLevel level() const { return level_; }

    /** nullptr when the registry is Off. */
    Counter *counter(const std::string &name);
    Gauge *gauge(const std::string &name);

    /** nullptr below MetricsLevel::Full. */
    HistogramMetric *histogram(const std::string &name, double lo,
                               double hi, std::size_t bins);

    MetricsSnapshot snapshot() const;

  private:
    MetricsLevel level_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/**
 * A naming prefix into a registry ("ctrl0.", "ctrl0.scheme.", ...), so
 * components register relative names without knowing where they live.
 * Copyable; a default-constructed (or null-registry) scope hands out
 * nullptr for everything, which is the disabled fast path.
 */
class MetricScope
{
  public:
    MetricScope() = default;
    MetricScope(MetricRegistry *registry, std::string prefix)
        : reg(registry), prefix_(std::move(prefix))
    {
    }

    /** Child scope: "ctrl0." + "bank3." -> "ctrl0.bank3.". */
    MetricScope
    sub(const std::string &name) const
    {
        return MetricScope(reg, prefix_ + name + ".");
    }

    Counter *
    counter(const std::string &name) const
    {
        return reg != nullptr ? reg->counter(prefix_ + name) : nullptr;
    }

    Gauge *
    gauge(const std::string &name) const
    {
        return reg != nullptr ? reg->gauge(prefix_ + name) : nullptr;
    }

    HistogramMetric *
    histogram(const std::string &name, double lo, double hi,
              std::size_t bins) const
    {
        return reg != nullptr
                   ? reg->histogram(prefix_ + name, lo, hi, bins)
                   : nullptr;
    }

    MetricRegistry *registry() const { return reg; }
    const std::string &prefix() const { return prefix_; }

  private:
    MetricRegistry *reg = nullptr;
    std::string prefix_;
};

} // namespace hira

#endif // HIRA_COMMON_METRICS_HH
