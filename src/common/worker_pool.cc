#include "common/worker_pool.hh"

#include <algorithm>

namespace hira {

WorkerPool::WorkerPool(int threads) : nthreads(std::max(1, threads))
{
    if (nthreads < 2)
        return; // inline mode: parallelFor runs on the caller
    // The caller always helps drain its own job, so nthreads - 1
    // spawned workers keep the observable concurrency at exactly
    // nthreads (one oversubscribed thread otherwise).
    workers.reserve(static_cast<std::size_t>(nthreads - 1));
    for (int t = 0; t < nthreads - 1; ++t)
        workers.emplace_back([this]() { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(m);
        shuttingDown = true;
    }
    wakeCv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
WorkerPool::runItems()
{
    // Each index is claimed by exactly one thread; a claimed index is
    // always counted as finished, run or skipped, so the job's
    // completion condition (finished == jobSize) cannot be missed.
    for (;;) {
        std::size_t i = nextIndex.fetch_add(1);
        if (i >= jobSize)
            return;
        if (!skipRemaining.load(std::memory_order_relaxed)) {
            try {
                (*job)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(m);
                if (!firstError)
                    firstError = std::current_exception();
                skipRemaining.store(true, std::memory_order_relaxed);
            }
        }
        std::lock_guard<std::mutex> lock(m);
        if (++finished == jobSize)
            doneCv.notify_all();
    }
}

void
WorkerPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(m);
            wakeCv.wait(lock, [&]() {
                return shuttingDown || (job != nullptr && generation != seen);
            });
            if (shuttingDown)
                return;
            seen = generation;
            // activeWorkers keeps parallelFor() from resetting the
            // job state (nextIndex in particular) while this thread
            // is still inside runItems() for the previous job.
            ++activeWorkers;
        }
        runItems();
        {
            std::lock_guard<std::mutex> lock(m);
            if (--activeWorkers == 0)
                doneCv.notify_all();
        }
    }
}

void
WorkerPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers.empty()) {
        // Inline mode: same semantics, no threads. The first exception
        // propagates directly; remaining items are skipped by the
        // unwind itself.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // One job at a time: a second caller queues here until the first
    // job has fully drained and the shared job state is reusable.
    std::lock_guard<std::mutex> submit(submitMutex);
    {
        std::lock_guard<std::mutex> lock(m);
        job = &fn;
        jobSize = n;
        nextIndex.store(0);
        skipRemaining.store(false);
        finished = 0;
        firstError = nullptr;
        ++generation;
    }
    wakeCv.notify_all();
    runItems(); // the caller helps drain its own job
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(m);
        doneCv.wait(lock, [&]() {
            return finished == jobSize && activeWorkers == 0;
        });
        job = nullptr;
        err = firstError;
        firstError = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace hira
