/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic element in the library (process variation, synthetic
 * traces, PARA coin flips, workload mixes) derives from named 64-bit seeds
 * through these generators, so every experiment is bit-reproducible.
 *
 * Generator contract (relied on by tests/common/test_rng.cc golden
 * values — do not change any of these without a major version bump):
 *  - Rng is xoshiro256** (Blackman/Vigna reference constants: mul 5,
 *    rotl 7, mul 9; state rotl 45, shift 17), seeded by four successive
 *    splitmix64 outputs of the 64-bit seed.
 *  - splitmix64 / hashCombine / hashString are pure functions of their
 *    inputs; hashString is FNV-1a (offset 0xcbf29ce484222325, prime
 *    0x100000001b3) finalized through splitmix64.
 *  - uniform() maps the top 53 bits of next() onto [0, 1) as
 *    (next() >> 11) * 2^-53; hashUniform() does the same to a
 *    hashCombine chain. Same seed therefore yields the same stream on
 *    every conforming platform, independent of compiler, OS, or
 *    evaluation order.
 */

#ifndef HIRA_COMMON_RNG_HH
#define HIRA_COMMON_RNG_HH

#include <cmath>
#include <cstdint>
#include <string_view>

namespace hira {

/**
 * The splitmix64 mixing function. Used both as a seed expander and as a
 * stateless hash for "per-entity" randomness (e.g., per-row timing
 * variation that must not depend on evaluation order).
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into a new stream seed. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return splitmix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2) + b));
}

/** Hash a short string (e.g., a module label) into a seed. */
constexpr std::uint64_t
hashString(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return splitmix64(h);
}

/**
 * xoshiro256** generator: fast, high-quality, 2^256 period.
 * Seeded via splitmix64 per the reference implementation.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

    /** Reset the stream from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state) {
            seed = splitmix64(seed);
            word = seed;
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Lemire's multiply-shift rejection-free variant is overkill here;
        // 128-bit multiply keeps the bias below 2^-64.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * n) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Standard normal via Box-Muller (one value per call, no caching). */
    double
    gaussian()
    {
        double u1 = 1.0 - uniform(); // (0, 1]
        double u2 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /** Normal with the given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        return mean + sigma * gaussian();
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

/**
 * Stateless per-entity randomness: a deterministic uniform in [0, 1) keyed
 * by an arbitrary tuple of identifiers. Evaluation-order independent.
 */
inline double
hashUniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
            std::uint64_t c = 0)
{
    std::uint64_t h = hashCombine(hashCombine(hashCombine(seed, a), b), c);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Stateless per-entity standard-normal value (inverse-CDF approximation). */
double hashGaussian(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
                    std::uint64_t c = 0);

} // namespace hira

#endif // HIRA_COMMON_RNG_HH
