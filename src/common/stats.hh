/**
 * @file
 * Lightweight statistics helpers used by the characterization suite and the
 * system simulator: sample accumulation, quartiles, box-and-whiskers
 * summaries (the paper's preferred presentation), and fixed-bin histograms.
 */

#ifndef HIRA_COMMON_STATS_HH
#define HIRA_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace hira {

/**
 * Five-number summary of a distribution, matching the paper's
 * box-and-whiskers plots (footnote 6): whiskers are min/max, box is
 * Q1..Q3, line is the median.
 */
struct BoxStats
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    std::size_t count = 0;

    /** Interquartile range (box height). */
    double iqr() const { return q3 - q1; }

    /** "min/avg/max" rendering used by Table 4. */
    std::string str() const;
};

/** Accumulates samples; computes summaries on demand. */
class SampleSet
{
  public:
    void add(double x) { samples.push_back(x); }
    void
    add(const SampleSet &other)
    {
        samples.insert(samples.end(), other.samples.begin(),
                       other.samples.end());
    }
    std::size_t size() const { return samples.size(); }
    bool empty() const { return samples.empty(); }
    const std::vector<double> &values() const { return samples; }

    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;

    /**
     * Quantile with the median-of-halves convention the paper's footnote 6
     * describes (Q1 = median of the lower half, Q3 = median of the upper
     * half) for q = 0.25/0.75, linear interpolation otherwise.
     */
    double quantile(double q) const;

    /** Full five-number summary. */
    BoxStats box() const;

    /** Fraction of samples strictly above the threshold. */
    double fractionAbove(double threshold) const;

  private:
    std::vector<double> samples;
};

/** One bin of a histogram. */
struct HistBin
{
    double lo;
    double hi;
    std::size_t count;
    double fraction;
};

/**
 * Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
 * edge bins (matches how the paper's Fig. 5 renders tails).
 */
std::vector<HistBin> histogram(const std::vector<double> &samples, double lo,
                               double hi, std::size_t bins);

/** Render a one-line ASCII sparkline of bin fractions (for bench output). */
std::string sparkline(const std::vector<HistBin> &bins);

} // namespace hira

#endif // HIRA_COMMON_STATS_HH
