#include "common/knobs.hh"

#include <cstdlib>
#include <thread>

#include "common/logging.hh"

namespace hira {

std::int64_t
envKnob(const std::string &name, std::int64_t fallback)
{
    const char *v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v) {
        warn("ignoring unparsable env knob %s=%s", name.c_str(), v);
        return fallback;
    }
    return parsed;
}

double
envKnobDouble(const std::string &name, double fallback)
{
    const char *v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v) {
        warn("ignoring unparsable env knob %s=%s", name.c_str(), v);
        return fallback;
    }
    return parsed;
}

BenchKnobs
BenchKnobs::fromEnv()
{
    BenchKnobs k;
    k.mixes = static_cast<int>(envKnob("HIRA_MIXES", 6));
    k.cycles = envKnob("HIRA_CYCLES", 150000);
    k.warmup = envKnob("HIRA_WARMUP", 30000);
    k.rows = static_cast<int>(envKnob("HIRA_ROWS", 256));
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    k.threads = static_cast<int>(envKnob("HIRA_THREADS", hw > 0 ? hw : 4));
    return k;
}

} // namespace hira
