#include "common/knobs.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <thread>

#include "common/logging.hh"

namespace hira {

std::int64_t
envKnob(const std::string &name, std::int64_t fallback)
{
    const char *v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v) {
        warn("ignoring unparsable env knob %s=%s", name.c_str(), v);
        return fallback;
    }
    return parsed;
}

double
envKnobDouble(const std::string &name, double fallback)
{
    const char *v = std::getenv(name.c_str());
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v) {
        warn("ignoring unparsable env knob %s=%s", name.c_str(), v);
        return fallback;
    }
    return parsed;
}

namespace {

/** Clamp a scale knob into [floor, ceiling]; zero mixes or cycles would
 * only produce NaN means / empty sweeps downstream, and values past the
 * ceiling would wrap when narrowed to int. */
std::int64_t
envKnobClamped(const std::string &name, std::int64_t fallback,
               std::int64_t floor,
               std::int64_t ceiling = std::numeric_limits<std::int64_t>::max())
{
    std::int64_t v = envKnob(name, fallback);
    std::int64_t clamped = std::min(std::max(v, floor), ceiling);
    if (clamped != v) {
        warn("clamping env knob %s=%lld to %lld", name.c_str(),
             static_cast<long long>(v), static_cast<long long>(clamped));
    }
    return clamped;
}

constexpr std::int64_t kIntMax = std::numeric_limits<int>::max();

} // namespace

BenchKnobs
BenchKnobs::fromEnv()
{
    BenchKnobs k;
    k.mixes = static_cast<int>(envKnobClamped("HIRA_MIXES", 6, 1, kIntMax));
    k.cycles = envKnobClamped("HIRA_CYCLES", 150000, 1);
    k.warmup = envKnobClamped("HIRA_WARMUP", 30000, 0);
    k.rows = static_cast<int>(envKnobClamped("HIRA_ROWS", 256, 1, kIntMax));
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    k.threads = static_cast<int>(
        envKnobClamped("HIRA_THREADS", hw > 0 ? hw : 4, 1, kIntMax));
    // 1024 cores is far past anything the model is calibrated for, but
    // bounds memory: each core carries a window plus a trace source.
    k.cores = static_cast<int>(envKnobClamped("HIRA_CORES", 8, 1, 1024));
    return k;
}

} // namespace hira
