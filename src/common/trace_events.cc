#include "common/trace_events.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace hira {

namespace {

/** Minimal JSON string escaping for event/category names. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

TraceEventLog &
TraceEventLog::global()
{
    static TraceEventLog log;
    return log;
}

TraceEventLog::TraceEventLog()
{
    t0_ = std::chrono::steady_clock::now();
    const char *path = std::getenv("HIRA_TRACE_EVENTS");
    if (path != nullptr && *path != '\0') {
        path_ = path;
        enabled_ = true;
    }
}

TraceEventLog::~TraceEventLog()
{
    flush();
}

double
TraceEventLog::nowUs() const
{
    auto dt = std::chrono::steady_clock::now() - t0_;
    return std::chrono::duration<double, std::micro>(dt).count();
}

int
TraceEventLog::tidLocked()
{
    auto id = std::this_thread::get_id();
    auto it = tids_.find(id);
    if (it == tids_.end())
        it = tids_.emplace(id, static_cast<int>(tids_.size())).first;
    return it->second;
}

void
TraceEventLog::emitLocked(std::string event)
{
    if (!enabled_ || flushed_)
        return;
    events_.push_back(std::move(event));
}

void
TraceEventLog::begin(const std::string &name, const char *category)
{
    if (!enabled_)
        return;
    double ts = nowUs();
    std::lock_guard<std::mutex> lock(m);
    emitLocked(strprintf(
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"B\", "
        "\"ts\": %.3f, \"pid\": 1, \"tid\": %d}",
        jsonEscape(name).c_str(), category, ts, tidLocked()));
}

void
TraceEventLog::end(const std::string &name, const char *category)
{
    if (!enabled_)
        return;
    double ts = nowUs();
    std::lock_guard<std::mutex> lock(m);
    emitLocked(strprintf(
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"E\", "
        "\"ts\": %.3f, \"pid\": 1, \"tid\": %d}",
        jsonEscape(name).c_str(), category, ts, tidLocked()));
}

void
TraceEventLog::complete(const std::string &name, const char *category,
                        double ts_us, double dur_us,
                        const std::string &args_json)
{
    if (!enabled_)
        return;
    std::string args;
    if (!args_json.empty())
        args = strprintf(", \"args\": {%s}", args_json.c_str());
    std::lock_guard<std::mutex> lock(m);
    emitLocked(strprintf(
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d%s}",
        jsonEscape(name).c_str(), category, ts_us, dur_us, tidLocked(),
        args.c_str()));
}

void
TraceEventLog::counter(const std::string &name, double value)
{
    if (!enabled_)
        return;
    double ts = nowUs();
    std::lock_guard<std::mutex> lock(m);
    emitLocked(strprintf(
        "{\"name\": \"%s\", \"cat\": \"counter\", \"ph\": \"C\", "
        "\"ts\": %.3f, \"pid\": 1, \"tid\": %d, "
        "\"args\": {\"value\": %g}}",
        jsonEscape(name).c_str(), ts, tidLocked(), value));
}

void
TraceEventLog::flush()
{
    std::lock_guard<std::mutex> lock(m);
    if (!enabled_ || flushed_)
        return;
    flushed_ = true;
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
        warn("HIRA_TRACE_EVENTS: cannot open '%s' for writing",
             path_.c_str());
        return;
    }
    std::fputs("{\"traceEvents\": [\n", f);
    for (std::size_t i = 0; i < events_.size(); ++i) {
        std::fputs(events_[i].c_str(), f);
        if (i + 1 < events_.size())
            std::fputc(',', f);
        std::fputc('\n', f);
    }
    std::fputs("], \"displayTimeUnit\": \"ms\"}\n", f);
    std::fclose(f);
    events_.clear();
    events_.shrink_to_fit();
}

void
TraceEventLog::resetForTest(const std::string &path)
{
    std::lock_guard<std::mutex> lock(m);
    events_.clear();
    tids_.clear();
    flushed_ = false;
    path_ = path;
    enabled_ = !path.empty();
    t0_ = std::chrono::steady_clock::now();
}

std::size_t
TraceEventLog::bufferedEvents() const
{
    std::lock_guard<std::mutex> lock(m);
    return events_.size();
}

} // namespace hira
