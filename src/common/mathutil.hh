/**
 * @file
 * Numerics helpers for the PARA security analysis (log-space summation of
 * astronomically small probabilities) and general utilities.
 */

#ifndef HIRA_COMMON_MATHUTIL_HH
#define HIRA_COMMON_MATHUTIL_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace hira {

/** log(exp(a) + exp(b)) without overflow/underflow. */
inline double
logAddExp(double a, double b)
{
    if (a == -std::numeric_limits<double>::infinity())
        return b;
    if (b == -std::numeric_limits<double>::infinity())
        return a;
    double hi = a > b ? a : b;
    double lo = a > b ? b : a;
    return hi + std::log1p(std::exp(lo - hi));
}

/**
 * log of the geometric series sum_{i=0}^{n} r^i given log(r) < 0.
 * Uses the closed form log((1 - r^{n+1}) / (1 - r)).
 */
inline double
logGeometricSum(double log_r, std::uint64_t n)
{
    // r^{n+1} in log space.
    double log_rn1 = log_r * static_cast<double>(n + 1);
    // log(1 - r^{n+1}): expm1-free since r^{n+1} may underflow to 0 anyway.
    double log_num = std::log1p(-std::exp(log_rn1));
    double log_den = std::log1p(-std::exp(log_r));
    return log_num - log_den;
}

/** Integer ceil division for unsigned types. */
template <typename T>
constexpr T
ceilDiv(T num, T den)
{
    return (num + den - 1) / den;
}

/** True if |a - b| <= tol * max(1, |a|, |b|). */
inline bool
approxEqual(double a, double b, double tol)
{
    double scale = std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
    return std::fabs(a - b) <= tol * scale;
}

} // namespace hira

#endif // HIRA_COMMON_MATHUTIL_HH
