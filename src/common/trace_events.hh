/**
 * @file
 * Chrome/Perfetto-compatible trace-event emitter (the "Trace Event
 * Format" JSON dialect): `B`/`E` duration spans, `X` complete events
 * with explicit durations, and `C` counter tracks.
 *
 * Enabled by HIRA_TRACE_EVENTS=<file>: the process-wide log buffers
 * events from all threads (sweep workers get stable synthetic tids in
 * first-seen order) and writes the file once, on flush() or at process
 * exit. Open the result in ui.perfetto.dev or chrome://tracing.
 *
 * Timestamps are wall-clock microseconds since the log was created —
 * tracing observes the simulator, it never feeds back into simulation
 * state, so traced runs stay bitwise-identical to untraced ones.
 *
 * All emit calls are cheap no-ops when the log is disabled; callers on
 * per-cycle paths should still gate on enabled() (or a cached pointer)
 * before formatting arguments.
 */

#ifndef HIRA_COMMON_TRACE_EVENTS_HH
#define HIRA_COMMON_TRACE_EVENTS_HH

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace hira {

/** The process-wide trace-event log. */
class TraceEventLog
{
  public:
    /** The singleton, configured from HIRA_TRACE_EVENTS on first use. */
    static TraceEventLog &global();

    /** True when a destination file is configured. */
    bool enabled() const { return enabled_; }

    /** Microseconds since the log was created (event timestamp base). */
    double nowUs() const;

    /** Begin a duration span on the calling thread. */
    void begin(const std::string &name, const char *category);

    /** End the calling thread's innermost span. */
    void end(const std::string &name, const char *category);

    /**
     * Complete event with explicit start/duration (microseconds), e.g.
     * a sweep work item measured by the worker itself. @p args_json is
     * a preformatted JSON object body ("\"queue_wait_us\": 12.5") or
     * empty.
     */
    void complete(const std::string &name, const char *category,
                  double ts_us, double dur_us,
                  const std::string &args_json = std::string());

    /** Sample a counter track (one series per name). */
    void counter(const std::string &name, double value);

    /**
     * Write the trace file (once; later calls and later events are
     * dropped). Also runs at process exit for abandoned logs.
     */
    void flush();

    // Testing hooks: rebind the destination (path empty = disable) and
    // drop any buffered events / the written flag.
    void resetForTest(const std::string &path);
    std::size_t bufferedEvents() const;

    ~TraceEventLog();

  private:
    TraceEventLog();

    int tidLocked();
    void emitLocked(std::string event);

    mutable std::mutex m;
    bool enabled_ = false;
    bool flushed_ = false;
    std::string path_;
    std::vector<std::string> events_;
    std::unordered_map<std::thread::id, int> tids_;
    std::chrono::steady_clock::time_point t0_;
};

/** RAII B/E span on the global log. */
class TraceSpan
{
  public:
    TraceSpan(std::string name, const char *category)
        : name_(std::move(name)), category_(category),
          active_(TraceEventLog::global().enabled())
    {
        if (active_)
            TraceEventLog::global().begin(name_, category_);
    }

    ~TraceSpan()
    {
        if (active_)
            TraceEventLog::global().end(name_, category_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    std::string name_;
    const char *category_;
    bool active_;
};

} // namespace hira

#endif // HIRA_COMMON_TRACE_EVENTS_HH
