#include "characterize/rowhammer.hh"

#include "characterize/coverage.hh"
#include "common/logging.hh"

namespace hira {

bool
rhTestOnce(SoftMCHost &host, const RhConfig &cfg, RowId victim,
           RowId dummy_row, std::uint64_t hc, bool with_hira)
{
    const ChipConfig &chip_cfg = host.chipRef().config();
    hira_assert(victim > 0 && victim + 1 < chip_cfg.rowsPerBank);
    RowId aggr_a = victim - 1;
    RowId aggr_b = victim + 1;

    // Step 1: initialize the four rows (victim gets the pattern, the
    // dummy and both aggressors the inverse).
    host.initializeRow(cfg.bank, victim, cfg.pattern);
    if (dummy_row != kNoRow && dummy_row != victim)
        host.initializeRow(cfg.bank, dummy_row, invert(cfg.pattern));
    host.initializeRow(cfg.bank, aggr_a, invert(cfg.pattern));
    host.initializeRow(cfg.bank, aggr_b, invert(cfg.pattern));

    // Step 2: first half of the hammering. hammerPair performs two
    // activations per iteration, so hc/4 iterations make hc/2
    // activations.
    host.hammerPair(cfg.bank, aggr_a, aggr_b, hc / 4);

    // Step 3: HiRA refresh of the victim, or an equivalent idle wait.
    if (with_hira) {
        host.hiraOp(cfg.bank, dummy_row, victim, cfg.t1, cfg.t2);
    } else {
        host.wait(cfg.t1 + cfg.t2 + SoftMCHost::kRasNs +
                  SoftMCHost::kRpNs);
    }

    // Step 4: second half of the hammering.
    host.hammerPair(cfg.bank, aggr_a, aggr_b, hc / 4);

    // Step 5: check the victim for bit flips.
    return !host.compareRow(cfg.bank, victim, cfg.pattern);
}

std::uint64_t
measureThreshold(SoftMCHost &host, const RhConfig &cfg, RowId victim,
                 RowId dummy_row, bool with_hira)
{
    std::uint64_t lo = cfg.hcLow;
    std::uint64_t hi = cfg.hcHigh;
    // Establish the bracket: no flip at lo, flip at hi. If even hi does
    // not flip, report hi (censored, like a real measurement campaign).
    if (rhTestOnce(host, cfg, victim, dummy_row, lo, with_hira))
        return lo;
    if (!rhTestOnce(host, cfg, victim, dummy_row, hi, with_hira))
        return hi;
    while (hi - lo > cfg.hcTolerance) {
        std::uint64_t mid = lo + (hi - lo) / 2;
        if (rhTestOnce(host, cfg, victim, dummy_row, mid, with_hira))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

std::vector<RowId>
victimRows(const ChipConfig &cfg, std::uint32_t count)
{
    std::vector<RowId> rows = spreadRows(cfg, count);
    for (RowId &r : rows) {
        if (r == 0)
            r = 1;
        if (r + 1 >= cfg.rowsPerBank)
            r = cfg.rowsPerBank - 2;
    }
    return rows;
}

NormalizedNrhResult
measureNormalizedNrh(DramChip &chip, BankId bank,
                     const std::vector<RowId> &victims, const RhConfig &cfg)
{
    NormalizedNrhResult result;
    SoftMCHost host(chip);
    RhConfig run_cfg = cfg;
    run_cfg.bank = bank;
    for (RowId victim : victims) {
        RowId dummy = findHiraPartner(host, bank, victim, run_cfg.t1,
                                      run_cfg.t2);
        if (dummy == kNoRow) {
            // Still exercise the sequence with an arbitrary far row, as a
            // real campaign would (the chip may simply ignore it).
            dummy = (victim + chip.config().rowsPerBank / 2) %
                    chip.config().rowsPerBank;
        }
        std::uint64_t without =
            measureThreshold(host, run_cfg, victim, dummy, false);
        std::uint64_t with =
            measureThreshold(host, run_cfg, victim, dummy, true);
        result.absoluteWithout.add(static_cast<double>(without));
        result.absoluteWith.add(static_cast<double>(with));
        result.normalized.add(static_cast<double>(with) /
                              static_cast<double>(without));
    }
    return result;
}

} // namespace hira
