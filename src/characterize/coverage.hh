/**
 * @file
 * HiRA coverage characterization (Algorithm 1, Section 4.2).
 *
 * For a given row (RowA), coverage is the fraction of other tested rows
 * (RowB) in the same bank that HiRA can reliably activate concurrently
 * with RowA: initialize the pair with inverse data patterns, perform
 * HiRA, close both rows, and read both back — for all four data
 * patterns. A pair counts only if no bit flips in either row for any
 * pattern.
 */

#ifndef HIRA_CHARACTERIZE_COVERAGE_HH
#define HIRA_CHARACTERIZE_COVERAGE_HH

#include <vector>

#include "common/stats.hh"
#include "softmc/host.hh"

namespace hira {

/** Parameters of one coverage experiment. */
struct CoverageConfig
{
    double t1 = 3.0;            //!< first ACT to PRE (ns)
    double t2 = 3.0;            //!< PRE to second ACT (ns)
    BankId bank = 0;
    std::vector<RowId> rows;    //!< tested rows; empty = all chip rows
    bool allPatterns = true;    //!< all four patterns vs just 0xFF/0x00
};

/** Result: per-RowA coverage plus the aggregate distribution. */
struct CoverageResult
{
    std::vector<RowId> rows;
    std::vector<double> perRow; //!< coverage of rows[i]
    SampleSet samples;

    BoxStats box() const { return samples.box(); }
    double mean() const { return samples.mean(); }
    /** Fraction of tested rows with zero coverage. */
    double zeroFraction() const;
};

/**
 * Algorithm 1's inner test: can HiRA concurrently activate (row_a,
 * row_b)? Runs the full init / HiRA / close / verify sequence for each
 * data pattern.
 */
bool hiraPairWorks(SoftMCHost &host, BankId bank, RowId row_a, RowId row_b,
                   double t1, double t2, bool all_patterns = true);

/** Algorithm 1: HiRA coverage for every tested RowA. */
CoverageResult measureCoverage(DramChip &chip, const CoverageConfig &cfg);

/**
 * Find a row HiRA can pair with @p row (the "dummy row" of
 * Algorithm 2). Returns kNoRow if no tested candidate works — the
 * signature of a chip that ignores HiRA... almost: on such chips every
 * pair *appears* to work (no corruption), which is why Algorithm 2
 * exists. Candidates are probed across subarrays.
 */
RowId findHiraPartner(SoftMCHost &host, BankId bank, RowId row, double t1,
                      double t2);

/** Default tested-row selection: @p count rows spread across the bank. */
std::vector<RowId> spreadRows(const ChipConfig &cfg, std::uint32_t count);

} // namespace hira

#endif // HIRA_CHARACTERIZE_COVERAGE_HH
