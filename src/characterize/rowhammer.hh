/**
 * @file
 * RowHammer-threshold verification of HiRA's second row activation
 * (Algorithm 2, Sections 4.3 and 4.4.2).
 *
 * A victim row is double-sided hammered; halfway through, either a HiRA
 * operation whose *second* ACT targets the victim is performed (with
 * HiRA) or the equivalent time passes idle (without HiRA). If the chip
 * really performs the second activation, the victim is refreshed and its
 * measured RowHammer threshold rises (by ~1.9x in the paper).
 */

#ifndef HIRA_CHARACTERIZE_ROWHAMMER_HH
#define HIRA_CHARACTERIZE_ROWHAMMER_HH

#include <vector>

#include "common/stats.hh"
#include "softmc/host.hh"

namespace hira {

/** Parameters of one RowHammer verification run. */
struct RhConfig
{
    double t1 = 3.0;
    double t2 = 3.0;
    BankId bank = 0;
    DataPattern pattern = DataPattern::Checker;
    std::uint64_t hcLow = 4096;     //!< binary-search lower bound
    std::uint64_t hcHigh = 262144;  //!< binary-search upper bound
    std::uint64_t hcTolerance = 512; //!< search resolution
};

/**
 * Algorithm 2 body at a fixed hammer count.
 * @param hc total aggressor activations across both phases
 * @param with_hira insert the HiRA refresh between the two phases
 * @param dummy_row HiRA's first-ACT target (ignored without HiRA)
 * @return true iff the victim row shows at least one bit flip
 */
bool rhTestOnce(SoftMCHost &host, const RhConfig &cfg, RowId victim,
                RowId dummy_row, std::uint64_t hc, bool with_hira);

/**
 * Measured RowHammer threshold of @p victim via binary search (as in
 * [79, 129, 180]): the smallest tested hammer count that flips a bit.
 */
std::uint64_t measureThreshold(SoftMCHost &host, const RhConfig &cfg,
                               RowId victim, RowId dummy_row,
                               bool with_hira);

/** Distributions produced by the §4.3 experiment over many rows. */
struct NormalizedNrhResult
{
    SampleSet absoluteWithout; //!< thresholds without HiRA (Fig. 5a)
    SampleSet absoluteWith;    //!< thresholds with HiRA (Fig. 5a)
    SampleSet normalized;      //!< with / without per row (Fig. 5b)
};

/**
 * Run the full §4.3 experiment on the given victim rows of one bank.
 * Victims whose HiRA partner search fails fall back to a fixed dummy,
 * exactly as a real test would still issue the (possibly ignored)
 * sequence.
 */
NormalizedNrhResult measureNormalizedNrh(DramChip &chip, BankId bank,
                                         const std::vector<RowId> &victims,
                                         const RhConfig &cfg = {});

/** Victim rows for NRH tests: like spreadRows but away from bank edges. */
std::vector<RowId> victimRows(const ChipConfig &cfg, std::uint32_t count);

} // namespace hira

#endif // HIRA_CHARACTERIZE_ROWHAMMER_HH
