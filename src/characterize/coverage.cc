#include "characterize/coverage.hh"

#include "common/logging.hh"

namespace hira {

double
CoverageResult::zeroFraction() const
{
    if (perRow.empty())
        return 0.0;
    std::size_t zeros = 0;
    for (double c : perRow)
        zeros += c == 0.0 ? 1 : 0;
    return static_cast<double>(zeros) / static_cast<double>(perRow.size());
}

bool
hiraPairWorks(SoftMCHost &host, BankId bank, RowId row_a, RowId row_b,
              double t1, double t2, bool all_patterns)
{
    if (row_a == row_b)
        return false;
    int npat = all_patterns ? 4 : 2;
    for (int pi = 0; pi < npat; ++pi) {
        DataPattern p = kAllPatterns[pi];
        // Initialize the two rows with inverse data patterns (lines 7-8).
        host.initializeRow(bank, row_a, p);
        host.initializeRow(bank, row_b, invert(p));
        // Perform HiRA and close both rows (lines 11-16).
        host.hiraOp(bank, row_a, row_b, t1, t2);
        // Read back and check for bit flips (lines 19-20).
        bool a_ok = host.compareRow(bank, row_a, p);
        bool b_ok = host.compareRow(bank, row_b, invert(p));
        if (!(a_ok && b_ok))
            return false;
    }
    return true;
}

std::vector<RowId>
spreadRows(const ChipConfig &cfg, std::uint32_t count)
{
    std::vector<RowId> rows;
    count = std::min(count, cfg.rowsPerBank);
    if (count == 0)
        return rows;
    // Even stride across the bank so every subarray is represented,
    // mirroring the paper's first/middle/last-2K selection (footnote 4).
    double stride = static_cast<double>(cfg.rowsPerBank) / count;
    rows.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        RowId r = static_cast<RowId>(static_cast<double>(i) * stride);
        if (r >= cfg.rowsPerBank)
            r = cfg.rowsPerBank - 1;
        if (rows.empty() || rows.back() != r)
            rows.push_back(r);
    }
    return rows;
}

CoverageResult
measureCoverage(DramChip &chip, const CoverageConfig &cfg)
{
    SoftMCHost host(chip);
    CoverageResult result;
    result.rows = cfg.rows;
    if (result.rows.empty()) {
        result.rows.resize(chip.config().rowsPerBank);
        for (RowId r = 0; r < chip.config().rowsPerBank; ++r)
            result.rows[r] = r;
    }

    for (RowId row_a : result.rows) {
        std::uint32_t row_count = 0;
        for (RowId row_b : result.rows) {
            if (row_b == row_a)
                continue;
            if (hiraPairWorks(host, cfg.bank, row_a, row_b, cfg.t1,
                              cfg.t2, cfg.allPatterns)) {
                ++row_count;
            }
        }
        double coverage = static_cast<double>(row_count) /
                          static_cast<double>(result.rows.size());
        result.perRow.push_back(coverage);
        result.samples.add(coverage);
    }
    return result;
}

RowId
findHiraPartner(SoftMCHost &host, BankId bank, RowId row, double t1,
                double t2)
{
    const ChipConfig &cfg = host.chipRef().config();
    std::uint32_t rows_per_sub = cfg.rowsPerSubarray();
    // Probe one candidate per subarray, offset to avoid row 0 artifacts.
    for (SubarrayId s = 0; s < cfg.subarraysPerBank; ++s) {
        RowId cand = s * rows_per_sub + rows_per_sub / 2;
        if (cand == row || cand >= cfg.rowsPerBank)
            continue;
        if (hiraPairWorks(host, bank, row, cand, t1, t2))
            return cand;
    }
    return kNoRow;
}

} // namespace hira
