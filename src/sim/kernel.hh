/**
 * @file
 * The (engine x scheme) kernel-dispatch layer.
 *
 * Every simulated cycle used to pay virtual dispatch into the refresh
 * scheme (tick / onActivate / nextEventCycle) from the controller's
 * inner loop. The specialized kernels remove that cost the way 86Box's
 * dynarec backends replace its generic interpreter: the hot path is
 * instantiated once per concrete scheme type at compile time
 * (MemoryController::tickAs<S> and System's templated run loops, see
 * src/mem/controller_kernel.hh) and the right instantiation is picked
 * ONCE per run by visiting the KernelVariant below — never per cycle.
 *
 * The virtual path stays fully supported as the *generic oracle*: it
 * is the same template instantiated with S = RefreshScheme, whose
 * SchemeOps degenerate to ordinary virtual calls. HIRA_KERNEL selects
 * between the two, and tests/sim/test_kernel_diff.cc pins them
 * bitwise-identical at the SystemResult level for every scheme, both
 * engines, and all workload kinds.
 */

#ifndef HIRA_SIM_KERNEL_HH
#define HIRA_SIM_KERNEL_HH

#include <variant>

namespace hira {

class RefreshScheme;
class NoRefresh;
class BaselineRefresh;
class HiraMc;
class RfmRefresh;
class PracRefresh;
class GrapheneTrr;

/** Which refresh scheme the controllers run. */
enum class SchemeKind
{
    NoRefresh, //!< ideal, no periodic refresh (Fig. 9a baseline)
    Baseline,  //!< rank-level REF every tREFI
    HiraMc,    //!< HiRA-MC (HiRA-N via HiraMcConfig::slackN)
    Rfm,       //!< DDR5 refresh management (per-bank RAA counters)
    Prac,      //!< per-row activation counters, threshold refresh
    Graphene,  //!< Misra-Gries tracker with per-tREFI TRR refreshes
};

/**
 * Simulation-kernel flavor. Both produce bitwise-identical
 * SystemResult values (pinned by tests/sim/test_kernel_diff.cc); they
 * differ only in how the scheme's hooks are dispatched on the
 * per-cycle hot path.
 */
enum class SimKernel
{
    Generic,     //!< virtual dispatch throughout (the reference oracle)
    Specialized, //!< per-scheme instantiation, hooks devirtualized
};

/**
 * Kernel selected by the HIRA_KERNEL environment variable ("generic"
 * or "specialized"; default "specialized"). Read on every call so
 * tests can flip the variable between runs; unknown values warn once
 * (naming the accepted set) and fall back to the default.
 */
SimKernel defaultSimKernel();

/** Display name ("generic" / "specialized") for logs and artifacts. */
const char *simKernelName(SimKernel kernel);

/**
 * Compile-time handle on one scheme specialization: an empty tag whose
 * `type` is the concrete scheme class the kernel is instantiated for
 * (RefreshScheme itself tags the generic oracle).
 */
template <class S>
struct SchemeTag
{
    using type = S;
};

/**
 * The closed set of simulation-kernel specializations. Visiting this
 * variant is the single run-time -> compile-time dispatch point of a
 * run; adding a scheme to the registry means adding its tag here and
 * one case to kernelVariantFor() — the differential suite then covers
 * it automatically (see BUILDING.md "Adding a new refresh scheme").
 */
using KernelVariant = std::variant<SchemeTag<RefreshScheme>, // generic
                                   SchemeTag<NoRefresh>,
                                   SchemeTag<BaselineRefresh>,
                                   SchemeTag<HiraMc>,
                                   SchemeTag<RfmRefresh>,
                                   SchemeTag<PracRefresh>,
                                   SchemeTag<GrapheneTrr>>;

/**
 * The kernel specialization for @p kind under @p kernel: the matching
 * concrete scheme tag when specialized, the RefreshScheme (oracle) tag
 * when generic. Panics on an out-of-range SchemeKind under either
 * kernel — the kind keys a static_cast in the specialized hot path, so
 * an unmapped value must never reach a run loop.
 */
KernelVariant kernelVariantFor(SchemeKind kind, SimKernel kernel);

} // namespace hira

#endif // HIRA_SIM_KERNEL_HH
