#include "sim/kernel.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace hira {

SimKernel
defaultSimKernel()
{
    const char *v = std::getenv("HIRA_KERNEL");
    if (v == nullptr || *v == '\0')
        return SimKernel::Specialized;
    if (std::strcmp(v, "specialized") == 0)
        return SimKernel::Specialized;
    if (std::strcmp(v, "generic") == 0)
        return SimKernel::Generic;
    warn_once("unknown HIRA_KERNEL='%s' (expected 'generic' or "
              "'specialized'); using 'specialized'",
              v);
    return SimKernel::Specialized;
}

const char *
simKernelName(SimKernel kernel)
{
    return kernel == SimKernel::Generic ? "generic" : "specialized";
}

KernelVariant
kernelVariantFor(SchemeKind kind, SimKernel kernel)
{
    const bool generic = kernel == SimKernel::Generic;
    switch (kind) {
      case SchemeKind::NoRefresh:
        return generic ? KernelVariant{SchemeTag<RefreshScheme>{}}
                       : KernelVariant{SchemeTag<NoRefresh>{}};
      case SchemeKind::Baseline:
        return generic ? KernelVariant{SchemeTag<RefreshScheme>{}}
                       : KernelVariant{SchemeTag<BaselineRefresh>{}};
      case SchemeKind::HiraMc:
        return generic ? KernelVariant{SchemeTag<RefreshScheme>{}}
                       : KernelVariant{SchemeTag<HiraMc>{}};
      case SchemeKind::Rfm:
        return generic ? KernelVariant{SchemeTag<RefreshScheme>{}}
                       : KernelVariant{SchemeTag<RfmRefresh>{}};
      case SchemeKind::Prac:
        return generic ? KernelVariant{SchemeTag<RefreshScheme>{}}
                       : KernelVariant{SchemeTag<PracRefresh>{}};
      case SchemeKind::Graphene:
        return generic ? KernelVariant{SchemeTag<RefreshScheme>{}}
                       : KernelVariant{SchemeTag<GrapheneTrr>{}};
    }
    panic("SchemeKind %d is outside the kernel registry "
          "(sim/kernel.hh KernelVariant)",
          static_cast<int>(kind));
}

} // namespace hira
