/**
 * @file
 * Synthetic instruction-trace generation.
 *
 * Substitute for SPEC CPU2006 traces (DESIGN.md): each benchmark profile
 * fixes the statistics that matter to the memory system — memory
 * intensity, read/write mix, sequential-stream fraction (row-buffer
 * locality), cache-resident hot-set fraction, and footprint. Each core
 * draws an independent, seeded stream over a private slice of the
 * physical address space (multiprogrammed workloads share nothing).
 */

#ifndef HIRA_SIM_TRACE_HH
#define HIRA_SIM_TRACE_HH

#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "workload/trace_source.hh"

namespace hira {

/** Memory-behavior profile of one synthetic benchmark. */
struct BenchmarkProfile
{
    std::string name;
    double memPerInstr;       //!< P(instruction accesses memory)
    double writeFraction;     //!< of memory accesses
    double streamFraction;    //!< sequential-stream accesses (row locality)
    double hotFraction;       //!< accesses to the cache-resident hot set
    std::uint64_t footprintLines; //!< total working set, 64 B lines
    std::uint64_t hotLines;       //!< hot-set size, 64 B lines
};

/** Deterministic synthetic trace generator for one core. */
class TraceGen final : public TraceSource
{
  public:
    /**
     * @param profile benchmark statistics
     * @param seed per-core stream seed
     * @param base_addr start of the core's private address slice
     * @param slice_bytes size of the slice (footprint clamps to it)
     */
    TraceGen(const BenchmarkProfile &profile, std::uint64_t seed,
             Addr base_addr, Addr slice_bytes);

    /** Generate the next instruction. */
    TraceInst next() override;

    Addr regionBase() const override { return base; }

    const BenchmarkProfile &profile() const { return prof; }

  private:
    Addr lineAddr(std::uint64_t line_index) const;

    BenchmarkProfile prof;
    Rng rng;
    Addr base;
    std::uint64_t footprint;  //!< lines, clamped to the slice
    std::uint64_t hot;        //!< lines
    std::uint64_t streamPtr = 0;
};

} // namespace hira

#endif // HIRA_SIM_TRACE_HH
