/**
 * @file
 * The synthetic benchmark pool (SPEC CPU2006-inspired; see DESIGN.md)
 * and the multiprogrammed mix generator (the paper's 125 randomly
 * chosen 8-core workloads, Section 7).
 */

#ifndef HIRA_SIM_WORKLOADS_HH
#define HIRA_SIM_WORKLOADS_HH

#include <vector>

#include "sim/trace.hh"

namespace hira {

/** The full benchmark pool (18 profiles spanning the SPEC spectrum). */
const std::vector<BenchmarkProfile> &benchmarkPool();

/** Look up a profile by name; fatal on unknown names. */
const BenchmarkProfile &benchmarkByName(const std::string &name);

/** One multiprogrammed workload: benchmark names, one per core. */
using WorkloadMix = std::vector<std::string>;

/**
 * Generate @p count random mixes of @p cores benchmarks each, seeded
 * (mix i is identical across runs and machines).
 */
std::vector<WorkloadMix> makeMixes(int count, int cores,
                                   std::uint64_t seed = 0x5eed5);

} // namespace hira

#endif // HIRA_SIM_WORKLOADS_HH
