/**
 * @file
 * Experiment runner for the evaluation sweeps (Sections 7-10): builds
 * systems from compact specs, runs warmup + measurement, computes
 * weighted speedup [31, 156] against cached single-core IPC-alone runs,
 * and shards whole sweep grids over a persistent thread pool.
 */

#ifndef HIRA_SIM_EXPERIMENT_HH
#define HIRA_SIM_EXPERIMENT_HH

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/knobs.hh"
#include "common/rng.hh"
#include "common/worker_pool.hh"
#include "dram/standard.hh"
#include "security/para_analysis.hh"
#include "sim/system.hh"

namespace hira {

class ResultCache;

/** Memory-system geometry of one experiment point. */
struct GeomSpec
{
    double capacityGb = 8.0;
    int channels = 1;
    int ranks = 1;
    /**
     * Memory-standard registry name (dram/standard.hh) the timing
     * parameters come from. Defaults to the HIRA_STANDARD knob (or
     * DDR4-2400), so every bench driver sweeps the selected standard
     * without its own plumbing.
     */
    std::string standard = defaultStandardName();

    Geometry toGeometry() const;
    TimingParams toTiming() const;
    std::string key() const;
};

/** Refresh / defense configuration of one experiment point. */
struct SchemeSpec
{
    SchemeKind kind = SchemeKind::Baseline;
    int slackN = 2;            //!< HiRA-N
    int refPostpone = 0;       //!< elastic-refresh postponement bound
    bool periodicViaHira = true;

    bool paraEnabled = false;  //!< PARA preventive refreshes
    double nrh = 1024.0;       //!< RowHammer threshold for pth
    bool preventiveViaHira = false; //!< PreventiveRC vs immediate PARA

    // Ablation switches.
    bool accessPairing = true;
    bool refreshPairing = true;
    bool pullAhead = true;
    double sptIsolation = 0.32;

    // Mitigation-zoo knobs (covered by the registry's seed-key
    // suffixes; see sim/scheme_registry.hh).
    int raaimt = 32;         //!< RFM: ACTs per bank per RFM
    int pracThreshold = 256; //!< PRAC: per-row activation threshold
    int trackerSize = 16;    //!< Graphene: Misra-Gries entries per bank

    std::string label() const;

    /**
     * Deterministic key of every behavior-affecting field, used to
     * seed per-run RNG streams. label() is for humans and collapses
     * distinct points (e.g. all Baseline+PARA(HiRA) thresholds share
     * one label), so it must never feed the seed.
     */
    std::string seedKey() const;
};

/** Result of one (mix, geometry, scheme) simulation. */
struct RunResult
{
    std::vector<double> ipc;
    SystemResult sys;
    /** Wall clock spent simulating (construction + warmup + run). */
    double wallSeconds = 0.0;
    /** Memory-bus cycles simulated (warmup + measurement). */
    std::uint64_t simCycles = 0;
    /**
     * Metrics scoped to the measurement interval (the post-warmup
     * snapshot is diffed away). Empty when HIRA_METRICS is off.
     */
    MetricsSnapshot metrics;
};

/** One (geometry, scheme) point of a sweep grid. */
struct SweepPoint
{
    GeomSpec geom;
    SchemeSpec scheme;

    /**
     * Canonical result-cache key of this point when evaluated with
     * @p knobs over @p mixes: a multi-line string covering every
     * behavior-affecting input (code revision, geometry key and
     * standard, scheme seed-key, engine/kernel/metrics selection,
     * warmup and measured cycles, and the fully-resolved mix specs —
     * see sim/result_cache.hh). Tools, the daemon, and SweepRunner all
     * derive keys through this one function so they can never disagree
     * on field ordering; golden strings are pinned in
     * tests/sim/test_result_cache.cc. Thread count is deliberately
     * absent (results are bitwise thread-count-independent), as is
     * knobs.rows (unused by sweep simulations).
     */
    std::string cacheKey(const BenchKnobs &knobs,
                         const std::vector<WorkloadMix> &mixes) const;
};

/** Per-point outcome of SweepRunner::runPoints(). */
struct PointResult
{
    double meanWs = 0.0;   //!< mean weighted speedup over the mixes
    RefreshStats refresh;  //!< refresh stats summed over the mixes
    /**
     * Wall clock summed over the point's mix simulations (CPU-seconds
     * when the pool shards them across threads; IPC-alone warmups are
     * shared across points and not attributed). With simCycles this
     * gives the point's cycles/second — the perf trajectory HIRA_JSON
     * artifacts record per sweep point (bench/bench_util.hh).
     */
    double wallSeconds = 0.0;
    std::uint64_t simCycles = 0; //!< bus cycles summed over the mixes
    /**
     * Per-run metrics merged over the point's mixes in mix order
     * (counters and histogram bins sum). Empty when HIRA_METRICS is
     * off. HIRA_JSON drivers surface this as the point's "metrics"
     * object (bench/bench_util.hh).
     */
    MetricsSnapshot metrics;
    /**
     * True when the point was served from the result cache instead of
     * simulated. Not part of the cached payload (a stored entry always
     * re-loads with cacheHit = true); on a hit, wallSeconds/simCycles
     * report the ORIGINAL simulation's cost, with this flag marking the
     * row as replayed (bench timing rows record it as "cache_hit").
     */
    bool cacheHit = false;
};

/**
 * RNG seed of mix @p mixIndex at one (geometry, scheme) sweep point.
 *
 * The geometry key and the scheme's seedKey() are folded in so that no
 * two distinct sweep points share per-mix RNG streams (they did before
 * PR 3, correlating every point of a sweep). Pure function of its
 * inputs — the golden values in tests/sim/test_experiment.cc pin it on
 * every platform.
 */
inline std::uint64_t
sweepRunSeed(const std::string &geomKey, const std::string &schemeKey,
             std::size_t mixIndex)
{
    return hashCombine(hashCombine(hashString(geomKey),
                                   hashString(schemeKey)),
                       hashCombine(0x9152, mixIndex));
}

/**
 * Cache/seed key of the IPC-alone run of workload @p bench on @p geom.
 * SweepRunner::aloneIpc keys its cache and seeds the reference run
 * with hashString() of this string; tools/hira_tracegen replicates it
 * so a manifest's alone-IPC prior equals what a sweep would measure.
 */
inline std::string
aloneIpcCacheKey(const std::string &bench, const GeomSpec &geom)
{
    return bench + "|" + geom.key();
}

/** Assemble a SystemConfig from the compact specs. */
SystemConfig makeSystemConfig(const GeomSpec &geom, const SchemeSpec &scheme,
                              const WorkloadMix &mix, std::uint64_t seed);

/** Run one simulation (warmup + measurement). */
RunResult runOne(const SystemConfig &cfg, Cycle warmup, Cycle measure);

/**
 * Weighted speedup: sum_i IPC_shared_i / IPC_alone_i. Fatal on
 * non-positive or non-finite alone IPC (a degenerate workload, e.g. an
 * instantly-exhausted "file:" trace) instead of returning inf/NaN;
 * @p context names the offending run in the diagnostic.
 */
double weightedSpeedup(const std::vector<double> &ipc_shared,
                       const std::vector<double> &ipc_alone,
                       const std::string &context = std::string());

/**
 * Sweep executor: drivers declare a grid of (geometry, scheme) points
 * and the runner flattens (point x mix) simulations — plus the
 * deduplicated IPC-alone warmup runs — into one queue drained by a
 * single persistent worker pool (knobs.threads wide). The IPC-alone
 * cache is shared across all points of the runner, keyed
 * "bench|geom", with single-flight per key so concurrent shards never
 * duplicate an alone run.
 *
 * Results are bitwise independent of the thread count: every
 * simulation's seed is a pure function of (geometry, scheme, mix
 * index) via sweepRunSeed(), results land in per-index slots, and
 * reductions run on the calling thread in index order.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(const BenchKnobs &knobs);

    /**
     * Evaluate an explicit mix set instead of the generated one. Mix
     * entries are workload specs (pool names or "file:" traces, see
     * src/workload/registry.hh); synthetic and file-backed workloads
     * can share a mix.
     */
    SweepRunner(const BenchKnobs &knobs, std::vector<WorkloadMix> mixes);

    ~SweepRunner(); // out of line: ResultCache is incomplete here

    /** The mixes this runner evaluates (knobs.mixes of the 125). */
    const std::vector<WorkloadMix> &mixes() const { return mixes_; }

    /**
     * Evaluate every point of the plan, sharding all (point x mix)
     * work items across the worker pool at once. Results are in plan
     * order. Worker exceptions are rethrown on the calling thread
     * (first one wins); a fatal() in a worker still exits the process.
     */
    std::vector<PointResult> runPoints(const std::vector<SweepPoint> &plan);

    /**
     * Mean weighted speedup of the scheme on the geometry across the
     * runner's mixes. Thin wrapper over a single-point runPoints().
     */
    double meanWs(const GeomSpec &geom, const SchemeSpec &scheme);

    /** Mean of an arbitrary per-run metric across mixes. */
    double meanMetric(const GeomSpec &geom, const SchemeSpec &scheme,
                      double (*metric)(const RunResult &));

    /**
     * Cached single-core IPC of @p bench alone on @p geom (the
     * weighted-speedup denominator). A "corpus:" workload whose
     * manifest entry carries an alone-IPC prior resolves to the prior
     * without simulating (the prior is the trace's geometry-independent
     * reference IPC; see src/workload/corpus.hh). Otherwise computes
     * and caches on miss; concurrent callers of the same key block on
     * the one in-flight run (single-flight). Fatal if the run yields a
     * non-positive or non-finite IPC, naming the benchmark and
     * geometry.
     */
    double aloneIpc(const std::string &bench, const GeomSpec &geom);

    /** IPC-alone simulations actually run (test hook: cache/dedup). */
    std::uint64_t aloneRunCount() const { return aloneRuns.load(); }

    /**
     * Replace the result cache (tests and the daemon pass an explicit
     * directory; nullptr disables caching). Both constructors install
     * ResultCache::fromEnv(), so HIRA_RESULT_CACHE enables caching for
     * every runner with no driver changes.
     */
    void setResultCache(std::unique_ptr<ResultCache> cache);

    /** The active result cache, or nullptr (stats/metrics access). */
    ResultCache *resultCache() const { return resultCache_.get(); }

    /** Plan points actually simulated by runPoints() (cache misses). */
    std::uint64_t pointsSimulated() const { return pointsSimulated_.load(); }

    /** Plan points served from the result cache by runPoints(). */
    std::uint64_t pointsFromCache() const { return pointsFromCache_.load(); }

    /**
     * Refresh stats of the most recent point evaluated: after
     * meanWs(), that call's mix-summed aggregate; after a multi-point
     * runPoints(), the FINAL plan point's aggregate only (per-point
     * stats are in each PointResult::refresh).
     */
    const RefreshStats &lastRefreshStats() const { return lastRefresh; }

  private:
    std::vector<RunResult> runMixes(const GeomSpec &geom,
                                    const SchemeSpec &scheme);

    /**
     * Install workload @p bench's manifest alone-IPC prior (if any)
     * into the cache as a ready slot under @p key; true on install.
     * Caller must hold cacheMutex. The single cache-seeding path for
     * both aloneIpc() and the runPoints() prescan.
     */
    bool primePriorLocked(const std::string &key, const std::string &bench);

    BenchKnobs knobs;
    std::vector<WorkloadMix> mixes_;
    WorkerPool pool;

    /** Single-flight IPC-alone cache slot ("bench|geom" key). */
    struct AloneSlot
    {
        double ipc = 0.0;
        bool ready = false; //!< false: leader still computing
    };
    std::map<std::string, AloneSlot> aloneCache;
    std::mutex cacheMutex;
    std::condition_variable cacheCv;
    std::atomic<std::uint64_t> aloneRuns{0};

    /** Persistent cross-run result cache (nullptr when disabled). */
    std::unique_ptr<ResultCache> resultCache_;
    std::atomic<std::uint64_t> pointsSimulated_{0};
    std::atomic<std::uint64_t> pointsFromCache_{0};

    RefreshStats lastRefresh;
};

} // namespace hira

#endif // HIRA_SIM_EXPERIMENT_HH
