/**
 * @file
 * Experiment runner for the evaluation sweeps (Sections 7-10): builds
 * systems from compact specs, runs warmup + measurement, computes
 * weighted speedup [31, 156] against cached single-core IPC-alone runs,
 * and fans mixes out over a thread pool.
 */

#ifndef HIRA_SIM_EXPERIMENT_HH
#define HIRA_SIM_EXPERIMENT_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/knobs.hh"
#include "security/para_analysis.hh"
#include "sim/system.hh"

namespace hira {

/** Memory-system geometry of one experiment point. */
struct GeomSpec
{
    double capacityGb = 8.0;
    int channels = 1;
    int ranks = 1;

    Geometry toGeometry() const;
    TimingParams toTiming() const { return ddr4_2400(capacityGb); }
    std::string key() const;
};

/** Refresh / defense configuration of one experiment point. */
struct SchemeSpec
{
    SchemeKind kind = SchemeKind::Baseline;
    int slackN = 2;            //!< HiRA-N
    int refPostpone = 0;       //!< elastic-refresh postponement bound
    bool periodicViaHira = true;

    bool paraEnabled = false;  //!< PARA preventive refreshes
    double nrh = 1024.0;       //!< RowHammer threshold for pth
    bool preventiveViaHira = false; //!< PreventiveRC vs immediate PARA

    // Ablation switches.
    bool accessPairing = true;
    bool refreshPairing = true;
    bool pullAhead = true;
    double sptIsolation = 0.32;

    std::string label() const;
};

/** Result of one (mix, geometry, scheme) simulation. */
struct RunResult
{
    std::vector<double> ipc;
    SystemResult sys;
};

/** Assemble a SystemConfig from the compact specs. */
SystemConfig makeSystemConfig(const GeomSpec &geom, const SchemeSpec &scheme,
                              const WorkloadMix &mix, std::uint64_t seed);

/** Run one simulation (warmup + measurement). */
RunResult runOne(const SystemConfig &cfg, Cycle warmup, Cycle measure);

/** Weighted speedup: sum_i IPC_shared_i / IPC_alone_i. */
double weightedSpeedup(const std::vector<double> &ipc_shared,
                       const std::vector<double> &ipc_alone);

/**
 * Sweep driver: caches IPC-alone runs per (benchmark, geometry) and
 * evaluates mean weighted speedup over a set of mixes with a worker
 * pool.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(const BenchKnobs &knobs);

    /**
     * Evaluate an explicit mix set instead of the generated one. Mix
     * entries are workload specs (pool names or "file:" traces, see
     * src/workload/registry.hh); synthetic and file-backed workloads
     * can share a mix.
     */
    SweepRunner(const BenchKnobs &knobs, std::vector<WorkloadMix> mixes);

    /** The mixes this runner evaluates (knobs.mixes of the 125). */
    const std::vector<WorkloadMix> &mixes() const { return mixes_; }

    /**
     * Mean weighted speedup of the scheme on the geometry across the
     * runner's mixes.
     */
    double meanWs(const GeomSpec &geom, const SchemeSpec &scheme);

    /** Mean of an arbitrary per-run metric across mixes. */
    double meanMetric(const GeomSpec &geom, const SchemeSpec &scheme,
                      double (*metric)(const RunResult &));

    /** Last meanWs call's aggregate refresh stats (reporting). */
    const RefreshStats &lastRefreshStats() const { return lastRefresh; }

  private:
    double aloneIpc(const std::string &bench, const GeomSpec &geom);
    void warmAloneCache(const GeomSpec &geom);
    std::vector<RunResult> runMixes(const GeomSpec &geom,
                                    const SchemeSpec &scheme);

    BenchKnobs knobs;
    std::vector<WorkloadMix> mixes_;
    std::map<std::string, double> aloneCache; //!< "bench|geom" -> IPC
    std::mutex cacheMutex;
    RefreshStats lastRefresh;
};

} // namespace hira

#endif // HIRA_SIM_EXPERIMENT_HH
