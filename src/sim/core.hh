/**
 * @file
 * Trace-driven core model (Table 3: 3.2 GHz, 4-wide issue, 128-entry
 * instruction window), at the same modeling altitude as Ramulator's
 * simple OOO core: non-memory instructions retire at full width, loads
 * occupy a window slot until their data returns, stores are posted.
 */

#ifndef HIRA_SIM_CORE_HH
#define HIRA_SIM_CORE_HH

#include <vector>

#include "sim/cache.hh"
#include "workload/trace_source.hh"

namespace hira {

/** One simulated core. */
class CoreModel
{
  public:
    /**
     * @param core_id core id
     * @param trace this core's trace source (owned by caller)
     * @param shared_llc the shared LLC
     * @param issue_width issue/retire width (4)
     * @param window instruction-window entries (128)
     */
    CoreModel(int core_id, TraceSource &trace, Llc &shared_llc,
              int issue_width = 4, int window = 128);

    /** Advance one CPU cycle (@p mem_now is the memory-clock time). */
    void tick(Cycle mem_now);

    /** A missed load's data returned (tag from the access). */
    void onDataReturn(std::uint64_t tag);

    /** Begin the measurement interval. */
    void resetStats();

    std::uint64_t retiredInstructions() const { return retired; }
    Cycle cpuCycles() const { return cpuCycle; }
    double
    ipc() const
    {
        return cpuCycle == 0
                   ? 0.0
                   : static_cast<double>(retired) /
                         static_cast<double>(cpuCycle);
    }

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t stallCycles = 0; //!< cycles with zero dispatch

  private:
    struct Slot
    {
        bool valid = false;
        bool done = false;
        Cycle readyAt = 0;         //!< CPU cycle a hit completes
        std::uint64_t tag = 0;     //!< for miss matching
        bool waitingMem = false;
    };

    bool dispatchOne(Cycle mem_now);
    void retireReady();

    int id;
    TraceSource &gen;
    Llc &llc;
    int width;
    int windowSize;
    std::vector<Slot> window;
    std::size_t head = 0, tail = 0, occupancy = 0;
    std::uint64_t nextTag = 1;
    bool hasPendingInst = false;
    TraceInst pendingInst;

    Cycle cpuCycle = 0;
    std::uint64_t retired = 0;
};

} // namespace hira

#endif // HIRA_SIM_CORE_HH
