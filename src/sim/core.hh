/**
 * @file
 * Trace-driven core model (Table 3: 3.2 GHz, 4-wide issue, 128-entry
 * instruction window), at the same modeling altitude as Ramulator's
 * simple OOO core: non-memory instructions retire at full width, loads
 * occupy a window slot until their data returns, stores are posted.
 */

#ifndef HIRA_SIM_CORE_HH
#define HIRA_SIM_CORE_HH

#include <vector>

#include "common/metrics.hh"
#include "sim/cache.hh"
#include "workload/trace_source.hh"

namespace hira {

/** One simulated core. */
class CoreModel
{
  public:
    /**
     * @param core_id core id
     * @param trace this core's trace source (owned by caller)
     * @param shared_llc the shared LLC
     * @param issue_width issue/retire width (4)
     * @param window instruction-window entries (128)
     * @param allow_exhausted_ff permit the exhausted-trace fast-forward
     *        (see skipTicks()); must be false when the trace source has
     *        to observe every next() call (e.g. a TraceRecorder dump)
     */
    CoreModel(int core_id, TraceSource &trace, Llc &shared_llc,
              int issue_width = 4, int window = 128,
              bool allow_exhausted_ff = true);

    /** Advance one CPU cycle (@p mem_now is the memory-clock time). */
    void tick(Cycle mem_now);

    /**
     * Event-engine probe: how many upcoming CPU cycles tick() is
     * guaranteed to evolve in closed form, so the event kernel can
     * fast-forward them in bulk. Two closed-form regimes exist:
     *
     * - Stalled: dispatch is blocked (window full, or the pending
     *   memory instruction is LLC-blocked) and the window head cannot
     *   retire. Each tick is exactly {++cpuCycle, ++stallCycles}.
     *   Returns the tick count until the head's readyAt unblocks
     *   retirement, or kNeverCycle when only an external data return
     *   can end the stall (the kernel wakes at the completion's cycle).
     * - Exhausted steady run: the trace has run dry (only non-memory
     *   instructions remain, per the TraceSource contract), nothing
     *   waits on memory, and every window slot is retirable. Each tick
     *   retires and re-dispatches exactly `width` instructions with no
     *   LLC interaction. Returns kNeverCycle (bounded by the caller).
     *
     * Returns 0 when the next tick must run normally. The caller must
     * invoke fastForward() with at most this many ticks before any
     * other core/LLC/controller activity occurs.
     *
     * Inline: the event kernel probes every core every executed cycle.
     */
    Cycle
    skipTicks() const
    {
        if (steadyExhausted())
            return kNeverCycle;
        // Stall regime: dispatch blocked and no retirement possible.
        bool blocked =
            occupancy >= static_cast<std::size_t>(windowSize) ||
            hasPendingInst;
        if (!blocked)
            return 0;
        if (occupancy == 0)
            return kNeverCycle; // LLC-blocked with an empty window
        const Slot &h = window[head];
        if (!h.done)
            return kNeverCycle; // head waits on memory: external wake only
        if (h.readyAt <= cpuCycle + 1)
            return 0; // next tick retires the head
        return h.readyAt - cpuCycle - 1;
    }

    /** Apply @p nticks closed-form ticks (see skipTicks()). */
    void fastForward(Cycle nticks);

    /**
     * Register this core's dense-vs-skipped observability counters
     * under @p scope ("core<i>."). ff_ticks counts CPU ticks applied in
     * closed form by fastForward(); ff_calls counts the bulk
     * applications. Retired/loads/stores/stalls are mirrored into the
     * registry at snapshot time instead (zero hot-path cost).
     */
    void
    attachMetrics(const MetricScope &scope)
    {
        ffTicksMetric = scope.counter("ff_ticks");
        ffCallsMetric = scope.counter("ff_calls");
    }

    /** A missed load's data returned (tag from the access). */
    void onDataReturn(std::uint64_t tag);

    /** Begin the measurement interval. */
    void resetStats();

    std::uint64_t retiredInstructions() const { return retired; }
    Cycle cpuCycles() const { return cpuCycle; }
    double
    ipc() const
    {
        return cpuCycle == 0
                   ? 0.0
                   : static_cast<double>(retired) /
                         static_cast<double>(cpuCycle);
    }

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t stallCycles = 0; //!< cycles with zero dispatch

  private:
    struct Slot
    {
        bool valid = false;
        bool done = false;
        Cycle readyAt = 0;         //!< CPU cycle a hit completes
        std::uint64_t tag = 0;     //!< for miss matching
        bool waitingMem = false;
    };

    bool dispatchOne(Cycle mem_now);
    void retireReady();

    bool
    steadyExhausted() const
    {
        // All conditions together guarantee a closed-form tick: only
        // non-memory instructions remain (TraceSource contract once
        // exhausted() holds), nothing waits on memory, every window
        // slot is retirable (maxReadyAt is a monotone
        // over-approximation), and the window is deep enough that each
        // tick retires and re-dispatches exactly `width` instructions.
        // Ordered cheapest-reject-first; the virtual exhausted() call
        // comes last.
        return allowExhaustedFf && waitingMemCount == 0 &&
               !hasPendingInst && maxReadyAt <= cpuCycle &&
               occupancy >= static_cast<std::size_t>(width) &&
               windowSize >= width && gen.exhausted();
    }

    int id;
    TraceSource &gen;
    Llc &llc;
    int width;
    int windowSize;
    bool allowExhaustedFf;
    std::vector<Slot> window;
    std::size_t head = 0, tail = 0, occupancy = 0;
    std::uint64_t nextTag = 1;
    bool hasPendingInst = false;
    TraceInst pendingInst;
    // Blocked-dispatch memo: the pending memory instruction was Blocked
    // by the LLC at capacityGeneration() == blockedGen. Until that
    // counter moves, re-probing llc.access() provably returns Blocked
    // again (capacity only shrinks between generation bumps), so
    // dispatchOne() skips the probe. Pure per-core state driven by
    // deterministic LLC events: identical in both engines.
    bool blockedCached = false;
    std::uint64_t blockedGen = 0;

    // Event-engine bookkeeping: outstanding memory waits, and a
    // monotone upper bound on every readyAt ever assigned (conservative
    // retirability test without scanning the window).
    std::size_t waitingMemCount = 0;
    Cycle maxReadyAt = 0;

    Cycle cpuCycle = 0;
    std::uint64_t retired = 0;

    // Observability (nullptr when metrics are off; see attachMetrics).
    Counter *ffTicksMetric = nullptr;
    Counter *ffCallsMetric = nullptr;
};

} // namespace hira

#endif // HIRA_SIM_CORE_HH
