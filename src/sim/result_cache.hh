/**
 * @file
 * Content-addressed, file-backed cache of sweep results.
 *
 * The determinism work of PRs 3/5 made every simulation a pure
 * function of its inputs: per-run seeds derive injectively from
 * (geometry key, scheme seed-key, mix index), engines and kernels are
 * bitwise-equivalent, and corpus priors round-trip exactly. That is
 * what makes memoizing PointResults sound — and this cache is that
 * memo, shared across processes through a directory of single-file
 * entries committed by atomic rename.
 *
 * Keys are canonical multi-line strings covering every
 * behavior-affecting input (see SweepPoint::cacheKey in
 * sim/experiment.hh and aloneResultCacheKey below): run seeds (via the
 * geometry/scheme keys they derive from), the fully-resolved mix specs
 * including corpus manifest priors and "?once" options, warmup and
 * measured cycles, SimEngine, SimKernel, metrics level, the memory
 * standard, and a code-revision stamp (the configure-time git rev, so
 * a rebuilt kernel never serves stale numbers). The entry file stores
 * the full key and is rejected as stale when it does not match the
 * lookup key — a hash collision or a tampered file can never alias.
 *
 * Knobs: HIRA_RESULT_CACHE=<dir> enables the cache for every
 * SweepRunner in the process; HIRA_RESULT_CACHE_MODE selects
 * {off, read, readwrite} (default readwrite). Corrupt or truncated
 * entries are treated as misses (warned once, counted), never trusted.
 * Lookup hits are additionally served from an in-memory LRU front.
 */

#ifndef HIRA_SIM_RESULT_CACHE_HH
#define HIRA_SIM_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/metrics.hh"
#include "sim/experiment.hh"

namespace hira {

/** Cache operating mode (HIRA_RESULT_CACHE_MODE). */
enum class ResultCacheMode
{
    Off,       //!< cache disabled even when a directory is set
    Read,      //!< serve hits, never write new entries
    ReadWrite, //!< serve hits and persist misses (the default)
};

/** Display name ("off" / "read" / "readwrite"). */
const char *resultCacheModeName(ResultCacheMode mode);

/**
 * Mode selected by HIRA_RESULT_CACHE_MODE (default readwrite; unknown
 * values warn once and fall back to the default).
 */
ResultCacheMode defaultResultCacheMode();

/**
 * The code-revision stamp folded into every cache key: the
 * HIRA_CACHE_REV environment variable when set (tests pin golden keys
 * with it), else the configure-time git revision compiled into the
 * library — the same stamp HIRA_JSON artifacts carry.
 */
std::string codeRevision();

/** Lookup/store counters (also exposed as a metrics snapshot). */
struct ResultCacheStats
{
    std::uint64_t hits = 0;    //!< lookups served (memory or disk)
    std::uint64_t misses = 0;  //!< lookups with no entry on disk
    std::uint64_t stale = 0;   //!< entries rejected on key mismatch
    std::uint64_t corrupt = 0; //!< entries rejected as unparseable
    std::uint64_t writes = 0;  //!< entries committed
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
};

/**
 * The cache: a directory of content-addressed entry files (the key's
 * hash names the file; the file repeats the key for verification) with
 * an in-memory LRU front. Thread-safe; one instance may be shared by
 * every thread of a sweep. Concurrent writers — including other
 * processes sharing the directory — are safe because entries are
 * written to a temp file and committed by rename(2), and any two
 * writers of one key write identical bytes (determinism).
 */
class ResultCache
{
  public:
    ResultCache(std::string dir, ResultCacheMode mode,
                std::size_t lruCapacity = 256);

    /**
     * Cache configured by the environment: nullptr unless
     * HIRA_RESULT_CACHE names a directory and the mode is not off.
     */
    static std::unique_ptr<ResultCache> fromEnv();

    const std::string &dir() const { return dir_; }
    ResultCacheMode mode() const { return mode_; }

    /** Point-result lookup; true and fills @p out on a hit. */
    bool lookupPoint(const std::string &key, PointResult &out);

    /** Persist @p r under @p key (no-op unless mode is readwrite). */
    void storePoint(const std::string &key, const PointResult &r);

    /** Alone-IPC lookup; true and fills @p ipc on a hit. */
    bool lookupAlone(const std::string &key, double &ipc);

    /** Persist an alone-IPC value (no-op unless mode is readwrite). */
    void storeAlone(const std::string &key, double ipc);

    ResultCacheStats stats() const;

    /**
     * The counters as a PR-7 metrics snapshot ("result_cache.hits",
     * ...), mergeable into sweep artifacts.
     */
    MetricsSnapshot metricsSnapshot() const;

    // Entry-file paths for a key (test hooks: stale/corrupt injection).
    std::string pointPath(const std::string &key) const;
    std::string alonePath(const std::string &key) const;

  private:
    bool lookupEntry(const std::string &key, bool is_point,
                     PointResult &point, double &ipc);
    void storeEntry(const std::string &key, bool is_point,
                    const PointResult &point, double ipc);

    // In-memory LRU front (points and alone values share it).
    struct LruEntry
    {
        std::string tag; //!< "p|" or "a|" + key
        PointResult point;
        double ipc = 0.0;
    };
    bool lruGet(const std::string &tag, LruEntry &out);
    void lruPut(LruEntry entry);

    std::string dir_;
    ResultCacheMode mode_;
    std::size_t lruCapacity_;

    mutable std::mutex mutex_;
    ResultCacheStats stats_;
    std::list<LruEntry> lru_; //!< front = most recent
    std::unordered_map<std::string, std::list<LruEntry>::iterator> lruIndex_;
};

/**
 * Canonical key of one mix-spec entry as it contributes to a cache
 * key: plain specs verbatim; "corpus:" specs (with or without
 * options) resolved against the active corpus so the entry's identity
 * — file, format, instruction count, intensity class, and alone-IPC
 * prior — is folded in. Two corpora giving one name to different
 * traces (or different priors) therefore never share cache entries.
 * Fatal when a corpus spec has no active corpus or unknown name, like
 * the workload registry itself.
 */
std::string resolvedMixSpecKey(const std::string &spec);

/**
 * Canonical cache key of the IPC-alone run of @p bench on @p geom
 * (the persistent companion of aloneIpcCacheKey(), which keys the
 * in-memory single-flight cache). Golden strings are pinned in
 * tests/sim/test_result_cache.cc.
 */
std::string aloneResultCacheKey(const std::string &bench,
                                const GeomSpec &geom,
                                const BenchKnobs &knobs);

} // namespace hira

#endif // HIRA_SIM_RESULT_CACHE_HH
