/**
 * @file
 * Shared last-level cache (Table 3: 8 MB, 8-way, 64 B lines).
 *
 * Write-allocate / write-back, LRU, with MSHRs that merge concurrent
 * misses to the same line. Misses and dirty writebacks go to the memory
 * controllers through a routing callback; returning fills notify the
 * waiting cores through a completion callback.
 */

#ifndef HIRA_SIM_CACHE_HH
#define HIRA_SIM_CACHE_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/request.hh"

namespace hira {

/** LLC geometry and latency. */
struct LlcConfig
{
    std::uint64_t sizeBytes = 8ull << 20;
    int ways = 8;
    int lineBytes = 64;
    int hitLatencyCpu = 30;   //!< CPU cycles to a hit
    std::size_t mshrs = 64;
    std::size_t outboundCap = 64; //!< miss/writeback staging queue
};

/** Outcome of a core-side access. */
enum class LlcResult
{
    Hit,     //!< data after hitLatencyCpu CPU cycles
    Miss,    //!< data when the memory fill returns
    Blocked, //!< MSHRs or outbound queue full; retry
};

/** The shared LLC. */
class Llc
{
  public:
    /** Routes a memory request toward its controller; false = retry. */
    using SendFn = std::function<bool(const Request &)>;
    /** Notifies a waiting core that its read data arrived. */
    using NotifyFn =
        std::function<void(int core_id, std::uint64_t tag, Cycle mem_now)>;

    Llc(const LlcConfig &cfg, SendFn send, NotifyFn notify);

    /**
     * Core-side access.
     * @param tag core-side identifier returned through NotifyFn on miss
     */
    LlcResult access(bool is_write, Addr addr, int core_id,
                     std::uint64_t tag, Cycle mem_now);

    /** Memory completion for the controller read tagged @p mem_tag. */
    void onMemCompletion(std::uint64_t mem_tag, Cycle mem_now);

    /** Per-memory-cycle pump: retry queued outbound requests. */
    void tick(Cycle mem_now);

    /** True while the outbound miss/writeback queue holds requests. */
    bool outboundPending() const { return !outbound.empty(); }

    /** Head of the outbound queue (outboundPending() must hold). */
    const Request &outboundHead() const { return outbound.front(); }

    /**
     * Event-engine horizon. The outbound queue only ever becomes (and
     * stays) non-empty after a failed send to a full controller queue,
     * and that rejection cannot lift until the rejecting controller
     * ticks — a cycle the controller's own nextEvent() already pins, at
     * which the loop re-pumps the queue (System::executeCycle pumps
     * whenever outboundPending()). So the LLC never has to pin a wake
     * of its own: tick() between controller events is observable only
     * through the per-cycle rejection the dense loop accrues on the
     * head's target controller, which the event engine adds back in
     * closed form when it skips (MemoryController::accrueRejected).
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        (void)now;
        return kNeverCycle;
    }

    /**
     * Monotone counter of LLC transitions after which a previously
     * Blocked access() could stop being Blocked: an MSHR freed, a line
     * installed, or an outbound slot drained. A core whose dispatch was
     * Blocked may skip re-issuing the access until this changes
     * (CoreModel::dispatchOne) — the retry is provably Blocked again,
     * in either engine, while the counter stands still.
     */
    std::uint64_t capacityGeneration() const { return capGen; }

    // Stats.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t mshrMerges = 0;
    std::uint64_t blocked = 0;

  private:
    struct Line
    {
        Addr tag = ~Addr(0);
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    struct Waiter
    {
        int coreId;
        std::uint64_t tag;
    };

    struct Mshr
    {
        Addr lineAddr;
        bool writeIntent = false;
        std::vector<Waiter> waiters;
    };

    Addr lineOf(Addr addr) const;
    std::size_t setOf(Addr line) const;
    Line *lookup(Addr line);
    void install(Addr line, bool dirty, Cycle mem_now);
    bool sendOrQueue(const Request &req);

    LlcConfig cfg;
    SendFn send;
    NotifyFn notify;
    std::size_t sets;
    std::vector<Line> lines; //!< sets x ways
    std::uint64_t lruClock = 1;
    std::unordered_map<std::uint64_t, Mshr> mshrs; //!< memTag -> MSHR
    std::unordered_map<Addr, std::uint64_t> mshrByLine;
    std::uint64_t nextMemTag = 1;
    std::deque<Request> outbound;
    std::uint64_t capGen = 1; //!< see capacityGeneration()
};

} // namespace hira

#endif // HIRA_SIM_CACHE_HH
