/**
 * @file
 * Full-system wiring: cores -> shared LLC -> per-channel memory
 * controllers, with the 3.2 GHz core / 1.2 GHz DDR4-2400 bus clock
 * crossing (8 CPU cycles per 3 memory cycles).
 *
 * Two simulation-loop engines share the wiring (SimEngine, HIRA_ENGINE
 * knob): the legacy dense loop ticks every component every bus cycle;
 * the event-driven kernel advances straight to the minimum
 * nextEventCycle() horizon across controllers, the LLC, and the cores'
 * stall state, fast-forwarding the skipped CPU ticks in bulk. The two
 * are bitwise-equivalent at the SystemResult level (see BUILDING.md
 * "The event-driven simulation kernel" for the component contract).
 */

#ifndef HIRA_SIM_SYSTEM_HH
#define HIRA_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/metrics.hh"
#include "core/hira_mc.hh"
#include "dram/addrmap.hh"
#include "mem/controller.hh"
#include "mem/graphene_trr.hh"
#include "mem/prac.hh"
#include "mem/rfm.hh"
#include "sim/core.hh"
#include "sim/deadline_heap.hh"
#include "sim/kernel.hh"
#include "sim/workloads.hh"
#include "workload/file_trace.hh"

namespace hira {

class TraceEventLog;

/**
 * Simulation-loop engine. Both engines produce bitwise-identical
 * SystemResult values (pinned by tests/sim/test_engine_diff.cc); they
 * differ only in wall clock.
 */
enum class SimEngine
{
    CycleLoop, //!< legacy dense loop: tick every component every bus cycle
    EventLoop, //!< skip-ahead kernel driven by nextEventCycle() horizons
};

/**
 * Engine selected by the HIRA_ENGINE environment variable ("cycle" or
 * "event"; default "event"). Read on every call so tests can flip the
 * variable between runs; unknown values warn once and fall back to the
 * default.
 */
SimEngine defaultSimEngine();

/** Display name ("cycle" / "event") for logs and HIRA_JSON artifacts. */
const char *simEngineName(SimEngine engine);

/** Full system configuration. */
struct SystemConfig
{
    Geometry geom = Geometry::forCapacityGb(8.0);
    TimingParams tp = ddr4_2400(8.0);
    /**
     * Registry name of the memory standard tp was built from (see
     * dram/standard.hh). Purely descriptive at the System level — tp
     * carries the actual numbers — but stamped into bench artifacts so
     * every figure names the standard it ran on.
     */
    std::string standard = "ddr4_2400";
    SchemeKind scheme = SchemeKind::Baseline;
    int refPostpone = 0;        //!< Baseline: max postponed REFs [161]
    HiraMcConfig hira;          //!< used when scheme == HiraMc
    RfmConfig rfm;              //!< used when scheme == Rfm
    PracConfig prac;            //!< used when scheme == Prac
    GrapheneConfig graphene;    //!< used when scheme == Graphene
    ParaConfig para;            //!< immediate PARA (non-HiRA preventive)
    WorkloadMix mix;            //!< workload spec per core (registry syntax)
    std::uint64_t seed = 1;
    LlcConfig llc;
    int coreWidth = 4;
    int windowEntries = 128;
    bool recordTraces = false;  //!< feed TimingChecker recorders

    /**
     * When non-empty, dump each core's instruction stream to
     * <traceDumpDir>/core<i>.trace (text) or .bin (binary) for replay
     * through "file:" mix specs. The directory must exist; files are
     * complete once the System is destroyed.
     */
    std::string traceDumpDir;
    TraceFormat traceDumpFormat = TraceFormat::Text;

    /** Simulation-loop engine (defaults to the HIRA_ENGINE knob). */
    SimEngine engine = defaultSimEngine();

    /**
     * Simulation-kernel flavor (defaults to the HIRA_KERNEL knob):
     * generic virtual dispatch or the per-scheme specialized kernel.
     * Never changes results (pinned by tests/sim/test_kernel_diff.cc).
     */
    SimKernel kernel = defaultSimKernel();

    /**
     * Instrumentation level (defaults to the HIRA_METRICS knob). Off
     * registers nothing and every metric hook degenerates to one null
     * test; Counters/Full never change simulation behavior (pinned by
     * tests/sim/test_metrics_equivalence.cc).
     */
    MetricsLevel metricsLevel = defaultMetricsLevel();
};

/** Post-run summary. */
struct SystemResult
{
    std::vector<double> ipc;            //!< per core, measurement interval
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    double avgReadLatencyCycles = 0.0;
    RefreshStats refresh;               //!< summed over channels
    ControllerStats controller;         //!< summed over channels
    std::uint64_t llcHits = 0, llcMisses = 0;
};

/**
 * Simulation-loop observability (not part of the cycle/event
 * equivalence contract, which covers SystemResult only). The
 * skip-ahead regression guard in tests/sim/test_engine_diff.cc asserts
 * executedCycles < simulatedCycles on an idle-heavy config.
 */
struct SimLoopStats
{
    std::uint64_t simulatedCycles = 0; //!< bus cycles advanced in total
    std::uint64_t executedCycles = 0;  //!< loop iterations that ran phases
    std::uint64_t skippedCycles = 0;   //!< bus cycles fast-forwarded
    std::uint64_t ctrlTicks = 0;       //!< MemoryController::tick calls
};

/** The simulated system. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /** Advance @p cycles memory-bus cycles. */
    void run(Cycle cycles);

    /** Reset measurement statistics (end of warmup). */
    void resetStats();

    /** Collect the post-run summary. */
    SystemResult result() const;

    MemoryController &controller(int ch) { return *controllers[ch]; }
    int channels() const { return static_cast<int>(controllers.size()); }
    CoreModel &core(int i) { return *cores[i]; }
    Cycle now() const { return memCycle; }
    SimEngine engine() const { return cfg.engine; }
    SimKernel kernel() const { return cfg.kernel; }
    const SimLoopStats &loopStats() const { return loopStats_; }

    /**
     * Capture the full metrics state: live counters (kernel skip
     * lengths, controller row hits, PR-FIFO depths, ...) plus
     * snapshot-time mirrors of every stats struct the simulator already
     * keeps (ControllerStats command mix, RefreshStats, LLC, per-core
     * retire/stall counts, SimLoopStats) — the mirrors cost nothing on
     * the hot path. Empty when metricsLevel is Off. Values are
     * cumulative since construction; callers scope intervals with
     * MetricsSnapshot::diff.
     */
    MetricsSnapshot metricsSnapshot();
    MetricsLevel metricsLevel() const { return cfg.metricsLevel; }

    // Deadline-index inspection (tests/sim/test_deadline_heap_property
    // pins the quiescent invariant key(ch) == controller(ch).nextEvent()
    // after arbitrary run() sequences). Slot layout: one per channel,
    // then the LLC.
    std::size_t wakeSlots() const { return wakeHeap.size(); }
    Cycle wakeKey(std::size_t slot) const { return wakeHeap.key(slot); }
    Cycle wakeMin() const { return wakeHeap.min(); }

  private:
    std::unique_ptr<RefreshScheme> makeScheme() const;
    bool route(const Request &req);
    // The run loops are templated over the scheme type S so the
    // controllers' tickAs<S>/nextEventAs<S> hot path devirtualizes; the
    // S = RefreshScheme instantiation is the generic oracle. run()
    // visits kernelTag_ once to pick the instantiation.
    template <class S> void runCycleAs(Cycle cycles);
    template <class S> void runEventAs(Cycle cycles);
    template <class S> void executeCycleAs(bool all_controllers);
    void drainCompletions(MemoryController &ctrl);
    Cycle firstActionableCycle() const;

    SystemConfig cfg;
    AddressMapper mapper;
    // Kernel specialization for this run, fixed at construction from
    // (cfg.scheme, cfg.kernel); the ctor checks each controller's
    // scheme really is the tagged type before any templated loop runs.
    KernelVariant kernelTag_;
    std::vector<std::unique_ptr<MemoryController>> controllers;
    std::unique_ptr<Llc> llc;
    std::vector<std::unique_ptr<TraceSource>> sources;
    std::vector<std::unique_ptr<CoreModel>> cores;

    // Deadline index for the event kernel: slot ch per controller, one
    // trailing slot for the LLC. Keys are raised by executeCycle()
    // right after each component ticks and lowered by the controllers'
    // wake listeners on accepted enqueues (see deadline_heap.hh for the
    // full contract). The cycle engine leaves it untouched.
    DeadlineHeap wakeHeap{0};
    std::size_t llcSlot = 0;
    // Channels ticked this executed cycle, re-keyed at cycle end once
    // all of the cycle's enqueues have landed (see executeCycle).
    std::vector<std::uint32_t> tickedScratch;

    Cycle memCycle = 0;
    std::uint64_t cpuAccum = 0; //!< 8/3 clock-ratio accumulator
    SimLoopStats loopStats_;

    // Observability. The registry is owned per System instance (not
    // thread-safe; concurrent sweeps each own theirs) and is null when
    // metrics are Off. The kernel's live metrics are only touched on
    // the event engine's skip/execute decisions; everything else is
    // mirrored in at metricsSnapshot() time.
    std::unique_ptr<MetricRegistry> metrics_;
    HistogramMetric *mSkipLen = nullptr; //!< bus cycles per bulk skip
    Counter *mLlcStallSkips = nullptr;   //!< skips w/ rejection accrual
    Counter *mHeapRekeys = nullptr;      //!< post-tick heap re-keys
    Counter *mHeapLowers = nullptr;      //!< listener-driven lowerings
    // Trace-event sampling: cached pointer to the enabled global log
    // (null when tracing is off) and a countdown on executed cycles.
    TraceEventLog *tracer_ = nullptr;
    std::uint64_t traceSampleCountdown_ = 0;
};

} // namespace hira

#endif // HIRA_SIM_SYSTEM_HH
