#include "sim/workloads.hh"

#include "common/logging.hh"
#include "workload/registry.hh"

namespace hira {

const std::vector<BenchmarkProfile> &
benchmarkPool()
{
    // {name, memPerInstr, writeFrac, streamFrac, hotFrac,
    //  footprintLines, hotLines}
    // Footprints are in 64 B lines (16K lines = 1 MB). Profiles span the
    // SPEC CPU2006 spectrum from cache-resident (h264-like) to
    // memory-bound irregular (mcf-like) and streaming (libquantum-,
    // lbm-like) behaviors.
    static const std::vector<BenchmarkProfile> pool = {
        {"perlbench-like", 0.06, 0.30, 0.30, 0.92, 64 << 10, 8 << 10},
        {"bzip2-like", 0.08, 0.35, 0.50, 0.85, 128 << 10, 12 << 10},
        {"gcc-like", 0.10, 0.35, 0.40, 0.80, 256 << 10, 12 << 10},
        {"mcf-like", 0.30, 0.25, 0.05, 0.35, 4096 << 10, 8 << 10},
        {"milc-like", 0.20, 0.30, 0.70, 0.30, 2048 << 10, 4 << 10},
        {"zeusmp-like", 0.15, 0.30, 0.60, 0.50, 1024 << 10, 8 << 10},
        {"cactus-like", 0.14, 0.35, 0.55, 0.45, 1536 << 10, 8 << 10},
        {"leslie3d-like", 0.18, 0.30, 0.80, 0.30, 2048 << 10, 4 << 10},
        {"namd-like", 0.05, 0.25, 0.50, 0.95, 64 << 10, 16 << 10},
        {"soplex-like", 0.22, 0.30, 0.45, 0.40, 3072 << 10, 8 << 10},
        {"hmmer-like", 0.07, 0.40, 0.60, 0.90, 96 << 10, 10 << 10},
        {"gems-like", 0.24, 0.30, 0.65, 0.30, 3072 << 10, 4 << 10},
        {"libquantum-like", 0.25, 0.20, 0.97, 0.05, 4096 << 10, 1 << 10},
        {"h264-like", 0.04, 0.30, 0.60, 0.95, 48 << 10, 12 << 10},
        {"lbm-like", 0.26, 0.45, 0.90, 0.10, 4096 << 10, 2 << 10},
        {"omnetpp-like", 0.18, 0.30, 0.10, 0.50, 1536 << 10, 16 << 10},
        {"astar-like", 0.12, 0.30, 0.15, 0.60, 768 << 10, 12 << 10},
        {"sphinx-like", 0.16, 0.20, 0.50, 0.55, 1024 << 10, 8 << 10},
    };
    return pool;
}

const BenchmarkProfile &
benchmarkByName(const std::string &name)
{
    for (const BenchmarkProfile &p : benchmarkPool()) {
        if (p.name == name)
            return p;
    }
    std::string names;
    for (const BenchmarkProfile &p : benchmarkPool())
        names += (names.empty() ? "" : ", ") + p.name;
    fatal("unknown benchmark profile '%s'; the synthetic pool has: %s; "
          "workload specs also accept %s",
          name.c_str(), names.c_str(),
          WorkloadRegistry::specSyntax().c_str());
}

std::vector<WorkloadMix>
makeMixes(int count, int cores, std::uint64_t seed)
{
    const auto &pool = benchmarkPool();
    Rng rng(seed);
    std::vector<WorkloadMix> mixes;
    mixes.reserve(static_cast<std::size_t>(count));
    for (int m = 0; m < count; ++m) {
        WorkloadMix mix;
        mix.reserve(static_cast<std::size_t>(cores));
        for (int c = 0; c < cores; ++c)
            mix.push_back(pool[rng.below(pool.size())].name);
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

} // namespace hira
