/**
 * @file
 * Indexed min-heap of component wake-up deadlines for the event-driven
 * simulation kernel (src/sim/system.cc).
 *
 * Each simulated component (one slot per memory controller, one for the
 * LLC) owns a stable slot whose key is the component's nextEventCycle()
 * bound. The kernel reads the global minimum in O(1) instead of
 * re-querying every component per iteration, and re-keys exactly the
 * components that ticked (update) or accepted new work (lower), each in
 * O(log n).
 *
 * Update contract (documented in BUILDING.md "The event-driven
 * simulation kernel"):
 *  - The kernel raises or lowers a slot with update() right after
 *    ticking its component, using the freshly recomputed nextEvent().
 *  - Components themselves only ever *lower* their slot (through
 *    MemoryController::setWakeListener on accepted enqueues), making the
 *    index more conservative between ticks. Raising stays the kernel's
 *    job: a raise is only sound immediately after the owner recomputed
 *    its bound.
 *  - Keys may go stale low (a wasted poll), never stale high (which
 *    would skip an observable event and diverge from the dense loop).
 *
 * All slots are permanently resident: kNeverCycle parks an idle
 * component at the bottom without removing it, so size never changes
 * and no free-list is needed.
 */

#ifndef HIRA_SIM_DEADLINE_HEAP_HH
#define HIRA_SIM_DEADLINE_HEAP_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace hira {

/** Fixed-slot indexed binary min-heap keyed by wake-up cycle. */
class DeadlineHeap
{
  public:
    /** @p nslots components, all parked at kNeverCycle. */
    explicit DeadlineHeap(std::size_t nslots)
        : keys(nslots, kNeverCycle), heap(nslots), pos(nslots)
    {
        for (std::size_t i = 0; i < nslots; ++i) {
            heap[i] = static_cast<std::uint32_t>(i);
            pos[i] = static_cast<std::uint32_t>(i);
        }
    }

    std::size_t size() const { return keys.size(); }

    /** Current key of @p slot. */
    Cycle key(std::size_t slot) const { return keys[slot]; }

    /** Smallest key over all slots (kNeverCycle when all are parked). */
    Cycle min() const { return keys.empty() ? kNeverCycle : keys[heap[0]]; }

    /** Slot holding the minimum key (undefined when empty). */
    std::size_t minSlot() const { return heap[0]; }

    /** Re-key @p slot to @p k, raising or lowering as needed. */
    void update(std::size_t slot, Cycle k)
    {
        Cycle old = keys[slot];
        if (k == old)
            return;
        keys[slot] = k;
        if (k < old)
            siftUp(pos[slot]);
        else
            siftDown(pos[slot]);
    }

    /** Lower @p slot to @p k; keys only ever move toward the root. */
    void lower(std::size_t slot, Cycle k)
    {
        if (k >= keys[slot])
            return;
        keys[slot] = k;
        siftUp(pos[slot]);
    }

  private:
    void place(std::size_t at, std::uint32_t slot)
    {
        heap[at] = slot;
        pos[slot] = static_cast<std::uint32_t>(at);
    }

    void siftUp(std::size_t i)
    {
        std::uint32_t slot = heap[i];
        Cycle k = keys[slot];
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (keys[heap[parent]] <= k)
                break;
            place(i, heap[parent]);
            i = parent;
        }
        place(i, slot);
    }

    void siftDown(std::size_t i)
    {
        std::uint32_t slot = heap[i];
        Cycle k = keys[slot];
        const std::size_t n = heap.size();
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && keys[heap[child + 1]] < keys[heap[child]])
                ++child;
            if (keys[heap[child]] >= k)
                break;
            place(i, heap[child]);
            i = child;
        }
        place(i, slot);
    }

    std::vector<Cycle> keys;          //!< by slot
    std::vector<std::uint32_t> heap;  //!< heap order -> slot
    std::vector<std::uint32_t> pos;   //!< slot -> heap order
};

} // namespace hira

#endif // HIRA_SIM_DEADLINE_HEAP_HH
