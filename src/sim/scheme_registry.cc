#include "sim/scheme_registry.hh"

#include <algorithm>

#include "common/logging.hh"
#include "security/para_analysis.hh"

namespace hira {

namespace {

// ----- per-entry hooks ------------------------------------------------

std::unique_ptr<RefreshScheme>
makeNoRefresh(const SystemConfig &)
{
    return std::make_unique<NoRefresh>();
}

std::unique_ptr<RefreshScheme>
makeBaseline(const SystemConfig &cfg)
{
    return std::make_unique<BaselineRefresh>(cfg.refPostpone);
}

std::unique_ptr<RefreshScheme>
makeHiraMc(const SystemConfig &cfg)
{
    return std::make_unique<HiraMc>(cfg.hira);
}

std::unique_ptr<RefreshScheme>
makeRfm(const SystemConfig &cfg)
{
    return std::make_unique<RfmRefresh>(cfg.rfm);
}

std::unique_ptr<RefreshScheme>
makePrac(const SystemConfig &cfg)
{
    return std::make_unique<PracRefresh>(cfg.prac);
}

std::unique_ptr<RefreshScheme>
makeGraphene(const SystemConfig &cfg)
{
    return std::make_unique<GrapheneTrr>(cfg.graphene);
}

void
configurePlain(SystemConfig &cfg, const SchemeSpec &spec, std::uint64_t)
{
    cfg.scheme = spec.kind;
    cfg.refPostpone = spec.refPostpone;
}

void
configureHira(SystemConfig &cfg, const SchemeSpec &spec, std::uint64_t seed)
{
    // Selected for spec.kind == HiraMc AND for any scheme promoted by
    // paraEnabled && preventiveViaHira (PreventiveRC needs the HiRA-MC
    // machinery even when periodic refresh stays conventional).
    cfg.scheme = SchemeKind::HiraMc;
    cfg.hira.slackN = spec.slackN;
    cfg.hira.periodicViaHira =
        spec.kind == SchemeKind::HiraMc && spec.periodicViaHira;
    cfg.hira.enableAccessPairing = spec.accessPairing;
    cfg.hira.enableRefreshPairing = spec.refreshPairing;
    cfg.hira.enablePullAhead = spec.pullAhead;
    cfg.hira.sptIsolation = spec.sptIsolation;
    cfg.hira.seed = hashCombine(seed, 0x517a);
    if (spec.paraEnabled && spec.preventiveViaHira) {
        cfg.hira.preventive.enabled = true;
        // Slack-aware threshold (Section 9.1 step 4).
        double slack_ns = spec.slackN * cfg.tp.tRC;
        cfg.hira.preventive.pth =
            solvePth(spec.nrh, slackActivations(slack_ns));
        cfg.hira.preventive.seed = hashCombine(seed, 0x9a1);
    }
}

void
configureRfm(SystemConfig &cfg, const SchemeSpec &spec, std::uint64_t)
{
    cfg.scheme = SchemeKind::Rfm;
    cfg.rfm.raaimt = spec.raaimt;
}

void
configurePrac(SystemConfig &cfg, const SchemeSpec &spec, std::uint64_t)
{
    cfg.scheme = SchemeKind::Prac;
    cfg.prac.threshold = spec.pracThreshold;
    cfg.prac.slackRc = spec.slackN;
}

void
configureGraphene(SystemConfig &cfg, const SchemeSpec &spec, std::uint64_t)
{
    cfg.scheme = SchemeKind::Graphene;
    cfg.graphene.trackerSize = spec.trackerSize;
    // Graphene sizing rule: trigger well below the RowHammer threshold
    // so both neighbors are refreshed before nrh activations accrue.
    cfg.graphene.threshold =
        std::max(1, static_cast<int>(spec.nrh / 4.0));
}

std::string
labelNoRefresh(const SchemeSpec &)
{
    return "NoRefresh";
}

std::string
labelBaseline(const SchemeSpec &)
{
    return "Baseline";
}

std::string
labelHira(const SchemeSpec &spec)
{
    return strprintf("HiRA-%d", spec.slackN);
}

std::string
labelRfm(const SchemeSpec &)
{
    return "RFM";
}

std::string
labelPrac(const SchemeSpec &)
{
    return "PRAC";
}

std::string
labelGraphene(const SchemeSpec &)
{
    return "Graphene-TRR";
}

std::string
suffixNone(const SchemeSpec &)
{
    // The base seedKey() already covers these schemes' knobs; an empty
    // suffix keeps the pre-registry golden seeds valid
    // (tests/sim/test_experiment.cc SweepRunSeedGoldenValues).
    return "";
}

std::string
suffixRfm(const SchemeSpec &spec)
{
    return strprintf("-raaimt%d", spec.raaimt);
}

std::string
suffixPrac(const SchemeSpec &spec)
{
    return strprintf("-pth%d", spec.pracThreshold);
}

std::string
suffixGraphene(const SchemeSpec &spec)
{
    return strprintf("-trk%d", spec.trackerSize);
}

} // namespace

const std::vector<SchemeRegistryEntry> &
schemeRegistry()
{
    static const std::vector<SchemeRegistryEntry> registry = {
        {"norefresh", SchemeKind::NoRefresh, makeNoRefresh,
         configurePlain, labelNoRefresh, suffixNone},
        {"baseline", SchemeKind::Baseline, makeBaseline, configurePlain,
         labelBaseline, suffixNone},
        {"hira", SchemeKind::HiraMc, makeHiraMc, configureHira, labelHira,
         suffixNone},
        {"rfm", SchemeKind::Rfm, makeRfm, configureRfm, labelRfm,
         suffixRfm},
        {"prac", SchemeKind::Prac, makePrac, configurePrac, labelPrac,
         suffixPrac},
        {"graphene", SchemeKind::Graphene, makeGraphene,
         configureGraphene, labelGraphene, suffixGraphene},
    };
    return registry;
}

std::string
knownSchemeNames()
{
    std::string names;
    for (const SchemeRegistryEntry &e : schemeRegistry())
        names += std::string(names.empty() ? "" : ", ") + e.name;
    return names;
}

const SchemeRegistryEntry &
schemeEntryByKind(SchemeKind kind)
{
    for (const SchemeRegistryEntry &e : schemeRegistry()) {
        if (e.kind == kind)
            return e;
    }
    panic("SchemeKind %d is outside the scheme registry "
          "(sim/scheme_registry.cc)",
          static_cast<int>(kind));
}

const SchemeRegistryEntry &
schemeEntryByName(const std::string &name)
{
    for (const SchemeRegistryEntry &e : schemeRegistry()) {
        if (name == e.name)
            return e;
    }
    fatal("unknown refresh scheme '%s'; the registry has: %s "
          "(sim/scheme_registry.cc)",
          name.c_str(), knownSchemeNames().c_str());
}

SchemeSpec
schemeSpecByName(const std::string &name)
{
    SchemeSpec spec;
    spec.kind = schemeEntryByName(name).kind;
    return spec;
}

} // namespace hira
