#include "sim/experiment.hh"

#include <atomic>
#include <thread>

#include "common/logging.hh"

namespace hira {

Geometry
GeomSpec::toGeometry() const
{
    Geometry g = Geometry::forCapacityGb(capacityGb);
    g.channels = channels;
    g.ranksPerChannel = ranks;
    return g;
}

std::string
GeomSpec::key() const
{
    return strprintf("c%.1f-ch%d-rk%d", capacityGb, channels, ranks);
}

std::string
SchemeSpec::label() const
{
    std::string base;
    switch (kind) {
      case SchemeKind::NoRefresh: base = "NoRefresh"; break;
      case SchemeKind::Baseline: base = "Baseline"; break;
      case SchemeKind::HiraMc:
        base = strprintf("HiRA-%d", slackN);
        break;
    }
    if (paraEnabled) {
        base += preventiveViaHira ? "+PARA(HiRA)" : "+PARA";
    }
    return base;
}

SystemConfig
makeSystemConfig(const GeomSpec &geom, const SchemeSpec &scheme,
                 const WorkloadMix &mix, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.geom = geom.toGeometry();
    cfg.tp = geom.toTiming();
    cfg.mix = mix;
    cfg.seed = seed;

    double slack_ns = scheme.slackN * cfg.tp.tRC;

    if (scheme.kind == SchemeKind::HiraMc ||
        (scheme.paraEnabled && scheme.preventiveViaHira)) {
        cfg.scheme = SchemeKind::HiraMc;
        cfg.hira.slackN = scheme.slackN;
        cfg.hira.periodicViaHira =
            scheme.kind == SchemeKind::HiraMc && scheme.periodicViaHira;
        cfg.hira.enableAccessPairing = scheme.accessPairing;
        cfg.hira.enableRefreshPairing = scheme.refreshPairing;
        cfg.hira.enablePullAhead = scheme.pullAhead;
        cfg.hira.sptIsolation = scheme.sptIsolation;
        cfg.hira.seed = hashCombine(seed, 0x517a);
        if (scheme.paraEnabled && scheme.preventiveViaHira) {
            cfg.hira.preventive.enabled = true;
            // Slack-aware threshold (Section 9.1 step 4).
            cfg.hira.preventive.pth = solvePth(
                scheme.nrh, slackActivations(slack_ns));
            cfg.hira.preventive.seed = hashCombine(seed, 0x9a1);
        }
    } else {
        cfg.scheme = scheme.kind;
        cfg.refPostpone = scheme.refPostpone;
    }

    if (scheme.paraEnabled && !scheme.preventiveViaHira) {
        cfg.para.enabled = true;
        cfg.para.pth = solvePth(scheme.nrh, 0.0);
        cfg.para.seed = hashCombine(seed, 0x9b1);
    }
    return cfg;
}

RunResult
runOne(const SystemConfig &cfg, Cycle warmup, Cycle measure)
{
    System sys(cfg);
    sys.run(warmup);
    sys.resetStats();
    sys.run(measure);
    RunResult r;
    r.sys = sys.result();
    r.ipc = r.sys.ipc;
    return r;
}

double
weightedSpeedup(const std::vector<double> &ipc_shared,
                const std::vector<double> &ipc_alone)
{
    hira_assert(ipc_shared.size() == ipc_alone.size());
    double ws = 0.0;
    for (std::size_t i = 0; i < ipc_shared.size(); ++i) {
        hira_assert(ipc_alone[i] > 0.0);
        ws += ipc_shared[i] / ipc_alone[i];
    }
    return ws;
}

SweepRunner::SweepRunner(const BenchKnobs &k) : knobs(k)
{
    mixes_ = makeMixes(knobs.mixes, knobs.cores);
}

SweepRunner::SweepRunner(const BenchKnobs &k, std::vector<WorkloadMix> mixes)
    : knobs(k), mixes_(std::move(mixes))
{
    hira_assert(!mixes_.empty());
}

double
SweepRunner::aloneIpc(const std::string &bench, const GeomSpec &geom)
{
    std::string key = bench + "|" + geom.key();
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = aloneCache.find(key);
        if (it != aloneCache.end())
            return it->second;
    }
    SchemeSpec none;
    none.kind = SchemeKind::NoRefresh;
    WorkloadMix solo = {bench};
    SystemConfig cfg =
        makeSystemConfig(geom, none, solo, hashString(key));
    RunResult r = runOne(cfg, static_cast<Cycle>(knobs.warmup),
                         static_cast<Cycle>(knobs.cycles));
    double ipc = r.ipc[0];
    std::lock_guard<std::mutex> lock(cacheMutex);
    aloneCache[key] = ipc;
    return ipc;
}

std::vector<RunResult>
SweepRunner::runMixes(const GeomSpec &geom, const SchemeSpec &scheme)
{
    std::vector<RunResult> results(mixes_.size());
    int nthreads = std::max(1, std::min<int>(knobs.threads,
                                             static_cast<int>(
                                                 mixes_.size())));
    std::vector<std::thread> workers;
    std::atomic<std::size_t> next{0};
    for (int t = 0; t < nthreads; ++t) {
        workers.emplace_back([&]() {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= mixes_.size())
                    return;
                SystemConfig cfg = makeSystemConfig(
                    geom, scheme, mixes_[i],
                    hashCombine(0x9152, i));
                results[i] =
                    runOne(cfg, static_cast<Cycle>(knobs.warmup),
                           static_cast<Cycle>(knobs.cycles));
            }
        });
    }
    for (auto &w : workers)
        w.join();
    return results;
}

void
SweepRunner::warmAloneCache(const GeomSpec &geom)
{
    // Distinct benchmarks across the mixes, filled by the worker pool.
    std::vector<std::string> benches;
    for (const WorkloadMix &mix : mixes_) {
        for (const std::string &b : mix) {
            if (std::find(benches.begin(), benches.end(), b) ==
                benches.end()) {
                benches.push_back(b);
            }
        }
    }
    int nthreads = std::max(1, std::min<int>(knobs.threads,
                                             static_cast<int>(
                                                 benches.size())));
    std::vector<std::thread> workers;
    std::atomic<std::size_t> next{0};
    for (int t = 0; t < nthreads; ++t) {
        workers.emplace_back([&]() {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= benches.size())
                    return;
                aloneIpc(benches[i], geom);
            }
        });
    }
    for (auto &w : workers)
        w.join();
}

double
SweepRunner::meanWs(const GeomSpec &geom, const SchemeSpec &scheme)
{
    warmAloneCache(geom);
    std::vector<RunResult> results = runMixes(geom, scheme);
    double sum = 0.0;
    RefreshStats agg;
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::vector<double> alone;
        for (const std::string &b : mixes_[i])
            alone.push_back(aloneIpc(b, geom));
        sum += weightedSpeedup(results[i].ipc, alone);
        const RefreshStats &rs = results[i].sys.refresh;
        agg.refCommands += rs.refCommands;
        agg.rowRefreshes += rs.rowRefreshes;
        agg.accessPaired += rs.accessPaired;
        agg.refreshPaired += rs.refreshPaired;
        agg.standalone += rs.standalone;
        agg.deadlineMisses += rs.deadlineMisses;
        agg.preventiveGenerated += rs.preventiveGenerated;
    }
    lastRefresh = agg;
    return sum / static_cast<double>(results.size());
}

double
SweepRunner::meanMetric(const GeomSpec &geom, const SchemeSpec &scheme,
                        double (*metric)(const RunResult &))
{
    std::vector<RunResult> results = runMixes(geom, scheme);
    double sum = 0.0;
    for (const RunResult &r : results)
        sum += metric(r);
    return sum / static_cast<double>(results.size());
}

} // namespace hira
