#include "sim/experiment.hh"

#include <chrono>
#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/trace_events.hh"
#include "sim/result_cache.hh"
#include "sim/scheme_registry.hh"
#include "workload/corpus.hh"

namespace hira {

namespace {

void
accumulateRefresh(RefreshStats &agg, const RefreshStats &rs)
{
    agg.refCommands += rs.refCommands;
    agg.rowRefreshes += rs.rowRefreshes;
    agg.accessPaired += rs.accessPaired;
    agg.refreshPaired += rs.refreshPaired;
    agg.standalone += rs.standalone;
    agg.deadlineMisses += rs.deadlineMisses;
    agg.preventiveGenerated += rs.preventiveGenerated;
    agg.preventiveDropped += rs.preventiveDropped;
}

} // namespace

Geometry
GeomSpec::toGeometry() const
{
    Geometry g = Geometry::forCapacityGb(capacityGb);
    g.channels = channels;
    g.ranksPerChannel = ranks;
    return g;
}

TimingParams
GeomSpec::toTiming() const
{
    // Unknown standard names are fatal inside standardByName, listing
    // the registry, so a typo in a sweep spec or HIRA_STANDARD value
    // can never silently run DDR4 timings under a DDR5 label.
    return standardByName(standard).make(capacityGb);
}

std::string
GeomSpec::key() const
{
    // %.17g round-trips capacityGb exactly: a %.1f key would collapse
    // distinct capacities (8.0 vs 8.04) onto one alone-IPC cache slot
    // and one RNG stream. The key feeds caching, seeding, and
    // diagnostics, so it must be injective over geometries.
    std::string k = strprintf("c%.17g-ch%d-rk%d", capacityGb, channels,
                              ranks);
    // Appended only for non-default standards so the pre-registry
    // golden seeds (tests/sim/test_experiment.cc) stay valid; a DDR5
    // point still gets its own alone-IPC cache slot and RNG streams.
    if (standard != "ddr4_2400")
        k += "-s" + standard;
    return k;
}

std::string
SchemeSpec::label() const
{
    std::string base = schemeEntryByKind(kind).labelBase(*this);
    if (paraEnabled) {
        base += preventiveViaHira ? "+PARA(HiRA)" : "+PARA";
    }
    return base;
}

std::string
SchemeSpec::seedKey() const
{
    // Every field that changes simulation behavior appears here: two
    // sweep points may share RNG streams only if they are identical.
    // %.17g round-trips doubles exactly, so the key (and with it the
    // golden seeds) is platform-independent. The registry appends the
    // scheme-specific knobs the base key does not cover (empty for the
    // pre-registry schemes, preserving their golden seeds).
    return strprintf("k%d-n%d-post%d-pvh%d-para%d-nrh%.17g-prev%d-"
                     "ap%d-rp%d-pull%d-spt%.17g",
                     static_cast<int>(kind), slackN, refPostpone,
                     periodicViaHira ? 1 : 0, paraEnabled ? 1 : 0, nrh,
                     preventiveViaHira ? 1 : 0, accessPairing ? 1 : 0,
                     refreshPairing ? 1 : 0, pullAhead ? 1 : 0,
                     sptIsolation) +
           schemeEntryByKind(kind).seedKeySuffix(*this);
}

SystemConfig
makeSystemConfig(const GeomSpec &geom, const SchemeSpec &scheme,
                 const WorkloadMix &mix, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.geom = geom.toGeometry();
    cfg.tp = geom.toTiming();
    cfg.standard = geom.standard;
    cfg.mix = mix;
    cfg.seed = seed;

    // PreventiveRC promotes any scheme onto the HiRA-MC machinery; the
    // registry entry's configure hook does the scheme-specific wiring.
    const SchemeRegistryEntry &entry =
        (scheme.paraEnabled && scheme.preventiveViaHira)
            ? schemeEntryByKind(SchemeKind::HiraMc)
            : schemeEntryByKind(scheme.kind);
    entry.configure(cfg, scheme, seed);

    if (scheme.paraEnabled && !scheme.preventiveViaHira) {
        cfg.para.enabled = true;
        cfg.para.pth = solvePth(scheme.nrh, 0.0);
        cfg.para.seed = hashCombine(seed, 0x9b1);
    }
    return cfg;
}

RunResult
runOne(const SystemConfig &cfg, Cycle warmup, Cycle measure)
{
    auto t0 = std::chrono::steady_clock::now();
    System sys(cfg);
    {
        TraceSpan span("warmup", "kernel");
        sys.run(warmup);
    }
    sys.resetStats();
    // Snapshot after resetStats so the diff below scopes every metric
    // to the measurement interval (mirrored core stats restart at zero
    // with the reset; monotone mirrors subtract away cleanly).
    MetricsSnapshot base = sys.metricsSnapshot();
    {
        TraceSpan span("measure", "kernel");
        sys.run(measure);
    }
    RunResult r;
    r.sys = sys.result();
    r.ipc = r.sys.ipc;
    r.metrics = sys.metricsSnapshot().diff(base);
    r.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    r.simCycles = warmup + measure;
    return r;
}

double
weightedSpeedup(const std::vector<double> &ipc_shared,
                const std::vector<double> &ipc_alone,
                const std::string &context)
{
    hira_assert(ipc_shared.size() == ipc_alone.size());
    double ws = 0.0;
    for (std::size_t i = 0; i < ipc_shared.size(); ++i) {
        if (!(ipc_alone[i] > 0.0) || !std::isfinite(ipc_alone[i])) {
            fatal("weightedSpeedup%s%s: ipc_alone[%zu] = %g is not a "
                  "positive finite IPC; the alone run of that workload "
                  "made no progress (empty or instantly-exhausted "
                  "'file:' trace?)",
                  context.empty() ? "" : " for ", context.c_str(), i,
                  ipc_alone[i]);
        }
        ws += ipc_shared[i] / ipc_alone[i];
    }
    return ws;
}

SweepRunner::SweepRunner(const BenchKnobs &k)
    : knobs(k), pool(k.threads), resultCache_(ResultCache::fromEnv())
{
    mixes_ = makeMixes(knobs.mixes, knobs.cores);
}

SweepRunner::SweepRunner(const BenchKnobs &k, std::vector<WorkloadMix> mixes)
    : knobs(k), mixes_(std::move(mixes)), pool(k.threads),
      resultCache_(ResultCache::fromEnv())
{
    hira_assert(!mixes_.empty());
}

SweepRunner::~SweepRunner() = default;

void
SweepRunner::setResultCache(std::unique_ptr<ResultCache> cache)
{
    resultCache_ = std::move(cache);
}

bool
SweepRunner::primePriorLocked(const std::string &key,
                              const std::string &bench)
{
    // A manifest alone-IPC prior replaces the reference run: it lands
    // in the cache as a ready slot, so every geometry of the sweep
    // reuses it (priors are the trace's reference IPC, not a
    // per-geometry measurement) and aloneRunCount() stays at zero for
    // prior-carrying workloads. No waiter can exist for the key (only
    // not-ready slots are waited on), so no notify is needed.
    double prior = 0.0;
    if (!corpusAloneIpcPrior(bench, prior))
        return false;
    AloneSlot slot;
    slot.ipc = prior;
    slot.ready = true;
    aloneCache.emplace(key, slot);
    return true;
}

double
SweepRunner::aloneIpc(const std::string &bench, const GeomSpec &geom)
{
    std::string key = aloneIpcCacheKey(bench, geom);
    for (;;) {
        std::unique_lock<std::mutex> lock(cacheMutex);
        auto it = aloneCache.find(key);
        if (it != aloneCache.end()) {
            if (it->second.ready)
                return it->second.ipc;
            // Another thread is computing this key: wait for it
            // instead of duplicating the run (single-flight).
            cacheCv.wait(lock);
            continue;
        }
        if (primePriorLocked(key, bench))
            continue; // next iteration reads the ready slot
        // Leader: publish a not-ready slot, run outside the lock.
        aloneCache.emplace(key, AloneSlot{});
        lock.unlock();
        double ipc = 0.0;
        bool fromDisk = false;
        std::string diskKey;
        try {
            // The persistent layer under the in-memory single-flight
            // cache: a previous process's alone run (same canonical
            // key, see aloneResultCacheKey) replaces the simulation.
            if (resultCache_ != nullptr) {
                diskKey = aloneResultCacheKey(bench, geom, knobs);
                fromDisk = resultCache_->lookupAlone(diskKey, ipc);
            }
            if (!fromDisk) {
                SchemeSpec none;
                none.kind = SchemeKind::NoRefresh;
                WorkloadMix solo = {bench};
                SystemConfig cfg =
                    makeSystemConfig(geom, none, solo, hashString(key));
                aloneRuns.fetch_add(1);
                RunResult r =
                    runOne(cfg, static_cast<Cycle>(knobs.warmup),
                           static_cast<Cycle>(knobs.cycles));
                ipc = r.ipc.at(0);
            }
        } catch (...) {
            // Drop the placeholder so waiters retry (and one of them
            // becomes the new leader) rather than blocking forever.
            lock.lock();
            aloneCache.erase(key);
            cacheCv.notify_all();
            throw;
        }
        if (!(ipc > 0.0) || !std::isfinite(ipc)) {
            fatal("IPC-alone run of benchmark '%s' on geometry %s "
                  "yielded IPC = %g; weighted speedup would divide by "
                  "zero. The workload made no progress — check the mix "
                  "spec (empty or instantly-exhausted 'file:' trace?)",
                  bench.c_str(), geom.key().c_str(), ipc);
        }
        if (resultCache_ != nullptr && !fromDisk)
            resultCache_->storeAlone(diskKey, ipc);
        lock.lock();
        AloneSlot &slot = aloneCache[key];
        slot.ipc = ipc;
        slot.ready = true;
        cacheCv.notify_all();
        return ipc;
    }
}

std::vector<PointResult>
SweepRunner::runPoints(const std::vector<SweepPoint> &plan)
{
    if (plan.empty())
        return {};

    // Result-cache consult: hits fill their slots directly and the
    // simulation queue below is built from the misses only. Keys are
    // computed once and reused for the post-reduction store, so lookup
    // and store can never disagree.
    std::vector<PointResult> out(plan.size());
    std::vector<std::size_t> missIdx;
    std::vector<std::string> missKeys;
    missIdx.reserve(plan.size());
    if (resultCache_ != nullptr) {
        for (std::size_t pi = 0; pi < plan.size(); ++pi) {
            std::string key = plan[pi].cacheKey(knobs, mixes_);
            if (resultCache_->lookupPoint(key, out[pi])) {
                out[pi].cacheHit = true;
                pointsFromCache_.fetch_add(1);
            } else {
                missIdx.push_back(pi);
                missKeys.push_back(std::move(key));
            }
        }
    } else {
        for (std::size_t pi = 0; pi < plan.size(); ++pi)
            missIdx.push_back(pi);
    }
    pointsSimulated_.fetch_add(missIdx.size());
    if (missIdx.empty()) {
        // Fully-warm plan: no simulation, no alone warmups.
        lastRefresh = out.back().refresh;
        return out;
    }

    // Deduplicated IPC-alone warmup items: one per (bench, geometry)
    // key — of the cache-miss points only — that is neither cached nor
    // already queued for this plan. Manifest alone-IPC priors are
    // installed straight into the cache here, so prior-carrying
    // workloads never enqueue a warmup run. aloneIpc() itself is
    // single-flight, so a key raced in by a concurrent caller is
    // simply waited on, never re-run.
    struct AloneItem
    {
        std::string bench;
        const GeomSpec *geom;
    };
    std::vector<AloneItem> aloneItems;
    {
        std::set<std::string> queued;
        std::lock_guard<std::mutex> lock(cacheMutex);
        for (std::size_t pi : missIdx) {
            const SweepPoint &p = plan[pi];
            for (const WorkloadMix &mix : mixes_) {
                for (const std::string &b : mix) {
                    std::string key = aloneIpcCacheKey(b, p.geom);
                    if (aloneCache.count(key) != 0 ||
                        !queued.insert(key).second ||
                        primePriorLocked(key, b)) {
                        continue;
                    }
                    aloneItems.push_back(AloneItem{b, &p.geom});
                }
            }
        }
    }

    // One flat queue: the alone warmups, then every cache-miss
    // (point, mix) simulation. All items are independent simulations,
    // so the pool drains them with no barrier in between.
    const std::size_t nAlone = aloneItems.size();
    const std::size_t nMixes = mixes_.size();
    std::vector<std::vector<RunResult>> runs(
        missIdx.size(), std::vector<RunResult>(nMixes));
    // Per-work-item trace spans: each item records an X event with its
    // own run time plus how long it sat queued behind the pool
    // (queue_wait_us = dispatch minus plan submission). Observational
    // only; results are byte-identical with tracing on or off.
    TraceEventLog &tlog = TraceEventLog::global();
    const bool tracing = tlog.enabled();
    const double tSubmit = tracing ? tlog.nowUs() : 0.0;
    pool.parallelFor(nAlone + missIdx.size() * nMixes, [&](std::size_t i) {
        const double tStart = tracing ? tlog.nowUs() : 0.0;
        std::string label;
        if (i < nAlone) {
            if (tracing)
                label = "alone:" + aloneItems[i].bench;
            aloneIpc(aloneItems[i].bench, *aloneItems[i].geom);
        } else {
            std::size_t flat = i - nAlone;
            std::size_t k = flat / nMixes;
            std::size_t mi = flat % nMixes;
            const SweepPoint &p = plan[missIdx[k]];
            if (tracing) {
                label = strprintf("%s mix%zu",
                                  p.scheme.label().c_str(), mi);
            }
            SystemConfig cfg = makeSystemConfig(
                p.geom, p.scheme, mixes_[mi],
                sweepRunSeed(p.geom.key(), p.scheme.seedKey(), mi));
            runs[k][mi] = runOne(cfg, static_cast<Cycle>(knobs.warmup),
                                 static_cast<Cycle>(knobs.cycles));
        }
        if (tracing) {
            tlog.complete(
                label, "sweep", tStart, tlog.nowUs() - tStart,
                strprintf("\"queue_wait_us\": %.3f", tStart - tSubmit));
        }
    });

    // Reduce the miss points on the calling thread in plan/mix order,
    // so the floating point summation order is fixed regardless of
    // thread count — and identical to an uncached run's, which is what
    // makes cold and warm artifacts bitwise-equal. Each reduced point
    // is committed to the cache as soon as it is complete (point
    // granularity: a killed multi-point plan resumes from here).
    for (std::size_t k = 0; k < missIdx.size(); ++k) {
        std::size_t pi = missIdx[k];
        const SweepPoint &p = plan[pi];
        double sum = 0.0;
        for (std::size_t mi = 0; mi < nMixes; ++mi) {
            std::vector<double> alone;
            for (const std::string &b : mixes_[mi])
                alone.push_back(aloneIpc(b, p.geom));
            sum += weightedSpeedup(
                runs[k][mi].ipc, alone,
                strprintf("mix %zu on %s", mi, p.geom.key().c_str()));
            accumulateRefresh(out[pi].refresh, runs[k][mi].sys.refresh);
            out[pi].wallSeconds += runs[k][mi].wallSeconds;
            out[pi].simCycles += runs[k][mi].simCycles;
            out[pi].metrics.merge(runs[k][mi].metrics);
        }
        out[pi].meanWs = sum / static_cast<double>(nMixes);
        if (resultCache_ != nullptr)
            resultCache_->storePoint(missKeys[k], out[pi]);
    }
    lastRefresh = out.back().refresh;
    return out;
}

double
SweepRunner::meanWs(const GeomSpec &geom, const SchemeSpec &scheme)
{
    return runPoints({SweepPoint{geom, scheme}}).front().meanWs;
}

std::vector<RunResult>
SweepRunner::runMixes(const GeomSpec &geom, const SchemeSpec &scheme)
{
    std::vector<RunResult> results(mixes_.size());
    std::string geomKey = geom.key();
    std::string schemeKey = scheme.seedKey();
    pool.parallelFor(mixes_.size(), [&](std::size_t i) {
        SystemConfig cfg = makeSystemConfig(
            geom, scheme, mixes_[i],
            sweepRunSeed(geomKey, schemeKey, i));
        results[i] = runOne(cfg, static_cast<Cycle>(knobs.warmup),
                            static_cast<Cycle>(knobs.cycles));
    });
    return results;
}

double
SweepRunner::meanMetric(const GeomSpec &geom, const SchemeSpec &scheme,
                        double (*metric)(const RunResult &))
{
    std::vector<RunResult> results = runMixes(geom, scheme);
    double sum = 0.0;
    for (const RunResult &r : results)
        sum += metric(r);
    return sum / static_cast<double>(results.size());
}

} // namespace hira
