#include "sim/system.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <variant>

#include "common/logging.hh"
#include "common/trace_events.hh"
#include "sim/scheme_registry.hh"
#include "workload/registry.hh"

namespace hira {

SimEngine
defaultSimEngine()
{
    const char *v = std::getenv("HIRA_ENGINE");
    if (v == nullptr || *v == '\0')
        return SimEngine::EventLoop;
    if (std::strcmp(v, "event") == 0)
        return SimEngine::EventLoop;
    if (std::strcmp(v, "cycle") == 0)
        return SimEngine::CycleLoop;
    warn_once("unknown HIRA_ENGINE='%s' (expected 'cycle' or 'event'); "
              "using 'event'",
              v);
    return SimEngine::EventLoop;
}

const char *
simEngineName(SimEngine engine)
{
    return engine == SimEngine::CycleLoop ? "cycle" : "event";
}

std::unique_ptr<RefreshScheme>
System::makeScheme() const
{
    // Factory dispatch through the scheme registry: adding a scheme is
    // one registry entry plus a kernel tag, with no switch to extend
    // here (an unregistered kind panics inside schemeEntryByKind).
    return schemeEntryByKind(cfg.scheme).make(cfg);
}

System::System(const SystemConfig &config)
    : cfg(config), mapper(config.geom),
      kernelTag_(kernelVariantFor(config.scheme, config.kernel))
{
    // Observability first, so component scopes can hang off the
    // registry. The kernel's own metrics live under "kernel."; trace
    // sampling caches the enabled global log once.
    if (cfg.metricsLevel != MetricsLevel::Off)
        metrics_ = std::make_unique<MetricRegistry>(cfg.metricsLevel);
    MetricScope root(metrics_.get(), "");
    MetricScope kernel = root.sub("kernel");
    mSkipLen = kernel.histogram("skip_len", 0.0, 4096.0, 64);
    mLlcStallSkips = kernel.counter("llc_stall_skips");
    mHeapRekeys = kernel.counter("heap_rekeys");
    mHeapLowers = kernel.counter("heap_lowers");
    if (TraceEventLog::global().enabled())
        tracer_ = &TraceEventLog::global();

    // Controllers, one per channel.
    for (int ch = 0; ch < cfg.geom.channels; ++ch) {
        ControllerConfig cc;
        cc.geom = cfg.geom;
        cc.tp = cfg.tp;
        cc.para = cfg.para;
        cc.para.seed = hashCombine(cfg.seed, 0xca0 + ch);
        // When HiRA-MC runs PreventiveRC, the controller must not also
        // perform immediate preventive refreshes.
        cc.paraImmediate = cfg.scheme != SchemeKind::HiraMc;
        cc.recordTrace = cfg.recordTraces;
        cc.metrics = root.sub(strprintf("ctrl%d", ch));
        controllers.push_back(std::make_unique<MemoryController>(
            ch, cc, makeScheme()));
    }

    // Soundness gate for the specialized kernel: tickAs<S> static_casts
    // the scheme to S on the hot path, so prove the cast once here —
    // every controller's scheme must be exactly the tagged type. The
    // generic oracle (S = RefreshScheme) trivially passes.
    std::visit(
        [this](auto tag) {
            using S = typename decltype(tag)::type;
            if constexpr (!std::is_same_v<S, RefreshScheme>) {
                for (const auto &ctrl : controllers) {
                    if (dynamic_cast<S *>(&ctrl->scheme()) == nullptr) {
                        panic("specialized kernel tag does not match the "
                              "attached refresh scheme (SchemeKind %d)",
                              static_cast<int>(cfg.scheme));
                    }
                }
            }
        },
        kernelTag_);

    // Shared LLC routes misses by channel and notifies cores on fills.
    llc = std::make_unique<Llc>(
        cfg.llc,
        [this](const Request &req) { return route(req); },
        [this](int core_id, std::uint64_t tag, Cycle) {
            cores[static_cast<std::size_t>(core_id)]->onDataReturn(tag);
        });

    // Cores with private address-space slices; workload specs resolve
    // through the registry (synthetic pool names or "file:" traces).
    std::size_t ncores = cfg.mix.size();
    hira_assert(ncores > 0);
    Addr slice = mapper.addressSpaceBytes() / ncores;
    for (std::size_t i = 0; i < ncores; ++i) {
        std::unique_ptr<TraceSource> src =
            WorkloadRegistry::global().makeSource(
                cfg.mix[i], hashCombine(cfg.seed, 0xc04e + i), slice * i,
                slice);
        if (!cfg.traceDumpDir.empty()) {
            std::string path = strprintf(
                "%s/core%zu.%s", cfg.traceDumpDir.c_str(), i,
                cfg.traceDumpFormat == TraceFormat::Binary ? "bin"
                                                           : "trace");
            src = std::make_unique<TraceRecorder>(std::move(src), path,
                                                  cfg.traceDumpFormat);
        }
        sources.push_back(std::move(src));
        // A TraceRecorder must observe every next() call, so the
        // exhausted-trace fast-forward is disabled when recording.
        cores.push_back(std::make_unique<CoreModel>(
            static_cast<int>(i), *sources.back(), *llc, cfg.coreWidth,
            cfg.windowEntries, cfg.traceDumpDir.empty()));
        cores.back()->attachMetrics(root.sub(strprintf("core%zu", i)));
    }

    // Deadline index: controller slots by channel id, LLC slot last.
    // Keys seed from the components' initial bounds (a fresh Baseline
    // controller already owes its first REF a horizon). The enqueue
    // listeners are event-engine plumbing; the dense loop never reads
    // the heap, so it skips the per-enqueue std::function call.
    llcSlot = controllers.size();
    wakeHeap = DeadlineHeap(controllers.size() + 1);
    for (std::size_t ch = 0; ch < controllers.size(); ++ch)
        wakeHeap.update(ch, controllers[ch]->nextEvent());
    wakeHeap.update(llcSlot, llc->nextEventCycle(0));
    if (cfg.engine == SimEngine::EventLoop) {
        for (std::size_t ch = 0; ch < controllers.size(); ++ch) {
            controllers[ch]->setWakeListener([this, ch](Cycle seen) {
                wakeHeap.lower(ch, seen);
                count(mHeapLowers);
            });
        }
    }
}

bool
System::route(const Request &req)
{
    Request r = req;
    r.da = mapper.decode(r.addr);
    r.arrival = memCycle;
    return controllers[static_cast<std::size_t>(r.da.channel)]->enqueue(r);
}

void
System::run(Cycle cycles)
{
    // The single run-time -> compile-time dispatch point: pick the
    // (engine x scheme) instantiation once per run() call, never per
    // cycle. S = RefreshScheme is the generic oracle.
    std::visit(
        [&](auto tag) {
            using S = typename decltype(tag)::type;
            if (cfg.engine == SimEngine::EventLoop)
                runEventAs<S>(cycles);
            else
                runCycleAs<S>(cycles);
        },
        kernelTag_);
}

void
System::drainCompletions(MemoryController &ctrl)
{
    // Deliver completed reads to the LLC; keep not-yet-arrived
    // completions (data still on the bus). Single pass: delivery order
    // and the surviving order both match the original vector order.
    // Deliveries only send writebacks toward the controllers, never
    // append to a completions vector, so iterating while delivering is
    // safe.
    auto &done = ctrl.completions();
    if (done.empty())
        return;
    std::size_t kept = 0;
    for (const Completion &comp : done) {
        if (comp.at <= memCycle)
            llc->onMemCompletion(comp.tag, memCycle);
        else
            done[kept++] = comp;
    }
    done.resize(kept);
}

template <class S>
void
System::executeCycleAs(bool all_controllers)
{
    // Controllers tick in channel order (matching the dense loop), not
    // heap-pop order: cross-channel writebacks drained from channel i
    // may enqueue into channel j and lower j's key mid-sweep, and a
    // popped ordering would have to re-examine already-popped slots.
    // The heap's job is the O(1) global minimum for the skip decision
    // in firstActionableCycle(); per-cycle membership stays a key
    // comparison per slot.
    for (std::size_t ch = 0; ch < controllers.size(); ++ch) {
        // Skipping a controller whose wake-up lies ahead is exact: its
        // tick would be a no-op and none of its completions are due
        // (nextEvent() lower-bounds both).
        if (all_controllers) {
            controllers[ch]->tickAs<S>(memCycle);
            ++loopStats_.ctrlTicks;
            drainCompletions(*controllers[ch]);
        } else if (wakeHeap.key(ch) <= memCycle) {
            controllers[ch]->tickAs<S>(memCycle);
            ++loopStats_.ctrlTicks;
            drainCompletions(*controllers[ch]);
            tickedScratch.push_back(static_cast<std::uint32_t>(ch));
        }
    }
    if (llc->outboundPending()) {
        llc->tick(memCycle);
        if (!all_controllers)
            wakeHeap.update(llcSlot, llc->nextEventCycle(memCycle));
    }

    // 3.2 GHz cores over a 1.2 GHz bus: 8 CPU ticks per 3 bus ticks.
    cpuAccum += 8;
    while (cpuAccum >= 3) {
        cpuAccum -= 3;
        for (auto &core : cores)
            core->tick(memCycle);
    }

    // Re-key the ticked controllers only now, after the LLC pump and
    // the core ticks delivered this cycle's enqueues: tick()
    // invalidated each one's cached bound, so this nextEvent() is the
    // lazy recompute over the full post-cycle state — a tight horizon
    // that may *raise* the key past the conservative arrival+1 their
    // wake listeners set mid-cycle. Querying right after tick() instead
    // would freeze that conservative bound in (the recompute would run
    // before the arrivals, and lowerWake can only clamp), degrading
    // every busy controller to next-cycle polling.
    count(mHeapRekeys, tickedScratch.size());
    for (std::uint32_t ch : tickedScratch)
        wakeHeap.update(ch, controllers[ch]->nextEventAs<S>());
    tickedScratch.clear();
}

template <class S>
void
System::runCycleAs(Cycle cycles)
{
    for (Cycle c = 0; c < cycles; ++c) {
        ++memCycle;
        executeCycleAs<S>(true);
    }
    loopStats_.simulatedCycles += cycles;
    loopStats_.executedCycles += cycles;
}

Cycle
System::firstActionableCycle() const
{
    // Cores first: any core that must tick normally pins the very next
    // cycle, and the check is O(1) per core, so busy phases pay almost
    // nothing for the probe.
    Cycle min_ticks = kNeverCycle;
    for (const auto &core : cores) {
        Cycle n = core->skipTicks();
        if (n == 0)
            return memCycle + 1;
        if (n < min_ticks)
            min_ticks = n;
    }
    Cycle wake = kNeverCycle;
    if (min_ticks != kNeverCycle) {
        // Largest m with (skipped CPU ticks over m bus cycles)
        // = floor((cpuAccum + 8m) / 3) <= min_ticks.
        Cycle m = (3 * min_ticks + 2 - cpuAccum) / 8;
        if (m == 0)
            return memCycle + 1;
        wake = memCycle + m + 1;
    }
    // Memory side: one O(1) heap-min read covers every controller and
    // the LLC — executeCycle keeps the keys current after each tick,
    // and enqueue listeners lower them in between.
    Cycle w = wakeHeap.min();
    if (w < wake)
        wake = w;
    return std::max(wake, memCycle + 1);
}

template <class S>
void
System::runEventAs(Cycle cycles)
{
    const Cycle end = memCycle + cycles;
    while (memCycle < end) {
        Cycle first = firstActionableCycle();
        if (first > memCycle + 1) {
            // Cycles (memCycle, first) are provably no-ops for every
            // component: fast-forward the cores' stall / exhausted-run
            // ticks in bulk and jump straight to the horizon.
            Cycle last_skipped = std::min(first - 1, end);
            Cycle m = last_skipped - memCycle;
            observe(mSkipLen, static_cast<double>(m));
            if (llc->outboundPending()) {
                count(mLlcStallSkips);
                // Whenever the outbound queue is non-empty its head's
                // last send just failed (Llc::tick stops at the first
                // failure, and executeCycle pumped it this cycle), and
                // the rejecting controller cannot drain without a tick
                // — which no skipped cycle performs. The dense loop
                // would therefore re-offer and re-reject the head
                // exactly once per skipped cycle; accrue those m
                // rejections in closed form on the head's channel.
                const Request &head = llc->outboundHead();
                int ch = mapper.decode(head.addr).channel;
                controllers[static_cast<std::size_t>(ch)]
                    ->accrueRejected(m);
            }
            std::uint64_t ticks = (cpuAccum + 8 * m) / 3;
            cpuAccum = (cpuAccum + 8 * m) % 3;
            for (auto &core : cores)
                core->fastForward(ticks);
            memCycle = last_skipped;
            loopStats_.skippedCycles += m;
            if (memCycle >= end)
                break;
        }
        ++memCycle;
        ++loopStats_.executedCycles;
        // Perfetto counter tracks, sampled on an executed-cycle stride
        // so saturated phases don't flood the trace buffer. Purely
        // observational: nothing here feeds back into the simulation.
        if (tracer_ != nullptr) {
            if (traceSampleCountdown_ == 0) {
                traceSampleCountdown_ = 65536;
                tracer_->counter(
                    "kernel.executed_cycles",
                    static_cast<double>(loopStats_.executedCycles));
                tracer_->counter(
                    "kernel.skipped_cycles",
                    static_cast<double>(loopStats_.skippedCycles));
            }
            --traceSampleCountdown_;
        }
        executeCycleAs<S>(false);
    }
    loopStats_.simulatedCycles += cycles;
}

void
System::resetStats()
{
    for (auto &core : cores)
        core->resetStats();
}

MetricsSnapshot
System::metricsSnapshot()
{
    if (metrics_ == nullptr)
        return MetricsSnapshot{};

    // Mirror every stats struct the simulator already keeps into the
    // registry. The mirrors are monotone counters written by value, so
    // MetricsSnapshot::diff scopes them to intervals exactly like the
    // live metrics; publishing here (cold path) instead of
    // double-counting at the hot sites keeps the Off/Counters overhead
    // at zero for the whole command mix.
    auto mirror = [this](const std::string &name, std::uint64_t v) {
        Counter *c = metrics_->counter(name);
        if (c != nullptr)
            c->value = v;
    };

    mirror("kernel.simulated_cycles", loopStats_.simulatedCycles);
    mirror("kernel.executed_cycles", loopStats_.executedCycles);
    mirror("kernel.skipped_cycles", loopStats_.skippedCycles);
    mirror("kernel.ctrl_ticks", loopStats_.ctrlTicks);

    for (std::size_t ch = 0; ch < controllers.size(); ++ch) {
        std::string p = strprintf("ctrl%zu.", ch);
        const ControllerStats &cs = controllers[ch]->stats();
        mirror(p + "reads_served", cs.readsServed);
        mirror(p + "writes_served", cs.writesServed);
        mirror(p + "read_latency_sum", cs.readLatencySum);
        mirror(p + "forwards", cs.forwards);
        mirror(p + "cmd.act", cs.acts);
        mirror(p + "cmd.pre", cs.pres);
        mirror(p + "cmd.ref", cs.refs);
        mirror(p + "cmd.hira", cs.hiraOps);
        mirror(p + "rejected_requests", cs.rejectedRequests);
        const RefreshStats &rs = controllers[ch]->scheme().stats();
        mirror(p + "scheme.ref_commands", rs.refCommands);
        mirror(p + "scheme.row_refreshes", rs.rowRefreshes);
        mirror(p + "scheme.access_paired", rs.accessPaired);
        mirror(p + "scheme.refresh_paired", rs.refreshPaired);
        mirror(p + "scheme.standalone", rs.standalone);
        mirror(p + "scheme.deadline_misses", rs.deadlineMisses);
        mirror(p + "scheme.preventive_generated", rs.preventiveGenerated);
        mirror(p + "scheme.preventive_dropped", rs.preventiveDropped);
    }

    mirror("llc.hits", llc->hits);
    mirror("llc.misses", llc->misses);
    mirror("llc.writebacks", llc->writebacks);
    mirror("llc.mshr_merges", llc->mshrMerges);
    mirror("llc.blocked", llc->blocked);

    for (std::size_t i = 0; i < cores.size(); ++i) {
        std::string p = strprintf("core%zu.", i);
        mirror(p + "retired", cores[i]->retiredInstructions());
        mirror(p + "cpu_cycles", cores[i]->cpuCycles());
        mirror(p + "loads", cores[i]->loads);
        mirror(p + "stores", cores[i]->stores);
        mirror(p + "stall_cycles", cores[i]->stallCycles);
    }

    return metrics_->snapshot();
}

SystemResult
System::result() const
{
    SystemResult r;
    for (const auto &core : cores)
        r.ipc.push_back(core->ipc());
    for (const auto &ctrl : controllers) {
        const ControllerStats &cs = ctrl->stats();
        r.memReads += cs.readsServed;
        r.memWrites += cs.writesServed;
        r.controller.readsServed += cs.readsServed;
        r.controller.writesServed += cs.writesServed;
        r.controller.readLatencySum += cs.readLatencySum;
        r.controller.acts += cs.acts;
        r.controller.pres += cs.pres;
        r.controller.refs += cs.refs;
        r.controller.hiraOps += cs.hiraOps;
        r.controller.forwards += cs.forwards;
        r.controller.rejectedRequests += cs.rejectedRequests;
        const RefreshStats &rs = ctrl->scheme().stats();
        r.refresh.refCommands += rs.refCommands;
        r.refresh.rowRefreshes += rs.rowRefreshes;
        r.refresh.accessPaired += rs.accessPaired;
        r.refresh.refreshPaired += rs.refreshPaired;
        r.refresh.standalone += rs.standalone;
        r.refresh.deadlineMisses += rs.deadlineMisses;
        r.refresh.preventiveGenerated += rs.preventiveGenerated;
        r.refresh.preventiveDropped += rs.preventiveDropped;
        // HiRA-MC may run an internal baseline REF engine (Fig. 12).
        if (const auto *hmc =
                dynamic_cast<const HiraMc *>(&ctrl->scheme())) {
            if (const RefreshStats *bs = hmc->baselineStats())
                r.refresh.refCommands += bs->refCommands;
        }
    }
    if (r.controller.readsServed > 0) {
        r.avgReadLatencyCycles =
            static_cast<double>(r.controller.readLatencySum) /
            static_cast<double>(r.controller.readsServed);
    }
    r.llcHits = llc->hits;
    r.llcMisses = llc->misses;
    return r;
}

} // namespace hira
