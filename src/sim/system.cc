#include "sim/system.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "workload/registry.hh"

namespace hira {

SimEngine
defaultSimEngine()
{
    const char *v = std::getenv("HIRA_ENGINE");
    if (v == nullptr || *v == '\0')
        return SimEngine::EventLoop;
    if (std::strcmp(v, "event") == 0)
        return SimEngine::EventLoop;
    if (std::strcmp(v, "cycle") == 0)
        return SimEngine::CycleLoop;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
        warn("unknown HIRA_ENGINE='%s' (expected 'cycle' or 'event'); "
             "using 'event'",
             v);
    }
    return SimEngine::EventLoop;
}

const char *
simEngineName(SimEngine engine)
{
    return engine == SimEngine::CycleLoop ? "cycle" : "event";
}

std::unique_ptr<RefreshScheme>
System::makeScheme() const
{
    switch (cfg.scheme) {
      case SchemeKind::NoRefresh:
        return std::make_unique<NoRefresh>();
      case SchemeKind::Baseline:
        return std::make_unique<BaselineRefresh>(cfg.refPostpone);
      case SchemeKind::HiraMc:
        return std::make_unique<HiraMc>(cfg.hira);
    }
    panic("unreachable scheme kind");
}

System::System(const SystemConfig &config)
    : cfg(config), mapper(config.geom)
{
    // Controllers, one per channel.
    for (int ch = 0; ch < cfg.geom.channels; ++ch) {
        ControllerConfig cc;
        cc.geom = cfg.geom;
        cc.tp = cfg.tp;
        cc.para = cfg.para;
        cc.para.seed = hashCombine(cfg.seed, 0xca0 + ch);
        // When HiRA-MC runs PreventiveRC, the controller must not also
        // perform immediate preventive refreshes.
        cc.paraImmediate = cfg.scheme != SchemeKind::HiraMc;
        cc.recordTrace = cfg.recordTraces;
        controllers.push_back(std::make_unique<MemoryController>(
            ch, cc, makeScheme()));
    }

    // Shared LLC routes misses by channel and notifies cores on fills.
    llc = std::make_unique<Llc>(
        cfg.llc,
        [this](const Request &req) { return route(req); },
        [this](int core_id, std::uint64_t tag, Cycle) {
            cores[static_cast<std::size_t>(core_id)]->onDataReturn(tag);
        });

    // Cores with private address-space slices; workload specs resolve
    // through the registry (synthetic pool names or "file:" traces).
    std::size_t ncores = cfg.mix.size();
    hira_assert(ncores > 0);
    Addr slice = mapper.addressSpaceBytes() / ncores;
    for (std::size_t i = 0; i < ncores; ++i) {
        std::unique_ptr<TraceSource> src =
            WorkloadRegistry::global().makeSource(
                cfg.mix[i], hashCombine(cfg.seed, 0xc04e + i), slice * i,
                slice);
        if (!cfg.traceDumpDir.empty()) {
            std::string path = strprintf(
                "%s/core%zu.%s", cfg.traceDumpDir.c_str(), i,
                cfg.traceDumpFormat == TraceFormat::Binary ? "bin"
                                                           : "trace");
            src = std::make_unique<TraceRecorder>(std::move(src), path,
                                                  cfg.traceDumpFormat);
        }
        sources.push_back(std::move(src));
        // A TraceRecorder must observe every next() call, so the
        // exhausted-trace fast-forward is disabled when recording.
        cores.push_back(std::make_unique<CoreModel>(
            static_cast<int>(i), *sources.back(), *llc, cfg.coreWidth,
            cfg.windowEntries, cfg.traceDumpDir.empty()));
    }

    // Deadline index: controller slots by channel id, LLC slot last.
    // Keys seed from the components' initial bounds (a fresh Baseline
    // controller already owes its first REF a horizon). The enqueue
    // listeners are event-engine plumbing; the dense loop never reads
    // the heap, so it skips the per-enqueue std::function call.
    llcSlot = controllers.size();
    wakeHeap = DeadlineHeap(controllers.size() + 1);
    for (std::size_t ch = 0; ch < controllers.size(); ++ch)
        wakeHeap.update(ch, controllers[ch]->nextEvent());
    wakeHeap.update(llcSlot, llc->nextEventCycle(0));
    if (cfg.engine == SimEngine::EventLoop) {
        for (std::size_t ch = 0; ch < controllers.size(); ++ch) {
            controllers[ch]->setWakeListener([this, ch](Cycle seen) {
                wakeHeap.lower(ch, seen);
            });
        }
    }
}

bool
System::route(const Request &req)
{
    Request r = req;
    r.da = mapper.decode(r.addr);
    r.arrival = memCycle;
    return controllers[static_cast<std::size_t>(r.da.channel)]->enqueue(r);
}

void
System::run(Cycle cycles)
{
    if (cfg.engine == SimEngine::EventLoop)
        runEvent(cycles);
    else
        runCycle(cycles);
}

void
System::drainCompletions(MemoryController &ctrl)
{
    // Deliver completed reads to the LLC; keep not-yet-arrived
    // completions (data still on the bus). Single pass: delivery order
    // and the surviving order both match the original vector order.
    // Deliveries only send writebacks toward the controllers, never
    // append to a completions vector, so iterating while delivering is
    // safe.
    auto &done = ctrl.completions();
    if (done.empty())
        return;
    std::size_t kept = 0;
    for (const Completion &comp : done) {
        if (comp.at <= memCycle)
            llc->onMemCompletion(comp.tag, memCycle);
        else
            done[kept++] = comp;
    }
    done.resize(kept);
}

void
System::executeCycle(bool all_controllers)
{
    // Controllers tick in channel order (matching the dense loop), not
    // heap-pop order: cross-channel writebacks drained from channel i
    // may enqueue into channel j and lower j's key mid-sweep, and a
    // popped ordering would have to re-examine already-popped slots.
    // The heap's job is the O(1) global minimum for the skip decision
    // in firstActionableCycle(); per-cycle membership stays a key
    // comparison per slot.
    for (std::size_t ch = 0; ch < controllers.size(); ++ch) {
        // Skipping a controller whose wake-up lies ahead is exact: its
        // tick would be a no-op and none of its completions are due
        // (nextEvent() lower-bounds both).
        if (all_controllers) {
            controllers[ch]->tick(memCycle);
            ++loopStats_.ctrlTicks;
            drainCompletions(*controllers[ch]);
        } else if (wakeHeap.key(ch) <= memCycle) {
            controllers[ch]->tick(memCycle);
            ++loopStats_.ctrlTicks;
            drainCompletions(*controllers[ch]);
            tickedScratch.push_back(static_cast<std::uint32_t>(ch));
        }
    }
    if (llc->outboundPending()) {
        llc->tick(memCycle);
        if (!all_controllers)
            wakeHeap.update(llcSlot, llc->nextEventCycle(memCycle));
    }

    // 3.2 GHz cores over a 1.2 GHz bus: 8 CPU ticks per 3 bus ticks.
    cpuAccum += 8;
    while (cpuAccum >= 3) {
        cpuAccum -= 3;
        for (auto &core : cores)
            core->tick(memCycle);
    }

    // Re-key the ticked controllers only now, after the LLC pump and
    // the core ticks delivered this cycle's enqueues: tick()
    // invalidated each one's cached bound, so this nextEvent() is the
    // lazy recompute over the full post-cycle state — a tight horizon
    // that may *raise* the key past the conservative arrival+1 their
    // wake listeners set mid-cycle. Querying right after tick() instead
    // would freeze that conservative bound in (the recompute would run
    // before the arrivals, and lowerWake can only clamp), degrading
    // every busy controller to next-cycle polling.
    for (std::uint32_t ch : tickedScratch)
        wakeHeap.update(ch, controllers[ch]->nextEvent());
    tickedScratch.clear();
}

void
System::runCycle(Cycle cycles)
{
    for (Cycle c = 0; c < cycles; ++c) {
        ++memCycle;
        executeCycle(true);
    }
    loopStats_.simulatedCycles += cycles;
    loopStats_.executedCycles += cycles;
}

Cycle
System::firstActionableCycle() const
{
    // Cores first: any core that must tick normally pins the very next
    // cycle, and the check is O(1) per core, so busy phases pay almost
    // nothing for the probe.
    Cycle min_ticks = kNeverCycle;
    for (const auto &core : cores) {
        Cycle n = core->skipTicks();
        if (n == 0)
            return memCycle + 1;
        if (n < min_ticks)
            min_ticks = n;
    }
    Cycle wake = kNeverCycle;
    if (min_ticks != kNeverCycle) {
        // Largest m with (skipped CPU ticks over m bus cycles)
        // = floor((cpuAccum + 8m) / 3) <= min_ticks.
        Cycle m = (3 * min_ticks + 2 - cpuAccum) / 8;
        if (m == 0)
            return memCycle + 1;
        wake = memCycle + m + 1;
    }
    // Memory side: one O(1) heap-min read covers every controller and
    // the LLC — executeCycle keeps the keys current after each tick,
    // and enqueue listeners lower them in between.
    Cycle w = wakeHeap.min();
    if (w < wake)
        wake = w;
    return std::max(wake, memCycle + 1);
}

void
System::runEvent(Cycle cycles)
{
    const Cycle end = memCycle + cycles;
    while (memCycle < end) {
        Cycle first = firstActionableCycle();
        if (first > memCycle + 1) {
            // Cycles (memCycle, first) are provably no-ops for every
            // component: fast-forward the cores' stall / exhausted-run
            // ticks in bulk and jump straight to the horizon.
            Cycle last_skipped = std::min(first - 1, end);
            Cycle m = last_skipped - memCycle;
            if (llc->outboundPending()) {
                // Whenever the outbound queue is non-empty its head's
                // last send just failed (Llc::tick stops at the first
                // failure, and executeCycle pumped it this cycle), and
                // the rejecting controller cannot drain without a tick
                // — which no skipped cycle performs. The dense loop
                // would therefore re-offer and re-reject the head
                // exactly once per skipped cycle; accrue those m
                // rejections in closed form on the head's channel.
                const Request &head = llc->outboundHead();
                int ch = mapper.decode(head.addr).channel;
                controllers[static_cast<std::size_t>(ch)]
                    ->accrueRejected(m);
            }
            std::uint64_t ticks = (cpuAccum + 8 * m) / 3;
            cpuAccum = (cpuAccum + 8 * m) % 3;
            for (auto &core : cores)
                core->fastForward(ticks);
            memCycle = last_skipped;
            loopStats_.skippedCycles += m;
            if (memCycle >= end)
                break;
        }
        ++memCycle;
        ++loopStats_.executedCycles;
        executeCycle(false);
    }
    loopStats_.simulatedCycles += cycles;
}

void
System::resetStats()
{
    for (auto &core : cores)
        core->resetStats();
}

SystemResult
System::result() const
{
    SystemResult r;
    for (const auto &core : cores)
        r.ipc.push_back(core->ipc());
    for (const auto &ctrl : controllers) {
        const ControllerStats &cs = ctrl->stats();
        r.memReads += cs.readsServed;
        r.memWrites += cs.writesServed;
        r.controller.readsServed += cs.readsServed;
        r.controller.writesServed += cs.writesServed;
        r.controller.readLatencySum += cs.readLatencySum;
        r.controller.acts += cs.acts;
        r.controller.pres += cs.pres;
        r.controller.refs += cs.refs;
        r.controller.hiraOps += cs.hiraOps;
        r.controller.forwards += cs.forwards;
        r.controller.rejectedRequests += cs.rejectedRequests;
        const RefreshStats &rs = ctrl->scheme().stats();
        r.refresh.refCommands += rs.refCommands;
        r.refresh.rowRefreshes += rs.rowRefreshes;
        r.refresh.accessPaired += rs.accessPaired;
        r.refresh.refreshPaired += rs.refreshPaired;
        r.refresh.standalone += rs.standalone;
        r.refresh.deadlineMisses += rs.deadlineMisses;
        r.refresh.preventiveGenerated += rs.preventiveGenerated;
        r.refresh.preventiveDropped += rs.preventiveDropped;
        // HiRA-MC may run an internal baseline REF engine (Fig. 12).
        if (const auto *hmc =
                dynamic_cast<const HiraMc *>(&ctrl->scheme())) {
            if (const RefreshStats *bs = hmc->baselineStats())
                r.refresh.refCommands += bs->refCommands;
        }
    }
    if (r.controller.readsServed > 0) {
        r.avgReadLatencyCycles =
            static_cast<double>(r.controller.readLatencySum) /
            static_cast<double>(r.controller.readsServed);
    }
    r.llcHits = llc->hits;
    r.llcMisses = llc->misses;
    return r;
}

} // namespace hira
